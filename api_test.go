// Tests of the public facade: everything a downstream user touches goes
// through the dyndesign package, exercised here end to end.
package dyndesign_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dyndesign"
)

func buildAPIDatabase(t testing.TB, rows int) *dyndesign.Database {
	t.Helper()
	db := dyndesign.NewDatabase()
	db.MustExec("CREATE TABLE t (a INT, b INT, c INT, d INT)")
	var sb strings.Builder
	domain := rows / 5
	if domain < 1 {
		domain = 1
	}
	for i := 0; i < rows; i += 500 {
		sb.Reset()
		sb.WriteString("INSERT INTO t VALUES ")
		n := 500
		if rows-i < n {
			n = rows - i
		}
		for j := 0; j < n; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			v := (i + j) * 7
			fmt.Fprintf(&sb, "(%d, %d, %d, %d)",
				v%domain, (v+1)%domain, (v+2)%domain, (v+3)%domain)
		}
		db.MustExec(sb.String())
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db := buildAPIDatabase(t, 20000)

	w, err := dyndesign.PaperWorkload("W1", 20000, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	structures := dyndesign.PaperStructures("t")
	adv, err := dyndesign.NewAdvisor(db, dyndesign.DesignSpace{
		Table:      "t",
		Structures: structures,
		Configs:    dyndesign.SingleIndexConfigs(len(structures)),
	})
	if err != nil {
		t.Fatal(err)
	}
	empty := dyndesign.Config(0)
	rec, err := adv.Recommend(w, dyndesign.Options{K: 2, Final: &empty})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Solution.Changes > 2 {
		t.Errorf("changes = %d", rec.Solution.Changes)
	}
	report, err := dyndesign.Replay(db, w, rec, rec.PerStatement())
	if err != nil {
		t.Fatal(err)
	}
	if report.Statements != w.Len() {
		t.Errorf("replayed %d of %d statements", report.Statements, w.Len())
	}
	measured := float64(report.TotalPages())
	if measured < rec.Solution.Cost*0.8 || measured > rec.Solution.Cost*1.2 {
		t.Errorf("measured %.0f vs estimated %.0f", measured, rec.Solution.Cost)
	}
}

func TestPublicAPIStrategies(t *testing.T) {
	if len(dyndesign.Strategies()) != 7 {
		t.Errorf("strategies = %v", dyndesign.Strategies())
	}
	db := buildAPIDatabase(t, 10000)
	w, err := dyndesign.PaperWorkload("W1", 10000, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	structures := dyndesign.PaperStructures("t")
	adv, err := dyndesign.NewAdvisor(db, dyndesign.DesignSpace{
		Table:      "t",
		Structures: structures,
		Configs:    dyndesign.SingleIndexConfigs(len(structures)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []dyndesign.Strategy{
		dyndesign.StrategyKAware, dyndesign.StrategyGreedySeq,
		dyndesign.StrategyMerge, dyndesign.StrategyHybrid,
	} {
		rec, err := adv.Recommend(w, dyndesign.Options{K: 2, Strategy: s})
		if err != nil {
			t.Fatalf("strategy %s: %v", s, err)
		}
		if rec.Strategy != s {
			t.Errorf("recommendation reports strategy %s", rec.Strategy)
		}
	}
}

func TestPublicAPIWorkloadJSON(t *testing.T) {
	w, err := dyndesign.PaperWorkload("W3", 5000, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := dyndesign.ReadWorkloadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != w.Len() {
		t.Errorf("round trip %d != %d", got.Len(), w.Len())
	}
}

func TestPublicAPICandidates(t *testing.T) {
	w := &dyndesign.Workload{}
	s, err := dyndesign.NewStatement("SELECT a FROM t WHERE b = 3")
	if err != nil {
		t.Fatal(err)
	}
	w.Append("x", s)
	defs := dyndesign.CandidatesFromWorkload(w, "t", dyndesign.CandidateOptions{})
	if len(defs) == 0 {
		t.Fatal("no candidates")
	}
	found := false
	for _, d := range defs {
		if d.Name() == "I(b,a)" {
			found = true
		}
	}
	if !found {
		t.Errorf("covering candidate missing from %v", defs)
	}
}

func TestPublicAPIConfigs(t *testing.T) {
	c := dyndesign.Config(0).With(2).With(5)
	if c.Count() != 2 || !c.Has(5) {
		t.Errorf("config ops broken: %v", c)
	}
	if dyndesign.Unconstrained != -1 {
		t.Error("Unconstrained constant changed")
	}
	if dyndesign.FreeEndpoints == dyndesign.CountAll {
		t.Error("policies equal")
	}
}

func TestPublicAPISolveDirect(t *testing.T) {
	// Using the solvers with a custom cost model, without the engine.
	model := constModel{}
	p := &dyndesign.Problem{
		Stages:  4,
		Configs: []dyndesign.Config{0, 1},
		Model:   model,
		K:       1,
	}
	sol, err := dyndesign.Solve(p, dyndesign.StrategyKAware)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Designs) != 4 {
		t.Errorf("designs = %v", sol.Designs)
	}
}

// constModel is a trivial custom cost model: config 1 is always better
// to execute but costs to build.
type constModel struct{}

func (constModel) Exec(stage int, c dyndesign.Config) float64 {
	if c == 1 {
		return 1
	}
	return 10
}
func (constModel) Trans(from, to dyndesign.Config) float64 {
	if from == to {
		return 0
	}
	return 5
}
func (constModel) Size(c dyndesign.Config) float64 { return float64(c.Count()) }

func TestPublicAPITuningSurface(t *testing.T) {
	db := buildAPIDatabase(t, 20000)
	structures := dyndesign.PaperStructures("t")
	space := dyndesign.DesignSpace{
		Table:      "t",
		Structures: structures,
		Configs:    dyndesign.SingleIndexConfigs(len(structures)),
	}
	adv, err := dyndesign.NewAdvisor(db, space)
	if err != nil {
		t.Fatal(err)
	}
	var traces []*dyndesign.Workload
	for seed := int64(1); seed <= 2; seed++ {
		w, err := dyndesign.PaperWorkload("W1", 20000, 20, seed)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, w)
	}
	opts := dyndesign.Options{}

	cv, err := dyndesign.CrossValidateK(adv, traces, opts, 4)
	if err != nil || len(cv.Curve) != 5 {
		t.Fatalf("CrossValidateK: %+v, %v", cv, err)
	}
	elbow, err := dyndesign.ElbowK(adv, traces[0], opts, -1, 0)
	if err != nil || elbow.K < 0 {
		t.Fatalf("ElbowK: %+v, %v", elbow, err)
	}
	multi, err := dyndesign.RecommendMulti(adv, traces, dyndesign.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	cost, err := dyndesign.EvaluateRecommendationOn(adv, multi, traces[1], opts)
	if err != nil || cost <= 0 {
		t.Fatalf("EvaluateRecommendationOn: %f, %v", cost, err)
	}

	mon, err := dyndesign.NewAlerter(adv, space.Configs, dyndesign.Config(0), dyndesign.AlerterOptions{
		WindowSize: 50, CheckEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	mixes := dyndesign.PaperMixes(20000)
	stmts, err := mixes["A"].Generate(rand.New(rand.NewSource(3)), 120)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for _, s := range stmts {
		alert, err := mon.Observe(s)
		if err != nil {
			t.Fatal(err)
		}
		if alert != nil {
			fired = true
		}
	}
	if !fired {
		t.Error("alerter never fired on an unindexed hot workload")
	}
}

func TestPublicAPISnapshot(t *testing.T) {
	db := buildAPIDatabase(t, 2000)
	var buf bytes.Buffer
	if err := dyndesign.SaveDatabase(db, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := dyndesign.LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.MustExec("SELECT COUNT(*) FROM t").Count; got != 2000 {
		t.Errorf("loaded rows = %d", got)
	}
}

func TestPublicAPIGeneratePhased(t *testing.T) {
	mixes := dyndesign.PaperMixes(1000)
	w, err := dyndesign.GeneratePhased("x", mixes, []dyndesign.PhaseSpec{{Mix: "A", Count: 5}}, 1)
	if err != nil || w.Len() != 5 {
		t.Fatalf("GeneratePhased: %v, %v", w, err)
	}
}
