package main

import (
	"sync"

	"dyndesign/internal/core"
)

// syntheticModel is a deterministic phase-structured cost model in the
// shape of the paper's workloads: the stage sequence is divided into
// phases, each phase prefers one index, queries are much cheaper under
// the preferred index, and transitions charge per structure built or
// dropped. The structure matters: on i.i.d.-random costs the ranking
// optimizer degenerates to its small-k worst case (budget exhaustion),
// whereas phase-structured costs keep every strategy on its typical
// path — which is what a regression gate should time.
//
// The model memoizes evaluations behind a mutex and counts calls and
// memo hits, standing in for the advisor's what-if cache: calls map to
// what-if optimizer invocations, hits to cache hits. It is safe for
// concurrent use, as CostModel requires.
type syntheticModel struct {
	n, m    int // stages, candidate configurations
	structs int // underlying index structures
	phases  int

	mu    sync.Mutex
	exec  map[execKey]float64
	calls int64
	hits  int64
}

type execKey struct {
	stage int
	c     core.Config
}

const benchSeed = 0x9e3779b97f4a7c15

// splitmix64 is the standard 64-bit mixer; deterministic noise source.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newSyntheticModel(n, m, phases int) *syntheticModel {
	return &syntheticModel{
		n: n, m: m, structs: m - 1,
		phases: phases,
		exec:   make(map[execKey]float64, n*m),
	}
}

// newLatticeModel builds the model over the full 2^structs configuration
// lattice — the shape that exercises the hypercube kernel cells (the
// single-index grid keeps candidate sets narrow enough that the dense
// kernel always wins the auto comparison).
func newLatticeModel(n, structs, phases int) *syntheticModel {
	m := 1 << uint(structs)
	return &syntheticModel{
		n: n, m: m, structs: structs,
		phases: phases,
		exec:   make(map[execKey]float64, n*m),
	}
}

// configs returns the candidate list: the empty design plus one
// single-index configuration per structure, the paper's design space
// shape.
func (sm *syntheticModel) configs() []core.Config {
	out := make([]core.Config, 0, sm.m)
	out = append(out, core.Config(0))
	for s := 0; s < sm.m-1; s++ {
		out = append(out, core.ConfigOf(s))
	}
	return out
}

// latticeConfigs returns every subset of the structures — the 2^structs
// candidate list of the hypercube cells.
func (sm *syntheticModel) latticeConfigs() []core.Config {
	out := make([]core.Config, 1<<uint(sm.structs))
	for i := range out {
		out[i] = core.Config(i)
	}
	return out
}

// preferred returns the index structure the stage's phase favors.
func (sm *syntheticModel) preferred(stage int) int {
	phase := stage * sm.phases / sm.n
	return int(splitmix64(benchSeed^uint64(phase)) % uint64(sm.structs))
}

// Exec returns a low cost under the phase's preferred index and a high
// scan-like cost otherwise, with deterministic per-(stage, config)
// noise so no two cells are ever exactly tied.
func (sm *syntheticModel) Exec(stage int, c core.Config) float64 {
	key := execKey{stage, c}
	sm.mu.Lock()
	sm.calls++
	if v, ok := sm.exec[key]; ok {
		sm.hits++
		sm.mu.Unlock()
		return v
	}
	sm.mu.Unlock()

	base := 100.0
	if c.Has(sm.preferred(stage)) {
		base = 10.0
	}
	noise := float64(splitmix64(benchSeed^uint64(stage)<<20^uint64(c))%1000) / 500.0
	v := base + noise

	sm.mu.Lock()
	sm.exec[key] = v
	sm.mu.Unlock()
	return v
}

// Trans charges a build/drop cost per structure changed; Trans(c, c)
// is 0 as CostModel requires.
func (sm *syntheticModel) Trans(from, to core.Config) float64 {
	added, removed := from.Diff(to)
	return 40*float64(len(added)) + 5*float64(len(removed))
}

// TransParts implements core.AdditiveTransModel: Trans above is exactly
// 40 per structure built plus 5 per structure dropped, so the exact
// solvers may use the hypercube kernel when it wins the cost comparison
// (the single-index grid cells never do; the lattice cells always do).
func (sm *syntheticModel) TransParts() (add, drop []float64) {
	add = make([]float64, sm.structs)
	drop = make([]float64, sm.structs)
	for s := range add {
		add[s] = 40
		drop[s] = 5
	}
	return add, drop
}

// Size counts structures; the grid leaves SpaceBound unset, so this
// only has to be consistent.
func (sm *syntheticModel) Size(c core.Config) float64 { return float64(c.Count()) }

// stats returns total Exec calls and memo hits so far.
func (sm *syntheticModel) stats() (calls, hits int64) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.calls, sm.hits
}

// groupedBenchModel is the partitioned-solver grid's cost model: EXEC
// decomposes per structure (a phase-preferred index term plus
// per-structure maintenance and noise, each depending only on that
// structure's bit), so the interaction graph factors into one
// component per structure and the partitioned solve must recombine
// with a provably zero gap. The non-factorable variant declares one
// clique spanning every structure — same costs, but the solver cannot
// split the lattice and (under ForceBeam) must run the anytime beam.
// Unlike syntheticModel, the tie-breaking noise is drawn per
// (stage, structure, bit) rather than per full configuration: whole-
// config noise would couple every structure and silently break the
// additive-EXEC contract ExecInteractions promises.
type groupedBenchModel struct {
	n, structs int
	phases     int
	cliques    []core.Config

	mu    sync.Mutex
	exec  map[execKey]float64
	calls int64
	hits  int64
}

func newGroupedBenchModel(n, structs, phases int, factorable bool) *groupedBenchModel {
	gm := &groupedBenchModel{
		n: n, structs: structs, phases: phases,
		exec: make(map[execKey]float64, n*(1<<uint(structs))),
	}
	if factorable {
		for s := 0; s < structs; s++ {
			gm.cliques = append(gm.cliques, core.ConfigOf(s))
		}
	} else {
		var all core.Config
		for s := 0; s < structs; s++ {
			all = all.With(s)
		}
		gm.cliques = []core.Config{all}
	}
	return gm
}

// ExecInteractions implements core.InteractionModel.
func (gm *groupedBenchModel) ExecInteractions() []core.Config { return gm.cliques }

func (gm *groupedBenchModel) latticeConfigs() []core.Config {
	out := make([]core.Config, 1<<uint(gm.structs))
	for i := range out {
		out[i] = core.Config(i)
	}
	return out
}

func (gm *groupedBenchModel) preferred(stage int) int {
	phase := stage * gm.phases / gm.n
	return int(splitmix64(benchSeed^uint64(phase)) % uint64(gm.structs))
}

// Exec sums one term per structure: scan-or-seek for the phase's
// preferred index, maintenance for other held indexes, plus
// per-structure noise.
func (gm *groupedBenchModel) Exec(stage int, c core.Config) float64 {
	key := execKey{stage, c}
	gm.mu.Lock()
	gm.calls++
	if v, ok := gm.exec[key]; ok {
		gm.hits++
		gm.mu.Unlock()
		return v
	}
	gm.mu.Unlock()

	pref := gm.preferred(stage)
	v := 0.0
	for s := 0; s < gm.structs; s++ {
		has := c.Has(s)
		var t float64
		switch {
		case s == pref && has:
			t = 10
		case s == pref:
			t = 100
		case has:
			t = 2
		}
		bit := uint64(0)
		if has {
			bit = 1
		}
		t += float64(splitmix64(benchSeed^uint64(stage)<<20^uint64(s)<<1^bit)%1000) / 500.0
		v += t
	}

	gm.mu.Lock()
	gm.exec[key] = v
	gm.mu.Unlock()
	return v
}

func (gm *groupedBenchModel) Trans(from, to core.Config) float64 {
	added, removed := from.Diff(to)
	return 40*float64(len(added)) + 5*float64(len(removed))
}

func (gm *groupedBenchModel) TransParts() (add, drop []float64) {
	add = make([]float64, gm.structs)
	drop = make([]float64, gm.structs)
	for s := range add {
		add[s] = 40
		drop[s] = 5
	}
	return add, drop
}

func (gm *groupedBenchModel) Size(c core.Config) float64 { return float64(c.Count()) }

func (gm *groupedBenchModel) stats() (calls, hits int64) {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	return gm.calls, gm.hits
}
