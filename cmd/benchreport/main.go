// Command benchreport produces a machine-readable benchmark report of
// the solver strategies over a synthetic strategy × n × m × k grid,
// for the CI bench-regression gate.
//
// Usage:
//
//	benchreport -o BENCH_2026-08-05.json
//	benchreport -check -baseline bench/baseline.json -threshold 0.25
//
// Each grid cell solves one deterministic phase-structured problem
// (see syntheticModel) and reports ns/op, allocs/op, and B/op from a
// testing.Benchmark over the warmed problem, plus the cold solve's
// what-if call count and memo hit rate. A calibration cell — a fixed
// pure-CPU workload — is measured the same way; -check normalizes each
// ns/op ratio by the calibration ratio before applying the threshold,
// so a uniformly slower CI machine does not read as a regression.
//
// With -check, the run exits 1 (after writing the report) if any
// cell's normalized ns/op exceeds baseline × (1 + threshold). Cells
// present in only one of the two reports are reported but do not fail
// the gate, so the grid can grow without chicken-and-egg baselines.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"dyndesign/internal/core"
	"dyndesign/internal/workload"
)

// SchemaVersion identifies the report layout; bump on incompatible
// changes so the checker can refuse mismatched baselines.
const SchemaVersion = 1

// Report is the BENCH_<date>.json document.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Generated     string `json:"generated"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	Benchtime     string `json:"benchtime"`
	// CalibrationNS is the ns/op of the fixed calibration workload on
	// this machine; regression checks normalize by its ratio.
	CalibrationNS float64 `json:"calibration_ns"`
	Cells         []Cell  `json:"cells"`
}

// Cell is one grid measurement.
type Cell struct {
	Strategy    string  `json:"strategy"`
	N           int     `json:"n"` // stages
	M           int     `json:"m"` // candidate configurations
	K           int     `json:"k"` // change bound
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// WhatIfCalls and CacheHitRate describe the cold solve: total cost
	// model evaluations and the fraction answered by the memo (intra-
	// solve reuse, e.g. merge re-deriving the unconstrained matrices).
	WhatIfCalls  int64   `json:"whatif_calls"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Cost and Changes pin the solution; a drift here is a correctness
	// bug, not a perf regression, and fails -check regardless of time.
	Cost    float64 `json:"cost"`
	Changes int     `json:"changes"`
	// Gap is the partitioned cells' reported anytime optimality gap:
	// pinned to exactly 0 at generation time for factorable cells, and
	// verified against the monolithic exact solve for beam cells.
	Gap float64 `json:"gap"`
}

// key identifies a cell across reports.
func (c Cell) key() string {
	return fmt.Sprintf("%s/n=%d/m=%d/k=%d", c.Strategy, c.N, c.M, c.K)
}

func main() {
	// testing.Init registers the test.* flags testing.Benchmark
	// consults; it must run before flag.Parse.
	testing.Init()
	out := flag.String("o", "", "output report path (default BENCH_<date>.json)")
	benchtime := flag.String("benchtime", "100ms", "per-cell benchmark time (testing -benchtime syntax)")
	baseline := flag.String("baseline", "bench/baseline.json", "baseline report for -check")
	check := flag.Bool("check", false, "compare against -baseline and exit 1 on regression")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional ns/op increase before -check fails")
	allocThreshold := flag.Float64("alloc-threshold", 0.25, "allowed fractional allocs/op increase before -check fails (allocs are machine-independent; no calibration applies)")
	rows := flag.Int64("rows", workload.PaperRows, "table cardinality of the what-if costing cells (paper scale by default)")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: bad -benchtime: %v\n", err)
		os.Exit(2)
	}

	rep, err := runGrid(*benchtime, *rows)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	if err := writeReport(path, rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d cells, calibration %.0f ns/op)\n",
		path, len(rep.Cells), rep.CalibrationNS)

	if *check {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: reading baseline: %v\n", err)
			os.Exit(1)
		}
		if failures := compare(base, rep, *threshold, *allocThreshold, os.Stderr); failures > 0 {
			fmt.Fprintf(os.Stderr, "benchreport: %d regression(s) beyond %.0f%% time / %.0f%% allocs\n",
				failures, *threshold*100, *allocThreshold*100)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchreport: no regressions beyond %.0f%% time / %.0f%% allocs\n",
			*threshold*100, *allocThreshold*100)
	}
}

// grid axes. Small enough to finish in seconds, large enough that the
// DP sweeps, merging iterations, and ranking expansions all do real
// work (n·m² and k·n·m² terms dominate the larger cells).
var (
	gridStrategies = []core.Strategy{
		core.StrategyKAware, core.StrategyGreedySeq,
		core.StrategyMerge, rankingPruned,
	}
	gridN = []int{64, 256}
	gridM = []int{8, 16}
	gridK = []int{2, 8}
)

// rankingPruned is the grid's ranking variant: path ranking with
// infeasible-path pruning. Faithful (unpruned) ranking hits its
// expansion budget on small k — the paper's documented worst case —
// which would make the cell a timeout, not a benchmark.
const rankingPruned core.Strategy = "ranking+prune"

// kawareDense and kawareHyper are the lattice cells' strategies: the
// exact k-aware solve with the transition kernel forced, over the full
// 2^structs configuration lattice. They measure the tentpole speedup —
// O(m·2^m) hypercube sweeps against the O(4^m) dense all-pairs scan —
// on identical problems, so their solution pins must agree exactly.
const (
	kawareDense core.Strategy = "kaware+dense"
	kawareHyper core.Strategy = "kaware+hyper"
)

// latticeCells are the wide exact-solve grid points: structs index
// structures, 2^structs candidate configurations. The dense kernel is
// only measured at 8 structures — at 10 its 4^10 all-pairs relaxations
// make the cell a timeout, which is exactly the blowup the hypercube
// kernel removes.
var latticeCells = []struct {
	strat   core.Strategy
	structs int
}{
	{kawareDense, 8},
	{kawareHyper, 8},
	{kawareHyper, 10},
}

// partitionedFactor and partitionedBeam are the partitioned solver's
// grid variants: a factorable model (one interaction clique per
// structure) recombined exactly, and the same costs declared as one
// spanning clique with the anytime beam forced. The factorable cells
// carry a hard gap==0 pin — a non-zero gap fails report generation,
// not just the regression compare — and the beam cells are verified
// against the monolithic exact solve: cost within the reported gap.
const (
	partitionedFactor core.Strategy = "partitioned+factor"
	partitionedBeam   core.Strategy = "partitioned+beam"
)

// partitionCells: structs index structures, m = 2^structs candidate
// configurations (128 and 512, both beyond the grid's dense m axis).
// Factorable cells use 4 phases and k ≥ 4: every component's design
// changes land on the 3 shared phase boundaries, so the synchronized
// full-budget composition fits k and recombination is provably optimal
// — the regime the hard gap==0 pin asserts. (A k below the boundary
// count would make a positive gap the *correct* answer, which is the
// beam cells' territory.) Beam cells run the 6-phase model at k=2,
// where budget pressure is real: their pin is the sandwich against the
// dense exact solve, which stays affordable at these sizes.
var partitionCells = []struct {
	strat   core.Strategy
	structs int
	phases  int
	ks      []int
}{
	{partitionedFactor, 7, 4, []int{4, 8}},
	{partitionedFactor, 9, 4, []int{4, 8}},
	{partitionedBeam, 7, 6, []int{2}},
	{partitionedBeam, 9, 6, []int{2}},
}

// solveCell dispatches one grid solve.
func solveCell(ctx context.Context, p *core.Problem, strat core.Strategy) (*core.Solution, error) {
	if strat == rankingPruned {
		res, err := core.SolveRanking(ctx, p, core.RankingOptions{Prune: true})
		if err != nil {
			return nil, err
		}
		if err := res.Err(); err != nil {
			return nil, err
		}
		return res.Solution, nil
	}
	return core.Solve(ctx, p, strat)
}

func runGrid(benchtime string, rows int64) (*Report, error) {
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Benchtime:     benchtime,
	}
	rep.CalibrationNS = calibrate()
	ctx := context.Background()
	for _, strat := range gridStrategies {
		for _, n := range gridN {
			for _, m := range gridM {
				for _, k := range gridK {
					cell, err := runCell(ctx, strat, n, m, k)
					if err != nil {
						return nil, fmt.Errorf("cell %s/n=%d/m=%d/k=%d: %w", strat, n, m, k, err)
					}
					rep.Cells = append(rep.Cells, cell)
					fmt.Fprintf(os.Stderr, "  %-32s %12.0f ns/op %8d allocs/op\n",
						cell.key(), cell.NsPerOp, cell.AllocsPerOp)
				}
			}
		}
	}
	for _, lc := range latticeCells {
		for _, k := range gridK {
			cell, err := runLatticeCell(ctx, lc.strat, 64, lc.structs, k)
			if err != nil {
				return nil, fmt.Errorf("cell %s/structs=%d/k=%d: %w", lc.strat, lc.structs, k, err)
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Fprintf(os.Stderr, "  %-32s %12.0f ns/op %8d allocs/op\n",
				cell.key(), cell.NsPerOp, cell.AllocsPerOp)
		}
	}
	for _, pc := range partitionCells {
		for _, k := range pc.ks {
			cell, err := runPartitionCell(ctx, pc.strat, 64, pc.structs, pc.phases, k)
			if err != nil {
				return nil, fmt.Errorf("cell %s/structs=%d/k=%d: %w", pc.strat, pc.structs, k, err)
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Fprintf(os.Stderr, "  %-32s %12.0f ns/op %8d allocs/op  gap %.3f\n",
				cell.key(), cell.NsPerOp, cell.AllocsPerOp, cell.Gap)
		}
	}
	whatIfCells, err := runWhatIfCells(ctx, rows)
	if err != nil {
		return nil, fmt.Errorf("what-if cells: %w", err)
	}
	rep.Cells = append(rep.Cells, whatIfCells...)
	if err := checkKernelPins(rep.Cells); err != nil {
		return nil, err
	}
	return rep, nil
}

// checkKernelPins hard-fails the run when the dense and hypercube
// kernels disagree on any lattice cell they both solved: both kernels
// are exact, so a differing cost or change count is a correctness bug
// that must never make it into a report.
func checkKernelPins(cells []Cell) error {
	type pinKey struct{ n, m, k int }
	dense := make(map[pinKey]Cell)
	for _, c := range cells {
		if c.Strategy == string(kawareDense) {
			dense[pinKey{c.N, c.M, c.K}] = c
		}
	}
	for _, c := range cells {
		if c.Strategy != string(kawareHyper) {
			continue
		}
		d, ok := dense[pinKey{c.N, c.M, c.K}]
		if !ok {
			continue
		}
		if c.Cost != d.Cost || c.Changes != d.Changes {
			return fmt.Errorf("kernel disagreement at n=%d m=%d k=%d: dense (cost %.6f, %d changes) vs hypercube (cost %.6f, %d changes)",
				c.N, c.M, c.K, d.Cost, d.Changes, c.Cost, c.Changes)
		}
	}
	return nil
}

// runLatticeCell measures one exact k-aware solve over the full
// 2^structs lattice with the transition kernel forced; M reports the
// candidate-configuration count like every other cell.
func runLatticeCell(ctx context.Context, strat core.Strategy, n, structs, k int) (Cell, error) {
	model := newLatticeModel(n, structs, 6)
	kernel := core.KernelDense
	if strat == kawareHyper {
		kernel = core.KernelHypercube
	}
	p := &core.Problem{
		Stages:  n,
		Configs: model.latticeConfigs(),
		K:       k,
		Policy:  core.FreeEndpoints,
		Model:   model,
		Kernel:  kernel,
	}
	sol, err := core.Solve(ctx, p, core.StrategyKAware)
	if err != nil {
		return Cell{}, err
	}
	calls, hits := model.stats()
	cell := Cell{
		Strategy:    string(strat),
		N:           n,
		M:           len(p.Configs),
		K:           k,
		WhatIfCalls: calls,
		Cost:        sol.Cost,
		Changes:     sol.Changes,
	}
	if calls > 0 {
		cell.CacheHitRate = float64(hits) / float64(calls)
	}
	cell.NsPerOp, cell.AllocsPerOp, cell.BytesPerOp = measure(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(ctx, p, core.StrategyKAware); err != nil {
				b.Fatal(err)
			}
		}
	})
	return cell, nil
}

// runPartitionCell measures one partitioned-solver grid point over the
// full 2^structs lattice, enforcing the correctness pins at generation
// time: factorable cells must report exactly gap 0, beam cells must
// land within their reported gap of the monolithic exact optimum.
func runPartitionCell(ctx context.Context, strat core.Strategy, n, structs, phases, k int) (Cell, error) {
	factorable := strat == partitionedFactor
	model := newGroupedBenchModel(n, structs, phases, factorable)
	p := &core.Problem{
		Stages:  n,
		Configs: model.latticeConfigs(),
		K:       k,
		Policy:  core.FreeEndpoints,
		Model:   model,
	}
	// BeamWidth 128 keeps the widening schedule (64, 128) short enough
	// for a CI cell while still exercising the anytime merge.
	opts := core.PartitionOptions{}
	if !factorable {
		opts.ForceBeam = true
		opts.BeamWidth = 128
	}
	ps, err := core.SolvePartitionedOpts(ctx, p, opts)
	if err != nil {
		return Cell{}, err
	}
	if factorable {
		if !ps.Factored {
			return Cell{}, fmt.Errorf("factorable cell did not factor (components=%d)", ps.Components)
		}
		if ps.Gap != 0 {
			return Cell{}, fmt.Errorf("factorable cell reported gap %v, want exactly 0", ps.Gap)
		}
	} else {
		exactP := *p
		exact, err := core.Solve(ctx, &exactP, core.StrategyKAware)
		if err != nil {
			return Cell{}, fmt.Errorf("exact verification solve: %w", err)
		}
		const tol = 1e-6
		if ps.Cost < exact.Cost-tol {
			return Cell{}, fmt.Errorf("beam cost %v beats the exact optimum %v", ps.Cost, exact.Cost)
		}
		if ps.Cost-ps.Gap > exact.Cost+tol {
			return Cell{}, fmt.Errorf("beam bound not admissible: cost %v − gap %v > optimum %v",
				ps.Cost, ps.Gap, exact.Cost)
		}
	}
	calls, hits := model.stats()
	cell := Cell{
		Strategy:    string(strat),
		N:           n,
		M:           len(p.Configs),
		K:           k,
		WhatIfCalls: calls,
		Cost:        ps.Cost,
		Changes:     ps.Changes,
		Gap:         ps.Gap,
	}
	if calls > 0 {
		cell.CacheHitRate = float64(hits) / float64(calls)
	}
	cell.NsPerOp, cell.AllocsPerOp, cell.BytesPerOp = measure(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.SolvePartitionedOpts(ctx, p, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	return cell, nil
}

// runCell measures one grid point: a cold solve for the what-if
// profile and the solution pin, then a timed loop over the warmed
// model so ns/op measures solver work, not cost model evaluation
// (matching the root bench suite's warm-memo convention).
func runCell(ctx context.Context, strat core.Strategy, n, m, k int) (Cell, error) {
	// Six phases keep the DP, reduction, and merging cells busy (the
	// unconstrained optimum has 5 interior changes, so k=2 forces real
	// constrained work). Ranking enumerates *paths* in cost order, and
	// when the optimum is infeasible the near-ties explode — the
	// paper's small-k worst case, a timeout rather than a benchmark —
	// so its cells use k+1 phases, timing the typical find-first-
	// feasible-path behavior instead.
	phases := 6
	if strat == rankingPruned && k+1 < phases {
		phases = k + 1
	}
	model := newSyntheticModel(n, m, phases)
	p := &core.Problem{
		Stages:  n,
		Configs: model.configs(),
		K:       k,
		Policy:  core.FreeEndpoints,
		Model:   model,
	}
	sol, err := solveCell(ctx, p, strat)
	if err != nil {
		return Cell{}, err
	}
	calls, hits := model.stats()
	cell := Cell{
		Strategy:    string(strat),
		N:           n,
		M:           m,
		K:           k,
		WhatIfCalls: calls,
		Cost:        sol.Cost,
		Changes:     sol.Changes,
	}
	if calls > 0 {
		cell.CacheHitRate = float64(hits) / float64(calls)
	}
	cell.NsPerOp, cell.AllocsPerOp, cell.BytesPerOp = measure(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := solveCell(ctx, p, strat); err != nil {
				b.Fatal(err)
			}
		}
	})
	return cell, nil
}

// benchRepeats is the per-cell sample count: every cell keeps its
// fastest ns/op of this many testing.Benchmark runs. Noisy shared
// runners routinely inflate a single 100ms sample by 1.5x or more;
// the minimum is the sample least polluted by neighbors, so both the
// baseline and the checked run converge on comparable numbers.
const benchRepeats = 3

// measure runs the benchmark loop benchRepeats times and keeps the
// fastest sample's numbers.
func measure(fn func(b *testing.B)) (nsPerOp float64, allocs, bytes int64) {
	nsPerOp = math.Inf(1)
	for r := 0; r < benchRepeats; r++ {
		res := testing.Benchmark(fn)
		if ns := float64(res.NsPerOp()); ns < nsPerOp {
			nsPerOp = ns
			allocs = res.AllocsPerOp()
			bytes = res.AllocedBytesPerOp()
		}
	}
	return nsPerOp, allocs, bytes
}

// calibrate measures a fixed pure-CPU workload (a splitmix64 chain)
// whose speed tracks single-core integer throughput. Reports on two
// machines are comparable after dividing by their calibration ratio.
func calibrate() float64 {
	ns, _, _ := measure(func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			x := uint64(i) + 1
			for j := 0; j < 1<<16; j++ {
				x = splitmix64(x)
			}
			acc ^= x
		}
		if acc == 42 { // keep the chain observable
			b.Log(acc)
		}
	})
	return ns
}

// compare reports each cell's normalized ratio and returns the number
// of gate failures: ns/op regressions beyond the time threshold,
// allocs/op regressions beyond the alloc threshold (allocation counts
// are deterministic per machine class, so no calibration normalizer
// applies), and solution drifts (cost or change count differing from
// baseline).
func compare(base, cur *Report, threshold, allocThreshold float64, w *os.File) int {
	if base.SchemaVersion != cur.SchemaVersion {
		fmt.Fprintf(w, "benchreport: baseline schema v%d != current v%d; refusing to compare\n",
			base.SchemaVersion, cur.SchemaVersion)
		return 1
	}
	normalizer := 1.0
	if base.CalibrationNS > 0 && cur.CalibrationNS > 0 {
		normalizer = cur.CalibrationNS / base.CalibrationNS
		fmt.Fprintf(w, "calibration: baseline %.0f ns, current %.0f ns, machine-speed normalizer %.3f\n",
			base.CalibrationNS, cur.CalibrationNS, normalizer)
	}
	baseByKey := make(map[string]Cell, len(base.Cells))
	for _, c := range base.Cells {
		baseByKey[c.key()] = c
	}
	failures := 0
	for _, c := range cur.Cells {
		b, ok := baseByKey[c.key()]
		if !ok {
			fmt.Fprintf(w, "  %-32s NEW (no baseline)\n", c.key())
			continue
		}
		delete(baseByKey, c.key())
		if c.Cost != b.Cost || c.Changes != b.Changes {
			fmt.Fprintf(w, "  %-32s SOLUTION DRIFT: cost %.1f→%.1f changes %d→%d\n",
				c.key(), b.Cost, c.Cost, b.Changes, c.Changes)
			failures++
			continue
		}
		ratio := (c.NsPerOp / b.NsPerOp) / normalizer
		status := "ok"
		if ratio > 1+threshold {
			status = "REGRESSION"
			failures++
		}
		allocRatio := 1.0
		if b.AllocsPerOp > 0 {
			allocRatio = float64(c.AllocsPerOp) / float64(b.AllocsPerOp)
		} else if c.AllocsPerOp > 0 {
			allocRatio = math.Inf(1)
		}
		if allocRatio > 1+allocThreshold {
			status = "ALLOC REGRESSION"
			failures++
		}
		fmt.Fprintf(w, "  %-32s %6.2fx time %6.2fx allocs %s\n", c.key(), ratio, allocRatio, status)
	}
	for k := range baseByKey {
		fmt.Fprintf(w, "  %-32s REMOVED (in baseline only)\n", k)
	}
	return failures
}

func writeReport(path string, rep *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
