// What-if costing throughput cells: the same paper-scale costing
// problem evaluated through the scalar per-call path (assemble an index
// slice, walk the histograms per configuration — the pre-plan-table hot
// path) and through compiled plan tables with the batched frontier
// entry point. The two variants are required to produce bit-identical
// cost matrices and solve to identical designs; the gate then tracks
// the throughput of each, and the scalar/batched ratio is the tentpole
// speedup.
package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"

	"dyndesign/internal/catalog"
	"dyndesign/internal/core"
	"dyndesign/internal/cost"
	"dyndesign/internal/stats"
	"dyndesign/internal/types"
	"dyndesign/internal/workload"
)

const (
	whatIfScalar core.Strategy = "whatif+scalar"
	whatIfBatch  core.Strategy = "whatif+batch"
)

// whatIfBenchStructs index structures over the paper table; the
// candidate set is the full 2^10 lattice, which puts the cells in the
// m ≥ 10-structure regime the acceptance criteria name.
var whatIfBenchStructs = [][]string{
	{"a"}, {"b"}, {"c"}, {"d"},
	{"a", "b"}, {"c", "d"}, {"b", "a"}, {"d", "c"}, {"a", "c"}, {"b", "d"},
}

// syntheticPaperStats fabricates the uniform statistics ANALYZE would
// collect on the paper table at the given scale — values uniform in
// [0, domain), ~5 rows per value — without materializing 2.5M rows.
func syntheticPaperStats(rows, domain int64) *stats.TableStats {
	const buckets = 100
	perValue := rows / domain
	if perValue < 1 {
		perValue = 1
	}
	ts := &stats.TableStats{
		Table:    workload.PaperTable,
		Rows:     rows,
		RowBytes: 36,
		Columns:  map[string]*stats.ColumnStats{},
	}
	for _, col := range []string{"a", "b", "c", "d"} {
		h := &stats.Histogram{Min: types.NewInt(0), Max: types.NewInt(domain - 1)}
		prev := int64(-1)
		for i := 0; i < buckets; i++ {
			upper := (int64(i)+1)*domain/buckets - 1
			if upper <= prev {
				continue
			}
			distinct := upper - prev
			h.Buckets = append(h.Buckets, stats.Bucket{
				Upper:    types.NewInt(upper),
				Count:    distinct * perValue,
				Distinct: distinct,
			})
			h.Rows += distinct * perValue
			prev = upper
		}
		ts.Columns[col] = &stats.ColumnStats{Column: col, Rows: h.Rows, NDV: domain, Hist: h}
	}
	return ts
}

// whatIfWorld is the shared costing world of both variants: the
// paper-scale table, the hypothetical structures, and a deterministic
// phase-structured workload cut into stages.
type whatIfWorld struct {
	table cost.TablePhys
	phys  []cost.IndexPhys
	segs  []workload.Segment
	add   []float64 // per-structure build cost
	size  []float64 // per-structure pages
	calls atomic.Int64
}

func newWhatIfWorld(rows int64, stages, perStage int) (*whatIfWorld, error) {
	schema, err := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	if err != nil {
		return nil, err
	}
	domain := workload.DomainForRows(rows)
	w := &whatIfWorld{table: cost.TablePhys{
		Name:      workload.PaperTable,
		Schema:    schema,
		Rows:      float64(rows),
		HeapPages: cost.HeapPagesForRows(rows, 36),
		Stats:     syntheticPaperStats(rows, domain),
	}}
	for _, cols := range whatIfBenchStructs {
		ip, err := cost.HypotheticalIndex(catalog.IndexDef{Table: workload.PaperTable, Columns: cols}, w.table)
		if err != nil {
			return nil, err
		}
		w.phys = append(w.phys, ip)
		w.add = append(w.add, cost.BuildCost(ip, w.table))
		w.size = append(w.size, ip.TotalPages)
	}
	// Phase-structured read mixes (the paper's A/B/C/D rotation) with
	// one DML statement per stage so maintenance terms are exercised.
	mixes := workload.PaperMixes(rows)
	labels := []string{"A", "B", "C", "D"}
	rng := rand.New(rand.NewSource(11))
	wl := &workload.Workload{Name: "whatif-bench"}
	for i := 0; i < stages; i++ {
		label := labels[(i*4)/stages%len(labels)]
		sel, err := mixes[label].Generate(rng, perStage-1)
		if err != nil {
			return nil, err
		}
		wl.Append(label, sel...)
		var dml []workload.Statement
		if i%2 == 0 {
			dml, err = workload.GenerateInserts(workload.PaperTable, 4, domain, rng, 1)
		} else {
			dml, err = workload.GenerateUpdates(workload.PaperTable, "a", "b", domain, rng, 1)
		}
		if err != nil {
			return nil, err
		}
		wl.Append(label, dml...)
	}
	w.segs = wl.Segments(perStage)
	if len(w.segs) != stages {
		return nil, fmt.Errorf("whatif world: built %d segments, want %d", len(w.segs), stages)
	}
	return w, nil
}

func (w *whatIfWorld) latticeConfigs() []core.Config {
	configs := make([]core.Config, 1<<uint(len(w.phys)))
	for i := range configs {
		configs[i] = core.Config(i)
	}
	return configs
}

func (w *whatIfWorld) Trans(from, to core.Config) float64 {
	added, removed := from.Diff(to)
	total := 0.0
	for _, s := range added {
		total += w.add[s]
	}
	total += float64(len(removed)) * cost.DropCost()
	return total
}

func (w *whatIfWorld) TransParts() (add, drop []float64) {
	drop = make([]float64, len(w.phys))
	for i := range drop {
		drop[i] = cost.DropCost()
	}
	return w.add, drop
}

func (w *whatIfWorld) Size(c core.Config) float64 {
	total := 0.0
	for _, s := range c.Structures() {
		total += w.size[s]
	}
	return total
}

func (w *whatIfWorld) stats() (calls, hits int64) { return w.calls.Load(), 0 }

// scalarWhatIfModel is the pre-plan-table hot path: every evaluation
// assembles the configuration's []cost.IndexPhys and re-derives each
// statement's access paths and selectivities from the histograms.
type scalarWhatIfModel struct{ *whatIfWorld }

func (m scalarWhatIfModel) Exec(stage int, c core.Config) float64 {
	seg := m.segs[stage]
	m.calls.Add(int64(len(seg.Statements)))
	idxs := make([]cost.IndexPhys, 0, len(m.phys))
	for _, s := range c.Structures() {
		idxs = append(idxs, m.phys[s])
	}
	total := 0.0
	for _, s := range seg.Statements {
		v, err := cost.StatementCost(s.Stmt, m.table, idxs)
		if err != nil {
			return math.Inf(1)
		}
		total += v
	}
	return total
}

// batchWhatIfModel costs through compiled plan tables: one histogram
// pass per (statement, access path) at construction, masked lookups per
// configuration afterwards, with the batched frontier entry point.
type batchWhatIfModel struct {
	*whatIfWorld
	plans [][]*cost.PlanTable
}

func newBatchWhatIfModel(w *whatIfWorld) (*batchWhatIfModel, error) {
	m := &batchWhatIfModel{whatIfWorld: w, plans: make([][]*cost.PlanTable, len(w.segs))}
	for i, seg := range w.segs {
		m.plans[i] = make([]*cost.PlanTable, len(seg.Statements))
		for j, s := range seg.Statements {
			pt, err := cost.CompilePlan(s.Stmt, w.table, w.phys)
			if err != nil {
				return nil, fmt.Errorf("compiling %q: %w", s.SQL, err)
			}
			m.plans[i][j] = pt
		}
	}
	return m, nil
}

func (m *batchWhatIfModel) Exec(stage int, c core.Config) float64 {
	m.calls.Add(int64(len(m.plans[stage])))
	total := 0.0
	for _, pt := range m.plans[stage] {
		total += pt.Cost(uint64(c))
	}
	return total
}

func (m *batchWhatIfModel) BatchExec(stage int, configs []core.Config, out []float64) []float64 {
	if cap(out) < len(configs) {
		out = make([]float64, len(configs))
	}
	out = out[:len(configs)]
	m.calls.Add(int64(len(configs) * len(m.plans[stage])))
	for j, c := range configs {
		total := 0.0
		for _, pt := range m.plans[stage] {
			total += pt.Cost(uint64(c))
		}
		out[j] = total
	}
	return out
}

// whatIfFrontier evaluates the full stages × configs cost matrix the
// way the solvers would — BatchExec per stage when the model offers it,
// per-call Exec otherwise — and returns the checksum so the work cannot
// be dead-code-eliminated.
func whatIfFrontier(model core.CostModel, stages int, configs []core.Config, row []float64) float64 {
	sum := 0.0
	bm, batched := model.(core.BatchCostModel)
	for i := 0; i < stages; i++ {
		if batched {
			row = bm.BatchExec(i, configs, row)
			for _, v := range row {
				sum += v
			}
			continue
		}
		for _, c := range configs {
			sum += model.Exec(i, c)
		}
	}
	return sum
}

// runWhatIfCells builds the paper-scale world once, verifies the two
// costing variants are bit-identical (matrix and solution), and
// measures each variant's full-frontier costing throughput.
func runWhatIfCells(ctx context.Context, rows int64) ([]Cell, error) {
	const stages, perStage, k = 64, 4, 2
	world, err := newWhatIfWorld(rows, stages, perStage)
	if err != nil {
		return nil, err
	}
	scalar := scalarWhatIfModel{world}
	batch, err := newBatchWhatIfModel(world)
	if err != nil {
		return nil, err
	}
	configs := world.latticeConfigs()

	// Hard pin 1: bit-identical cost matrices.
	row := make([]float64, len(configs))
	for i := 0; i < stages; i++ {
		row = batch.BatchExec(i, configs, row)
		for j, c := range configs {
			want := scalar.Exec(i, c)
			if math.Float64bits(row[j]) != math.Float64bits(want) {
				return nil, fmt.Errorf("what-if variants disagree at stage %d config %d: batch %v != scalar %v",
					i, c, row[j], want)
			}
		}
	}

	// Hard pin 2: identical solutions from identical problems.
	solve := func(model core.CostModel) (*core.Solution, error) {
		p := &core.Problem{
			Stages:  stages,
			Configs: configs,
			K:       k,
			Policy:  core.FreeEndpoints,
			Model:   model,
			Kernel:  core.KernelHypercube,
		}
		return core.Solve(ctx, p, core.StrategyKAware)
	}
	world.calls.Store(0)
	scalarSol, err := solve(scalar)
	if err != nil {
		return nil, fmt.Errorf("scalar what-if solve: %w", err)
	}
	scalarCalls := world.calls.Load()
	world.calls.Store(0)
	batchSol, err := solve(batch)
	if err != nil {
		return nil, fmt.Errorf("batched what-if solve: %w", err)
	}
	batchCalls := world.calls.Load()
	if math.Float64bits(scalarSol.Cost) != math.Float64bits(batchSol.Cost) || scalarSol.Changes != batchSol.Changes {
		return nil, fmt.Errorf("what-if solution drift: scalar (cost %v, %d changes) vs batched (cost %v, %d changes)",
			scalarSol.Cost, scalarSol.Changes, batchSol.Cost, batchSol.Changes)
	}
	for i := range scalarSol.Designs {
		if scalarSol.Designs[i] != batchSol.Designs[i] {
			return nil, fmt.Errorf("what-if solution drift at stage %d: scalar design %v vs batched %v",
				i, scalarSol.Designs[i], batchSol.Designs[i])
		}
	}

	matrixCells := float64(stages * len(configs))
	mkCell := func(strat core.Strategy, model core.CostModel, calls int64, sol *core.Solution) Cell {
		cell := Cell{
			Strategy:    string(strat),
			N:           stages,
			M:           len(configs),
			K:           k,
			WhatIfCalls: calls,
			Cost:        sol.Cost,
			Changes:     sol.Changes,
		}
		scratch := make([]float64, len(configs))
		cell.NsPerOp, cell.AllocsPerOp, cell.BytesPerOp = measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if whatIfFrontier(model, stages, configs, scratch) <= 0 {
					b.Fatal("frontier checksum not positive")
				}
			}
		})
		fmt.Fprintf(os.Stderr, "  %-32s %12.0f ns/op %8d allocs/op  (%.0f ns per costed cell)\n",
			cell.key(), cell.NsPerOp, cell.AllocsPerOp, cell.NsPerOp/matrixCells)
		return cell
	}
	scalarCell := mkCell(whatIfScalar, scalar, scalarCalls, scalarSol)
	batchCell := mkCell(whatIfBatch, batch, batchCalls, batchSol)
	if batchCell.NsPerOp > 0 {
		fmt.Fprintf(os.Stderr, "  what-if throughput: batched costing %.1fx the scalar path (rows=%d, m=%d)\n",
			scalarCell.NsPerOp/batchCell.NsPerOp, rows, len(configs))
	}
	return []Cell{scalarCell, batchCell}, nil
}
