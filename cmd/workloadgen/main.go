// Command workloadgen generates workload traces as JSON: the paper's
// W1/W2/W3 family, or custom phased workloads over the Table 1 mixes.
//
// Usage:
//
//	workloadgen -workload W1 -rows 100000 -block 200 -o w1.json
//	workloadgen -plan "A:500,B:500,A:500" -rows 100000 -o custom.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dyndesign/internal/workload"
)

func main() {
	name := flag.String("workload", "", "paper workload to generate: W1, W2, or W3")
	plan := flag.String("plan", "", "custom plan over mixes A-D, e.g. \"A:500,B:500\" (alternative to -workload)")
	rows := flag.Int64("rows", 100000, "table cardinality the workload targets (sets the value domain)")
	block := flag.Int("block", 200, "queries per block for -workload")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	statsPath := flag.String("stats", "", "instead of generating, print block statistics of an existing trace file")
	flag.Parse()

	if *statsPath != "" {
		if err := printStats(*statsPath); err != nil {
			fmt.Fprintf(os.Stderr, "workloadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var w *workload.Workload
	var err error
	switch {
	case *name != "" && *plan != "":
		err = fmt.Errorf("use either -workload or -plan, not both")
	case *name != "":
		w, err = workload.PaperWorkload(*name, *rows, *block, *seed)
	case *plan != "":
		w, err = fromPlan(*plan, *rows, *seed)
	default:
		err = fmt.Errorf("one of -workload or -plan is required")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "workloadgen: %v\n", err)
		os.Exit(2)
	}

	var dst io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workloadgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := w.WriteJSON(dst); err != nil {
		fmt.Fprintf(os.Stderr, "workloadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d statements (%s)\n", w.Len(), w.Name)
}

// printStats summarizes an existing trace: statement count, mix
// histogram, and the block structure.
func printStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := workload.ReadJSON(f)
	if err != nil {
		return err
	}
	fmt.Printf("trace %q: %d statements\n", w.Name, w.Len())
	if len(w.Labels) == 0 {
		fmt.Println("(no block labels)")
		return nil
	}
	fmt.Println("mix histogram:")
	for _, b := range w.MixHistogram() {
		fmt.Printf("  %-6s %6d\n", b.Label, b.Count)
	}
	blocks := w.BlockLabels()
	fmt.Printf("blocks: %d\n", len(blocks))
	for _, b := range blocks {
		fmt.Printf("  @%-7d %-6s x%d\n", b.Start, b.Label, b.Count)
	}
	return nil
}

// fromPlan parses "A:500,B:500" into a phased workload over the paper
// mixes.
func fromPlan(plan string, rows, seed int64) (*workload.Workload, error) {
	mixes := workload.PaperMixes(rows)
	var specs []workload.PhaseSpec
	for _, part := range strings.Split(plan, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, ":", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("bad plan entry %q (want MIX:COUNT)", part)
		}
		count, err := strconv.Atoi(fields[1])
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("bad count in plan entry %q", part)
		}
		specs = append(specs, workload.PhaseSpec{Mix: strings.ToUpper(fields[0]), Count: count})
	}
	return workload.GeneratePhased("custom", mixes, specs, seed)
}
