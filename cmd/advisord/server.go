package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dyndesign/internal/advisor"
	"dyndesign/internal/alerter"
	"dyndesign/internal/calib"
	"dyndesign/internal/core"
	"dyndesign/internal/durable"
	"dyndesign/internal/explain"
	"dyndesign/internal/obs"
	"dyndesign/internal/workload"
)

// serviceConfig gathers everything the service needs beyond the advisor
// itself. Zero values get sensible service defaults in newService.
type serviceConfig struct {
	// WindowCap is the sliding-window capacity in statements.
	WindowCap int
	// Tumbling resets the window at every re-solve (epoch semantics)
	// instead of sliding it.
	Tumbling bool
	// MinSolve is the window fill that triggers the first solve; before
	// it the service ingests without recommending. Negative disables
	// automatic solves entirely: recommendations are produced only on
	// demand via POST /solve (the crash harness relies on this for
	// deterministic solve points).
	MinSolve int

	// Store persists the statement stream (WAL) and derived state
	// (snapshots) across crashes; nil runs the service in-memory only.
	Store *durable.Store
	// SnapshotEvery writes a durable snapshot after every N accepted
	// statements in addition to the one after each published solve
	// (0 = solve-time snapshots only).
	SnapshotEvery int
	// MaxInflight bounds concurrently processed /ingest requests; excess
	// requests are shed with 429 + Retry-After instead of queueing
	// (default 64; negative = unbounded).
	MaxInflight int
	// MaxBody caps request bodies in bytes; larger bodies get 413
	// (default 1 MiB; negative = unlimited).
	MaxBody int64
	// MemoCap bounds the retained what-if memo (entries; 0 = unbounded).
	MemoCap int

	// K, Strategy, SegmentSize, Timeout, Fallback, and Parallelism
	// configure every window solve (see advisor.Options). Final is
	// never constrained: the stream continues past the window.
	K           int
	Strategy    core.Strategy
	SegmentSize int
	Timeout     time.Duration
	Fallback    bool
	Parallelism int

	// Explain attaches per-transition cost attribution to each
	// recommendation (sweep and audit stay off — they re-solve).
	Explain bool

	// CalibSamples replays this many sampled window statements against
	// the live engine after every published solve, pairing measured page
	// accesses with the what-if estimates that justified the
	// recommendation (0 = calibration off; the solve path then runs
	// byte-for-byte as before). Calibration runs strictly after the
	// recommendation is published, on the solver goroutine, so it delays
	// the next solve but never the current answer.
	CalibSamples int
	// CalibSeed drives the deterministic calibration sampling.
	CalibSeed int64
	// AuditPath appends one JSON line of decision lineage per solve
	// attempt (empty = in-memory ring only; see GET /solves).
	AuditPath string

	// Alerter tunes drift detection over the ingest stream.
	Alerter alerter.Options

	Tracer *obs.Tracer
	Gauges *obs.GaugeSet
	// Hists receives the advisord_ingest_seconds / advisord_solve_seconds
	// latency distributions (nil = not recorded).
	Hists *obs.HistogramSet
}

// snapshot is one published recommendation: the pre-marshaled response
// body plus the window mutation counter it was solved at. Snapshots are
// immutable after publication and swapped atomically, so any number of
// concurrent /recommendation readers see a consistent last-known-good
// answer while the next solve is in flight.
type snapshot struct {
	seq  uint64
	body []byte
	// at is the publication instant, backing the
	// advisord_recommendation_age_seconds gauge. It lives beside the
	// body, not in it, so publication metadata never perturbs the
	// recommendation bytes a reader gets.
	at time.Time
}

// service is the long-running advisor: it owns the statement window,
// the drift alerter, the retained memo and solve cache, and the
// last-known-good recommendation snapshot.
//
// Concurrency model: ingest handlers run on arbitrary HTTP goroutines
// and serialize window mutation behind mu (the alerter serializes
// itself inside alerter.Stream). Solves run on exactly ONE goroutine —
// the run loop draining the trigger channel — which is what the shared
// memo and solve cache require; installed and lkg are touched only
// there. Readers never block on either: they load the atomic snapshot.
type service struct {
	adv    *advisor.Advisor
	stream *alerter.Stream
	cfg    serviceConfig

	mu  sync.Mutex // guards win
	win *workload.Window

	memo  *advisor.ExecMemo
	cache *core.SolveCache

	// Solver-goroutine state: the installed design (C0 of the next
	// solve) and the last good solution (the resilient ladder's final
	// rung for the next one).
	installed core.Config
	lkg       *core.Solution

	snap    atomic.Pointer[snapshot]
	trigger chan string // buffered(1): pending re-solves coalesce

	// store is the durable WAL + snapshot directory (nil = in-memory).
	// WAL appends happen under mu together with the window mutation, so
	// log order always equals window order.
	store *durable.Store
	// snapCh requests a durable snapshot from the solver goroutine
	// (buffered(1): pending requests coalesce like solve triggers).
	snapCh chan struct{}
	// forceCh carries synchronous POST /solve requests to the solver
	// goroutine, which owns all solver state.
	forceCh chan chan forcedSolve
	// inflight is the ingest admission semaphore; nil means unbounded.
	inflight chan struct{}
	// replaying suppresses drift-alert side effects while the WAL tail
	// is re-observed during recovery (set only before serving starts).
	replaying bool
	// solveHook, when non-nil, runs at the start of every solve attempt
	// — the test seam for holding a solve in flight.
	solveHook func(reason string)

	// lineage is the per-solve decision history: ring for GET /solves,
	// JSONL audit sink when configured. calibMon folds every
	// calibration run into the streaming error statistics GET
	// /calibration serves.
	lineage  *lineage
	calibMon *calib.Monitor

	// Recovery facts, fixed before serving starts.
	recoveredSnapSeq uint64
	recoveredReplay  int
	worldMismatch    bool

	ingested     atomic.Int64
	batches      atomic.Int64
	rejected     atomic.Int64
	shed         atomic.Int64
	bodyTooLarge atomic.Int64
	sinceSnap    atomic.Int64
	driftAlerts  atomic.Int64
	resolves     atomic.Int64
	solveErrors  atomic.Int64
	snapErrors   atomic.Int64
	calibErrors  atomic.Int64
}

// forcedSolve is the solver goroutine's answer to a POST /solve.
type forcedSolve struct {
	rec *advisor.Recommendation
	err error
}

// newService wires the window, drift alerter, and retained caches over
// an advisor, then — when a durable store is configured — recovers the
// persisted state before the service takes traffic. The advisor's
// design space must use an explicit Configs list (the alerter watches
// it).
func newService(adv *advisor.Advisor, cfg serviceConfig) (*service, error) {
	if cfg.WindowCap <= 0 {
		cfg.WindowCap = 500
	}
	if cfg.MinSolve == 0 {
		cfg.MinSolve = 25
	}
	if cfg.MinSolve > cfg.WindowCap {
		cfg.MinSolve = cfg.WindowCap
	}
	if cfg.Strategy == "" {
		cfg.Strategy = core.StrategyKAware
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxBody == 0 {
		cfg.MaxBody = 1 << 20
	}
	configs := adv.Space().Configs
	if configs == nil {
		return nil, fmt.Errorf("advisord: design space needs an explicit configuration list")
	}
	win, err := workload.NewWindow("live", cfg.WindowCap)
	if err != nil {
		return nil, err
	}
	lin, err := newLineage(cfg.AuditPath)
	if err != nil {
		return nil, err
	}
	s := &service{
		adv:      adv,
		cfg:      cfg,
		win:      win,
		memo:     advisor.NewMemo(cfg.MemoCap),
		cache:    core.NewSolveCache(),
		trigger:  make(chan string, 1),
		store:    cfg.Store,
		snapCh:   make(chan struct{}, 1),
		forceCh:  make(chan chan forcedSolve),
		lineage:  lin,
		calibMon: calib.NewMonitor(),
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	a, err := alerter.New(adv, configs, core.Config(0), cfg.Alerter)
	if err != nil {
		return nil, err
	}
	// The drift hookup: an alert — not a timer — schedules the re-solve.
	// During WAL replay the stream re-observes statements whose alerts
	// (if any) already fired in the previous life; they are dropped.
	s.stream = alerter.NewStream(a, func(alerter.Alert) {
		if s.replaying {
			return
		}
		s.driftAlerts.Add(1)
		s.requestSolve("drift")
	})
	if s.store != nil {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	s.helpGauges()
	s.publishRecoveryGauges()
	if g := cfg.Gauges; g != nil {
		// The age gauge is a function: every scrape recomputes now−publish
		// without the service having to refresh anything. NaN (suppressed
		// from the exposition) until the first recommendation lands.
		g.Func("advisord_recommendation_age_seconds", func() float64 {
			sn := s.snap.Load()
			if sn == nil || sn.at.IsZero() {
				return math.NaN()
			}
			return time.Since(sn.at).Seconds()
		})
	}
	if h := cfg.Hists; h != nil {
		h.Help("advisord_ingest_seconds", "POST /ingest handler latency, including WAL append and drift-alerter observation.")
		h.Help("advisord_solve_seconds", "Window re-solve latency (solver only; explain, publish, and calibration excluded).")
	}
	return s, nil
}

// recover restores the service from the durable store: newest valid
// snapshot first, then the WAL tail replayed through the window and the
// drift alerter in original stream order (RecordReset markers reproduce
// tumbling epoch boundaries exactly). Cost-derived state — the
// last-known-good solution and the alerter's cost ring — is dropped
// when the table-statistics fingerprint changed since the snapshot:
// those numbers were computed in a dead cost world. The window and the
// installed design survive a fingerprint change; the installed indexes
// are physically there regardless of what statistics say.
func (s *service) recover() error {
	snap, tail, err := s.store.Recover()
	if err != nil {
		return err
	}
	if snap != nil {
		if err := s.win.RestoreState(snap.Window); err != nil {
			return fmt.Errorf("advisord: restoring window from snapshot seq %d: %w", snap.Seq, err)
		}
		s.installed = snap.Installed
		if err := s.stream.SetCurrent(s.installed); err != nil {
			return fmt.Errorf("advisord: snapshot's installed design is outside the design space (schema flags changed?): %w", err)
		}
		if snap.StatsFingerprint == s.adv.StatsFingerprint() {
			s.lkg = snap.LastKnownGood
			if snap.Alerter != nil {
				if err := s.stream.RestoreState(*snap.Alerter); err != nil {
					// Shape mismatch (alerter flags changed): the drift
					// detector starts cold, which only delays the next
					// alert — not worth failing recovery over.
					fmt.Fprintf(os.Stderr, "advisord: alerter state not restored (%v); drift detection starts cold\n", err)
				}
			}
		} else {
			s.worldMismatch = true
		}
		s.recoveredSnapSeq = snap.Seq
	}
	s.replaying = true
	defer func() { s.replaying = false }()
	for _, rec := range tail {
		switch rec.Kind {
		case durable.RecordReset:
			s.win.Reset()
		case durable.RecordStatement:
			stmt, err := workload.NewStatement(rec.SQL)
			if err != nil {
				return fmt.Errorf("advisord: WAL record %d no longer parses (data dir from another schema?): %w", rec.Seq, err)
			}
			s.win.Append(rec.Label, stmt)
			if _, err := s.stream.Observe(context.Background(), stmt); err != nil {
				return fmt.Errorf("advisord: replaying WAL record %d through the alerter: %w", rec.Seq, err)
			}
		}
	}
	s.recoveredReplay = len(tail)
	if len(tail) > 0 || snap != nil {
		st := s.store.Stats()
		fmt.Fprintf(os.Stderr, "advisord: recovered %d statements in window (snapshot seq %d + %d replayed records, %d torn bytes truncated)\n",
			s.win.Len(), s.recoveredSnapSeq, len(tail), st.TruncatedBytes)
	}
	return nil
}

// requestSolve schedules a re-solve; a pending request absorbs it (the
// solve snapshots the window when it starts, so coalescing loses
// nothing).
func (s *service) requestSolve(reason string) {
	select {
	case s.trigger <- reason:
	default:
	}
}

// requestSnapshot schedules a durable snapshot on the solver goroutine;
// a pending request absorbs it.
func (s *service) requestSnapshot() {
	select {
	case s.snapCh <- struct{}{}:
	default:
	}
}

// run is the solver loop; it exits when ctx is cancelled. Exactly one
// run loop may be active — it is the single writer of the retained
// solver state, and the only goroutine that writes durable snapshots
// while the service is serving (close() writes the final one after
// this loop has exited, so the two can never overlap).
func (s *service) run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case reason := <-s.trigger:
			if _, err := s.solveOnce(ctx, reason); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "advisord: %s re-solve failed: %v\n", reason, err)
			}
		case respCh := <-s.forceCh:
			rec, err := s.solveOnce(ctx, "forced")
			respCh <- forcedSolve{rec: rec, err: err}
		case <-s.snapCh:
			s.writeDurableSnapshot()
		}
	}
}

// writeDurableSnapshot persists the current derived state. Must run on
// the solver goroutine (or after it has exited): installed and lkg are
// solver-owned. The window state and the WAL head are captured under
// mu, so the pair is exactly consistent; the alerter folds in
// statements slightly ahead of the window (ingest observes it after
// releasing mu), which replay tolerates — drift detection is a
// heuristic and re-observing a handful of tail statements only
// advances its ring.
func (s *service) writeDurableSnapshot() {
	if s.store == nil {
		return
	}
	s.mu.Lock()
	winState := s.win.State()
	seq := s.store.LastSeq()
	alertState := s.stream.State()
	s.mu.Unlock()
	snap := &durable.Snapshot{
		Seq:              seq,
		Window:           winState,
		Installed:        s.installed,
		LastKnownGood:    s.lkg,
		StatsFingerprint: s.adv.StatsFingerprint(),
		Alerter:          &alertState,
	}
	if err := s.store.WriteSnapshot(snap); err != nil {
		s.snapErrors.Add(1)
		fmt.Fprintf(os.Stderr, "advisord: snapshot failed: %v\n", err)
		return
	}
	s.sinceSnap.Store(0)
}

// close finishes the service after the solver loop has exited: it
// writes a final durable snapshot and releases the data directory.
// Callers must wait for run() to return first — that ordering is what
// guarantees the final snapshot never races a publishing solve.
func (s *service) close() error {
	var first error
	if s.store != nil {
		s.writeDurableSnapshot()
		first = s.store.Close()
	}
	if err := s.lineage.close(); err != nil && first == nil {
		first = err
	}
	return first
}

// solveOnce snapshots the window, re-solves it warm-started from the
// retained memo, solve cache, and last-known-good solution, and
// publishes the new recommendation snapshot. It must only be called
// from the solver goroutine (or a test standing in for it).
//
// Every attempt — including failed ones — leaves a lineage record
// correlating the trigger, the stream slice consumed, the WAL cursor,
// the answering ladder rung, cache warmth, and (when enabled) the
// calibration of the cost model that justified the answer. Calibration
// runs strictly AFTER publication: the fresh recommendation is already
// serving while its replay measures the engine.
func (s *service) solveOnce(ctx context.Context, reason string) (*advisor.Recommendation, error) {
	if s.solveHook != nil {
		s.solveHook(reason)
	}
	s.mu.Lock()
	w := s.win.Snapshot()
	seq := s.win.Seq()
	total := s.win.Total()
	var walSeq uint64
	if s.store != nil {
		walSeq = s.store.LastSeq()
	}
	if s.cfg.Tumbling && s.win.Len() > 0 {
		// The epoch boundary is logged BEFORE the in-memory reset: if we
		// die between the two, replay resets a window the service never
		// emptied — the same window the next solve would have seen anyway
		// — rather than resurrecting statements a solve already consumed.
		if s.store != nil {
			if _, err := s.store.AppendReset(); err != nil {
				s.mu.Unlock()
				return nil, fmt.Errorf("logging window reset: %w", err)
			}
		}
		s.win.Reset()
	}
	s.mu.Unlock()
	if w.Len() == 0 {
		return nil, nil
	}
	id := s.lineage.nextSolveID()
	sp := s.cfg.Tracer.Start("advisord.solve")
	lrec := solveRecord{
		SolveID:     id,
		Reason:      reason,
		SolvedAt:    time.Now().UTC(),
		Window:      w.Name,
		WindowSeq:   seq,
		WindowStart: total - int64(w.Len()),
		WindowEnd:   total,
		WALLastSeq:  walSeq,
		DriftAlerts: s.driftAlerts.Load(),
		Strategy:    string(s.cfg.Strategy),
		K:           s.cfg.K,
	}
	finish := func(err error) {
		if err != nil {
			lrec.Error = err.Error()
		}
		s.lineage.record(lrec)
		sp.End(
			obs.Int("solve_id", int64(id)),
			obs.String("reason", reason),
			obs.String("rung", lrec.Rung),
			obs.Bool("degraded", lrec.Degraded),
			obs.Float("cost", lrec.Cost),
			obs.Float("gap", lrec.Gap),
			obs.Int("window_end", lrec.WindowEnd),
			obs.Bool("err", err != nil),
		)
	}
	opts := advisor.Options{
		K:           s.cfg.K,
		Strategy:    s.cfg.Strategy,
		SegmentSize: s.cfg.SegmentSize,
		Initial:     s.installed,
		Timeout:     s.cfg.Timeout,
		Fallback:    s.cfg.Fallback,
		Parallelism: s.cfg.Parallelism,
		Memo:        s.memo,
		Cache:       s.cache,
		Tracer:      s.cfg.Tracer,
	}
	if s.cfg.Fallback {
		opts.LastKnownGood = s.lkg
	}
	start := time.Now()
	rec, err := s.adv.RecommendContext(ctx, w, opts)
	elapsed := time.Since(start)
	lrec.SolveMillis = float64(elapsed.Microseconds()) / 1000
	s.cfg.Hists.Observe("advisord_solve_seconds", elapsed)
	if err != nil {
		s.solveErrors.Add(1)
		s.publishGauges(nil, elapsed)
		finish(err)
		return rec, err
	}
	lrec.Rung = string(rec.Rung)
	lrec.Degraded = rec.Degraded
	lrec.Cost = rec.Solution.Cost
	lrec.ExecCost = rec.Solution.ExecCost
	lrec.TransCost = rec.Solution.TransCost
	lrec.Changes = rec.Solution.Changes
	lrec.Gap = rec.Gap
	lrec.WhatIfCalls = rec.Stats.WhatIfCalls
	lrec.MemoHitRate = rec.Stats.HitRate()
	lrec.MatrixBuilds = rec.MatrixBuilds
	lrec.MatrixReuses = rec.MatrixReuses
	lrec.LatticeOverflows = rec.LatticeOverflows
	var expl *explain.Explanation
	if s.cfg.Explain {
		// Attribution only: the sweep and the audit re-solve the
		// problem many times over — too heavy for every window.
		expl, err = s.adv.Explain(ctx, rec, advisor.ExplainOptions{KSweepDelta: -1, AuditTrials: -1})
		if err != nil {
			expl = nil // the recommendation stands; provenance is best-effort
		}
	}
	body, err := json.Marshal(buildResponse(rec, expl, reason, seq, elapsed))
	if err != nil {
		s.solveErrors.Add(1)
		finish(err)
		return rec, err
	}
	s.lkg = rec.Solution
	s.installed = rec.Solution.Designs[len(rec.Solution.Designs)-1]
	if err := s.stream.SetCurrent(s.installed); err != nil {
		finish(err)
		return rec, err
	}
	s.snap.Store(&snapshot{seq: seq, body: body, at: time.Now()})
	s.resolves.Add(1)
	// Persist the new design chain immediately: the installed config is
	// the next solve's C0, so losing it would change every later answer.
	s.writeDurableSnapshot()
	s.publishGauges(rec, elapsed)
	if s.cfg.CalibSamples > 0 {
		// Vary the sampling by solve id (deterministically) so
		// consecutive solves over a slow-moving window don't measure the
		// same statements — the drift trend needs fresh draws.
		crep, cerr := s.adv.Calibrate(rec, advisor.CalibrateOptions{
			Samples: s.cfg.CalibSamples,
			Seed:    s.cfg.CalibSeed + int64(id),
			Monitor: s.calibMon,
		})
		if cerr != nil {
			s.calibErrors.Add(1)
			fmt.Fprintf(os.Stderr, "advisord: calibration after solve %d failed: %v\n", id, cerr)
		} else {
			lrec.Calibration = summarizeCalibration(crep)
		}
		s.publishCalibGauges()
	}
	finish(nil)
	return rec, nil
}

// --- HTTP surface ------------------------------------------------------

// ingestRequest is the POST /ingest body: a single statement or a
// batch. Label optionally names the mix phase (segmentation snaps to
// label changes).
type ingestRequest struct {
	SQL        string            `json:"sql,omitempty"`
	Label      string            `json:"label,omitempty"`
	Statements []ingestStatement `json:"statements,omitempty"`
}

type ingestStatement struct {
	SQL   string `json:"sql"`
	Label string `json:"label,omitempty"`
}

type ingestResponse struct {
	Ingested int `json:"ingested"`
	Window   int `json:"window"`
	// Alerts is how many drift alerts this batch fired.
	Alerts int `json:"alerts"`
}

func (s *service) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/recommendation", s.handleRecommendation)
	mux.HandleFunc("/solves", s.handleSolves)
	mux.HandleFunc("/calibration", s.handleCalibration)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleIngest validates the whole batch first (parse + what-if
// costability), so a bad statement rejects the batch atomically, then
// logs each statement to the WAL and feeds it through the window and
// the drift alerter.
//
// Overload protection happens before any work: at most MaxInflight
// requests are processed concurrently — when the WAL (fsync) or the
// cost validation falls behind, excess requests are shed immediately
// with 429 + Retry-After rather than queued, so a stalled disk bounds
// memory instead of growing it. Bodies beyond MaxBody get 413.
func (s *service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	defer func() { s.cfg.Hists.Observe("advisord_ingest_seconds", time.Since(start)) }()
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "ingest shedding load: %d requests already in flight", cap(s.inflight))
			return
		}
	}
	if s.cfg.MaxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.bodyTooLarge.Add(1)
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	batch := req.Statements
	if req.SQL != "" {
		batch = append([]ingestStatement{{SQL: req.SQL, Label: req.Label}}, batch...)
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, "no statements")
		return
	}
	stmts := make([]workload.Statement, len(batch))
	for i, in := range batch {
		stmt, err := workload.NewStatement(in.SQL)
		if err == nil {
			// Validate against the schema by costing it once under the
			// empty configuration — the same check the advisor applies
			// at problem build, surfaced at the ingest boundary instead.
			_, err = s.adv.StatementCost(stmt, core.Config(0))
		}
		if err != nil {
			s.rejected.Add(int64(len(batch)))
			writeError(w, http.StatusBadRequest, "statement %d (%q): %v", i, in.SQL, err)
			return
		}
		stmts[i] = stmt
	}
	alerts := 0
	for i, stmt := range stmts {
		// WAL append and window append are one atomic step under mu:
		// log order is window order, which is what makes snapshot +
		// tail-replay reconstruct the exact ring. The statement is
		// durable (fsync policy permitting) before the window — and
		// therefore any solve — can see it.
		s.mu.Lock()
		if s.store != nil {
			if _, err := s.store.AppendStatement(batch[i].Label, batch[i].SQL); err != nil {
				s.mu.Unlock()
				writeError(w, http.StatusInternalServerError, "wal: %v", err)
				return
			}
		}
		s.win.Append(batch[i].Label, stmt)
		s.mu.Unlock()
		alert, err := s.stream.Observe(r.Context(), stmt)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "alerter: %v", err)
			return
		}
		if alert != nil {
			alerts++
		}
	}
	s.ingested.Add(int64(len(stmts)))
	s.batches.Add(1)
	s.mu.Lock()
	winLen := s.win.Len()
	s.mu.Unlock()
	if s.cfg.MinSolve >= 0 && s.snap.Load() == nil && winLen >= s.cfg.MinSolve {
		s.requestSolve("initial")
	}
	if s.store != nil && s.cfg.SnapshotEvery > 0 &&
		s.sinceSnap.Add(int64(len(stmts))) >= int64(s.cfg.SnapshotEvery) {
		s.requestSnapshot()
	}
	s.publishIngestGauges()
	writeJSON(w, http.StatusOK, ingestResponse{Ingested: len(stmts), Window: winLen, Alerts: alerts})
}

// handleSolve forces a synchronous re-solve: the request blocks until
// the solver goroutine has solved the current window and published the
// result, then returns that recommendation body. An empty window yields
// 409. This is the deterministic solve point the crash harness drives —
// and an operator's "recommend now" button.
func (s *service) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	respCh := make(chan forcedSolve, 1)
	select {
	case s.forceCh <- respCh:
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "solver unavailable: %v", r.Context().Err())
		return
	}
	select {
	case res := <-respCh:
		if res.err != nil {
			writeError(w, http.StatusInternalServerError, "solve: %v", res.err)
			return
		}
		if res.rec == nil {
			writeError(w, http.StatusConflict, "window is empty; ingest statements first")
			return
		}
		snap := s.snap.Load()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(snap.body)
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "solve abandoned: %v", r.Context().Err())
	}
}

// handleRecommendation serves the last published snapshot verbatim. The
// body was marshaled at publication, so concurrent readers get a
// consistent recommendation even while a re-solve is swapping it.
func (s *service) handleRecommendation(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := s.snap.Load()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, "no recommendation yet (window below %d statements or first solve pending)", s.cfg.MinSolve)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap.body)
}

// solvesResponse is the GET /solves body: the retained decision lineage,
// newest first. The JSONL audit file (when a data dir is configured)
// holds the complete history beyond the ring.
type solvesResponse struct {
	Count       int           `json:"count"`
	AuditErrors int64         `json:"audit_errors,omitempty"`
	Solves      []solveRecord `json:"solves"`
}

// handleSolves serves the per-solve lineage ring.
func (s *service) handleSolves(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	recs, auditErrs := s.lineage.list()
	writeJSON(w, http.StatusOK, solvesResponse{Count: len(recs), AuditErrors: auditErrs, Solves: recs})
}

// calibrationResponse is the GET /calibration body: the monitor's
// streaming error statistics over every calibration run so far.
type calibrationResponse struct {
	// Enabled is false when the service was started without calibration
	// (-calib-samples 0); the report is then all zeros.
	Enabled bool `json:"enabled"`
	// SamplesPerSolve is the configured replay budget per published solve.
	SamplesPerSolve int `json:"samples_per_solve"`
	// CalibrationErrors counts replay runs that failed outright.
	CalibrationErrors int64 `json:"calibration_errors"`
	// Report is the streaming aggregate: overall and per-class /
	// per-structure error statistics plus the drift-over-windows trend.
	Report calib.Report `json:"report"`
}

// handleCalibration serves the cost-model calibration report.
func (s *service) handleCalibration(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, calibrationResponse{
		Enabled:           s.cfg.CalibSamples > 0,
		SamplesPerSolve:   s.cfg.CalibSamples,
		CalibrationErrors: s.calibErrors.Load(),
		Report:            s.calibMon.Report(),
	})
}

// healthzResponse is the GET /healthz body; the smoke test asserts the
// drift counters off it.
type healthzResponse struct {
	Status            string       `json:"status"`
	Ingested          int64        `json:"ingested"`
	Batches           int64        `json:"batches"`
	Rejected          int64        `json:"rejected"`
	Shed              int64        `json:"shed"`
	BodyTooLarge      int64        `json:"body_too_large"`
	WindowStatements  int          `json:"window_statements"`
	WindowCapacity    int          `json:"window_capacity"`
	WindowTotal       int64        `json:"window_total"`
	DriftAlerts       int64        `json:"drift_alerts"`
	Resolves          int64        `json:"resolves"`
	SolveErrors       int64        `json:"solve_errors"`
	HasRecommendation bool         `json:"has_recommendation"`
	Memo              memoJSON     `json:"memo"`
	Durable           *durableJSON `json:"durable,omitempty"`
}

// durableJSON reports the WAL, snapshot, and recovery state when the
// service runs with a data directory. WindowTotal (above) doubles as
// the resume cursor: a client that replays a trace after a crash skips
// the first WindowTotal statements — everything durable — and resends
// the rest.
type durableJSON struct {
	WALLastSeq        uint64 `json:"wal_last_seq"`
	WALAppends        int64  `json:"wal_appends"`
	WALFsyncs         int64  `json:"wal_fsyncs"`
	WALSegments       int    `json:"wal_segments"`
	Snapshots         int64  `json:"snapshots"`
	SnapshotErrors    int64  `json:"snapshot_errors"`
	LastSnapshotSeq   uint64 `json:"last_snapshot_seq"`
	RecoverySnapSeq   uint64 `json:"recovery_snapshot_seq"`
	RecoveryReplayed  int    `json:"recovery_replayed"`
	RecoveryTruncated int64  `json:"recovery_truncated_bytes"`
	RecoveryDiscarded int64  `json:"recovery_snapshots_discarded"`
	WorldMismatch     bool   `json:"world_mismatch"`
}

type memoJSON struct {
	Entries       int64   `json:"entries"`
	Capacity      int     `json:"capacity"`
	HitRate       float64 `json:"hit_rate"`
	Evictions     int64   `json:"evictions"`
	Invalidations int64   `json:"invalidations"`
}

func (s *service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	winLen, winCap, winTotal := s.win.Len(), s.win.Cap(), s.win.Total()
	s.mu.Unlock()
	ms := s.memo.Stats()
	resp := healthzResponse{
		Status:            "ok",
		Ingested:          s.ingested.Load(),
		Batches:           s.batches.Load(),
		Rejected:          s.rejected.Load(),
		Shed:              s.shed.Load(),
		BodyTooLarge:      s.bodyTooLarge.Load(),
		WindowStatements:  winLen,
		WindowCapacity:    winCap,
		WindowTotal:       winTotal,
		DriftAlerts:       s.driftAlerts.Load(),
		Resolves:          s.resolves.Load(),
		SolveErrors:       s.solveErrors.Load(),
		HasRecommendation: s.snap.Load() != nil,
		Memo: memoJSON{
			Entries:       ms.Entries,
			Capacity:      ms.Capacity,
			HitRate:       ms.HitRate(),
			Evictions:     ms.Evictions,
			Invalidations: ms.Invalidations,
		},
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Durable = &durableJSON{
			WALLastSeq:        st.LastSeq,
			WALAppends:        st.Appends,
			WALFsyncs:         st.Fsyncs,
			WALSegments:       st.Segments,
			Snapshots:         st.Snapshots,
			SnapshotErrors:    s.snapErrors.Load(),
			LastSnapshotSeq:   st.LastSnapshotSeq,
			RecoverySnapSeq:   s.recoveredSnapSeq,
			RecoveryReplayed:  s.recoveredReplay,
			RecoveryTruncated: st.TruncatedBytes,
			RecoveryDiscarded: st.SnapshotsDiscarded,
			WorldMismatch:     s.worldMismatch,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- Recommendation response -------------------------------------------

// recResponse is the GET /recommendation body: the design sequence in
// run-length form, the DDL steps to effect it, costing instrumentation,
// and (when enabled) the per-transition provenance.
type recResponse struct {
	Table       string    `json:"table"`
	Window      string    `json:"window"`
	WindowSeq   uint64    `json:"window_seq"`
	Reason      string    `json:"reason"`
	SolvedAt    time.Time `json:"solved_at"`
	SolveMillis float64   `json:"solve_millis"`
	Statements  int       `json:"statements"`
	Stages      int       `json:"stages"`
	K           int       `json:"k"`
	Initial     []string  `json:"initial"`
	Strategy    string    `json:"strategy"`
	Rung        string    `json:"rung"`
	Degraded    bool      `json:"degraded"`

	Cost      float64 `json:"cost"`
	ExecCost  float64 `json:"exec_cost"`
	TransCost float64 `json:"trans_cost"`
	Changes   int     `json:"changes"`
	// Gap is the anytime optimality gap: 0 when the answering solver
	// was exact, positive when a beam-pruned partitioned solve stopped
	// early (the optimum is then within [cost-gap, cost]).
	Gap float64 `json:"gap"`

	Designs []designRun `json:"designs"`
	Steps   []stepJSON  `json:"steps"`

	Stats       solveStatsJSON       `json:"stats"`
	Explanation *explain.Explanation `json:"explanation,omitempty"`
}

// designRun is one run of the design sequence: the configuration in
// effect from FromStatement until the next run starts.
type designRun struct {
	FromStatement int      `json:"from_statement"`
	Label         string   `json:"label,omitempty"`
	Indexes       []string `json:"indexes"`
}

type stepJSON struct {
	Statement int      `json:"statement"`
	DDL       []string `json:"ddl"`
}

type solveStatsJSON struct {
	WhatIfCalls  int64   `json:"whatif_calls"`
	MemoHitRate  float64 `json:"memo_hit_rate"`
	MatrixBuilds int64   `json:"matrix_builds"`
	MatrixReuses int64   `json:"matrix_reuses"`
}

// configNames renders a configuration as its structure names.
func configNames(c core.Config, names []string) []string {
	out := []string{}
	for _, s := range c.Structures() {
		if s < len(names) {
			out = append(out, names[s])
		} else {
			out = append(out, fmt.Sprintf("bit%d", s))
		}
	}
	return out
}

func buildResponse(rec *advisor.Recommendation, expl *explain.Explanation, reason string, seq uint64, elapsed time.Duration) recResponse {
	resp := recResponse{
		Table:       rec.Table,
		Window:      rec.Workload.Name,
		WindowSeq:   seq,
		Reason:      reason,
		SolvedAt:    time.Now().UTC(),
		SolveMillis: float64(elapsed.Microseconds()) / 1000,
		Statements:  rec.Workload.Len(),
		Stages:      rec.Problem.Stages,
		K:           rec.Problem.K,
		Initial:     configNames(rec.Problem.Initial, rec.StructureNames),
		Strategy:    string(rec.Strategy),
		Rung:        string(rec.Rung),
		Degraded:    rec.Degraded,
		Cost:        rec.Solution.Cost,
		ExecCost:    rec.Solution.ExecCost,
		TransCost:   rec.Solution.TransCost,
		Changes:     rec.Solution.Changes,
		Gap:         rec.Gap,
		Stats: solveStatsJSON{
			WhatIfCalls:  rec.Stats.WhatIfCalls,
			MemoHitRate:  rec.Stats.HitRate(),
			MatrixBuilds: rec.MatrixBuilds,
			MatrixReuses: rec.MatrixReuses,
		},
		Explanation: expl,
	}
	// Run-length compress the per-stage designs: one entry per region
	// of constant configuration.
	prev := rec.Problem.Initial
	for i, cfg := range rec.Solution.Designs {
		if i == 0 || cfg != prev {
			resp.Designs = append(resp.Designs, designRun{
				FromStatement: rec.Segments[i].Start,
				Label:         rec.Segments[i].Label,
				Indexes:       configNames(cfg, rec.StructureNames),
			})
			prev = cfg
		}
	}
	for _, st := range rec.Steps() {
		resp.Steps = append(resp.Steps, stepJSON{Statement: st.StatementIndex, DDL: st.DDL})
	}
	return resp
}

// --- Gauges ------------------------------------------------------------

func (s *service) helpGauges() {
	g := s.cfg.Gauges
	if g == nil {
		return
	}
	g.Help("advisord_ingested_total", "Statements accepted by /ingest over the service lifetime.")
	g.Help("advisord_window_statements", "Statements currently in the sliding window.")
	g.Help("advisord_drift_alerts_total", "Drift alerts raised by the workload alerter.")
	g.Help("advisord_resolves_total", "Window re-solves that published a recommendation.")
	g.Help("advisord_solve_errors_total", "Window re-solves that failed.")
	g.Help("advisord_last_solve_seconds", "Wall-clock duration of the last re-solve (the advisord_solve_seconds histogram has the distribution).")
	g.Help("advisord_solve_cost", "Objective cost of the last published recommendation.")
	g.Help("advisord_solve_gap", "Anytime optimality gap of the last recommendation (0 = proven optimal).")
	g.Help("advisord_plan_tables_built_total", "Per-statement plan tables compiled by the last solve's batched costing layer.")
	g.Help("advisord_plan_table_bytes", "Heap bytes retained by the last solve's compiled plan tables.")
	g.Help("advisord_batched_lookups_total", "Configurations the last solve evaluated through the batched what-if entry point.")
	g.Help("advisord_memo_entries", "Current occupancy of the retained what-if memo.")
	g.Help("advisord_memo_hit_rate", "Lifetime hit rate of the retained what-if memo.")
	g.Help("advisord_memo_evictions_total", "Entries evicted from the capped what-if memo.")
	g.Help("advisord_memo_invalidations_total", "Whole-memo purges caused by cost-world changes.")
	g.Help("advisord_shed_total", "Ingest requests shed with 429 by the overload guard.")
	g.Help("advisord_body_too_large_total", "Requests rejected with 413 for exceeding the body cap.")
	g.Help("advisord_wal_appends_total", "Records appended to the write-ahead log this process.")
	g.Help("advisord_wal_appended_bytes_total", "Bytes appended to the write-ahead log this process.")
	g.Help("advisord_wal_fsyncs_total", "WAL and snapshot fsyncs issued this process.")
	g.Help("advisord_wal_segments", "Current WAL segment file count.")
	g.Help("advisord_snapshots_total", "Durable snapshots written this process.")
	g.Help("advisord_snapshot_errors_total", "Durable snapshot writes that failed.")
	g.Help("advisord_snapshot_last_seq", "WAL sequence folded into the newest durable snapshot.")
	g.Help("advisord_recovery_replayed", "WAL records replayed into the window at startup.")
	g.Help("advisord_recovery_truncated_bytes", "Torn-tail bytes truncated from the WAL at startup.")
	g.Help("advisord_recovery_snapshot_seq", "WAL sequence of the snapshot recovery started from.")
	g.Help("advisord_recovery_world_mismatch", "1 when recovery dropped cost-derived state because table statistics changed.")
	g.Help("advisord_recommendation_age_seconds", "Seconds since the current recommendation was published (absent before the first solve).")
	g.Help("advisord_calib_runs_total", "Calibration replay runs folded into the monitor.")
	g.Help("advisord_calib_samples_total", "Estimate/measurement pairs collected across all calibration runs.")
	g.Help("advisord_calib_skipped_dml_total", "Statements excluded from calibration because replaying them would mutate the database.")
	g.Help("advisord_calib_errors_total", "Calibration replay runs that failed outright.")
	g.Help("advisord_calib_median_abs_ratio", "Streaming median of the absolute estimate/measurement ratio max(r, 1/r); 1.0 = perfectly calibrated.")
	g.Help("advisord_calib_p90_abs_ratio", "Streaming 90th percentile of the absolute estimate/measurement ratio.")
	g.Help("advisord_calib_mean_signed_log2", "Mean signed error in doublings; positive = the cost model underestimates.")
	g.Help("advisord_calib_trend", "Drift of per-run median absolute error (doublings) between older and newer calibration runs; positive = the model is getting worse.")
}

// publishRecoveryGauges exports the startup recovery facts once.
func (s *service) publishRecoveryGauges() {
	g := s.cfg.Gauges
	if g == nil || s.store == nil {
		return
	}
	st := s.store.Stats()
	g.Set("advisord_recovery_replayed", float64(s.recoveredReplay))
	g.Set("advisord_recovery_truncated_bytes", float64(st.TruncatedBytes))
	g.Set("advisord_recovery_snapshot_seq", float64(s.recoveredSnapSeq))
	mismatch := 0.0
	if s.worldMismatch {
		mismatch = 1
	}
	g.Set("advisord_recovery_world_mismatch", mismatch)
}

// publishDurableGauges refreshes the WAL and snapshot counters.
func (s *service) publishDurableGauges() {
	g := s.cfg.Gauges
	if g == nil || s.store == nil {
		return
	}
	st := s.store.Stats()
	g.Set("advisord_wal_appends_total", float64(st.Appends))
	g.Set("advisord_wal_appended_bytes_total", float64(st.AppendedBytes))
	g.Set("advisord_wal_fsyncs_total", float64(st.Fsyncs))
	g.Set("advisord_wal_segments", float64(st.Segments))
	g.Set("advisord_snapshots_total", float64(st.Snapshots))
	g.Set("advisord_snapshot_errors_total", float64(s.snapErrors.Load()))
	g.Set("advisord_snapshot_last_seq", float64(st.LastSnapshotSeq))
}

func (s *service) publishIngestGauges() {
	g := s.cfg.Gauges
	if g == nil {
		return
	}
	s.mu.Lock()
	winLen := s.win.Len()
	s.mu.Unlock()
	g.Set("advisord_ingested_total", float64(s.ingested.Load()))
	g.Set("advisord_window_statements", float64(winLen))
	g.Set("advisord_drift_alerts_total", float64(s.driftAlerts.Load()))
	g.Set("advisord_shed_total", float64(s.shed.Load()))
	g.Set("advisord_body_too_large_total", float64(s.bodyTooLarge.Load()))
	s.publishDurableGauges()
}

func (s *service) publishGauges(rec *advisor.Recommendation, elapsed time.Duration) {
	g := s.cfg.Gauges
	if g == nil {
		return
	}
	g.Set("advisord_resolves_total", float64(s.resolves.Load()))
	g.Set("advisord_solve_errors_total", float64(s.solveErrors.Load()))
	g.Set("advisord_last_solve_seconds", elapsed.Seconds())
	if rec != nil && rec.Solution != nil {
		g.Set("advisord_solve_cost", rec.Solution.Cost)
		g.Set("advisord_solve_gap", rec.Gap)
		g.Set("advisord_plan_tables_built_total", float64(rec.Stats.PlanTableBuilds))
		g.Set("advisord_plan_table_bytes", float64(rec.Stats.PlanTableBytes))
		g.Set("advisord_batched_lookups_total", float64(rec.Stats.BatchedLookups))
	}
	ms := s.memo.Stats()
	g.Set("advisord_memo_entries", float64(ms.Entries))
	g.Set("advisord_memo_hit_rate", ms.HitRate())
	g.Set("advisord_memo_evictions_total", float64(ms.Evictions))
	g.Set("advisord_memo_invalidations_total", float64(ms.Invalidations))
	s.publishDurableGauges()
}

// publishCalibGauges exports the monitor's streaming calibration
// statistics after each replay run.
func (s *service) publishCalibGauges() {
	g := s.cfg.Gauges
	if g == nil {
		return
	}
	rep := s.calibMon.Report()
	g.Set("advisord_calib_runs_total", float64(rep.Runs))
	g.Set("advisord_calib_samples_total", float64(rep.Samples))
	g.Set("advisord_calib_skipped_dml_total", float64(rep.SkippedDML))
	g.Set("advisord_calib_errors_total", float64(s.calibErrors.Load()))
	g.Set("advisord_calib_median_abs_ratio", rep.MedianAbsRatio)
	g.Set("advisord_calib_p90_abs_ratio", rep.P90AbsRatio)
	g.Set("advisord_calib_mean_signed_log2", rep.MeanSignedLog2)
	g.Set("advisord_calib_trend", rep.Trend)
}
