package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dyndesign/internal/advisor"
	"dyndesign/internal/alerter"
	"dyndesign/internal/core"
	"dyndesign/internal/explain"
	"dyndesign/internal/obs"
	"dyndesign/internal/workload"
)

// serviceConfig gathers everything the service needs beyond the advisor
// itself. Zero values get sensible service defaults in newService.
type serviceConfig struct {
	// WindowCap is the sliding-window capacity in statements.
	WindowCap int
	// Tumbling resets the window at every re-solve (epoch semantics)
	// instead of sliding it.
	Tumbling bool
	// MinSolve is the window fill that triggers the first solve; before
	// it the service ingests without recommending.
	MinSolve int
	// MemoCap bounds the retained what-if memo (entries; 0 = unbounded).
	MemoCap int

	// K, Strategy, SegmentSize, Timeout, Fallback, and Parallelism
	// configure every window solve (see advisor.Options). Final is
	// never constrained: the stream continues past the window.
	K           int
	Strategy    core.Strategy
	SegmentSize int
	Timeout     time.Duration
	Fallback    bool
	Parallelism int

	// Explain attaches per-transition cost attribution to each
	// recommendation (sweep and audit stay off — they re-solve).
	Explain bool

	// Alerter tunes drift detection over the ingest stream.
	Alerter alerter.Options

	Tracer *obs.Tracer
	Gauges *obs.GaugeSet
}

// snapshot is one published recommendation: the pre-marshaled response
// body plus the window mutation counter it was solved at. Snapshots are
// immutable after publication and swapped atomically, so any number of
// concurrent /recommendation readers see a consistent last-known-good
// answer while the next solve is in flight.
type snapshot struct {
	seq  uint64
	body []byte
}

// service is the long-running advisor: it owns the statement window,
// the drift alerter, the retained memo and solve cache, and the
// last-known-good recommendation snapshot.
//
// Concurrency model: ingest handlers run on arbitrary HTTP goroutines
// and serialize window mutation behind mu (the alerter serializes
// itself inside alerter.Stream). Solves run on exactly ONE goroutine —
// the run loop draining the trigger channel — which is what the shared
// memo and solve cache require; installed and lkg are touched only
// there. Readers never block on either: they load the atomic snapshot.
type service struct {
	adv    *advisor.Advisor
	stream *alerter.Stream
	cfg    serviceConfig

	mu  sync.Mutex // guards win
	win *workload.Window

	memo  *advisor.ExecMemo
	cache *core.SolveCache

	// Solver-goroutine state: the installed design (C0 of the next
	// solve) and the last good solution (the resilient ladder's final
	// rung for the next one).
	installed core.Config
	lkg       *core.Solution

	snap    atomic.Pointer[snapshot]
	trigger chan string // buffered(1): pending re-solves coalesce

	ingested    atomic.Int64
	batches     atomic.Int64
	rejected    atomic.Int64
	driftAlerts atomic.Int64
	resolves    atomic.Int64
	solveErrors atomic.Int64
}

// newService wires the window, drift alerter, and retained caches over
// an advisor. The advisor's design space must use an explicit Configs
// list (the alerter watches it).
func newService(adv *advisor.Advisor, cfg serviceConfig) (*service, error) {
	if cfg.WindowCap <= 0 {
		cfg.WindowCap = 500
	}
	if cfg.MinSolve <= 0 {
		cfg.MinSolve = 25
	}
	if cfg.MinSolve > cfg.WindowCap {
		cfg.MinSolve = cfg.WindowCap
	}
	if cfg.Strategy == "" {
		cfg.Strategy = core.StrategyKAware
	}
	configs := adv.Space().Configs
	if configs == nil {
		return nil, fmt.Errorf("advisord: design space needs an explicit configuration list")
	}
	win, err := workload.NewWindow("live", cfg.WindowCap)
	if err != nil {
		return nil, err
	}
	s := &service{
		adv:     adv,
		cfg:     cfg,
		win:     win,
		memo:    advisor.NewMemo(cfg.MemoCap),
		cache:   core.NewSolveCache(),
		trigger: make(chan string, 1),
	}
	a, err := alerter.New(adv, configs, core.Config(0), cfg.Alerter)
	if err != nil {
		return nil, err
	}
	// The drift hookup: an alert — not a timer — schedules the re-solve.
	s.stream = alerter.NewStream(a, func(alerter.Alert) {
		s.driftAlerts.Add(1)
		s.requestSolve("drift")
	})
	s.helpGauges()
	return s, nil
}

// requestSolve schedules a re-solve; a pending request absorbs it (the
// solve snapshots the window when it starts, so coalescing loses
// nothing).
func (s *service) requestSolve(reason string) {
	select {
	case s.trigger <- reason:
	default:
	}
}

// run is the solver loop; it exits when ctx is cancelled. Exactly one
// run loop may be active — it is the single writer of the retained
// solver state.
func (s *service) run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case reason := <-s.trigger:
			if _, err := s.solveOnce(ctx, reason); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "advisord: %s re-solve failed: %v\n", reason, err)
			}
		}
	}
}

// solveOnce snapshots the window, re-solves it warm-started from the
// retained memo, solve cache, and last-known-good solution, and
// publishes the new recommendation snapshot. It must only be called
// from the solver goroutine (or a test standing in for it).
func (s *service) solveOnce(ctx context.Context, reason string) (*advisor.Recommendation, error) {
	s.mu.Lock()
	w := s.win.Snapshot()
	seq := s.win.Seq()
	if s.cfg.Tumbling {
		s.win.Reset()
	}
	s.mu.Unlock()
	if w.Len() == 0 {
		return nil, nil
	}
	opts := advisor.Options{
		K:           s.cfg.K,
		Strategy:    s.cfg.Strategy,
		SegmentSize: s.cfg.SegmentSize,
		Initial:     s.installed,
		Timeout:     s.cfg.Timeout,
		Fallback:    s.cfg.Fallback,
		Parallelism: s.cfg.Parallelism,
		Memo:        s.memo,
		Cache:       s.cache,
		Tracer:      s.cfg.Tracer,
	}
	if s.cfg.Fallback {
		opts.LastKnownGood = s.lkg
	}
	start := time.Now()
	rec, err := s.adv.RecommendContext(ctx, w, opts)
	elapsed := time.Since(start)
	if err != nil {
		s.solveErrors.Add(1)
		s.publishGauges(nil, elapsed)
		return rec, err
	}
	var expl *explain.Explanation
	if s.cfg.Explain {
		// Attribution only: the sweep and the audit re-solve the
		// problem many times over — too heavy for every window.
		expl, err = s.adv.Explain(ctx, rec, advisor.ExplainOptions{KSweepDelta: -1, AuditTrials: -1})
		if err != nil {
			expl = nil // the recommendation stands; provenance is best-effort
		}
	}
	body, err := json.Marshal(buildResponse(rec, expl, reason, seq, elapsed))
	if err != nil {
		s.solveErrors.Add(1)
		return rec, err
	}
	s.lkg = rec.Solution
	s.installed = rec.Solution.Designs[len(rec.Solution.Designs)-1]
	if err := s.stream.SetCurrent(s.installed); err != nil {
		return rec, err
	}
	s.snap.Store(&snapshot{seq: seq, body: body})
	s.resolves.Add(1)
	s.publishGauges(rec, elapsed)
	return rec, nil
}

// --- HTTP surface ------------------------------------------------------

// ingestRequest is the POST /ingest body: a single statement or a
// batch. Label optionally names the mix phase (segmentation snaps to
// label changes).
type ingestRequest struct {
	SQL        string            `json:"sql,omitempty"`
	Label      string            `json:"label,omitempty"`
	Statements []ingestStatement `json:"statements,omitempty"`
}

type ingestStatement struct {
	SQL   string `json:"sql"`
	Label string `json:"label,omitempty"`
}

type ingestResponse struct {
	Ingested int `json:"ingested"`
	Window   int `json:"window"`
	// Alerts is how many drift alerts this batch fired.
	Alerts int `json:"alerts"`
}

func (s *service) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/recommendation", s.handleRecommendation)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleIngest validates the whole batch first (parse + what-if
// costability), so a bad statement rejects the batch atomically, then
// feeds each statement through the window and the drift alerter.
func (s *service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	batch := req.Statements
	if req.SQL != "" {
		batch = append([]ingestStatement{{SQL: req.SQL, Label: req.Label}}, batch...)
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, "no statements")
		return
	}
	stmts := make([]workload.Statement, len(batch))
	for i, in := range batch {
		stmt, err := workload.NewStatement(in.SQL)
		if err == nil {
			// Validate against the schema by costing it once under the
			// empty configuration — the same check the advisor applies
			// at problem build, surfaced at the ingest boundary instead.
			_, err = s.adv.StatementCost(stmt, core.Config(0))
		}
		if err != nil {
			s.rejected.Add(int64(len(batch)))
			writeError(w, http.StatusBadRequest, "statement %d (%q): %v", i, in.SQL, err)
			return
		}
		stmts[i] = stmt
	}
	alerts := 0
	for i, stmt := range stmts {
		s.mu.Lock()
		s.win.Append(batch[i].Label, stmt)
		s.mu.Unlock()
		alert, err := s.stream.Observe(r.Context(), stmt)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "alerter: %v", err)
			return
		}
		if alert != nil {
			alerts++
		}
	}
	s.ingested.Add(int64(len(stmts)))
	s.batches.Add(1)
	s.mu.Lock()
	winLen := s.win.Len()
	s.mu.Unlock()
	if s.snap.Load() == nil && winLen >= s.cfg.MinSolve {
		s.requestSolve("initial")
	}
	s.publishIngestGauges()
	writeJSON(w, http.StatusOK, ingestResponse{Ingested: len(stmts), Window: winLen, Alerts: alerts})
}

// handleRecommendation serves the last published snapshot verbatim. The
// body was marshaled at publication, so concurrent readers get a
// consistent recommendation even while a re-solve is swapping it.
func (s *service) handleRecommendation(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := s.snap.Load()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, "no recommendation yet (window below %d statements or first solve pending)", s.cfg.MinSolve)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap.body)
}

// healthzResponse is the GET /healthz body; the smoke test asserts the
// drift counters off it.
type healthzResponse struct {
	Status            string   `json:"status"`
	Ingested          int64    `json:"ingested"`
	Batches           int64    `json:"batches"`
	Rejected          int64    `json:"rejected"`
	WindowStatements  int      `json:"window_statements"`
	WindowCapacity    int      `json:"window_capacity"`
	WindowTotal       int64    `json:"window_total"`
	DriftAlerts       int64    `json:"drift_alerts"`
	Resolves          int64    `json:"resolves"`
	SolveErrors       int64    `json:"solve_errors"`
	HasRecommendation bool     `json:"has_recommendation"`
	Memo              memoJSON `json:"memo"`
}

type memoJSON struct {
	Entries       int64   `json:"entries"`
	Capacity      int     `json:"capacity"`
	HitRate       float64 `json:"hit_rate"`
	Evictions     int64   `json:"evictions"`
	Invalidations int64   `json:"invalidations"`
}

func (s *service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	winLen, winCap, winTotal := s.win.Len(), s.win.Cap(), s.win.Total()
	s.mu.Unlock()
	ms := s.memo.Stats()
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:            "ok",
		Ingested:          s.ingested.Load(),
		Batches:           s.batches.Load(),
		Rejected:          s.rejected.Load(),
		WindowStatements:  winLen,
		WindowCapacity:    winCap,
		WindowTotal:       winTotal,
		DriftAlerts:       s.driftAlerts.Load(),
		Resolves:          s.resolves.Load(),
		SolveErrors:       s.solveErrors.Load(),
		HasRecommendation: s.snap.Load() != nil,
		Memo: memoJSON{
			Entries:       ms.Entries,
			Capacity:      ms.Capacity,
			HitRate:       ms.HitRate(),
			Evictions:     ms.Evictions,
			Invalidations: ms.Invalidations,
		},
	})
}

// --- Recommendation response -------------------------------------------

// recResponse is the GET /recommendation body: the design sequence in
// run-length form, the DDL steps to effect it, costing instrumentation,
// and (when enabled) the per-transition provenance.
type recResponse struct {
	Table       string    `json:"table"`
	Window      string    `json:"window"`
	WindowSeq   uint64    `json:"window_seq"`
	Reason      string    `json:"reason"`
	SolvedAt    time.Time `json:"solved_at"`
	SolveMillis float64   `json:"solve_millis"`
	Statements  int       `json:"statements"`
	Stages      int       `json:"stages"`
	K           int       `json:"k"`
	Initial     []string  `json:"initial"`
	Strategy    string    `json:"strategy"`
	Rung        string    `json:"rung"`
	Degraded    bool      `json:"degraded"`

	Cost      float64 `json:"cost"`
	ExecCost  float64 `json:"exec_cost"`
	TransCost float64 `json:"trans_cost"`
	Changes   int     `json:"changes"`

	Designs []designRun `json:"designs"`
	Steps   []stepJSON  `json:"steps"`

	Stats       solveStatsJSON       `json:"stats"`
	Explanation *explain.Explanation `json:"explanation,omitempty"`
}

// designRun is one run of the design sequence: the configuration in
// effect from FromStatement until the next run starts.
type designRun struct {
	FromStatement int      `json:"from_statement"`
	Label         string   `json:"label,omitempty"`
	Indexes       []string `json:"indexes"`
}

type stepJSON struct {
	Statement int      `json:"statement"`
	DDL       []string `json:"ddl"`
}

type solveStatsJSON struct {
	WhatIfCalls  int64   `json:"whatif_calls"`
	MemoHitRate  float64 `json:"memo_hit_rate"`
	MatrixBuilds int64   `json:"matrix_builds"`
	MatrixReuses int64   `json:"matrix_reuses"`
}

// configNames renders a configuration as its structure names.
func configNames(c core.Config, names []string) []string {
	out := []string{}
	for _, s := range c.Structures() {
		if s < len(names) {
			out = append(out, names[s])
		} else {
			out = append(out, fmt.Sprintf("bit%d", s))
		}
	}
	return out
}

func buildResponse(rec *advisor.Recommendation, expl *explain.Explanation, reason string, seq uint64, elapsed time.Duration) recResponse {
	resp := recResponse{
		Table:       rec.Table,
		Window:      rec.Workload.Name,
		WindowSeq:   seq,
		Reason:      reason,
		SolvedAt:    time.Now().UTC(),
		SolveMillis: float64(elapsed.Microseconds()) / 1000,
		Statements:  rec.Workload.Len(),
		Stages:      rec.Problem.Stages,
		K:           rec.Problem.K,
		Initial:     configNames(rec.Problem.Initial, rec.StructureNames),
		Strategy:    string(rec.Strategy),
		Rung:        string(rec.Rung),
		Degraded:    rec.Degraded,
		Cost:        rec.Solution.Cost,
		ExecCost:    rec.Solution.ExecCost,
		TransCost:   rec.Solution.TransCost,
		Changes:     rec.Solution.Changes,
		Stats: solveStatsJSON{
			WhatIfCalls:  rec.Stats.WhatIfCalls,
			MemoHitRate:  rec.Stats.HitRate(),
			MatrixBuilds: rec.MatrixBuilds,
			MatrixReuses: rec.MatrixReuses,
		},
		Explanation: expl,
	}
	// Run-length compress the per-stage designs: one entry per region
	// of constant configuration.
	prev := rec.Problem.Initial
	for i, cfg := range rec.Solution.Designs {
		if i == 0 || cfg != prev {
			resp.Designs = append(resp.Designs, designRun{
				FromStatement: rec.Segments[i].Start,
				Label:         rec.Segments[i].Label,
				Indexes:       configNames(cfg, rec.StructureNames),
			})
			prev = cfg
		}
	}
	for _, st := range rec.Steps() {
		resp.Steps = append(resp.Steps, stepJSON{Statement: st.StatementIndex, DDL: st.DDL})
	}
	return resp
}

// --- Gauges ------------------------------------------------------------

func (s *service) helpGauges() {
	g := s.cfg.Gauges
	if g == nil {
		return
	}
	g.Help("advisord_ingested_total", "Statements accepted by /ingest over the service lifetime.")
	g.Help("advisord_window_statements", "Statements currently in the sliding window.")
	g.Help("advisord_drift_alerts_total", "Drift alerts raised by the workload alerter.")
	g.Help("advisord_resolves_total", "Window re-solves that published a recommendation.")
	g.Help("advisord_solve_errors_total", "Window re-solves that failed.")
	g.Help("advisord_solve_seconds", "Wall-clock duration of the last re-solve.")
	g.Help("advisord_solve_cost", "Objective cost of the last published recommendation.")
	g.Help("advisord_memo_entries", "Current occupancy of the retained what-if memo.")
	g.Help("advisord_memo_hit_rate", "Lifetime hit rate of the retained what-if memo.")
	g.Help("advisord_memo_evictions_total", "Entries evicted from the capped what-if memo.")
	g.Help("advisord_memo_invalidations_total", "Whole-memo purges caused by cost-world changes.")
}

func (s *service) publishIngestGauges() {
	g := s.cfg.Gauges
	if g == nil {
		return
	}
	s.mu.Lock()
	winLen := s.win.Len()
	s.mu.Unlock()
	g.Set("advisord_ingested_total", float64(s.ingested.Load()))
	g.Set("advisord_window_statements", float64(winLen))
	g.Set("advisord_drift_alerts_total", float64(s.driftAlerts.Load()))
}

func (s *service) publishGauges(rec *advisor.Recommendation, elapsed time.Duration) {
	g := s.cfg.Gauges
	if g == nil {
		return
	}
	g.Set("advisord_resolves_total", float64(s.resolves.Load()))
	g.Set("advisord_solve_errors_total", float64(s.solveErrors.Load()))
	g.Set("advisord_solve_seconds", elapsed.Seconds())
	if rec != nil && rec.Solution != nil {
		g.Set("advisord_solve_cost", rec.Solution.Cost)
	}
	ms := s.memo.Stats()
	g.Set("advisord_memo_entries", float64(ms.Entries))
	g.Set("advisord_memo_hit_rate", ms.HitRate())
	g.Set("advisord_memo_evictions_total", float64(ms.Evictions))
	g.Set("advisord_memo_invalidations_total", float64(ms.Invalidations))
}
