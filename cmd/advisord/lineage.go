package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"dyndesign/internal/calib"
)

// lineageCap bounds the in-memory solve history served by GET /solves.
// The JSONL audit file (when configured) is unbounded: it is the
// durable record, the ring is the operator's quick view.
const lineageCap = 64

// solveRecord is the decision lineage of one solve attempt: everything
// needed to answer "why is this design installed" after the fact —
// which trigger fired, what slice of the stream the solver saw, which
// ladder rung answered, what it cost, how warm the caches were, and
// how well the cost model that justified it calibrated against the
// engine. One record is emitted per solve attempt, including failed
// ones (Error set, cost fields zero).
type solveRecord struct {
	// SolveID numbers solve attempts within this process, starting at 1.
	SolveID  uint64    `json:"solve_id"`
	Reason   string    `json:"reason"`
	SolvedAt time.Time `json:"solved_at"`
	// SolveMillis is the solver wall time (excludes explain, publish,
	// and calibration).
	SolveMillis float64 `json:"solve_millis"`

	// Window provenance: the solve consumed stream ordinals
	// [WindowStart, WindowEnd) — WindowEnd is the ingest cursor (total
	// statements ever accepted) at solve time, the same number /healthz
	// reports as window_total. WindowSeq is the window mutation counter
	// the published snapshot carries.
	Window      string `json:"window"`
	WindowSeq   uint64 `json:"window_seq"`
	WindowStart int64  `json:"window_start"`
	WindowEnd   int64  `json:"window_end"`
	// WALLastSeq is the last durable WAL sequence at solve time (0
	// without a data dir): the replay cursor this decision is pinned to.
	WALLastSeq uint64 `json:"wal_last_seq,omitempty"`
	// DriftAlerts is the lifetime alert count when the solve started —
	// correlating a record to the alert that triggered it.
	DriftAlerts int64 `json:"drift_alerts"`

	// Outcome: the requested strategy, the ladder rung that actually
	// answered, and the solved objective.
	Strategy  string  `json:"strategy,omitempty"`
	Rung      string  `json:"rung,omitempty"`
	Degraded  bool    `json:"degraded,omitempty"`
	K         int     `json:"k,omitempty"`
	Cost      float64 `json:"cost,omitempty"`
	ExecCost  float64 `json:"exec_cost,omitempty"`
	TransCost float64 `json:"trans_cost,omitempty"`
	Changes   int     `json:"changes,omitempty"`
	Gap       float64 `json:"gap,omitempty"`

	// Costing-layer warmth: how much of the answer came from retained
	// state rather than fresh what-if calls.
	WhatIfCalls      int64   `json:"whatif_calls,omitempty"`
	MemoHitRate      float64 `json:"memo_hit_rate,omitempty"`
	MatrixBuilds     int64   `json:"matrix_builds,omitempty"`
	MatrixReuses     int64   `json:"matrix_reuses,omitempty"`
	LatticeOverflows int64   `json:"lattice_overflows,omitempty"`

	// Error is set on failed attempts; all outcome fields are then zero.
	Error string `json:"error,omitempty"`

	// Calibration summarizes the post-publish measured-vs-estimated
	// replay of this recommendation; nil when calibration is disabled
	// or the replay itself failed.
	Calibration *calibSummary `json:"calibration,omitempty"`
}

// calibSummary is the per-solve slice of a calibration run, embedded in
// the lineage record (the streaming aggregates live at GET /calibration).
type calibSummary struct {
	Samples        int     `json:"samples"`
	SkippedDML     int     `json:"skipped_dml"`
	Errors         int     `json:"errors"`
	Transitions    int     `json:"transitions"`
	MedianAbsRatio float64 `json:"median_abs_ratio"`
	MeanSignedLog2 float64 `json:"mean_signed_log2"`
	WallMillis     float64 `json:"wall_millis"`
}

func summarizeCalibration(rep *calib.RunReport) *calibSummary {
	if rep == nil {
		return nil
	}
	return &calibSummary{
		Samples:        len(rep.Samples),
		SkippedDML:     rep.SkippedDML,
		Errors:         rep.Errors,
		Transitions:    rep.Transitions,
		MedianAbsRatio: rep.MedianAbsRatio(),
		MeanSignedLog2: rep.MeanSignedLog2(),
		WallMillis:     float64(rep.Wall.Microseconds()) / 1000,
	}
}

// lineage is the solve history: a bounded ring for GET /solves plus an
// optional append-only JSONL audit file that survives the ring (and the
// process). Records arrive from the single solver goroutine; readers
// are arbitrary HTTP goroutines, hence the mutex.
type lineage struct {
	mu     sync.Mutex
	nextID uint64
	recs   []solveRecord
	audit  *os.File
	// auditErrors counts JSONL writes that failed; the ring keeps the
	// record either way.
	auditErrors int64
}

// newLineage opens the audit sink (appending to an existing file, so
// restarts extend the history rather than truncate it). An empty path
// keeps lineage in-memory only.
func newLineage(auditPath string) (*lineage, error) {
	l := &lineage{}
	if auditPath != "" {
		f, err := os.OpenFile(auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("advisord: opening solve audit log: %w", err)
		}
		l.audit = f
	}
	return l, nil
}

// nextSolveID hands out the next attempt number.
func (l *lineage) nextSolveID() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	return l.nextID
}

// record appends to the ring (evicting the oldest past lineageCap) and
// the audit file. Audit failures are counted, not fatal: losing a
// lineage line must never take down the solve path that produced it.
func (l *lineage) record(rec solveRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, rec)
	if len(l.recs) > lineageCap {
		l.recs = l.recs[len(l.recs)-lineageCap:]
	}
	if l.audit == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err == nil {
		line = append(line, '\n')
		_, err = l.audit.Write(line)
	}
	if err != nil {
		l.auditErrors++
		fmt.Fprintf(os.Stderr, "advisord: solve audit append failed: %v\n", err)
	}
}

// list returns the retained records newest-first, plus the count of
// audit lines that failed to persist.
func (l *lineage) list() ([]solveRecord, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]solveRecord, len(l.recs))
	for i, r := range l.recs {
		out[len(out)-1-i] = r
	}
	return out, l.auditErrors
}

func (l *lineage) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.audit == nil {
		return nil
	}
	err := l.audit.Close()
	l.audit = nil
	return err
}
