// Command advisord is the long-running design advisor service: it
// ingests a SQL statement stream over HTTP, maintains a sliding (or
// tumbling) window of recent statements, and re-solves the constrained
// dynamic design problem whenever the drift alerter — not a timer —
// decides the installed design no longer fits the window.
//
// Endpoints:
//
//	POST /ingest          {"sql": "SELECT ..."} or {"statements": [{"label": "A", "sql": "..."}]}
//	POST /solve           force a synchronous re-solve and return the fresh recommendation
//	GET  /recommendation  last published design sequence, DDL steps, and provenance
//	GET  /solves          per-solve decision lineage, newest first (ring of 64)
//	GET  /calibration     streaming cost-model calibration report (estimate vs measured)
//	GET  /healthz         ingest/solve counters, memo occupancy, and WAL/recovery state
//
// After every published solve the service replays -calib-samples window
// statements against the engine under the recommended design, pairing
// each measured page-access count with the what-if estimate that
// justified the recommendation. The streaming error statistics (bias,
// ratio quantiles, drift trend) feed GET /calibration and the
// advisord_calib_* gauges; each solve's lineage record — trigger,
// window slice, WAL cursor, ladder rung, cache warmth, calibration
// summary — lands in GET /solves and, with -data-dir, in an append-only
// solves.jsonl audit log. See DESIGN.md §16.
//
// With -data-dir the service is crash-safe: every accepted statement is
// appended to a CRC-framed, fsync-batched write-ahead log BEFORE the
// window sees it, and the derived state (window ring, installed design,
// last-known-good solution, drift-detector costs) is snapshotted after
// every published solve. On restart the service loads the newest valid
// snapshot, replays the WAL tail, truncates torn records at the first
// bad frame, and resumes where it left off; /healthz window_total is
// the resume cursor for clients replaying a trace. Ingest is bounded:
// past -max-inflight concurrent requests the service sheds with 429 +
// Retry-After instead of queueing, and bodies beyond -max-body-bytes
// get 413. See DESIGN.md §14.
//
// Re-solves warm-start from state retained across windows: the what-if
// EXEC memo (keyed by segment content, capped with clock eviction), the
// dense cost-table cache (invalidated by model fingerprint), and the
// last-known-good solution backing the resilient ladder's final rung.
// Each solve runs under a deadline with the degradation ladder, and the
// published recommendation is swapped atomically, so concurrent readers
// always see a consistent last-known-good answer.
//
// Usage:
//
//	advisord -paper-rows 100000 -addr :8080 -k 2 -window 500
//	advisord -setup schema.sql -table t -addr :8080 -metrics-addr :9090
//
// -metrics-addr serves the service gauges (advisord_*) in Prometheus
// text format plus expvar and pprof; -trace-out writes solver spans as
// JSONL (flushed on SIGTERM like the other CLIs). See DESIGN.md §13.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dyndesign/internal/advisor"
	"dyndesign/internal/alerter"
	"dyndesign/internal/candidates"
	"dyndesign/internal/core"
	"dyndesign/internal/durable"
	"dyndesign/internal/engine"
	"dyndesign/internal/experiments"
	"dyndesign/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "advisord: %v\n", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	addr := flag.String("addr", ":8080", "service listen address")
	setup := flag.String("setup", "", "SQL script creating and filling the database")
	paperRows := flag.Int64("paper-rows", 0, "instead of -setup, build the paper's table with this many rows")
	table := flag.String("table", "t", "table to tune")
	k := flag.Int("k", 2, "change bound per window solve")
	strategyFlag := flag.String("strategy", "kaware", "solver: kaware, greedyseq, merge, ranking, rankmerge, hybrid")
	segment := flag.Int("segment", 1, "statements per optimization stage")
	windowCap := flag.Int("window", 500, "sliding window capacity in statements")
	tumbling := flag.Bool("tumbling", false, "reset the window at every re-solve instead of sliding it")
	minSolve := flag.Int("min-statements", 25, "window fill that triggers the first solve (negative = solve only on POST /solve)")
	dataDir := flag.String("data-dir", "", "durable state directory (WAL + snapshots); empty = in-memory only")
	fsyncEvery := flag.Int("fsync-every", 1, "fsync the WAL after every Nth ingested statement (1 = every statement)")
	walSegmentBytes := flag.Int64("wal-segment-bytes", 4<<20, "rotate the WAL to a fresh segment file at this size")
	snapshotEvery := flag.Int("snapshot-every", 0, "also snapshot after every N ingested statements (0 = snapshot only after solves)")
	maxInflight := flag.Int("max-inflight", 64, "concurrent /ingest requests before shedding with 429 (negative = unbounded)")
	maxBody := flag.Int64("max-body-bytes", 1<<20, "request body cap in bytes; larger bodies get 413 (negative = unlimited)")
	memoCap := flag.Int("memo-cap", 1<<20, "retained what-if memo bound in entries (0 = unbounded)")
	solveTimeout := flag.Duration("solve-timeout", 30*time.Second, "deadline per solve attempt (0 = none)")
	fallback := flag.Bool("fallback", true, "degrade to cheaper strategies (and last-known-good) when a solve attempt fails")
	parallelism := flag.Int("parallelism", 0, "worker bound for the cost-table build (0 = all cores, 1 = serial)")
	explainFlag := flag.Bool("explain", true, "attach per-transition cost attribution to each recommendation")
	alertWindow := flag.Int("alert-window", 0, "drift alerter window in statements (0 = default 500)")
	alertEvery := flag.Int("alert-every", 0, "re-check drift every this many statements (0 = default 50)")
	alertThreshold := flag.Float64("alert-threshold", 0, "relative improvement that counts as drift (0 = default 0.25)")
	calibSamples := flag.Int("calib-samples", 16, "statements replayed against the engine after each published solve to calibrate the cost model (0 = off)")
	calibSeed := flag.Int64("calib-seed", 1, "seed for the deterministic calibration sampling")
	traceOut := flag.String("trace-out", "", "write solver spans as JSONL to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics, expvar, and pprof at this address (e.g. :9090)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof at this address (may equal -metrics-addr)")
	flag.Parse()

	gauges := obs.NewGaugeSet()
	hists := obs.NewHistogramSet()
	tracer, obsTeardown, err := obs.Setup(obs.CLIConfig{
		TracePath:   *traceOut,
		MetricsAddr: *metricsAddr,
		PprofAddr:   *pprofAddr,
		SummaryW:    os.Stderr,
		Gauges:      gauges,
		Hists:       hists,
		// SIGTERM routes the JSONL tail flush through the signal path:
		// spans emitted before the signal survive even if the process
		// exits without running the deferred teardown.
		FlushCtx: ctx,
	})
	if err != nil {
		return err
	}
	defer obsTeardown()

	db, err := buildDatabase(*setup, *paperRows, *table)
	if err != nil {
		return err
	}
	structures := candidates.PaperStructures(*table)
	adv, err := advisor.New(db, advisor.DesignSpace{
		Table:      *table,
		Structures: structures,
		Configs:    advisor.SingleIndexConfigs(len(structures)),
	})
	if err != nil {
		return err
	}
	var store *durable.Store
	auditPath := ""
	if *dataDir != "" {
		store, err = durable.Open(*dataDir, durable.Options{FsyncEvery: *fsyncEvery, SegmentBytes: *walSegmentBytes})
		if err != nil {
			return err
		}
		// The solve lineage audit rides in the data dir beside the WAL:
		// an append-only JSONL history of every solve attempt.
		auditPath = filepath.Join(*dataDir, "solves.jsonl")
	}
	svc, err := newService(adv, serviceConfig{
		WindowCap:     *windowCap,
		Tumbling:      *tumbling,
		MinSolve:      *minSolve,
		MemoCap:       *memoCap,
		K:             *k,
		Strategy:      core.Strategy(*strategyFlag),
		SegmentSize:   *segment,
		Timeout:       *solveTimeout,
		Fallback:      *fallback,
		Parallelism:   *parallelism,
		Explain:       *explainFlag,
		CalibSamples:  *calibSamples,
		CalibSeed:     *calibSeed,
		AuditPath:     auditPath,
		Store:         store,
		SnapshotEvery: *snapshotEvery,
		MaxInflight:   *maxInflight,
		MaxBody:       *maxBody,
		Alerter: alerter.Options{
			WindowSize: *alertWindow,
			CheckEvery: *alertEvery,
			Threshold:  *alertThreshold,
		},
		Tracer: tracer,
		Gauges: gauges,
		Hists:  hists,
	})
	if err != nil {
		if store != nil {
			store.Close()
		}
		return err
	}

	// The solver gets its own context so shutdown can order things
	// deterministically: drain HTTP, cancel any in-flight solve, wait
	// for the solver goroutine to exit, and only then write the final
	// snapshot and release the data dir (svc.close). A snapshot can
	// therefore never race a publishing solve.
	solverCtx, cancelSolver := context.WithCancel(context.Background())
	defer cancelSolver()
	solverDone := make(chan struct{})
	go func() {
		defer close(solverDone)
		svc.run(solverCtx)
	}()

	// Full server timeouts: a slow or stalled client cannot hold a
	// connection (and its handler goroutine) forever. The write timeout
	// leaves room for a forced solve to run to its own deadline.
	writeTimeout := *solveTimeout + 30*time.Second
	if *solveTimeout <= 0 {
		writeTimeout = 0
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "advisord: serving on %s (window %d, k %d, drift-triggered re-solves)\n",
		*addr, *windowCap, *k)

	shutdown := func() error {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
		cancelSolver()
		<-solverDone
		return svc.close()
	}
	select {
	case <-ctx.Done():
		if err := shutdown(); err != nil {
			fmt.Fprintf(os.Stderr, "advisord: shutdown: %v\n", err)
		}
		return ctx.Err()
	case err := <-srvErr:
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		if serr := shutdown(); err == nil {
			err = serr
		}
		return err
	}
}

// buildDatabase loads the table to tune, mirroring the dyndesign CLI:
// either a SQL setup script or the paper's synthetic table.
func buildDatabase(setup string, paperRows int64, table string) (*engine.Database, error) {
	switch {
	case paperRows > 0 && setup != "":
		return nil, fmt.Errorf("use either -setup or -paper-rows, not both")
	case paperRows > 0:
		fmt.Fprintf(os.Stderr, "advisord: building paper table with %d rows...\n", paperRows)
		return experiments.SetupPaperDatabase(experiments.Scale{Rows: paperRows, BlockSize: 1, Seed: 1})
	case setup != "":
		db := engine.New()
		f, err := os.Open(setup)
		if err != nil {
			return nil, err
		}
		err = db.ExecScript(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		if err := db.Analyze(table); err != nil {
			return nil, err
		}
		return db, nil
	default:
		return nil, fmt.Errorf("one of -setup or -paper-rows is required")
	}
}
