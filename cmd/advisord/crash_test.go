package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"dyndesign/internal/chaos"
	"dyndesign/internal/workload"
)

// TestMain doubles the test binary as the advisord executable: when
// ADVISORD_CHILD=1 it runs the real server main loop instead of the
// tests. The crash harness starts these children, SIGKILLs them at
// seeded chaos points, and restarts them over the same data dir — a
// real process death, not a simulated one.
func TestMain(m *testing.M) {
	if os.Getenv("ADVISORD_CHILD") == "1" {
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		err := run(ctx)
		stop()
		if err != nil && !errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "advisord child: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// crashRows keeps the child's paper table small enough that a scenario
// (two child starts, two solves) stays in seconds.
const crashRows = 3000

// midSolveAt is the statement count at which the harness forces the
// mid-trace solve, chaining the installed design into the final one.
const midSolveAt = 60

const crashBatch = 8

var (
	crashTraceOnce sync.Once
	crashTraceVal  []ingestStatement
	crashTraceErr  error
)

// crashTrace is the drifting trace every scenario replays: phase A then
// phase C, generated against the child's table size so every statement
// is costable there.
func crashTrace(t *testing.T) []ingestStatement {
	t.Helper()
	crashTraceOnce.Do(func() {
		w, err := workload.GeneratePhased("crash", workload.PaperMixes(crashRows), []workload.PhaseSpec{
			{Mix: "A", Count: 80},
			{Mix: "C", Count: 80},
		}, 7)
		if err != nil {
			crashTraceErr = err
			return
		}
		for i, stmt := range w.Statements {
			crashTraceVal = append(crashTraceVal, ingestStatement{SQL: stmt.SQL, Label: w.Labels[i]})
		}
	})
	if crashTraceErr != nil {
		t.Fatal(crashTraceErr)
	}
	return crashTraceVal
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

type childProc struct {
	cmd    *exec.Cmd
	stderr bytes.Buffer
	done   chan error
}

// startChild launches advisord (this test binary re-exec'd) against
// dataDir, optionally armed with a CHAOS_CRASHPOINT spec.
func startChild(t *testing.T, port int, dataDir, crashpoint string) *childProc {
	t.Helper()
	cmd := exec.Command(os.Args[0],
		"-paper-rows", strconv.Itoa(crashRows),
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-k", "2",
		"-segment", "5",
		"-window", "80",
		"-min-statements", "-1", // solves happen only on POST /solve
		"-alert-every", "1000000", // drift checks off: deterministic solve points
		"-alert-threshold", "0.99",
		"-explain=false",
		"-data-dir", dataDir,
		"-fsync-every", "1",
		"-wal-segment-bytes", "2048", // force segment rotations inside the trace
	)
	cmd.Env = append(os.Environ(), "ADVISORD_CHILD=1")
	if crashpoint != "" {
		cmd.Env = append(cmd.Env, chaos.CrashEnv+"="+crashpoint)
	}
	c := &childProc{cmd: cmd, done: make(chan error, 1)}
	cmd.Stderr = &c.stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { c.done <- cmd.Wait() }()
	return c
}

func (c *childProc) waitExit(t *testing.T) error {
	t.Helper()
	select {
	case err := <-c.done:
		return err
	case <-time.After(30 * time.Second):
		_ = c.cmd.Process.Kill()
		t.Fatalf("child did not exit; stderr:\n%s", c.stderr.String())
		return nil
	}
}

func (c *childProc) terminate(t *testing.T) {
	t.Helper()
	_ = c.cmd.Process.Signal(syscall.SIGTERM)
	_ = c.waitExit(t)
}

func waitReady(t *testing.T, c *childProc, base string) {
	t.Helper()
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		select {
		case err := <-c.done:
			t.Fatalf("child exited during startup: %v\nstderr:\n%s", err, c.stderr.String())
		case <-time.After(50 * time.Millisecond):
		}
	}
	t.Fatalf("child never became ready; stderr:\n%s", c.stderr.String())
}

// postBatch sends one ingest batch; a transport error means the child
// died mid-request (the crash signal the harness recovers from).
func postBatch(client *http.Client, base string, batch []ingestStatement) error {
	body, err := json.Marshal(ingestRequest{Statements: batch})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("ingest status %d: %s", resp.StatusCode, msg)
	}
	return nil
}

// postSolve forces a synchronous solve and returns the fresh
// recommendation body.
func postSolve(client *http.Client, base string) ([]byte, error) {
	resp, err := client.Post(base+"/solve", "application/json", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("solve status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}

func healthzAt(t *testing.T, client *http.Client, base string) healthzResponse {
	t.Helper()
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz after restart: %v", err)
	}
	defer resp.Body.Close()
	var h healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// canonicalSolve strips the volatile fields (wall-clock stamps, solve
// duration, cache instrumentation) and re-marshals with sorted keys, so
// two runs compare on exactly the recommendation contract: designs,
// steps, costs, problem shape.
func canonicalSolve(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("solve body does not parse: %v\n%s", err, body)
	}
	delete(m, "solved_at")
	delete(m, "solve_millis")
	delete(m, "stats")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runScenario replays the crash trace against a fresh child, forcing a
// solve at midSolveAt and at the end, and returns the canonicalized
// final recommendation. With a crashpoint armed, the child SIGKILLs
// itself mid-operation; the harness restarts it over the same data dir
// and resumes the trace from the recovered window_total — the durable
// statement count — so the stream the recovered service sees is exactly
// the stream the uninterrupted service saw. A mid-trace solve whose
// durable snapshot was lost to the crash is re-forced over the
// identical window before ingestion resumes, keeping the installed
// design chain (each solve's C0) the same in both runs.
func runScenario(t *testing.T, crashpoint string) (final []byte, restarts int) {
	t.Helper()
	dir := t.TempDir()
	port := freePort(t)
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	trace := crashTrace(t)
	child := startChild(t, port, dir, crashpoint)
	defer func() {
		if child != nil {
			_ = child.cmd.Process.Kill()
		}
	}()
	waitReady(t, child, base)
	client := &http.Client{Timeout: 120 * time.Second}

	sent, midDone := 0, false
	restart := func() {
		if err := child.waitExit(t); err == nil {
			t.Fatalf("request failed but child %q exited cleanly; stderr:\n%s", crashpoint, child.stderr.String())
		}
		restarts++
		if restarts > 3 {
			t.Fatalf("child crashed %d times; crash point should fire once", restarts)
		}
		child = startChild(t, port, dir, "") // recovered run: no crash point
		waitReady(t, child, base)
		h := healthzAt(t, client, base)
		if h.Durable == nil {
			t.Fatal("recovered child reports no durable state")
		}
		sent = int(h.WindowTotal)
		midDone = h.Durable.RecoverySnapSeq >= midSolveAt
		if !midDone && sent >= midSolveAt {
			// The mid solve ran but its snapshot died with the process:
			// the window is byte-identical to the one it solved (nothing
			// was ingested after it), so re-forcing reproduces the same
			// installed design the uninterrupted run chained from.
			if _, err := postSolve(client, base); err != nil {
				t.Fatalf("re-forcing lost mid solve: %v", err)
			}
			midDone = true
		}
	}

	for sent < len(trace) || !midDone {
		if !midDone && sent >= midSolveAt {
			if _, err := postSolve(client, base); err != nil {
				restart()
				continue
			}
			midDone = true
			continue
		}
		end := min(sent+crashBatch, len(trace))
		if !midDone {
			end = min(end, midSolveAt)
		}
		if err := postBatch(client, base, trace[sent:end]); err != nil {
			restart()
			continue
		}
		sent = end
	}
	body, err := postSolve(client, base)
	if err != nil {
		restart()
		if body, err = postSolve(client, base); err != nil {
			t.Fatalf("final solve after restart: %v", err)
		}
	}
	child.terminate(t)
	child = nil
	return canonicalSolve(t, body), restarts
}

// TestAdvisordCrashRecovery is the crash-restart equivalence gate: for
// every seeded kill point — mid-WAL-append (a real torn frame), before
// and after the fsync, at a segment rotation, and at each stage of the
// atomic snapshot write — a SIGKILLed-and-recovered advisord must serve
// a final recommendation byte-identical (modulo timestamps) to an
// uninterrupted run over the same trace.
func TestAdvisordCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash harness; skipped with -short")
	}
	ref, refRestarts := runScenario(t, "")
	if refRestarts != 0 {
		t.Fatalf("reference run restarted %d times", refRestarts)
	}
	for _, cp := range []string{
		"wal.append.mid:25",     // torn frame during ingest, before the mid solve
		"wal.append.presync:40", // record written, fsync pending
		"wal.rotate:2",          // at the second segment rotation
		"wal.append.mid:100",    // torn frame after the mid solve's snapshot
		"snapshot.tmp:1",        // mid snapshot temp write (solve published, not durable)
		"snapshot.rename:1",     // temp durable, rename pending
		"snapshot.post:1",       // snapshot fully durable, response lost
	} {
		t.Run(cp, func(t *testing.T) {
			got, restarts := runScenario(t, cp)
			if restarts == 0 {
				t.Fatalf("crash point %s never fired: the scenario tested nothing", cp)
			}
			if !bytes.Equal(got, ref) {
				dir := os.Getenv("ADVISORD_CRASH_ARTIFACTS")
				if dir == "" {
					dir = t.TempDir()
				}
				_ = os.MkdirAll(dir, 0o755)
				refPath := filepath.Join(dir, "reference.json")
				gotPath := filepath.Join(dir, fmt.Sprintf("recovered-%s.json", sanitize(cp)))
				_ = os.WriteFile(refPath, ref, 0o644)
				_ = os.WriteFile(gotPath, got, 0o644)
				t.Fatalf("recovered recommendation diverges from uninterrupted run (artifacts: %s, %s)\nref: %s\ngot: %s",
					refPath, gotPath, ref, got)
			}
		})
	}
}

func sanitize(s string) string {
	out := []byte(s)
	for i, b := range out {
		if b == ':' || b == '/' || b == '.' {
			out[i] = '_'
		}
	}
	return string(out)
}
