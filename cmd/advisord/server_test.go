package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"dyndesign/internal/advisor"
	"dyndesign/internal/alerter"
	"dyndesign/internal/candidates"
	"dyndesign/internal/core"
	"dyndesign/internal/durable"
	"dyndesign/internal/experiments"
	"dyndesign/internal/obs"
	"dyndesign/internal/workload"
)

const testRows = 20000

var (
	advOnce sync.Once
	advErr  error
	testAdv *advisor.Advisor
)

// testAdvisor builds the paper table once per test binary — the
// expensive fixture every service test shares. The advisor itself is
// stateless across recommendations, so sharing is safe.
func testAdvisor(t *testing.T) *advisor.Advisor {
	t.Helper()
	advOnce.Do(func() {
		db, err := experiments.SetupPaperDatabase(experiments.Scale{Rows: testRows, BlockSize: 1, Seed: 1})
		if err != nil {
			advErr = err
			return
		}
		structures := candidates.PaperStructures("t")
		testAdv, advErr = advisor.New(db, advisor.DesignSpace{
			Table:      "t",
			Structures: structures,
			Configs:    advisor.SingleIndexConfigs(len(structures)),
		})
	})
	if advErr != nil {
		t.Fatal(advErr)
	}
	return testAdv
}

// phasedTrace builds a drifting statement stream: phase A (selects
// mostly on column a) followed by phase C (mostly on column c), the
// shape that forces the installed design out from under the window.
func phasedTrace(t *testing.T, perPhase int) *workload.Workload {
	t.Helper()
	w, err := workload.GeneratePhased("drift", workload.PaperMixes(testRows), []workload.PhaseSpec{
		{Mix: "A", Count: perPhase},
		{Mix: "C", Count: perPhase},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func postIngest(t *testing.T, client *http.Client, url string, batch []ingestStatement) ingestResponse {
	t.Helper()
	body, err := json.Marshal(ingestRequest{Statements: batch})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest status %d", resp.StatusCode)
	}
	return out
}

// readAuditRecords parses the solve audit JSONL, failing on any line
// that does not decode as a solveRecord.
func readAuditRecords(t *testing.T, path string) []solveRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening solve audit log: %v", err)
	}
	defer f.Close()
	var out []solveRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec solveRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("audit line %d does not parse: %v\n%s", len(out)+1, err, sc.Text())
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// promLine matches one Prometheus text-exposition sample, with
// escaped-quote-aware label values.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*",?)*\})? [^ ]+$`)

// assertPrometheusParses fails if any non-comment line of a text
// exposition is not a well-formed sample.
func assertPrometheusParses(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}
}

func getHealthz(t *testing.T, client *http.Client, url string) healthzResponse {
	t.Helper()
	resp, err := client.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestAdvisordSmoke is the end-to-end service exercise `make
// advisord-smoke` runs: start the server, stream a phase-shifting trace
// through POST /ingest, and assert that the drift alerter (not a timer)
// forced at least one re-solve and that GET /recommendation parses.
func TestAdvisordSmoke(t *testing.T) {
	adv := testAdvisor(t)
	dataDir := t.TempDir()
	store, err := durable.Open(dataDir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gauges := obs.NewGaugeSet()
	hists := obs.NewHistogramSet()
	svc, err := newService(adv, serviceConfig{
		WindowCap:    100,
		MinSolve:     40,
		K:            2,
		SegmentSize:  5,
		Timeout:      30 * time.Second,
		Fallback:     true,
		Explain:      true,
		CalibSamples: 8,
		CalibSeed:    1,
		AuditPath:    filepath.Join(dataDir, "solves.jsonl"),
		Store:        store,
		Alerter:      alerter.Options{WindowSize: 60, CheckEvery: 20},
		Gauges:       gauges,
		Hists:        hists,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	solverDone := make(chan struct{})
	go func() { defer close(solverDone); svc.run(ctx) }()

	ts := httptest.NewServer(svc.mux())
	defer ts.Close()
	client := ts.Client()

	// No recommendation before the window warms up.
	resp, err := client.Get(ts.URL + "/recommendation")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty-service /recommendation status %d, want 503", resp.StatusCode)
	}

	// Stream the drifting trace in batches, like a workload collector
	// would.
	trace := phasedTrace(t, 120)
	for i := 0; i < trace.Len(); i += 20 {
		end := i + 20
		if end > trace.Len() {
			end = trace.Len()
		}
		batch := make([]ingestStatement, 0, end-i)
		for j := i; j < end; j++ {
			batch = append(batch, ingestStatement{SQL: trace.Statements[j].SQL, Label: trace.Labels[j]})
		}
		out := postIngest(t, client, ts.URL, batch)
		if out.Ingested != len(batch) {
			t.Fatalf("batch at %d: ingested %d of %d", i, out.Ingested, len(batch))
		}
	}

	// The solver runs asynchronously; wait for the drift-triggered
	// re-solve to land.
	deadline := time.Now().Add(60 * time.Second)
	var h healthzResponse
	for {
		h = getHealthz(t, client, ts.URL)
		if h.DriftAlerts >= 1 && h.Resolves >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no drift re-solve: %+v", h)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if h.SolveErrors != 0 {
		t.Fatalf("solve errors: %+v", h)
	}
	if h.Ingested != int64(trace.Len()) {
		t.Fatalf("ingested %d, want %d", h.Ingested, trace.Len())
	}
	if h.WindowStatements != 100 {
		t.Fatalf("window fill %d, want capacity 100", h.WindowStatements)
	}

	// The published recommendation must parse and describe the window.
	resp, err = client.Get(ts.URL + "/recommendation")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/recommendation status %d", resp.StatusCode)
	}
	var rec recResponse
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatalf("decoding /recommendation: %v", err)
	}
	if rec.Table != "t" || rec.Statements == 0 || len(rec.Designs) == 0 {
		t.Fatalf("implausible recommendation: %+v", rec)
	}
	if rec.Cost <= 0 {
		t.Fatalf("recommendation cost %v", rec.Cost)
	}
	if rec.Explanation == nil || len(rec.Explanation.Transitions) == 0 {
		t.Fatal("recommendation carries no provenance")
	}

	// Calibration runs on the solver goroutine strictly after each
	// publish, so the report can lag the resolve counter; wait for the
	// monitor to fold in at least one replay and the lineage ring to
	// carry both solves.
	var cal calibrationResponse
	var solves solvesResponse
	for {
		resp, err := client.Get(ts.URL + "/calibration")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&cal)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding /calibration: %v", err)
		}
		resp, err = client.Get(ts.URL + "/solves")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&solves)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding /solves: %v", err)
		}
		if cal.Report.Runs >= 1 && solves.Count >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("calibration/lineage never landed: %+v / %+v", cal, solves)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !cal.Enabled || cal.Report.Samples == 0 {
		t.Fatalf("implausible calibration report: %+v", cal)
	}
	if cal.Report.MedianAbsRatio < 1 {
		t.Fatalf("absolute error ratio below 1 is impossible: %+v", cal.Report)
	}
	if cal.CalibrationErrors != 0 {
		t.Fatalf("calibration replays failed: %+v", cal)
	}

	// Lineage: newest-first records correlating trigger, window slice,
	// WAL cursor, answering rung, and calibration summary.
	newest := solves.Solves[0]
	if newest.SolveID == 0 || newest.Rung == "" || newest.WindowEnd == 0 {
		t.Fatalf("implausible lineage record: %+v", newest)
	}
	if newest.WindowStart >= newest.WindowEnd {
		t.Fatalf("lineage window range [%d, %d) is empty", newest.WindowStart, newest.WindowEnd)
	}
	if newest.WALLastSeq == 0 {
		t.Fatalf("lineage record lost the WAL cursor: %+v", newest)
	}
	hasDrift, hasCalib := false, false
	for _, r := range solves.Solves {
		if r.Reason == "drift" {
			hasDrift = true
		}
		if r.Calibration != nil && r.Calibration.Samples > 0 {
			hasCalib = true
		}
	}
	if !hasDrift {
		t.Fatalf("no lineage record names the drift trigger: %+v", solves.Solves)
	}
	if !hasCalib {
		t.Fatalf("no lineage record carries a calibration summary: %+v", solves.Solves)
	}

	// The durable audit log mirrors the ring: one parseable JSON line
	// per solve attempt.
	auditLines := readAuditRecords(t, filepath.Join(dataDir, "solves.jsonl"))
	if len(auditLines) < solves.Count {
		t.Fatalf("audit log has %d records, ring has %d", len(auditLines), solves.Count)
	}

	// The metrics exposition — the exact bytes /metrics serves for these
	// registries — must parse, with the calibration and latency families
	// populated.
	var mbuf bytes.Buffer
	if err := hists.WritePrometheus(&mbuf); err != nil {
		t.Fatal(err)
	}
	if err := gauges.WritePrometheus(&mbuf); err != nil {
		t.Fatal(err)
	}
	metricsText := mbuf.String()
	assertPrometheusParses(t, metricsText)
	for _, family := range []string{
		"advisord_calib_runs_total",
		"advisord_calib_median_abs_ratio",
		"advisord_calib_trend",
		"advisord_recommendation_age_seconds",
		"advisord_last_solve_seconds",
		"advisord_solve_seconds_bucket",
		"advisord_ingest_seconds_bucket",
	} {
		if !strings.Contains(metricsText, family) {
			t.Errorf("metrics exposition missing %s:\n%s", family, metricsText)
		}
	}
	if hists.Count("advisord_solve_seconds") < 2 || hists.Count("advisord_ingest_seconds") == 0 {
		t.Fatalf("latency histograms not populated: solve %d ingest %d",
			hists.Count("advisord_solve_seconds"), hists.Count("advisord_ingest_seconds"))
	}

	// Persist the calibration report for CI artifact upload, mirroring
	// the crash harness's ADVISORD_CRASH_ARTIFACTS convention.
	if dir := os.Getenv("ADVISORD_CALIB_ARTIFACTS"); dir != "" {
		_ = os.MkdirAll(dir, 0o755)
		buf, err := json.MarshalIndent(cal, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "calibration.json")
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatalf("writing calibration artifact: %v", err)
		}
		t.Logf("calibration artifact: %s", path)
	}

	// Bad statements are rejected atomically with a 400.
	body, _ := json.Marshal(ingestRequest{SQL: "SELECT nonsense FROM nowhere"})
	resp, err = client.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-statement ingest status %d, want 400", resp.StatusCode)
	}

	cancel()
	select {
	case <-solverDone:
	case <-time.After(5 * time.Second):
		t.Fatal("solver goroutine did not exit on cancel")
	}

	// Teardown must release the data dir completely: the LOCK file is
	// gone and a fresh store can open (and recover) the directory — the
	// check that catches leaked lock files in CI.
	if err := svc.close(); err != nil {
		t.Fatalf("closing service: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "LOCK")); !os.IsNotExist(err) {
		t.Fatalf("LOCK file leaked after shutdown: %v", err)
	}
	reopened, err := durable.Open(dataDir, durable.Options{})
	if err != nil {
		t.Fatalf("data dir not reopenable after shutdown: %v", err)
	}
	snap, _, err := reopened.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || len(snap.Window.Statements) == 0 {
		t.Fatalf("final snapshot missing or empty: %+v", snap)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
}

// solutionBytes canonicalizes the part of a recommendation the
// equivalence contract covers: the solved design sequence and the DDL
// steps derived from it.
func solutionBytes(t *testing.T, rec *advisor.Recommendation) []byte {
	t.Helper()
	buf, err := json.Marshal(struct {
		Solution *core.Solution
		Steps    []advisor.Step
	}{rec.Solution, rec.Steps()})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestAdvisordIncrementalMatchesOneShot is the incremental ≡ one-shot
// equivalence gate: a windowed re-solve that warm-starts from the
// retained memo, solve cache, and chained initial configuration must be
// byte-identical to a cold advisor.RecommendContext over the same
// window — on the serial path and with Parallelism = 4.
func TestAdvisordIncrementalMatchesOneShot(t *testing.T) {
	adv := testAdvisor(t)
	trace := phasedTrace(t, 80)
	for _, par := range []int{1, 4} {
		par := par
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			svc, err := newService(adv, serviceConfig{
				WindowCap:   120,
				MinSolve:    1,
				K:           2,
				SegmentSize: 5,
				Parallelism: par,
				Alerter:     alerter.Options{},
			})
			if err != nil {
				t.Fatal(err)
			}
			// Drive the stream synchronously: append and re-solve every
			// 40 statements, so the final solve warm-starts from four
			// earlier windows' worth of retained state.
			var warm *advisor.Recommendation
			for i, stmt := range trace.Statements {
				svc.mu.Lock()
				svc.win.Append(trace.Labels[i], stmt)
				svc.mu.Unlock()
				if (i+1)%40 == 0 || i == trace.Len()-1 {
					warm, err = svc.solveOnce(context.Background(), "test")
					if err != nil {
						t.Fatalf("warm solve at %d: %v", i, err)
					}
				}
			}
			if warm == nil || warm.Solution == nil {
				t.Fatal("no warm recommendation")
			}
			if st := svc.memo.Stats(); st.Hits == 0 {
				t.Fatalf("retained memo never hit across windows: %+v", st)
			}

			// Cold one-shot over the same window: fresh memo, fresh
			// cache, same options (the warm solve's Initial is the
			// design chained from the previous window's adoption).
			svc.mu.Lock()
			w := svc.win.Snapshot()
			svc.mu.Unlock()
			for _, coldPar := range []int{1, 4} {
				cold, err := adv.RecommendContext(context.Background(), w, advisor.Options{
					K:           2,
					SegmentSize: 5,
					Initial:     warm.Problem.Initial,
					Parallelism: coldPar,
				})
				if err != nil {
					t.Fatalf("cold solve (par %d): %v", coldPar, err)
				}
				if got, want := solutionBytes(t, cold), solutionBytes(t, warm); !bytes.Equal(got, want) {
					t.Fatalf("incremental (par %d) and one-shot (par %d) recommendations differ:\nwarm: %s\ncold: %s",
						par, coldPar, want, got)
				}
			}
		})
	}
}

// TestAdvisordIngestValidation pins the HTTP error contract: wrong
// methods, empty batches, and unparsable bodies are rejected without
// touching the window.
func TestAdvisordIngestValidation(t *testing.T) {
	adv := testAdvisor(t)
	svc, err := newService(adv, serviceConfig{WindowCap: 10, MinSolve: 5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.mux())
	defer ts.Close()
	client := ts.Client()

	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{http.MethodGet, "/ingest", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/ingest", "{}", http.StatusBadRequest},
		{http.MethodPost, "/ingest", "not json", http.StatusBadRequest},
		{http.MethodPost, "/ingest", `{"sql": "DROP TABLE t"}`, http.StatusBadRequest},
		{http.MethodPost, "/recommendation", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/healthz", "", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s (%q): status %d, want %d", tc.method, tc.path, tc.body, resp.StatusCode, tc.want)
		}
	}
	if h := getHealthz(t, client, ts.URL); h.WindowStatements != 0 || h.Ingested != 0 {
		t.Fatalf("rejected requests touched the window: %+v", h)
	}
}
