package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dyndesign/internal/durable"
)

// stalledStore opens a durable store whose first fsync blocks until
// gate is closed — the induced "disk fell behind" condition.
func stalledStore(t *testing.T, gate chan struct{}) *durable.Store {
	t.Helper()
	store, err := durable.Open(t.TempDir(), durable.Options{BeforeSync: func() { <-gate }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// TestAdvisordIngestShedsUnderWALStall pins the overload contract: when
// the WAL stalls (fsync blocked), at most MaxInflight ingest requests
// occupy the server; every request beyond that is shed immediately with
// 429 + Retry-After instead of queueing. The bound is exact — with 4
// slots wedged, all 36 remaining requests shed — which is what keeps a
// stalled disk from growing memory without limit.
func TestAdvisordIngestShedsUnderWALStall(t *testing.T) {
	adv := testAdvisor(t)
	gate := make(chan struct{})
	store := stalledStore(t, gate)
	svc, err := newService(adv, serviceConfig{
		WindowCap:   50,
		MinSolve:    -1,
		MaxInflight: 4,
		Store:       store,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.mux())
	defer ts.Close()
	client := ts.Client()

	const total = 40
	type result struct {
		status     int
		retryAfter string
	}
	results := make(chan result, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(ingestRequest{SQL: "SELECT a FROM t WHERE a = 1"})
			resp, err := client.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("ingest under stall: %v", err)
				results <- result{status: -1}
				return
			}
			resp.Body.Close()
			results <- result{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		}()
	}

	// Wait for every excess request to be shed while the WAL is still
	// stalled, then release the disk and let the admitted ones finish.
	shed := 0
	collected := make([]result, 0, total)
	timeout := time.After(30 * time.Second)
	for shed < total-4 {
		select {
		case r := <-results:
			collected = append(collected, r)
			if r.status == http.StatusTooManyRequests {
				shed++
			} else if r.status != -1 {
				t.Fatalf("request completed with %d while the WAL was stalled", r.status)
			}
		case <-timeout:
			t.Fatalf("only %d of %d requests shed while the WAL was stalled", shed, total-4)
		}
	}
	close(gate)
	wg.Wait()
	close(results)
	for r := range results {
		collected = append(collected, r)
	}

	ok, tooMany := 0, 0
	for _, r := range collected {
		switch r.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			tooMany++
			if r.retryAfter == "" {
				t.Error("429 without a Retry-After header")
			}
		default:
			t.Errorf("unexpected status %d", r.status)
		}
	}
	if ok != 4 || tooMany != total-4 {
		t.Fatalf("got %d accepted / %d shed, want exactly 4 / %d: the inflight bound leaked", ok, tooMany, total-4)
	}
	h := getHealthz(t, client, ts.URL)
	if h.Shed != int64(total-4) || h.Ingested != 4 || h.WindowTotal != 4 {
		t.Fatalf("counters disagree with the bound: %+v", h)
	}
	if h.Durable == nil || h.Durable.WALAppends != 4 {
		t.Fatalf("WAL saw %+v appends, want exactly the admitted 4", h.Durable)
	}
}

// TestAdvisordBodyCapReturns413 pins the body-size guard: oversized
// /ingest bodies are rejected with 413 and a JSON error before any
// statement is parsed or logged.
func TestAdvisordBodyCapReturns413(t *testing.T) {
	adv := testAdvisor(t)
	svc, err := newService(adv, serviceConfig{WindowCap: 10, MinSolve: -1, MaxBody: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.mux())
	defer ts.Close()
	client := ts.Client()

	huge := `{"sql": "SELECT a FROM t WHERE a = 1", "label": "` + strings.Repeat("x", 4096) + `"}`
	resp, err := client.Post(ts.URL+"/ingest", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Fatalf("413 body is not a JSON error: %v %v", e, err)
	}
	h := getHealthz(t, client, ts.URL)
	if h.BodyTooLarge != 1 || h.Ingested != 0 || h.WindowTotal != 0 {
		t.Fatalf("oversized body touched state: %+v", h)
	}
}

// TestAdvisordShutdownWaitsForSolver is the regression gate for the
// shutdown ordering: with a solve in flight, shutdown (cancel solver,
// wait for the loop to exit, then close the service) must not complete
// — and in particular must not write the final snapshot — until the
// solve has fully returned. The final snapshot therefore can never be
// written concurrently with a publishing solve.
func TestAdvisordShutdownWaitsForSolver(t *testing.T) {
	adv := testAdvisor(t)
	dir := t.TempDir()
	store, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := newService(adv, serviceConfig{
		WindowCap: 50,
		MinSolve:  -1,
		K:         2,
		Store:     store,
	})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.solveHook = func(string) {
		once.Do(func() { close(entered) })
		<-release
	}

	ctx, cancel := context.WithCancel(context.Background())
	solverDone := make(chan struct{})
	go func() { defer close(solverDone); svc.run(ctx) }()

	ts := httptest.NewServer(svc.mux())
	defer ts.Close()
	trace := phasedTrace(t, 5)
	batch := make([]ingestStatement, trace.Len())
	for i, stmt := range trace.Statements {
		batch[i] = ingestStatement{SQL: stmt.SQL, Label: trace.Labels[i]}
	}
	postIngest(t, ts.Client(), ts.URL, batch)

	svc.requestSolve("test")
	<-entered // the solver is now inside solveOnce, wedged

	shutDone := make(chan struct{})
	go func() {
		cancel()
		<-solverDone
		if err := svc.close(); err != nil {
			t.Errorf("close: %v", err)
		}
		close(shutDone)
	}()
	select {
	case <-shutDone:
		t.Fatal("shutdown completed while a solve was still in flight")
	case <-time.After(300 * time.Millisecond):
	}
	close(release)
	select {
	case <-shutDone:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown never completed after the solve unblocked")
	}

	// The final snapshot landed after the solver exited and carries the
	// full ingested window.
	reopened, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	snap, tail, err := reopened.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || len(snap.Window.Statements) != trace.Len() || len(tail) != 0 {
		t.Fatalf("final snapshot wrong: snap %+v tail %d", snap, len(tail))
	}
}

// TestServiceRecoveryRoundTrip exercises recovery in-process (the
// subprocess harness covers the SIGKILL path): snapshot + WAL-tail
// replay must rebuild the window, the installed design, and the
// last-known-good solution exactly, in both sliding and tumbling modes.
func TestServiceRecoveryRoundTrip(t *testing.T) {
	adv := testAdvisor(t)
	for _, tumbling := range []bool{false, true} {
		name := "sliding"
		if tumbling {
			name = "tumbling"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := durable.Open(dir, durable.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cfg := serviceConfig{WindowCap: 120, MinSolve: -1, K: 2, SegmentSize: 5, Tumbling: tumbling}
			cfg.Store = store
			svc, err := newService(adv, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(svc.mux())
			trace := phasedTrace(t, 20)
			batch := make([]ingestStatement, trace.Len())
			for i, stmt := range trace.Statements {
				batch[i] = ingestStatement{SQL: stmt.SQL, Label: trace.Labels[i]}
			}
			postIngest(t, ts.Client(), ts.URL, batch[:30])
			if _, err := svc.solveOnce(context.Background(), "test"); err != nil {
				t.Fatal(err)
			}
			postIngest(t, ts.Client(), ts.URL, batch[30:40])
			ts.Close()

			svc.mu.Lock()
			wantWin := svc.win.State()
			svc.mu.Unlock()
			wantInstalled := svc.installed
			wantLKG, err := json.Marshal(svc.lkg)
			if err != nil {
				t.Fatal(err)
			}
			// Close the store WITHOUT the graceful final snapshot — the
			// crash shape: recovery must lean on the solve-time snapshot
			// plus the 10-record WAL tail.
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}

			store2, err := durable.Open(dir, durable.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer store2.Close()
			cfg.Store = store2
			svc2, err := newService(adv, cfg)
			if err != nil {
				t.Fatal(err)
			}
			svc2.mu.Lock()
			gotWin := svc2.win.State()
			svc2.mu.Unlock()
			wantJSON, _ := json.Marshal(wantWin)
			gotJSON, _ := json.Marshal(gotWin)
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Fatalf("recovered window differs:\nwant %s\ngot  %s", wantJSON, gotJSON)
			}
			if svc2.installed != wantInstalled {
				t.Fatalf("recovered installed design %v, want %v", svc2.installed, wantInstalled)
			}
			if gotLKG, _ := json.Marshal(svc2.lkg); !bytes.Equal(gotLKG, wantLKG) {
				t.Fatalf("recovered last-known-good differs:\nwant %s\ngot  %s", wantLKG, gotLKG)
			}
			if svc2.worldMismatch {
				t.Fatal("same table, same stats: recovery claimed a cost-world mismatch")
			}
			if svc2.recoveredReplay != 10 {
				t.Fatalf("replayed %d WAL records, want the 10 post-snapshot ones", svc2.recoveredReplay)
			}
		})
	}
}
