// Command dyndesign is the design advisor CLI: it loads a database from
// a SQL setup script, reads a workload trace, and recommends a
// (constrained) dynamic physical design.
//
// Usage:
//
//	dyndesign -setup schema.sql -trace w1.json -k 2
//	dyndesign -paper-rows 100000 -trace w1.json -k 2 -strategy hybrid
//	dyndesign -paper-rows 100000 -trace w1.json -k unconstrained -candidates auto
//	dyndesign -paper-rows 100000 -trace w1.json -k 2 -timeout 5s -fallback
//	dyndesign -paper-rows 100000 -trace w1.json -k 2 -trace-out spans.jsonl -metrics-addr :9090
//
// -trace-out writes per-stage solver spans as JSONL, -metrics-addr
// serves Prometheus metrics (plus expvar and pprof), -pprof-addr serves
// net/http/pprof alone, and -runtime-trace captures a runtime/trace
// execution trace; see DESIGN.md §9. When span collection is on, a
// per-stage summary is printed to stderr at exit.
//
// -timeout bounds each solver attempt, -max-whatif bounds its what-if
// evaluations, and -fallback enables the degradation ladder: when the
// requested strategy fails (deadline, budget, fault, panic) the advisor
// falls back to cheaper strategies instead of failing the run. SIGINT
// or SIGTERM cancels the solve; an interrupted run still prints the
// partial robustness diagnostics.
//
// -calib N replays N sampled statements against the live engine under
// the recommended designs and reports how the what-if cost model
// calibrates against measured page accesses (a summary line in the
// report; -calib-out writes the full paired samples as JSON). See
// DESIGN.md §16.
//
// The setup script is a sequence of SQL statements (one per line or
// separated by semicolons at line ends; "--" comments allowed) that
// creates and fills the tables. -paper-rows replaces the script with the
// paper's synthetic 4-column table at the given cardinality.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"dyndesign/internal/advisor"
	"dyndesign/internal/candidates"
	"dyndesign/internal/core"
	"dyndesign/internal/engine"
	"dyndesign/internal/experiments"
	"dyndesign/internal/explain"
	"dyndesign/internal/obs"
	"dyndesign/internal/workload"
)

func main() {
	// SIGINT/SIGTERM cancel the context; solvers notice at their next
	// cooperative cancellation point and the run exits with partial
	// diagnostics instead of being killed mid-solve.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dyndesign: %v\n", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	setup := flag.String("setup", "", "SQL script creating and filling the database")
	paperRows := flag.Int64("paper-rows", 0, "instead of -setup, build the paper's table with this many rows")
	tracePath := flag.String("trace", "", "workload trace JSON (from workloadgen); - for stdin")
	table := flag.String("table", "t", "table to tune")
	kFlag := flag.String("k", "2", "change bound (a number, or 'unconstrained')")
	space := flag.Float64("space", 0, "space bound b in pages (0 = unbounded)")
	strategyFlag := flag.String("strategy", "kaware", "solver: kaware, greedyseq, merge, ranking, rankmerge, hybrid")
	segment := flag.Int("segment", 1, "statements per optimization stage")
	policy := flag.String("policy", "free", "change counting: 'free' (endpoints free) or 'strict' (Definition 1)")
	candMode := flag.String("candidates", "paper", "candidate structures: 'paper' or 'auto' (derived from the trace)")
	finalEmpty := flag.Bool("final-empty", true, "constrain the final configuration to be empty")
	timeline := flag.Int("timeline", 0, "also print the design timeline with this block size (-1 for auto)")
	timeout := flag.Duration("timeout", 0, "deadline per solver attempt (0 = none)")
	maxWhatIf := flag.Int64("max-whatif", 0, "what-if evaluation budget per solver attempt (0 = unbounded)")
	fallback := flag.Bool("fallback", false, "degrade to cheaper strategies when the requested one fails")
	traceOut := flag.String("trace-out", "", "write solver spans as JSONL to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics, expvar, and pprof at this address (e.g. :9090)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof at this address (may equal -metrics-addr)")
	runtimeTrace := flag.String("runtime-trace", "", "capture a runtime/trace execution trace to this file")
	explainFlag := flag.Bool("explain", false, "attach decision provenance: cost attribution, k-sweep, overfitting audit")
	explainOut := flag.String("explain-out", "", "write the explanation as JSON to this file (implies -explain)")
	auditTrials := flag.Int("audit-trials", 0, "perturbed replays in the overfitting audit (0 = default 5, negative disables)")
	auditSeed := flag.Int64("audit-seed", 0, "seed deriving the audit's resampling trials (0 = default 1)")
	ksweepDelta := flag.Int("ksweep-delta", 0, "sweep the cost-of-constraint curve to k plus this (0 = default 2)")
	calibSamples := flag.Int("calib", 0, "replay this many sampled statements against the engine to calibrate the cost model (0 = off)")
	calibSeed := flag.Int64("calib-seed", 1, "seed for the deterministic calibration sampling")
	calibOut := flag.String("calib-out", "", "write the calibration run report as JSON to this file (implies -calib 16 if -calib is 0)")
	flag.Parse()

	gauges := obs.NewGaugeSet()
	tracer, obsTeardown, err := obs.Setup(obs.CLIConfig{
		TracePath:        *traceOut,
		MetricsAddr:      *metricsAddr,
		PprofAddr:        *pprofAddr,
		RuntimeTracePath: *runtimeTrace,
		SummaryW:         os.Stderr,
		Gauges:           gauges,
		// The signal context routes the JSONL tail flush through the
		// teardown path: a SIGTERM-cancelled run persists every span
		// emitted before the signal even if the process dies before
		// the deferred teardown.
		FlushCtx: ctx,
	})
	if err != nil {
		return err
	}
	defer obsTeardown()

	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}

	// Build the database.
	var db *engine.Database
	switch {
	case *paperRows > 0 && *setup != "":
		return fmt.Errorf("use either -setup or -paper-rows, not both")
	case *paperRows > 0:
		fmt.Fprintf(os.Stderr, "building paper table with %d rows...\n", *paperRows)
		var err error
		db, err = experiments.SetupPaperDatabase(experiments.Scale{Rows: *paperRows, BlockSize: 1, Seed: 1})
		if err != nil {
			return err
		}
	case *setup != "":
		db = engine.New()
		f, err := os.Open(*setup)
		if err != nil {
			return err
		}
		err = db.ExecScript(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := db.Analyze(*table); err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -setup or -paper-rows is required")
	}

	// Read the workload.
	var in *os.File
	if *tracePath == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	w, err := workload.ReadJSON(in)
	if err != nil {
		return err
	}

	// Design space.
	var spaceDef advisor.DesignSpace
	switch *candMode {
	case "paper":
		structures := candidates.PaperStructures(*table)
		spaceDef = advisor.DesignSpace{
			Table:      *table,
			Structures: structures,
			Configs:    advisor.SingleIndexConfigs(len(structures)),
		}
	case "auto":
		structures := candidates.FromWorkload(w, *table, candidates.Options{MaxWidth: 2, Limit: 16})
		if len(structures) == 0 {
			return fmt.Errorf("no candidate structures derivable from the trace")
		}
		spaceDef = advisor.DesignSpace{Table: *table, Structures: structures}
	default:
		return fmt.Errorf("unknown -candidates mode %q", *candMode)
	}

	// Options.
	opts := advisor.Options{
		SpaceBound:  *space,
		Strategy:    core.Strategy(*strategyFlag),
		SegmentSize: *segment,
	}
	switch *kFlag {
	case "unconstrained", "inf", "-1":
		opts.K = core.Unconstrained
	default:
		k, err := strconv.Atoi(*kFlag)
		if err != nil || k < 0 {
			return fmt.Errorf("bad -k %q", *kFlag)
		}
		opts.K = k
	}
	switch *policy {
	case "free":
		opts.Policy = core.FreeEndpoints
	case "strict":
		opts.Policy = core.CountAll
	default:
		return fmt.Errorf("unknown -policy %q", *policy)
	}
	if *finalEmpty {
		f := core.Config(0)
		opts.Final = &f
	}
	opts.Timeout = *timeout
	opts.MaxWhatIfCalls = *maxWhatIf
	opts.Fallback = *fallback
	opts.Tracer = tracer
	if *explainFlag || *explainOut != "" {
		opts.Explain = &advisor.ExplainOptions{
			KSweepDelta: *ksweepDelta,
			AuditTrials: *auditTrials,
			AuditSeed:   *auditSeed,
		}
	}
	if *calibOut != "" && *calibSamples <= 0 {
		*calibSamples = 16
	}
	if *calibSamples > 0 {
		opts.Calibrate = &advisor.CalibrateOptions{Samples: *calibSamples, Seed: *calibSeed}
	}

	adv, err := advisor.New(db, spaceDef)
	if err != nil {
		return err
	}
	rec, err := adv.RecommendContext(ctx, w, opts)
	if err != nil {
		// An interrupted or failed solve still carries its robustness
		// ledger: print which rungs ran and why they failed.
		if rec != nil {
			rec.RenderRobustness(os.Stderr)
		}
		return err
	}
	if rec.Degraded {
		fmt.Fprintf(os.Stderr, "dyndesign: strategy %s did not answer; degraded to rung %s\n",
			rec.Strategy, rec.Rung)
	}
	rec.Render(os.Stdout)
	if rec.Explanation != nil {
		rec.Explanation.PublishGauges(gauges)
		if *explainOut != "" {
			if err := writeExplanation(*explainOut, rec.Explanation); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "dyndesign: explanation written to %s\n", *explainOut)
		}
	}
	if rec.Calibration != nil && *calibOut != "" {
		buf, err := json.MarshalIndent(rec.Calibration, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*calibOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dyndesign: calibration report written to %s\n", *calibOut)
	}
	if *timeline != 0 {
		fmt.Println()
		rec.RenderTimeline(os.Stdout, *timeline)
	}
	return nil
}

// writeExplanation serializes the provenance record as indented JSON.
func writeExplanation(path string, e *explain.Explanation) error {
	buf, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
