// Command paperexp reproduces the evaluation of Voigt, Salem, Lehner,
// "Constrained Dynamic Physical Database Design" (ICDEW 2008): Table 1
// (query mixes), Table 2 (workloads and recommended designs), Figure 3
// (execution cost of W1/W2/W3 under the constrained and unconstrained
// designs), and Figure 4 (optimizer runtimes vs k).
//
// Usage:
//
//	paperexp -exp all                      # everything at default scale
//	paperexp -exp table2 -rows 2500000 -block 500   # paper scale
//	paperexp -exp fig4 -ks 2,4,6,8,10,12,14,16,18
//	paperexp -exp table2 -timeout 30s -fallback     # bounded, degradable solves
//
// -timeout, -max-whatif, and -fallback bound every advisor solve the
// harness makes (per-attempt deadline, what-if evaluation budget, and
// the degradation ladder). SIGINT or SIGTERM cancels the run at the
// next solver cancellation point; partial robustness diagnostics are
// printed for the interrupted solve.
//
// -trace writes per-stage solver and experiment spans as JSONL,
// -metrics-addr serves Prometheus metrics (plus expvar and pprof),
// -pprof-addr serves net/http/pprof alone, and -runtime-trace captures
// a runtime/trace execution trace; see DESIGN.md §9. When span
// collection is on, a per-stage summary is printed to stderr at exit:
//
//	paperexp -exp table2 -trace spans.jsonl -metrics-addr :9090
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"dyndesign/internal/advisor"
	"dyndesign/internal/experiments"
	"dyndesign/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, table2, fig3, fig4, or all")
	rows := flag.Int64("rows", experiments.DefaultScale.Rows, "table cardinality (paper: 2500000)")
	block := flag.Int("block", experiments.DefaultScale.BlockSize, "queries per workload block (paper: 500)")
	seed := flag.Int64("seed", experiments.DefaultScale.Seed, "random seed")
	ksFlag := flag.String("ks", "2,4,6,8,10,12,14,16,18", "comma-separated k values for fig4")
	format := flag.String("format", "text", "output format: text or json")
	workers := flag.Int("workers", 0, "worker count for parallel what-if costing and experiment fan-out (0 = all cores, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "deadline per solver attempt (0 = none)")
	maxWhatIf := flag.Int64("max-whatif", 0, "what-if evaluation budget per solver attempt (0 = unbounded)")
	fallback := flag.Bool("fallback", false, "degrade to cheaper strategies when a solver attempt fails")
	traceOut := flag.String("trace", "", "write solver and experiment spans as JSONL to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics, expvar, and pprof at this address (e.g. :9090)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof at this address (may equal -metrics-addr)")
	runtimeTrace := flag.String("runtime-trace", "", "capture a runtime/trace execution trace to this file")
	explainOut := flag.String("explain-out", "", "explain the constrained Table 2 design and write the provenance JSON here")
	auditTrials := flag.Int("audit-trials", 0, "perturbed replays in the explain overfitting audit (0 = default 5)")
	auditSeed := flag.Int64("audit-seed", 0, "seed deriving the audit's resampling trials (0 = default 1)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the context; every experiment checks it at
	// cell boundaries and inside the solvers, so an interrupt exits
	// cleanly with partial diagnostics instead of killing the process.
	// The context is created before the obs sinks so the JSONL writer's
	// tail flush can be routed through the signal teardown path.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	gauges := obs.NewGaugeSet()
	tracer, obsTeardown, err := obs.Setup(obs.CLIConfig{
		TracePath:        *traceOut,
		MetricsAddr:      *metricsAddr,
		PprofAddr:        *pprofAddr,
		RuntimeTracePath: *runtimeTrace,
		SummaryW:         os.Stderr,
		Gauges:           gauges,
		FlushCtx:         ctx,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperexp: %v\n", err)
		os.Exit(1)
	}
	defer obsTeardown()
	experiments.SetRobustness(experiments.Robustness{
		Timeout:        *timeout,
		MaxWhatIfCalls: *maxWhatIf,
		Fallback:       *fallback,
		Tracer:         tracer,
	})
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "paperexp: %v\n", err)
		obsTeardown() // os.Exit skips defers; flush traces explicitly
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "paperexp: interrupted — results above are partial\n")
			os.Exit(130)
		}
		os.Exit(1)
	}
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	asJSON := *format == "json"
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "paperexp: unknown -format %q\n", *format)
		obsTeardown() // os.Exit skips defers; flush traces explicitly
		os.Exit(2)
	}
	var report experiments.JSONReport

	scale := experiments.Scale{Rows: *rows, BlockSize: *block, Seed: *seed}
	run := func(name string) bool { return *exp == "all" || *exp == name }

	if run("table1") {
		t1 := experiments.RunTable1()
		if asJSON {
			report.Table1 = t1
		} else {
			t1.Render(os.Stdout)
			fmt.Println()
		}
	}
	if !run("table2") && !run("fig3") && !run("fig4") && !run("ablations") {
		if *exp != "table1" {
			fmt.Fprintf(os.Stderr, "paperexp: unknown experiment %q\n", *exp)
			obsTeardown() // os.Exit skips defers; flush traces explicitly
			os.Exit(2)
		}
		if asJSON {
			report.Scale = scale
			if err := experiments.WriteJSON(os.Stdout, report); err != nil {
				fail(err)
			}
		}
		return
	}

	fmt.Fprintf(os.Stderr, "building %d-row table and solving designs (this is the expensive part)...\n", scale.Rows)
	t2, err := experiments.RunTable2(ctx, scale)
	if err != nil {
		fail(err)
	}
	costingSummary := func(name string, rec *advisor.Recommendation) {
		fmt.Fprintf(os.Stderr, "  %s costing: %d what-if calls, %.1f%% cache hit rate, %.1f ms matrix build\n",
			name, rec.Stats.WhatIfCalls, 100*rec.Stats.HitRate(),
			float64(rec.MatrixBuildTime.Microseconds())/1000)
		if rec.Degraded {
			fmt.Fprintf(os.Stderr, "  %s solve degraded to rung %s\n", name, rec.Rung)
		}
		rec.RenderRobustness(os.Stderr)
	}
	costingSummary("unconstrained", t2.Unconstrained)
	costingSummary("k=2", t2.Constrained)
	if *explainOut != "" {
		fmt.Fprintf(os.Stderr, "explaining the constrained design (k-sweep + overfitting audit)...\n")
		e, err := experiments.ExplainConstrained(ctx, t2, advisor.ExplainOptions{
			AuditTrials: *auditTrials,
			AuditSeed:   *auditSeed,
		})
		if err != nil {
			fail(err)
		}
		e.PublishGauges(gauges)
		buf, err := json.MarshalIndent(e, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*explainOut, append(buf, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "explanation written to %s\n", *explainOut)
		if asJSON {
			report.Explanation = e
		} else {
			e.Render(os.Stdout)
			fmt.Println()
		}
	}
	if run("table2") {
		if asJSON {
			report.Table2 = t2.Rows
		} else {
			t2.Render(os.Stdout)
			fmt.Println()
		}
	}
	if run("fig3") {
		fmt.Fprintf(os.Stderr, "replaying 6 workload/design combinations...\n")
		f3, err := experiments.RunFigure3(ctx, t2)
		if err != nil {
			fail(err)
		}
		if asJSON {
			report.Figure3 = f3
		} else {
			f3.Render(os.Stdout)
			fmt.Println()
		}
	}
	if run("fig4") {
		var ks []int
		for _, part := range strings.Split(*ksFlag, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			k, err := strconv.Atoi(part)
			if err != nil || k < 0 {
				fmt.Fprintf(os.Stderr, "paperexp: bad -ks entry %q\n", part)
				obsTeardown()
				os.Exit(2)
			}
			ks = append(ks, k)
		}
		fmt.Fprintf(os.Stderr, "timing optimizers for k = %v...\n", ks)
		f4, err := experiments.RunFigure4(ctx, t2, ks)
		if err != nil {
			fail(err)
		}
		if asJSON {
			report.Figure4 = f4
		} else {
			f4.Render(os.Stdout)
			fmt.Println()
		}
	}
	if run("ablations") {
		fmt.Fprintf(os.Stderr, "running ablations...\n")
		quality, err := experiments.RunQualityVsK(ctx, t2)
		if err != nil {
			fail(err)
		}
		if asJSON {
			report.Quality = quality
		} else {
			quality.Render(os.Stdout)
			fmt.Println()
		}
		strat, err := experiments.RunStrategyComparison(ctx, t2, 2)
		if err != nil {
			fail(err)
		}
		if !asJSON {
			strat.Render(os.Stdout)
			fmt.Println()
		}
		ranking, err := experiments.RunRankingAblation(ctx, t2, []int{2, 4, 8, 12}, 2_000_000)
		if err != nil {
			fail(err)
		}
		if !asJSON {
			ranking.Render(os.Stdout)
			fmt.Println()
		}
		policy, err := experiments.RunPolicyAblation(ctx, t2, []int{0, 1, 2, 4, 8})
		if err != nil {
			fail(err)
		}
		if !asJSON {
			policy.Render(os.Stdout)
			fmt.Println()
		}
		writeLoad, err := experiments.RunWriteLoad(ctx, scale)
		if err != nil {
			fail(err)
		}
		if asJSON {
			report.WriteLoad = writeLoad
		} else {
			writeLoad.Render(os.Stdout)
			fmt.Println()
		}
		estimate, err := experiments.RunEstimateVsMeasured(ctx, t2, []int{0, 2, 8, 14})
		if err != nil {
			fail(err)
		}
		if !asJSON {
			estimate.Render(os.Stdout)
			fmt.Println()
		}
		calibration, err := experiments.RunCalibration(ctx, t2, 64)
		if err != nil {
			fail(err)
		}
		if asJSON {
			report.Calibration = calibration
		} else {
			calibration.Render(os.Stdout)
		}
	}
	if asJSON {
		report.Scale = scale
		if err := experiments.WriteJSON(os.Stdout, report); err != nil {
			fail(err)
		}
	}
}
