// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The fixture (a loaded, analyzed database plus the W1/W2/W3 workloads
// and both W1-based recommendations) is built once and shared.
package dyndesign_test

import (
	"context"
	"sync"
	"testing"

	"dyndesign/internal/advisor"
	"dyndesign/internal/core"
	"dyndesign/internal/experiments"
	"dyndesign/internal/workload"
)

// bg is the context used by tests that don't exercise cancellation.
var bg = context.Background()

var (
	fixtureOnce sync.Once
	fixture     *experiments.Table2Result
	fixtureErr  error
)

// benchScale keeps the full suite fast while preserving every regime the
// experiments rely on; cmd/paperexp runs the same code at paper scale.
var benchScale = experiments.Scale{Rows: 50000, BlockSize: 100, Seed: 1}

func getFixture(b *testing.B) *experiments.Table2Result {
	b.Helper()
	fixtureOnce.Do(func() {
		fixture, fixtureErr = experiments.RunTable2(bg, benchScale)
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixture
}

// warmProblem returns the W1 problem with its what-if memo warmed, so
// solver benchmarks measure graph work, not cost-model evaluation.
func warmProblem(b *testing.B, k int) *core.Problem {
	b.Helper()
	t2 := getFixture(b)
	p, _, err := t2.Advisor.Problem(t2.W1, experiments.PaperOptions(core.Unconstrained))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.SolveUnconstrained(bg, p); err != nil {
		b.Fatal(err)
	}
	p.K = k
	return p
}

// --- Table 1 -----------------------------------------------------------

// BenchmarkTable1Mixes regenerates the query-mix table (Table 1): mix
// construction plus generation of one block of queries per mix.
func BenchmarkTable1Mixes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t1 := experiments.RunTable1()
		if len(t1.Rows) != 4 {
			b.Fatal("bad mix table")
		}
	}
}

// --- Table 2 -----------------------------------------------------------

// BenchmarkTable2Designs regenerates Table 2's design columns: the full
// advisor pipeline (what-if costing plus the k-aware graph) for the
// unconstrained and the k=2 recommendation on W1.
func BenchmarkTable2Designs(b *testing.B) {
	t2 := getFixture(b)
	for _, run := range []struct {
		name string
		k    int
	}{
		{"unconstrained", core.Unconstrained},
		{"k=2", 2},
	} {
		b.Run(run.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, err := t2.Advisor.Recommend(t2.W1, experiments.PaperOptions(run.k))
				if err != nil {
					b.Fatal(err)
				}
				if run.k >= 0 && rec.Solution.Changes > run.k {
					b.Fatal("change bound violated")
				}
			}
		})
	}
}

// --- Figure 3 -----------------------------------------------------------

// BenchmarkFigure3Execution regenerates one bar of Figure 3 per
// sub-benchmark: a full workload replay (index builds/drops at change
// points plus every query) measured in logical page accesses.
func BenchmarkFigure3Execution(b *testing.B) {
	t2 := getFixture(b)
	runs := []struct {
		name string
		w    *workload.Workload
		rec  *advisor.Recommendation
	}{
		{"W1/unconstrained", t2.W1, t2.Unconstrained},
		{"W1/constrained", t2.W1, t2.Constrained},
		{"W2/unconstrained", t2.W2, t2.Unconstrained},
		{"W2/constrained", t2.W2, t2.Constrained},
		{"W3/unconstrained", t2.W3, t2.Unconstrained},
		{"W3/constrained", t2.W3, t2.Constrained},
	}
	for _, run := range runs {
		b.Run(run.name, func(b *testing.B) {
			designs := run.rec.PerStatement()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := advisor.Replay(t2.DB, run.w, run.rec, designs)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(report.TotalPages()), "pages")
			}
		})
	}
}

// --- Figure 4 -----------------------------------------------------------

// BenchmarkFigure4KAware times the k-aware-graph optimizer per k; the
// paper's figure shows it growing linearly in k relative to the
// unconstrained optimizer (BenchmarkFigure4Unconstrained).
func BenchmarkFigure4KAware(b *testing.B) {
	for _, k := range []int{2, 6, 10, 14, 18} {
		p := warmProblem(b, k)
		b.Run(kName(k), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveKAware(bg, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4Merging times the sequential-merging optimizer per k in
// its faithful mode (segment costs re-summed per evaluation, the
// complexity the paper states); the figure shows it shrinking as k
// approaches the unconstrained optimum's change count.
func BenchmarkFigure4Merging(b *testing.B) {
	for _, k := range []int{2, 6, 10, 14, 18} {
		p := warmProblem(b, k)
		b.Run(kName(k), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seed, err := core.SolveUnconstrained(bg, p)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := core.SolveMergeOpts(bg, p, seed, core.MergeOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4Unconstrained is the figure's 100% baseline.
func BenchmarkFigure4Unconstrained(b *testing.B) {
	p := warmProblem(b, core.Unconstrained)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveUnconstrained(bg, p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationGreedySeq times the §4.1 candidate-reduction
// heuristic, which the paper describes but does not measure.
func BenchmarkAblationGreedySeq(b *testing.B) {
	p := warmProblem(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SolveGreedySeq(bg, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMergeMemoized quantifies the improvement of
// prefix-sum segment memoization over the paper's assumed cost profile
// (compare against BenchmarkFigure4Merging/k=2).
func BenchmarkAblationMergeMemoized(b *testing.B) {
	p := warmProblem(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed, err := core.SolveUnconstrained(bg, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := core.SolveMergeOpts(bg, p, seed, core.MergeOptions{MemoizeSegments: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRankingPruned times the §5 ranking optimizer with
// infeasible-prefix pruning at a k large enough to terminate quickly;
// plain ranking's small-k blowup is demonstrated (with a budget) by
// `paperexp -exp ablations`.
func BenchmarkAblationRankingPruned(b *testing.B) {
	p := warmProblem(b, 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.SolveRanking(bg, p, core.RankingOptions{Prune: true, MaxExpansions: 10_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if res.Exhausted {
			b.Fatal("ranking budget exhausted")
		}
	}
}

// BenchmarkAblationHybrid times the §6.4 hybrid at a small and a large k
// (it should track the cheaper branch at both ends).
func BenchmarkAblationHybrid(b *testing.B) {
	for _, k := range []int{2, 12} {
		p := warmProblem(b, k)
		b.Run(kName(k), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.SolveHybrid(bg, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Parallel costing ------------------------------------------------------

// benchMatrixBuild times one *cold* dense cost-table build — n stages ×
// m configurations of real what-if EXEC calls, the advisor's dominant
// expense — at a fixed parallelism degree. A fresh Problem per
// iteration keeps the exec memo cold so the build measures costing, not
// map lookups; the per-statement validation pass inside Advisor.Problem
// is identical in both arms.
func benchMatrixBuild(b *testing.B, parallelism int) {
	t2 := getFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _, err := t2.Advisor.Problem(t2.W1, experiments.PaperOptions(core.Unconstrained))
		if err != nil {
			b.Fatal(err)
		}
		p.Parallelism = parallelism
		if err := p.BuildCostTables(bg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatrixBuildSerial is the single-worker baseline.
func BenchmarkMatrixBuildSerial(b *testing.B) { benchMatrixBuild(b, 1) }

// BenchmarkMatrixBuildParallel uses one worker per core; compare
// against BenchmarkMatrixBuildSerial for the costing-layer speedup
// (≈linear until the validation pass and memory bandwidth dominate).
func BenchmarkMatrixBuildParallel(b *testing.B) { benchMatrixBuild(b, 0) }

// BenchmarkRecommendConcurrent drives the whole advisor pipeline from
// several goroutines at once — the "shared advisor under heavy traffic"
// shape — reporting aggregate throughput per op.
func BenchmarkRecommendConcurrent(b *testing.B) {
	t2 := getFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec, err := t2.Advisor.Recommend(t2.W1, experiments.PaperOptions(2))
			if err != nil {
				b.Fatal(err)
			}
			if rec.Solution.Changes > 2 {
				b.Fatal("change bound violated")
			}
		}
	})
}

// BenchmarkAblationWhatIfCosting times one full what-if cost-matrix
// evaluation (the advisor's preprocessing, shared by every strategy).
func BenchmarkAblationWhatIfCosting(b *testing.B) {
	t2 := getFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _, err := t2.Advisor.Problem(t2.W1, experiments.PaperOptions(core.Unconstrained))
		if err != nil {
			b.Fatal(err)
		}
		// Force a cold matrix evaluation.
		if _, err := core.SolveUnconstrained(bg, p); err != nil {
			b.Fatal(err)
		}
	}
}

func kName(k int) string {
	return "k=" + string(rune('0'+k/10)) + string(rune('0'+k%10))
}
