package dyndesign_test

import (
	"fmt"

	"dyndesign"
)

// ExampleNewDatabase shows the embedded engine: DDL, DML, queries with
// aggregates, and EXPLAIN.
func ExampleNewDatabase() {
	db := dyndesign.NewDatabase()
	db.MustExec("CREATE TABLE orders (customer INT, amount INT)")
	db.MustExec("INSERT INTO orders VALUES (1, 100), (1, 250), (2, 75)")

	res := db.MustExec("SELECT customer, SUM(amount) FROM orders GROUP BY customer")
	for _, row := range res.Rows {
		fmt.Printf("customer %d spent %d\n", row[0].Int, row[1].Int)
	}
	// Output:
	// customer 1 spent 350
	// customer 2 spent 75
}

// ExampleConfig shows configurations as bitsets over candidate
// structures.
func ExampleConfig() {
	names := []string{"I(a)", "I(b)", "I(a,b)"}
	c := dyndesign.Config(0).With(0).With(2)
	fmt.Println(c.Format(names))
	fmt.Println(c.Count(), "indexes")
	added, removed := c.Diff(dyndesign.Config(0).With(1))
	fmt.Println("to reach {I(b)}: add", added, "remove", removed)
	// Output:
	// {I(a), I(a,b)}
	// 2 indexes
	// to reach {I(b)}: add [1] remove [0 2]
}

// ExampleSolve runs a solver directly over a custom cost model, without
// the bundled engine — any system that can cost EXEC/TRANS/SIZE can use
// the optimizers.
func ExampleSolve() {
	// Two configurations: 0 (no index) and 1 (indexed). The workload has
	// two phases; the index helps only in the second.
	model := phaseModel{}
	p := &dyndesign.Problem{
		Stages:  6,
		Configs: []dyndesign.Config{0, 1},
		Initial: 0,
		K:       1,
		Model:   model,
	}
	sol, err := dyndesign.Solve(p, dyndesign.StrategyKAware)
	if err != nil {
		panic(err)
	}
	fmt.Println("designs:", sol.Designs)
	fmt.Println("changes:", sol.Changes)
	// Output:
	// designs: [0 0 0 1 1 1]
	// changes: 1
}

type phaseModel struct{}

func (phaseModel) Exec(stage int, c dyndesign.Config) float64 {
	if stage < 3 {
		// Phase 1: the index is dead weight (maintenance overhead).
		if c == 1 {
			return 12
		}
		return 10
	}
	if c == 1 {
		return 1 // phase 2 under the index
	}
	return 10
}

func (phaseModel) Trans(from, to dyndesign.Config) float64 {
	if from == to {
		return 0
	}
	return 5
}

func (phaseModel) Size(c dyndesign.Config) float64 { return float64(c.Count()) }
