module dyndesign

go 1.22
