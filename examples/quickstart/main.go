// Quickstart: build a small database, generate a time-varying workload,
// and compare the unconstrained dynamic design with a change-constrained
// one (k = 2).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"dyndesign"
)

func main() {
	// 1. An embedded database with the paper's 4-column table.
	db := dyndesign.NewDatabase()
	db.MustExec("CREATE TABLE t (a INT, b INT, c INT, d INT)")

	const rows = 50000
	domain := int64(rows / 5) // ~5 rows per point-query value
	rng := rand.New(rand.NewSource(1))
	var sb strings.Builder
	for i := 0; i < rows; i += 500 {
		sb.Reset()
		sb.WriteString("INSERT INTO t VALUES ")
		for j := 0; j < 500; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d)",
				rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain))
		}
		db.MustExec(sb.String())
	}
	if err := db.Analyze("t"); err != nil {
		log.Fatal(err)
	}

	// 2. A workload with two major phases and minor fluctuations: the
	// paper's W1, scaled down.
	w, err := dyndesign.PaperWorkload("W1", rows, 100, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d point queries in %d blocks\n\n", w.Len(), len(w.BlockLabels()))

	// 3. An advisor over the paper's design space.
	structures := dyndesign.PaperStructures("t")
	adv, err := dyndesign.NewAdvisor(db, dyndesign.DesignSpace{
		Table:      "t",
		Structures: structures,
		Configs:    dyndesign.SingleIndexConfigs(len(structures)),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Recommend: unconstrained (fits every fluctuation) vs k = 2
	// (tracks only the major trend).
	empty := dyndesign.Config(0)
	unconstrained, err := adv.Recommend(w, dyndesign.Options{
		K:     dyndesign.Unconstrained,
		Final: &empty,
	})
	if err != nil {
		log.Fatal(err)
	}
	constrained, err := adv.Recommend(w, dyndesign.Options{K: 2, Final: &empty})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- unconstrained dynamic design ---")
	unconstrained.Render(os.Stdout)
	fmt.Println()
	fmt.Println("--- change-constrained design (k=2) ---")
	constrained.Render(os.Stdout)

	// 5. Execute the workload under the constrained design for real and
	// compare measured pages with the advisor's estimate.
	report, err := dyndesign.Replay(db, w, constrained, constrained.PerStatement())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplay under k=2 design: %d query pages + %d transition pages "+
		"(advisor estimated %.0f)\n",
		report.QueryPages, report.TransitionPages, constrained.Solution.Cost)
}
