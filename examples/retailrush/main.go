// Retailrush models the scenario that motivates dynamic physical design:
// a retail database whose workload changes with the time of day.
// Mornings are browse-heavy (lookups by product), lunchtime is a
// checkout spike (lookups by customer and order status), and evenings
// mix analytics (price-range scans) with browsing.
//
// The workload trace covers one business day; we know the day has two
// major shifts (morning→lunch, lunch→evening), so we ask for k = 2 —
// exactly the paper's recipe for choosing k from domain knowledge of
// time-of-day phenomena. Candidate indexes are derived automatically
// from the trace.
//
// Run with:
//
//	go run ./examples/retailrush
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"dyndesign"
)

const orders = 60000

func main() {
	db := dyndesign.NewDatabase()
	db.MustExec(`CREATE TABLE orders (id INT, customer INT, product INT, status INT, price INT)`)

	rng := rand.New(rand.NewSource(42))
	var sb strings.Builder
	for i := 0; i < orders; i += 500 {
		sb.Reset()
		sb.WriteString("INSERT INTO orders VALUES ")
		for j := 0; j < 500; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d, %d)",
				i+j, rng.Intn(8000), rng.Intn(5000), rng.Intn(6), rng.Intn(50000))
		}
		db.MustExec(sb.String())
	}
	if err := db.Analyze("orders"); err != nil {
		log.Fatal(err)
	}

	w := businessDay(rng)
	fmt.Printf("one business day: %d statements (%v)\n\n", w.Len(), labelsOf(w))

	// Derive candidate indexes from the trace itself.
	structures := dyndesign.CandidatesFromWorkload(w, "orders", dyndesign.CandidateOptions{
		MaxWidth: 2,
		Limit:    8,
	})
	fmt.Println("candidate structures derived from the trace:")
	for _, def := range structures {
		fmt.Printf("  %s\n", def.Name())
	}
	fmt.Println()

	adv, err := dyndesign.NewAdvisor(db, dyndesign.DesignSpace{
		Table:      "orders",
		Structures: structures,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two anticipated major shifts -> k = 2, and a storage budget tight
	// enough (~1.5 indexes) that no single static design can serve the
	// whole day — the advisor has to use its changes.
	rec, err := adv.Recommend(w, dyndesign.Options{
		K:          2,
		SpaceBound: 450,
		Strategy:   dyndesign.StrategyHybrid,
	})
	if err != nil {
		log.Fatal(err)
	}
	rec.Render(os.Stdout)

	// Sanity check: replay the day under the recommendation.
	report, err := dyndesign.Replay(db, w, rec, rec.PerStatement())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured: %d pages for queries, %d for index changes (%d changes)\n",
		report.QueryPages, report.TransitionPages, report.Changes)
}

// businessDay builds the day's trace from three phase mixes.
func businessDay(rng *rand.Rand) *dyndesign.Workload {
	w := &dyndesign.Workload{Name: "business-day"}
	gen := func(label string, n int, make func() string) {
		for i := 0; i < n; i++ {
			stmt, err := dyndesign.NewStatement(make())
			if err != nil {
				log.Fatal(err)
			}
			w.Append(label, stmt)
		}
	}
	product := func() string {
		return fmt.Sprintf("SELECT id, price FROM orders WHERE product = %d", rng.Intn(5000))
	}
	customer := func() string {
		return fmt.Sprintf("SELECT id, status FROM orders WHERE customer = %d", rng.Intn(8000))
	}
	status := func() string {
		return fmt.Sprintf("SELECT id FROM orders WHERE status = %d AND customer = %d", rng.Intn(6), rng.Intn(8000))
	}
	analytics := func() string {
		lo := rng.Intn(45000)
		return fmt.Sprintf("SELECT price FROM orders WHERE price >= %d AND price < %d", lo, lo+500)
	}

	// Morning: 80% product browse, 20% customer lookups.
	gen("morning", 600, func() string {
		if rng.Float64() < 0.8 {
			return product()
		}
		return customer()
	})
	// Lunch rush: 60% customer, 30% status, 10% product.
	gen("lunch", 600, func() string {
		switch u := rng.Float64(); {
		case u < 0.6:
			return customer()
		case u < 0.9:
			return status()
		default:
			return product()
		}
	})
	// Evening: 50% analytics, 50% product.
	gen("evening", 600, func() string {
		if rng.Float64() < 0.5 {
			return analytics()
		}
		return product()
	})
	return w
}

func labelsOf(w *dyndesign.Workload) []string {
	var out []string
	for _, b := range w.BlockLabels() {
		out = append(out, fmt.Sprintf("%s×%d", b.Label, b.Count))
	}
	return out
}
