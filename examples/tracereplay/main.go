// Tracereplay demonstrates the paper's central argument (§6.3 /
// Figure 3): a design tuned tightly to today's trace can lose to a
// change-constrained design when tomorrow's workload is similar but not
// identical.
//
// We capture a trace W1, recommend both an unconstrained and a k=2
// design from it, then execute tomorrow's workloads W2 (faster minor
// shifts) and W3 (minor shifts out of phase) under both designs and
// compare measured page costs.
//
// Run with:
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"dyndesign"
)

const (
	rows      = 50000
	blockSize = 100
)

func main() {
	db := buildDatabase()

	// Today's trace and tomorrow's variants.
	w1, err := dyndesign.PaperWorkload("W1", rows, blockSize, 11)
	if err != nil {
		log.Fatal(err)
	}
	w2, err := dyndesign.PaperWorkload("W2", rows, blockSize, 12)
	if err != nil {
		log.Fatal(err)
	}
	w3, err := dyndesign.PaperWorkload("W3", rows, blockSize, 13)
	if err != nil {
		log.Fatal(err)
	}

	structures := dyndesign.PaperStructures("t")
	adv, err := dyndesign.NewAdvisor(db, dyndesign.DesignSpace{
		Table:      "t",
		Structures: structures,
		Configs:    dyndesign.SingleIndexConfigs(len(structures)),
	})
	if err != nil {
		log.Fatal(err)
	}

	empty := dyndesign.Config(0)
	unc, err := adv.Recommend(w1, dyndesign.Options{K: dyndesign.Unconstrained, Final: &empty})
	if err != nil {
		log.Fatal(err)
	}
	con, err := adv.Recommend(w1, dyndesign.Options{K: 2, Final: &empty})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designs recommended from W1: unconstrained uses %d changes, constrained %d\n\n",
		unc.Solution.Changes, con.Solution.Changes)

	// Execute each workload under each W1-based design.
	fmt.Printf("%-4s %-15s %15s %15s\n", "", "design", "total pages", "vs baseline")
	var baseline int64
	for _, wl := range []struct {
		name string
		w    *dyndesign.Workload
	}{{"W1", w1}, {"W2", w2}, {"W3", w3}} {
		for _, d := range []struct {
			name string
			rec  *dyndesign.Recommendation
		}{{"unconstrained", unc}, {"constrained k=2", con}} {
			report, err := dyndesign.Replay(db, wl.w, d.rec, d.rec.PerStatement())
			if err != nil {
				log.Fatal(err)
			}
			total := report.TotalPages()
			if baseline == 0 {
				baseline = total
			}
			fmt.Printf("%-4s %-15s %15d %14.1f%%\n",
				wl.name, d.name, total, 100*float64(total)/float64(baseline))
		}
	}
	fmt.Println("\nThe constrained design costs a little extra on the original trace")
	fmt.Println("but wins on the variant workloads it was not over-fitted to.")
}

func buildDatabase() *dyndesign.Database {
	db := dyndesign.NewDatabase()
	db.MustExec("CREATE TABLE t (a INT, b INT, c INT, d INT)")
	domain := int64(rows / 5)
	rng := rand.New(rand.NewSource(2))
	var sb strings.Builder
	for i := 0; i < rows; i += 500 {
		sb.Reset()
		sb.WriteString("INSERT INTO t VALUES ")
		for j := 0; j < 500; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d)",
				rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain))
		}
		db.MustExec(sb.String())
	}
	if err := db.Analyze("t"); err != nil {
		log.Fatal(err)
	}
	return db
}
