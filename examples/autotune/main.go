// Autotune demonstrates the toolkit's extensions around the paper:
//
//  1. choosing the change bound k automatically (the paper's first open
//     question) — by cross-validation over representative traces and by
//     the elbow rule on a single trace, and
//  2. the drift alerter (the trigger §7 delegates to "design alerter"
//     technology): a monitor watches the live statement stream and fires
//     when the installed design no longer fits, at which point the
//     advisor is re-run.
//
// Run with:
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"dyndesign"
)

const rows = 40000

func main() {
	db := buildDatabase()
	structures := dyndesign.PaperStructures("t")
	space := dyndesign.DesignSpace{
		Table:      "t",
		Structures: structures,
		Configs:    dyndesign.SingleIndexConfigs(len(structures)),
	}
	adv, err := dyndesign.NewAdvisor(db, space)
	if err != nil {
		log.Fatal(err)
	}
	empty := dyndesign.Config(0)
	opts := dyndesign.Options{Final: &empty}

	// --- Part 1: choose k -------------------------------------------------
	// Three representative traces of the same process (captured on
	// different "days"): same major trends, different details.
	var traces []*dyndesign.Workload
	for day := 0; day < 3; day++ {
		name := "W1"
		if day == 2 {
			name = "W3" // one day had its minor shifts out of phase
		}
		w, err := dyndesign.PaperWorkload(name, rows, 100, int64(100+day))
		if err != nil {
			log.Fatal(err)
		}
		traces = append(traces, w)
	}

	cv, err := dyndesign.CrossValidateK(adv, traces, opts, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-validation over %d traces chose k = %d\n", len(traces), cv.K)
	fmt.Printf("%4s %14s %14s\n", "k", "train cost", "holdout cost")
	for _, p := range cv.Curve {
		marker := ""
		if p.K == cv.K {
			marker = "  <- chosen"
		}
		fmt.Printf("%4d %14.0f %14.0f%s\n", p.K, p.TrainCost, p.HoldoutCost, marker)
	}

	elbow, err := dyndesign.ElbowK(adv, traces[0], opts, -1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nelbow rule on a single trace chose k = %d\n\n", elbow.K)

	// --- Part 2: monitor, alert, re-tune -----------------------------------
	// Install the static best design for the morning mix and watch the
	// stream; when the workload shifts, the alerter fires and we re-run
	// the advisor on the recent window.
	mixes := dyndesign.PaperMixes(rows)
	mon, err := dyndesign.NewAlerter(adv, space.Configs, empty, dyndesign.AlerterOptions{
		WindowSize: 300,
		CheckEvery: 50,
		Threshold:  0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	phases := []string{"A", "A", "C", "C", "A"}
	fmt.Println("monitoring a live stream (phases A A C C A)...")
	for pi, phase := range phases {
		stmts, err := mixes[phase].Generate(rng, 600)
		if err != nil {
			log.Fatal(err)
		}
		for si, s := range stmts {
			alert, err := mon.Observe(s)
			if err != nil {
				log.Fatal(err)
			}
			if alert == nil {
				continue
			}
			fmt.Printf("  phase %d (%s), statement %d: ALERT — current design %s, "+
				"window would run %.0f%% cheaper under %s\n",
				pi, phase, si, mon.Current().Format(spaceNames(space)),
				alert.Improvement*100, alert.BestConfig.Format(spaceNames(space)))
			// Re-tune: install the configuration the alerter points at
			// (a full deployment would re-run the offline advisor on a
			// captured trace; the alerter's best-for-window config is
			// its cheap approximation).
			if err := applyConfig(db, space, mon.Current(), alert.BestConfig); err != nil {
				log.Fatal(err)
			}
			if err := mon.SetCurrent(alert.BestConfig); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("stream done; installed design: %s\n", mon.Current().Format(spaceNames(space)))
}

func spaceNames(space dyndesign.DesignSpace) []string {
	names := make([]string, len(space.Structures))
	for i, s := range space.Structures {
		names[i] = s.Name()
	}
	return names
}

// applyConfig reconciles the database's indexes from one configuration
// to another.
func applyConfig(db *dyndesign.Database, space dyndesign.DesignSpace, from, to dyndesign.Config) error {
	for _, bit := range from.Structures() {
		if !to.Has(bit) {
			def := space.Structures[bit]
			if _, err := db.Exec(fmt.Sprintf("DROP INDEX %s ON %s", def.Name(), def.Table)); err != nil {
				return err
			}
		}
	}
	for _, bit := range to.Structures() {
		if !from.Has(bit) {
			def := space.Structures[bit]
			q := fmt.Sprintf("CREATE INDEX ON %s (%s)", def.Table, strings.Join(def.Columns, ", "))
			if _, err := db.Exec(q); err != nil {
				return err
			}
		}
	}
	return nil
}

func buildDatabase() *dyndesign.Database {
	db := dyndesign.NewDatabase()
	db.MustExec("CREATE TABLE t (a INT, b INT, c INT, d INT)")
	domain := int64(rows / 5)
	rng := rand.New(rand.NewSource(12))
	var sb strings.Builder
	for i := 0; i < rows; i += 500 {
		sb.Reset()
		sb.WriteString("INSERT INTO t VALUES ")
		for j := 0; j < 500; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d)",
				rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain))
		}
		db.MustExec(sb.String())
	}
	if err := db.Analyze("t"); err != nil {
		log.Fatal(err)
	}
	return db
}
