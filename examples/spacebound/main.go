// Spacebound demonstrates multi-index configurations under a storage
// budget: instead of the paper's "at most one index" space, the advisor
// enumerates every subset of the candidate structures whose total size
// fits the bound b, and the recommended designs may hold several indexes
// at once. Sweeping b shows how the recommendation grows richer as
// space allows.
//
// Run with:
//
//	go run ./examples/spacebound
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"dyndesign"
)

const rows = 40000

func main() {
	db := dyndesign.NewDatabase()
	db.MustExec("CREATE TABLE t (a INT, b INT, c INT, d INT)")
	domain := int64(rows / 5)
	rng := rand.New(rand.NewSource(3))
	var sb strings.Builder
	for i := 0; i < rows; i += 500 {
		sb.Reset()
		sb.WriteString("INSERT INTO t VALUES ")
		for j := 0; j < 500; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d)",
				rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain))
		}
		db.MustExec(sb.String())
	}
	if err := db.Analyze("t"); err != nil {
		log.Fatal(err)
	}

	w, err := dyndesign.PaperWorkload("W1", rows, 100, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Four single-column candidates; configurations are all subsets
	// within the space bound (Configs left nil = enumerate).
	adv, err := dyndesign.NewAdvisor(db, dyndesign.DesignSpace{
		Table: "t",
		Structures: []dyndesign.IndexDef{
			{Table: "t", Columns: []string{"a"}},
			{Table: "t", Columns: []string{"b"}},
			{Table: "t", Columns: []string{"c"}},
			{Table: "t", Columns: []string{"d"}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %-10s %-28s %s\n", "space bound", "est. cost", "phase-1 design", "changes")
	for _, bound := range []float64{150, 300, 600, 0} {
		rec, err := adv.Recommend(w, dyndesign.Options{
			K:          2,
			SpaceBound: bound,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%.0f pages", bound)
		if bound == 0 {
			label = "unbounded"
		}
		// The design in the middle of phase 1 shows how much of the
		// budget the advisor used.
		design := rec.DesignAt(w.Len() / 6)
		fmt.Printf("%-12s %-10.0f %-28s %d\n",
			label, rec.Solution.Cost,
			design.Format(rec.StructureNames), rec.Solution.Changes)
	}
	fmt.Println("\nWith more space the advisor holds more indexes at once, and the")
	fmt.Println("estimated workload cost falls accordingly.")
}
