// Package dyndesign is a constrained dynamic physical database design
// toolkit: a reproduction of Voigt, Salem and Lehner, "Constrained
// Dynamic Physical Database Design" (ICDE Workshops 2008).
//
// Classic design advisors recommend one static set of indexes for a
// whole workload; the dynamic, off-line problem (Agrawal, Chu,
// Narasayya, SIGMOD 2006) instead recommends a *sequence* of designs,
// one per statement. When the input trace is only representative of
// future workloads, the unconstrained optimum over-fits it. This package
// solves the change-constrained variant: minimize the sequence execution
// cost
//
//	Σᵢ EXEC(Sᵢ, Cᵢ) + TRANS(Cᵢ₋₁, Cᵢ)
//
// subject to SIZE(Cᵢ) ≤ b and at most k design changes, so the
// recommendation tracks major workload trends but not per-statement
// noise.
//
// The package is self-contained: it ships an embedded relational engine
// (heap storage, B+-tree indexes, a cost-based planner and a what-if
// optimizer interface) that plays the role the paper's commercial DBMS
// played, plus workload generators, the design advisor, and a harness
// that regenerates every table and figure of the paper's evaluation.
//
// # Quick start
//
//	db := dyndesign.NewDatabase()
//	db.MustExec("CREATE TABLE t (a INT, b INT, c INT, d INT)")
//	// ... INSERT data ...
//	db.Analyze("t")
//
//	w, _ := dyndesign.PaperWorkload("W1", 100000, 200, 1)
//	adv, _ := dyndesign.NewAdvisor(db, dyndesign.DesignSpace{
//		Table:      "t",
//		Structures: dyndesign.PaperStructures("t"),
//	})
//	rec, _ := adv.Recommend(w, dyndesign.Options{K: 2})
//	rec.Render(os.Stdout)
//
// See the examples directory for complete programs.
package dyndesign

import (
	"context"
	"io"

	"dyndesign/internal/advisor"
	"dyndesign/internal/candidates"
	"dyndesign/internal/catalog"
	"dyndesign/internal/core"
	"dyndesign/internal/engine"
	"dyndesign/internal/workload"
)

// --- Engine ------------------------------------------------------------

// Database is an embedded relational database whose physical design the
// advisor tunes. Execution charges logical page accesses to its
// AccessStats counter, the toolkit's unit of cost.
type Database = engine.Database

// Result is the outcome of executing one SQL statement.
type Result = engine.Result

// Plan describes the access path chosen for a statement (EXPLAIN).
type Plan = engine.Plan

// NewDatabase creates an empty embedded database.
func NewDatabase() *Database { return engine.New() }

// --- Workloads ----------------------------------------------------------

// Workload is a sequence of SQL statements, optionally labelled with the
// query-mix blocks that generated it.
type Workload = workload.Workload

// Statement is one workload statement (SQL text plus its parse).
type Statement = workload.Statement

// Mix is a distribution over single-column point queries, the paper's
// workload unit.
type Mix = workload.Mix

// ColumnWeight assigns a probability to one column of a Mix.
type ColumnWeight = workload.ColumnWeight

// PhaseSpec is one block of a phased workload plan.
type PhaseSpec = workload.PhaseSpec

// NewStatement parses SQL text into a workload statement.
func NewStatement(text string) (Statement, error) { return workload.NewStatement(text) }

// PaperWorkload generates the paper's W1, W2, or W3 workload (Table 2)
// scaled to the given table size: 30 blocks of blockSize point queries.
func PaperWorkload(name string, rows int64, blockSize int, seed int64) (*Workload, error) {
	return workload.PaperWorkload(name, rows, blockSize, seed)
}

// PaperMixes returns the paper's Table 1 query mixes for a table of the
// given size.
func PaperMixes(rows int64) map[string]Mix { return workload.PaperMixes(rows) }

// GeneratePhased builds a workload from a block plan over named mixes.
func GeneratePhased(name string, mixes map[string]Mix, plan []PhaseSpec, seed int64) (*Workload, error) {
	return workload.GeneratePhased(name, mixes, plan, seed)
}

// ReadWorkloadJSON parses a JSON workload trace.
func ReadWorkloadJSON(r io.Reader) (*Workload, error) { return workload.ReadJSON(r) }

// --- Design space and candidates ----------------------------------------

// IndexDef describes a candidate secondary index.
type IndexDef = catalog.IndexDef

// DesignSpace is the candidate structures and configurations a
// recommendation may use.
type DesignSpace = advisor.DesignSpace

// CandidateOptions configures automatic candidate generation.
type CandidateOptions = candidates.Options

// CandidatesFromWorkload proposes candidate indexes for a table from a
// workload's predicates (single-column, covering, and merged indexes).
func CandidatesFromWorkload(w *Workload, table string, opts CandidateOptions) []IndexDef {
	return candidates.FromWorkload(w, table, opts)
}

// PaperStructures returns the six candidate indexes of the paper's
// experiments.
func PaperStructures(table string) []IndexDef { return candidates.PaperStructures(table) }

// SingleIndexConfigs returns the "at most one index" configuration list
// the paper's experiments use.
func SingleIndexConfigs(numStructures int) []Config {
	return advisor.SingleIndexConfigs(numStructures)
}

// --- The design problem and solvers --------------------------------------

// Config is a physical design configuration: a bitset over the design
// space's candidate structures.
type Config = core.Config

// Problem is one instance of the constrained dynamic physical design
// problem over an abstract cost model.
type Problem = core.Problem

// Solution is a dynamic physical design: one configuration per stage.
type Solution = core.Solution

// CostModel supplies EXEC, TRANS and SIZE to the solvers; implement it
// to use the solvers outside the bundled engine.
type CostModel = core.CostModel

// Metrics is the costing-layer instrumentation ledger; point
// Problem.Metrics at one to collect matrix-build counts and wall time
// across solves (all copies of the Problem feed the same ledger).
type Metrics = core.Metrics

// ChangePolicy selects how design changes are counted against k.
type ChangePolicy = core.ChangePolicy

// Change-counting policies; see DESIGN.md §3.
const (
	FreeEndpoints = core.FreeEndpoints
	CountAll      = core.CountAll
)

// Unconstrained is the K value meaning "no change bound".
const Unconstrained = core.Unconstrained

// Strategy names a constrained-design solution technique.
type Strategy = core.Strategy

// Solution strategies.
const (
	StrategyKAware       = core.StrategyKAware
	StrategyGreedySeq    = core.StrategyGreedySeq
	StrategyMerge        = core.StrategyMerge
	StrategyRanking      = core.StrategyRanking
	StrategyRankAndMerge = core.StrategyRankAndMerge
	StrategyHybrid       = core.StrategyHybrid
	StrategyPartitioned  = core.StrategyPartitioned
)

// Strategies lists every available strategy.
func Strategies() []Strategy { return core.Strategies() }

// Solve runs a strategy on a problem directly (advanced use; most
// callers go through an Advisor).
func Solve(p *Problem, s Strategy) (*Solution, error) {
	return core.Solve(context.Background(), p, s)
}

// SolveContext is Solve with cooperative cancellation: the solve
// returns promptly with ctx's error when the context is cancelled or
// its deadline passes.
func SolveContext(ctx context.Context, p *Problem, s Strategy) (*Solution, error) {
	return core.Solve(ctx, p, s)
}

// --- Resilient solving ----------------------------------------------------

// ResilientOptions configures SolveResilient: the strategy ladder,
// per-rung deadline, what-if evaluation budget, and the last-known-good
// design adopted when every rung fails.
type ResilientOptions = core.ResilientOptions

// ResilientResult reports which ladder rung answered and why the rungs
// above it failed.
type ResilientResult = core.ResilientResult

// RungReport describes one attempted ladder rung.
type RungReport = core.RungReport

// FailureClass classifies why a ladder rung failed.
type FailureClass = core.FailureClass

// RungLastKnownGood marks a result answered by adopting the
// last-known-good design after every solver rung failed.
const RungLastKnownGood = core.RungLastKnownGood

// DefaultLadder is the standard degradation ladder for a primary
// strategy: the strategy itself, then cheaper fallbacks.
func DefaultLadder(primary Strategy) []Strategy { return core.DefaultLadder(primary) }

// SolveResilient runs the degradation ladder under per-rung deadlines
// and what-if budgets, recovering panics into typed errors. It returns
// a valid feasible solution or a typed error — never hangs or crashes.
func SolveResilient(ctx context.Context, p *Problem, opts ResilientOptions) (*ResilientResult, error) {
	return core.SolveResilient(ctx, p, opts)
}

// --- Advisor --------------------------------------------------------------

// Advisor recommends dynamic physical designs for one table.
type Advisor = advisor.Advisor

// Options configures a recommendation run.
type Options = advisor.Options

// Recommendation is a recommended design sequence with its metadata.
type Recommendation = advisor.Recommendation

// Step is one design change of a recommendation.
type Step = advisor.Step

// ReplayReport measures a workload executed under a design sequence.
type ReplayReport = advisor.ReplayReport

// NewAdvisor builds an advisor over an analyzed table.
func NewAdvisor(db *Database, space DesignSpace) (*Advisor, error) {
	return advisor.New(db, space)
}

// Replay executes a workload on a live database, applying a design
// sequence at its change points, and reports measured page costs.
func Replay(db *Database, w *Workload, rec *Recommendation, designs []Config) (ReplayReport, error) {
	return advisor.Replay(db, w, rec, designs)
}
