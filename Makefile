GO ?= go

# COVER_FLOOR is the minimum statement coverage of internal/core (the
# solver layer) that cover-check accepts; it sits a few points below
# the current ~89% so routine churn passes but a big untested addition
# fails.
COVER_FLOOR ?= 85.0

.PHONY: all build vet test race bench bench-check cover-check chaos lint tier1 explain-smoke fuzz-smoke advisord-smoke advisord-crash

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The -race suite exercises the concurrent costing layer: the sharded
# what-if cache, the parallel matrix build, and the experiment fan-out.
# internal/experiments replays full workloads against the live engine
# and sits near go test's default 10m package deadline under -race on
# slower machines, so the timeout is raised explicitly.
race:
	$(GO) test -race -timeout 20m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-check produces a machine-readable BENCH_<date>.json over the
# strategy × n × m × k grid and fails on a >25% ns/op regression
# (normalized for machine speed by the calibration cell) or a >25%
# allocs/op regression (machine-independent, unnormalized) against the
# committed baseline; see cmd/benchreport. Refresh the baseline with:
#   go run ./cmd/benchreport -o bench/baseline.json
bench-check:
	$(GO) run ./cmd/benchreport -check -baseline bench/baseline.json -threshold 0.25 -alloc-threshold 0.25 -o BENCH_$$(date -u +%Y-%m-%d).json

# cover-check enforces the coverage floor on the solver layer.
cover-check:
	$(GO) test -coverprofile=cover.out ./internal/core/
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	rm -f cover.out; \
	echo "internal/core coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }'

# The chaos suite stress-tests the resilient solve supervisor under
# deterministic fault injection (errors, panics, latency; one-shot and
# persistent) — 126 seeded solves across all strategies, every one
# required to return a feasible solution or a typed error. Run under
# -race so the recovery paths are also proven data-race free.
chaos:
	$(GO) test -race -run TestResilientSolveUnderChaos -v ./internal/chaos/

# fuzz-smoke runs the solver fuzzers briefly (one go test run per
# fuzzer — the tool accepts a single -fuzz pattern at a time): random
# problems solved with both the dense and hypercube transition kernels
# must agree on feasibility and cost (kernel_test.go), and the
# partitioned solver must stay within its reported optimality gap of
# the monolithic exact solve — bit-identical when the gap is zero
# (partition_test.go), and batched plan-table costing must be bitwise
# identical to the scalar what-if coster on every configuration
# (plan_test.go). CI runs this as a smoke test; longer local campaigns
# just raise -fuzztime.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzKernelEquivalence -fuzztime=20s ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzPartitionEquivalence -fuzztime=20s ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzBatchCostEquivalence -fuzztime=20s ./internal/cost/

# explain-smoke drives the decision-provenance layer end to end on a
# tiny phase-structured trace: a 20-statement A/C plan, a k=2 solve
# with -explain, and the provenance JSON (attribution + k-sweep +
# overfitting audit) written to explain.json. CI uploads the JSON as an
# artifact.
explain-smoke:
	$(GO) run ./cmd/workloadgen -plan "A:10,C:10" -rows 5000 -seed 7 -o explain-trace.json
	$(GO) run ./cmd/dyndesign -paper-rows 5000 -trace explain-trace.json -k 2 \
		-audit-trials 3 -explain -explain-out explain.json
	@test -s explain.json && echo "explain-smoke: explain.json written"

# advisord-smoke exercises the long-running advisor service end to end
# under the race detector: a real HTTP listener, a phase-shifting trace
# streamed through POST /ingest, at least one drift-triggered re-solve
# (asserted via /healthz counters — the trigger is the alerter, not a
# timer), and a parseable GET /recommendation. The run also asserts
# post-publish calibration (GET /calibration + advisord_calib_* gauges
# in a parsed metrics exposition) and the per-solve decision lineage
# (GET /solves ring + solves.jsonl audit log); set
# ADVISORD_CALIB_ARTIFACTS to a directory to keep the calibration
# report JSON (CI uploads it). See DESIGN.md §13 and §16.
advisord-smoke:
	$(GO) test -race -count=1 -run TestAdvisordSmoke -v ./cmd/advisord/

# advisord-crash runs the crash-restart equivalence harness under the
# race detector: advisord children are SIGKILLed at seeded chaos points
# (mid-WAL-append, pre-fsync, at segment rotation, and at each stage of
# the atomic snapshot write), restarted over the same data dir, and the
# recovered recommendation must be byte-identical to an uninterrupted
# run over the same trace. On a mismatch the harness writes the two
# recommendation bodies to $$ADVISORD_CRASH_ARTIFACTS (CI uploads
# them). See DESIGN.md §14.
advisord-crash:
	$(GO) test -race -count=1 -run 'TestAdvisordCrashRecovery|TestServiceRecoveryRoundTrip|TestAdvisordShutdownWaitsForSolver|TestAdvisordIngestShedsUnderWALStall' -v ./cmd/advisord/ ./internal/durable/

# lint runs vet, gofmt, and staticcheck when the binary is present
# (the check is skipped, not failed, on machines without it).
lint: vet
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then echo "gofmt needed:"; echo "$$fmtout"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi

# tier1 is what CI runs and what every change must keep green.
tier1: build vet race
