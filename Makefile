GO ?= go

.PHONY: all build vet test race bench tier1

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The -race suite exercises the concurrent costing layer: the sharded
# what-if cache, the parallel matrix build, and the experiment fan-out.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# tier1 is what CI runs and what every change must keep green.
tier1: build vet race
