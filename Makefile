GO ?= go

.PHONY: all build vet test race bench chaos lint tier1

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The -race suite exercises the concurrent costing layer: the sharded
# what-if cache, the parallel matrix build, and the experiment fan-out.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The chaos suite stress-tests the resilient solve supervisor under
# deterministic fault injection (errors, panics, latency; one-shot and
# persistent) — 126 seeded solves across all strategies, every one
# required to return a feasible solution or a typed error. Run under
# -race so the recovery paths are also proven data-race free.
chaos:
	$(GO) test -race -run TestResilientSolveUnderChaos -v ./internal/chaos/

# lint runs vet, gofmt, and staticcheck when the binary is present
# (the check is skipped, not failed, on machines without it).
lint: vet
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then echo "gofmt needed:"; echo "$$fmtout"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi

# tier1 is what CI runs and what every change must keep green.
tier1: build vet race
