package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func payloadOf(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestHeapInsertGet(t *testing.T) {
	var stats AccessStats
	h := NewHeapFile(&stats)
	rid, err := h.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Get = %q", got)
	}
	if h.NumRows() != 1 {
		t.Errorf("NumRows = %d", h.NumRows())
	}
	if stats.Writes() != 1 || stats.Reads() != 1 {
		t.Errorf("stats = %d reads, %d writes", stats.Reads(), stats.Writes())
	}
}

func TestHeapGetReturnsCopy(t *testing.T) {
	h := NewHeapFile(nil)
	rid, _ := h.Insert([]byte("abc"))
	got, _ := h.Get(rid)
	got[0] = 'X'
	again, _ := h.Get(rid)
	if again[0] != 'a' {
		t.Error("Get result aliases page memory")
	}
}

func TestHeapDelete(t *testing.T) {
	h := NewHeapFile(nil)
	rid, _ := h.Insert([]byte("gone"))
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err == nil {
		t.Error("Get of deleted row succeeded")
	}
	if err := h.Delete(rid); err == nil {
		t.Error("double delete succeeded")
	}
	if h.NumRows() != 0 {
		t.Errorf("NumRows = %d", h.NumRows())
	}
}

func TestHeapSlotNumbersStableAcrossDelete(t *testing.T) {
	h := NewHeapFile(nil)
	r1, _ := h.Insert([]byte("one"))
	r2, _ := h.Insert([]byte("two"))
	r3, _ := h.Insert([]byte("three"))
	if err := h.Delete(r2); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Get(r1); !bytes.Equal(got, []byte("one")) {
		t.Error("r1 corrupted by delete of r2")
	}
	if got, _ := h.Get(r3); !bytes.Equal(got, []byte("three")) {
		t.Error("r3 corrupted by delete of r2")
	}
}

func TestHeapDeadSlotReuse(t *testing.T) {
	h := NewHeapFile(nil)
	r1, _ := h.Insert([]byte("aaaa"))
	if err := h.Delete(r1); err != nil {
		t.Fatal(err)
	}
	r2, _ := h.Insert([]byte("bbbb"))
	if r2 != r1 {
		t.Errorf("dead slot not reused: %v then %v", r1, r2)
	}
}

func TestHeapUpdateInPlaceAndMove(t *testing.T) {
	h := NewHeapFile(nil)
	rid, _ := h.Insert([]byte("abcdef"))
	// Smaller payload: in place.
	nrid, err := h.Update(rid, []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	if nrid != rid {
		t.Errorf("in-place update moved row: %v -> %v", rid, nrid)
	}
	got, _ := h.Get(rid)
	if !bytes.Equal(got, []byte("xyz")) {
		t.Errorf("after update Get = %q", got)
	}
	// Larger payload: may move, but content must be right either way.
	nrid, err = h.Update(rid, payloadOf(100, 'Q'))
	if err != nil {
		t.Fatal(err)
	}
	got, _ = h.Get(nrid)
	if len(got) != 100 || got[0] != 'Q' {
		t.Errorf("after growing update Get = %d bytes", len(got))
	}
	if h.NumRows() != 1 {
		t.Errorf("NumRows = %d after updates", h.NumRows())
	}
}

func TestHeapMultiPageAndScanOrder(t *testing.T) {
	h := NewHeapFile(nil)
	const n = 2000
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		rid, err := h.Insert(payloadOf(50, byte(i)))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	if h.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.NumPages())
	}
	var seen int
	var last RID
	first := true
	h.Scan(func(rid RID, payload []byte) bool {
		if !first && rid.Compare(last) <= 0 {
			t.Errorf("scan out of RID order: %v after %v", rid, last)
		}
		last, first = rid, false
		seen++
		return true
	})
	if seen != n {
		t.Errorf("scan saw %d rows, want %d", seen, n)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	h := NewHeapFile(nil)
	for i := 0; i < 10; i++ {
		h.Insert([]byte{byte(i)})
	}
	seen := 0
	h.Scan(func(RID, []byte) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("early stop saw %d rows", seen)
	}
}

func TestHeapScanChargesPerPage(t *testing.T) {
	var stats AccessStats
	h := NewHeapFile(&stats)
	for i := 0; i < 1000; i++ {
		h.Insert(payloadOf(60, 1))
	}
	stats.Reset()
	h.Scan(func(RID, []byte) bool { return true })
	if stats.Reads() != int64(h.NumPages()) {
		t.Errorf("scan charged %d reads for %d pages", stats.Reads(), h.NumPages())
	}
}

func TestHeapRejectsOversizedPayload(t *testing.T) {
	h := NewHeapFile(nil)
	if _, err := h.Insert(payloadOf(MaxPayload+1, 0)); err == nil {
		t.Error("oversized insert succeeded")
	}
	rid, _ := h.Insert([]byte("ok"))
	if _, err := h.Update(rid, payloadOf(MaxPayload+1, 0)); err == nil {
		t.Error("oversized update succeeded")
	}
}

func TestHeapMaxPayloadFits(t *testing.T) {
	h := NewHeapFile(nil)
	rid, err := h.Insert(payloadOf(MaxPayload, 7))
	if err != nil {
		t.Fatalf("MaxPayload insert failed: %v", err)
	}
	got, _ := h.Get(rid)
	if len(got) != MaxPayload {
		t.Errorf("got %d bytes", len(got))
	}
}

func TestHeapCompactionReclaimsSpace(t *testing.T) {
	h := NewHeapFile(nil)
	// Fill page 0 exactly with 16 large rows (each row consumes
	// payload + one slot entry), delete every other one, then insert a
	// payload that only fits after compaction.
	big := (PageSize - pageHeaderSize) / 16
	payload := big - slotEntrySize
	var rids []RID
	for i := 0; i < 16; i++ {
		rid, err := h.Insert(payloadOf(payload, 3))
		if err != nil {
			t.Fatal(err)
		}
		if rid.Page != 0 {
			t.Fatalf("row %d spilled to page %d; expected all 16 on page 0", i, rid.Page)
		}
		rids = append(rids, rid)
	}
	for i := 0; i < len(rids); i += 2 {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Half the page is garbage now; a payload of ~3 slots' size must fit
	// into page 0 via compaction rather than allocating page 2.
	rid, err := h.Insert(payloadOf(big*3, 9))
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page != 0 {
		t.Errorf("insert went to page %d; compaction did not reclaim garbage", rid.Page)
	}
	got, _ := h.Get(rid)
	if len(got) != big*3 || got[0] != 9 {
		t.Error("payload corrupted by compaction")
	}
	// Survivors must be intact.
	for i := 1; i < len(rids); i += 2 {
		got, err := h.Get(rids[i])
		if err != nil || len(got) != payload || got[0] != 3 {
			t.Errorf("survivor %v corrupted after compaction: %v", rids[i], err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestHeapRandomizedAgainstModel(t *testing.T) {
	// Model-based test: random inserts/deletes/updates mirrored in a map.
	rng := rand.New(rand.NewSource(42))
	h := NewHeapFile(nil)
	model := make(map[RID][]byte)
	var live []RID
	for op := 0; op < 5000; op++ {
		switch r := rng.Intn(10); {
		case r < 5 || len(live) == 0: // insert
			p := payloadOf(1+rng.Intn(200), byte(op))
			rid, err := h.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := model[rid]; dup {
				t.Fatalf("op %d: RID %v handed out twice", op, rid)
			}
			model[rid] = p
			live = append(live, rid)
		case r < 8: // delete
			i := rng.Intn(len(live))
			rid := live[i]
			if err := h.Delete(rid); err != nil {
				t.Fatalf("op %d: delete %v: %v", op, rid, err)
			}
			delete(model, rid)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // update
			i := rng.Intn(len(live))
			rid := live[i]
			p := payloadOf(1+rng.Intn(300), byte(op))
			nrid, err := h.Update(rid, p)
			if err != nil {
				t.Fatalf("op %d: update %v: %v", op, rid, err)
			}
			if nrid != rid {
				delete(model, rid)
				if _, dup := model[nrid]; dup {
					t.Fatalf("op %d: moved to occupied RID %v", op, nrid)
				}
				live[i] = nrid
			}
			model[nrid] = p
		}
	}
	if int64(len(model)) != h.NumRows() {
		t.Fatalf("model has %d rows, heap has %d", len(model), h.NumRows())
	}
	for rid, want := range model {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatalf("Get(%v): %v", rid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%v) mismatch", rid)
		}
	}
	seen := make(map[RID]bool)
	h.Scan(func(rid RID, payload []byte) bool {
		if want, ok := model[rid]; !ok || !bytes.Equal(payload, want) {
			t.Fatalf("scan saw unexpected row %v", rid)
		}
		seen[rid] = true
		return true
	})
	if len(seen) != len(model) {
		t.Fatalf("scan saw %d rows, model has %d", len(seen), len(model))
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRIDCompareAndString(t *testing.T) {
	a := RID{Page: 1, Slot: 2}
	b := RID{Page: 1, Slot: 3}
	c := RID{Page: 2, Slot: 0}
	if a.Compare(b) >= 0 || b.Compare(c) >= 0 || a.Compare(a) != 0 || c.Compare(a) <= 0 {
		t.Error("RID ordering wrong")
	}
	if a.String() != "1:2" {
		t.Errorf("RID.String() = %q", a.String())
	}
}

func TestAccessStats(t *testing.T) {
	var s AccessStats
	s.Read(3)
	s.Write(2)
	if s.Reads() != 3 || s.Writes() != 2 || s.Total() != 5 {
		t.Errorf("stats = %d/%d", s.Reads(), s.Writes())
	}
	snap1 := s.Snapshot()
	s.Read(10)
	diff := s.Snapshot().Sub(snap1)
	if diff.Reads != 10 || diff.Writes != 0 || diff.Total() != 10 {
		t.Errorf("snapshot diff = %+v", diff)
	}
	s.Reset()
	if s.Total() != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestAccessStatsNilSafe(t *testing.T) {
	var s *AccessStats
	s.Read(1)
	s.Write(1)
	s.Reset()
	if s.Reads() != 0 || s.Writes() != 0 || s.Total() != 0 {
		t.Error("nil stats not zero")
	}
}

func TestHeapErrorPaths(t *testing.T) {
	h := NewHeapFile(nil)
	bad := RID{Page: 99, Slot: 0}
	if _, err := h.Get(bad); err == nil {
		t.Error("Get of bad page succeeded")
	}
	if err := h.Delete(bad); err == nil {
		t.Error("Delete of bad page succeeded")
	}
	if _, err := h.Update(bad, []byte("x")); err == nil {
		t.Error("Update of bad page succeeded")
	}
	rid, _ := h.Insert([]byte("x"))
	if _, err := h.Get(RID{Page: rid.Page, Slot: 50}); err == nil {
		t.Error("Get of bad slot succeeded")
	}
}

func TestHeapManyPagesInvariants(t *testing.T) {
	h := NewHeapFile(nil)
	for i := 0; i < 20000; i++ {
		if _, err := h.Insert([]byte(fmt.Sprintf("row-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.NumRows() != 20000 {
		t.Errorf("NumRows = %d", h.NumRows())
	}
}
