// Package storage implements the lowest layer of the engine: fixed-size
// slotted pages, heap files built from them, and the access-statistics
// counter that every component charges for logical page reads and writes.
//
// The engine is in-memory, but it is paged exactly the way an on-disk
// engine is, and every page touched is counted. Logical page accesses are
// the repository's unit of execution cost: the planner estimates them,
// and experiment runs measure them, so advisor estimates and "measured"
// workload costs are directly comparable (see DESIGN.md §6).
package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the size of every page in bytes. 8 KiB matches the default
// page size of the commercial systems the paper's experiments ran on.
const PageSize = 8192

// PageID identifies a page within one heap file.
type PageID uint32

// RID is a row identifier: the page holding the row and the slot within
// that page. Secondary indexes store RIDs as their payloads.
type RID struct {
	Page PageID
	Slot uint16
}

// String renders the RID as "page:slot".
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Compare orders RIDs by page, then slot. Indexes append the RID to
// duplicate keys to keep entries unique, so RID order must be total.
func (r RID) Compare(o RID) int {
	switch {
	case r.Page < o.Page:
		return -1
	case r.Page > o.Page:
		return 1
	case r.Slot < o.Slot:
		return -1
	case r.Slot > o.Slot:
		return 1
	default:
		return 0
	}
}

// Slotted page layout (all offsets within the page's data array):
//
//	[0:2]   uint16 slot count (including dead slots)
//	[2:4]   uint16 freeEnd — start of the payload region, grows downward
//	[4:6]   uint16 garbage — payload bytes owned by dead slots
//	[6:]    slot directory, 4 bytes per slot: uint16 offset, uint16 length
//	...     free space ...
//	[freeEnd:PageSize] payloads, most recent first
//
// A dead slot has length == deadLen. Dead slots keep later slot numbers
// (and therefore RIDs) stable; their payload bytes are reclaimed lazily
// by compaction when an insert would otherwise fail.

const (
	pageHeaderSize = 6
	slotEntrySize  = 4
	deadLen        = 0xFFFF
	// MaxPayload is the largest payload a single page can store: the
	// whole payload region minus one slot directory entry.
	MaxPayload = PageSize - pageHeaderSize - slotEntrySize
)

// Page is one slotted page. The zero value is not usable; pages are
// created by a HeapFile.
type Page struct {
	id   PageID
	data [PageSize]byte
}

// ID returns the page's identifier within its heap file.
func (p *Page) ID() PageID { return p.id }

func (p *Page) slotCount() uint16     { return binary.BigEndian.Uint16(p.data[0:2]) }
func (p *Page) freeEnd() uint16       { return binary.BigEndian.Uint16(p.data[2:4]) }
func (p *Page) garbage() uint16       { return binary.BigEndian.Uint16(p.data[4:6]) }
func (p *Page) setSlotCount(n uint16) { binary.BigEndian.PutUint16(p.data[0:2], n) }
func (p *Page) setFreeEnd(n uint16)   { binary.BigEndian.PutUint16(p.data[2:4], n) }
func (p *Page) setGarbage(n uint16)   { binary.BigEndian.PutUint16(p.data[4:6], n) }

func (p *Page) slot(i uint16) (offset, length uint16) {
	base := pageHeaderSize + int(i)*slotEntrySize
	return binary.BigEndian.Uint16(p.data[base : base+2]),
		binary.BigEndian.Uint16(p.data[base+2 : base+4])
}

func (p *Page) setSlot(i, offset, length uint16) {
	base := pageHeaderSize + int(i)*slotEntrySize
	binary.BigEndian.PutUint16(p.data[base:base+2], offset)
	binary.BigEndian.PutUint16(p.data[base+2:base+4], length)
}

func (p *Page) init(id PageID) {
	p.id = id
	p.setSlotCount(0)
	p.setFreeEnd(PageSize)
	p.setGarbage(0)
}

// contiguousFree returns the bytes available between the end of the slot
// directory and freeEnd.
func (p *Page) contiguousFree() int {
	return int(p.freeEnd()) - pageHeaderSize - int(p.slotCount())*slotEntrySize
}

// hasDeadSlot reports whether any slot is dead (reusable without growing
// the directory).
func (p *Page) hasDeadSlot() bool {
	n := p.slotCount()
	for i := uint16(0); i < n; i++ {
		if _, l := p.slot(i); l == deadLen {
			return true
		}
	}
	return false
}

// canFit reports whether a payload of the given size could be inserted,
// counting space that compaction would reclaim.
func (p *Page) canFit(size int) bool {
	need := size
	if !p.hasDeadSlot() {
		need += slotEntrySize
	}
	return p.contiguousFree()+int(p.garbage()) >= need
}

// insert stores the payload and returns its slot, or ok=false if the page
// cannot fit it even after compaction.
func (p *Page) insert(payload []byte) (slot uint16, ok bool) {
	if len(payload) > MaxPayload || !p.canFit(len(payload)) {
		return 0, false
	}
	// Reuse a dead slot if one exists; otherwise append to the directory.
	n := p.slotCount()
	slot = n
	grow := true
	for i := uint16(0); i < n; i++ {
		if _, l := p.slot(i); l == deadLen {
			slot, grow = i, false
			break
		}
	}
	need := len(payload)
	if grow {
		need += slotEntrySize
	}
	if p.contiguousFree() < need {
		p.compact()
	}
	if grow {
		p.setSlotCount(n + 1)
	}
	off := p.freeEnd() - uint16(len(payload))
	copy(p.data[off:], payload)
	p.setFreeEnd(off)
	p.setSlot(slot, off, uint16(len(payload)))
	return slot, true
}

// payload returns the bytes of a live slot. The returned slice aliases
// the page; callers that retain it must copy.
func (p *Page) payload(slot uint16) ([]byte, error) {
	if slot >= p.slotCount() {
		return nil, fmt.Errorf("storage: page %d has no slot %d", p.id, slot)
	}
	off, l := p.slot(slot)
	if l == deadLen {
		return nil, fmt.Errorf("storage: page %d slot %d is deleted", p.id, slot)
	}
	return p.data[off : off+l], nil
}

// delete tombstones a slot, accounting its payload as garbage.
func (p *Page) delete(slot uint16) error {
	if slot >= p.slotCount() {
		return fmt.Errorf("storage: page %d has no slot %d", p.id, slot)
	}
	_, l := p.slot(slot)
	if l == deadLen {
		return fmt.Errorf("storage: page %d slot %d already deleted", p.id, slot)
	}
	p.setGarbage(p.garbage() + l)
	p.setSlot(slot, 0, deadLen)
	return nil
}

// updateInPlace overwrites a slot's payload if the new payload is no
// larger than the old one; it reports whether it did so.
func (p *Page) updateInPlace(slot uint16, payload []byte) (bool, error) {
	if slot >= p.slotCount() {
		return false, fmt.Errorf("storage: page %d has no slot %d", p.id, slot)
	}
	off, l := p.slot(slot)
	if l == deadLen {
		return false, fmt.Errorf("storage: page %d slot %d is deleted", p.id, slot)
	}
	if len(payload) > int(l) {
		return false, nil
	}
	copy(p.data[off:], payload)
	if shrink := l - uint16(len(payload)); shrink > 0 {
		p.setGarbage(p.garbage() + shrink)
		p.setSlot(slot, off, uint16(len(payload)))
	}
	return true, nil
}

// compact rewrites all live payloads contiguously at the end of the page,
// reclaiming garbage. Slot numbers are preserved.
func (p *Page) compact() {
	var scratch [PageSize]byte
	writeEnd := uint16(PageSize)
	n := p.slotCount()
	type move struct {
		slot, off, length uint16
	}
	moves := make([]move, 0, n)
	for i := uint16(0); i < n; i++ {
		off, l := p.slot(i)
		if l == deadLen {
			continue
		}
		writeEnd -= l
		copy(scratch[writeEnd:], p.data[off:off+l])
		moves = append(moves, move{i, writeEnd, l})
	}
	copy(p.data[writeEnd:], scratch[writeEnd:])
	for _, m := range moves {
		p.setSlot(m.slot, m.off, m.length)
	}
	p.setFreeEnd(writeEnd)
	p.setGarbage(0)
}

// liveSlots calls fn for every live slot in slot order, stopping early if
// fn returns false.
func (p *Page) liveSlots(fn func(slot uint16, payload []byte) bool) {
	n := p.slotCount()
	for i := uint16(0); i < n; i++ {
		off, l := p.slot(i)
		if l == deadLen {
			continue
		}
		if !fn(i, p.data[off:off+l]) {
			return
		}
	}
}

// liveCount returns the number of live slots.
func (p *Page) liveCount() int {
	c := 0
	p.liveSlots(func(uint16, []byte) bool { c++; return true })
	return c
}
