package storage

import (
	"fmt"
	"sync"
)

// HeapFile is an unordered collection of rows stored in slotted pages.
// It is the physical representation of a table; secondary indexes refer
// into it by RID.
//
// All methods charge logical page accesses to the file's AccessStats.
// HeapFile is safe for concurrent use by multiple goroutines.
type HeapFile struct {
	mu    sync.RWMutex
	pages []*Page
	stats *AccessStats
	rows  int64
	// insertHint is the page most likely to have free space; inserts try
	// it first and fall back to a scan, so the common append workload is
	// O(1) per insert.
	insertHint PageID
}

// NewHeapFile creates an empty heap file charging accesses to stats.
// A nil stats is allowed and disables counting.
func NewHeapFile(stats *AccessStats) *HeapFile {
	return &HeapFile{stats: stats}
}

// NumPages returns the number of allocated pages.
func (h *HeapFile) NumPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages)
}

// NumRows returns the number of live rows.
func (h *HeapFile) NumRows() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rows
}

// Stats returns the access counter shared by this file.
func (h *HeapFile) Stats() *AccessStats { return h.stats }

func (h *HeapFile) newPage() *Page {
	p := &Page{}
	p.init(PageID(len(h.pages)))
	h.pages = append(h.pages, p)
	return p
}

func (h *HeapFile) page(id PageID) (*Page, error) {
	if int(id) >= len(h.pages) {
		return nil, fmt.Errorf("storage: heap has no page %d", id)
	}
	return h.pages[id], nil
}

// Insert stores payload and returns its RID. Payloads larger than
// MaxPayload are rejected; the engine's rows are always far smaller.
func (h *HeapFile) Insert(payload []byte) (RID, error) {
	if len(payload) > MaxPayload {
		return RID{}, fmt.Errorf("storage: payload of %d bytes exceeds page capacity %d", len(payload), MaxPayload)
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	// Fast path: the hinted page.
	if int(h.insertHint) < len(h.pages) {
		p := h.pages[h.insertHint]
		if slot, ok := p.insert(payload); ok {
			h.stats.Write(1)
			h.rows++
			return RID{Page: p.id, Slot: slot}, nil
		}
	}
	// Slow path: scan for any page with room (keeps pages dense after
	// deletions), then allocate.
	for _, p := range h.pages {
		if p.canFit(len(payload)) {
			if slot, ok := p.insert(payload); ok {
				h.stats.Write(1)
				h.rows++
				h.insertHint = p.id
				return RID{Page: p.id, Slot: slot}, nil
			}
		}
	}
	p := h.newPage()
	slot, ok := p.insert(payload)
	if !ok {
		return RID{}, fmt.Errorf("storage: payload of %d bytes does not fit a fresh page", len(payload))
	}
	h.stats.Write(1)
	h.rows++
	h.insertHint = p.id
	return RID{Page: p.id, Slot: slot}, nil
}

// Get returns a copy of the payload stored at rid, charging one page
// read.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	p, err := h.page(rid.Page)
	if err != nil {
		return nil, err
	}
	h.stats.Read(1)
	payload, err := p.payload(rid.Slot)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

// Delete removes the row at rid, charging one page write.
func (h *HeapFile) Delete(rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, err := h.page(rid.Page)
	if err != nil {
		return err
	}
	if err := p.delete(rid.Slot); err != nil {
		return err
	}
	h.stats.Write(1)
	h.rows--
	return nil
}

// Update replaces the payload at rid. If the new payload fits in place
// the RID is unchanged; otherwise the row moves and the new RID is
// returned — callers (the index manager) must then update index entries.
func (h *HeapFile) Update(rid RID, payload []byte) (RID, error) {
	if len(payload) > MaxPayload {
		return RID{}, fmt.Errorf("storage: payload of %d bytes exceeds page capacity %d", len(payload), MaxPayload)
	}
	h.mu.Lock()
	p, err := h.page(rid.Page)
	if err != nil {
		h.mu.Unlock()
		return RID{}, err
	}
	ok, err := p.updateInPlace(rid.Slot, payload)
	if err != nil {
		h.mu.Unlock()
		return RID{}, err
	}
	if ok {
		h.stats.Write(1)
		h.mu.Unlock()
		return rid, nil
	}
	// Move: delete then insert. Release the lock between the two steps is
	// not needed — do both under the same critical section by inlining.
	if err := p.delete(rid.Slot); err != nil {
		h.mu.Unlock()
		return RID{}, err
	}
	h.stats.Write(1)
	h.rows--
	h.mu.Unlock()
	return h.Insert(payload)
}

// Scan calls fn for every live row in RID order, charging one read per
// page visited. Scanning stops early if fn returns false. The payload
// slice passed to fn aliases page memory and must not be retained.
func (h *HeapFile) Scan(fn func(rid RID, payload []byte) bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, p := range h.pages {
		h.stats.Read(1)
		stop := false
		p.liveSlots(func(slot uint16, payload []byte) bool {
			if !fn(RID{Page: p.id, Slot: slot}, payload) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// CheckInvariants verifies internal consistency: the live-row count
// matches the per-page slot accounting and every live payload is
// reachable through Get. It is used by tests and returns the first
// violation found.
func (h *HeapFile) CheckInvariants() error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var live int64
	for _, p := range h.pages {
		live += int64(p.liveCount())
		if int(p.freeEnd()) < pageHeaderSize+int(p.slotCount())*slotEntrySize {
			return fmt.Errorf("storage: page %d slot directory overlaps payload region", p.id)
		}
		var payloadBytes int
		p.liveSlots(func(slot uint16, payload []byte) bool {
			payloadBytes += len(payload)
			return true
		})
		used := PageSize - int(p.freeEnd())
		if payloadBytes+int(p.garbage()) > used {
			return fmt.Errorf("storage: page %d accounting mismatch: %d live + %d garbage > %d used",
				p.id, payloadBytes, p.garbage(), used)
		}
	}
	if live != h.rows {
		return fmt.Errorf("storage: heap row count %d != live slots %d", h.rows, live)
	}
	return nil
}
