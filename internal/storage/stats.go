package storage

import "sync/atomic"

// AccessStats counts logical page accesses. One counter instance is
// shared by a database's heap files and index trees, so a workload run
// yields a single, deterministic cost figure.
//
// Counters are atomic so concurrent readers may share a database; the
// experiments themselves are single-threaded for determinism.
type AccessStats struct {
	reads  atomic.Int64
	writes atomic.Int64
}

// Read records n logical page reads.
func (s *AccessStats) Read(n int64) {
	if s != nil {
		s.reads.Add(n)
	}
}

// Write records n logical page writes.
func (s *AccessStats) Write(n int64) {
	if s != nil {
		s.writes.Add(n)
	}
}

// Reads returns the number of logical page reads recorded so far.
func (s *AccessStats) Reads() int64 {
	if s == nil {
		return 0
	}
	return s.reads.Load()
}

// Writes returns the number of logical page writes recorded so far.
func (s *AccessStats) Writes() int64 {
	if s == nil {
		return 0
	}
	return s.writes.Load()
}

// Total returns reads + writes: the total logical page accesses.
func (s *AccessStats) Total() int64 { return s.Reads() + s.Writes() }

// Reset zeroes both counters.
func (s *AccessStats) Reset() {
	if s == nil {
		return
	}
	s.reads.Store(0)
	s.writes.Store(0)
}

// Snapshot captures the current counter values.
func (s *AccessStats) Snapshot() AccessSnapshot {
	return AccessSnapshot{Reads: s.Reads(), Writes: s.Writes()}
}

// AccessSnapshot is a point-in-time copy of an AccessStats.
type AccessSnapshot struct {
	Reads  int64
	Writes int64
}

// Total returns reads + writes for the snapshot.
func (s AccessSnapshot) Total() int64 { return s.Reads + s.Writes }

// Sub returns the per-counter difference s - earlier, i.e. the accesses
// that happened between the two snapshots.
func (s AccessSnapshot) Sub(earlier AccessSnapshot) AccessSnapshot {
	return AccessSnapshot{Reads: s.Reads - earlier.Reads, Writes: s.Writes - earlier.Writes}
}
