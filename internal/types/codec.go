package types

import (
	"encoding/binary"
	"fmt"
)

// The row codec serializes rows into the byte payloads stored in heap
// pages. The format is self-describing (each value carries a kind tag) so
// a row can be decoded without the schema; the engine still validates the
// decoded row against the catalog schema.
//
// Layout:
//
//	uint16  column count
//	repeat: uint8 kind tag, then
//	        int:    8-byte big-endian two's complement
//	        string: uint32 length + bytes

// EncodeRow appends the binary encoding of the row to dst and returns the
// extended slice.
func EncodeRow(dst []byte, r Row) ([]byte, error) {
	if len(r) > 0xFFFF {
		return nil, fmt.Errorf("types: row too wide (%d values)", len(r))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r)))
	for i, v := range r {
		switch v.Kind {
		case KindInt:
			dst = append(dst, byte(KindInt))
			dst = binary.BigEndian.AppendUint64(dst, uint64(v.Int))
		case KindString:
			if len(v.Str) > 0x7FFFFFFF {
				return nil, fmt.Errorf("types: string value too long (%d bytes)", len(v.Str))
			}
			dst = append(dst, byte(KindString))
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.Str)))
			dst = append(dst, v.Str...)
		default:
			return nil, fmt.Errorf("types: cannot encode invalid value at position %d", i)
		}
	}
	return dst, nil
}

// DecodeRow parses a row from buf. The buffer must contain exactly one
// encoded row; trailing bytes are an error so that storage corruption is
// detected rather than silently ignored.
func DecodeRow(buf []byte) (Row, error) {
	return DecodeRowInto(nil, buf)
}

// DecodeRowInto is DecodeRow reusing the caller's row storage (appending
// from dst[:0]) so scan loops allocate nothing per row. String values
// still copy their payloads; callers that retain the row across calls
// must Clone it.
func DecodeRowInto(dst Row, buf []byte) (Row, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("types: row buffer too short (%d bytes)", len(buf))
	}
	n := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	r := dst[:0]
	for i := 0; i < n; i++ {
		if len(buf) < 1 {
			return nil, fmt.Errorf("types: truncated row at value %d", i)
		}
		kind := Kind(buf[0])
		buf = buf[1:]
		switch kind {
		case KindInt:
			if len(buf) < 8 {
				return nil, fmt.Errorf("types: truncated int at value %d", i)
			}
			r = append(r, NewInt(int64(binary.BigEndian.Uint64(buf))))
			buf = buf[8:]
		case KindString:
			if len(buf) < 4 {
				return nil, fmt.Errorf("types: truncated string length at value %d", i)
			}
			sz := int(binary.BigEndian.Uint32(buf))
			buf = buf[4:]
			if len(buf) < sz {
				return nil, fmt.Errorf("types: truncated string payload at value %d", i)
			}
			r = append(r, NewString(string(buf[:sz])))
			buf = buf[sz:]
		default:
			return nil, fmt.Errorf("types: unknown kind tag %d at value %d", kind, i)
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("types: %d trailing bytes after row", len(buf))
	}
	return r, nil
}
