package types

import (
	"bytes"
	"testing"
)

// FuzzDecodeRow asserts the row codec never panics on arbitrary bytes
// and that anything it accepts re-encodes to the identical bytes.
func FuzzDecodeRow(f *testing.F) {
	good, _ := EncodeRow(nil, Row{NewInt(-5), NewString("héllo"), NewInt(1 << 60)})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 1})
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		row, err := DecodeRow(data)
		if err != nil {
			return
		}
		enc, err := EncodeRow(nil, row)
		if err != nil {
			t.Fatalf("decoded row %v does not re-encode: %v", row, err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("codec not canonical: % x -> %v -> % x", data, row, enc)
		}
	})
}
