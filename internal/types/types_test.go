package types

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if KindInt.String() != "INT" {
		t.Errorf("KindInt.String() = %q", KindInt.String())
	}
	if KindString.String() != "STRING" {
		t.Errorf("KindString.String() = %q", KindString.String())
	}
	if !strings.Contains(KindInvalid.String(), "INVALID") {
		t.Errorf("KindInvalid.String() = %q", KindInvalid.String())
	}
}

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"INT", KindInt, true},
		{"integer", KindInt, true},
		{"BigInt", KindInt, true},
		{"INT8", KindInt, true},
		{"STRING", KindString, true},
		{"text", KindString, true},
		{"VARCHAR", KindString, true},
		{"char", KindString, true},
		{"FLOAT", KindInvalid, false},
		{"", KindInvalid, false},
	}
	for _, c := range cases {
		got, err := ParseKind(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseKind(%q) succeeded, want error", c.in)
		}
	}
}

func TestValueConstructorsAndValidity(t *testing.T) {
	if v := NewInt(42); !v.IsValid() || v.Kind != KindInt || v.Int != 42 {
		t.Errorf("NewInt(42) = %+v", v)
	}
	if v := NewString("x"); !v.IsValid() || v.Kind != KindString || v.Str != "x" {
		t.Errorf("NewString(x) = %+v", v)
	}
	if (Value{}).IsValid() {
		t.Error("zero Value should be invalid")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(-7), "-7"},
		{NewInt(0), "0"},
		{NewString("abc"), "'abc'"},
		{NewString("o'brien"), "'o''brien'"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(1), 1},
		{NewInt(5), NewInt(5), 0},
		{NewInt(math.MinInt64), NewInt(math.MaxInt64), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("a"), 1},
		{NewString("same"), NewString("same"), 0},
	}
	for _, c := range cases {
		got := c.a.Compare(c.b)
		if sign(got) != c.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestValueCompareCrossKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("cross-kind Compare did not panic")
		}
	}()
	NewInt(1).Compare(NewString("1"))
}

func TestValueCompareInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid Compare did not panic")
		}
	}()
	var a, b Value
	a.Compare(b)
}

func TestRowCloneIsIndependent(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c[0] = NewInt(99)
	if r[0].Int != 1 {
		t.Error("mutating clone affected original")
	}
}

func TestRowEqual(t *testing.T) {
	a := Row{NewInt(1), NewString("x")}
	b := Row{NewInt(1), NewString("x")}
	if !a.Equal(b) {
		t.Error("identical rows not equal")
	}
	if a.Equal(Row{NewInt(1)}) {
		t.Error("rows of different arity equal")
	}
	if a.Equal(Row{NewInt(2), NewString("x")}) {
		t.Error("rows with different values equal")
	}
}

func TestRowString(t *testing.T) {
	r := Row{NewInt(1), NewString("hi")}
	if got := r.String(); got != "(1, 'hi')" {
		t.Errorf("Row.String() = %q", got)
	}
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(Column{Name: "", Kind: KindInt}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Kind: KindInvalid}); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "A", Kind: KindInt}); err == nil {
		t.Error("case-insensitive duplicate column accepted")
	}
	s, err := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindString})
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	if s.Len() != 2 {
		t.Errorf("Len() = %d", s.Len())
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema on bad input did not panic")
		}
	}()
	MustSchema()
}

func TestSchemaColumnIndex(t *testing.T) {
	s := MustSchema(Column{Name: "alpha", Kind: KindInt}, Column{Name: "Beta", Kind: KindString})
	if i := s.ColumnIndex("alpha"); i != 0 {
		t.Errorf("ColumnIndex(alpha) = %d", i)
	}
	if i := s.ColumnIndex("BETA"); i != 1 {
		t.Errorf("case-insensitive ColumnIndex(BETA) = %d", i)
	}
	if i := s.ColumnIndex("gamma"); i != -1 {
		t.Errorf("ColumnIndex(gamma) = %d", i)
	}
}

func TestSchemaColumnNames(t *testing.T) {
	s := MustSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindString})
	names := s.ColumnNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("ColumnNames() = %v", names)
	}
}

func TestSchemaValidateRow(t *testing.T) {
	s := MustSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindString})
	if err := s.Validate(Row{NewInt(1), NewString("x")}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.Validate(Row{NewInt(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := s.Validate(Row{NewString("x"), NewString("y")}); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindString})
	if got := s.String(); got != "(a INT, b STRING)" {
		t.Errorf("Schema.String() = %q", got)
	}
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	// Antisymmetry and transitivity-ish sanity via quick: for random int
	// triples, Compare behaves like integer comparison.
	f := func(a, b int64) bool {
		got := NewInt(a).Compare(NewInt(b))
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		return sign(got) == want && sign(NewInt(b).Compare(NewInt(a))) == -want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
