// Package types defines the value, row, and schema primitives shared by
// every layer of the engine: storage, indexing, SQL execution, statistics,
// and the physical-design cost model.
//
// The type system is deliberately small — 64-bit integers and strings —
// because that is all the paper's workloads require, but the layering
// (typed values with total ordering and a stable binary codec) is the same
// one a larger engine would use.
package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the supported column types.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it never describes a real column.
	KindInvalid Kind = iota
	// KindInt is a signed 64-bit integer column.
	KindInt
	// KindString is a variable-length UTF-8 string column.
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindString:
		return "STRING"
	default:
		return fmt.Sprintf("INVALID(%d)", uint8(k))
	}
}

// ParseKind converts a SQL type name to a Kind. It accepts the common
// aliases used in CREATE TABLE statements.
func ParseKind(name string) (Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "INT8":
		return KindInt, nil
	case "STRING", "TEXT", "VARCHAR", "CHAR":
		return KindString, nil
	default:
		return KindInvalid, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Value is a single typed datum. Exactly one of the payload fields is
// meaningful, selected by Kind. The zero Value is invalid.
type Value struct {
	Kind Kind
	Int  int64
	Str  string
}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{Kind: KindInt, Int: v} }

// NewString returns a string value.
func NewString(s string) Value { return Value{Kind: KindString, Str: s} }

// IsValid reports whether the value has a concrete kind.
func (v Value) IsValid() bool { return v.Kind == KindInt || v.Kind == KindString }

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindString:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	default:
		return "<invalid>"
	}
}

// Compare totally orders two values of the same kind. It returns a
// negative number, zero, or a positive number as v is less than, equal
// to, or greater than other. Comparing values of different kinds panics:
// the planner type-checks predicates before execution, so a cross-kind
// comparison is always a programming error.
func (v Value) Compare(other Value) int {
	if v.Kind != other.Kind {
		panic(fmt.Sprintf("types: comparing %s to %s", v.Kind, other.Kind))
	}
	switch v.Kind {
	case KindInt:
		switch {
		case v.Int < other.Int:
			return -1
		case v.Int > other.Int:
			return 1
		default:
			return 0
		}
	case KindString:
		return strings.Compare(v.Str, other.Str)
	default:
		panic("types: comparing invalid values")
	}
}

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(other Value) bool {
	return v.Kind == other.Kind && v.Compare(other) == 0
}

// EncodedSize returns the number of bytes the row codec uses for the
// value, including its 1-byte kind tag.
func (v Value) EncodedSize() int {
	switch v.Kind {
	case KindInt:
		return 1 + 8
	case KindString:
		return 1 + 4 + len(v.Str)
	default:
		return 1
	}
}

// Row is an ordered tuple of values matching some Schema.
type Row []Value

// Clone returns a deep copy of the row. Values are copied by value, so
// the clone shares no mutable state with the original.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports element-wise equality of two rows.
func (r Row) Equal(other Row) bool {
	if len(r) != len(other) {
		return false
	}
	for i := range r {
		if !r[i].Equal(other[i]) {
			return false
		}
	}
	return true
}

// String renders the row as a parenthesized value list.
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// EncodedSize returns the byte length of the row under the row codec.
func (r Row) EncodedSize() int {
	n := 2 // uint16 column count
	for _, v := range r {
		n += v.EncodedSize()
	}
	return n
}

// Column describes one column of a table schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from column definitions, rejecting duplicate
// names and invalid kinds.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("types: schema must have at least one column")
	}
	seen := make(map[string]struct{}, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("types: empty column name")
		}
		if c.Kind != KindInt && c.Kind != KindString {
			return nil, fmt.Errorf("types: column %q has invalid kind", c.Name)
		}
		lower := strings.ToLower(c.Name)
		if _, dup := seen[lower]; dup {
			return nil, fmt.Errorf("types: duplicate column name %q", c.Name)
		}
		seen[lower] = struct{}{}
	}
	return &Schema{Columns: cols}, nil
}

// MustSchema is NewSchema that panics on error, for tests and fixtures.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// ColumnIndex returns the ordinal of the named column (case-insensitive),
// or -1 if the schema has no such column.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in schema order.
func (s *Schema) ColumnNames() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// Validate checks that a row conforms to the schema: same arity and
// matching kinds position by position.
func (s *Schema) Validate(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("types: row has %d values, schema has %d columns", len(r), len(s.Columns))
	}
	for i, v := range r {
		if v.Kind != s.Columns[i].Kind {
			return fmt.Errorf("types: column %q expects %s, row has %s",
				s.Columns[i].Name, s.Columns[i].Kind, v.Kind)
		}
	}
	return nil
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
