package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	rows := []Row{
		{},
		{NewInt(0)},
		{NewInt(math.MinInt64), NewInt(math.MaxInt64)},
		{NewString("")},
		{NewString("hello"), NewInt(-1), NewString("wörld")},
		{NewString(string([]byte{0, 1, 2, 255}))},
	}
	for _, r := range rows {
		buf, err := EncodeRow(nil, r)
		if err != nil {
			t.Fatalf("EncodeRow(%v): %v", r, err)
		}
		got, err := DecodeRow(buf)
		if err != nil {
			t.Fatalf("DecodeRow(%v): %v", r, err)
		}
		if !got.Equal(r) {
			t.Errorf("round trip %v -> %v", r, got)
		}
	}
}

func TestEncodeRowAppendsToDst(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	buf, err := EncodeRow(prefix, Row{NewInt(7)})
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAA || buf[1] != 0xBB {
		t.Error("EncodeRow clobbered dst prefix")
	}
	got, err := DecodeRow(buf[2:])
	if err != nil || len(got) != 1 || got[0].Int != 7 {
		t.Errorf("decode after prefix: %v, %v", got, err)
	}
}

func TestEncodedSizeMatchesActual(t *testing.T) {
	rows := []Row{
		{NewInt(1), NewInt(2)},
		{NewString("abcdef")},
		{NewInt(-5), NewString("")},
	}
	for _, r := range rows {
		buf, err := EncodeRow(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != r.EncodedSize() {
			t.Errorf("EncodedSize(%v) = %d, actual %d", r, r.EncodedSize(), len(buf))
		}
	}
}

func TestEncodeRowRejectsInvalidValue(t *testing.T) {
	if _, err := EncodeRow(nil, Row{{}}); err == nil {
		t.Error("invalid value encoded without error")
	}
}

func TestDecodeRowErrors(t *testing.T) {
	good, err := EncodeRow(nil, Row{NewInt(1), NewString("abc")})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"one byte", []byte{0}},
		{"truncated int", good[:5]},
		{"truncated string payload", good[:len(good)-1]},
		{"trailing garbage", append(append([]byte(nil), good...), 0xFF)},
		{"bad kind tag", []byte{0, 1, 0x7F}},
	}
	for _, c := range cases {
		if _, err := DecodeRow(c.buf); err == nil {
			t.Errorf("%s: decode succeeded, want error", c.name)
		}
	}
}

func TestRowCodecRoundTripProperty(t *testing.T) {
	f := func(a, b int64, s string) bool {
		r := Row{NewInt(a), NewString(s), NewInt(b)}
		buf, err := EncodeRow(nil, r)
		if err != nil {
			return false
		}
		got, err := DecodeRow(buf)
		return err == nil && got.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
