package core

import (
	"context"
	"fmt"
	"math"

	"dyndesign/internal/obs"
)

// SolveKAware finds the optimal change-constrained dynamic physical
// design via the paper's k-aware sequence graph (§3): the sequence graph
// replicated into K+1 layers, where layer l holds the paths that have
// made exactly l design changes so far. Staying in a configuration keeps
// the layer; switching moves one layer down. The shortest path over the
// layered DAG is the constrained optimum, found in O(K·n·m²).
//
// With K == Unconstrained it reduces to SolveUnconstrained. The layer
// sweep checks the context between stages, so cancellation latency is
// bounded by one O(K·m²) relaxation.
func SolveKAware(ctx context.Context, p *Problem) (*Solution, error) {
	if p.K == Unconstrained {
		return SolveUnconstrained(ctx, p)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return nil, err
	}
	m, err := p.buildMatrices(ctx, configs)
	if err != nil {
		return nil, err
	}
	nc := len(configs)
	layers := p.K + 1

	idx := func(c, l int) int { return c*layers + l }
	inf := math.Inf(1)

	// cost[idx(c,l)] is the cheapest way to execute stages [0..i] with
	// stage i under configs[c] and l changes counted so far.
	cost := make([]float64, nc*layers)
	for i := range cost {
		cost[i] = inf
	}
	for j, c := range configs {
		startLayer := 0
		if p.Policy == CountAll && c != p.Initial {
			startLayer = 1
		}
		if startLayer >= layers {
			continue // K = 0 under CountAll: only the initial design is usable
		}
		cost[idx(j, startLayer)] = m.initTrans[j] + m.exec[0][j]
	}

	// parents[i][idx(c,l)] is the configuration used at stage i-1; the
	// predecessor layer is l when the configuration is unchanged and l-1
	// otherwise.
	parents := make([][]int32, p.Stages)
	next := make([]float64, nc*layers)
	for i := 1; i < p.Stages; i++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		sweep := p.Tracer.Start(SpanKAwareSweep)
		parent := make([]int32, nc*layers)
		for x := range next {
			next[x] = inf
			parent[x] = -1
		}
		for f := 0; f < nc; f++ {
			for l := 0; l < layers; l++ {
				v := cost[idx(f, l)]
				if math.IsInf(v, 1) {
					continue
				}
				// Stay in the same configuration: same layer.
				stay := v + m.exec[i][f]
				if stay < next[idx(f, l)] {
					next[idx(f, l)] = stay
					parent[idx(f, l)] = int32(f)
				}
				// Switch configurations: one layer deeper.
				if l+1 >= layers {
					continue
				}
				for j := 0; j < nc; j++ {
					if j == f {
						continue
					}
					sw := v + m.trans[f][j] + m.exec[i][j]
					if sw < next[idx(j, l+1)] {
						next[idx(j, l+1)] = sw
						parent[idx(j, l+1)] = int32(f)
					}
				}
			}
		}
		cost, next = next, cost
		parents[i] = parent
		sweep.End(obs.Int("stage", int64(i)), obs.Int("layers", int64(layers)), obs.Int("configs", int64(nc)))
	}

	bestCfg, bestLayer := -1, -1
	bestCost := inf
	for j := 0; j < nc; j++ {
		for l := 0; l < layers; l++ {
			v := cost[idx(j, l)]
			if math.IsInf(v, 1) {
				continue
			}
			if m.finalTrans != nil {
				v += m.finalTrans[j]
			}
			if v < bestCost {
				bestCost = v
				bestCfg, bestLayer = j, l
			}
		}
	}
	if bestCfg < 0 {
		return nil, fmt.Errorf("core: no design with at most %d changes exists", p.K)
	}

	designs := make([]Config, p.Stages)
	c, l := bestCfg, bestLayer
	for i := p.Stages - 1; i >= 0; i-- {
		designs[i] = configs[c]
		if i == 0 {
			break
		}
		prev := int(parents[i][idx(c, l)])
		if prev != c {
			l--
		}
		c = prev
	}
	return p.NewSolution(designs), nil
}
