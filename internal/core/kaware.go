package core

import (
	"context"
	"fmt"
	"math"

	"dyndesign/internal/obs"
)

// layeredDP is the state of one k-aware layered sequence-graph run: the
// final-stage cost table over (configuration, layer) plus the parent
// links needed to backtrack any endpoint. SolveKAware consumes only the
// global optimum; SweepK reads every layer, which is why the run is kept
// as a value instead of being discarded inside the solver.
type layeredDP struct {
	configs []Config
	m       *matrices
	layers  int
	// cost[idx(c,l)] is the cheapest way to execute all stages with the
	// last stage under configs[c] and exactly l changes counted.
	cost []float64
	// parents[i][idx(c,l)] is the configuration index used at stage i-1;
	// the predecessor layer is l when the configuration is unchanged and
	// l-1 otherwise. All stage tables share one backing array.
	parents [][]int32
	stages  int
}

// idx is layer-major so each layer's cost row is one contiguous slice —
// exactly the shape the transition kernels relax and the layer-parallel
// sweep partitions.
func (d *layeredDP) idx(c, l int) int { return l*len(d.configs) + c }

// runLayeredDP executes the paper's k-aware sequence-graph relaxation
// (§3) over the given number of layers: layer l holds the paths that
// have made exactly l design changes so far. Staying in a configuration
// keeps the layer; switching moves one layer down through the kernel's
// move relaxation — O(layers·m²) per stage dense, O(layers·m'·2^m')
// hypercube. Layers relax independently (each reads the frozen previous
// stage), so stages with enough configurations fan the layer sweep out
// across the worker pool; every layer is owned by exactly one worker,
// which keeps the output bit-identical to the serial sweep. The stage
// loop checks the context between stages, so cancellation latency is
// bounded by one relaxation.
func (p *Problem) runLayeredDP(ctx context.Context, m *matrices, kern transRelaxer, configs []Config, layers int) (*layeredDP, error) {
	nc := len(configs)
	d := &layeredDP{configs: configs, m: m, layers: layers, stages: p.Stages}
	inf := math.Inf(1)

	cost := make([]float64, nc*layers)
	for i := range cost {
		cost[i] = inf
	}
	// live[l] tracks whether layer l holds any reachable state, letting
	// the sweep skip stay reads and whole move relaxations into dead
	// layers (early stages have only the shallow layers populated).
	live := make([]bool, layers)
	for j, c := range configs {
		startLayer := 0
		if p.Policy == CountAll && c != p.Initial {
			startLayer = 1
		}
		if startLayer >= layers {
			continue // K = 0 under CountAll: only the initial design is usable
		}
		v := m.initTrans[j] + m.exec[0][j]
		cost[startLayer*nc+j] = v
		if !math.IsInf(v, 1) {
			live[startLayer] = true
		}
	}

	// One backing array serves every stage's parent table, and the move
	// and lattice scratch buffers are reused across all stages (and all
	// SweepK layers): the per-stage allocations the sweep used to make
	// are gone.
	d.parents = make([][]int32, p.Stages)
	if p.Stages > 1 {
		backing := make([]int32, (p.Stages-1)*nc*layers)
		for i := 1; i < p.Stages; i++ {
			d.parents[i] = backing[(i-1)*nc*layers : i*nc*layers : i*nc*layers]
		}
	}
	next := make([]float64, nc*layers)
	move := make([]float64, nc*layers)
	moveFrom := make([]int32, nc*layers)
	var scratch []*latticeScratch
	if kern.needsScratch() {
		scratch = make([]*latticeScratch, layers)
		for l := 1; l < layers; l++ {
			scratch[l] = kern.newScratch()
		}
	}
	nextLive := make([]bool, layers)
	workers := p.workers()

	for i := 1; i < p.Stages; i++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		sweep := p.Tracer.Start(SpanKAwareSweep)
		parent := d.parents[i]
		execRow := m.exec[i]
		relaxLayer := func(l int) {
			base := l * nc
			outRow := next[base : base+nc]
			parRow := parent[base : base+nc]
			stayRow := cost[base : base+nc]
			var moveRow []float64
			var moveSrc []int32
			if l > 0 && live[l-1] {
				moveRow = move[base : base+nc]
				moveSrc = moveFrom[base : base+nc]
				var scr *latticeScratch
				if scratch != nil {
					scr = scratch[l]
				}
				kern.relaxMove(cost[(l-1)*nc:base], moveRow, moveSrc, scr)
			}
			anyLive := false
			for t := 0; t < nc; t++ {
				// Stay in the same configuration (same layer) vs switch in
				// from the layer above; the stay state wins exact ties.
				v := inf
				from := int32(-1)
				if live[l] {
					if sv := stayRow[t]; sv < v {
						v = sv
						from = int32(t)
					}
				}
				if moveRow != nil {
					if mv := moveRow[t]; mv < v {
						v = mv
						from = moveSrc[t]
					}
				}
				if math.IsInf(v, 1) {
					outRow[t] = inf
					parRow[t] = -1
					continue
				}
				nv := v + execRow[t]
				if math.IsInf(nv, 1) {
					outRow[t] = inf
					parRow[t] = -1
					continue
				}
				outRow[t] = nv
				parRow[t] = from
				anyLive = true
			}
			nextLive[l] = anyLive
		}
		if layers >= 2 && nc >= parallelSweepMinConfigs {
			if err := parallelFor(ctx, workers, layers, relaxLayer); err != nil {
				sweep.End(obs.Int("stage", int64(i)), obs.Int("layers", int64(layers)),
					obs.Int("configs", int64(nc)), obs.String("kernel", kern.name()))
				return nil, err
			}
		} else {
			for l := 0; l < layers; l++ {
				relaxLayer(l)
			}
		}
		cost, next = next, cost
		copy(live, nextLive)
		sweep.End(obs.Int("stage", int64(i)), obs.Int("layers", int64(layers)),
			obs.Int("configs", int64(nc)), obs.String("kernel", kern.name()))
	}
	d.cost = cost
	return d, nil
}

// best finds the cheapest endpoint over layers [0, maxLayer], final
// transition included. ok is false when no endpoint within the layer
// bound is reachable.
func (d *layeredDP) best(maxLayer int) (cfg, layer int, ok bool) {
	if maxLayer >= d.layers {
		maxLayer = d.layers - 1
	}
	bestCost := math.Inf(1)
	cfg, layer = -1, -1
	for j := 0; j < len(d.configs); j++ {
		for l := 0; l <= maxLayer; l++ {
			v := d.cost[d.idx(j, l)]
			if math.IsInf(v, 1) {
				continue
			}
			if d.m.finalTrans != nil {
				v += d.m.finalTrans[j]
			}
			if v < bestCost {
				bestCost = v
				cfg, layer = j, l
			}
		}
	}
	return cfg, layer, cfg >= 0
}

// backtrack reconstructs the design sequence ending at (cfg, layer).
func (d *layeredDP) backtrack(cfg, layer int) []Config {
	designs := make([]Config, d.stages)
	c, l := cfg, layer
	for i := d.stages - 1; i >= 0; i-- {
		designs[i] = d.configs[c]
		if i == 0 {
			break
		}
		prev := int(d.parents[i][d.idx(c, l)])
		if prev != c {
			l--
		}
		c = prev
	}
	return designs
}

// SolveKAware finds the optimal change-constrained dynamic physical
// design via the paper's k-aware sequence graph (§3): the sequence graph
// replicated into K+1 layers, where layer l holds the paths that have
// made exactly l design changes so far. The shortest path over the
// layered DAG is the constrained optimum, found in O(K·n·m²) with the
// dense kernel and O(K·n·m'·2^m') with the hypercube kernel over m'
// underlying structures (DESIGN.md §12).
//
// With K == Unconstrained it reduces to SolveUnconstrained.
func SolveKAware(ctx context.Context, p *Problem) (*Solution, error) {
	if p.K == Unconstrained {
		return SolveUnconstrained(ctx, p)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return nil, err
	}
	ch := resolveKernel(p, configs)
	m, err := p.tables(ctx, configs, ch.needTrans())
	if err != nil {
		return nil, err
	}
	d, err := p.runLayeredDP(ctx, m, ch.kernel(m), configs, p.K+1)
	if err != nil {
		return nil, err
	}
	cfg, layer, ok := d.best(p.K)
	if !ok {
		return nil, fmt.Errorf("core: no design with at most %d changes exists", p.K)
	}
	return p.NewSolution(d.backtrack(cfg, layer)), nil
}

// KSweepPoint is one point of the cost-of-constraint curve: the optimal
// sequence cost when at most K design changes are allowed.
type KSweepPoint struct {
	// K is the change bound of this point.
	K int
	// Feasible is false when no design with at most K changes exists
	// (K = 0 under CountAll with an unusable initial configuration); Cost
	// and Changes are meaningless then.
	Feasible bool
	// Cost is the optimal sequence cost under the bound, recomputed from
	// the model (epsilon-free, matching Solution.Cost for the same K).
	Cost float64
	// ExecCost and TransCost split Cost the way Solution does.
	ExecCost, TransCost float64
	// Changes is the change count of the optimal design at this bound —
	// it can be below K when extra allowance buys nothing.
	Changes int
}

// SweepK computes the cost-of-constraint curve cost(k') for k' in
// [0, maxK] with ONE layered DP run — the k-aware relaxation already
// computes every layer up to its bound; the sweep exposes them instead
// of discarding all but the optimum. Each point's cost is recomputed
// from the model over the backtracked design, so the curve is exact (no
// tie-breaking epsilon) and point maxK matches SolveKAware's solution
// cost at K = maxK. The curve is monotone non-increasing in K by
// construction: a design feasible at k' is feasible at k'+1, so each
// point keeps the previous design when the DP offers nothing cheaper.
//
// The problem's own K is ignored; the sweep always spans [0, maxK].
func SweepK(ctx context.Context, p *Problem, maxK int) ([]KSweepPoint, error) {
	if maxK < 0 {
		return nil, fmt.Errorf("core: cannot sweep to negative change bound %d", maxK)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return nil, err
	}
	ch := resolveKernel(p, configs)
	m, err := p.tables(ctx, configs, ch.needTrans())
	if err != nil {
		return nil, err
	}
	d, err := p.runLayeredDP(ctx, m, ch.kernel(m), configs, maxK+1)
	if err != nil {
		return nil, err
	}
	out := make([]KSweepPoint, 0, maxK+1)
	var prev *Solution
	prevCfg, prevLayer := -1, -1
	for k := 0; k <= maxK; k++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		pt := KSweepPoint{K: k}
		cfg, layer, ok := d.best(k)
		if ok {
			sol := prev
			if cfg != prevCfg || layer != prevLayer {
				sol = p.NewSolution(d.backtrack(cfg, layer))
			}
			// Keep the previous point's design when the new endpoint is
			// not a strict improvement on recomputed (epsilon-free) cost:
			// feasibility nests in K, so the curve never goes up.
			if prev != nil && prev.Cost <= sol.Cost {
				sol = prev
			} else {
				prevCfg, prevLayer = cfg, layer
			}
			pt.Feasible = true
			pt.Cost = sol.Cost
			pt.ExecCost = sol.ExecCost
			pt.TransCost = sol.TransCost
			pt.Changes = sol.Changes
			prev = sol
		}
		out = append(out, pt)
	}
	return out, nil
}
