package core

import (
	"context"
	"fmt"
	"math"

	"dyndesign/internal/obs"
)

// layeredDP is the state of one k-aware layered sequence-graph run: the
// final-stage cost table over (configuration, layer) plus the parent
// links needed to backtrack any endpoint. SolveKAware consumes only the
// global optimum; SweepK reads every layer, which is why the run is kept
// as a value instead of being discarded inside the solver.
type layeredDP struct {
	configs []Config
	m       *matrices
	layers  int
	// cost[idx(c,l)] is the cheapest way to execute all stages with the
	// last stage under configs[c] and exactly l changes counted.
	cost []float64
	// parents[i][idx(c,l)] is the configuration index used at stage i-1;
	// the predecessor layer is l when the configuration is unchanged and
	// l-1 otherwise.
	parents [][]int32
	stages  int
}

func (d *layeredDP) idx(c, l int) int { return c*d.layers + l }

// runLayeredDP executes the paper's k-aware sequence-graph relaxation
// (§3) over the given number of layers: layer l holds the paths that
// have made exactly l design changes so far. Staying in a configuration
// keeps the layer; switching moves one layer down. The sweep checks the
// context between stages, so cancellation latency is bounded by one
// O(layers·m²) relaxation.
func (p *Problem) runLayeredDP(ctx context.Context, m *matrices, configs []Config, layers int) (*layeredDP, error) {
	nc := len(configs)
	d := &layeredDP{configs: configs, m: m, layers: layers, stages: p.Stages}
	inf := math.Inf(1)

	cost := make([]float64, nc*layers)
	for i := range cost {
		cost[i] = inf
	}
	for j, c := range configs {
		startLayer := 0
		if p.Policy == CountAll && c != p.Initial {
			startLayer = 1
		}
		if startLayer >= layers {
			continue // K = 0 under CountAll: only the initial design is usable
		}
		cost[d.idx(j, startLayer)] = m.initTrans[j] + m.exec[0][j]
	}

	d.parents = make([][]int32, p.Stages)
	next := make([]float64, nc*layers)
	for i := 1; i < p.Stages; i++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		sweep := p.Tracer.Start(SpanKAwareSweep)
		parent := make([]int32, nc*layers)
		for x := range next {
			next[x] = inf
			parent[x] = -1
		}
		for f := 0; f < nc; f++ {
			for l := 0; l < layers; l++ {
				v := cost[d.idx(f, l)]
				if math.IsInf(v, 1) {
					continue
				}
				// Stay in the same configuration: same layer.
				stay := v + m.exec[i][f]
				if stay < next[d.idx(f, l)] {
					next[d.idx(f, l)] = stay
					parent[d.idx(f, l)] = int32(f)
				}
				// Switch configurations: one layer deeper.
				if l+1 >= layers {
					continue
				}
				for j := 0; j < nc; j++ {
					if j == f {
						continue
					}
					sw := v + m.trans[f][j] + m.exec[i][j]
					if sw < next[d.idx(j, l+1)] {
						next[d.idx(j, l+1)] = sw
						parent[d.idx(j, l+1)] = int32(f)
					}
				}
			}
		}
		cost, next = next, cost
		d.parents[i] = parent
		sweep.End(obs.Int("stage", int64(i)), obs.Int("layers", int64(layers)), obs.Int("configs", int64(nc)))
	}
	d.cost = cost
	return d, nil
}

// best finds the cheapest endpoint over layers [0, maxLayer], final
// transition included. ok is false when no endpoint within the layer
// bound is reachable.
func (d *layeredDP) best(maxLayer int) (cfg, layer int, ok bool) {
	if maxLayer >= d.layers {
		maxLayer = d.layers - 1
	}
	bestCost := math.Inf(1)
	cfg, layer = -1, -1
	for j := 0; j < len(d.configs); j++ {
		for l := 0; l <= maxLayer; l++ {
			v := d.cost[d.idx(j, l)]
			if math.IsInf(v, 1) {
				continue
			}
			if d.m.finalTrans != nil {
				v += d.m.finalTrans[j]
			}
			if v < bestCost {
				bestCost = v
				cfg, layer = j, l
			}
		}
	}
	return cfg, layer, cfg >= 0
}

// backtrack reconstructs the design sequence ending at (cfg, layer).
func (d *layeredDP) backtrack(cfg, layer int) []Config {
	designs := make([]Config, d.stages)
	c, l := cfg, layer
	for i := d.stages - 1; i >= 0; i-- {
		designs[i] = d.configs[c]
		if i == 0 {
			break
		}
		prev := int(d.parents[i][d.idx(c, l)])
		if prev != c {
			l--
		}
		c = prev
	}
	return designs
}

// SolveKAware finds the optimal change-constrained dynamic physical
// design via the paper's k-aware sequence graph (§3): the sequence graph
// replicated into K+1 layers, where layer l holds the paths that have
// made exactly l design changes so far. The shortest path over the
// layered DAG is the constrained optimum, found in O(K·n·m²).
//
// With K == Unconstrained it reduces to SolveUnconstrained.
func SolveKAware(ctx context.Context, p *Problem) (*Solution, error) {
	if p.K == Unconstrained {
		return SolveUnconstrained(ctx, p)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return nil, err
	}
	m, err := p.buildMatrices(ctx, configs)
	if err != nil {
		return nil, err
	}
	d, err := p.runLayeredDP(ctx, m, configs, p.K+1)
	if err != nil {
		return nil, err
	}
	cfg, layer, ok := d.best(p.K)
	if !ok {
		return nil, fmt.Errorf("core: no design with at most %d changes exists", p.K)
	}
	return p.NewSolution(d.backtrack(cfg, layer)), nil
}

// KSweepPoint is one point of the cost-of-constraint curve: the optimal
// sequence cost when at most K design changes are allowed.
type KSweepPoint struct {
	// K is the change bound of this point.
	K int
	// Feasible is false when no design with at most K changes exists
	// (K = 0 under CountAll with an unusable initial configuration); Cost
	// and Changes are meaningless then.
	Feasible bool
	// Cost is the optimal sequence cost under the bound, recomputed from
	// the model (epsilon-free, matching Solution.Cost for the same K).
	Cost float64
	// ExecCost and TransCost split Cost the way Solution does.
	ExecCost, TransCost float64
	// Changes is the change count of the optimal design at this bound —
	// it can be below K when extra allowance buys nothing.
	Changes int
}

// SweepK computes the cost-of-constraint curve cost(k') for k' in
// [0, maxK] with ONE layered DP run — the k-aware relaxation already
// computes every layer up to its bound; the sweep exposes them instead
// of discarding all but the optimum. Each point's cost is recomputed
// from the model over the backtracked design, so the curve is exact (no
// tie-breaking epsilon) and point maxK matches SolveKAware's solution
// cost at K = maxK. The curve is monotone non-increasing in K by
// construction: a design feasible at k' is feasible at k'+1, so each
// point keeps the previous design when the DP offers nothing cheaper.
//
// The problem's own K is ignored; the sweep always spans [0, maxK].
func SweepK(ctx context.Context, p *Problem, maxK int) ([]KSweepPoint, error) {
	if maxK < 0 {
		return nil, fmt.Errorf("core: cannot sweep to negative change bound %d", maxK)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return nil, err
	}
	m, err := p.buildMatrices(ctx, configs)
	if err != nil {
		return nil, err
	}
	d, err := p.runLayeredDP(ctx, m, configs, maxK+1)
	if err != nil {
		return nil, err
	}
	out := make([]KSweepPoint, 0, maxK+1)
	var prev *Solution
	prevCfg, prevLayer := -1, -1
	for k := 0; k <= maxK; k++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		pt := KSweepPoint{K: k}
		cfg, layer, ok := d.best(k)
		if ok {
			sol := prev
			if cfg != prevCfg || layer != prevLayer {
				sol = p.NewSolution(d.backtrack(cfg, layer))
			}
			// Keep the previous point's design when the new endpoint is
			// not a strict improvement on recomputed (epsilon-free) cost:
			// feasibility nests in K, so the curve never goes up.
			if prev != nil && prev.Cost <= sol.Cost {
				sol = prev
			} else {
				prevCfg, prevLayer = cfg, layer
			}
			pt.Feasible = true
			pt.Cost = sol.Cost
			pt.ExecCost = sol.ExecCost
			pt.TransCost = sol.TransCost
			pt.Changes = sol.Changes
			prev = sol
		}
		out = append(out, pt)
	}
	return out, nil
}
