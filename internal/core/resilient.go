package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"dyndesign/internal/obs"
)

// ErrWhatIfBudget is the cancellation cause installed when a resilient
// rung exhausts its what-if evaluation budget: the solve stops at its
// next cooperative cancellation point and the supervisor degrades to
// the next rung.
var ErrWhatIfBudget = errors.New("core: what-if evaluation budget exhausted")

// ErrModelFault wraps evaluation failures reported by a FallibleModel:
// the solve completed mechanically, but some cost it consumed came from
// a failed evaluation, so its output cannot be trusted.
var ErrModelFault = errors.New("core: cost model reported evaluation faults")

// FallibleModel is a CostModel whose evaluations can fail at runtime
// (the advisor's what-if model costing a statement, a remote cost
// service, a fault-injecting test model). Because CostModel's methods
// return bare float64s, a failing evaluation returns +Inf and records
// the failure; TakeErr surfaces it.
//
// The resilient supervisor calls TakeErr after every rung — a non-nil
// error fails the rung even if a solution came back — and the advisor
// calls it after plain solves. TakeErr clears the stored failure so
// each rung is judged only on its own evaluations.
type FallibleModel interface {
	CostModel
	// TakeErr returns the first evaluation failure observed since the
	// previous TakeErr call and clears it; nil when every evaluation
	// succeeded.
	TakeErr() error
}

// budgetModel wraps a rung's cost model with a work budget: the
// (budget+1)-th EXEC evaluation cancels the rung's context with
// ErrWhatIfBudget. Evaluations are never blocked — the wrapped model
// keeps answering so in-flight matrix rows stay consistent — the solve
// simply stops at its next cancellation point. Memoized models count
// memo hits too: the budget bounds solver demand, not model work.
type budgetModel struct {
	inner  CostModel
	budget int64
	calls  atomic.Int64
	cancel context.CancelCauseFunc
}

func (b *budgetModel) Exec(stage int, c Config) float64 {
	if b.calls.Add(1) == b.budget+1 {
		b.cancel(ErrWhatIfBudget)
	}
	return b.inner.Exec(stage, c)
}

// BatchExec implements BatchCostModel: the whole batch is charged
// against the budget up front (the add that crosses budget+1 cancels,
// exactly once), then delegated to the inner model's batch entry point
// when it has one and evaluated per cell otherwise. Either way the
// total charged equals what the per-call path would have charged.
func (b *budgetModel) BatchExec(stage int, configs []Config, out []float64) []float64 {
	if n := int64(len(configs)); n > 0 {
		after := b.calls.Add(n)
		if after >= b.budget+1 && after-n < b.budget+1 {
			b.cancel(ErrWhatIfBudget)
		}
	}
	if bm, ok := b.inner.(BatchCostModel); ok {
		return bm.BatchExec(stage, configs, out)
	}
	if cap(out) < len(configs) {
		out = make([]float64, len(configs))
	}
	out = out[:len(configs)]
	for j, c := range configs {
		out[j] = b.inner.Exec(stage, c)
	}
	return out
}

func (b *budgetModel) Trans(from, to Config) float64 { return b.inner.Trans(from, to) }
func (b *budgetModel) Size(c Config) float64         { return b.inner.Size(c) }

// FailureClass tags why a resilient rung did not answer.
type FailureClass string

// Rung failure classes.
const (
	FailTimeout   FailureClass = "timeout"   // rung or overall deadline expired
	FailBudget    FailureClass = "budget"    // what-if budget exhausted
	FailFault     FailureClass = "fault"     // FallibleModel reported evaluation failures
	FailPanic     FailureClass = "panic"     // panic recovered into a *PanicError
	FailCancelled FailureClass = "cancelled" // parent context explicitly cancelled
	FailError     FailureClass = "error"     // any other solver error (infeasible, budgeted ranking, ...)
)

// classifyFailure maps a rung error to its class.
func classifyFailure(err error) FailureClass {
	var pe *PanicError
	switch {
	case err == nil:
		return ""
	case errors.As(err, &pe):
		return FailPanic
	case errors.Is(err, ErrWhatIfBudget):
		return FailBudget
	case errors.Is(err, ErrModelFault):
		return FailFault
	case errors.Is(err, context.DeadlineExceeded):
		return FailTimeout
	case errors.Is(err, context.Canceled):
		return FailCancelled
	default:
		return FailError
	}
}

// RungLastKnownGood is the pseudo-strategy reported when the resilient
// supervisor answered with the caller-provided last-known-good design
// after every solving rung failed.
const RungLastKnownGood Strategy = "lastknowngood"

// RungReport describes one attempted rung of a resilient solve.
type RungReport struct {
	Strategy Strategy
	// Class is empty for the rung that answered.
	Class FailureClass
	// Err is the rung's failure, nil for the rung that answered.
	Err     error
	Elapsed time.Duration
}

// ResilientOptions configures SolveResilient.
type ResilientOptions struct {
	// Ladder is the degradation ladder: strategies tried in order until
	// one answers. Empty means DefaultLadder(StrategyKAware) — the
	// exact solver, then greedy-seq, then merging.
	Ladder []Strategy
	// RungTimeout is the deadline granted to each rung on top of
	// whatever deadline the caller's context carries; 0 means none.
	RungTimeout time.Duration
	// MaxWhatIfCalls bounds the EXEC evaluations each rung may request
	// (memo hits included — it bounds solver demand, not model work);
	// 0 means unbounded.
	MaxWhatIfCalls int64
	// LastKnownGood, when non-nil, is the final fallback: a previously
	// recommended design sequence adopted — after revalidation against
	// the problem — when every solving rung fails.
	LastKnownGood *Solution
}

// DefaultLadder builds the standard degradation ladder starting from
// the caller's preferred strategy: primary first, then greedy-seq and
// merging (each progressively cheaper), without duplicates.
func DefaultLadder(primary Strategy) []Strategy {
	if primary == "" {
		primary = StrategyKAware
	}
	out := []Strategy{primary}
	for _, s := range []Strategy{StrategyGreedySeq, StrategyMerge} {
		if s != primary {
			out = append(out, s)
		}
	}
	return out
}

// AutoLadder builds the degradation ladder for a problem: the default
// ladder of the preferred strategy, with the partitioned solver
// prepended when the candidate span exceeds the exact hypercube
// ceiling — the regime where the exact solvers silently degrade to the
// dense O(n·c²) scan (ErrLatticeTooLarge) and factoring or anytime
// search is the right first attempt. Below the ceiling the exact
// solver is already optimal, so the ladder is unchanged.
func AutoLadder(p *Problem, primary Strategy) []Strategy {
	ladder := DefaultLadder(primary)
	if primary == StrategyPartitioned {
		return ladder
	}
	var span Config
	for _, c := range p.Configs {
		span |= c
	}
	if span.Count() > maxLatticeBits {
		return append([]Strategy{StrategyPartitioned}, ladder...)
	}
	return ladder
}

// ResilientResult is the outcome of a resilient solve.
type ResilientResult struct {
	// Solution is feasible for the problem (CheckSolution-valid); nil
	// only when SolveResilient also returned an error.
	Solution *Solution
	// Rung is the strategy that answered (RungLastKnownGood for the
	// fallback design).
	Rung Strategy
	// Degraded is true when the first rung did not answer.
	Degraded bool
	// Reports has one entry per attempted rung, in ladder order.
	Reports []RungReport
}

// SolveResilient is the fault-tolerant solve supervisor: it walks a
// degradation ladder of strategies, giving each rung a deadline and a
// what-if budget, recovering panics into typed errors, and rejecting
// answers a FallibleModel flagged or CheckSolution refutes. It returns
// either a feasible solution (with the rung that produced it and a
// report per failed rung) or an error aggregating every rung's failure
// — never a hang, never a crash from a misbehaving cost model.
//
// The ladder degrades on deadlines, budgets, faults, and panics; an
// explicit cancellation of the caller's context aborts it instead (an
// interrupted operator wants the solve stopped, not approximated). When
// every rung fails and Opts.LastKnownGood is set, that design is
// revalidated against the problem and adopted as the final rung.
//
// On total failure the returned *ResilientResult is still non-nil and
// carries the per-rung reports for diagnostics; only its Solution is
// nil.
func SolveResilient(ctx context.Context, p *Problem, opts ResilientOptions) (*ResilientResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ladder := opts.Ladder
	if len(ladder) == 0 {
		ladder = AutoLadder(p, StrategyKAware)
	}
	fallible, _ := p.Model.(FallibleModel)

	res := &ResilientResult{}
	var failures []error
	fail := func(strat Strategy, err error, elapsed time.Duration) {
		res.Reports = append(res.Reports, RungReport{
			Strategy: strat, Class: classifyFailure(err), Err: err, Elapsed: elapsed,
		})
		failures = append(failures, fmt.Errorf("%s: %w", strat, err))
		p.Metrics.noteDegradation()
	}

	for i, strat := range ladder {
		if err := ctxErr(ctx); err != nil && errors.Is(err, context.Canceled) {
			// Explicit cancellation: stop, don't degrade.
			failures = append(failures, err)
			return res, fmt.Errorf("core: resilient solve cancelled: %w", errors.Join(failures...))
		}
		rungCtx, cancel := context.WithCancelCause(ctx)
		var timeoutCancel context.CancelFunc = func() {}
		if opts.RungTimeout > 0 {
			rungCtx, timeoutCancel = context.WithTimeout(rungCtx, opts.RungTimeout)
		}
		rp := *p
		if opts.MaxWhatIfCalls > 0 {
			rp.Model = &budgetModel{inner: p.Model, budget: opts.MaxWhatIfCalls, cancel: cancel}
		}
		start := time.Now()
		rung := p.Tracer.Start(SpanResilientRung)
		sol, err := safeSolve(rungCtx, &rp, strat)
		if ferr := takeModelErr(fallible); ferr != nil && err == nil {
			err = fmt.Errorf("%w: %w", ErrModelFault, ferr)
		}
		if err == nil {
			// The rung's answer must stand on its own: recompute and
			// re-check it, treating verification faults as rung faults.
			err = p.safeCheck(sol)
			if ferr := takeModelErr(fallible); ferr != nil && err == nil {
				err = fmt.Errorf("%w: verifying %s solution: %w", ErrModelFault, strat, ferr)
			}
		}
		rung.End(obs.String("strategy", string(strat)), obs.Bool("ok", err == nil),
			obs.String("class", string(classifyFailure(err))))
		elapsed := time.Since(start)
		timeoutCancel()
		cancel(nil)
		if err == nil {
			res.Reports = append(res.Reports, RungReport{Strategy: strat, Elapsed: elapsed})
			res.Solution = sol
			res.Rung = strat
			res.Degraded = i > 0
			return res, nil
		}
		fail(strat, err, elapsed)
	}

	if opts.LastKnownGood != nil {
		start := time.Now()
		rung := p.Tracer.Start(SpanResilientRung)
		sol, err := p.safeAdopt(opts.LastKnownGood)
		if ferr := takeModelErr(fallible); ferr != nil && err == nil {
			err = fmt.Errorf("%w: revalidating last-known-good design: %w", ErrModelFault, ferr)
		}
		rung.End(obs.String("strategy", string(RungLastKnownGood)), obs.Bool("ok", err == nil),
			obs.String("class", string(classifyFailure(err))))
		elapsed := time.Since(start)
		if err == nil {
			res.Reports = append(res.Reports, RungReport{Strategy: RungLastKnownGood, Elapsed: elapsed})
			res.Solution = sol
			res.Rung = RungLastKnownGood
			res.Degraded = true
			return res, nil
		}
		fail(RungLastKnownGood, err, elapsed)
	}
	return res, fmt.Errorf("core: every rung of the resilient ladder failed: %w", errors.Join(failures...))
}

// safeSolve runs one strategy, converting a panic that escapes the
// solve (a misbehaving cost model on a serial path — the worker pool
// already converts its own) into a *PanicError.
func safeSolve(ctx context.Context, p *Problem, strat Strategy) (sol *Solution, err error) {
	defer func() {
		if r := recover(); r != nil {
			p.Metrics.noteRecoveredPanic()
			sol, err = nil, recoverPanic(r)
		}
	}()
	return Solve(ctx, p, strat)
}

// safeCheck verifies a solution against the problem with panic
// recovery: CheckSolution recomputes the sequence cost through the
// model, which can itself fault under injection.
func (p *Problem) safeCheck(sol *Solution) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.Metrics.noteRecoveredPanic()
			err = recoverPanic(r)
		}
	}()
	if sol == nil {
		return fmt.Errorf("core: solver returned no solution")
	}
	return p.CheckSolution(sol)
}

// safeAdopt re-prices a previously known-good design sequence under the
// problem's current model and verifies it is still feasible, with panic
// recovery around the model calls.
func (p *Problem) safeAdopt(lkg *Solution) (sol *Solution, err error) {
	defer func() {
		if r := recover(); r != nil {
			p.Metrics.noteRecoveredPanic()
			sol, err = nil, recoverPanic(r)
		}
	}()
	fresh := p.NewSolution(lkg.Designs)
	if err := p.CheckSolution(fresh); err != nil {
		return nil, err
	}
	return fresh, nil
}

// takeModelErr drains a FallibleModel's stored failure; nil model means
// nil error.
func takeModelErr(m FallibleModel) error {
	if m == nil {
		return nil
	}
	return m.TakeErr()
}
