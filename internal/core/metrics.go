package core

import (
	"sync/atomic"
	"time"
)

// Metrics collects lightweight solver instrumentation. A Metrics value
// is shared by pointer: copying a Problem (as the solvers and the
// experiment harness do freely) keeps accumulating into the same
// counters, and every method is safe for concurrent use. All methods
// tolerate a nil receiver, so instrumentation stays strictly opt-in.
type Metrics struct {
	matrixBuilds     atomic.Int64
	matrixBuildNanos atomic.Int64
	matrixReuses     atomic.Int64
	degradations     atomic.Int64
	cancellations    atomic.Int64
	recoveredPanics  atomic.Int64
	latticeOverflows atomic.Int64
}

// noteMatrixBuild records one dense cost-table evaluation.
func (m *Metrics) noteMatrixBuild(d time.Duration) {
	if m == nil {
		return
	}
	m.matrixBuilds.Add(1)
	m.matrixBuildNanos.Add(int64(d))
}

// MatrixBuilds returns how many dense EXEC/TRANS cost tables were
// evaluated against this problem's model.
func (m *Metrics) MatrixBuilds() int64 {
	if m == nil {
		return 0
	}
	return m.matrixBuilds.Load()
}

// MatrixBuildTime returns the total wall time spent evaluating dense
// cost tables. Concurrent builds accumulate their individual durations,
// so the sum can exceed elapsed wall time on multicore runs.
func (m *Metrics) MatrixBuildTime() time.Duration {
	if m == nil {
		return 0
	}
	return time.Duration(m.matrixBuildNanos.Load())
}

// noteMatrixReuse records one table read served from a SolveCache
// entry instead of re-evaluating the cost model — a solver's table
// fetch or a sequence-cost replay.
func (m *Metrics) noteMatrixReuse() {
	if m == nil {
		return
	}
	m.matrixReuses.Add(1)
}

// MatrixReuses returns how many table reads (solver fetches and cost
// replays) were served from the solve cache instead of the model.
func (m *Metrics) MatrixReuses() int64 {
	if m == nil {
		return 0
	}
	return m.matrixReuses.Load()
}

// noteDegradation records one rung of the resilient supervisor failing
// over to the next rung of its ladder.
func (m *Metrics) noteDegradation() {
	if m == nil {
		return
	}
	m.degradations.Add(1)
}

// Degradations returns how many times a resilient solve fell from one
// ladder rung to the next (timeout, budget, fault, or panic).
func (m *Metrics) Degradations() int64 {
	if m == nil {
		return 0
	}
	return m.degradations.Load()
}

// noteCancellation records one solve aborted by its context — a
// deadline, an explicit cancel, or a tripped work budget (which is
// delivered through context cancellation).
func (m *Metrics) noteCancellation() {
	if m == nil {
		return
	}
	m.cancellations.Add(1)
}

// Cancellations returns how many solves were aborted by their context.
func (m *Metrics) Cancellations() int64 {
	if m == nil {
		return 0
	}
	return m.cancellations.Load()
}

// noteRecoveredPanic records one panic recovered from a solver worker
// or a supervisor rung and converted into a typed error.
func (m *Metrics) noteRecoveredPanic() {
	if m == nil {
		return
	}
	m.recoveredPanics.Add(1)
}

// RecoveredPanics returns how many panics the solve pipeline recovered
// and converted into errors instead of crashing the process.
func (m *Metrics) RecoveredPanics() int64 {
	if m == nil {
		return 0
	}
	return m.recoveredPanics.Load()
}

// noteLatticeOverflow records one kernel resolution whose candidate
// span exceeded the hypercube lattice ceiling, forcing the dense
// O(n·c²) fallback (see ErrLatticeTooLarge).
func (m *Metrics) noteLatticeOverflow() {
	if m == nil {
		return
	}
	m.latticeOverflows.Add(1)
}

// LatticeOverflows returns how many solves had an additive-capable
// model whose candidate span exceeded the 20-bit hypercube ceiling and
// silently ran on the dense all-pairs kernel instead. A non-zero count
// is the "why did this solve get slow" diagnostic SolvePartitioned
// exists to fix; see ErrLatticeTooLarge.
func (m *Metrics) LatticeOverflows() int64 {
	if m == nil {
		return 0
	}
	return m.latticeOverflows.Load()
}
