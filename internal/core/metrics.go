package core

import (
	"sync/atomic"
	"time"
)

// Metrics collects lightweight solver instrumentation. A Metrics value
// is shared by pointer: copying a Problem (as the solvers and the
// experiment harness do freely) keeps accumulating into the same
// counters, and every method is safe for concurrent use. All methods
// tolerate a nil receiver, so instrumentation stays strictly opt-in.
type Metrics struct {
	matrixBuilds     atomic.Int64
	matrixBuildNanos atomic.Int64
}

// noteMatrixBuild records one dense cost-table evaluation.
func (m *Metrics) noteMatrixBuild(d time.Duration) {
	if m == nil {
		return
	}
	m.matrixBuilds.Add(1)
	m.matrixBuildNanos.Add(int64(d))
}

// MatrixBuilds returns how many dense EXEC/TRANS cost tables were
// evaluated against this problem's model.
func (m *Metrics) MatrixBuilds() int64 {
	if m == nil {
		return 0
	}
	return m.matrixBuilds.Load()
}

// MatrixBuildTime returns the total wall time spent evaluating dense
// cost tables. Concurrent builds accumulate their individual durations,
// so the sum can exceed elapsed wall time on multicore runs.
func (m *Metrics) MatrixBuildTime() time.Duration {
	if m == nil {
		return 0
	}
	return time.Duration(m.matrixBuildNanos.Load())
}
