package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"dyndesign/internal/obs"
)

// changeEpsilon is a tie-breaking perturbation added to every
// inter-configuration edge inside the graph solvers: among equal-cost
// design sequences, the one with fewer changes wins. It is orders of
// magnitude below any meaningful page-cost difference and never appears
// in reported costs (solutions recompute their cost from the model).
const changeEpsilon = 1e-9

// matrices precomputes the cost terms a graph solver needs: EXEC per
// (stage, configuration), the endpoint transitions, and — for the dense
// kernel only — TRANS between every configuration pair. Solvers then
// run on dense float64 tables.
type matrices struct {
	configs []Config
	index   map[Config]int32 // configuration -> row/column index
	exec    [][]float64      // [stage][cfg], verbatim model EXEC
	// trans holds the raw model TRANS values (diagonal 0). Kernels add
	// the changeEpsilon tie-break at use time — fl(raw + ε) is bit for
	// bit the value the table used to bake in — which keeps the cells
	// verbatim model outputs for cost replays. nil when the hypercube
	// kernel made the all-pairs table unnecessary.
	trans      [][]float64
	initTrans  []float64 // TRANS(C0, cfg) + ε/2 (0 at C0)
	finalTrans []float64 // TRANS(cfg, Final) + ε/2; nil when unconstrained
}

// tables returns the solver's cost tables, through the attached
// SolveCache when the problem has one and directly from the model
// otherwise. needTrans asks for the all-pairs TRANS table, which only
// the dense kernel consumes.
func (p *Problem) tables(ctx context.Context, configs []Config, needTrans bool) (*matrices, error) {
	if p.Cache != nil {
		return p.Cache.tables(ctx, p, configs, needTrans)
	}
	return p.buildMatrices(ctx, configs, needTrans)
}

// buildMatrices evaluates the cost model into dense tables over the
// given configuration list. The EXEC table (one what-if costing per
// stage × configuration — the advisor's dominant expense) is filled by
// a bounded worker pool, as is the TRANS table; each worker owns whole
// rows, so the result is bit-identical to the serial evaluation. The
// build is the solvers' dominant cancellation point: the pool checks the
// context between rows, and an aborted build returns the cancellation
// cause (or the *PanicError of a panicking model) instead of tables.
//
// With needTrans false (the hypercube kernel), the O(m²) all-pairs
// TRANS evaluation is skipped entirely — the saving that makes wide
// candidate lattices affordable.
func (p *Problem) buildMatrices(ctx context.Context, configs []Config, needTrans bool) (_ *matrices, err error) {
	start := time.Now()
	sp := p.Tracer.Start(SpanMatrixBuild)
	defer func() {
		sp.End(obs.Int("stages", int64(p.Stages)), obs.Int("configs", int64(len(configs))),
			obs.Bool("trans", needTrans), obs.Bool("ok", err == nil))
	}()
	workers := p.workers()
	m := &matrices{configs: configs}
	m.index = make(map[Config]int32, len(configs))
	for j, c := range configs {
		m.index[c] = int32(j)
	}
	m.exec = make([][]float64, p.Stages)
	// The enabled check is hoisted out of the row closure: with the
	// tracer off, the per-row cost is one branch on a captured bool
	// instead of span construction, which matters at n rows per build.
	traced := p.Tracer.Enabled()
	// One capability check serves every row: a batch-aware model costs
	// the whole configuration frontier of a stage in one call (the
	// layered DP, ranking sweep, and hypercube kernel all consume this
	// table, so they inherit the batched fill). Batched and scalar
	// evaluation are bit-identical by the BatchCostModel contract.
	bm, batched := p.Model.(BatchCostModel)
	err = parallelFor(ctx, workers, p.Stages, func(i int) {
		var rowSpan obs.Span
		if traced {
			rowSpan = p.Tracer.Start(SpanMatrixExecStage)
		}
		row := make([]float64, len(configs))
		if batched {
			row = bm.BatchExec(i, configs, row)
		} else {
			for j, c := range configs {
				row[j] = p.Model.Exec(i, c)
			}
		}
		m.exec[i] = row
		if traced {
			rowSpan.End(obs.Int("stage", int64(i)))
		}
	})
	if err != nil {
		return nil, err
	}
	if needTrans {
		m.trans, err = p.buildTransRows(ctx, configs)
		if err != nil {
			return nil, err
		}
	}
	m.initTrans = make([]float64, len(configs))
	for j, c := range configs {
		if c == p.Initial {
			continue
		}
		// Endpoint transitions get half the perturbation so equal-cost
		// ties prefer changing at the (free) endpoints over interior
		// changes that count against k.
		m.initTrans[j] = p.Model.Trans(p.Initial, c) + changeEpsilon/2
	}
	if p.Final != nil {
		m.finalTrans = make([]float64, len(configs))
		for j, c := range configs {
			if c == *p.Final {
				continue
			}
			m.finalTrans[j] = p.Model.Trans(c, *p.Final) + changeEpsilon/2
		}
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	p.Metrics.noteMatrixBuild(time.Since(start))
	return m, nil
}

// buildTransRows evaluates the raw all-pairs TRANS table over the
// worker pool (row ownership keeps it bit-identical to serial).
func (p *Problem) buildTransRows(ctx context.Context, configs []Config) ([][]float64, error) {
	trans := make([][]float64, len(configs))
	err := parallelFor(ctx, p.workers(), len(configs), func(i int) {
		from := configs[i]
		row := make([]float64, len(configs))
		for j, to := range configs {
			if i != j {
				row[j] = p.Model.Trans(from, to)
			}
		}
		trans[i] = row
	})
	if err != nil {
		return nil, err
	}
	return trans, nil
}

// BuildCostTables forces one full evaluation of the dense EXEC/TRANS
// cost tables over the usable candidate configurations — the
// preprocessing the dense-kernel graph solvers perform implicitly. It is
// exposed so benchmarks and diagnostics can measure the costing layer in
// isolation (it deliberately bypasses any attached SolveCache); regular
// callers just Solve.
func (p *Problem) BuildCostTables(ctx context.Context) error {
	if err := p.Validate(); err != nil {
		return err
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return err
	}
	_, err = p.buildMatrices(ctx, configs, true)
	return err
}

// SolveUnconstrained finds the optimal dynamic physical design with no
// change bound: the shortest path through the sequence graph of Agrawal,
// Chu and Narasayya. The sequence graph is a DAG with one node per
// (stage, configuration); the shortest path is computed stage by stage —
// O(n·m²) with the dense kernel, O(n·m'·2^m') with the hypercube kernel
// over m' underlying structures (see DESIGN.md §12). The stage sweep
// checks the context between stages, so cancellation latency is bounded
// by one relaxation.
func SolveUnconstrained(ctx context.Context, p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return nil, err
	}
	ch := resolveKernel(p, configs)
	m, err := p.tables(ctx, configs, ch.needTrans())
	if err != nil {
		return nil, err
	}
	kern := ch.kernel(m)
	var scr *latticeScratch
	if kern.needsScratch() {
		scr = kern.newScratch()
	}
	nc := len(configs)
	dp := p.Tracer.Start(SpanSeqgraphDP)

	cost := make([]float64, nc)
	for j := 0; j < nc; j++ {
		cost[j] = m.initTrans[j] + m.exec[0][j]
	}
	// One backing array serves every stage's parent row; reslicing it
	// replaces the per-stage allocations the DP used to make.
	parents := make([][]int32, p.Stages)
	if p.Stages > 1 {
		backing := make([]int32, (p.Stages-1)*nc)
		for i := 1; i < p.Stages; i++ {
			parents[i] = backing[(i-1)*nc : i*nc : i*nc]
		}
	}
	next := make([]float64, nc)
	for i := 1; i < p.Stages; i++ {
		if err := ctxErr(ctx); err != nil {
			dp.End(obs.Int("stages", int64(i)), obs.Int("configs", int64(nc)),
				obs.String("kernel", kern.name()), obs.Bool("ok", false))
			return nil, err
		}
		kern.relaxFull(cost, next, parents[i], scr)
		for j := 0; j < nc; j++ {
			next[j] += m.exec[i][j]
		}
		cost, next = next, cost
	}
	dp.End(obs.Int("stages", int64(p.Stages)), obs.Int("configs", int64(nc)),
		obs.String("kernel", kern.name()), obs.Bool("ok", true))

	bestEnd := -1
	bestCost := math.Inf(1)
	for j := 0; j < nc; j++ {
		v := cost[j]
		if m.finalTrans != nil {
			v += m.finalTrans[j]
		}
		if v < bestCost {
			bestCost = v
			bestEnd = j
		}
	}
	if bestEnd < 0 {
		return nil, fmt.Errorf("core: unconstrained problem has no feasible design")
	}
	designs := make([]Config, p.Stages)
	j := int32(bestEnd)
	for i := p.Stages - 1; i >= 0; i-- {
		designs[i] = configs[j]
		if i > 0 {
			j = parents[i][j]
		}
	}
	return p.NewSolution(designs), nil
}
