package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"dyndesign/internal/obs"
)

// changeEpsilon is a tie-breaking perturbation added to every
// inter-configuration edge inside the graph solvers: among equal-cost
// design sequences, the one with fewer changes wins. It is orders of
// magnitude below any meaningful page-cost difference and never appears
// in reported costs (solutions recompute their cost from the model).
const changeEpsilon = 1e-9

// matrices precomputes every cost term a graph solver needs: EXEC per
// (stage, configuration), TRANS between every configuration pair, and
// the endpoint transitions. Solvers then run on dense float64 tables.
type matrices struct {
	configs    []Config
	exec       [][]float64 // [stage][cfg]
	trans      [][]float64 // [fromCfg][toCfg]
	initTrans  []float64   // TRANS(C0, cfg)
	finalTrans []float64   // TRANS(cfg, Final); nil when unconstrained
}

// buildMatrices evaluates the cost model into dense tables over the
// given configuration list. The EXEC table (one what-if costing per
// stage × configuration — the advisor's dominant expense) is filled by
// a bounded worker pool, as is the TRANS table; each worker owns whole
// rows, so the result is bit-identical to the serial evaluation. The
// build is the solvers' dominant cancellation point: the pool checks the
// context between rows, and an aborted build returns the cancellation
// cause (or the *PanicError of a panicking model) instead of tables.
func (p *Problem) buildMatrices(ctx context.Context, configs []Config) (_ *matrices, err error) {
	start := time.Now()
	sp := p.Tracer.Start(SpanMatrixBuild)
	defer func() {
		sp.End(obs.Int("stages", int64(p.Stages)), obs.Int("configs", int64(len(configs))),
			obs.Bool("ok", err == nil))
	}()
	workers := p.workers()
	m := &matrices{configs: configs}
	m.exec = make([][]float64, p.Stages)
	// The enabled check is hoisted out of the row closure: with the
	// tracer off, the per-row cost is one branch on a captured bool
	// instead of span construction, which matters at n rows per build.
	traced := p.Tracer.Enabled()
	err = parallelFor(ctx, workers, p.Stages, func(i int) {
		var rowSpan obs.Span
		if traced {
			rowSpan = p.Tracer.Start(SpanMatrixExecStage)
		}
		row := make([]float64, len(configs))
		for j, c := range configs {
			row[j] = p.Model.Exec(i, c)
		}
		m.exec[i] = row
		if traced {
			rowSpan.End(obs.Int("stage", int64(i)))
		}
	})
	if err != nil {
		return nil, err
	}
	m.trans = make([][]float64, len(configs))
	err = parallelFor(ctx, workers, len(configs), func(i int) {
		from := configs[i]
		row := make([]float64, len(configs))
		for j, to := range configs {
			if i == j {
				row[j] = 0
				continue
			}
			row[j] = p.Model.Trans(from, to) + changeEpsilon
		}
		m.trans[i] = row
	})
	if err != nil {
		return nil, err
	}
	m.initTrans = make([]float64, len(configs))
	for j, c := range configs {
		if c == p.Initial {
			continue
		}
		// Endpoint transitions get half the perturbation so equal-cost
		// ties prefer changing at the (free) endpoints over interior
		// changes that count against k.
		m.initTrans[j] = p.Model.Trans(p.Initial, c) + changeEpsilon/2
	}
	if p.Final != nil {
		m.finalTrans = make([]float64, len(configs))
		for j, c := range configs {
			if c == *p.Final {
				continue
			}
			m.finalTrans[j] = p.Model.Trans(c, *p.Final) + changeEpsilon/2
		}
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	p.Metrics.noteMatrixBuild(time.Since(start))
	return m, nil
}

// BuildCostTables forces one full evaluation of the dense EXEC/TRANS
// cost tables over the usable candidate configurations — the
// preprocessing every graph solver performs implicitly. It is exposed
// so benchmarks and diagnostics can measure the costing layer in
// isolation; regular callers just Solve.
func (p *Problem) BuildCostTables(ctx context.Context) error {
	if err := p.Validate(); err != nil {
		return err
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return err
	}
	_, err = p.buildMatrices(ctx, configs)
	return err
}

// SolveUnconstrained finds the optimal dynamic physical design with no
// change bound: the shortest path through the sequence graph of Agrawal,
// Chu and Narasayya. The sequence graph is a DAG with one node per
// (stage, configuration); the shortest path is computed stage by stage
// in O(n·m²) for m candidate configurations. The stage sweep checks the
// context between stages, so cancellation latency is bounded by one
// O(m²) relaxation.
func SolveUnconstrained(ctx context.Context, p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return nil, err
	}
	m, err := p.buildMatrices(ctx, configs)
	if err != nil {
		return nil, err
	}
	nc := len(configs)
	dp := p.Tracer.Start(SpanSeqgraphDP)

	cost := make([]float64, nc)
	for j := 0; j < nc; j++ {
		cost[j] = m.initTrans[j] + m.exec[0][j]
	}
	parents := make([][]int32, p.Stages)
	next := make([]float64, nc)
	for i := 1; i < p.Stages; i++ {
		if err := ctxErr(ctx); err != nil {
			dp.End(obs.Int("stages", int64(i)), obs.Int("configs", int64(nc)), obs.Bool("ok", false))
			return nil, err
		}
		parent := make([]int32, nc)
		for j := 0; j < nc; j++ {
			best := math.Inf(1)
			bestFrom := int32(-1)
			for f := 0; f < nc; f++ {
				if v := cost[f] + m.trans[f][j]; v < best {
					best = v
					bestFrom = int32(f)
				}
			}
			next[j] = best + m.exec[i][j]
			parent[j] = bestFrom
		}
		cost, next = next, cost
		parents[i] = parent
	}
	dp.End(obs.Int("stages", int64(p.Stages)), obs.Int("configs", int64(nc)), obs.Bool("ok", true))

	bestEnd := -1
	bestCost := math.Inf(1)
	for j := 0; j < nc; j++ {
		v := cost[j]
		if m.finalTrans != nil {
			v += m.finalTrans[j]
		}
		if v < bestCost {
			bestCost = v
			bestEnd = j
		}
	}
	if bestEnd < 0 {
		return nil, fmt.Errorf("core: unconstrained problem has no feasible design")
	}
	designs := make([]Config, p.Stages)
	j := int32(bestEnd)
	for i := p.Stages - 1; i >= 0; i-- {
		designs[i] = configs[j]
		if i > 0 {
			j = parents[i][j]
		}
	}
	return p.NewSolution(designs), nil
}
