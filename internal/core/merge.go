package core

import (
	"context"
	"fmt"
	"math"

	"dyndesign/internal/obs"
)

// SolveMerge implements sequential design merging (§4.2): starting from
// a solution to the (usually unconstrained) problem, it repeatedly picks
// the adjacent pair of distinct configurations whose replacement by a
// single configuration has the smallest penalty
//
//	p = [TRANS(C_{i-1}, C') + EXEC(S_i ∪ S_{i+1}, C') + TRANS(C', C_{i+2})]
//	  - [TRANS(C_{i-1}, C_i) + EXEC(S_i, C_i) + TRANS(C_i, C_{i+1})
//	     + EXEC(S_{i+1}, C_{i+1}) + TRANS(C_{i+1}, C_{i+2})]
//
// and applies it, until the change bound K is met. Each step removes at
// least one change (two, when C' coalesces with a neighbour). The result
// is feasible but not guaranteed optimal. It returns the refined
// solution and the number of merge steps taken.
func SolveMerge(ctx context.Context, p *Problem, initial *Solution) (*Solution, int, error) {
	return SolveMergeOpts(ctx, p, initial, MergeOptions{MemoizeSegments: true})
}

// MergeOptions configures SolveMergeOpts.
type MergeOptions struct {
	// MemoizeSegments, when true, precomputes per-configuration EXEC
	// prefix sums so each penalty evaluation is O(1) — an improvement
	// over the paper, whose O(2^m(l²−k²)) complexity assumes segment
	// costs are re-summed on every evaluation. Set false for the
	// faithful cost profile (used to regenerate Figure 4 and by the
	// ablation benchmarks that quantify the speedup).
	MemoizeSegments bool
}

// SolveMergeOpts is SolveMerge with explicit options. The merge loop
// checks the context once per candidate pair, so cancellation latency
// is bounded by one O(m) penalty scan even in the faithful
// (un-memoized) mode where each scan re-sums segment costs.
func SolveMergeOpts(ctx context.Context, p *Problem, initial *Solution, opts MergeOptions) (*Solution, int, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if len(initial.Designs) != p.Stages {
		return nil, 0, fmt.Errorf("core: initial solution has %d designs for %d stages", len(initial.Designs), p.Stages)
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return nil, 0, err
	}
	if p.K == Unconstrained {
		return p.NewSolution(initial.Designs), 0, nil
	}

	// With memoization on, prefix[c][i] holds the sum of
	// EXEC(stage, configs[c]) for stage < i so segment sums are O(1).
	// Without it, every penalty evaluation consults the cost model per
	// stage of the merged segment — the cost profile the paper's
	// O(2^m(l²−k²)) complexity assumes.
	// Rows are independent, so they are filled by a bounded worker
	// pool; each row is summed serially left to right, keeping the
	// floating-point association — and hence the sums — bit-identical
	// to the serial build.
	var prefix [][]float64
	if opts.MemoizeSegments {
		prefix = make([][]float64, len(configs))
		err := parallelFor(ctx, p.workers(), len(configs), func(ci int) {
			cfg := configs[ci]
			row := make([]float64, p.Stages+1)
			for i := 0; i < p.Stages; i++ {
				row[i+1] = row[i] + p.Model.Exec(i, cfg)
			}
			prefix[ci] = row
		})
		if err != nil {
			return nil, 0, err
		}
	}

	// The design sequence as runs of equal configurations.
	type run struct {
		cfg        Config
		start, end int // stage range [start, end)
	}
	var runs []run
	for i := 0; i < p.Stages; i++ {
		c := initial.Designs[i]
		if len(runs) > 0 && runs[len(runs)-1].cfg == c {
			runs[len(runs)-1].end = i + 1
			continue
		}
		runs = append(runs, run{cfg: c, start: i, end: i + 1})
	}

	cfgIndex := make(map[Config]int, len(configs))
	for i, c := range configs {
		cfgIndex[c] = i
	}
	execOf := func(c Config, lo, hi int) float64 {
		// Configurations outside the usable list (an initial solution
		// from a different space bound) fall through to the model too.
		if ci, ok := cfgIndex[c]; ok && prefix != nil {
			return prefix[ci][hi] - prefix[ci][lo]
		}
		total := 0.0
		for i := lo; i < hi; i++ {
			total += p.Model.Exec(i, c)
		}
		return total
	}

	changes := func() int {
		n := len(runs) - 1
		if p.Policy == CountAll && runs[0].cfg != p.Initial {
			n++
		}
		return n
	}

	steps := 0
	for changes() > p.K {
		step := p.Tracer.Start(SpanMergeStep)
		if len(runs) == 1 {
			// Only possible under CountAll with K == 0: the whole
			// sequence must stay on the initial configuration — which
			// is only feasible when that configuration is itself in
			// the usable (space-bound-filtered) candidate set.
			if _, ok := cfgIndex[p.Initial]; !ok {
				step.End(obs.Int("step", int64(steps)), obs.Bool("ok", false))
				return nil, steps, fmt.Errorf(
					"core: no design with at most %d changes exists under %s: the initial configuration is outside the usable candidate set",
					p.K, p.Policy)
			}
			runs[0].cfg = p.Initial
			step.End(obs.Int("step", int64(steps)), obs.Bool("ok", true))
			break
		}
		bestPenalty := math.Inf(1)
		bestPair := -1
		var bestCfg Config
		for r := 0; r+1 < len(runs); r++ {
			if err := ctxErr(ctx); err != nil {
				step.End(obs.Int("step", int64(steps)), obs.Bool("ok", false))
				return nil, steps, err
			}
			left, right := runs[r], runs[r+1]
			prev := p.Initial
			if r > 0 {
				prev = runs[r-1].cfg
			}
			hasNext := false
			var next Config
			if r+2 < len(runs) {
				next, hasNext = runs[r+2].cfg, true
			} else if p.Final != nil {
				next, hasNext = *p.Final, true
			}
			oldCost := p.Model.Trans(prev, left.cfg) +
				execOf(left.cfg, left.start, left.end) +
				p.Model.Trans(left.cfg, right.cfg) +
				execOf(right.cfg, right.start, right.end)
			if hasNext {
				oldCost += p.Model.Trans(right.cfg, next)
			}
			for _, cand := range configs {
				newCost := p.Model.Trans(prev, cand) +
					execOf(cand, left.start, right.end)
				if hasNext {
					newCost += p.Model.Trans(cand, next)
				}
				if penalty := newCost - oldCost; penalty < bestPenalty {
					bestPenalty = penalty
					bestPair = r
					bestCfg = cand
				}
			}
		}
		if bestPair < 0 {
			step.End(obs.Int("step", int64(steps)), obs.Bool("ok", false))
			return nil, steps, fmt.Errorf("core: merging stalled with %d changes (bound %d)", changes(), p.K)
		}
		// Replace the pair with the single best configuration and
		// coalesce with equal neighbours.
		merged := run{cfg: bestCfg, start: runs[bestPair].start, end: runs[bestPair+1].end}
		runs = append(runs[:bestPair], append([]run{merged}, runs[bestPair+2:]...)...)
		for i := len(runs) - 1; i > 0; i-- {
			if runs[i].cfg == runs[i-1].cfg {
				runs[i-1].end = runs[i].end
				runs = append(runs[:i], runs[i+1:]...)
			}
		}
		steps++
		step.End(obs.Int("step", int64(steps)), obs.Int("runs", int64(len(runs))), obs.Bool("ok", true))
	}

	designs := make([]Config, p.Stages)
	for _, r := range runs {
		for i := r.start; i < r.end; i++ {
			designs[i] = r.cfg
		}
	}
	return p.NewSolution(designs), steps, nil
}

// SolveMergeFromUnconstrained runs sequential merging seeded with the
// unconstrained sequence-graph optimum, the way the paper's §4.2
// describes and its Figure 4 measures.
func SolveMergeFromUnconstrained(ctx context.Context, p *Problem) (*Solution, int, error) {
	unconstrained := *p
	unconstrained.K = Unconstrained
	seed, err := SolveUnconstrained(ctx, &unconstrained)
	if err != nil {
		return nil, 0, err
	}
	return SolveMerge(ctx, p, seed)
}
