package core

// Span names emitted by the solvers — the core half of the taxonomy in
// DESIGN.md §9. Every span is emitted through Problem.Tracer, so with
// the default nil tracer each site costs two nil checks and nothing
// else.
const (
	// SpanSolve covers one Solve dispatch end to end (attrs: strategy,
	// ok). It is the root span of a solve: everything below nests
	// inside its wall time.
	SpanSolve = "solve"
	// SpanMatrixBuild covers one dense EXEC/TRANS cost-table build
	// (attrs: stages, configs, ok).
	SpanMatrixBuild = "matrix.build"
	// SpanMatrixExecStage covers one stage's EXEC row, emitted from
	// inside the worker pool (attrs: stage) — the concurrent-emission
	// hot site.
	SpanMatrixExecStage = "matrix.exec_stage"
	// SpanSeqgraphDP covers the unconstrained sequence-graph DP loop
	// (attrs: stages, configs).
	SpanSeqgraphDP = "seqgraph.dp"
	// SpanKAwareSweep covers one k-aware DP layer sweep — one stage of
	// the layered relaxation (attrs: stage, layers, configs).
	SpanKAwareSweep = "kaware.sweep"
	// SpanGreedyReduce covers GREEDY-SEQ candidate reduction (attrs:
	// reduced).
	SpanGreedyReduce = "greedyseq.reduce"
	// SpanRankingSweep covers the ranking solver's backward cost-to-go
	// sweep (attrs: stages, configs).
	SpanRankingSweep = "ranking.sweep"
	// SpanRankingExpand covers one batch of frontier expansions (at
	// most rankingCtxCheckInterval pops; attrs: expansions,
	// paths_ranked, frontier).
	SpanRankingExpand = "ranking.expand"
	// SpanMergeStep covers one sequential-merging iteration: the
	// penalty scan over adjacent pairs plus the applied merge (attrs:
	// step, runs).
	SpanMergeStep = "merge.step"
	// SpanResilientRung covers one attempted rung of the resilient
	// ladder, verification included (attrs: strategy, ok, class).
	SpanResilientRung = "resilient.rung"
	// SpanPartitionCluster covers the interaction-graph clustering and
	// cross-product check of a partitioned solve (attrs: components,
	// factored, configs).
	SpanPartitionCluster = "partition.cluster"
	// SpanPartitionComponent covers one component's solve — exact
	// layered DP or anytime beam (attrs: bits, configs, exact, ok).
	SpanPartitionComponent = "partition.component"
	// SpanPartitionRecombine covers the budget knapsack, the
	// synchronization repair pass, and the composed re-pricing (attrs:
	// components, ok, gap).
	SpanPartitionRecombine = "partition.recombine"
)
