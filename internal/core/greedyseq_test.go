package core

import (
	"math/rand"
	"testing"
)

// Regression test: GREEDY-SEQ's merged candidates (unions of consecutive
// per-stage bests) must never leave the problem's candidate space. An
// earlier version added unions unconditionally and "beat" the optimum on
// the paper's at-most-one-index space by holding two indexes at once.
func TestGreedySeqRespectsCandidateSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	m, _ := randomModel(rng, 10, 2)
	// Restricted space: empty, {0}, {1} — the union {0,1} is illegal.
	restricted := []Config{ConfigOf(), ConfigOf(0), ConfigOf(1)}
	p := &Problem{Stages: 10, Configs: restricted, Initial: 0, K: 2, Model: m}
	optimal, err := SolveKAware(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	sol, reduced, err := SolveGreedySeq(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range reduced {
		if c == ConfigOf(0, 1) {
			t.Fatal("reduced candidates contain the illegal union {0,1}")
		}
	}
	if err := p.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	if sol.Cost < optimal.Cost-1e-6 {
		t.Fatalf("greedy %f beats optimal %f on a restricted space", sol.Cost, optimal.Cost)
	}
}

// With an unrestricted space, the merged union candidates are admissible
// and must appear when consecutive bests differ.
func TestGreedySeqUsesUnionsWhenAllowed(t *testing.T) {
	// Two structures; stage 0 strongly favours {0}, stage 1 favours {1}.
	m := &tableModel{
		exec: [][]float64{
			{100, 1, 100, 50}, // configs 0..3 at stage 0
			{100, 100, 1, 50}, // stage 1
		},
		trans: [][]float64{
			{0, 10, 10, 10},
			{10, 0, 10, 10},
			{10, 10, 0, 10},
			{10, 10, 10, 0},
		},
		size: []float64{0, 1, 1, 2},
	}
	configs := []Config{0, 1, 2, 3}
	p := &Problem{Stages: 2, Configs: configs, Initial: 0, K: 0, Model: m}
	_, reduced, err := SolveGreedySeq(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range reduced {
		if c == ConfigOf(0, 1) {
			found = true
		}
	}
	if !found {
		t.Errorf("union candidate missing from reduced set %v", reduced)
	}
}
