package core

import (
	"context"
	"math"

	"dyndesign/internal/obs"
)

// SolveGreedySeq implements the GREEDY-SEQ-based heuristic of §4.1: the
// exponential candidate configuration space is first reduced to a small
// set — the best configuration for each statement considered in
// isolation, plus pairwise unions of consecutive distinct bests (the
// "merged" candidates of Agrawal et al.), the initial configuration, and
// the final one when constrained — and the k-aware sequence graph is
// then solved over the reduced set.
//
// The poster sketches rather than specifies the candidate generation; we
// follow the O(m·n) shape it states. The result is feasible but not
// guaranteed optimal. The reduced candidate list is returned alongside
// the solution for inspection.
func SolveGreedySeq(ctx context.Context, p *Problem) (*Solution, []Config, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return nil, nil, err
	}

	// The reduced set must stay inside the problem's usable candidate
	// space: a union of two candidates is only admissible when the
	// problem itself allows that configuration (the paper's experiments,
	// for example, restrict configurations to at most one index).
	allowed := make(map[Config]bool, len(configs))
	for _, c := range configs {
		allowed[c] = true
	}

	reduce := p.Tracer.Start(SpanGreedyReduce)

	// Per-stage best configuration by execution cost alone. Each stage
	// costs every candidate once, so the context check per stage bounds
	// cancellation latency by m what-if calls. A batch-aware model
	// costs the whole frontier in one call per stage, into one row
	// buffer reused across stages (the scan only needs the running
	// minimum, so the row is scratch, not state).
	bm, batched := p.Model.(BatchCostModel)
	var row []float64
	if batched {
		row = make([]float64, len(configs))
	}
	best := make([]Config, p.Stages)
	for i := 0; i < p.Stages; i++ {
		if err := ctxErr(ctx); err != nil {
			reduce.End(obs.Int("reduced", 0), obs.Bool("ok", false))
			return nil, nil, err
		}
		bc := configs[0]
		bv := math.Inf(1)
		if batched {
			row = bm.BatchExec(i, configs, row)
			for j, v := range row {
				if v < bv {
					bv = v
					bc = configs[j]
				}
			}
		} else {
			for _, c := range configs {
				if v := p.Model.Exec(i, c); v < bv {
					bv = v
					bc = c
				}
			}
		}
		best[i] = bc
	}

	// Reduced candidate set.
	seen := make(map[Config]bool)
	var reduced []Config
	add := func(c Config) {
		if !seen[c] && allowed[c] {
			seen[c] = true
			reduced = append(reduced, c)
		}
	}
	add(p.Initial)
	if p.Final != nil {
		add(*p.Final)
	}
	for i, c := range best {
		add(c)
		if i > 0 && best[i-1] != c {
			add(best[i-1] | c) // union of consecutive distinct bests
		}
	}

	reduce.End(obs.Int("reduced", int64(len(reduced))), obs.Bool("ok", true))

	sub := *p
	sub.Configs = reduced
	sol, err := SolveKAware(ctx, &sub)
	if err != nil {
		return nil, reduced, err
	}
	// Re-wrap against the original problem so cost/changes metadata use
	// the caller's problem (identical model, so values carry over).
	return p.NewSolution(sol.Designs), reduced, nil
}
