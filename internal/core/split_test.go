package core

import (
	"math/rand"
	"testing"
)

// TestSolutionCostSplit pins the Solution cost-attribution invariant:
// every strategy's solution carries EXEC and TRANS totals that sum —
// exactly, not within tolerance — to Cost, and each component matches
// an independent recomputation over the design sequence.
func TestSolutionCostSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model, configs := randomModel(rng, 12, 3)
	for _, k := range []int{0, 2, Unconstrained} {
		p := &Problem{
			Stages:  12,
			Configs: configs,
			K:       k,
			Policy:  FreeEndpoints,
			Model:   model,
		}
		f := ConfigOf()
		p.Final = &f
		for _, strat := range Strategies() {
			if k == 0 && (strat == StrategyRanking || strat == StrategyRankAndMerge) {
				// Unpruned ranking at k=0 can be slow; the split logic is
				// identical, so skip the expensive cells.
				continue
			}
			sol, err := Solve(bg, p, strat)
			if err != nil {
				t.Fatalf("k=%d %s: %v", k, strat, err)
			}
			if sol.ExecCost+sol.TransCost != sol.Cost {
				t.Errorf("k=%d %s: ExecCost %v + TransCost %v != Cost %v",
					k, strat, sol.ExecCost, sol.TransCost, sol.Cost)
			}
			var exec, trans float64
			prev := p.Initial
			for i, c := range sol.Designs {
				trans += model.Trans(prev, c)
				exec += model.Exec(i, c)
				prev = c
			}
			trans += model.Trans(prev, *p.Final)
			if exec != sol.ExecCost || trans != sol.TransCost {
				t.Errorf("k=%d %s: split (%v, %v) != recomputed (%v, %v)",
					k, strat, sol.ExecCost, sol.TransCost, exec, trans)
			}
		}
	}
}

// TestSweepKCurve pins the cost-of-constraint curve: monotone
// non-increasing in k, exact agreement with SolveKAware at every bound,
// and flat once k reaches the unconstrained optimum's change count.
func TestSweepKCurve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	model, configs := randomModel(rng, 10, 3)
	p := &Problem{
		Stages:  10,
		Configs: configs,
		K:       2,
		Policy:  FreeEndpoints,
		Model:   model,
	}
	const maxK = 9
	curve, err := SweepK(bg, p, maxK)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != maxK+1 {
		t.Fatalf("curve has %d points, want %d", len(curve), maxK+1)
	}
	unc := *p
	unc.K = Unconstrained
	opt, err := SolveUnconstrained(bg, &unc)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range curve {
		if pt.K != i {
			t.Fatalf("point %d reports K=%d", i, pt.K)
		}
		if !pt.Feasible {
			t.Fatalf("point k=%d infeasible under FreeEndpoints", i)
		}
		if pt.ExecCost+pt.TransCost != pt.Cost {
			t.Errorf("k=%d: split does not sum to cost", i)
		}
		if i > 0 && pt.Cost > curve[i-1].Cost {
			t.Errorf("curve not monotone: cost(%d)=%v > cost(%d)=%v",
				i, pt.Cost, i-1, curve[i-1].Cost)
		}
		if pt.Changes > pt.K {
			t.Errorf("k=%d: point uses %d changes", i, pt.Changes)
		}
		kp := *p
		kp.K = i
		sol, err := SolveKAware(bg, &kp)
		if err != nil {
			t.Fatalf("kaware k=%d: %v", i, err)
		}
		if !almostEqual(sol.Cost, pt.Cost) {
			t.Errorf("k=%d: sweep cost %v != kaware cost %v", i, pt.Cost, sol.Cost)
		}
		if pt.K >= opt.Changes && !almostEqual(pt.Cost, opt.Cost) {
			t.Errorf("k=%d >= l=%d but sweep cost %v != unconstrained %v",
				i, opt.Changes, pt.Cost, opt.Cost)
		}
	}
}

// TestSweepKInfeasiblePrefix pins infeasible-point reporting: under
// CountAll with an initial configuration outside the candidate list,
// k = 0 admits no design and the sweep marks the point instead of
// failing the whole curve.
func TestSweepKInfeasiblePrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model, configs := randomModel(rng, 6, 2)
	var usable []Config
	for _, c := range configs {
		if c != ConfigOf(0) {
			usable = append(usable, c)
		}
	}
	p := &Problem{
		Stages:  6,
		Configs: usable,
		Initial: ConfigOf(0), // valid TRANS source, not a candidate
		K:       1,
		Policy:  CountAll,
		Model:   model,
	}
	curve, err := SweepK(bg, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if curve[0].Feasible {
		t.Error("k=0 reported feasible with the initial design unusable under CountAll")
	}
	for _, pt := range curve[1:] {
		if !pt.Feasible {
			t.Errorf("k=%d reported infeasible", pt.K)
		}
	}
}
