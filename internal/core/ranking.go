package core

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"dyndesign/internal/obs"
)

// ErrRankingBudget is the typed error surfaced when shortest-path
// ranking exhausts its expansion budget before a feasible design
// appears. Callers that can degrade gracefully (SolveRankAndMerge)
// check RankingResult.Exhausted instead; everything that must produce a
// solution or fail (Solve, the advisor's Recommend) returns an error
// wrapping this one, so callers can errors.Is on it rather than risk a
// nil-solution dereference.
var ErrRankingBudget = errors.New("core: ranking expansion budget exhausted before a feasible design appeared")

// RankingOptions configures SolveRanking.
type RankingOptions struct {
	// MaxExpansions bounds the number of nodes popped from the frontier
	// before giving up (0 means DefaultRankingBudget). The paper notes
	// the worst case of path ranking "can be quite bad, particularly for
	// small k"; the budget turns that into a detectable outcome instead
	// of a hang.
	MaxExpansions int
	// Prune, when true, discards partial paths that already exceed the
	// change bound. This is the natural improvement over faithful path
	// ranking (which enumerates every path in cost order, feasible or
	// not) and is measured against it in the ablation benchmarks.
	Prune bool
}

// DefaultRankingBudget is the default expansion budget.
const DefaultRankingBudget = 5_000_000

// parallelSweepMinConfigs is the candidate-set size from which the
// backward cost-to-go sweep fans out per stage; below it the serial
// loop is faster than scheduling workers.
const parallelSweepMinConfigs = 32

// rankingCtxCheckInterval is how many frontier expansions the ranking
// enumeration performs between context checks: frequent enough that
// cancellation lands within microseconds, rare enough that the check is
// free relative to the heap work.
const rankingCtxCheckInterval = 1024

// RankingResult reports the outcome of SolveRanking.
type RankingResult struct {
	// Solution is the optimal constrained design, nil when the budget
	// was exhausted first.
	Solution *Solution
	// PathsRanked counts the complete paths generated in cost order,
	// including the returned one.
	PathsRanked int
	// Expansions counts frontier pops.
	Expansions int
	// Exhausted is true when the budget ran out before a feasible path
	// appeared.
	Exhausted bool
}

// Err returns an error wrapping ErrRankingBudget when the ranking ended
// without a solution because its expansion budget ran out, and nil
// otherwise. Callers that cannot tolerate a nil Solution should check
// it instead of inspecting the flags by hand.
func (r *RankingResult) Err() error {
	if r.Exhausted && r.Solution == nil {
		return fmt.Errorf("%w (%d expansions, %d complete paths ranked)",
			ErrRankingBudget, r.Expansions, r.PathsRanked)
	}
	return nil
}

// pathNode is one node of the path tree: a partial design sequence
// represented by parent links.
type pathNode struct {
	stage   int
	cfg     int32
	changes int32
	g       float64 // cost of the partial path
	f       float64 // g + exact cost-to-go
	parent  *pathNode
}

type pathHeap []*pathNode

func (h pathHeap) Len() int           { return len(h) }
func (h pathHeap) Less(i, j int) bool { return h[i].f < h[j].f }
func (h pathHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x any)        { *h = append(*h, x.(*pathNode)) }
func (h *pathHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// SolveRanking solves the constrained problem by shortest-path ranking
// (§5): complete design sequences are generated in ascending order of
// sequence execution cost, and the first one with at most K changes is
// returned — it is optimal, because every sequence generated before it
// was infeasible and every later one costs at least as much.
//
// The ranking is realized as best-first search over the path tree of the
// sequence graph with an exact cost-to-go heuristic (computed by a
// backward sweep), which pops complete paths in exactly ascending cost —
// equivalent in output order to the path-deletion ranking algorithms the
// paper cites, without materializing modified graphs.
//
// The enumeration checks the context every rankingCtxCheckInterval
// frontier pops, so even a ranking that would blow through millions of
// expansions stops promptly on cancellation.
func SolveRanking(ctx context.Context, p *Problem, opts RankingOptions) (*RankingResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.K == Unconstrained {
		sol, err := SolveUnconstrained(ctx, p)
		if err != nil {
			return nil, err
		}
		return &RankingResult{Solution: sol, PathsRanked: 1, Expansions: p.Stages}, nil
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return nil, err
	}
	ch := resolveKernel(p, configs)
	m, err := p.tables(ctx, configs, ch.needTrans())
	if err != nil {
		return nil, err
	}
	kern := ch.kernel(m)
	var scr *latticeScratch
	if kern.needsScratch() {
		scr = kern.newScratch()
	}
	nc := len(configs)
	budget := opts.MaxExpansions
	if budget <= 0 {
		budget = DefaultRankingBudget
	}

	// Exact cost-to-go: h[i][c] is the cheapest completion after
	// executing stage i under configs[c] (including the final
	// transition when constrained). Stages depend on each other, but
	// within a stage the kernel's backward relaxation is independent per
	// cell, so the dense kernel sweeps wide candidate sets with a worker
	// pool; narrow ones (the paper's 7 configurations) stay on the
	// serial loop, where goroutine overhead would dwarf the O(nc²)
	// arithmetic. The hypercube kernel's sweep is one serial lattice
	// pass, already cheaper than the fan-out.
	sweep := p.Tracer.Start(SpanRankingSweep)
	h := make([][]float64, p.Stages)
	last := make([]float64, nc)
	if m.finalTrans != nil {
		copy(last, m.finalTrans)
	}
	h[p.Stages-1] = last
	sweepWorkers := 1
	if nc >= parallelSweepMinConfigs {
		sweepWorkers = p.workers()
	}
	for i := p.Stages - 2; i >= 0; i-- {
		row := make([]float64, nc)
		if err := kern.relaxBack(ctx, sweepWorkers, m.exec[i+1], h[i+1], row, scr); err != nil {
			sweep.End(obs.Int("stages", int64(p.Stages)), obs.Int("configs", int64(nc)),
				obs.String("kernel", kern.name()), obs.Bool("ok", false))
			return nil, err
		}
		h[i] = row
	}
	sweep.End(obs.Int("stages", int64(p.Stages)), obs.Int("configs", int64(nc)),
		obs.String("kernel", kern.name()), obs.Bool("ok", true))

	frontier := &pathHeap{}
	for c := 0; c < nc; c++ {
		changes := int32(0)
		if p.Policy == CountAll && configs[c] != p.Initial {
			changes = 1
		}
		if opts.Prune && int(changes) > p.K {
			continue
		}
		g := m.initTrans[c] + m.exec[0][c]
		heap.Push(frontier, &pathNode{stage: 0, cfg: int32(c), changes: changes, g: g, f: g + h[0][c]})
	}

	res := &RankingResult{}
	// The enumeration emits one span per rankingCtxCheckInterval frontier
	// pops — batching keeps the trace proportional to work done, not to
	// node count — with the running totals attached to each batch.
	batch := p.Tracer.Start(SpanRankingExpand)
	batchStart := 0
	endBatch := func() {
		batch.End(obs.Int("expansions", int64(res.Expansions-batchStart)),
			obs.Int("paths_ranked", int64(res.PathsRanked)),
			obs.Int("frontier", int64(frontier.Len())))
	}
	defer endBatch()
	for frontier.Len() > 0 {
		if res.Expansions >= budget {
			res.Exhausted = true
			return res, nil
		}
		if res.Expansions%rankingCtxCheckInterval == 0 {
			if res.Expansions != batchStart {
				endBatch()
				batch = p.Tracer.Start(SpanRankingExpand)
				batchStart = res.Expansions
			}
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		node := heap.Pop(frontier).(*pathNode)
		res.Expansions++
		if node.stage == p.Stages-1 {
			res.PathsRanked++
			if int(node.changes) <= p.K {
				designs := make([]Config, p.Stages)
				for n := node; n != nil; n = n.parent {
					designs[n.stage] = configs[n.cfg]
				}
				res.Solution = p.NewSolution(designs)
				return res, nil
			}
			continue
		}
		next := node.stage + 1
		for c := 0; c < nc; c++ {
			changes := node.changes
			if int32(c) != node.cfg {
				changes++
			}
			if opts.Prune && int(changes) > p.K {
				continue
			}
			g := node.g + kern.transCost(int(node.cfg), c) + m.exec[next][c]
			heap.Push(frontier, &pathNode{
				stage: next, cfg: int32(c), changes: changes,
				g: g, f: g + h[next][c], parent: node,
			})
		}
	}
	return nil, fmt.Errorf("core: ranking exhausted the path space without a feasible design (K=%d)", p.K)
}

// rankingSolution runs SolveRanking and requires a solution: budget
// exhaustion becomes a typed error (ErrRankingBudget) instead of a nil
// solution. Solve's StrategyRanking branch is this.
func rankingSolution(ctx context.Context, p *Problem, opts RankingOptions) (*Solution, error) {
	res, err := SolveRanking(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	return res.Solution, nil
}

// SolveRankAndMerge combines the two techniques the way §5 suggests:
// rank paths within a budget; if a feasible path appears it is optimal
// and returned directly, otherwise the lowest-cost complete path seen is
// used as the initial sequence for sequential merging (falling back to
// the unconstrained optimum when the budget produced no complete path).
func SolveRankAndMerge(ctx context.Context, p *Problem, opts RankingOptions) (*Solution, error) {
	res, err := SolveRanking(ctx, p, opts)
	if err == nil && res.Solution != nil {
		return res.Solution, nil
	}
	if err != nil {
		return nil, err
	}
	// Budget exhausted: merge from the unconstrained optimum, which is
	// the first path the ranking would have produced anyway.
	sol, _, err := SolveMergeFromUnconstrained(ctx, p)
	return sol, err
}
