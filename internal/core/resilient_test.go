package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// faultyModel is a FallibleModel whose EXEC evaluations fail according
// to a caller-provided predicate: failing calls return +Inf and record
// the failure for TakeErr, mimicking the advisor's what-if model.
type faultyModel struct {
	*tableModel
	failAt func(call int64) bool
	calls  atomic.Int64

	mu  sync.Mutex
	err error
}

func (m *faultyModel) Exec(stage int, c Config) float64 {
	if m.failAt != nil && m.failAt(m.calls.Add(1)) {
		m.mu.Lock()
		if m.err == nil {
			m.err = errors.New("injected evaluation failure")
		}
		m.mu.Unlock()
		return math.Inf(1)
	}
	return m.tableModel.Exec(stage, c)
}

func (m *faultyModel) TakeErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.err
	m.err = nil
	return err
}

// onceValue fires true exactly once, at the given call number.
func onceValue(at int64) func(int64) bool {
	var fired atomic.Bool
	return func(call int64) bool {
		return call == at && fired.CompareAndSwap(false, true)
	}
}

func resilientProblem(t *testing.T, seed int64) (*Problem, *tableModel, []Config) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, configs := randomModel(rng, 12, 3)
	p := &Problem{Stages: 12, Configs: configs, Initial: 0, K: 2,
		Model: m, Metrics: &Metrics{}}
	return p, m, configs
}

func TestResilientFirstRungAnswers(t *testing.T) {
	p, _, _ := resilientProblem(t, 301)
	res, err := SolveResilient(context.Background(), p, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != StrategyKAware || res.Degraded {
		t.Fatalf("rung = %s degraded = %v", res.Rung, res.Degraded)
	}
	if len(res.Reports) != 1 || res.Reports[0].Class != "" {
		t.Fatalf("reports = %+v", res.Reports)
	}
	if err := p.CheckSolution(res.Solution); err != nil {
		t.Fatal(err)
	}
	want, err := SolveKAware(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Solution.Cost, want.Cost) {
		t.Fatalf("resilient %f != kaware %f", res.Solution.Cost, want.Cost)
	}
	if p.Metrics.Degradations() != 0 {
		t.Error("clean solve recorded degradations")
	}
}

func TestResilientDegradesOnPanic(t *testing.T) {
	p, base, _ := resilientProblem(t, 307)
	// Panic exactly once: the first rung eats it, the second runs clean.
	p.Model = &panicAtModel{tableModel: base, at: 5}
	res, err := SolveResilient(context.Background(), p, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != StrategyGreedySeq || !res.Degraded {
		t.Fatalf("rung = %s degraded = %v", res.Rung, res.Degraded)
	}
	if res.Reports[0].Class != FailPanic {
		t.Fatalf("first rung class = %s, want panic", res.Reports[0].Class)
	}
	var pe *PanicError
	if !errors.As(res.Reports[0].Err, &pe) {
		t.Fatalf("first rung error %v is not a *PanicError", res.Reports[0].Err)
	}
	if err := p.CheckSolution(res.Solution); err != nil {
		t.Fatal(err)
	}
	if p.Metrics.RecoveredPanics() == 0 || p.Metrics.Degradations() != 1 {
		t.Errorf("metrics: panics=%d degradations=%d",
			p.Metrics.RecoveredPanics(), p.Metrics.Degradations())
	}
}

func TestResilientDegradesOnTransientFault(t *testing.T) {
	p, base, _ := resilientProblem(t, 311)
	p.Model = &faultyModel{tableModel: base, failAt: onceValue(5)}
	res, err := SolveResilient(context.Background(), p, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("transient fault did not degrade")
	}
	if res.Reports[0].Class != FailFault {
		t.Fatalf("first rung class = %s, want fault", res.Reports[0].Class)
	}
	if !errors.Is(res.Reports[0].Err, ErrModelFault) {
		t.Fatalf("first rung error %v does not wrap ErrModelFault", res.Reports[0].Err)
	}
	if err := p.CheckSolution(res.Solution); err != nil {
		t.Fatal(err)
	}
}

func TestResilientBudgetFallsToLastKnownGood(t *testing.T) {
	p, _, _ := resilientProblem(t, 313)
	// A known-good static design: stay on the initial configuration.
	lkgDesigns := make([]Config, p.Stages)
	lkg := p.NewSolution(lkgDesigns)
	// Budget far below one cost-table build: every solving rung trips.
	res, err := SolveResilient(context.Background(), p, ResilientOptions{
		MaxWhatIfCalls: 5,
		LastKnownGood:  lkg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != RungLastKnownGood || !res.Degraded {
		t.Fatalf("rung = %s degraded = %v", res.Rung, res.Degraded)
	}
	for _, r := range res.Reports[:len(res.Reports)-1] {
		if r.Class != FailBudget {
			t.Fatalf("rung %s class = %s, want budget", r.Strategy, r.Class)
		}
		if !errors.Is(r.Err, ErrWhatIfBudget) {
			t.Fatalf("rung %s error %v does not wrap ErrWhatIfBudget", r.Strategy, r.Err)
		}
	}
	if err := p.CheckSolution(res.Solution); err != nil {
		t.Fatal(err)
	}
	if p.Metrics.Degradations() != 3 {
		t.Errorf("degradations = %d, want 3", p.Metrics.Degradations())
	}
}

func TestResilientBudgetWithoutFallbackFails(t *testing.T) {
	p, _, _ := resilientProblem(t, 317)
	res, err := SolveResilient(context.Background(), p, ResilientOptions{MaxWhatIfCalls: 5})
	if err == nil {
		t.Fatalf("budget-starved solve succeeded: %+v", res)
	}
	if !errors.Is(err, ErrWhatIfBudget) {
		t.Fatalf("error %v does not wrap ErrWhatIfBudget", err)
	}
	if res == nil || len(res.Reports) != 3 {
		t.Fatalf("failure result lacks rung reports: %+v", res)
	}
	if res.Solution != nil {
		t.Error("failure result carries a solution")
	}
}

func TestResilientRungTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	base, configs := randomModel(rng, 64, 6)
	slow := newSlowModel(base, 500*time.Microsecond)
	p := &Problem{Stages: 64, Configs: configs, Initial: 0, K: 2,
		Model: slow, Metrics: &Metrics{}}
	lkgDesigns := make([]Config, p.Stages)
	lkg := p.NewSolution(lkgDesigns) // priced before the clock matters
	res, err := SolveResilient(context.Background(), p, ResilientOptions{
		Ladder:        []Strategy{StrategyKAware},
		RungTimeout:   time.Millisecond,
		LastKnownGood: lkg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != RungLastKnownGood {
		t.Fatalf("rung = %s", res.Rung)
	}
	if res.Reports[0].Class != FailTimeout {
		t.Fatalf("first rung class = %s, want timeout", res.Reports[0].Class)
	}
	if err := p.CheckSolution(res.Solution); err != nil {
		t.Fatal(err)
	}
}

func TestResilientParentCancelAborts(t *testing.T) {
	p, _, _ := resilientProblem(t, 337)
	lkg := p.NewSolution(make([]Config, p.Stages))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveResilient(ctx, p, ResilientOptions{LastKnownGood: lkg})
	if err == nil {
		t.Fatalf("cancelled resilient solve succeeded: rung %s", res.Rung)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

func TestResilientRejectsInvalidLastKnownGood(t *testing.T) {
	p, _, _ := resilientProblem(t, 347)
	bad := &Solution{Designs: make([]Config, 3)} // wrong length
	res, err := SolveResilient(context.Background(), p, ResilientOptions{
		MaxWhatIfCalls: 5,
		LastKnownGood:  bad,
	})
	if err == nil {
		t.Fatalf("invalid last-known-good accepted: %+v", res)
	}
	last := res.Reports[len(res.Reports)-1]
	if last.Strategy != RungLastKnownGood || last.Class == "" {
		t.Fatalf("last report = %+v", last)
	}
}

func TestDefaultLadder(t *testing.T) {
	if got := DefaultLadder(""); len(got) != 3 || got[0] != StrategyKAware {
		t.Fatalf("DefaultLadder(\"\") = %v", got)
	}
	got := DefaultLadder(StrategyMerge)
	if len(got) != 2 || got[0] != StrategyMerge || got[1] != StrategyGreedySeq {
		t.Fatalf("DefaultLadder(merge) = %v", got)
	}
	got = DefaultLadder(StrategyRanking)
	if len(got) != 3 || got[0] != StrategyRanking {
		t.Fatalf("DefaultLadder(ranking) = %v", got)
	}
}

func TestClassifyFailure(t *testing.T) {
	cases := []struct {
		err  error
		want FailureClass
	}{
		{nil, ""},
		{recoverPanic("x"), FailPanic},
		{ErrWhatIfBudget, FailBudget},
		{ErrModelFault, FailFault},
		{context.DeadlineExceeded, FailTimeout},
		{context.Canceled, FailCancelled},
		{errors.New("other"), FailError},
	}
	for _, c := range cases {
		if got := classifyFailure(c.err); got != c.want {
			t.Errorf("classifyFailure(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
