package core_test

import (
	"context"
	"fmt"

	"dyndesign/internal/core"
)

// twoPhaseModel is a minimal cost model for the examples: structure 0's
// index helps in stages 0-2, structure 1's in stages 3-5, and building
// either costs 4.
type twoPhaseModel struct{}

func (twoPhaseModel) Exec(stage int, c core.Config) float64 {
	helped := (stage < 3 && c.Has(0)) || (stage >= 3 && c.Has(1))
	if helped {
		return 1
	}
	return 10
}

func (twoPhaseModel) Trans(from, to core.Config) float64 {
	added, removed := from.Diff(to)
	return float64(4*len(added) + len(removed))
}

func (twoPhaseModel) Size(c core.Config) float64 { return float64(c.Count()) }

// ExampleSolveKAware finds the optimal one-change design for a two-phase
// workload: use index 0 for the first phase, switch to index 1 for the
// second.
func ExampleSolveKAware() {
	p := &core.Problem{
		Stages:  6,
		Configs: []core.Config{core.ConfigOf(), core.ConfigOf(0), core.ConfigOf(1)},
		Initial: core.ConfigOf(),
		K:       1,
		Model:   twoPhaseModel{},
	}
	sol, err := core.SolveKAware(context.Background(), p)
	if err != nil {
		panic(err)
	}
	names := []string{"I(x)", "I(y)"}
	for _, run := range sol.Runs() {
		fmt.Printf("stages %d-%d: %s\n", run.Start, run.Start+run.Length-1, run.Config.Format(names))
	}
	fmt.Println("changes:", sol.Changes)
	// Output:
	// stages 0-2: {I(x)}
	// stages 3-5: {I(y)}
	// changes: 1
}

// ExampleSolveMerge refines an unconstrained optimum down to a
// zero-change (static) design.
func ExampleSolveMerge() {
	p := &core.Problem{
		Stages:  6,
		Configs: []core.Config{core.ConfigOf(), core.ConfigOf(0), core.ConfigOf(1)},
		Initial: core.ConfigOf(),
		K:       core.Unconstrained,
		Model:   twoPhaseModel{},
	}
	seed, err := core.SolveUnconstrained(context.Background(), p)
	if err != nil {
		panic(err)
	}
	constrained := *p
	constrained.K = 0
	sol, steps, err := core.SolveMerge(context.Background(), &constrained, seed)
	if err != nil {
		panic(err)
	}
	fmt.Println("merge steps:", steps)
	fmt.Println("static design:", sol.Designs[0].Format([]string{"I(x)", "I(y)"}))
	fmt.Println("changes:", sol.Changes)
	// Output:
	// merge steps: 1
	// static design: {I(x)}
	// changes: 0
}
