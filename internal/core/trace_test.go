package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"dyndesign/internal/obs"
)

// tracedProblem builds a random constrained problem with a tracer over
// the given sinks attached.
func tracedProblem(stages, structs, k int, sinks ...obs.Sink) *Problem {
	model, configs := randomModel(rand.New(rand.NewSource(7)), stages, structs)
	return &Problem{
		Stages:  stages,
		Configs: configs,
		K:       k,
		Model:   model,
		Metrics: &Metrics{},
		Tracer:  obs.NewTracer(sinks...),
	}
}

// TestTracedSolveCoversWallTime pins the acceptance criterion: with
// JSONL tracing enabled, a k-aware solve's root span covers (at least)
// 95% of the measured wall time, and the per-phase spans are present.
func TestTracedSolveCoversWallTime(t *testing.T) {
	var buf bytes.Buffer
	jw := obs.NewJSONLWriter(&buf)
	p := tracedProblem(60, 4, 3, jw)

	start := time.Now()
	sol, err := Solve(bg, p, StrategyKAware)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]obs.SpanRecord{}
	for _, rec := range recs {
		byName[rec.Name] = append(byName[rec.Name], rec)
	}
	roots := byName[SpanSolve]
	if len(roots) != 1 {
		t.Fatalf("trace has %d %q spans, want 1", len(roots), SpanSolve)
	}
	if covered := roots[0].Dur; float64(covered) < 0.95*float64(wall) {
		t.Errorf("root span covers %v of %v wall time (%.1f%%), want >= 95%%",
			covered, wall, 100*float64(covered)/float64(wall))
	}
	if n := len(byName[SpanMatrixBuild]); n != 1 {
		t.Errorf("trace has %d matrix.build spans, want 1", n)
	}
	if n := len(byName[SpanMatrixExecStage]); n != 60 {
		t.Errorf("trace has %d matrix.exec_stage spans, want 60", n)
	}
	// One layer sweep per stage after the first.
	if n := len(byName[SpanKAwareSweep]); n != 59 {
		t.Errorf("trace has %d kaware.sweep spans, want 59", n)
	}
}

// TestTracedStrategiesEmitTheirSpans checks each strategy leaves its
// characteristic spans in the aggregator.
func TestTracedStrategiesEmitTheirSpans(t *testing.T) {
	cases := []struct {
		strategy Strategy
		k        int
		want     []string
	}{
		{StrategyKAware, 2, []string{SpanSolve, SpanMatrixBuild, SpanKAwareSweep}},
		{StrategyGreedySeq, 2, []string{SpanSolve, SpanGreedyReduce, SpanKAwareSweep}},
		{StrategyMerge, 2, []string{SpanSolve, SpanSeqgraphDP, SpanMergeStep}},
		// Ranking gets a loose bound: with small k its enumeration is the
		// paper's worst case and would exhaust the budget, which is a
		// different test's business (TestRankingBudget).
		{StrategyRanking, 39, []string{SpanSolve, SpanRankingSweep, SpanRankingExpand}},
		{StrategyHybrid, 2, []string{SpanSolve, SpanSeqgraphDP}},
	}
	for _, c := range cases {
		t.Run(string(c.strategy), func(t *testing.T) {
			agg := obs.NewAggregator()
			p := tracedProblem(40, 3, c.k, agg)
			if _, err := Solve(bg, p, c.strategy); err != nil {
				t.Fatal(err)
			}
			seen := map[string]bool{}
			for _, st := range agg.Snapshot() {
				seen[st.Name] = true
			}
			for _, name := range c.want {
				if !seen[name] {
					t.Errorf("strategy %s left no %q span (saw %v)", c.strategy, name, seen)
				}
			}
		})
	}
}

// TestTracedResilientRungSpans checks the supervisor emits one rung
// span per attempt.
func TestTracedResilientRungSpans(t *testing.T) {
	agg := obs.NewAggregator()
	p := tracedProblem(30, 3, 2, agg)
	res, err := SolveResilient(bg, p, ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("healthy solve degraded: %+v", res.Reports)
	}
	for _, st := range agg.Snapshot() {
		if st.Name == SpanResilientRung {
			if st.Count != 1 {
				t.Errorf("rung span count = %d, want 1", st.Count)
			}
			return
		}
	}
	t.Error("no resilient.rung span emitted")
}

// TestTracedParallelBuildRace drives the real worker pool with a tracer
// attached — concurrent span emission from solver goroutines — and
// checks the aggregate exec-row count is exact. Run under -race this
// proves the facade is safe at its hottest concurrent call site.
func TestTracedParallelBuildRace(t *testing.T) {
	agg := obs.NewAggregator()
	var buf bytes.Buffer
	jw := obs.NewJSONLWriter(&buf)
	const stages = 200
	p := tracedProblem(stages, 4, 2, agg, jw)
	p.Parallelism = 8
	if err := p.BuildCostTables(bg); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	var rows int64
	for _, st := range agg.Snapshot() {
		if st.Name == SpanMatrixExecStage {
			rows = st.Count
		}
	}
	if rows != stages {
		t.Errorf("aggregator saw %d exec-row spans, want %d", rows, stages)
	}
	recs, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	jsonRows := 0
	for _, rec := range recs {
		if rec.Name == SpanMatrixExecStage {
			jsonRows++
		}
	}
	if jsonRows != stages {
		t.Errorf("JSONL saw %d exec-row spans, want %d", jsonRows, stages)
	}
}
