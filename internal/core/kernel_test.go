package core

import (
	"math"
	"math/rand"
	"testing"
)

// additiveModel is a synthetic AdditiveTransModel: TRANS decomposes
// into per-structure build and drop prices, the shape the hypercube
// kernel requires. Exec is raw-config-indexed so subsetted candidate
// lists still cost correctly.
type additiveModel struct {
	exec      [][]float64 // [stage][rawConfig]
	add, drop []float64   // [structure]
}

func (m *additiveModel) Exec(stage int, c Config) float64 { return m.exec[stage][c] }

func (m *additiveModel) Trans(from, to Config) float64 {
	total := 0.0
	for _, s := range (to &^ from).Structures() {
		total += m.add[s]
	}
	for _, s := range (from &^ to).Structures() {
		total += m.drop[s]
	}
	return total
}

func (m *additiveModel) Size(c Config) float64             { return float64(c.Count()) }
func (m *additiveModel) TransParts() (add, drop []float64) { return m.add, m.drop }

var _ AdditiveTransModel = (*additiveModel)(nil)

// randomAdditiveModel builds a random additive model over all 2^structs
// configurations.
func randomAdditiveModel(rng *rand.Rand, stages, structs int) (*additiveModel, []Config) {
	n := 1 << uint(structs)
	m := &additiveModel{
		exec: make([][]float64, stages),
		add:  make([]float64, structs),
		drop: make([]float64, structs),
	}
	for i := range m.exec {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		m.exec[i] = row
	}
	for s := 0; s < structs; s++ {
		m.add[s] = rng.Float64() * 50
		m.drop[s] = rng.Float64() * 10
	}
	configs := make([]Config, n)
	for i := range configs {
		configs[i] = Config(i)
	}
	return m, configs
}

// runKernelCase asserts the dense and hypercube kernels agree on one
// randomized problem: equal solve costs (up to float association), valid
// solutions, identical feasibility, equal SweepK curves, equal ranking
// outcomes, and bit-identical results between serial and Parallelism=4
// hypercube sweeps.
func runKernelCase(t *testing.T, seed int64, stages, structs, k int, policy ChangePolicy, withFinal, subset bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, configs := randomAdditiveModel(rng, stages, structs)
	if subset && len(configs) > 4 {
		kept := make([]Config, 0, len(configs))
		for _, c := range configs {
			if rng.Float64() < 0.7 {
				kept = append(kept, c)
			}
		}
		if len(kept) < 2 {
			kept = configs[:2]
		}
		configs = kept
	}
	// The initial configuration is any raw lattice point — sometimes
	// outside the candidate list, which the solvers must tolerate.
	initial := Config(rng.Intn(1 << uint(structs)))
	base := Problem{
		Stages: stages, Configs: configs, Initial: initial,
		K: k, Policy: policy, Model: m, Parallelism: 1,
	}
	if withFinal {
		f := configs[rng.Intn(len(configs))]
		base.Final = &f
	}

	dense := base
	dense.Kernel = KernelDense
	hyper := base
	hyper.Kernel = KernelHypercube
	hyperPar := hyper
	hyperPar.Parallelism = 4

	if got := resolveKernel(&hyper, configs).kind; got != KernelHypercube {
		t.Fatalf("additive model not eligible for the hypercube kernel (got %v)", got)
	}

	dSol, dErr := SolveKAware(bg, &dense)
	hSol, hErr := SolveKAware(bg, &hyper)
	pSol, pErr := SolveKAware(bg, &hyperPar)
	if (dErr == nil) != (hErr == nil) || (hErr == nil) != (pErr == nil) {
		t.Fatalf("feasibility disagrees: dense err %v, hyper err %v, hyper(P4) err %v", dErr, hErr, pErr)
	}
	if dErr == nil {
		if !almostEqual(dSol.Cost, hSol.Cost) {
			t.Fatalf("k-aware cost: dense %v != hyper %v", dSol.Cost, hSol.Cost)
		}
		for _, pair := range []struct {
			name string
			p    *Problem
			s    *Solution
		}{{"dense", &dense, dSol}, {"hyper", &hyper, hSol}} {
			if err := pair.p.CheckSolution(pair.s); err != nil {
				t.Fatalf("%s solution invalid: %v", pair.name, err)
			}
		}
		// The parallel layer sweep must be bit-identical to serial.
		if pSol.Cost != hSol.Cost {
			t.Fatalf("hyper parallel cost %v != serial %v", pSol.Cost, hSol.Cost)
		}
		for i := range hSol.Designs {
			if hSol.Designs[i] != pSol.Designs[i] {
				t.Fatalf("hyper parallel design diverges at stage %d", i)
			}
		}

		// Ranking enumerates paths, which gets expensive on wide candidate
		// sets and long sequences with small k; the kernel-equivalence
		// property is fully exercised on the smaller shapes.
		if len(configs) <= 20 && stages <= 8 {
			dRank, dRankErr := SolveRanking(bg, &dense, RankingOptions{Prune: true})
			hRank, hRankErr := SolveRanking(bg, &hyper, RankingOptions{Prune: true})
			if (dRankErr == nil) != (hRankErr == nil) {
				t.Fatalf("ranking feasibility disagrees: dense %v, hyper %v", dRankErr, hRankErr)
			}
			if dRankErr == nil && dRank.Solution != nil && hRank.Solution != nil {
				if !almostEqual(dRank.Solution.Cost, hRank.Solution.Cost) {
					t.Fatalf("ranking cost: dense %v != hyper %v", dRank.Solution.Cost, hRank.Solution.Cost)
				}
				if !almostEqual(dRank.Solution.Cost, dSol.Cost) {
					t.Fatalf("ranking cost %v != k-aware cost %v", dRank.Solution.Cost, dSol.Cost)
				}
			}
		}
	}

	dCurve, dErr2 := SweepK(bg, &dense, k+2)
	hCurve, hErr2 := SweepK(bg, &hyperPar, k+2)
	if (dErr2 == nil) != (hErr2 == nil) {
		t.Fatalf("SweepK disagrees: dense err %v, hyper err %v", dErr2, hErr2)
	}
	if dErr2 == nil {
		for i := range dCurve {
			if dCurve[i].Feasible != hCurve[i].Feasible {
				t.Fatalf("SweepK point %d feasibility: dense %v != hyper %v", i, dCurve[i].Feasible, hCurve[i].Feasible)
			}
			if dCurve[i].Feasible && !almostEqual(dCurve[i].Cost, hCurve[i].Cost) {
				t.Fatalf("SweepK point %d cost: dense %v != hyper %v", i, dCurve[i].Cost, hCurve[i].Cost)
			}
		}
	}

	dense.K, hyper.K = Unconstrained, Unconstrained
	dU, dUErr := SolveUnconstrained(bg, &dense)
	hU, hUErr := SolveUnconstrained(bg, &hyper)
	if (dUErr == nil) != (hUErr == nil) {
		t.Fatalf("unconstrained disagrees: dense err %v, hyper err %v", dUErr, hUErr)
	}
	if dUErr == nil && !almostEqual(dU.Cost, hU.Cost) {
		t.Fatalf("unconstrained cost: dense %v != hyper %v", dU.Cost, hU.Cost)
	}
}

// TestKernelEquivalence is the property test over a randomized grid of
// problem shapes: both change policies, constrained and free final
// endpoints, subsetted candidate lists, k from 0 up.
func TestKernelEquivalence(t *testing.T) {
	seed := int64(0)
	for _, structs := range []int{1, 2, 4, 6} {
		for _, stages := range []int{1, 2, 7, 23} {
			for _, k := range []int{0, 1, 3} {
				for _, policy := range []ChangePolicy{FreeEndpoints, CountAll} {
					seed++
					withFinal := seed%2 == 0
					subset := seed%3 == 0
					runKernelCase(t, seed, stages, structs, k, policy, withFinal, subset)
				}
			}
		}
	}
}

// FuzzKernelEquivalence fuzzes the same property; CI runs it with a
// short budget on every PR (make fuzz-smoke).
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(4), uint8(2), false, false, false)
	f.Add(int64(2), uint8(3), uint8(1), uint8(0), true, true, false)
	f.Add(int64(3), uint8(9), uint8(5), uint8(4), false, true, true)
	f.Add(int64(4), uint8(2), uint8(2), uint8(1), true, false, true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, structsRaw, kRaw uint8, countAll, withFinal, subset bool) {
		stages := 1 + int(nRaw%10)
		structs := 1 + int(structsRaw%6)
		k := int(kRaw % 5)
		policy := FreeEndpoints
		if countAll {
			policy = CountAll
		}
		runKernelCase(t, seed, stages, structs, k, policy, withFinal, subset)
	})
}

// TestKernelFallbacks pins the eligibility rules: models that cannot
// prove additive transitions must run on the dense kernel even when the
// hypercube is requested.
func TestKernelFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	t.Run("non-additive model", func(t *testing.T) {
		m, configs := randomModel(rng, 5, 3)
		p := &Problem{Stages: 5, Configs: configs, Initial: 0, K: 1, Model: m, Kernel: KernelHypercube}
		if got := resolveKernel(p, configs).kind; got != KernelDense {
			t.Fatalf("non-additive model resolved to %v, want dense", got)
		}
		// The solve still works (through the dense fallback) and matches
		// an explicitly dense solve bit for bit.
		forced := *p
		forced.Kernel = KernelDense
		a, errA := SolveKAware(bg, p)
		b, errB := SolveKAware(bg, &forced)
		if errA != nil || errB != nil {
			t.Fatalf("solve errors: %v, %v", errA, errB)
		}
		if a.Cost != b.Cost {
			t.Fatalf("fallback cost %v != dense cost %v", a.Cost, b.Cost)
		}
	})

	t.Run("negative part", func(t *testing.T) {
		m, configs := randomAdditiveModel(rng, 4, 3)
		m.add[1] = -2
		p := &Problem{Stages: 4, Configs: configs, Initial: 0, K: 1, Model: m, Kernel: KernelHypercube}
		if got := resolveKernel(p, configs).kind; got != KernelDense {
			t.Fatalf("negative add part resolved to %v, want dense", got)
		}
	})

	t.Run("non-finite part", func(t *testing.T) {
		m, configs := randomAdditiveModel(rng, 4, 3)
		m.drop[0] = math.Inf(1)
		p := &Problem{Stages: 4, Configs: configs, Initial: 0, K: 1, Model: m, Kernel: KernelHypercube}
		if got := resolveKernel(p, configs).kind; got != KernelDense {
			t.Fatalf("infinite drop part resolved to %v, want dense", got)
		}
		m.drop[0] = math.NaN()
		if got := resolveKernel(p, configs).kind; got != KernelDense {
			t.Fatalf("NaN drop part resolved to %v, want dense", got)
		}
	})

	t.Run("parts shorter than span", func(t *testing.T) {
		m, _ := randomAdditiveModel(rng, 4, 3)
		configs := []Config{0, ConfigOf(0), ConfigOf(5)} // bit 5 beyond len(parts)=3
		p := &Problem{Stages: 4, Configs: configs, Initial: 0, K: 1, Model: m, Kernel: KernelHypercube}
		if got := resolveKernel(p, configs).kind; got != KernelDense {
			t.Fatalf("span outside parts resolved to %v, want dense", got)
		}
	})

	t.Run("auto cost comparison", func(t *testing.T) {
		m, configs := randomAdditiveModel(rng, 4, 4)
		// Narrow candidate list over a 4-bit span: 2·4·16 = 128 lattice
		// steps >= 7² = 49 dense steps, so auto stays dense...
		narrow := []Config{0, 1, 2, 3, 4, 5, ConfigOf(3)}
		p := &Problem{Stages: 4, Configs: narrow, Initial: 0, K: 1, Model: m}
		if got := resolveKernel(p, narrow).kind; got != KernelDense {
			t.Fatalf("auto picked %v on a narrow list, want dense", got)
		}
		// ...but the full 16-point lattice (128 < 256) flips to hypercube,
		// and forcing the hypercube on the narrow list overrides the
		// comparison.
		if got := resolveKernel(p, configs).kind; got != KernelHypercube {
			t.Fatalf("auto picked %v on the full lattice, want hypercube", got)
		}
		p.Kernel = KernelHypercube
		if got := resolveKernel(p, narrow).kind; got != KernelHypercube {
			t.Fatalf("forced hypercube resolved to %v", got)
		}
	})
}

// TestSolveCacheReuse asserts that solves sharing a model through an
// attached cache evaluate the cost tables once, and that a model swap
// invalidates the entry.
func TestSolveCacheReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, configs := randomModel(rng, 12, 4)
	p := &Problem{
		Stages: 12, Configs: configs, Initial: 0, K: 2, Model: m,
		Cache: NewSolveCache(), Metrics: &Metrics{},
	}
	if _, err := SolveKAware(bg, p); err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics.MatrixBuilds(); got != 1 {
		t.Fatalf("MatrixBuilds after first solve = %d, want 1", got)
	}
	if _, err := SweepK(bg, p, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveUnconstrained(bg, p); err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics.MatrixBuilds(); got != 1 {
		t.Fatalf("MatrixBuilds after reusing solves = %d, want 1", got)
	}
	if got := p.Metrics.MatrixReuses(); got == 0 {
		t.Fatal("MatrixReuses = 0, want > 0")
	}

	// A different model invalidates the entry.
	m2, _ := randomModel(rng, 12, 4)
	p.Model = m2
	if _, err := SolveKAware(bg, p); err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics.MatrixBuilds(); got != 2 {
		t.Fatalf("MatrixBuilds after model swap = %d, want 2", got)
	}
}

// TestSolveCacheSplitBitwise asserts the cached SequenceCostSplit fast
// path is bit-identical to the model path — the invariant the explain
// layer's exact-sum attribution depends on.
func TestSolveCacheSplitBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, configs := randomModel(rng, 20, 4)
	final := configs[3]
	cached := &Problem{
		Stages: 20, Configs: configs, Initial: 5, Final: &final, K: 3,
		Model: m, Cache: NewSolveCache(), Metrics: &Metrics{},
	}
	sol, err := SolveKAware(bg, cached)
	if err != nil {
		t.Fatal(err)
	}
	plain := *cached
	plain.Cache = nil
	for trial := 0; trial < 20; trial++ {
		designs := make([]Config, 20)
		for i := range designs {
			designs[i] = configs[rng.Intn(len(configs))]
		}
		ce, ct := cached.SequenceCostSplit(designs)
		pe, pt := plain.SequenceCostSplit(designs)
		if ce != pe || ct != pt {
			t.Fatalf("cached split (%v, %v) != model split (%v, %v)", ce, ct, pe, pt)
		}
	}
	// The solution's own designs too (the CheckSolution hot path).
	ce, ct := cached.SequenceCostSplit(sol.Designs)
	pe, pt := plain.SequenceCostSplit(sol.Designs)
	if ce != pe || ct != pt {
		t.Fatalf("cached split of solution (%v, %v) != model split (%v, %v)", ce, ct, pe, pt)
	}
	if err := cached.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
}

// TestSolveCacheTransUpgrade asserts a hypercube-built entry is upgraded
// in place with the all-pairs TRANS rows when a dense consumer follows,
// without a second EXEC evaluation.
func TestSolveCacheTransUpgrade(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m, configs := randomAdditiveModel(rng, 10, 5)
	p := &Problem{
		Stages: 10, Configs: configs, Initial: 0, K: 2, Model: m,
		Kernel: KernelHypercube, Cache: NewSolveCache(), Metrics: &Metrics{},
	}
	hSol, err := SolveKAware(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics.MatrixBuilds(); got != 1 {
		t.Fatalf("MatrixBuilds after hypercube solve = %d, want 1", got)
	}
	p.Kernel = KernelDense
	dSol, err := SolveKAware(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics.MatrixBuilds(); got != 1 {
		t.Fatalf("MatrixBuilds after dense upgrade = %d, want 1 (EXEC must not rebuild)", got)
	}
	if got := p.Metrics.MatrixReuses(); got == 0 {
		t.Fatal("MatrixReuses = 0 after upgrade, want > 0")
	}
	if !almostEqual(hSol.Cost, dSol.Cost) {
		t.Fatalf("hypercube cost %v != dense cost %v", hSol.Cost, dSol.Cost)
	}
}

// benchProblem builds the benchmark problem: an additive model over the
// full structs-bit lattice.
func benchProblem(structs int, kernel TransKernel) *Problem {
	rng := rand.New(rand.NewSource(42))
	m, configs := randomAdditiveModel(rng, 30, structs)
	return &Problem{
		Stages: 30, Configs: configs, Initial: 0, K: 4,
		Model: m, Kernel: kernel, Parallelism: 1,
	}
}

// BenchmarkKAwareKernels measures the exact k-aware solve under both
// kernels at m=8 (256 configurations); allocs/op documents the buffer
// reuse across stages and layers.
func BenchmarkKAwareKernels(b *testing.B) {
	for _, bench := range []struct {
		name   string
		kernel TransKernel
	}{{"dense", KernelDense}, {"hypercube", KernelHypercube}} {
		b.Run(bench.name, func(b *testing.B) {
			p := benchProblem(8, bench.kernel)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SolveKAware(bg, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
