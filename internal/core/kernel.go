package core

import (
	"context"
	"math"
	"math/bits"
)

// AdditiveTransModel is an optional CostModel capability: a model whose
// transition cost decomposes per structure,
//
//	TRANS(from, to) = Σ_{s ∈ to\from} add[s]  +  Σ_{s ∈ from\to} drop[s],
//
// with every add[s] and drop[s] finite and non-negative. The advisor's
// what-if model has exactly this shape (one build per created index,
// one flat drop per removed one), and it is what lets the exact graph
// solvers replace the all-pairs min-plus relaxation min_f cost[f] +
// TRANS(f, t) — O(m²) per stage over m candidates — with m' sweeps over
// the 2^m' configuration lattice of the m' underlying structures (see
// DESIGN.md §12).
type AdditiveTransModel interface {
	CostModel
	// TransParts returns the per-structure build (add) and drop cost
	// vectors, indexed by structure bit. Trans must equal the sums above
	// up to floating-point association, and the parts must be finite and
	// non-negative — solvers verify the latter and fall back to the
	// dense kernel otherwise, but they trust the decomposition itself.
	// Called at most once per solve, so it may allocate.
	TransParts() (add, drop []float64)
}

// TransKernel selects the min-plus relaxation kernel the exact graph
// solvers use for the all-sources step min_f cost[f] + TRANS(f, t).
type TransKernel int

const (
	// KernelAuto picks per solve: the hypercube kernel when the model
	// reports additive transitions and the lattice sweep is cheaper than
	// the dense all-pairs scan, the dense kernel otherwise. The default.
	KernelAuto TransKernel = iota
	// KernelDense forces the all-pairs relaxation regardless of model
	// capabilities.
	KernelDense
	// KernelHypercube forces the lattice relaxation whenever the model
	// is eligible (additive, valid parts, lattice within bounds);
	// ineligible models still fall back to the dense kernel.
	KernelHypercube
)

// String names the kernel preference.
func (k TransKernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelDense:
		return "dense"
	case KernelHypercube:
		return "hypercube"
	default:
		return "TransKernel(?)"
	}
}

// maxLatticeBits caps the hypercube lattice: beyond 2^20 points the
// per-sweep scratch alone outweighs any plausible win over the dense
// scan, so wider spans always use the dense kernel.
const maxLatticeBits = 20

// transRelaxer is one min-plus relaxation engine, bound to a solve's
// cost tables. All relax methods are deterministic, and any method may
// be called from concurrent goroutines as long as each call owns its
// scratch (see newScratch).
//
// Throughout, T~(f, t) is the tie-broken edge cost: the model's raw
// TRANS(f, t) plus changeEpsilon when f != t, and exactly 0 when
// f == t — the same perturbation the dense tables used to bake in.
type transRelaxer interface {
	name() string

	// relaxFull writes out[t] = min over every source f — t itself
	// included, at transition cost 0 — of prev[f] + T~(f, t), with the
	// argmin in from (-1 only when every source is unreachable). The
	// unconstrained DP's whole-stage relaxation.
	relaxFull(prev, out []float64, from []int32, scr *latticeScratch)

	// relaxMove writes out[t] = min over f != t of prev[f] + T~(f, t)
	// with the argmin in from — the layered DP's switch step. The kernel
	// may instead report (out[t] = +Inf, from[t] = -1) when every
	// genuine move into t costs at least prev[t]: such a move lands one
	// layer deeper than the stay state of equal-or-lower cost, so it is
	// dominated for every layer-bounded read (see DESIGN.md §12).
	relaxMove(prev, out []float64, from []int32, scr *latticeScratch)

	// relaxBack writes out[c] = min over every destination j of
	// T~(c, j) + exec[j] + hnext[j] — the ranking solver's backward
	// cost-to-go relaxation for one stage. workers bounds the dense
	// kernel's per-cell fan-out; the returned error is the context
	// cancellation cause, if any.
	relaxBack(ctx context.Context, workers int, exec, hnext, out []float64, scr *latticeScratch) error

	// transCost returns T~(f, t) for candidate indices — the per-edge
	// cost the ranking expansion charges.
	transCost(f, t int) float64

	// needsScratch reports whether relax calls require a scratch from
	// newScratch (nil is fine otherwise).
	needsScratch() bool
	newScratch() *latticeScratch
}

// kernelChoice is a resolved kernel selection: which kernel to run and,
// for the hypercube, the structure-indexed transition parts and the
// span they act on.
type kernelChoice struct {
	kind      TransKernel // KernelDense or KernelHypercube, never Auto
	add, drop []float64
	span      Config
	bits      int
}

// needTrans reports whether the choice requires the dense all-pairs
// TRANS table — the O(m²) model evaluation the hypercube kernel exists
// to skip.
func (ch kernelChoice) needTrans() bool { return ch.kind == KernelDense }

// kernel builds the relaxer for the choice over the built tables.
func (ch kernelChoice) kernel(m *matrices) transRelaxer {
	if ch.kind == KernelHypercube {
		return newHyperKernel(ch, m.configs)
	}
	return &denseKernel{m: m}
}

// resolveKernel picks the relaxation kernel for one solve over the
// usable candidate list. The dense kernel is the safe default; the
// hypercube kernel requires an AdditiveTransModel with finite,
// non-negative parts covering every structure the candidates use, a
// span within maxLatticeBits, and — under KernelAuto — a lattice sweep
// (~2·bits·2^bits relaxation steps per stage) cheaper than the dense
// scan (nc² steps). Problem.Kernel overrides the cost comparison but
// never the eligibility checks.
func resolveKernel(p *Problem, configs []Config) kernelChoice {
	dense := kernelChoice{kind: KernelDense}
	if p.Kernel == KernelDense {
		return dense
	}
	am, ok := p.Model.(AdditiveTransModel)
	if !ok {
		return dense
	}
	add, drop := am.TransParts()
	var span Config
	for _, c := range configs {
		span |= c
	}
	nbits := span.Count()
	if nbits > maxLatticeBits {
		// An additive model wanted the lattice but the span is over the
		// ceiling: this is the silent O(n·c²) degradation users ask
		// about, so it is counted and surfaced (ErrLatticeTooLarge,
		// Recommendation.LatticeOverflows) instead of just happening.
		p.Metrics.noteLatticeOverflow()
		return dense
	}
	for s := span; s != 0; s &= s - 1 {
		bit := bits.TrailingZeros64(uint64(s))
		if bit >= len(add) || bit >= len(drop) {
			return dense
		}
		for _, v := range [2]float64{add[bit], drop[bit]} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return dense
			}
		}
	}
	if p.Kernel != KernelHypercube {
		nc := len(configs)
		if 2*nbits*(1<<uint(nbits)) >= nc*nc {
			return dense
		}
	}
	return kernelChoice{kind: KernelHypercube, add: add, drop: drop, span: span, bits: nbits}
}

// denseKernel is the all-pairs relaxation over the raw TRANS table.
// Adding changeEpsilon to the raw cell at use time reproduces, bit for
// bit, the previously baked-in table values, so every dense solve is
// bitwise identical to the pre-kernel solvers.
type denseKernel struct{ m *matrices }

func (k *denseKernel) name() string                { return "dense" }
func (k *denseKernel) needsScratch() bool          { return false }
func (k *denseKernel) newScratch() *latticeScratch { return nil }

func (k *denseKernel) transCost(f, t int) float64 {
	if f == t {
		return 0
	}
	return k.m.trans[f][t] + changeEpsilon
}

func (k *denseKernel) relaxFull(prev, out []float64, from []int32, _ *latticeScratch) {
	trans := k.m.trans
	nc := len(prev)
	for t := 0; t < nc; t++ {
		best := math.Inf(1)
		bestFrom := int32(-1)
		for f := 0; f < nc; f++ {
			w := trans[f][t]
			if f != t {
				w += changeEpsilon
			}
			if v := prev[f] + w; v < best {
				best = v
				bestFrom = int32(f)
			}
		}
		out[t] = best
		from[t] = bestFrom
	}
}

func (k *denseKernel) relaxMove(prev, out []float64, from []int32, _ *latticeScratch) {
	trans := k.m.trans
	nc := len(prev)
	for t := 0; t < nc; t++ {
		best := math.Inf(1)
		bestFrom := int32(-1)
		for f := 0; f < nc; f++ {
			if f == t {
				continue
			}
			if v := prev[f] + (trans[f][t] + changeEpsilon); v < best {
				best = v
				bestFrom = int32(f)
			}
		}
		out[t] = best
		from[t] = bestFrom
	}
}

func (k *denseKernel) relaxBack(ctx context.Context, workers int, exec, hnext, out []float64, _ *latticeScratch) error {
	trans := k.m.trans
	nc := len(out)
	return parallelFor(ctx, workers, nc, func(c int) {
		best := math.Inf(1)
		row := trans[c]
		for j := 0; j < nc; j++ {
			w := row[j]
			if j != c {
				w += changeEpsilon
			}
			if v := w + exec[j] + hnext[j]; v < best {
				best = v
			}
		}
		out[c] = best
	})
}

// latticeScratch is the per-call buffer a hypercube relaxation sweeps
// over. One scratch must not be shared by concurrent relax calls; the
// layered DP keeps one per layer so the layer sweep can fan out.
type latticeScratch struct {
	val []float64 // lattice cost, one cell per subset of the span
	org []int32   // candidate index the cell's best value originated from
	w   []float64 // combined destination weights for backward sweeps
}

// hyperKernel is the subset-lattice relaxation: seed every candidate's
// cost at its lattice point, run one strip sweep per structure (pricing
// drops) then one add sweep per structure (pricing builds), and read
// each candidate's point back. A sweep path strips f\t then adds t\f,
// realizing TRANS(f, t) exactly; any extra drop/add pair costs >= 0, so
// the lattice minimum over all paths equals the all-pairs minimum — in
// O(bits·2^bits) instead of O(nc²) per relaxation, and with no O(nc²)
// TRANS table build at all. See DESIGN.md §12 for the derivation.
type hyperKernel struct {
	configs    []Config
	latIdx     []int32 // candidate index -> lattice point
	addL, drpL []float64
	addS, drpS []float64 // structure-indexed parts for transCost
	nbits      int
	size       int
}

func newHyperKernel(ch kernelChoice, configs []Config) *hyperKernel {
	k := &hyperKernel{
		configs: configs,
		nbits:   ch.bits,
		size:    1 << uint(ch.bits),
		addS:    ch.add,
		drpS:    ch.drop,
	}
	k.addL = make([]float64, ch.bits)
	k.drpL = make([]float64, ch.bits)
	b := 0
	for s := ch.span; s != 0; s &= s - 1 {
		bit := bits.TrailingZeros64(uint64(s))
		k.addL[b] = ch.add[bit]
		k.drpL[b] = ch.drop[bit]
		b++
	}
	k.latIdx = make([]int32, len(configs))
	for ci, c := range configs {
		k.latIdx[ci] = int32(compress(c, ch.span))
	}
	return k
}

// compress maps a configuration to its lattice point: bit b of the
// result is the b-th lowest set bit of span. Candidates are distinct,
// so the mapping is injective over the candidate list.
func compress(c, span Config) int {
	out, b := 0, 0
	for s := span; s != 0; s &= s - 1 {
		if c&(s&-s) != 0 {
			out |= 1 << uint(b)
		}
		b++
	}
	return out
}

func (k *hyperKernel) name() string       { return "hypercube" }
func (k *hyperKernel) needsScratch() bool { return true }

func (k *hyperKernel) newScratch() *latticeScratch {
	return &latticeScratch{
		val: make([]float64, k.size),
		org: make([]int32, k.size),
		w:   make([]float64, len(k.configs)),
	}
}

func (k *hyperKernel) transCost(f, t int) float64 {
	if f == t {
		return 0
	}
	cf, ct := k.configs[f], k.configs[t]
	total := 0.0
	for d := ct &^ cf; d != 0; d &= d - 1 {
		total += k.addS[bits.TrailingZeros64(uint64(d))]
	}
	for d := cf &^ ct; d != 0; d &= d - 1 {
		total += k.drpS[bits.TrailingZeros64(uint64(d))]
	}
	return total + changeEpsilon
}

// sweep runs the lattice relaxation over the scratch: seed src at the
// candidates' points, strip sweeps in ascending structure order, then
// add sweeps. Forward sweeps (reverse=false) price strips as drops and
// additions as builds — min over sources f of src[f] + TRANS(f, ·).
// Reverse sweeps swap the prices, computing min over destinations j of
// src[j] + TRANS(·, j) for the backward cost-to-go. Ties keep the
// first-written origin, so the sweep is deterministic.
func (k *hyperKernel) sweep(src []float64, scr *latticeScratch, reverse bool) {
	val, org := scr.val, scr.org
	inf := math.Inf(1)
	for x := range val {
		val[x] = inf
		org[x] = -1
	}
	for ci, li := range k.latIdx {
		val[li] = src[ci]
		org[li] = int32(ci)
	}
	stripPrice, addPrice := k.drpL, k.addL
	if reverse {
		stripPrice, addPrice = k.addL, k.drpL
	}
	size := k.size
	for b := 0; b < k.nbits; b++ {
		bit := 1 << uint(b)
		price := stripPrice[b]
		for x := bit; x < size; x++ {
			if x&bit == 0 {
				continue
			}
			y := x &^ bit
			if v := val[x] + price; v < val[y] {
				val[y] = v
				org[y] = org[x]
			}
		}
	}
	for b := 0; b < k.nbits; b++ {
		bit := 1 << uint(b)
		price := addPrice[b]
		for x := 0; x < size; x++ {
			if x&bit != 0 {
				continue
			}
			y := x | bit
			if v := val[x] + price; v < val[y] {
				val[y] = v
				org[y] = org[x]
			}
		}
	}
}

func (k *hyperKernel) relaxFull(prev, out []float64, from []int32, scr *latticeScratch) {
	k.sweep(prev, scr, false)
	for ti, li := range k.latIdx {
		stay := prev[ti]
		o := scr.org[li]
		if o < 0 || int(o) == ti {
			// Either nothing reaches t, or the identity won the lattice
			// (every genuine move costs at least stay + epsilon).
			out[ti] = stay
			if math.IsInf(stay, 1) {
				from[ti] = -1
			} else {
				from[ti] = int32(ti)
			}
			continue
		}
		if mv := scr.val[li] + changeEpsilon; mv < stay {
			out[ti] = mv
			from[ti] = o
		} else {
			out[ti] = stay
			from[ti] = int32(ti)
		}
	}
}

func (k *hyperKernel) relaxMove(prev, out []float64, from []int32, scr *latticeScratch) {
	k.sweep(prev, scr, false)
	inf := math.Inf(1)
	for ti, li := range k.latIdx {
		o := scr.org[li]
		if o < 0 || int(o) == ti || math.IsInf(scr.val[li], 1) {
			// No genuine source reaches t cheaper than prev[t]: when the
			// identity wins the lattice, every move into t costs at least
			// prev[t] and lands one layer deeper than the stay state that
			// costs prev[t] — dominated, so it is safe to skip.
			out[ti] = inf
			from[ti] = -1
			continue
		}
		out[ti] = scr.val[li] + changeEpsilon
		from[ti] = o
	}
}

func (k *hyperKernel) relaxBack(ctx context.Context, _ int, exec, hnext, out []float64, scr *latticeScratch) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	w := scr.w
	for j := range w {
		w[j] = exec[j] + hnext[j]
	}
	k.sweep(w, scr, true)
	for ci, li := range k.latIdx {
		best := w[ci] // staying at c: zero transition, no epsilon
		if v := scr.val[li] + changeEpsilon; v < best {
			best = v
		}
		out[ci] = best
	}
	return nil
}
