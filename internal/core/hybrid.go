package core

import (
	"context"
	"errors"
	"fmt"

	"dyndesign/internal/obs"
)

// HybridChoice names the technique a hybrid solve actually ran.
type HybridChoice string

// Hybrid outcomes.
const (
	ChoseUnconstrained HybridChoice = "unconstrained" // the optimum already satisfied K
	ChoseKAware        HybridChoice = "kaware"
	ChoseMerge         HybridChoice = "merge"
)

// SolveHybrid implements the combination §6.4 suggests: the k-aware
// graph's cost grows linearly in K while merging's shrinks as K
// approaches the unconstrained optimum's change count l, so the solver
// picks whichever is predicted cheaper for the instance at hand.
//
// It first computes the unconstrained optimum (both branches need it or
// something at least as expensive). If that already has at most K
// changes it is returned as-is — it is optimal for the constrained
// problem too. Otherwise the work estimates
//
//	kaware ≈ (K+1) · n · m²      (layered DAG relaxation)
//	merge  ≈ (l−K) · l · m       (merge steps × pairs × candidates)
//
// decide the branch. The choice made is reported for the ablation
// benchmarks that validate the switch-over point.
func SolveHybrid(ctx context.Context, p *Problem) (*Solution, HybridChoice, error) {
	if err := p.Validate(); err != nil {
		return nil, "", err
	}
	if p.K == Unconstrained {
		sol, err := SolveUnconstrained(ctx, p)
		return sol, ChoseUnconstrained, err
	}
	unconstrained := *p
	unconstrained.K = Unconstrained
	seed, err := SolveUnconstrained(ctx, &unconstrained)
	if err != nil {
		return nil, "", err
	}
	l := CountChanges(p.Initial, seed.Designs, p.Policy)
	if l <= p.K {
		// Optimal and feasible: re-wrap under the constrained problem so
		// the change count reflects its policy.
		return p.NewSolution(seed.Designs), ChoseUnconstrained, nil
	}
	usable, err := p.usableConfigs()
	if err != nil {
		return nil, "", err
	}
	m := float64(len(usable))
	n := float64(p.Stages)
	kawareWork := float64(p.K+1) * n * m * m
	mergeWork := float64(l-p.K) * float64(l) * m
	if kawareWork <= mergeWork {
		sol, err := SolveKAware(ctx, p)
		return sol, ChoseKAware, err
	}
	sol, _, err := SolveMerge(ctx, p, seed)
	return sol, ChoseMerge, err
}

// Strategy names a constrained-design solution technique; the advisor
// exposes these to users and the CLI.
type Strategy string

// Strategies.
const (
	StrategyKAware       Strategy = "kaware"
	StrategyGreedySeq    Strategy = "greedyseq"
	StrategyMerge        Strategy = "merge"
	StrategyRanking      Strategy = "ranking"
	StrategyRankAndMerge Strategy = "rankmerge"
	StrategyHybrid       Strategy = "hybrid"
	// StrategyPartitioned factors the candidate lattice into
	// independent sub-lattices via the model's interaction graph and
	// recombines per-component exact (or beam-pruned anytime) solves;
	// problems that do not factor are delegated to the exact solver
	// when affordable, so the strategy is valid on any problem. The
	// returned Solution carries the reported optimality gap.
	StrategyPartitioned Strategy = "partitioned"
)

// Strategies lists every available strategy.
func Strategies() []Strategy {
	return []Strategy{
		StrategyKAware, StrategyGreedySeq, StrategyMerge,
		StrategyRanking, StrategyRankAndMerge, StrategyHybrid,
		StrategyPartitioned,
	}
}

// Solve dispatches a problem to the named strategy with default
// options. It is the single entry point through which the advisor and
// the resilient supervisor run strategies, and the place where solve
// outcomes are classified into the Metrics ledger: a context-caused
// return (deadline, cancel, budget cause) counts as a cancellation and
// a *PanicError recovered from the worker pool as a recovered panic.
func Solve(ctx context.Context, p *Problem, strategy Strategy) (*Solution, error) {
	effective := strategy
	if effective == "" {
		effective = StrategyKAware
	}
	sp := p.Tracer.Start(SpanSolve)
	sol, err := solve(ctx, p, strategy)
	sp.End(obs.String("strategy", string(effective)), obs.Bool("ok", err == nil))
	if err != nil {
		var pe *PanicError
		switch {
		case errors.As(err, &pe):
			p.Metrics.noteRecoveredPanic()
		case ctxErr(ctx) != nil:
			p.Metrics.noteCancellation()
		}
	}
	return sol, err
}

// solve is the raw strategy dispatch.
func solve(ctx context.Context, p *Problem, strategy Strategy) (*Solution, error) {
	switch strategy {
	case StrategyKAware, "":
		return SolveKAware(ctx, p)
	case StrategyGreedySeq:
		sol, _, err := SolveGreedySeq(ctx, p)
		return sol, err
	case StrategyMerge:
		sol, _, err := SolveMergeFromUnconstrained(ctx, p)
		return sol, err
	case StrategyRanking:
		return rankingSolution(ctx, p, RankingOptions{})
	case StrategyRankAndMerge:
		return SolveRankAndMerge(ctx, p, RankingOptions{})
	case StrategyHybrid:
		sol, _, err := SolveHybrid(ctx, p)
		return sol, err
	case StrategyPartitioned:
		ps, err := SolvePartitioned(ctx, p)
		if err != nil {
			return nil, err
		}
		return ps.Solution, nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %q", strategy)
	}
}
