package core

import (
	"context"
	"math"
	"reflect"
	"sync"
)

// SolveCache memoizes the dense cost tables across solves that share a
// cost model: the hybrid's unconstrained seed plus its constrained run,
// a SweepK after the Solve whose layers it exposes, and the explain
// audit's oracle-solve-then-replay of each perturbed problem. Problems
// do not cache by default — attach one explicitly (the advisor does)
// and share it by copying the Problem, the same way Metrics is shared.
//
// The cache retains the few most recent table sets (maxCacheEntries,
// MRU-evicted), each keyed by the model identity, stage count,
// endpoints, and candidate list. Multiple live entries are what lets a
// partitioned solve keep one table set per component sub-lattice, so a
// window-to-window re-solve reuses the components the workload did not
// touch. Tables containing non-finite cells (a FallibleModel reporting
// a fault as +Inf) are returned to the requesting solve but never
// retained, so a healthy retry after a fault cannot observe poisoned
// cells. All methods are safe for concurrent use; concurrent builds of
// the same family serialize on the cache so the model is evaluated
// once.
type SolveCache struct {
	mu      sync.Mutex
	entries []*cacheEntry // most recently used first
}

// maxCacheEntries bounds the retained table sets: enough for a full
// solve's tables plus the component tables of a partitioned solve of
// typical width, small enough that stale families age out quickly.
const maxCacheEntries = 8

type cacheEntry struct {
	model CostModel
	// version and versioned record the model's ModelVersion at build
	// time when it implements VersionedModel; a later solve whose model
	// reports a different version never reuses the entry.
	version   uint64
	versioned bool
	stages    int
	initial   Config
	final     *Config
	configs   []Config
	m         *matrices
}

// NewSolveCache returns an empty cache ready to attach to a Problem.
func NewSolveCache() *SolveCache { return &SolveCache{} }

// VersionedModel is an optional CostModel capability for models whose
// outputs can change over a long lifetime — refreshed statistics,
// mutated histograms, a re-analyzed table. ModelVersion must return a
// fingerprint of everything EXEC, TRANS, and SIZE depend on (statistics
// epoch, physical descriptions, the workload segments behind each
// stage): equal versions mean the cost functions are extensionally
// equal. The SolveCache uses it two ways: a cached entry whose model
// reports a new version is invalidated instead of replaying tables from
// a dead world, and two distinct model instances of the same dynamic
// type reporting equal versions may share tables — the warm start a
// long-running advisor gets when it re-solves an unchanged window.
type VersionedModel interface {
	ModelVersion() uint64
}

// modelVersion returns the model's version fingerprint when it exposes
// one.
func modelVersion(m CostModel) (uint64, bool) {
	if vm, ok := m.(VersionedModel); ok {
		return vm.ModelVersion(), true
	}
	return 0, false
}

// sameWorld reports whether the entry's tables describe the same cost
// world as the problem's model: the same instance at an unchanged
// version, or — for versioned models only — another instance of the
// same dynamic type whose fingerprint matches.
func (e *cacheEntry) sameWorld(p *Problem) bool {
	ver, versioned := modelVersion(p.Model)
	if e.model == p.Model {
		return !versioned || (e.versioned && e.version == ver)
	}
	return versioned && e.versioned && e.version == ver &&
		reflect.TypeOf(e.model) == reflect.TypeOf(p.Model)
}

// comparableModel guards the interface comparisons the cache key needs:
// a model of a non-comparable dynamic type (all the repo's models are
// pointers, hence comparable) simply disables caching rather than
// risking a comparison panic.
func comparableModel(m CostModel) bool {
	return m != nil && reflect.TypeOf(m).Comparable()
}

func (e *cacheEntry) matches(p *Problem, configs []Config) bool {
	if e == nil || !e.sameWorld(p) || e.stages != p.Stages || e.initial != p.Initial {
		return false
	}
	if (e.final == nil) != (p.Final == nil) {
		return false
	}
	if e.final != nil && *e.final != *p.Final {
		return false
	}
	if len(e.configs) != len(configs) {
		return false
	}
	for i, c := range e.configs {
		if c != configs[i] {
			return false
		}
	}
	return true
}

// tables returns the cached tables for the problem, building (or
// upgrading with the all-pairs TRANS rows) on miss.
func (c *SolveCache) tables(ctx context.Context, p *Problem, configs []Config, needTrans bool) (*matrices, error) {
	if !comparableModel(p.Model) {
		return p.buildMatrices(ctx, configs, needTrans)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.entries {
		if !e.matches(p, configs) {
			continue
		}
		c.touch(i)
		m := e.m
		if !needTrans || m.trans != nil {
			p.Metrics.noteMatrixReuse()
			return m, nil
		}
		// Upgrade: the entry was built for the hypercube kernel; a dense
		// consumer additionally needs the all-pairs TRANS rows. Readers
		// that took the entry earlier never touch the trans field (they
		// asked for needTrans=false), so attaching it under the lock is
		// safe; SequenceCostSplit readers go through peek's copy.
		trans, err := p.buildTransRows(ctx, configs)
		if err != nil {
			return nil, err
		}
		if rowsFinite(trans) {
			m.trans = trans
			p.Metrics.noteMatrixReuse()
			return m, nil
		}
		faulted := *m
		faulted.trans = trans
		return &faulted, nil
	}
	// Capture the model version before evaluating it: if the world
	// changes mid-build, the recorded (pre-build) version differs from
	// the next solve's and the entry is conservatively rebuilt.
	ver, versioned := modelVersion(p.Model)
	m, err := p.buildMatrices(ctx, configs, needTrans)
	if err != nil {
		return nil, err
	}
	if m.finite() {
		var final *Config
		if p.Final != nil {
			f := *p.Final
			final = &f
		}
		c.entries = append([]*cacheEntry{{
			model: p.Model, version: ver, versioned: versioned,
			stages: p.Stages, initial: p.Initial,
			final: final, configs: configs, m: m,
		}}, c.entries...)
		if len(c.entries) > maxCacheEntries {
			c.entries = c.entries[:maxCacheEntries]
		}
	}
	return m, nil
}

// touch moves entry i to the front of the MRU order.
func (c *SolveCache) touch(i int) {
	if i == 0 {
		return
	}
	e := c.entries[i]
	copy(c.entries[1:i+1], c.entries[:i])
	c.entries[0] = e
}

// peek returns a stable view of the cached tables when they were built
// against this problem's model and stage count, and nil otherwise. The
// shallow copy decouples the caller from a concurrent trans-row upgrade;
// the row slices themselves are immutable once published. Endpoints and
// candidate filtering are deliberately not part of the check: the view
// is consumed through per-Config index lookups of verbatim model
// outputs, which are correct for any endpoints.
func (c *SolveCache) peek(p *Problem) *matrices {
	if c == nil || !comparableModel(p.Model) {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if !e.sameWorld(p) || e.stages != p.Stages {
			continue
		}
		p.Metrics.noteMatrixReuse()
		view := *e.m
		return &view
	}
	return nil
}

func finiteCell(v float64) bool {
	return !math.IsInf(v, 0) && !math.IsNaN(v)
}

func rowsFinite(rows [][]float64) bool {
	for _, row := range rows {
		for _, v := range row {
			if !finiteCell(v) {
				return false
			}
		}
	}
	return true
}

// finite reports whether every built cell is finite — the retention
// criterion that keeps faulted evaluations out of the cache.
func (m *matrices) finite() bool {
	if !rowsFinite(m.exec) || !rowsFinite(m.trans) {
		return false
	}
	for _, v := range m.initTrans {
		if !finiteCell(v) {
			return false
		}
	}
	for _, v := range m.finalTrans {
		if !finiteCell(v) {
			return false
		}
	}
	return true
}
