package core

import (
	"errors"
	"math/rand"
	"testing"
)

// groupedModel is a synthetic InteractionModel: the structure bits are
// split into disjoint interaction groups, EXEC decomposes as a base
// term plus one term per group depending only on the group's projection
// of the configuration, and TRANS is per-structure additive. Costs are
// integer-valued so every sum is exact in float64 — partitioned
// recombination and the monolithic exact solve must then agree to the
// last bit whenever the reported gap is zero.
type groupedModel struct {
	additiveModel
	groups []Config
}

func (m *groupedModel) ExecInteractions() []Config { return m.groups }

var (
	_ InteractionModel   = (*groupedModel)(nil)
	_ AdditiveTransModel = (*groupedModel)(nil)
)

// randomGroupedModel builds a grouped model over nGroups consecutive
// bit-ranges of bitsPer structures each, with integer costs.
func randomGroupedModel(rng *rand.Rand, stages, nGroups, bitsPer int) (*groupedModel, []Config) {
	structs := nGroups * bitsPer
	n := 1 << uint(structs)
	m := &groupedModel{
		additiveModel: additiveModel{
			exec: make([][]float64, stages),
			add:  make([]float64, structs),
			drop: make([]float64, structs),
		},
		groups: make([]Config, nGroups),
	}
	for g := 0; g < nGroups; g++ {
		m.groups[g] = ((1 << uint(bitsPer)) - 1) << uint(g*bitsPer)
	}
	for s := 0; s < structs; s++ {
		m.add[s] = float64(rng.Intn(40))
		m.drop[s] = float64(rng.Intn(10))
	}
	// Per-group term tables: term[g][stage][projection >> shift].
	for i := 0; i < stages; i++ {
		base := float64(rng.Intn(100))
		row := make([]float64, n)
		for j := range row {
			row[j] = base
		}
		m.exec[i] = row
	}
	for g := 0; g < nGroups; g++ {
		shift := uint(g * bitsPer)
		sub := 1 << uint(bitsPer)
		for i := 0; i < stages; i++ {
			term := make([]float64, sub)
			for v := range term {
				term[v] = float64(rng.Intn(60))
			}
			for j := 0; j < n; j++ {
				m.exec[i][j] += term[(j>>shift)&(sub-1)]
			}
		}
	}
	configs := make([]Config, n)
	for i := range configs {
		configs[i] = Config(i)
	}
	return m, configs
}

// runPartitionCase asserts the partitioned solver's contract on one
// randomized grouped problem against the monolithic exact solve: the
// solution is feasible, the gap is non-negative, the cost sandwich
// Cost − Gap ≤ OPT ≤ Cost holds, and a zero gap means bitwise cost
// equality (integer costs make float sums exact).
func runPartitionCase(t *testing.T, seed int64, stages, nGroups, bitsPer, k int, policy ChangePolicy, withFinal, forceBeam bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, configs := randomGroupedModel(rng, stages, nGroups, bitsPer)
	initial := configs[rng.Intn(len(configs))]
	p := &Problem{
		Stages: stages, Configs: configs, Initial: initial,
		K: k, Policy: policy, Model: m, Parallelism: 1,
	}
	if withFinal {
		f := configs[rng.Intn(len(configs))]
		p.Final = &f
	}
	exactP := *p
	exact, exactErr := SolveKAware(bg, &exactP)
	ps, psErr := SolvePartitionedOpts(bg, p, PartitionOptions{ForceBeam: forceBeam})
	if (exactErr == nil) != (psErr == nil) {
		t.Fatalf("feasibility disagrees: exact err %v, partitioned err %v", exactErr, psErr)
	}
	if exactErr != nil {
		return
	}
	if err := p.CheckSolution(ps.Solution); err != nil {
		t.Fatalf("partitioned solution invalid: %v", err)
	}
	if ps.Gap < 0 {
		t.Fatalf("negative gap %v", ps.Gap)
	}
	if ps.Gap != ps.Solution.Gap {
		t.Fatalf("PartitionedSolution.Gap %v != Solution.Gap %v", ps.Gap, ps.Solution.Gap)
	}
	const tol = 1e-6
	if ps.Cost < exact.Cost-tol {
		t.Fatalf("partitioned cost %v beats the exact optimum %v", ps.Cost, exact.Cost)
	}
	if ps.Cost-ps.Gap > exact.Cost+tol {
		t.Fatalf("lower bound not admissible: cost %v − gap %v > optimum %v", ps.Cost, ps.Gap, exact.Cost)
	}
	if ps.Gap == 0 && ps.Cost != exact.Cost {
		t.Fatalf("gap 0 but cost %v != exact %v (integer costs must agree bitwise)", ps.Cost, exact.Cost)
	}
	if nGroups >= 2 && !ps.Factored {
		t.Fatalf("grouped cross-product problem did not factor (components=%d)", ps.Components)
	}
	if ps.Factored && len(ps.Reports) != ps.Components {
		t.Fatalf("%d reports for %d components", len(ps.Reports), ps.Components)
	}
}

// TestPartitionedMatchesExact sweeps the randomized grid: factorable
// shapes under both policies, constrained and free finals, exact and
// forced-beam component paths.
func TestPartitionedMatchesExact(t *testing.T) {
	seed := int64(100)
	for _, nGroups := range []int{2, 3} {
		for _, bitsPer := range []int{1, 2} {
			for _, stages := range []int{1, 5, 12} {
				for _, k := range []int{0, 1, 2, Unconstrained} {
					for _, policy := range []ChangePolicy{FreeEndpoints, CountAll} {
						seed++
						runPartitionCase(t, seed, stages, nGroups, bitsPer, k,
							policy, seed%2 == 0, seed%5 == 0)
					}
				}
			}
		}
	}
}

// FuzzPartitionEquivalence fuzzes the same contract; CI runs it with a
// short budget on every PR (make fuzz-smoke).
func FuzzPartitionEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(2), uint8(1), uint8(2), false, false, false)
	f.Add(int64(2), uint8(9), uint8(3), uint8(2), uint8(1), true, true, false)
	f.Add(int64(3), uint8(4), uint8(2), uint8(2), uint8(0), false, true, true)
	f.Add(int64(4), uint8(12), uint8(3), uint8(1), uint8(5), true, false, true)
	f.Fuzz(func(t *testing.T, seed int64, stagesRaw, groupsRaw, bitsRaw, kRaw uint8, countAll, withFinal, forceBeam bool) {
		stages := 1 + int(stagesRaw%12)
		nGroups := 2 + int(groupsRaw%2)
		bitsPer := 1 + int(bitsRaw%2)
		k := int(kRaw%6) - 1 // -1 is Unconstrained
		policy := FreeEndpoints
		if countAll {
			policy = CountAll
		}
		runPartitionCase(t, seed, stages, nGroups, bitsPer, k, policy, withFinal, forceBeam)
	})
}

// synchronizedModel builds a two-component problem whose components
// both want their single design change at the same stage (switchAt) —
// the shape where the shared-stage fast path must prove optimality —
// or at different stages when the offsets differ.
func synchronizedModel(stages int, switchAt [2]int) (*groupedModel, []Config) {
	m := &groupedModel{
		additiveModel: additiveModel{
			exec: make([][]float64, stages),
			add:  []float64{5, 5},
			drop: []float64{1, 1},
		},
		groups: []Config{1, 2},
	}
	for i := 0; i < stages; i++ {
		row := make([]float64, 4)
		for c := 0; c < 4; c++ {
			v := 0.0
			for g := 0; g < 2; g++ {
				has := c&(1<<uint(g)) != 0
				if i >= switchAt[g] {
					// After the switch point the group's index saves 100/stage.
					if has {
						v += 10
					} else {
						v += 110
					}
				} else {
					// Before it the index is pure overhead.
					if has {
						v += 30
					} else {
						v += 20
					}
				}
			}
			row[c] = v
		}
		m.exec[i] = row
	}
	return m, []Config{0, 1, 2, 3}
}

// TestPartitionedTightK pins the recombination behaviour under a tight
// shared budget: components wanting the same switch stage compose into
// one global change (gap 0, equal to exact); components wanting
// different stages must trade budget and stay within the reported gap.
func TestPartitionedTightK(t *testing.T) {
	t.Run("same stage", func(t *testing.T) {
		m, configs := synchronizedModel(8, [2]int{4, 4})
		p := &Problem{Stages: 8, Configs: configs, Initial: 0, K: 1, Model: m}
		exact, err := SolveKAware(bg, &Problem{Stages: 8, Configs: configs, Initial: 0, K: 1, Model: m})
		if err != nil {
			t.Fatal(err)
		}
		ps, err := SolvePartitioned(bg, p)
		if err != nil {
			t.Fatal(err)
		}
		if !ps.Factored || ps.Components != 2 {
			t.Fatalf("expected 2 components, got %+v", ps)
		}
		if ps.Gap != 0 {
			t.Fatalf("synchronized wants must compose with gap 0, got %v", ps.Gap)
		}
		if ps.Cost != exact.Cost {
			t.Fatalf("cost %v != exact %v", ps.Cost, exact.Cost)
		}
		if ps.Changes != 1 {
			t.Fatalf("changes = %d, want 1 shared change", ps.Changes)
		}
	})
	t.Run("different stages", func(t *testing.T) {
		m, configs := synchronizedModel(8, [2]int{2, 6})
		p := &Problem{Stages: 8, Configs: configs, Initial: 0, K: 1, Model: m}
		exact, err := SolveKAware(bg, &Problem{Stages: 8, Configs: configs, Initial: 0, K: 1, Model: m})
		if err != nil {
			t.Fatal(err)
		}
		ps, err := SolvePartitioned(bg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckSolution(ps.Solution); err != nil {
			t.Fatal(err)
		}
		const tol = 1e-9
		if ps.Cost < exact.Cost-tol {
			t.Fatalf("cost %v beats optimum %v", ps.Cost, exact.Cost)
		}
		if ps.Cost-ps.Gap > exact.Cost+tol {
			t.Fatalf("bound not admissible: %v − %v > %v", ps.Cost, ps.Gap, exact.Cost)
		}
	})
}

// TestPartitionedSingleComponent pins the degenerate delegation: a
// problem whose interaction graph is one clique must return the exact
// solver's answer byte for byte, with gap 0 and Factored false.
func TestPartitionedSingleComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, configs := randomGroupedModel(rng, 10, 1, 3)
	m.groups = []Config{ConfigOf(0, 1, 2)} // one clique spanning everything
	p := &Problem{Stages: 10, Configs: configs, Initial: 0, K: 2, Model: m}
	exact, err := SolveKAware(bg, &Problem{Stages: 10, Configs: configs, Initial: 0, K: 2, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := SolvePartitioned(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Factored || ps.Components != 1 || ps.Gap != 0 {
		t.Fatalf("single-clique problem: %+v", ps)
	}
	if ps.Cost != exact.Cost || ps.Changes != exact.Changes {
		t.Fatalf("delegated solve diverges: (%v, %d) vs (%v, %d)",
			ps.Cost, ps.Changes, exact.Cost, exact.Changes)
	}
	for i := range exact.Designs {
		if ps.Designs[i] != exact.Designs[i] {
			t.Fatalf("design %d: %v != %v", i, ps.Designs[i], exact.Designs[i])
		}
	}
}

// TestPartitionedGapMonotone asserts the anytime property: widening the
// beam along powers of two never increases the reported gap, and every
// width's cost stays within its own reported gap of the exact optimum.
func TestPartitionedGapMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, configs := randomGroupedModel(rng, 14, 3, 2)
	exact, err := SolveKAware(bg, &Problem{Stages: 14, Configs: configs, Initial: 0, K: 2, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	prevGap := -1.0
	for _, width := range []int{64, 128, 256, 512} {
		p := &Problem{Stages: 14, Configs: configs, Initial: 0, K: 2, Model: m}
		ps, err := SolvePartitionedOpts(bg, p, PartitionOptions{ForceBeam: true, BeamWidth: width})
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if prevGap >= 0 && ps.Gap > prevGap+1e-12 {
			t.Fatalf("gap grew when widening to %d: %v > %v", width, ps.Gap, prevGap)
		}
		prevGap = ps.Gap
		if ps.Cost < exact.Cost-1e-6 || ps.Cost-ps.Gap > exact.Cost+1e-6 {
			t.Fatalf("width %d: cost %v gap %v vs optimum %v", width, ps.Cost, ps.Gap, exact.Cost)
		}
	}
}

// TestPartitionConfigsEligibility pins every reason partitioning is
// refused, and the component ordering when it is not.
func TestPartitionConfigsEligibility(t *testing.T) {
	rng := rand.New(rand.NewSource(31))

	t.Run("no interaction model", func(t *testing.T) {
		m, configs := randomAdditiveModel(rng, 4, 4)
		p := &Problem{Stages: 4, Configs: configs, Initial: 0, K: 1, Model: m}
		if partitionConfigs(p, configs) != nil {
			t.Fatal("partitioned a model without ExecInteractions")
		}
	})

	t.Run("non-additive trans part", func(t *testing.T) {
		m, configs := randomGroupedModel(rng, 4, 2, 1)
		m.add[0] = -1
		p := &Problem{Stages: 4, Configs: configs, Initial: 0, K: 1, Model: m}
		if partitionConfigs(p, configs) != nil {
			t.Fatal("partitioned despite a negative TransParts entry")
		}
	})

	t.Run("countall initial outside span", func(t *testing.T) {
		m, configs := randomGroupedModel(rng, 4, 2, 1)
		p := &Problem{Stages: 4, Configs: configs, Initial: ConfigOf(5), K: 1, Policy: CountAll, Model: m}
		if partitionConfigs(p, configs) != nil {
			t.Fatal("partitioned a CountAll problem whose initial leaves the span")
		}
		p.Policy = FreeEndpoints
		if partitionConfigs(p, configs) == nil {
			t.Fatal("FreeEndpoints with out-of-span initial must still factor")
		}
	})

	t.Run("single clique", func(t *testing.T) {
		m, configs := randomGroupedModel(rng, 4, 2, 1)
		m.groups = []Config{3}
		p := &Problem{Stages: 4, Configs: configs, Initial: 0, K: 1, Model: m}
		if partitionConfigs(p, configs) != nil {
			t.Fatal("partitioned a single-component clique graph")
		}
	})

	t.Run("non-product candidate list", func(t *testing.T) {
		m, _ := randomGroupedModel(rng, 4, 2, 1)
		// {00, 01, 10} is missing 11: projections {0,1}×{0,1} ≠ list.
		configs := []Config{0, 1, 2}
		p := &Problem{Stages: 4, Configs: configs, Initial: 0, K: 1, Model: m}
		if partitionConfigs(p, configs) != nil {
			t.Fatal("partitioned a non-cross-product candidate list")
		}
	})

	t.Run("component order and projections", func(t *testing.T) {
		m, configs := randomGroupedModel(rng, 4, 3, 2)
		p := &Problem{Stages: 4, Configs: configs, Initial: 0, K: 1, Model: m}
		plan := partitionConfigs(p, configs)
		if plan == nil {
			t.Fatal("3×2-bit cross product did not factor")
		}
		if len(plan.masks) != 3 {
			t.Fatalf("masks = %v", plan.masks)
		}
		for j, want := range []Config{ConfigOf(0, 1), ConfigOf(2, 3), ConfigOf(4, 5)} {
			if plan.masks[j] != want {
				t.Fatalf("mask %d = %v, want %v", j, plan.masks[j], want)
			}
			if len(plan.subs[j]) != 4 {
				t.Fatalf("component %d has %d projections, want 4", j, len(plan.subs[j]))
			}
		}
	})
}

// TestAutoLadder pins the resilient ladder's strategy selection around
// the lattice ceiling.
func TestAutoLadder(t *testing.T) {
	narrow := &Problem{Configs: []Config{0, 1, 2}}
	if got := AutoLadder(narrow, StrategyKAware); got[0] != StrategyKAware {
		t.Fatalf("narrow ladder starts with %v", got)
	}
	wide := &Problem{Configs: make([]Config, 0, maxLatticeBits+2)}
	for s := 0; s <= maxLatticeBits+1; s++ {
		wide.Configs = append(wide.Configs, ConfigOf(s))
	}
	got := AutoLadder(wide, StrategyKAware)
	if got[0] != StrategyPartitioned || got[1] != StrategyKAware {
		t.Fatalf("wide ladder = %v, want partitioned first", got)
	}
	if got := AutoLadder(wide, StrategyPartitioned); got[0] != StrategyPartitioned || len(got) != 3 {
		t.Fatalf("partitioned-primary ladder = %v (must not double up)", got)
	}
}

// TestLatticeOverflowDiagnostic asserts the silent dense fallback above
// the hypercube ceiling is counted and surfaced as a typed error.
func TestLatticeOverflowDiagnostic(t *testing.T) {
	var metrics Metrics
	if err := metrics.LatticeOverflowDiagnostic(); err != nil {
		t.Fatalf("fresh ledger reports %v", err)
	}
	structs := maxLatticeBits + 2
	m := &additiveModel{
		exec: [][]float64{nil}, // kernel resolution never prices EXEC
		add:  make([]float64, structs),
		drop: make([]float64, structs),
	}
	configs := make([]Config, structs+1)
	for s := 0; s < structs; s++ {
		configs[s+1] = ConfigOf(s)
	}
	p := &Problem{Stages: 1, Configs: configs, Initial: 0, K: 1, Model: m,
		Kernel: KernelHypercube, Metrics: &metrics}
	if got := resolveKernel(p, configs).kind; got != KernelDense {
		t.Fatalf("22-bit span resolved to %v, want dense fallback", got)
	}
	if got := metrics.LatticeOverflows(); got != 1 {
		t.Fatalf("LatticeOverflows = %d, want 1", got)
	}
	err := metrics.LatticeOverflowDiagnostic()
	if !errors.Is(err, ErrLatticeTooLarge) {
		t.Fatalf("diagnostic = %v, want ErrLatticeTooLarge", err)
	}
}

// TestPartitionedCacheWarmStart asserts a re-solve through a shared
// SolveCache reuses every component's tables: the multi-entry cache
// must hold one entry per component sub-lattice.
func TestPartitionedCacheWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m, configs := randomGroupedModel(rng, 10, 3, 2)
	p := &Problem{
		Stages: 10, Configs: configs, Initial: 0, K: 2, Model: m,
		Cache: NewSolveCache(), Metrics: &Metrics{},
	}
	ps1, err := SolvePartitioned(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	builds := p.Metrics.MatrixBuilds()
	if builds == 0 {
		t.Fatal("no table builds recorded")
	}
	ps2, err := SolvePartitioned(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics.MatrixBuilds(); got != builds {
		t.Fatalf("re-solve rebuilt tables: %d -> %d builds", builds, got)
	}
	if p.Metrics.MatrixReuses() == 0 {
		t.Fatal("re-solve reused no tables")
	}
	if ps1.Cost != ps2.Cost {
		t.Fatalf("warm re-solve changed the answer: %v != %v", ps1.Cost, ps2.Cost)
	}
}

// TestPartitionedStrategy asserts the strategy registration: solving
// through the generic dispatcher matches SolvePartitioned.
func TestPartitionedStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m, configs := randomGroupedModel(rng, 8, 2, 2)
	p := &Problem{Stages: 8, Configs: configs, Initial: 0, K: 2, Model: m}
	viaStrategy, err := Solve(bg, p, StrategyPartitioned)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SolvePartitioned(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if viaStrategy.Cost != direct.Cost {
		t.Fatalf("strategy dispatch cost %v != direct %v", viaStrategy.Cost, direct.Cost)
	}
	found := false
	for _, s := range Strategies() {
		if s == StrategyPartitioned {
			found = true
		}
	}
	if !found {
		t.Fatalf("StrategyPartitioned missing from %v", Strategies())
	}
}
