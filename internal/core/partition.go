package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"dyndesign/internal/obs"
)

// ErrLatticeTooLarge tags the diagnostic raised when a solve's candidate
// span exceeds the 20-bit hypercube ceiling (maxLatticeBits): the exact
// graph solvers silently fall back to the dense O(n·c²) all-pairs scan,
// which is why a wide solve suddenly got slow. The Metrics ledger counts
// these fallbacks (LatticeOverflows) and the advisor surfaces them on
// the Recommendation; SolvePartitioned is the remedy when the model can
// report structure interactions.
var ErrLatticeTooLarge = errors.New("core: candidate span exceeds the 20-bit hypercube lattice ceiling; exact solvers fall back to the dense O(n·c²) scan")

// LatticeOverflowDiagnostic converts the ledger's lattice-overflow count
// into a typed error: non-nil (wrapping ErrLatticeTooLarge) when at
// least one solve's span exceeded the hypercube ceiling and ran on the
// dense fallback instead.
func (m *Metrics) LatticeOverflowDiagnostic() error {
	if n := m.LatticeOverflows(); n > 0 {
		return fmt.Errorf("%w (%d table builds above the ceiling)", ErrLatticeTooLarge, n)
	}
	return nil
}

// InteractionModel is an optional CostModel capability for models that
// know which candidate structures jointly affect a statement's EXEC
// cost. ExecInteractions returns one Config per interaction clique —
// typically the set of candidate structures relevant to one workload
// statement; structures never sharing a clique must not interact:
//
//	EXEC(i, c) = EXEC(i, ∅) + Σ_j [ EXEC(i, c ∩ M_j) − EXEC(i, ∅) ]
//
// for every stage i, where M_1..M_p are the connected components of the
// clique graph. The advisor's what-if model has exactly this shape (a
// statement's cost depends only on the indexes usable by that
// statement). SolvePartitioned trusts the decomposition the way the
// kernels trust TransParts: reported sequence costs are always
// recomputed through the full model, but the optimality-gap claim
// relies on the interactions being complete.
type InteractionModel interface {
	CostModel
	// ExecInteractions returns the interaction cliques. Called at most
	// once per solve, so it may allocate.
	ExecInteractions() []Config
}

// Partitioned-solver defaults.
const (
	// DefaultBeamWidth is the anytime beam width used for components too
	// wide to solve exactly.
	DefaultBeamWidth = 512
	// DefaultMaxExactConfigs is the largest per-component candidate list
	// the partitioned solver hands to the exact layered DP when the
	// component's span exceeds the hypercube ceiling (the dense kernel's
	// O(n·c²) stays affordable up to roughly this many configurations).
	DefaultMaxExactConfigs = 4096
)

// PartitionOptions tunes SolvePartitionedOpts.
type PartitionOptions struct {
	// BeamWidth bounds the beam of the anytime search used for
	// components that cannot be solved exactly; 0 means
	// DefaultBeamWidth. Widening the beam along powers of two never
	// increases the reported gap: the search re-runs its internal
	// doubling schedule (64, 128, ...) and keeps the best design found
	// at any width.
	BeamWidth int
	// MaxExactConfigs is the candidate-count ceiling under which a
	// component (or an unfactorable problem) is still solved exactly
	// with the dense kernel even though its span exceeds the hypercube
	// ceiling; 0 means DefaultMaxExactConfigs.
	MaxExactConfigs int
	// ForceBeam forces the beam path even where an exact solve is
	// affordable — a testing and diagnostics knob.
	ForceBeam bool
}

func (o PartitionOptions) withDefaults() PartitionOptions {
	if o.BeamWidth <= 0 {
		o.BeamWidth = DefaultBeamWidth
	}
	if o.MaxExactConfigs <= 0 {
		o.MaxExactConfigs = DefaultMaxExactConfigs
	}
	return o
}

// ComponentReport describes one independent component of a partitioned
// solve.
type ComponentReport struct {
	// Mask is the component's structure bits.
	Mask Config
	// Bits is Mask.Count(); Configs the size of the component's
	// projected candidate list.
	Bits, Configs int
	// Exact is true when the component was solved exactly (its share of
	// the gap is zero); false for the beam path.
	Exact bool
	// Budget is the per-step change budget the recombination granted the
	// component.
	Budget int
	// Cost is the component's epsilon-free objective share; LowerBound
	// its admissible bound (equal to Cost for exact components up to
	// tie-breaking).
	Cost, LowerBound float64
}

// PartitionedSolution is a design sequence with an anytime optimality
// certificate.
type PartitionedSolution struct {
	*Solution
	// LowerBound is an admissible lower bound on the constrained
	// optimum (trusting the model's InteractionModel/AdditiveTransModel
	// decompositions); Gap = max(0, Cost − LowerBound). Gap is 0 when
	// every component factored and solved exactly.
	LowerBound float64
	Gap        float64
	// Components is the number of independent sub-lattices solved (1
	// when the problem did not factor). Factored reports whether the
	// interaction graph actually split the problem.
	Components int
	Factored   bool
	// Reports has one entry per component, ordered by lowest structure
	// bit.
	Reports []ComponentReport
}

// SolvePartitioned solves the constrained design problem by factoring
// the candidate lattice into independent sub-lattices: structures whose
// transition costs are per-structure additive (TransParts) and that
// never co-affect any statement's EXEC cost (ExecInteractions) are
// independent, so each connected component of the interaction graph is
// solved on its own — exactly with the hypercube/dense kernels when
// small enough, with a beam-pruned anytime search otherwise — and the
// per-component sequences are recombined under the shared k-per-step
// constraint by a small budget knapsack plus a synchronization repair
// pass (simultaneous component moves at one stage count as a single
// global change). The result always carries a reported optimality gap:
// exactly 0 when everything factored and solved exactly, Cost − LB
// otherwise.
//
// Problems that do not factor (no InteractionModel, non-product
// candidate list, a single connected component) are delegated to the
// exact solver when affordable and to the anytime beam over the whole
// candidate list when not, so SolvePartitioned is safe to call on any
// valid problem.
func SolvePartitioned(ctx context.Context, p *Problem) (*PartitionedSolution, error) {
	return SolvePartitionedOpts(ctx, p, PartitionOptions{})
}

// SolvePartitionedOpts is SolvePartitioned with explicit options.
func SolvePartitionedOpts(ctx context.Context, p *Problem, opts PartitionOptions) (*PartitionedSolution, error) {
	opts = opts.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return nil, err
	}
	sp := p.Tracer.Start(SpanPartitionCluster)
	plan := partitionConfigs(p, configs)
	nComp := 1
	if plan != nil {
		nComp = len(plan.masks)
	}
	sp.End(obs.Int("components", int64(nComp)), obs.Bool("factored", plan != nil),
		obs.Int("configs", int64(len(configs))))
	if plan == nil {
		return solveUnfactored(ctx, p, configs, opts)
	}
	return solveFactored(ctx, p, configs, plan, opts)
}

// partitionPlan is a discovered factoring of the candidate list.
type partitionPlan struct {
	masks []Config   // disjoint component masks, ordered by lowest bit
	subs  [][]Config // per-component projected candidates, first-appearance order
}

// partitionConfigs discovers the independent components of the problem,
// or returns nil when it does not factor: the model must expose both
// interaction cliques and valid additive transition parts over the
// span, the clique graph must split into at least two components, and
// the candidate list must be exactly the cross product of its
// per-component projections (so recombined designs are guaranteed to be
// candidates). CountAll problems whose initial configuration holds
// structures outside the span are refused: dropping those structures
// forces a global first-stage change no per-component budget accounts
// for.
func partitionConfigs(p *Problem, configs []Config) *partitionPlan {
	im, ok := p.Model.(InteractionModel)
	if !ok {
		return nil
	}
	am, ok := p.Model.(AdditiveTransModel)
	if !ok {
		return nil
	}
	var span Config
	for _, c := range configs {
		span |= c
	}
	if span == 0 {
		return nil
	}
	if p.Policy == CountAll && p.Initial&^span != 0 {
		return nil
	}
	add, drop := am.TransParts()
	for s := span; s != 0; s &= s - 1 {
		bit := bits.TrailingZeros64(uint64(s))
		if bit >= len(add) || bit >= len(drop) {
			return nil
		}
		for _, v := range [2]float64{add[bit], drop[bit]} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil
			}
		}
	}

	// Union-find over the span's structure bits, joined by the cliques.
	var parent [MaxStructures]int
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, clique := range im.ExecInteractions() {
		clique &= span
		if clique == 0 {
			continue
		}
		first := bits.TrailingZeros64(uint64(clique))
		for c := clique; c != 0; c &= c - 1 {
			union(first, bits.TrailingZeros64(uint64(c)))
		}
	}
	rootMask := make(map[int]Config)
	order := make([]int, 0, 4)
	for s := span; s != 0; s &= s - 1 {
		bit := bits.TrailingZeros64(uint64(s))
		r := find(bit)
		if _, seen := rootMask[r]; !seen {
			order = append(order, r)
		}
		rootMask[r] |= 1 << uint(bit)
	}
	if len(order) < 2 {
		return nil
	}
	masks := make([]Config, len(order))
	for i, r := range order {
		masks[i] = rootMask[r]
	}

	// Cross-product check: the candidate list must be exactly
	// S_1 × … × S_p, where S_j is the set of distinct projections onto
	// component j. Each candidate is the union of its projections, so
	// the projection map is injective; cardinality equality then makes
	// it a bijection — every recombined design is a candidate.
	subs := make([][]Config, len(masks))
	product := 1
	for j, mask := range masks {
		seen := make(map[Config]bool, 16)
		var sub []Config
		for _, c := range configs {
			pr := c & mask
			if !seen[pr] {
				seen[pr] = true
				sub = append(sub, pr)
			}
		}
		subs[j] = sub
		if product > len(configs)/len(sub)+1 { // overflow guard
			return nil
		}
		product *= len(sub)
		if product > len(configs) {
			return nil
		}
	}
	if product != len(configs) {
		return nil
	}
	return &partitionPlan{masks: masks, subs: subs}
}

// componentProblem builds the sub-problem a component is solved on: the
// same model and stages, the projected candidate list and endpoints,
// and no space bound (the bound was already applied to the full
// candidate list the projections came from).
func (p *Problem) componentProblem(mask Config, configs []Config) *Problem {
	sub := *p
	sub.Configs = configs
	sub.Initial = p.Initial & mask
	sub.SpaceBound = 0
	if p.Final != nil {
		f := *p.Final & mask
		sub.Final = &f
	}
	return &sub
}

// componentPoint is one entry of a component's cost-versus-budget
// curve: the best design found with at most that many counted changes.
type componentPoint struct {
	feasible bool
	cost     float64 // epsilon-free, recomputed through the model
	designs  []Config
	// changeStages lists the stage indices whose change counts against
	// k under the problem's policy (stage 0 appears only under
	// CountAll).
	changeStages []int
}

func newComponentPoint(sub *Problem, sol *Solution) componentPoint {
	return componentPoint{
		feasible:     true,
		cost:         sol.Cost,
		designs:      sol.Designs,
		changeStages: countedChangeStages(sub.Initial, sol.Designs, sub.Policy),
	}
}

// countedChangeStages lists the stages whose design change counts
// against k: stage 0 only under CountAll, every interior change always.
func countedChangeStages(initial Config, designs []Config, policy ChangePolicy) []int {
	var out []int
	if policy == CountAll && len(designs) > 0 && designs[0] != initial {
		out = append(out, 0)
	}
	for i := 1; i < len(designs); i++ {
		if designs[i] != designs[i-1] {
			out = append(out, i)
		}
	}
	return out
}

// component is one solved sub-lattice: its curve over budgets 0..K (a
// single point when K is unconstrained) and its admissible
// lower-bound share.
type component struct {
	mask    Config
	configs []Config
	exact   bool
	curve   []componentPoint
	lb      float64
}

// resolveComponentKernel picks tables and a relaxer for a sub-problem.
func resolveComponentKernel(ctx context.Context, sub *Problem) (*matrices, transRelaxer, error) {
	ch := resolveKernel(sub, sub.Configs)
	m, err := sub.tables(ctx, sub.Configs, ch.needTrans())
	if err != nil {
		return nil, nil, err
	}
	return m, ch.kernel(m), nil
}

// exactCurve computes a component's exact cost-versus-budget curve from
// one layered-DP run, the way SweepK reads every layer of a single
// relaxation — but retaining the backtracked designs the recombination
// needs. The curve is monotone non-increasing: each budget keeps the
// previous design unless the DP offers a strictly cheaper one.
func exactCurve(ctx context.Context, sub *Problem, k int) ([]componentPoint, error) {
	if k == Unconstrained {
		sol, err := SolveUnconstrained(ctx, sub)
		if err != nil {
			return nil, err
		}
		return []componentPoint{newComponentPoint(sub, sol)}, nil
	}
	m, kern, err := resolveComponentKernel(ctx, sub)
	if err != nil {
		return nil, err
	}
	d, err := sub.runLayeredDP(ctx, m, kern, sub.Configs, k+1)
	if err != nil {
		return nil, err
	}
	points := make([]componentPoint, k+1)
	var prev *Solution
	prevCfg, prevLayer := -1, -1
	for l := 0; l <= k; l++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		cfg, layer, ok := d.best(l)
		if !ok {
			continue
		}
		sol := prev
		if cfg != prevCfg || layer != prevLayer {
			sol = sub.NewSolution(d.backtrack(cfg, layer))
		}
		if prev != nil && prev.Cost <= sol.Cost {
			sol = prev
		} else {
			prevCfg, prevLayer = cfg, layer
		}
		prev = sol
		points[l] = newComponentPoint(sub, sol)
	}
	return points, nil
}

// beamState is one (configuration, layer) node of the anytime search.
type beamState struct {
	cfg, layer int32
	cost       float64
	parent     int32 // index into the previous stage's kept slice
}

// beamCurve runs the beam-pruned anytime search with an internal
// doubling widening schedule (64, 128, …, BeamWidth), keeping the best
// design found at any width per budget. Because every wider run keeps
// the narrower runs' results, the returned curve — and hence the
// reported gap — is monotone non-increasing as BeamWidth grows along
// powers of two. The admissible lower bound is the unconstrained
// optimum of the sub-problem (a relaxation of any change budget).
func beamCurve(ctx context.Context, sub *Problem, k int, opts PartitionOptions) ([]componentPoint, float64, error) {
	m, kern, err := resolveComponentKernel(ctx, sub)
	if err != nil {
		return nil, 0, err
	}
	lbSol, err := SolveUnconstrained(ctx, sub)
	if err != nil {
		return nil, 0, err
	}
	var widths []int
	for w := 64; w < opts.BeamWidth; w *= 2 {
		widths = append(widths, w)
	}
	widths = append(widths, opts.BeamWidth)
	var best []componentPoint
	for _, w := range widths {
		points, err := runBeam(ctx, sub, m, kern, k, w)
		if err != nil {
			return nil, 0, err
		}
		if best == nil {
			best = points
			continue
		}
		for i := range points {
			if points[i].feasible && (!best[i].feasible || points[i].cost < best[i].cost) {
				best[i] = points[i]
			}
		}
	}
	return best, lbSol.Cost, nil
}

// runBeam is one fixed-width pass: top-width (cost, layer, cfg) states
// kept per stage, expanded by stay and move edges, with per-budget
// endpoints backtracked into a curve. Everything is serial and
// tie-broken by a total order, so the search is deterministic
// regardless of Problem.Parallelism.
func runBeam(ctx context.Context, sub *Problem, m *matrices, kern transRelaxer, k, width int) ([]componentPoint, error) {
	nc := len(sub.Configs)
	counting := k != Unconstrained
	kept := make([][]beamState, sub.Stages)

	sortTrim := func(s []beamState) []beamState {
		sort.Slice(s, func(a, b int) bool {
			if s[a].cost != s[b].cost {
				return s[a].cost < s[b].cost
			}
			if s[a].layer != s[b].layer {
				return s[a].layer < s[b].layer
			}
			return s[a].cfg < s[b].cfg
		})
		if len(s) > width {
			s = s[:width]
		}
		return s
	}

	cur := make([]beamState, 0, nc)
	for j := 0; j < nc; j++ {
		l := int32(0)
		if counting && sub.Policy == CountAll && sub.Configs[j] != sub.Initial {
			l = 1
		}
		if counting && int(l) > k {
			continue
		}
		v := m.initTrans[j] + m.exec[0][j]
		if math.IsInf(v, 1) {
			continue
		}
		cur = append(cur, beamState{cfg: int32(j), layer: l, cost: v, parent: -1})
	}
	cur = sortTrim(cur)
	kept[0] = cur

	for i := 1; i < sub.Stages; i++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		execRow := m.exec[i]
		next := make([]beamState, 0, len(cur)*2)
		idx := make(map[[2]int32]int, len(cur)*2)
		push := func(cfg, layer int32, cost float64, from int32) {
			if math.IsInf(cost, 1) {
				return
			}
			key := [2]int32{cfg, layer}
			if at, ok := idx[key]; ok {
				if cost < next[at].cost {
					next[at].cost = cost
					next[at].parent = from
				}
				return
			}
			idx[key] = len(next)
			next = append(next, beamState{cfg: cfg, layer: layer, cost: cost, parent: from})
		}
		for si := range cur {
			s := cur[si]
			push(s.cfg, s.layer, s.cost+execRow[s.cfg], int32(si))
			nl := s.layer
			if counting {
				nl++
				if int(nl) > k {
					continue
				}
			}
			for t := 0; t < nc; t++ {
				if int32(t) == s.cfg {
					continue
				}
				push(int32(t), nl, s.cost+kern.transCost(int(s.cfg), t)+execRow[t], int32(si))
			}
		}
		cur = sortTrim(next)
		kept[i] = cur
	}

	backtrack := func(last int) []Config {
		designs := make([]Config, sub.Stages)
		si := last
		for i := sub.Stages - 1; i >= 0; i-- {
			st := kept[i][si]
			designs[i] = sub.Configs[st.cfg]
			si = int(st.parent)
		}
		return designs
	}

	budgets := 1
	if counting {
		budgets = k + 1
	}
	points := make([]componentPoint, budgets)
	var prev *Solution
	prevIdx := -1
	for l := 0; l < budgets; l++ {
		bestIdx, bestLayer, bestCfg := -1, int32(0), int32(0)
		bestTotal := math.Inf(1)
		for si, s := range kept[sub.Stages-1] {
			if counting && int(s.layer) > l {
				continue
			}
			total := s.cost
			if m.finalTrans != nil {
				total += m.finalTrans[s.cfg]
			}
			if total < bestTotal ||
				(total == bestTotal && (s.layer < bestLayer || (s.layer == bestLayer && s.cfg < bestCfg))) {
				bestTotal, bestIdx, bestLayer, bestCfg = total, si, s.layer, s.cfg
			}
		}
		if bestIdx < 0 {
			continue
		}
		sol := prev
		if bestIdx != prevIdx {
			sol = sub.NewSolution(backtrack(bestIdx))
		}
		if prev != nil && prev.Cost <= sol.Cost {
			sol = prev
		} else {
			prevIdx = bestIdx
		}
		prev = sol
		points[l] = newComponentPoint(sub, sol)
	}
	return points, nil
}

// solveUnfactored handles problems the interaction graph did not split:
// exact delegation when the lattice (or candidate count) is within the
// exact ceilings, the anytime beam over the whole candidate list
// otherwise.
func solveUnfactored(ctx context.Context, p *Problem, configs []Config, opts PartitionOptions) (*PartitionedSolution, error) {
	var span Config
	for _, c := range configs {
		span |= c
	}
	exactAffordable := span.Count() <= maxLatticeBits || len(configs) <= opts.MaxExactConfigs
	if exactAffordable && !opts.ForceBeam {
		sol, err := SolveKAware(ctx, p)
		if err != nil {
			return nil, err
		}
		return &PartitionedSolution{
			Solution: sol, LowerBound: sol.Cost, Gap: 0, Components: 1,
			Reports: []ComponentReport{{
				Mask: span, Bits: span.Count(), Configs: len(configs),
				Exact: true, Budget: p.K, Cost: sol.Cost, LowerBound: sol.Cost,
			}},
		}, nil
	}
	sub := *p
	sub.Configs = configs
	sub.SpaceBound = 0
	sp := p.Tracer.Start(SpanPartitionComponent)
	points, lb, err := beamCurve(ctx, &sub, p.K, opts)
	sp.End(obs.Int("bits", int64(span.Count())), obs.Int("configs", int64(len(configs))),
		obs.Bool("exact", false), obs.Bool("ok", err == nil))
	if err != nil {
		return nil, err
	}
	pt := points[len(points)-1]
	if !pt.feasible {
		return nil, fmt.Errorf("core: beam search found no design with at most %d changes: %w", p.K, ErrLatticeTooLarge)
	}
	sol := p.NewSolution(pt.designs)
	if err := p.CheckSolution(sol); err != nil {
		return nil, err
	}
	gap := clampGap(sol.Cost - lb)
	sol.Gap = gap
	return &PartitionedSolution{
		Solution: sol, LowerBound: lb, Gap: gap, Components: 1,
		Reports: []ComponentReport{{
			Mask: span, Bits: span.Count(), Configs: len(configs),
			Budget: p.K, Cost: sol.Cost, LowerBound: lb,
		}},
	}, nil
}

// clampGap snaps tiny floating-point residue (the epsilon tie-breaks
// and re-association noise of per-component sums) to an exact 0.
func clampGap(gap float64) float64 {
	if gap <= 1e-9*(1+math.Abs(gap)) {
		return 0
	}
	return gap
}

// solveFactored solves each discovered component and recombines.
func solveFactored(ctx context.Context, p *Problem, configs []Config, plan *partitionPlan, opts PartitionOptions) (*PartitionedSolution, error) {
	comps := make([]*component, len(plan.masks))
	for j, mask := range plan.masks {
		sub := p.componentProblem(mask, plan.subs[j])
		exact := !opts.ForceBeam &&
			(mask.Count() <= maxLatticeBits || len(plan.subs[j]) <= opts.MaxExactConfigs)
		sp := p.Tracer.Start(SpanPartitionComponent)
		comp := &component{mask: mask, configs: plan.subs[j], exact: exact}
		var err error
		if exact {
			comp.curve, err = exactCurve(ctx, sub, p.K)
			if err == nil {
				last := comp.curve[len(comp.curve)-1]
				if last.feasible {
					comp.lb = last.cost
				} else {
					err = fmt.Errorf("core: component %s has no design with at most %d changes", mask.Format(nil), p.K)
				}
			}
		} else {
			comp.curve, comp.lb, err = beamCurve(ctx, sub, p.K, opts)
			if err == nil && !comp.curve[len(comp.curve)-1].feasible {
				err = fmt.Errorf("core: beam search found no design for component %s within %d changes: %w",
					mask.Format(nil), p.K, ErrLatticeTooLarge)
			}
		}
		sp.End(obs.Int("bits", int64(mask.Count())), obs.Int("configs", int64(len(plan.subs[j]))),
			obs.Bool("exact", exact), obs.Bool("ok", err == nil))
		if err != nil {
			return nil, err
		}
		comps[j] = comp
	}
	return recombine(ctx, p, comps, opts)
}

// recombine assembles the global sequence from the per-component
// curves under the shared k-per-step constraint. The additive
// decomposition makes the global objective
//
//	Σ_j obj_j − (p−1)·Σ_i EXEC(i, ∅) + TRANS(C0, C0∩span)
//
// so per-component sums plus a constant offset track the global cost;
// the final solution is nevertheless re-priced through the full model.
// Budget splitting is conservative — simultaneous component moves at
// one stage count once globally — so a knapsack over the curves seeds
// a repair pass that grants components extra budget whenever the
// composed change count stays within K.
func recombine(ctx context.Context, p *Problem, comps []*component, opts PartitionOptions) (*PartitionedSolution, error) {
	sp := p.Tracer.Start(SpanPartitionRecombine)
	res, err := recombineInner(ctx, p, comps, opts)
	ok := err == nil
	gap := 0.0
	if ok {
		gap = res.Gap
	}
	sp.End(obs.Int("components", int64(len(comps))), obs.Bool("ok", ok), obs.Float("gap", gap))
	return res, err
}

func recombineInner(ctx context.Context, p *Problem, comps []*component, opts PartitionOptions) (*PartitionedSolution, error) {
	var span Config
	for _, c := range comps {
		span |= c.mask
	}
	// offset converts Σ per-component objectives into the global
	// objective: each component re-counts the empty-design EXEC base,
	// and dropping the initial configuration's out-of-span structures
	// (a cost every candidate sequence pays, since candidates live
	// inside the span) belongs to no component.
	base := 0.0
	for i := 0; i < p.Stages; i++ {
		base += p.Model.Exec(i, 0)
	}
	offset := -float64(len(comps)-1)*base + p.Model.Trans(p.Initial, p.Initial&span)

	lb := offset
	allExact := true
	for _, c := range comps {
		lb += c.lb
		if !c.exact {
			allExact = false
		}
	}

	finish := func(alloc []int, provablyOptimal bool) (*PartitionedSolution, error) {
		designs := make([]Config, p.Stages)
		for j, c := range comps {
			for i, d := range c.curve[alloc[j]].designs {
				designs[i] |= d
			}
		}
		sol := p.NewSolution(designs)
		if err := p.CheckSolution(sol); err != nil {
			return nil, err
		}
		gap := clampGap(sol.Cost - lb)
		if provablyOptimal && allExact {
			gap = 0
		}
		sol.Gap = gap
		reports := make([]ComponentReport, len(comps))
		for j, c := range comps {
			budget := alloc[j]
			if p.K == Unconstrained {
				budget = Unconstrained
			}
			reports[j] = ComponentReport{
				Mask: c.mask, Bits: c.mask.Count(), Configs: len(c.configs),
				Exact: c.exact, Budget: budget,
				Cost: c.curve[alloc[j]].cost, LowerBound: c.lb,
			}
		}
		return &PartitionedSolution{
			Solution: sol, LowerBound: lb, Gap: gap,
			Components: len(comps), Factored: true, Reports: reports,
		}, nil
	}

	full := make([]int, len(comps))
	for j, c := range comps {
		full[j] = len(c.curve) - 1
	}
	if p.K == Unconstrained {
		// No shared budget to split: the full composition is globally
		// optimal whenever every component solved exactly.
		return finish(full, true)
	}

	// Fast path: if the unconstrained-budget composition already fits
	// within K global changes, it is optimal — every global sequence
	// induces a per-component sequence with no more changes than the
	// global one, so the sum of per-component optima is unbeatable.
	if composedChanges(p.Stages, comps, full) <= p.K {
		return finish(full, true)
	}

	// Knapsack over the component budget curves: alloc[j] = ℓ_j with
	// Σ ℓ_j ≤ K minimizing Σ curve_j[ℓ_j]. Curves are monotone, so the
	// split is exact for sequences whose component moves never share a
	// stage; the repair pass below recovers the shared-stage savings.
	inf := math.Inf(1)
	// dp[b] after component j: cheapest Σ curve cost with Σ ℓ ≤ b.
	dp := make([]float64, p.K+1)
	for b := range dp {
		dp[b] = 0 // zero components cost nothing at any budget
	}
	choice := make([][]int16, len(comps))
	for j, c := range comps {
		choice[j] = make([]int16, p.K+1)
		ndp := make([]float64, p.K+1)
		for b := 0; b <= p.K; b++ {
			ndp[b] = inf
			choice[j][b] = -1
			for l := 0; l <= b && l < len(c.curve); l++ {
				pt := c.curve[l]
				if !pt.feasible {
					continue
				}
				rest := dp[b-l]
				if math.IsInf(rest, 1) {
					continue
				}
				if v := rest + pt.cost; v < ndp[b] {
					ndp[b] = v
					choice[j][b] = int16(l)
				}
			}
		}
		dp = ndp
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	var alloc []int
	if !math.IsInf(dp[p.K], 1) {
		alloc = make([]int, len(comps))
		b := p.K
		for j := len(comps) - 1; j >= 0; j-- {
			l := int(choice[j][b])
			alloc[j] = l
			b -= l
		}
	} else {
		// No per-component split fits (e.g. CountAll forcing more
		// first-stage component changes than K, which coincide into
		// fewer global changes). Try the synchronized full-budget
		// composition; failing that, delegate to the exact solver when
		// affordable.
		if composedChanges(p.Stages, comps, full) <= p.K {
			return finish(full, true)
		}
		var fullSpan Config
		nc := 1
		for _, c := range comps {
			fullSpan |= c.mask
			nc *= len(c.configs)
		}
		if fullSpan.Count() <= maxLatticeBits || nc <= opts.MaxExactConfigs {
			sol, err := SolveKAware(ctx, p)
			if err != nil {
				return nil, err
			}
			return &PartitionedSolution{
				Solution: sol, LowerBound: sol.Cost, Gap: 0, Components: len(comps), Factored: true,
			}, nil
		}
		return nil, fmt.Errorf("core: no per-component budget split within %d changes: %w", p.K, ErrLatticeTooLarge)
	}

	// Repair: grant a component a bigger budget whenever the composed
	// global change count still fits K (moves landing on a stage where
	// another component already moves are free globally). Greedy best
	// improvement, deterministic tie-break (smallest j, then ℓ), each
	// step strictly decreasing the composed objective.
	for {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		bestJ, bestL := -1, -1
		bestGain := 0.0
		for j, c := range comps {
			cl := c.curve[alloc[j]]
			for l := alloc[j] + 1; l < len(c.curve); l++ {
				pt := c.curve[l]
				if !pt.feasible {
					continue
				}
				gain := cl.cost - pt.cost
				if gain <= bestGain {
					continue
				}
				trial := alloc[j]
				alloc[j] = l
				fits := composedChanges(p.Stages, comps, alloc) <= p.K
				alloc[j] = trial
				if fits {
					bestJ, bestL, bestGain = j, l, gain
				}
			}
		}
		if bestJ < 0 {
			break
		}
		alloc[bestJ] = bestL
	}
	return finish(alloc, false)
}

// composedChanges counts the global design changes of a composed
// allocation: a stage changes globally exactly when some component
// changes there, so the count is the size of the union of the
// per-component counted change-stage sets.
func composedChanges(stages int, comps []*component, alloc []int) int {
	seen := make([]bool, stages)
	total := 0
	for j, c := range comps {
		for _, s := range c.curve[alloc[j]].changeStages {
			if !seen[s] {
				seen[s] = true
				total++
			}
		}
	}
	return total
}
