package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// slowModel wraps a tableModel with a fixed per-evaluation delay and
// closes started on the first evaluation, so tests can cancel a solve
// that is provably in flight.
type slowModel struct {
	*tableModel
	delay     time.Duration
	started   chan struct{}
	startOnce atomic.Bool
}

func newSlowModel(m *tableModel, delay time.Duration) *slowModel {
	return &slowModel{tableModel: m, delay: delay, started: make(chan struct{})}
}

func (m *slowModel) note() {
	if m.startOnce.CompareAndSwap(false, true) {
		close(m.started)
	}
	time.Sleep(m.delay)
}

func (m *slowModel) Exec(stage int, c Config) float64 {
	m.note()
	return m.tableModel.Exec(stage, c)
}

func (m *slowModel) Trans(from, to Config) float64 {
	m.note()
	return m.tableModel.Trans(from, to)
}

// TestEveryStrategyReturnsPromptlyOnCancel cancels each strategy
// mid-solve on a problem whose full solve is far slower than the
// acceptable cancellation latency, and asserts the strategy surfaces
// context.Canceled within a bounded wall-clock time instead of running
// to completion or hanging.
func TestEveryStrategyReturnsPromptlyOnCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	base, configs := randomModel(rng, 64, 6) // 64 stages × 64 configs
	for _, s := range Strategies() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			m := newSlowModel(base, 200*time.Microsecond)
			p := &Problem{Stages: 64, Configs: configs, Initial: 0, K: 2,
				Model: m, Metrics: &Metrics{}}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				<-m.started
				cancel()
			}()
			start := time.Now()
			sol, err := Solve(ctx, p, s)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatalf("solve completed (%v) despite cancellation", sol.Cost)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error %v does not wrap context.Canceled", err)
			}
			// The full cost tables alone are 64·64 + 64·64 evaluations at
			// 200µs each; cancellation must land orders of magnitude
			// sooner. 5s is a very generous CI bound.
			if elapsed > 5*time.Second {
				t.Fatalf("cancellation took %v", elapsed)
			}
			if p.Metrics.Cancellations() == 0 {
				t.Error("cancellation not recorded in metrics")
			}
		})
	}
}

// TestSolvePreCancelled asserts a solve under an already-cancelled
// context fails fast without touching the model.
func TestSolvePreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	m, configs := randomModel(rng, 20, 4)
	p := &Problem{Stages: 20, Configs: configs, Initial: 0, K: 2, Model: m}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range Strategies() {
		if _, err := Solve(ctx, p, s); !errors.Is(err, context.Canceled) {
			t.Errorf("strategy %s under cancelled context: %v", s, err)
		}
	}
}

// TestSolveDeadlineExceeded asserts an expired deadline surfaces as
// context.DeadlineExceeded through the solve path.
func TestSolveDeadlineExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	base, configs := randomModel(rng, 64, 6)
	m := newSlowModel(base, 200*time.Microsecond)
	p := &Problem{Stages: 64, Configs: configs, Initial: 0, K: 2, Model: m}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := Solve(ctx, p, StrategyKAware); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// panicAtModel panics on the n-th EXEC evaluation (1-based), once.
type panicAtModel struct {
	*tableModel
	at    int64
	calls atomic.Int64
}

func (m *panicAtModel) Exec(stage int, c Config) float64 {
	if m.calls.Add(1) == m.at {
		panic("injected model panic")
	}
	return m.tableModel.Exec(stage, c)
}

// TestParallelWorkerPanicBecomesError is the worker-pool panic
// contract: a panic inside a pooled worker is recovered, carries the
// worker's stack, and is returned as a *PanicError instead of
// re-panicking on the caller's goroutine or crashing the process.
// Run under -race this also proves the recovery path is data-race
// free.
func TestParallelWorkerPanicBecomesError(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	base, configs := randomModel(rng, 40, 6)
	for _, parallelism := range []int{1, 8} {
		m := &panicAtModel{tableModel: base, at: 100}
		p := &Problem{Stages: 40, Configs: configs, Initial: 0, K: 2,
			Model: m, Parallelism: parallelism, Metrics: &Metrics{}}
		sol, err := Solve(context.Background(), p, StrategyKAware)
		if err == nil {
			t.Fatalf("parallelism %d: panicking model produced solution %v", parallelism, sol.Cost)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("parallelism %d: error %v is not a *PanicError", parallelism, err)
		}
		if pe.Value != "injected model panic" {
			t.Errorf("parallelism %d: recovered value %v", parallelism, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("parallelism %d: no stack attached", parallelism)
		}
		if p.Metrics.RecoveredPanics() == 0 {
			t.Errorf("parallelism %d: recovered panic not recorded", parallelism)
		}
	}
}

// TestParallelForPanicPrecedence asserts that when a worker panics
// while the context is also cancelled, the panic error wins: it is the
// more actionable diagnosis.
func TestParallelForPanicPrecedence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := parallelFor(ctx, 4, 64, func(i int) {
		if i == 3 {
			cancel()
			panic("boom")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PanicError", err)
	}
}
