package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered from a solver worker (or from a rung
// of the resilient supervisor), converted into an error so one failing
// cost-model evaluation cannot crash the whole process. Value is the
// recovered panic value; Stack is the stack of the goroutine that
// panicked, captured at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: recovered panic: %v", e.Value)
}

// recoverPanic converts a recovered panic value into a *PanicError with
// the current goroutine's stack attached.
func recoverPanic(r any) *PanicError {
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// parallelFor runs fn(i) for every i in [0, n), spreading the calls over
// at most `workers` goroutines. Work is handed out through an atomic
// counter so unevenly-priced items (what-if EXEC calls vary wildly by
// stage) balance across workers. With workers <= 1 — or a single item —
// it degenerates to a plain loop, so single-core runs pay no goroutine
// overhead and remain exactly as schedulable as before.
//
// Determinism: fn must write only to slots owned by its index (e.g.
// row i of a matrix). Under that discipline the output is bit-identical
// to the serial loop regardless of scheduling, because each cell is
// computed by the same arithmetic either way.
//
// Cancellation: the loop checks ctx between items (on both the serial
// and the parallel path), so a cancelled or expired context stops the
// work after at most one in-flight fn per worker. The cancellation
// cause (context.Cause) is returned; partial results must be discarded
// by the caller.
//
// A panic in any fn is recovered and returned as a *PanicError carrying
// the panicking goroutine's stack; the remaining workers stop at their
// next item. A panic error takes precedence over a concurrent
// cancellation so the root cause is not masked.
func parallelFor(ctx context.Context, workers, n int, fn func(i int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var perr *PanicError
		call := func(i int) {
			defer func() {
				if r := recover(); r != nil {
					perr = recoverPanic(r)
				}
			}()
			fn(i)
		}
		for i := 0; i < n; i++ {
			if err := context.Cause(ctx); err != nil {
				return err
			}
			call(i)
			if perr != nil {
				return perr
			}
		}
		return context.Cause(ctx)
	}
	var (
		wg        sync.WaitGroup
		next      atomic.Int64
		panicOnce sync.Once
		panicked  atomic.Pointer[PanicError]
		abort     atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pe := recoverPanic(r)
					panicOnce.Do(func() { panicked.Store(pe) })
					abort.Store(true)
				}
			}()
			for !abort.Load() {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if pe := panicked.Load(); pe != nil {
		return pe
	}
	return context.Cause(ctx)
}

// workers resolves the problem's parallelism degree: an explicit
// Parallelism wins, otherwise every available CPU.
func (p *Problem) workers() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// ctxErr is the solvers' cooperative cancellation check: nil while the
// context is live, the cancellation cause (context.Cause — the deadline
// error, an explicit cancel cause such as ErrWhatIfBudget, or plain
// context.Canceled) once it is done.
func ctxErr(ctx context.Context) error {
	return context.Cause(ctx)
}
