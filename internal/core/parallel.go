package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for every i in [0, n), spreading the calls over
// at most `workers` goroutines. Work is handed out through an atomic
// counter so unevenly-priced items (what-if EXEC calls vary wildly by
// stage) balance across workers. With workers <= 1 — or a single item —
// it degenerates to a plain loop, so single-core runs pay no goroutine
// overhead and remain exactly as schedulable as before.
//
// Determinism: fn must write only to slots owned by its index (e.g.
// row i of a matrix). Under that discipline the output is bit-identical
// to the serial loop regardless of scheduling, because each cell is
// computed by the same arithmetic either way.
//
// A panic in any fn is re-raised on the calling goroutine after all
// workers stop, preserving the panic semantics of the serial loop.
func parallelFor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg        sync.WaitGroup
		next      atomic.Int64
		panicOnce sync.Once
		panicked  any
		abort     atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					abort.Store(true)
				}
			}()
			for !abort.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// workers resolves the problem's parallelism degree: an explicit
// Parallelism wins, otherwise every available CPU.
func (p *Problem) workers() int {
	if p.Parallelism > 0 {
		return p.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}
