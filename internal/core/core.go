// Package core implements the paper's contribution: the constrained
// dynamic physical design problem (Definition 1) and its solvers —
//
//   - the unconstrained sequence-graph optimum of Agrawal, Chu and
//     Narasayya (§3),
//   - the optimal k-aware sequence graph (§3),
//   - the GREEDY-SEQ candidate-reduction heuristic (§4.1),
//   - sequential design merging (§4.2),
//   - shortest-path ranking (§5), and
//   - the hybrid optimizer suggested by the paper's Figure 4 (§6.4).
//
// The package is deliberately independent of the SQL engine: solvers see
// only an abstract CostModel, so they can be exercised against synthetic
// cost models and verified against brute force. The advisor package
// binds them to the engine's what-if cost model.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"dyndesign/internal/obs"
)

// Config is a physical design configuration: a bitset over the candidate
// structure indices of the problem's design space. The empty Config is
// the empty design.
type Config uint64

// MaxStructures is the largest number of candidate structures a Config
// can represent.
const MaxStructures = 64

// ConfigOf builds a Config holding exactly the given structure indices.
func ConfigOf(structures ...int) Config {
	var c Config
	for _, s := range structures {
		c |= 1 << uint(s)
	}
	return c
}

// Has reports whether the configuration contains structure s.
func (c Config) Has(s int) bool { return c&(1<<uint(s)) != 0 }

// With returns the configuration plus structure s.
func (c Config) With(s int) Config { return c | 1<<uint(s) }

// Without returns the configuration minus structure s.
func (c Config) Without(s int) Config { return c &^ (1 << uint(s)) }

// Count returns the number of structures in the configuration.
func (c Config) Count() int { return bits.OnesCount64(uint64(c)) }

// Structures returns the structure indices in ascending order.
func (c Config) Structures() []int {
	out := make([]int, 0, c.Count())
	for c != 0 {
		s := bits.TrailingZeros64(uint64(c))
		out = append(out, s)
		c &= c - 1
	}
	return out
}

// Diff returns the structures added and removed going from c to next.
func (c Config) Diff(next Config) (added, removed []int) {
	return Config(next &^ c).Structures(), Config(c &^ next).Structures()
}

// Format renders the configuration using the given structure names, e.g.
// "{I(a), I(c,d)}"; the empty configuration renders as "{}".
func (c Config) Format(names []string) string {
	parts := make([]string, 0, c.Count())
	for _, s := range c.Structures() {
		if s < len(names) {
			parts = append(parts, names[s])
		} else {
			parts = append(parts, fmt.Sprintf("#%d", s))
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// CostModel supplies the three cost terms of the design problem. Models
// must be deterministic: solvers may evaluate the same term repeatedly
// and cache freely. Models must also be safe for concurrent use: the
// solvers evaluate cost tables from multiple goroutines (see
// Problem.Parallelism), and one Problem may be solved by several
// strategies at once.
type CostModel interface {
	// Exec returns EXEC(S_stage, c): the cost of executing stage's
	// statement(s) under configuration c.
	Exec(stage int, c Config) float64
	// Trans returns TRANS(from, to): the cost of changing the physical
	// design from one configuration to another. Trans(c, c) must be 0.
	Trans(from, to Config) float64
	// Size returns SIZE(c) for the space-bound constraint.
	Size(c Config) float64
}

// BatchCostModel is a CostModel that can cost a whole configuration
// frontier in one call. The matrix build and the greedy per-stage scans
// prefer it when available: a batched model amortizes its per-stage
// setup (plan-table compilation, memo key derivation) across every
// configuration instead of repeating it per cell.
type BatchCostModel interface {
	CostModel
	// BatchExec evaluates EXEC(stage, c) for every configuration in
	// configs, writing into out when it has sufficient capacity
	// (allocating otherwise) and returning the filled slice. Results
	// must be bit-for-bit identical to per-call Exec — solvers cache,
	// replay, and memoize batched and scalar values interchangeably.
	BatchExec(stage int, configs []Config, out []float64) []float64
}

// ChangePolicy selects how design changes are counted against k; see
// DESIGN.md §3 for why two policies exist.
type ChangePolicy int

const (
	// FreeEndpoints counts only interior changes (C_{i-1} != C_i for
	// i in [2..n]): installing the first design and tearing down to the
	// destination are charged TRANS cost but do not consume k. This is
	// the policy under which the paper's Table 2 designs have k = 2
	// changes, and the default.
	FreeEndpoints ChangePolicy = iota
	// CountAll is strict Definition 1: every i in [1..n] with
	// C_{i-1} != C_i counts, including the initial installation.
	CountAll
)

// String names the policy.
func (p ChangePolicy) String() string {
	switch p {
	case FreeEndpoints:
		return "FreeEndpoints"
	case CountAll:
		return "CountAll"
	default:
		return fmt.Sprintf("ChangePolicy(%d)", int(p))
	}
}

// Unconstrained is the K value meaning "no change constraint".
const Unconstrained = -1

// Problem is one instance of the constrained dynamic physical design
// problem.
type Problem struct {
	// Stages is n, the number of workload stages (statements or
	// segments).
	Stages int
	// Configs is the candidate configuration list the design may use.
	// It must contain Final when that endpoint is constrained. It need
	// NOT contain Initial: the initial configuration only has to be a
	// valid TRANS source, which the model guarantees — a design that
	// never revisits C0 is perfectly well-formed (though under CountAll
	// with K = 0 such a problem is infeasible, which the solvers
	// report). Solvers never invent configurations outside this list.
	Configs []Config
	// Initial is C0, the design in place before the first stage.
	Initial Config
	// Final optionally constrains the design after the last stage; the
	// transition to it is charged but never counted against K.
	Final *Config
	// SpaceBound is b; configurations with Size > SpaceBound are
	// excluded. Zero or negative means unbounded.
	SpaceBound float64
	// K is the change bound; Unconstrained (-1) disables it.
	K int
	// Policy selects the change-counting rule.
	Policy ChangePolicy
	// Model supplies EXEC, TRANS, and SIZE. It must be safe for
	// concurrent use (see CostModel).
	Model CostModel
	// Parallelism bounds the worker count used for cost-table
	// evaluation and the other data-parallel solver phases. 0 (the
	// default) means one worker per available CPU; 1 forces the serial
	// path. The parallel and serial paths produce bit-identical
	// results.
	Parallelism int
	// Kernel selects the min-plus transition kernel of the exact graph
	// solvers. The KernelAuto default picks the hypercube lattice
	// relaxation when the model reports additive transitions and the
	// lattice is cheaper than the all-pairs scan; see TransKernel.
	Kernel TransKernel
	// Cache, when non-nil, memoizes the dense cost tables across solves
	// sharing this model (see SolveCache). Copies of the Problem share
	// the pointer, the same way Metrics is shared; the nil default
	// rebuilds tables per solve.
	Cache *SolveCache
	// Metrics, when non-nil, accumulates solver instrumentation.
	// Copies of the Problem share the pointer and hence the counters.
	Metrics *Metrics
	// Tracer, when non-nil, receives per-stage spans from every solver
	// phase (matrix builds, DP sweeps, ranking expansion batches, merge
	// iterations, resilient rungs; see DESIGN.md §9). The nil default is
	// the disabled tracer and adds zero overhead to the hot paths.
	Tracer *obs.Tracer
}

// Solution is a dynamic physical design: one configuration per stage.
type Solution struct {
	// Designs has one configuration per stage.
	Designs []Config
	// Cost is the sequence execution cost, including the transition from
	// the initial configuration and to the final one when constrained.
	// It is exactly ExecCost + TransCost.
	Cost float64
	// ExecCost is the EXEC share of Cost: the per-stage statement
	// execution costs summed over the sequence.
	ExecCost float64
	// TransCost is the TRANS share of Cost: every design transition
	// charged to the sequence, endpoint transitions included.
	TransCost float64
	// Changes is the number of design changes under the problem's
	// policy.
	Changes int
	// Gap is the optimality-gap bound reported by an anytime solver
	// (SolvePartitioned): Cost is guaranteed within Gap of the
	// constrained optimum, trusting the model's declared decompositions.
	// Exact solvers leave it 0 by construction; heuristic solvers make
	// no claim and also leave it 0.
	Gap float64
}

// Run is a maximal run of consecutive stages sharing one configuration.
type Run struct {
	Config Config
	// Start is the first stage of the run; Length its stage count.
	Start, Length int
}

// Runs compresses the design sequence into maximal constant runs — the
// natural unit for rendering a design timeline and for the merging
// heuristic's view of the solution.
func (s *Solution) Runs() []Run {
	var out []Run
	for i, c := range s.Designs {
		if len(out) > 0 && out[len(out)-1].Config == c {
			out[len(out)-1].Length++
			continue
		}
		out = append(out, Run{Config: c, Start: i, Length: 1})
	}
	return out
}

// Validate checks problem well-formedness.
func (p *Problem) Validate() error {
	if p.Stages <= 0 {
		return fmt.Errorf("core: problem has %d stages", p.Stages)
	}
	if p.Model == nil {
		return fmt.Errorf("core: problem has no cost model")
	}
	if len(p.Configs) == 0 {
		return fmt.Errorf("core: problem has no candidate configurations")
	}
	// Note that Initial deliberately does not have to appear in
	// Configs: it only has to be a valid TRANS source, which the model
	// guarantees (see the Configs field documentation).
	seen := make(map[Config]bool, len(p.Configs))
	for _, c := range p.Configs {
		if seen[c] {
			return fmt.Errorf("core: duplicate configuration %d in candidate list", c)
		}
		seen[c] = true
	}
	if p.Final != nil && !seen[*p.Final] {
		return fmt.Errorf("core: final configuration not in candidate list")
	}
	if p.K < Unconstrained {
		return fmt.Errorf("core: invalid change bound %d", p.K)
	}
	return nil
}

// usableConfigs filters the candidate list by the space bound.
func (p *Problem) usableConfigs() ([]Config, error) {
	if p.SpaceBound <= 0 {
		return p.Configs, nil
	}
	out := make([]Config, 0, len(p.Configs))
	for _, c := range p.Configs {
		if p.Model.Size(c) <= p.SpaceBound {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no candidate configuration fits the space bound %.1f", p.SpaceBound)
	}
	return out, nil
}

// CountChanges counts the design changes of a sequence under a policy.
func CountChanges(initial Config, designs []Config, policy ChangePolicy) int {
	if len(designs) == 0 {
		return 0
	}
	changes := 0
	if policy == CountAll && designs[0] != initial {
		changes++
	}
	for i := 1; i < len(designs); i++ {
		if designs[i] != designs[i-1] {
			changes++
		}
	}
	return changes
}

// SequenceCost computes the sequence execution cost of a design
// sequence: sum of per-stage EXEC plus every TRANS, including from the
// initial configuration and to the final one when the problem constrains
// it.
func (p *Problem) SequenceCost(designs []Config) float64 {
	exec, trans := p.SequenceCostSplit(designs)
	return exec + trans
}

// SequenceCostSplit computes the sequence execution cost broken into its
// EXEC and TRANS components. The two sums are accumulated separately so
// exec + trans is, bit for bit, the Cost a Solution reports — the
// invariant the explain layer's attribution depends on.
func (p *Problem) SequenceCostSplit(designs []Config) (exec, trans float64) {
	// Replays over a cached table set skip the per-term model calls —
	// the hot loop of CheckSolution and the explain/audit replays. The
	// cached cells are verbatim model outputs accumulated in the same
	// order, so the fast path is bit-identical to the model path.
	if m := p.Cache.peek(p); m != nil {
		return m.sequenceCostSplit(p, designs)
	}
	prev := p.Initial
	for i, c := range designs {
		trans += p.Model.Trans(prev, c)
		exec += p.Model.Exec(i, c)
		prev = c
	}
	if p.Final != nil {
		trans += p.Model.Trans(prev, *p.Final)
	}
	return exec, trans
}

// sequenceCostSplit is SequenceCostSplit over cached tables. Every term
// present in the tables is the verbatim model output, and zero-cost
// identity hops are skipped rather than accumulated (x + 0 == x for the
// non-negative sums involved), so the result is bit for bit the model
// path's. Terms the tables do not cover — a stage beyond the cached
// range, an endpoint outside the candidate list, or a TRANS hop when
// the hypercube kernel skipped the all-pairs table — fall back to the
// model per term.
func (m *matrices) sequenceCostSplit(p *Problem, designs []Config) (exec, trans float64) {
	prev := p.Initial
	for i, c := range designs {
		if c != prev {
			trans += m.transTerm(p, prev, c)
		}
		if i < len(m.exec) {
			if j, ok := m.index[c]; ok {
				exec += m.exec[i][j]
			} else {
				exec += p.Model.Exec(i, c)
			}
		} else {
			exec += p.Model.Exec(i, c)
		}
		prev = c
	}
	if p.Final != nil && prev != *p.Final {
		trans += m.transTerm(p, prev, *p.Final)
	}
	return exec, trans
}

func (m *matrices) transTerm(p *Problem, from, to Config) float64 {
	if m.trans != nil {
		if f, ok := m.index[from]; ok {
			if t, ok := m.index[to]; ok {
				return m.trans[f][t]
			}
		}
	}
	return p.Model.Trans(from, to)
}

// NewSolution packages a design sequence with its cost and change count.
func (p *Problem) NewSolution(designs []Config) *Solution {
	exec, trans := p.SequenceCostSplit(designs)
	return &Solution{
		Designs:   designs,
		Cost:      exec + trans,
		ExecCost:  exec,
		TransCost: trans,
		Changes:   CountChanges(p.Initial, designs, p.Policy),
	}
}

// CheckSolution verifies that a solution is feasible for the problem:
// right length, only candidate configurations within the space bound,
// and within the change bound.
func (p *Problem) CheckSolution(s *Solution) error {
	if len(s.Designs) != p.Stages {
		return fmt.Errorf("core: solution has %d designs for %d stages", len(s.Designs), p.Stages)
	}
	usable, err := p.usableConfigs()
	if err != nil {
		return err
	}
	ok := make(map[Config]bool, len(usable))
	for _, c := range usable {
		ok[c] = true
	}
	for i, c := range s.Designs {
		if !ok[c] {
			return fmt.Errorf("core: stage %d uses configuration outside the usable candidate set", i)
		}
	}
	if got := CountChanges(p.Initial, s.Designs, p.Policy); got != s.Changes {
		return fmt.Errorf("core: solution claims %d changes, has %d", s.Changes, got)
	}
	if p.K != Unconstrained && s.Changes > p.K {
		return fmt.Errorf("core: solution has %d changes, bound is %d", s.Changes, p.K)
	}
	want := p.SequenceCost(s.Designs)
	if math.Abs(want-s.Cost) > 1e-6*(1+math.Abs(want)) {
		return fmt.Errorf("core: solution claims cost %f, recomputed %f", s.Cost, want)
	}
	return nil
}

// EnumerateConfigs builds every subset of numStructures structures whose
// size (per sizeOf) is within bound (<= 0 disables the bound). It guards
// against exponential blowup: numStructures must be at most 20.
func EnumerateConfigs(numStructures int, sizeOf func(Config) float64, bound float64) ([]Config, error) {
	if numStructures < 0 || numStructures > 20 {
		return nil, fmt.Errorf("core: cannot enumerate 2^%d configurations (max 20 structures)", numStructures)
	}
	total := 1 << uint(numStructures)
	out := make([]Config, 0, total)
	for raw := 0; raw < total; raw++ {
		c := Config(raw)
		if bound > 0 && sizeOf != nil && sizeOf(c) > bound {
			continue
		}
		out = append(out, c)
	}
	return out, nil
}
