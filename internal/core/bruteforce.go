package core

import (
	"fmt"
	"math"
)

// SolveBruteForce enumerates every feasible design sequence and returns
// the cheapest. It is the reference implementation the other solvers are
// verified against in tests, and is only viable for tiny instances:
// it refuses problems with more than about two million sequences.
func SolveBruteForce(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	configs, err := p.usableConfigs()
	if err != nil {
		return nil, err
	}
	total := 1.0
	for i := 0; i < p.Stages; i++ {
		total *= float64(len(configs))
		if total > 2e6 {
			return nil, fmt.Errorf("core: brute force over %d^%d sequences refused", len(configs), p.Stages)
		}
	}

	current := make([]Config, p.Stages)
	var best []Config
	bestCost := math.Inf(1)

	var walk func(stage int)
	walk = func(stage int) {
		if stage == p.Stages {
			if p.K != Unconstrained && CountChanges(p.Initial, current, p.Policy) > p.K {
				return
			}
			if c := p.SequenceCost(current); c < bestCost {
				bestCost = c
				best = append(best[:0], current...)
			}
			return
		}
		for _, cfg := range configs {
			current[stage] = cfg
			walk(stage + 1)
		}
	}
	walk(0)
	if best == nil {
		return nil, fmt.Errorf("core: no design with at most %d changes exists", p.K)
	}
	return p.NewSolution(best), nil
}
