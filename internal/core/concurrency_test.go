package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestBuildMatricesParallelMatchesSerial asserts the determinism
// contract of the parallel costing layer: the worker-pool build
// produces bit-identical matrices to the serial build, because every
// cell is computed by the same arithmetic and each worker owns whole
// rows.
func TestBuildMatricesParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m, configs := randomModel(rng, 40, 6) // 64 configurations
	final := configs[1]
	serial := &Problem{Stages: 40, Configs: configs, Initial: configs[3], Final: &final,
		K: 2, Model: m, Parallelism: 1}
	parallel := *serial
	parallel.Parallelism = 8

	ms, err := serial.buildMatrices(bg, configs, true)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := parallel.buildMatrices(bg, configs, true)
	if err != nil {
		t.Fatal(err)
	}

	for i := range ms.exec {
		for j := range ms.exec[i] {
			if ms.exec[i][j] != mp.exec[i][j] {
				t.Fatalf("exec[%d][%d]: serial %v != parallel %v", i, j, ms.exec[i][j], mp.exec[i][j])
			}
		}
	}
	for i := range ms.trans {
		for j := range ms.trans[i] {
			if ms.trans[i][j] != mp.trans[i][j] {
				t.Fatalf("trans[%d][%d]: serial %v != parallel %v", i, j, ms.trans[i][j], mp.trans[i][j])
			}
		}
	}
	for j := range ms.initTrans {
		if ms.initTrans[j] != mp.initTrans[j] {
			t.Fatalf("initTrans[%d] differs", j)
		}
		if ms.finalTrans[j] != mp.finalTrans[j] {
			t.Fatalf("finalTrans[%d] differs", j)
		}
	}
}

// TestRankingParallelSweepDeterministic runs SolveRanking with a
// candidate set wide enough to trigger the parallel cost-to-go sweep
// and asserts the outcome is identical to the serial sweep, expansion
// for expansion.
func TestRankingParallelSweepDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	m, configs := randomModel(rng, 6, 6) // 64 >= parallelSweepMinConfigs
	serial := &Problem{Stages: 6, Configs: configs, Initial: 0, K: 2, Model: m, Parallelism: 1}
	parallel := *serial
	parallel.Parallelism = 8

	rs, err := SolveRanking(bg, serial, RankingOptions{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := SolveRanking(bg, &parallel, RankingOptions{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Expansions != rp.Expansions || rs.PathsRanked != rp.PathsRanked {
		t.Fatalf("serial (%d expansions) and parallel (%d) sweeps diverged", rs.Expansions, rp.Expansions)
	}
	if rs.Solution.Cost != rp.Solution.Cost {
		t.Fatalf("costs diverged: %v vs %v", rs.Solution.Cost, rp.Solution.Cost)
	}
	for i := range rs.Solution.Designs {
		if rs.Solution.Designs[i] != rp.Solution.Designs[i] {
			t.Fatalf("designs diverged at stage %d", i)
		}
	}
}

// TestSharedProblemAllStrategiesConcurrently is the -race stress test:
// one shared Problem solved by every strategy from many goroutines at
// once. Under `go test -race` this fails if any solver phase or the
// model contract is unsafe to share; it also cross-checks that repeated
// concurrent solves of the same strategy agree with its serial answer.
func TestSharedProblemAllStrategiesConcurrently(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	// Small enough that even plain ranking (exponential for small k)
	// terminates; the point here is shared-state safety, not scale.
	m, configs := randomModel(rng, 8, 3)
	p := &Problem{Stages: 8, Configs: configs, Initial: 0, K: 2, Model: m, Metrics: &Metrics{}}

	// Serial reference answer per strategy.
	want := map[Strategy]float64{}
	for _, s := range Strategies() {
		sol, err := Solve(bg, p, s)
		if err != nil {
			t.Fatalf("strategy %s (serial): %v", s, err)
		}
		want[s] = sol.Cost
	}

	const repetitions = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(Strategies())*repetitions)
	for _, s := range Strategies() {
		for r := 0; r < repetitions; r++ {
			wg.Add(1)
			go func(s Strategy) {
				defer wg.Done()
				sol, err := Solve(bg, p, s)
				if err != nil {
					errs <- err
					return
				}
				if sol.Cost != want[s] {
					errs <- errors.New("strategy " + string(s) + ": concurrent solve diverged from serial")
				}
				if err := p.CheckSolution(sol); err != nil {
					errs <- err
				}
			}(s)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if p.Metrics.MatrixBuilds() == 0 {
		t.Error("metrics recorded no matrix builds")
	}
	if p.Metrics.MatrixBuildTime() <= 0 {
		t.Error("metrics recorded no matrix-build time")
	}
}

// TestMergeCountAllKZeroInfeasibleInitial is the regression test for
// the merge escape hatch: under CountAll with K = 0, the whole sequence
// must stay on the initial configuration — when that configuration is
// excluded by the space bound, SolveMerge must report infeasibility
// instead of returning a solution CheckSolution rejects.
func TestMergeCountAllKZeroInfeasibleInitial(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	m, configs := randomModel(rng, 5, 2)
	// size = structure count, so SpaceBound 1 excludes ConfigOf(0, 1).
	p := &Problem{Stages: 5, Configs: configs, Initial: ConfigOf(0, 1),
		SpaceBound: 1, K: 0, Policy: CountAll, Model: m}
	sol, _, err := SolveMergeFromUnconstrained(bg, p)
	if err == nil {
		t.Fatalf("infeasible problem returned solution %+v", sol)
	}
	if sol != nil {
		t.Fatalf("error return carried a solution: %+v", sol)
	}
	// The k-aware solver agrees the problem is infeasible.
	if _, err := SolveKAware(bg, p); err == nil {
		t.Error("SolveKAware accepted the infeasible problem")
	}
	// The feasible sibling (initial inside the bound) still works.
	ok := *p
	ok.Initial = ConfigOf(0)
	sol, _, err = SolveMergeFromUnconstrained(bg, &ok)
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	for _, c := range sol.Designs {
		if c != ok.Initial {
			t.Fatalf("CountAll k=0 design moved off the initial configuration")
		}
	}
}

// TestRankingBudgetTypedError is the regression test for the
// nil-solution escape: when the expansion budget runs out, Solve-style
// paths surface an error wrapping ErrRankingBudget instead of handing
// callers a nil Solution.
func TestRankingBudgetTypedError(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	m, configs := randomModel(rng, 10, 2)
	p := &Problem{Stages: 10, Configs: configs, Initial: 0, K: 0, Model: m}

	res, err := SolveRanking(bg, p, RankingOptions{MaxExpansions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Solution != nil {
		t.Fatalf("tiny budget not exhausted: %+v", res)
	}
	if err := res.Err(); !errors.Is(err, ErrRankingBudget) {
		t.Fatalf("RankingResult.Err() = %v, want ErrRankingBudget", err)
	}

	sol, err := rankingSolution(bg, p, RankingOptions{MaxExpansions: 3})
	if sol != nil || !errors.Is(err, ErrRankingBudget) {
		t.Fatalf("rankingSolution = (%v, %v), want typed budget error", sol, err)
	}
	// A successful ranking reports no error.
	sol, err = rankingSolution(bg, p, RankingOptions{Prune: true})
	if err != nil || sol == nil {
		t.Fatalf("feasible ranking failed: (%v, %v)", sol, err)
	}
	if res2, _ := SolveRanking(bg, p, RankingOptions{Prune: true}); res2.Err() != nil {
		t.Fatalf("Err() non-nil on success: %v", res2.Err())
	}
}

// TestValidateWithoutInitialInConfigs pins the decided contract: the
// candidate list need not contain the initial configuration; such
// problems validate and solve, the design simply never revisits C0.
func TestValidateWithoutInitialInConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	m, configs := randomModel(rng, 4, 2)
	outside := Config(1 << 40) // not in configs
	// tableModel indexes by raw config value, so wrap it in a model that
	// tolerates the outside initial as a TRANS source.
	p := &Problem{Stages: 4, Configs: configs, Initial: outside, K: 1,
		Model: outsideModel{tableModel: m, outside: outside}}
	if err := p.Validate(); err != nil {
		t.Fatalf("problem without initial in Configs rejected: %v", err)
	}
	sol, err := SolveKAware(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
	for _, c := range sol.Designs {
		if c == outside {
			t.Fatal("design used a configuration outside the candidate list")
		}
	}
}

// outsideModel extends a tableModel with one extra configuration that
// is a valid TRANS source/SIZE subject but never appears in tables.
type outsideModel struct {
	*tableModel
	outside Config
}

func (m outsideModel) Trans(from, to Config) float64 {
	if from == m.outside || to == m.outside {
		if from == to {
			return 0
		}
		return 5
	}
	return m.tableModel.Trans(from, to)
}

func (m outsideModel) Size(c Config) float64 {
	if c == m.outside {
		return 1
	}
	return m.tableModel.Size(c)
}
