package core

import (
	"math/rand"
	"testing"
)

// versionedTableModel is a tableModel whose cost world can change in
// place — the shape of a long-lived what-if model whose statistics are
// refreshed between solves. The version is the model's statistics
// epoch; bumping it without swapping the model pointer is exactly the
// staleness case the SolveCache must detect.
type versionedTableModel struct {
	tableModel
	version uint64
}

func (m *versionedTableModel) ModelVersion() uint64 { return m.version }

// TestSolveCacheStaleModelVersion is the regression for stale cost
// tables surviving a statistics refresh: a long-lived Problem whose
// model mutates its histograms (same pointer, new outputs) must NOT
// replay tables from the dead world.
func TestSolveCacheStaleModelVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	base, configs := randomModel(rng, 10, 4)
	m := &versionedTableModel{tableModel: *base, version: 1}
	p := &Problem{
		Stages: 10, Configs: configs, Initial: 0, K: 2, Model: m,
		Cache: NewSolveCache(), Metrics: &Metrics{},
	}
	sol1, err := SolveKAware(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics.MatrixBuilds(); got != 1 {
		t.Fatalf("MatrixBuilds after first solve = %d, want 1", got)
	}

	// "Refresh the statistics": mutate the histograms in place — every
	// EXEC cell changes — and advance the model's version accordingly.
	for i := range m.exec {
		for j := range m.exec[i] {
			m.exec[i][j] = m.exec[i][j]*3 + 7
		}
	}
	m.version = 2

	sol2, err := SolveKAware(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics.MatrixBuilds(); got != 2 {
		t.Fatalf("MatrixBuilds after stats refresh = %d, want 2 (stale tables replayed)", got)
	}
	// The second solution must be priced in the new world: recompute
	// its cost from the mutated model directly.
	fresh := *p
	fresh.Cache = nil
	if got := fresh.SequenceCost(sol2.Designs); !almostEqual(got, sol2.Cost) {
		t.Fatalf("second solve cost %v != fresh model replay %v", sol2.Cost, got)
	}
	// Sanity: the old solution's cost no longer prices correctly, so a
	// replayed table would have been observable.
	if almostEqual(sol1.Cost, sol2.Cost) {
		t.Fatalf("solve costs identical (%v) across a world change; fixture too weak", sol1.Cost)
	}
}

// TestSolveCacheCrossInstanceWarmStart asserts the flip side of version
// keying: two DISTINCT model instances of the same type reporting the
// same version (a service rebuilding its model over an unchanged
// window) share one table build.
func TestSolveCacheCrossInstanceWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base, configs := randomModel(rng, 8, 3)
	m1 := &versionedTableModel{tableModel: *base, version: 42}
	m2 := &versionedTableModel{tableModel: *base, version: 42}
	cache := NewSolveCache()
	metrics := &Metrics{}
	p1 := &Problem{
		Stages: 8, Configs: configs, Initial: 0, K: 2, Model: m1,
		Cache: cache, Metrics: metrics,
	}
	sol1, err := SolveKAware(bg, p1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := *p1
	p2.Model = m2
	sol2, err := SolveKAware(bg, &p2)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.MatrixBuilds(); got != 1 {
		t.Fatalf("MatrixBuilds across same-version instances = %d, want 1 (no warm start)", got)
	}
	if got := metrics.MatrixReuses(); got == 0 {
		t.Fatal("MatrixReuses = 0, want > 0")
	}
	if sol1.Cost != sol2.Cost {
		t.Fatalf("warm-started cost %v != cold cost %v", sol2.Cost, sol1.Cost)
	}

	// A version bump on the new instance still forces a rebuild.
	m2.version = 43
	if _, err := SolveKAware(bg, &p2); err != nil {
		t.Fatal(err)
	}
	if got := metrics.MatrixBuilds(); got != 2 {
		t.Fatalf("MatrixBuilds after version bump = %d, want 2", got)
	}
}

// TestSolveCacheUnversionedModelKeepsIdentitySemantics pins that models
// without a version keep the original pointer-identity behaviour.
func TestSolveCacheUnversionedModelKeepsIdentitySemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	m1, configs := randomModel(rng, 6, 3)
	metrics := &Metrics{}
	p := &Problem{
		Stages: 6, Configs: configs, Initial: 0, K: 1, Model: m1,
		Cache: NewSolveCache(), Metrics: metrics,
	}
	if _, err := SolveKAware(bg, p); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveKAware(bg, p); err != nil {
		t.Fatal(err)
	}
	if got := metrics.MatrixBuilds(); got != 1 {
		t.Fatalf("same-instance rebuilds: MatrixBuilds = %d, want 1", got)
	}
	// A distinct instance with identical content cannot prove world
	// equality without a version — it must rebuild.
	m2 := &tableModel{exec: m1.exec, trans: m1.trans, size: m1.size}
	p.Model = m2
	if _, err := SolveKAware(bg, p); err != nil {
		t.Fatal(err)
	}
	if got := metrics.MatrixBuilds(); got != 2 {
		t.Fatalf("unversioned cross-instance: MatrixBuilds = %d, want 2", got)
	}
}
