package core

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// batchTableModel wraps tableModel with a counting BatchExec so tests
// can assert the solvers route frontier costing through the batch entry
// point and that doing so never changes a result.
type batchTableModel struct {
	tableModel
	batchCalls atomic.Int64
	batchCells atomic.Int64
}

var _ BatchCostModel = (*batchTableModel)(nil)

func (m *batchTableModel) BatchExec(stage int, configs []Config, out []float64) []float64 {
	if cap(out) < len(configs) {
		out = make([]float64, len(configs))
	}
	out = out[:len(configs)]
	m.batchCalls.Add(1)
	m.batchCells.Add(int64(len(configs)))
	for j, c := range configs {
		out[j] = m.exec[stage][c]
	}
	return out
}

// TestBatchCostModelUsedAndIdentical solves the same problem twice —
// once with a plain CostModel, once with its BatchCostModel twin — and
// requires bit-identical solutions plus evidence the batch entry point
// actually carried the cost-table build and the greedy sweep.
func TestBatchCostModelUsedAndIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tm, configs := randomModel(rng, 8, 4)
	bm := &batchTableModel{tableModel: *tm}
	f := Config(0)
	mkProblem := func(model CostModel) *Problem {
		return &Problem{Stages: 8, Configs: configs, Initial: 0, Final: &f, K: 2, Model: model}
	}

	for _, strat := range []Strategy{StrategyKAware, StrategyGreedySeq} {
		scalarSol, err := Solve(bg, mkProblem(tm), strat)
		if err != nil {
			t.Fatalf("%s scalar solve: %v", strat, err)
		}
		batchSol, err := Solve(bg, mkProblem(bm), strat)
		if err != nil {
			t.Fatalf("%s batch solve: %v", strat, err)
		}
		if math.Float64bits(scalarSol.Cost) != math.Float64bits(batchSol.Cost) {
			t.Errorf("%s: batch cost %v != scalar cost %v", strat, batchSol.Cost, scalarSol.Cost)
		}
		if len(scalarSol.Designs) != len(batchSol.Designs) {
			t.Fatalf("%s: design length mismatch", strat)
		}
		for i := range scalarSol.Designs {
			if scalarSol.Designs[i] != batchSol.Designs[i] {
				t.Errorf("%s: stage %d design %v != %v", strat, i, batchSol.Designs[i], scalarSol.Designs[i])
			}
		}
	}
	if bm.batchCalls.Load() == 0 {
		t.Fatal("no solver used BatchExec; frontier costing fell back to per-call Exec")
	}
	if bm.batchCells.Load() == 0 {
		t.Fatal("BatchExec was called with empty frontiers only")
	}
}

// TestBudgetModelBatchAccounting checks the resilient budget wrapper
// charges batched evaluations exactly like scalar ones: same total,
// exactly one budget-exhausted trip, and no double counting when the
// inner model lacks BatchExec.
func TestBudgetModelBatchAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tm, configs := randomModel(rng, 4, 3)
	bm := &batchTableModel{tableModel: *tm}

	for _, inner := range []CostModel{CostModel(tm), CostModel(bm)} {
		tripped := 0
		b := &budgetModel{inner: inner, budget: 10,
			cancel: func(error) { tripped++ }}
		out := b.BatchExec(0, configs, nil)
		for j, c := range configs {
			want := inner.Exec(0, c)
			if math.Float64bits(out[j]) != math.Float64bits(want) {
				t.Fatalf("budget batch value %v != inner %v", out[j], want)
			}
		}
		// Each batch charges len(configs) = 8; the second batch crosses
		// the budget of 10 and must cancel exactly once.
		b.BatchExec(1, configs, out)
		b.BatchExec(2, configs, out)
		if tripped != 1 {
			t.Fatalf("budget tripped %d times, want exactly once", tripped)
		}
	}
}
