package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// bg is the context used by tests that don't exercise cancellation.
var bg = context.Background()

// tableModel is a synthetic cost model over dense tables, for testing
// the solvers against brute force.
type tableModel struct {
	exec  [][]float64 // [stage][rawConfig]
	trans [][]float64 // [rawFrom][rawTo], zero diagonal
	size  []float64   // [rawConfig]
}

func (m *tableModel) Exec(stage int, c Config) float64 { return m.exec[stage][c] }
func (m *tableModel) Trans(from, to Config) float64    { return m.trans[from][to] }
func (m *tableModel) Size(c Config) float64            { return m.size[c] }

// randomModel builds a random model over all 2^structs configurations.
func randomModel(rng *rand.Rand, stages, structs int) (*tableModel, []Config) {
	n := 1 << uint(structs)
	m := &tableModel{
		exec:  make([][]float64, stages),
		trans: make([][]float64, n),
		size:  make([]float64, n),
	}
	for i := range m.exec {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		m.exec[i] = row
	}
	for f := range m.trans {
		row := make([]float64, n)
		for t := range row {
			if t != f {
				row[t] = rng.Float64() * 50
			}
		}
		m.trans[f] = row
	}
	for c := range m.size {
		m.size[c] = float64(Config(c).Count())
	}
	configs := make([]Config, n)
	for i := range configs {
		configs[i] = Config(i)
	}
	return m, configs
}

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

func TestConfigBitsetOps(t *testing.T) {
	c := ConfigOf(0, 3, 5)
	if !c.Has(0) || !c.Has(3) || !c.Has(5) || c.Has(1) {
		t.Error("Has wrong")
	}
	if c.Count() != 3 {
		t.Errorf("Count = %d", c.Count())
	}
	if got := c.Structures(); len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 5 {
		t.Errorf("Structures = %v", got)
	}
	if c.With(1).Count() != 4 || c.Without(3).Count() != 2 {
		t.Error("With/Without wrong")
	}
	if c.With(3) != c || c.Without(1) != c {
		t.Error("With/Without not idempotent on present/absent bits")
	}
	added, removed := ConfigOf(0, 1).Diff(ConfigOf(1, 2))
	if len(added) != 1 || added[0] != 2 || len(removed) != 1 || removed[0] != 0 {
		t.Errorf("Diff = %v, %v", added, removed)
	}
}

func TestConfigFormat(t *testing.T) {
	names := []string{"I(a)", "I(b)"}
	if got := ConfigOf().Format(names); got != "{}" {
		t.Errorf("empty format = %q", got)
	}
	if got := ConfigOf(0, 1).Format(names); got != "{I(a), I(b)}" {
		t.Errorf("format = %q", got)
	}
	if got := ConfigOf(5).Format(names); got != "{#5}" {
		t.Errorf("out-of-range format = %q", got)
	}
}

func TestCountChangesPolicies(t *testing.T) {
	init := ConfigOf()
	designs := []Config{ConfigOf(0), ConfigOf(0), ConfigOf(1), ConfigOf(1)}
	if got := CountChanges(init, designs, FreeEndpoints); got != 1 {
		t.Errorf("FreeEndpoints changes = %d, want 1", got)
	}
	if got := CountChanges(init, designs, CountAll); got != 2 {
		t.Errorf("CountAll changes = %d, want 2", got)
	}
	// Starting on the initial design: both policies agree.
	designs = []Config{init, ConfigOf(1)}
	if CountChanges(init, designs, FreeEndpoints) != 1 || CountChanges(init, designs, CountAll) != 1 {
		t.Error("policies disagree when starting on the initial design")
	}
	if CountChanges(init, nil, CountAll) != 0 {
		t.Error("empty sequence has changes")
	}
}

func TestEnumerateConfigs(t *testing.T) {
	all, err := EnumerateConfigs(3, nil, 0)
	if err != nil || len(all) != 8 {
		t.Fatalf("EnumerateConfigs(3) = %d configs, %v", len(all), err)
	}
	bounded, err := EnumerateConfigs(3, func(c Config) float64 { return float64(c.Count()) }, 1)
	if err != nil || len(bounded) != 4 { // {}, {0}, {1}, {2}
		t.Fatalf("bounded enumeration = %d configs, %v", len(bounded), err)
	}
	if _, err := EnumerateConfigs(21, nil, 0); err == nil {
		t.Error("2^21 enumeration allowed")
	}
	if _, err := EnumerateConfigs(-1, nil, 0); err == nil {
		t.Error("negative structure count allowed")
	}
}

func TestProblemValidation(t *testing.T) {
	m, configs := randomModel(rand.New(rand.NewSource(1)), 3, 2)
	good := &Problem{Stages: 3, Configs: configs, Model: m, K: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	bad := []*Problem{
		{Stages: 0, Configs: configs, Model: m},
		{Stages: 3, Configs: nil, Model: m},
		{Stages: 3, Configs: configs, Model: nil},
		{Stages: 3, Configs: []Config{0, 0}, Model: m},
		{Stages: 3, Configs: configs, Model: m, K: -2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
	f := Config(99)
	p := &Problem{Stages: 3, Configs: configs, Model: m, Final: &f}
	if err := p.Validate(); err == nil {
		t.Error("final config outside candidates accepted")
	}
}

func TestUnconstrainedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		stages := 2 + rng.Intn(5)
		structs := 1 + rng.Intn(2)
		m, configs := randomModel(rng, stages, structs)
		p := &Problem{
			Stages: stages, Configs: configs, Initial: 0,
			K: Unconstrained, Model: m,
		}
		if trial%3 == 0 {
			f := Config(0)
			p.Final = &f
		}
		want, err := SolveBruteForce(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveUnconstrained(bg, p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got.Cost, want.Cost) {
			t.Fatalf("trial %d: unconstrained %f != brute force %f", trial, got.Cost, want.Cost)
		}
		if err := p.CheckSolution(got); err != nil {
			t.Fatal(err)
		}
	}
}

func TestKAwareMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		stages := 2 + rng.Intn(5)
		structs := 1 + rng.Intn(2)
		m, configs := randomModel(rng, stages, structs)
		for _, policy := range []ChangePolicy{FreeEndpoints, CountAll} {
			for k := 0; k <= 3; k++ {
				p := &Problem{
					Stages: stages, Configs: configs, Initial: 0,
					K: k, Policy: policy, Model: m,
				}
				if trial%4 == 0 {
					f := Config(0)
					p.Final = &f
				}
				want, err := SolveBruteForce(p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := SolveKAware(bg, p)
				if err != nil {
					t.Fatalf("trial %d k=%d policy=%v: %v", trial, k, policy, err)
				}
				if !almostEqual(got.Cost, want.Cost) {
					t.Fatalf("trial %d k=%d policy=%v: kaware %f != brute force %f",
						trial, k, policy, got.Cost, want.Cost)
				}
				if err := p.CheckSolution(got); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestRankingMatchesKAware(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		stages := 2 + rng.Intn(5)
		structs := 1 + rng.Intn(2)
		m, configs := randomModel(rng, stages, structs)
		for _, prune := range []bool{false, true} {
			for k := 0; k <= 2; k++ {
				p := &Problem{
					Stages: stages, Configs: configs, Initial: 0,
					K: k, Model: m,
				}
				want, err := SolveKAware(bg, p)
				if err != nil {
					t.Fatal(err)
				}
				res, err := SolveRanking(bg, p, RankingOptions{Prune: prune})
				if err != nil {
					t.Fatalf("trial %d k=%d prune=%v: %v", trial, k, prune, err)
				}
				if res.Exhausted || res.Solution == nil {
					t.Fatalf("trial %d k=%d prune=%v: exhausted after %d expansions",
						trial, k, prune, res.Expansions)
				}
				if !almostEqual(res.Solution.Cost, want.Cost) {
					t.Fatalf("trial %d k=%d prune=%v: ranking %f != kaware %f",
						trial, k, prune, res.Solution.Cost, want.Cost)
				}
				if err := p.CheckSolution(res.Solution); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestRankingPruneExpandsLess(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, configs := randomModel(rng, 8, 2)
	p := &Problem{Stages: 8, Configs: configs, Initial: 0, K: 1, Model: m}
	plain, err := SolveRanking(bg, p, RankingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := SolveRanking(bg, p, RankingOptions{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Expansions > plain.Expansions {
		t.Errorf("pruned ranking expanded more (%d) than plain (%d)", pruned.Expansions, plain.Expansions)
	}
}

func TestRankingBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, configs := randomModel(rng, 10, 2)
	p := &Problem{Stages: 10, Configs: configs, Initial: 0, K: 0, Model: m}
	res, err := SolveRanking(bg, p, RankingOptions{MaxExpansions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Solution != nil {
		t.Errorf("tiny budget not exhausted: %+v", res)
	}
}

func TestMergeProducesFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		stages := 3 + rng.Intn(5)
		structs := 1 + rng.Intn(2)
		m, configs := randomModel(rng, stages, structs)
		for k := 0; k <= 2; k++ {
			p := &Problem{Stages: stages, Configs: configs, Initial: 0, K: k, Model: m}
			optimal, err := SolveKAware(bg, p)
			if err != nil {
				t.Fatal(err)
			}
			sol, steps, err := SolveMergeFromUnconstrained(bg, p)
			if err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			if err := p.CheckSolution(sol); err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			if sol.Cost < optimal.Cost-1e-6 {
				t.Fatalf("trial %d k=%d: merge %f beats optimal %f", trial, k, sol.Cost, optimal.Cost)
			}
			_ = steps
		}
	}
}

func TestMergeNoOpWhenAlreadyFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	m, configs := randomModel(rng, 6, 2)
	p := &Problem{Stages: 6, Configs: configs, Initial: 0, K: Unconstrained, Model: m}
	seed, err := SolveUnconstrained(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	p2 := *p
	p2.K = seed.Changes // exactly feasible
	sol, steps, err := SolveMerge(bg, &p2, seed)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 0 {
		t.Errorf("merge took %d steps on a feasible input", steps)
	}
	if !almostEqual(sol.Cost, seed.Cost) {
		t.Errorf("merge changed a feasible solution: %f -> %f", seed.Cost, sol.Cost)
	}
}

func TestMergeCountAllKZeroForcesInitial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m, configs := randomModel(rng, 5, 2)
	p := &Problem{Stages: 5, Configs: configs, Initial: 0, K: 0, Policy: CountAll, Model: m}
	sol, _, err := SolveMergeFromUnconstrained(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range sol.Designs {
		if c != p.Initial {
			t.Fatalf("stage %d uses %v under CountAll k=0", i, c)
		}
	}
	if err := p.CheckSolution(sol); err != nil {
		t.Fatal(err)
	}
}

func TestGreedySeqFeasibleAndNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		stages := 2 + rng.Intn(5)
		structs := 1 + rng.Intn(3)
		m, configs := randomModel(rng, stages, structs)
		for k := 0; k <= 2; k++ {
			p := &Problem{Stages: stages, Configs: configs, Initial: 0, K: k, Model: m}
			optimal, err := SolveKAware(bg, p)
			if err != nil {
				t.Fatal(err)
			}
			sol, reduced, err := SolveGreedySeq(bg, p)
			if err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			if len(reduced) == 0 || len(reduced) > len(configs) {
				t.Fatalf("reduced candidate set has %d configs", len(reduced))
			}
			if err := p.CheckSolution(sol); err != nil {
				t.Fatal(err)
			}
			if sol.Cost < optimal.Cost-1e-6 {
				t.Fatalf("greedy %f beats optimal %f", sol.Cost, optimal.Cost)
			}
		}
	}
}

func TestHybridMatchesFeasibilityAndChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		stages := 3 + rng.Intn(5)
		m, configs := randomModel(rng, stages, 2)
		for k := 0; k <= 3; k++ {
			p := &Problem{Stages: stages, Configs: configs, Initial: 0, K: k, Model: m}
			sol, choice, err := SolveHybrid(bg, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.CheckSolution(sol); err != nil {
				t.Fatalf("trial %d k=%d choice=%s: %v", trial, k, choice, err)
			}
			optimal, err := SolveKAware(bg, p)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Cost < optimal.Cost-1e-6 {
				t.Fatal("hybrid beats optimal")
			}
			if choice == ChoseKAware && !almostEqual(sol.Cost, optimal.Cost) {
				t.Errorf("hybrid chose kaware but cost %f != optimal %f", sol.Cost, optimal.Cost)
			}
		}
	}
}

func TestHybridReturnsUnconstrainedWhenFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m, configs := randomModel(rng, 6, 2)
	p := &Problem{Stages: 6, Configs: configs, Initial: 0, K: Unconstrained, Model: m}
	seed, _ := SolveUnconstrained(bg, p)
	p2 := *p
	p2.K = seed.Changes + 1
	sol, choice, err := SolveHybrid(bg, &p2)
	if err != nil {
		t.Fatal(err)
	}
	if choice != ChoseUnconstrained {
		t.Errorf("choice = %s", choice)
	}
	if !almostEqual(sol.Cost, seed.Cost) {
		t.Errorf("hybrid cost %f != unconstrained %f", sol.Cost, seed.Cost)
	}
}

func TestSolveDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	m, configs := randomModel(rng, 5, 2)
	p := &Problem{Stages: 5, Configs: configs, Initial: 0, K: 2, Model: m}
	optimal, err := SolveKAware(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies() {
		sol, err := Solve(bg, p, s)
		if err != nil {
			t.Fatalf("strategy %s: %v", s, err)
		}
		if err := p.CheckSolution(sol); err != nil {
			t.Fatalf("strategy %s: %v", s, err)
		}
		if sol.Cost < optimal.Cost-1e-6 {
			t.Fatalf("strategy %s beats optimal", s)
		}
		// Exact strategies must match the optimum.
		if s == StrategyKAware || s == StrategyRanking {
			if !almostEqual(sol.Cost, optimal.Cost) {
				t.Fatalf("exact strategy %s cost %f != optimal %f", s, sol.Cost, optimal.Cost)
			}
		}
	}
	if _, err := Solve(bg, p, "nonsense"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestCostMonotonicInK(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m, configs := randomModel(rng, 12, 2)
	p := &Problem{Stages: 12, Configs: configs, Initial: 0, Model: m}
	prev := math.Inf(1)
	for k := 0; k <= 12; k++ {
		pk := *p
		pk.K = k
		sol, err := SolveKAware(bg, &pk)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Cost > prev+1e-9 {
			t.Fatalf("cost increased from %f to %f at k=%d", prev, sol.Cost, k)
		}
		prev = sol.Cost
	}
	// And k = n matches unconstrained.
	pu := *p
	pu.K = Unconstrained
	unc, err := SolveUnconstrained(bg, &pu)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(prev, unc.Cost) {
		t.Errorf("k=n cost %f != unconstrained %f", prev, unc.Cost)
	}
}

func TestSpaceBoundExcludesConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	m, configs := randomModel(rng, 5, 3)
	p := &Problem{
		Stages: 5, Configs: configs, Initial: 0, K: Unconstrained,
		SpaceBound: 1, Model: m, // only configs with at most one structure
	}
	sol, err := SolveUnconstrained(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sol.Designs {
		if c.Count() > 1 {
			t.Fatalf("design %v exceeds space bound", c)
		}
	}
	// A bound excluding everything is an error.
	p.SpaceBound = 0.5
	p.Configs = []Config{ConfigOf(0), ConfigOf(1)}
	if _, err := SolveUnconstrained(bg, p); err == nil {
		t.Error("empty usable set accepted")
	}
}

func TestCheckSolutionCatchesLies(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m, configs := randomModel(rng, 4, 2)
	p := &Problem{Stages: 4, Configs: configs, Initial: 0, K: 1, Model: m}
	sol, err := SolveKAware(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	lying := *sol
	lying.Cost += 5
	if err := p.CheckSolution(&lying); err == nil {
		t.Error("wrong cost accepted")
	}
	lying = *sol
	lying.Changes += 1
	if err := p.CheckSolution(&lying); err == nil {
		t.Error("wrong change count accepted")
	}
	short := &Solution{Designs: sol.Designs[:2], Cost: sol.Cost, Changes: sol.Changes}
	if err := p.CheckSolution(short); err == nil {
		t.Error("short solution accepted")
	}
}

func TestKAwareStaticSpecialCase(t *testing.T) {
	// With FreeEndpoints and K = 0, the solver must pick the single best
	// static configuration for the whole sequence — the classical static
	// design problem.
	rng := rand.New(rand.NewSource(73))
	m, configs := randomModel(rng, 8, 2)
	p := &Problem{Stages: 8, Configs: configs, Initial: 0, K: 0, Policy: FreeEndpoints, Model: m}
	sol, err := SolveKAware(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sol.Designs); i++ {
		if sol.Designs[i] != sol.Designs[0] {
			t.Fatal("k=0 design changes mid-sequence")
		}
	}
	// Must equal the explicit argmin over static choices.
	best := math.Inf(1)
	for _, c := range configs {
		total := m.Trans(p.Initial, c)
		for i := 0; i < p.Stages; i++ {
			total += m.Exec(i, c)
		}
		if total < best {
			best = total
		}
	}
	if !almostEqual(sol.Cost, best) {
		t.Errorf("static optimum %f != kaware k=0 %f", best, sol.Cost)
	}
}

func TestChangePolicyStrings(t *testing.T) {
	if FreeEndpoints.String() != "FreeEndpoints" || CountAll.String() != "CountAll" {
		t.Error("policy names wrong")
	}
}

func TestSolutionRuns(t *testing.T) {
	s := &Solution{Designs: []Config{1, 1, 2, 2, 2, 1}}
	runs := s.Runs()
	want := []Run{
		{Config: 1, Start: 0, Length: 2},
		{Config: 2, Start: 2, Length: 3},
		{Config: 1, Start: 5, Length: 1},
	}
	if len(runs) != len(want) {
		t.Fatalf("runs = %+v", runs)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Errorf("run %d = %+v, want %+v", i, runs[i], want[i])
		}
	}
	if (&Solution{}).Runs() != nil {
		t.Error("empty solution has runs")
	}
	// Runs cover every stage exactly once.
	total := 0
	for _, r := range runs {
		total += r.Length
	}
	if total != len(s.Designs) {
		t.Errorf("runs cover %d of %d stages", total, len(s.Designs))
	}
}
