package alerter

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dyndesign/internal/advisor"
	"dyndesign/internal/candidates"
	"dyndesign/internal/core"
	"dyndesign/internal/engine"
	"dyndesign/internal/workload"
)

const testRows = 20000

func fixture(t testing.TB) (*advisor.Advisor, []core.Config) {
	t.Helper()
	db := engine.New()
	db.MustExec("CREATE TABLE t (a INT, b INT, c INT, d INT)")
	domain := workload.DomainForRows(testRows)
	rng := rand.New(rand.NewSource(55))
	var sb strings.Builder
	for i := 0; i < testRows; i += 500 {
		sb.Reset()
		sb.WriteString("INSERT INTO t VALUES ")
		for j := 0; j < 500; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d)",
				rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain))
		}
		db.MustExec(sb.String())
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	structures := candidates.PaperStructures("t")
	configs := advisor.SingleIndexConfigs(len(structures))
	adv, err := advisor.New(db, advisor.DesignSpace{
		Table: "t", Structures: structures, Configs: configs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return adv, configs
}

// feed sends n statements from a mix, returning the first alert.
func feed(t *testing.T, a *Alerter, mix workload.Mix, rng *rand.Rand, n int) *Alert {
	t.Helper()
	stmts, err := mix.Generate(rng, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stmts {
		alert, err := a.Observe(s)
		if err != nil {
			t.Fatal(err)
		}
		if alert != nil {
			return alert
		}
	}
	return nil
}

func TestAlerterFiresOnDrift(t *testing.T) {
	adv, configs := fixture(t)
	mixes := workload.PaperMixes(testRows)
	// Start on I(a,b) — the right design for mix A.
	current := core.ConfigOf(4)
	a, err := New(adv, configs, current, Options{WindowSize: 200, CheckEvery: 20, Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	// Phase 1: mix A. The current design is good; no alert.
	if alert := feed(t, a, mixes["A"], rng, 400); alert != nil {
		t.Fatalf("false alert during the matching phase: %+v", alert)
	}
	// Phase 2: the workload shifts to mix C. The alerter must fire and
	// point at a c-serving configuration.
	alert := feed(t, a, mixes["C"], rng, 400)
	if alert == nil {
		t.Fatal("no alert after a major workload shift")
	}
	if alert.Improvement < 0.2 {
		t.Errorf("improvement = %f", alert.Improvement)
	}
	best := alert.BestConfig.Structures()
	if len(best) != 1 || (best[0] != 2 && best[0] != 5) { // I(c) or I(c,d)
		t.Errorf("best config = %v, want a c-serving index", alert.BestConfig)
	}
}

func TestAlerterCooldown(t *testing.T) {
	adv, configs := fixture(t)
	mixes := workload.PaperMixes(testRows)
	current := core.ConfigOf(4) // I(a,b)
	a, err := New(adv, configs, current, Options{
		WindowSize: 100, CheckEvery: 10, Threshold: 0.2, Cooldown: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	feed(t, a, mixes["A"], rng, 150)
	first := feed(t, a, mixes["C"], rng, 300)
	if first == nil {
		t.Fatal("no first alert")
	}
	// Continuing drift within the cooldown stays quiet.
	if again := feed(t, a, mixes["C"], rng, 300); again != nil {
		t.Fatalf("alert during cooldown: %+v", again)
	}
	// After the design is updated, a new drift fires again.
	if err := a.SetCurrent(first.BestConfig); err != nil {
		t.Fatal(err)
	}
	if alert := feed(t, a, mixes["C"], rng, 300); alert != nil {
		t.Fatalf("alert while the design matches the workload: %+v", alert)
	}
	if alert := feed(t, a, mixes["A"], rng, 400); alert == nil {
		t.Fatal("no alert after shifting back to mix A")
	}
}

func TestAlerterNoAlertBeforeWindowFills(t *testing.T) {
	adv, configs := fixture(t)
	mixes := workload.PaperMixes(testRows)
	a, err := New(adv, configs, core.ConfigOf(4), Options{WindowSize: 1000, CheckEvery: 10, Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	// Even on a mismatched mix, nothing fires before the window fills.
	if alert := feed(t, a, mixes["C"], rng, 999); alert != nil {
		t.Fatalf("alert before window filled: %+v", alert)
	}
	if a.Observed() != 999 {
		t.Errorf("observed = %d", a.Observed())
	}
}

func TestAlerterValidation(t *testing.T) {
	adv, configs := fixture(t)
	if _, err := New(adv, nil, 0, Options{}); err == nil {
		t.Error("no candidates accepted")
	}
	if _, err := New(adv, configs, core.ConfigOf(0, 1, 2), Options{}); err == nil {
		t.Error("current config outside candidates accepted")
	}
	a, err := New(adv, configs, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetCurrent(core.ConfigOf(0, 1, 2)); err == nil {
		t.Error("SetCurrent outside candidates accepted")
	}
	if a.Current() != 0 {
		t.Error("failed SetCurrent changed the config")
	}
}

// TestAlerterStateRoundTrip is the durability contract: serialize the
// alerter mid-stream (through JSON, the way a snapshot stores it),
// restore into a fresh alerter, and drive both over the identical
// continuation — the restored one must raise the same alerts at the
// same statements.
func TestAlerterStateRoundTrip(t *testing.T) {
	adv, configs := fixture(t)
	mixes := workload.PaperMixes(testRows)
	opts := Options{WindowSize: 150, CheckEvery: 15, Threshold: 0.2}
	current := core.ConfigOf(4) // I(a,b)
	orig, err := New(adv, configs, current, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the window on mix A, then shift to mix C and stop mid-drift,
	// before the alert has fired.
	rng := rand.New(rand.NewSource(11))
	if alert := feed(t, orig, mixes["A"], rng, 200); alert != nil {
		t.Fatalf("false alert during warmup: %+v", alert)
	}
	preDrift, err := mixes["C"].Generate(rng, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range preDrift {
		if alert, err := orig.Observe(s); err != nil {
			t.Fatal(err)
		} else if alert != nil {
			t.Fatalf("alert fired before the serialization point: %+v", alert)
		}
	}

	// JSON round-trip, exactly like the durable snapshot stores it
	// (float64 survives encoding/json bit-exactly).
	buf, err := json.Marshal(orig.State())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(buf, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := New(adv, configs, core.Config(0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if restored.Current() != current || restored.Observed() != orig.Observed() {
		t.Fatalf("restored current %v observed %d, want %v %d",
			restored.Current(), restored.Observed(), current, orig.Observed())
	}

	// Identical continuation streams: both alerters must agree on every
	// alert, statement by statement.
	cont, err := mixes["C"].Generate(rng, 400)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i, s := range cont {
		a1, err := orig.Observe(s)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := restored.Observe(s)
		if err != nil {
			t.Fatal(err)
		}
		if (a1 == nil) != (a2 == nil) {
			t.Fatalf("statement %d: original alert %+v, restored alert %+v", i, a1, a2)
		}
		if a1 != nil {
			fired++
			if a1.AtStatement != a2.AtStatement || a1.Current != a2.Current ||
				a1.Best != a2.Best || a1.BestConfig != a2.BestConfig {
				t.Fatalf("statement %d: alerts diverge:\noriginal: %+v\nrestored: %+v", i, a1, a2)
			}
		}
	}
	if fired == 0 {
		t.Fatal("continuation stream never fired; the round-trip proved nothing")
	}
}

// TestAlerterRestoreShapeMismatch pins the reject-don't-corrupt
// contract: a state captured under a different shape fails cleanly.
func TestAlerterRestoreShapeMismatch(t *testing.T) {
	adv, configs := fixture(t)
	opts := Options{WindowSize: 50, CheckEvery: 10}
	a, err := New(adv, configs, core.Config(0), opts)
	if err != nil {
		t.Fatal(err)
	}
	good := a.State()

	wrongWindow, err := New(adv, configs, core.Config(0), Options{WindowSize: 60, CheckEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongWindow.RestoreState(good); err == nil {
		t.Fatal("restore across window sizes succeeded")
	}
	wrongConfigs, err := New(adv, configs[:len(configs)-1], core.Config(0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongConfigs.RestoreState(good); err == nil {
		t.Fatal("restore across candidate lists succeeded")
	}
	bad := good
	bad.Current = core.ConfigOf(62) // not a candidate
	if err := a.RestoreState(bad); err == nil {
		t.Fatal("restore with a foreign current configuration succeeded")
	}
}
