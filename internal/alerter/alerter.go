// Package alerter implements a lightweight physical-design alerter in
// the spirit of Bruno & Chaudhuri's "to tune or not to tune?", which the
// paper's related-work section (§7) proposes as the trigger for its
// off-line optimizer: "we might rely on these technologies to trigger an
// off-line dynamic optimizer such as the one presented here."
//
// The alerter observes the statement stream, keeps a sliding window of
// what-if costs for every candidate configuration, and raises an alert
// when some other configuration would have executed the recent window
// sufficiently more cheaply than the configuration currently installed —
// the signal that the workload has drifted and the advisor should be
// re-run.
package alerter

import (
	"context"
	"fmt"

	"dyndesign/internal/advisor"
	"dyndesign/internal/core"
	"dyndesign/internal/workload"
)

// Options tunes the alerter.
type Options struct {
	// WindowSize is the number of recent statements considered
	// (default 500).
	WindowSize int
	// CheckEvery re-evaluates the window every this many statements
	// (default 50).
	CheckEvery int
	// Threshold is the minimum relative improvement that triggers an
	// alert: alert when bestCost <= (1 - Threshold) * currentCost
	// (default 0.25).
	Threshold float64
	// Cooldown suppresses further alerts for this many statements after
	// one fires (default WindowSize), so one drift yields one alert.
	Cooldown int
}

func (o Options) withDefaults() Options {
	if o.WindowSize <= 0 {
		o.WindowSize = 500
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 50
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.25
	}
	if o.Cooldown <= 0 {
		o.Cooldown = o.WindowSize
	}
	return o
}

// Alert reports that the current physical design has drifted away from
// the recent workload.
type Alert struct {
	// AtStatement is the 0-based count of statements observed when the
	// alert fired.
	AtStatement int
	// Current and Best are the window costs of the installed and the
	// best candidate configuration.
	Current, Best float64
	// BestConfig is the candidate that would serve the window best.
	BestConfig core.Config
	// Improvement is 1 - Best/Current.
	Improvement float64
}

// Alerter monitors a statement stream for physical-design drift. It is
// not safe for concurrent use; feed it from one goroutine.
type Alerter struct {
	adv     *advisor.Advisor
	configs []core.Config
	current core.Config
	opts    Options

	// ring[i][j] is the what-if cost of the i-th window slot under
	// configs[j]; sums[j] maintains the window total.
	ring     [][]float64
	sums     []float64
	pos      int
	filled   int
	observed int
	lastFire int // observed count at the last alert, -1 before any
}

// New builds an alerter over the advisor's design space. configs is the
// candidate configuration list to watch (e.g. the same list the advisor
// optimizes over); current is the configuration installed right now.
func New(adv *advisor.Advisor, configs []core.Config, current core.Config, opts Options) (*Alerter, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("alerter: no candidate configurations")
	}
	hasCurrent := false
	for _, c := range configs {
		if c == current {
			hasCurrent = true
			break
		}
	}
	if !hasCurrent {
		return nil, fmt.Errorf("alerter: current configuration not among the candidates")
	}
	opts = opts.withDefaults()
	a := &Alerter{
		adv:      adv,
		configs:  configs,
		current:  current,
		opts:     opts,
		ring:     make([][]float64, opts.WindowSize),
		sums:     make([]float64, len(configs)),
		lastFire: -1,
	}
	for i := range a.ring {
		a.ring[i] = make([]float64, len(configs))
	}
	return a, nil
}

// Current returns the configuration the alerter believes is installed.
func (a *Alerter) Current() core.Config { return a.current }

// SetCurrent informs the alerter that the design changed (e.g. after
// re-running the advisor); it also resets the alert cooldown.
func (a *Alerter) SetCurrent(c core.Config) error {
	for _, cand := range a.configs {
		if cand == c {
			a.current = c
			a.lastFire = -1
			return nil
		}
	}
	return fmt.Errorf("alerter: configuration not among the candidates")
}

// Observed returns how many statements the alerter has seen.
func (a *Alerter) Observed() int { return a.observed }

// State is the serializable drift-detector state: the cost ring, its
// running sums, and the counters that govern check cadence and
// cooldown. It captures everything Observe mutates, so a restored
// alerter continues the stream exactly where the original stopped —
// same alerts at the same statements. Configs and WindowSize pin the
// shape the state was captured under; RestoreState rejects a state
// whose shape no longer matches instead of replaying costs into the
// wrong slots.
type State struct {
	Configs    []core.Config `json:"configs"`
	Current    core.Config   `json:"current"`
	WindowSize int           `json:"window_size"`
	Observed   int           `json:"observed"`
	LastFire   int           `json:"last_fire"`
	Pos        int           `json:"pos"`
	Filled     int           `json:"filled"`
	Ring       [][]float64   `json:"ring"`
	Sums       []float64     `json:"sums"`
}

// State serializes the alerter's mutable state. The result shares no
// storage with the alerter.
func (a *Alerter) State() State {
	st := State{
		Configs:    append([]core.Config(nil), a.configs...),
		Current:    a.current,
		WindowSize: a.opts.WindowSize,
		Observed:   a.observed,
		LastFire:   a.lastFire,
		Pos:        a.pos,
		Filled:     a.filled,
		Ring:       make([][]float64, len(a.ring)),
		Sums:       append([]float64(nil), a.sums...),
	}
	for i, slot := range a.ring {
		st.Ring[i] = append([]float64(nil), slot...)
	}
	return st
}

// RestoreState replaces the alerter's mutable state with a serialized
// one. It fails — leaving the alerter unchanged — when the state was
// captured under a different shape: another candidate list, window
// size, or ring geometry. Callers treat that as "start cold", not as a
// fatal error; drift detection simply warms up again.
func (a *Alerter) RestoreState(st State) error {
	if len(st.Configs) != len(a.configs) {
		return fmt.Errorf("alerter: state has %d candidate configurations, alerter has %d", len(st.Configs), len(a.configs))
	}
	for i, c := range st.Configs {
		if c != a.configs[i] {
			return fmt.Errorf("alerter: state candidate %d is %d, alerter has %d", i, c, a.configs[i])
		}
	}
	if st.WindowSize != a.opts.WindowSize {
		return fmt.Errorf("alerter: state window size %d, alerter has %d", st.WindowSize, a.opts.WindowSize)
	}
	if len(st.Ring) != a.opts.WindowSize || len(st.Sums) != len(a.configs) {
		return fmt.Errorf("alerter: state ring %dx%d does not fit window %d over %d candidates",
			len(st.Ring), len(st.Sums), a.opts.WindowSize, len(a.configs))
	}
	if st.Pos < 0 || st.Pos >= a.opts.WindowSize || st.Filled < 0 || st.Filled > a.opts.WindowSize {
		return fmt.Errorf("alerter: state position %d/fill %d outside window %d", st.Pos, st.Filled, a.opts.WindowSize)
	}
	hasCurrent := false
	for _, c := range a.configs {
		if c == st.Current {
			hasCurrent = true
			break
		}
	}
	if !hasCurrent {
		return fmt.Errorf("alerter: state's current configuration not among the candidates")
	}
	for i, slot := range st.Ring {
		if len(slot) != len(a.configs) {
			return fmt.Errorf("alerter: state ring slot %d has %d costs, want %d", i, len(slot), len(a.configs))
		}
		copy(a.ring[i], slot)
	}
	copy(a.sums, st.Sums)
	a.current = st.Current
	a.observed = st.Observed
	a.lastFire = st.LastFire
	a.pos = st.Pos
	a.filled = st.Filled
	return nil
}

// Observe feeds one statement. It returns a non-nil Alert when the
// window check fires.
func (a *Alerter) Observe(s workload.Statement) (*Alert, error) {
	return a.ObserveContext(context.Background(), s)
}

// ObserveContext is Observe with cooperative cancellation: the
// per-candidate what-if costing loop stops with ctx's error when the
// context is cancelled, leaving the window unchanged for this
// statement.
func (a *Alerter) ObserveContext(ctx context.Context, s workload.Statement) (*Alert, error) {
	// Cost every candidate before mutating the window, so a mid-loop
	// cancellation cannot leave slot and sums half-updated.
	costs := make([]float64, len(a.configs))
	for j, cfg := range a.configs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := a.adv.StatementCost(s, cfg)
		if err != nil {
			return nil, err
		}
		costs[j] = c
	}
	slot := a.ring[a.pos]
	for j := range a.configs {
		a.sums[j] += costs[j] - slot[j]
		slot[j] = costs[j]
	}
	a.pos = (a.pos + 1) % a.opts.WindowSize
	if a.filled < a.opts.WindowSize {
		a.filled++
	}
	a.observed++

	if a.filled < a.opts.WindowSize || a.observed%a.opts.CheckEvery != 0 {
		return nil, nil
	}
	if a.lastFire >= 0 && a.observed-a.lastFire < a.opts.Cooldown {
		return nil, nil
	}

	currentCost := 0.0
	found := false
	bestCost := 0.0
	var bestCfg core.Config
	for j, cfg := range a.configs {
		if cfg == a.current {
			currentCost = a.sums[j]
			found = true
		}
		if j == 0 || a.sums[j] < bestCost {
			bestCost = a.sums[j]
			bestCfg = cfg
		}
	}
	if !found {
		return nil, fmt.Errorf("alerter: current configuration vanished from candidates")
	}
	if currentCost <= 0 || bestCost > (1-a.opts.Threshold)*currentCost {
		return nil, nil
	}
	a.lastFire = a.observed
	return &Alert{
		AtStatement: a.observed,
		Current:     currentCost,
		Best:        bestCost,
		BestConfig:  bestCfg,
		Improvement: 1 - bestCost/currentCost,
	}, nil
}
