package alerter

import (
	"context"
	"sync"

	"dyndesign/internal/core"
	"dyndesign/internal/workload"
)

// Stream adapts an Alerter — which is single-goroutine by design — to a
// concurrent ingest path: Observe calls from any number of producers
// are serialized behind a mutex, and every alert that fires is handed
// to the OnAlert callback while the lock is still held, so alerts are
// delivered exactly once and in window order. This is the drift-trigger
// hookup the advisor service uses: OnAlert schedules a re-solve instead
// of a timer.
type Stream struct {
	mu      sync.Mutex
	a       *Alerter
	onAlert func(Alert)
}

// NewStream wraps an Alerter for concurrent producers. onAlert may be
// nil, in which case alerts are only returned to the observing caller.
func NewStream(a *Alerter, onAlert func(Alert)) *Stream {
	return &Stream{a: a, onAlert: onAlert}
}

// Observe feeds one statement through the underlying alerter,
// serialized against every other producer. When the window check fires,
// the alert is passed to the OnAlert callback and returned.
func (s *Stream) Observe(ctx context.Context, stmt workload.Statement) (*Alert, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	alert, err := s.a.ObserveContext(ctx, stmt)
	if err != nil {
		return nil, err
	}
	if alert != nil && s.onAlert != nil {
		s.onAlert(*alert)
	}
	return alert, nil
}

// SetCurrent informs the alerter that the installed design changed
// (e.g. a re-solve was adopted); it also resets the alert cooldown.
func (s *Stream) SetCurrent(c core.Config) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.a.SetCurrent(c)
}

// Current returns the configuration the alerter believes is installed.
func (s *Stream) Current() core.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.a.Current()
}

// Observed returns how many statements the alerter has seen.
func (s *Stream) Observed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.a.Observed()
}

// State serializes the underlying alerter's drift-detector state,
// serialized against concurrent producers.
func (s *Stream) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.a.State()
}

// RestoreState replaces the underlying alerter's state (see
// Alerter.RestoreState), serialized against concurrent producers.
func (s *Stream) RestoreState(st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.a.RestoreState(st)
}
