package engine

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ExecScript executes a SQL script: statements separated by lines ending
// in ';' (a statement may span lines; the final statement may omit the
// semicolon). "--" comments are stripped. It stops at the first error,
// reporting the line where the failing statement ended.
func (db *Database) ExecScript(r io.Reader) error {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var stmt strings.Builder
	line := 0
	exec := func() error {
		text := strings.TrimSpace(stmt.String())
		stmt.Reset()
		text = strings.TrimSuffix(text, ";")
		if text == "" {
			return nil
		}
		if _, err := db.Exec(text); err != nil {
			return fmt.Errorf("engine: script line %d: %w", line, err)
		}
		return nil
	}
	for scanner.Scan() {
		line++
		text := scanner.Text()
		if idx := strings.Index(text, "--"); idx >= 0 {
			text = text[:idx]
		}
		stmt.WriteString(text)
		stmt.WriteByte('\n')
		if strings.HasSuffix(strings.TrimSpace(text), ";") {
			if err := exec(); err != nil {
				return err
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	return exec()
}
