package engine

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, s STRING)")
	db.MustExec("CREATE TABLE u (x INT)")
	for i := 0; i < 1000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row-%d')", i%50, i))
	}
	db.MustExec("INSERT INTO u VALUES (1), (2), (3)")
	db.MustExec("CREATE INDEX ON t (a)")
	db.MustExec("CREATE INDEX ON t (a, s)")
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Same row counts.
	if got := loaded.MustExec("SELECT COUNT(*) FROM t").Count; got != 1000 {
		t.Errorf("t has %d rows", got)
	}
	if got := loaded.MustExec("SELECT COUNT(*) FROM u").Count; got != 3 {
		t.Errorf("u has %d rows", got)
	}
	// Same query results.
	want := db.MustExec("SELECT s FROM t WHERE a = 7 ORDER BY s")
	got := loaded.MustExec("SELECT s FROM t WHERE a = 7 ORDER BY s")
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("query returned %d rows, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if !want.Rows[i].Equal(got.Rows[i]) {
			t.Fatalf("row %d differs", i)
		}
	}
	// Indexes restored and used.
	names, err := loaded.IndexNames("t")
	if err != nil || len(names) != 2 || names[0] != "I(a)" || names[1] != "I(a,s)" {
		t.Errorf("IndexNames = %v, %v", names, err)
	}
	plan, err := loaded.Explain("SELECT a FROM t WHERE a = 7")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access.Index == nil {
		t.Errorf("loaded database does not use its index: %v", plan)
	}
	// Statistics restored (analyzed flag).
	if loaded.TableStats("t") == nil {
		t.Error("statistics not rebuilt for analyzed table")
	}
	if loaded.TableStats("u") != nil {
		t.Error("statistics invented for unanalyzed table")
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotEmptyDatabase(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Catalog().Tables()) != 0 {
		t.Error("tables appeared from nowhere")
	}
}

func TestSnapshotLoadErrors(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1)")
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOTADB00rest"),
		"truncated 1": full[:len(full)-1],
		"truncated 2": full[:10],
		"truncated 3": full[:len(full)/2],
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Load succeeded", name)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	for i := 0; i < 100; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	var b1, b2 bytes.Buffer
	if err := db.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two saves of the same database differ")
	}
	// Save -> Load -> Save is stable too.
	loaded, err := Load(&b1)
	if err != nil {
		t.Fatal(err)
	}
	var b3 bytes.Buffer
	if err := loaded.Save(&b3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b2.Bytes(), b3.Bytes()) {
		t.Error("snapshot not stable across load/save")
	}
}

func TestSnapshotAfterDeletesAndUpdates(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, s STRING)")
	for i := 0; i < 500; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'x')", i))
	}
	db.MustExec("DELETE FROM t WHERE a < 100")
	db.MustExec("UPDATE t SET s = 'updated' WHERE a >= 400")
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.MustExec("SELECT COUNT(*) FROM t").Count; got != 400 {
		t.Errorf("rows = %d", got)
	}
	if got := loaded.MustExec("SELECT COUNT(*) FROM t WHERE s = 'updated'").Count; got != 100 {
		t.Errorf("updated rows = %d", got)
	}
}
