package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dyndesign/internal/catalog"
	"dyndesign/internal/sql"
	"dyndesign/internal/storage"
	"dyndesign/internal/types"
)

// Database snapshots: a versioned binary format holding every table's
// schema, rows, index definitions, and whether statistics were built.
// Loading rebuilds the physical structures (heap placement and index
// trees are derived state), so a snapshot is compact and
// version-tolerant at the storage layer.
//
// Layout (all integers big-endian):
//
//	magic   "DYNDB001"
//	uint32  table count
//	per table:
//	  string  name
//	  uint16  column count; per column: string name, uint8 kind
//	  uint32  index count;  per index: uint16 col count, per col string
//	  uint8   analyzed flag
//	  uint64  row count;    per row: uint32 payload length, payload
//
// Strings are uint16 length + bytes.

const snapshotMagic = "DYNDB001"

type snapshotWriter struct {
	w   *bufio.Writer
	err error
}

func (s *snapshotWriter) raw(b []byte) {
	if s.err == nil {
		_, s.err = s.w.Write(b)
	}
}
func (s *snapshotWriter) u8(v uint8)   { s.raw([]byte{v}) }
func (s *snapshotWriter) u16(v uint16) { s.raw(binary.BigEndian.AppendUint16(nil, v)) }
func (s *snapshotWriter) u32(v uint32) { s.raw(binary.BigEndian.AppendUint32(nil, v)) }
func (s *snapshotWriter) u64(v uint64) { s.raw(binary.BigEndian.AppendUint64(nil, v)) }
func (s *snapshotWriter) str(v string) {
	if len(v) > 0xFFFF {
		s.err = fmt.Errorf("engine: snapshot string too long")
		return
	}
	s.u16(uint16(len(v)))
	s.raw([]byte(v))
}

// Save writes a snapshot of the whole database.
func (db *Database) Save(out io.Writer) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &snapshotWriter{w: bufio.NewWriter(out)}
	s.raw([]byte(snapshotMagic))

	tables := db.cat.Tables()
	s.u32(uint32(len(tables)))
	for _, meta := range tables {
		td := db.tables[lowerName(meta.Name)]
		s.str(meta.Name)
		s.u16(uint16(meta.Schema.Len()))
		for _, col := range meta.Schema.Columns {
			s.str(col.Name)
			s.u8(uint8(col.Kind))
		}
		idxs := db.cat.TableIndexes(meta.Name)
		s.u32(uint32(len(idxs)))
		for _, def := range idxs {
			s.u16(uint16(len(def.Columns)))
			for _, c := range def.Columns {
				s.str(c)
			}
		}
		if td.tstats != nil {
			s.u8(1)
		} else {
			s.u8(0)
		}
		s.u64(uint64(td.heap.NumRows()))
		td.heap.Scan(func(_ storage.RID, payload []byte) bool {
			s.u32(uint32(len(payload)))
			s.raw(payload)
			return s.err == nil
		})
		if s.err != nil {
			return s.err
		}
	}
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

func lowerName(name string) string {
	b := []byte(name)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

type snapshotReader struct {
	r   *bufio.Reader
	err error
}

func (s *snapshotReader) raw(n int) []byte {
	if s.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(s.r, b); err != nil {
		s.err = fmt.Errorf("engine: truncated snapshot: %w", err)
		return nil
	}
	return b
}
func (s *snapshotReader) u8() uint8 {
	b := s.raw(1)
	if s.err != nil {
		return 0
	}
	return b[0]
}
func (s *snapshotReader) u16() uint16 {
	b := s.raw(2)
	if s.err != nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}
func (s *snapshotReader) u32() uint32 {
	b := s.raw(4)
	if s.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}
func (s *snapshotReader) u64() uint64 {
	b := s.raw(8)
	if s.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
func (s *snapshotReader) str() string {
	n := s.u16()
	b := s.raw(int(n))
	if s.err != nil {
		return ""
	}
	return string(b)
}

// Load reads a snapshot into a fresh database: tables and rows are
// restored, indexes rebuilt, and statistics recomputed for tables that
// had them.
func Load(in io.Reader) (*Database, error) {
	s := &snapshotReader{r: bufio.NewReader(in)}
	if magic := s.raw(len(snapshotMagic)); s.err != nil || string(magic) != snapshotMagic {
		if s.err != nil {
			return nil, s.err
		}
		return nil, fmt.Errorf("engine: not a snapshot (bad magic %q)", magic)
	}
	db := New()
	numTables := s.u32()
	if numTables > 1<<20 {
		return nil, fmt.Errorf("engine: implausible table count %d", numTables)
	}
	for t := uint32(0); t < numTables && s.err == nil; t++ {
		name := s.str()
		numCols := s.u16()
		cols := make([]types.Column, 0, numCols)
		for c := uint16(0); c < numCols && s.err == nil; c++ {
			colName := s.str()
			kind := types.Kind(s.u8())
			cols = append(cols, types.Column{Name: colName, Kind: kind})
		}
		if s.err != nil {
			break
		}
		schema, err := types.NewSchema(cols...)
		if err != nil {
			return nil, fmt.Errorf("engine: snapshot table %q: %w", name, err)
		}
		ct := &sql.CreateTable{Table: name}
		for _, c := range schema.Columns {
			ct.Columns = append(ct.Columns, sql.ColumnDef{Name: c.Name, Kind: c.Kind})
		}
		if _, err := db.ExecStmt(ct); err != nil {
			return nil, err
		}

		numIdx := s.u32()
		if numIdx > 1<<16 {
			return nil, fmt.Errorf("engine: implausible index count %d", numIdx)
		}
		var defs []catalog.IndexDef
		for i := uint32(0); i < numIdx && s.err == nil; i++ {
			nc := s.u16()
			def := catalog.IndexDef{Table: name}
			for c := uint16(0); c < nc && s.err == nil; c++ {
				def.Columns = append(def.Columns, s.str())
			}
			defs = append(defs, def)
		}
		analyzed := s.u8()

		numRows := s.u64()
		td, err := db.table(name)
		if err != nil {
			return nil, err
		}
		for r := uint64(0); r < numRows && s.err == nil; r++ {
			n := s.u32()
			if n > storage.MaxPayload {
				return nil, fmt.Errorf("engine: snapshot row of %d bytes exceeds page capacity", n)
			}
			payload := s.raw(int(n))
			if s.err != nil {
				break
			}
			row, err := types.DecodeRow(payload)
			if err != nil {
				return nil, fmt.Errorf("engine: snapshot row: %w", err)
			}
			if err := td.meta.Schema.Validate(row); err != nil {
				return nil, fmt.Errorf("engine: snapshot row: %w", err)
			}
			if _, err := td.heap.Insert(payload); err != nil {
				return nil, err
			}
		}
		if s.err != nil {
			break
		}
		// Rebuild indexes over the restored heap.
		for _, def := range defs {
			if err := db.cat.AddIndex(def); err != nil {
				return nil, err
			}
			if _, err := td.indexes.Create(def); err != nil {
				return nil, err
			}
		}
		if analyzed == 1 {
			if err := db.Analyze(name); err != nil {
				return nil, err
			}
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	return db, nil
}
