package engine

import (
	"fmt"
	"testing"

	"dyndesign/internal/cost"
)

// aggDB builds a table where aggregates are easy to verify by hand:
// groups g = 0..4, values v = g*10 + j for j = 0..9.
func aggDB(t testing.TB) *Database {
	t.Helper()
	db := New()
	db.MustExec("CREATE TABLE t (g INT, v INT, s STRING)")
	for g := 0; g < 5; g++ {
		for j := 0; j < 10; j++ {
			db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, 'n%d')", g, g*10+j, j))
		}
	}
	return db
}

func TestAggregatesUngrouped(t *testing.T) {
	db := aggDB(t)
	res := db.MustExec("SELECT COUNT(*), MIN(v), MAX(v), SUM(v), AVG(v) FROM t")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r := res.Rows[0]
	// 50 rows, v in [0,49], sum = 1225, avg = 24 (integer).
	want := []int64{50, 0, 49, 1225, 24}
	for i, w := range want {
		if r[i].Int != w {
			t.Errorf("%s = %d, want %d", res.Columns[i], r[i].Int, w)
		}
	}
	if res.Columns[0] != "COUNT(*)" || res.Columns[3] != "SUM(v)" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestAggregatesWithWhere(t *testing.T) {
	db := aggDB(t)
	res := db.MustExec("SELECT COUNT(v), SUM(v) FROM t WHERE g = 2")
	r := res.Rows[0]
	if r[0].Int != 10 || r[1].Int != 245 { // 20..29 sums to 245
		t.Errorf("row = %v", r)
	}
}

func TestGroupBy(t *testing.T) {
	db := aggDB(t)
	res := db.MustExec("SELECT g, COUNT(*), MIN(v), MAX(v) FROM t GROUP BY g")
	if len(res.Rows) != 5 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for i, r := range res.Rows {
		g := int64(i) // ordered by group key ascending
		if r[0].Int != g || r[1].Int != 10 || r[2].Int != g*10 || r[3].Int != g*10+9 {
			t.Errorf("group row %d = %v", i, r)
		}
	}
}

func TestGroupByOrderDescAndLimit(t *testing.T) {
	db := aggDB(t)
	res := db.MustExec("SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int != 4 || res.Rows[1][0].Int != 3 {
		t.Errorf("order = %v", res.Rows)
	}
	// Sum of 40..49 = 445.
	if res.Rows[0][1].Int != 445 {
		t.Errorf("SUM = %v", res.Rows[0][1])
	}
}

func TestGroupByStringColumn(t *testing.T) {
	db := aggDB(t)
	res := db.MustExec("SELECT s, COUNT(*) FROM t GROUP BY s")
	if len(res.Rows) != 10 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].Int != 5 {
			t.Errorf("group %v count = %d", r[0], r[1].Int)
		}
	}
	// Ordered by string key.
	if res.Rows[0][0].Str != "n0" || res.Rows[9][0].Str != "n9" {
		t.Errorf("string group order: %v ... %v", res.Rows[0][0], res.Rows[9][0])
	}
}

func TestAggregatesEmptyInput(t *testing.T) {
	db := aggDB(t)
	res := db.MustExec("SELECT COUNT(*), MIN(v), SUM(v), AVG(v) FROM t WHERE g = 999")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, v := range res.Rows[0] {
		if v.Int != 0 {
			t.Errorf("%s over empty input = %d", res.Columns[i], v.Int)
		}
	}
	// Grouped over empty input: no rows.
	res = db.MustExec("SELECT g, COUNT(*) FROM t WHERE g = 999 GROUP BY g")
	if len(res.Rows) != 0 {
		t.Errorf("grouped empty input rows = %v", res.Rows)
	}
}

func TestAggregateUsesIndexOnlyScan(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (g INT, v INT, pad STRING)")
	for i := 0; i < 5000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, 'padpadpadpadpadpadpadpad')", i%10, i))
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE INDEX ON t (g, v)")
	plan, err := db.Explain("SELECT g, MIN(v) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	// The index covers {g, v}; scanning its leaves beats the wide heap.
	if plan.Access.Kind != cost.IndexOnlyScan {
		t.Errorf("plan = %v, want IndexOnlyScan", plan)
	}
	res := db.MustExec("SELECT g, MIN(v) FROM t GROUP BY g")
	if len(res.Rows) != 10 || res.Rows[3][1].Int != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Seek on the leading column with aggregation.
	plan, _ = db.Explain("SELECT MAX(v) FROM t WHERE g = 7")
	if plan.Access.Kind != cost.IndexSeek {
		t.Errorf("plan = %v, want IndexSeek", plan)
	}
	res = db.MustExec("SELECT MAX(v) FROM t WHERE g = 7")
	if res.Rows[0][0].Int != 4997 {
		t.Errorf("MAX = %v", res.Rows[0][0])
	}
}

func TestAggregateErrors(t *testing.T) {
	db := aggDB(t)
	bad := []string{
		"SELECT SUM(s) FROM t",                            // SUM over string
		"SELECT AVG(s) FROM t",                            // AVG over string
		"SELECT v, COUNT(*) FROM t GROUP BY g",            // naked column not the group key
		"SELECT MIN(zzz) FROM t",                          // unknown aggregate column
		"SELECT g, COUNT(*) FROM t GROUP BY zzz",          // unknown group column
		"SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY v", // order by non-group column
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("%q succeeded", q)
		}
	}
	// MIN/MAX over strings are fine.
	res := db.MustExec("SELECT MIN(s), MAX(s) FROM t")
	if res.Rows[0][0].Str != "n0" || res.Rows[0][1].Str != "n9" {
		t.Errorf("string MIN/MAX = %v", res.Rows[0])
	}
}
