// Package engine ties the substrates together into an embedded relational
// database: it owns the catalog, heap files, indexes, and statistics of a
// database, parses and plans SQL, and executes it while charging logical
// page accesses to a single AccessStats counter.
//
// The engine plays the role Microsoft SQL Server 2005 played in the
// paper's experiments: the system whose physical design (set of secondary
// indexes) the advisor tunes, and on which workloads are executed to
// measure the effect of a design sequence.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dyndesign/internal/catalog"
	"dyndesign/internal/cost"
	"dyndesign/internal/index"
	"dyndesign/internal/sql"
	"dyndesign/internal/stats"
	"dyndesign/internal/storage"
	"dyndesign/internal/types"
)

// Database is an embedded database instance.
type Database struct {
	mu     sync.Mutex
	cat    *catalog.Catalog
	access storage.AccessStats
	tables map[string]*tableData // lower(name) -> data
}

// tableData binds a catalog table to its physical structures.
type tableData struct {
	meta    *catalog.Table
	heap    *storage.HeapFile
	indexes *index.Manager
	tstats  *stats.TableStats // nil until ANALYZE
}

// New creates an empty database.
func New() *Database {
	return &Database{
		cat:    catalog.New(),
		tables: make(map[string]*tableData),
	}
}

// AccessStats returns the database-wide logical page access counter. It
// is the measured execution cost of everything the database does,
// including index builds.
func (db *Database) AccessStats() *storage.AccessStats { return &db.access }

// Catalog returns the database's catalog.
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// Result is the outcome of executing one statement.
type Result struct {
	// Columns names the result columns of a SELECT.
	Columns []string
	// Rows holds the result rows of a SELECT (nil for COUNT(*); see
	// Count).
	Rows []types.Row
	// Count is the COUNT(*) value, or the number of rows affected by
	// DML.
	Count int64
	// Plan describes how a SELECT/UPDATE/DELETE located its rows.
	Plan *Plan
}

// Plan records the chosen access path for EXPLAIN and for tests.
type Plan struct {
	Table    string
	Access   cost.Access
	Residual []sql.Comparison
}

// String renders the plan as a compact EXPLAIN line.
func (p *Plan) String() string {
	s := p.Access.String()
	if len(p.Residual) > 0 {
		parts := make([]string, len(p.Residual))
		for i, c := range p.Residual {
			parts[i] = c.String()
		}
		s += " filter(" + strings.Join(parts, " AND ") + ")"
	}
	return s
}

// Exec parses and executes one SQL statement.
func (db *Database) Exec(sqlText string) (*Result, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(stmt)
}

// MustExec is Exec that panics on error, for fixtures and examples.
func (db *Database) MustExec(sqlText string) *Result {
	r, err := db.Exec(sqlText)
	if err != nil {
		panic(err)
	}
	return r
}

// ExecStmt executes a parsed statement.
func (db *Database) ExecStmt(stmt sql.Statement) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.execStmtLocked(stmt)
}

// MeasureStmt executes a parsed statement and returns the logical page
// accesses it alone performed. The before/after AccessStats snapshots
// are taken inside the database lock, so concurrent executions can
// never leak into the delta — this is the scoped capture the
// calibration layer pairs with what-if estimates. The delta includes
// everything the statement did (e.g. an index build's writes for
// CREATE INDEX), matching how AccessStats meters the database.
func (db *Database) MeasureStmt(stmt sql.Statement) (*Result, storage.AccessSnapshot, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	before := db.access.Snapshot()
	res, err := db.execStmtLocked(stmt)
	return res, db.access.Snapshot().Sub(before), err
}

func (db *Database) execStmtLocked(stmt sql.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.Explain:
		td, err := db.table(s.Query.Table)
		if err != nil {
			return nil, err
		}
		plan, err := db.planSelectLocked(td, s.Query)
		if err != nil {
			return nil, err
		}
		return &Result{
			Columns: []string{"plan"},
			Rows:    []types.Row{{types.NewString(plan.String())}},
			Count:   1,
			Plan:    plan,
		}, nil
	case *sql.CreateTable:
		return db.execCreateTable(s)
	case *sql.CreateIndex:
		return db.execCreateIndex(s)
	case *sql.DropIndex:
		return db.execDropIndex(s)
	case *sql.DropTable:
		return db.execDropTable(s)
	case *sql.Insert:
		return db.execInsert(s)
	case *sql.Select:
		return db.execSelect(s)
	case *sql.Update:
		return db.execUpdate(s)
	case *sql.Delete:
		return db.execDelete(s)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

func (db *Database) table(name string) (*tableData, error) {
	td, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", name)
	}
	return td, nil
}

func (db *Database) execCreateTable(s *sql.CreateTable) (*Result, error) {
	cols := make([]types.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = types.Column{Name: c.Name, Kind: c.Kind}
	}
	schema, err := types.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	meta, err := db.cat.CreateTable(s.Table, schema)
	if err != nil {
		return nil, err
	}
	heap := storage.NewHeapFile(&db.access)
	db.tables[strings.ToLower(s.Table)] = &tableData{
		meta:    meta,
		heap:    heap,
		indexes: index.NewManager(schema, heap),
	}
	return &Result{}, nil
}

func (db *Database) execCreateIndex(s *sql.CreateIndex) (*Result, error) {
	td, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	def := catalog.IndexDef{Table: td.meta.Name, Columns: s.Columns}
	if err := db.cat.AddIndex(def); err != nil {
		return nil, err
	}
	if _, err := td.indexes.Create(def); err != nil {
		// Roll back the catalog entry so metadata stays consistent.
		_ = db.cat.DropIndex(def.Table, def.Name())
		return nil, err
	}
	return &Result{}, nil
}

func (db *Database) execDropIndex(s *sql.DropIndex) (*Result, error) {
	td, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	if err := db.cat.DropIndex(td.meta.Name, s.Name); err != nil {
		return nil, err
	}
	if err := td.indexes.Drop(s.Name); err != nil {
		return nil, err
	}
	// Dropping is a metadata operation; charge one catalog page write.
	db.access.Write(1)
	return &Result{}, nil
}

func (db *Database) execDropTable(s *sql.DropTable) (*Result, error) {
	td, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	if err := db.cat.DropTable(td.meta.Name); err != nil {
		return nil, err
	}
	delete(db.tables, strings.ToLower(s.Table))
	db.access.Write(1)
	return &Result{}, nil
}

func (db *Database) execInsert(s *sql.Insert) (*Result, error) {
	td, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := td.meta.Schema
	// Map target columns to schema order.
	order := make([]int, schema.Len())
	if len(s.Columns) == 0 {
		for i := range order {
			order[i] = i
		}
	} else {
		if len(s.Columns) != schema.Len() {
			return nil, fmt.Errorf("engine: INSERT names %d of %d columns", len(s.Columns), schema.Len())
		}
		for i := range order {
			order[i] = -1
		}
		for pos, name := range s.Columns {
			ord := schema.ColumnIndex(name)
			if ord < 0 {
				return nil, fmt.Errorf("engine: unknown column %q", name)
			}
			if order[ord] != -1 {
				return nil, fmt.Errorf("engine: column %q named twice", name)
			}
			order[ord] = pos
		}
	}
	var inserted int64
	for _, given := range s.Rows {
		if len(given) != schema.Len() {
			return nil, fmt.Errorf("engine: row has %d values, table has %d columns", len(given), schema.Len())
		}
		row := make(types.Row, schema.Len())
		for ord := range row {
			row[ord] = given[order[ord]]
		}
		if err := schema.Validate(row); err != nil {
			return nil, err
		}
		payload, err := types.EncodeRow(nil, row)
		if err != nil {
			return nil, err
		}
		rid, err := td.heap.Insert(payload)
		if err != nil {
			return nil, err
		}
		if err := td.indexes.OnInsert(row, rid); err != nil {
			return nil, err
		}
		inserted++
	}
	return &Result{Count: inserted}, nil
}

// Analyze builds statistics for a table, like SQL's ANALYZE/UPDATE
// STATISTICS. The advisor requires analyzed tables.
func (db *Database) Analyze(table string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, err := db.table(table)
	if err != nil {
		return err
	}
	ts, err := stats.Build(td.meta.Name, td.meta.Schema, td.heap, stats.DefaultBuckets)
	if err != nil {
		return err
	}
	td.tstats = ts
	return nil
}

// TableStats returns the statistics of an analyzed table, or nil.
func (db *Database) TableStats(table string) *stats.TableStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, err := db.table(table)
	if err != nil {
		return nil
	}
	return td.tstats
}

// TablePhys builds the physical description of a table for the cost
// model, using actual heap page counts and whatever statistics exist.
func (db *Database) TablePhys(table string) (cost.TablePhys, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, err := db.table(table)
	if err != nil {
		return cost.TablePhys{}, err
	}
	return db.tablePhysLocked(td), nil
}

func (db *Database) tablePhysLocked(td *tableData) cost.TablePhys {
	return cost.TablePhys{
		Name:      td.meta.Name,
		Schema:    td.meta.Schema,
		Rows:      float64(td.heap.NumRows()),
		HeapPages: float64(td.heap.NumPages()),
		Stats:     td.tstats,
	}
}

// indexPhysLocked describes the real indexes of a table.
func (db *Database) indexPhysLocked(td *tableData) []cost.IndexPhys {
	var out []cost.IndexPhys
	for _, ix := range td.indexes.All() {
		keyBytes := 0
		for _, ord := range ix.KeyColumns() {
			kind := td.meta.Schema.Columns[ord].Kind
			if kind == types.KindInt {
				keyBytes += 9
			} else {
				keyBytes += 19
			}
		}
		out = append(out, cost.IndexPhys{
			Def:        ix.Def(),
			KeyCols:    ix.KeyColumns(),
			KeyBytes:   keyBytes,
			Height:     float64(ix.Height()),
			LeafPages:  float64(ix.LeafPages()),
			TotalPages: float64(ix.SizePages()),
		})
	}
	return out
}

// IndexNames returns the canonical names of the materialized indexes on
// a table, sorted.
func (db *Database) IndexNames(table string) ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	td, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return td.indexes.Names(), nil
}

// Explain plans a SELECT and returns the plan without executing it.
func (db *Database) Explain(sqlText string) (*Plan, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("engine: EXPLAIN supports only SELECT, got %T", stmt)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	td, err := db.table(sel.Table)
	if err != nil {
		return nil, err
	}
	return db.planSelectLocked(td, sel)
}

func (db *Database) planSelectLocked(td *tableData, sel *sql.Select) (*Plan, error) {
	t := db.tablePhysLocked(td)
	access, err := cost.ChooseAccess(sel, t, db.indexPhysLocked(td))
	if err != nil {
		return nil, err
	}
	plan := &Plan{Table: td.meta.Name, Access: access}
	consumed := make(map[int]bool, len(access.Consumed))
	for _, ci := range access.Consumed {
		consumed[ci] = true
	}
	if sel.Where != nil {
		for ci, c := range sel.Where.Conjuncts {
			if !consumed[ci] {
				plan.Residual = append(plan.Residual, c)
			}
		}
	}
	return plan, nil
}

// CheckInvariants verifies heap and index consistency for every table:
// each index has exactly one entry per live row, and the trees are
// structurally sound. Tests call this after workloads.
func (db *Database) CheckInvariants() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		td := db.tables[n]
		if err := td.heap.CheckInvariants(); err != nil {
			return err
		}
		for _, ix := range td.indexes.All() {
			if err := ix.CheckInvariants(); err != nil {
				return err
			}
			if ix.Entries() != td.heap.NumRows() {
				return fmt.Errorf("engine: index %s has %d entries, heap has %d rows",
					ix.Def().Name(), ix.Entries(), td.heap.NumRows())
			}
		}
	}
	return nil
}
