package engine

import (
	"fmt"
	"sort"

	"dyndesign/internal/cost"
	"dyndesign/internal/keyenc"
	"dyndesign/internal/sql"
	"dyndesign/internal/storage"
	"dyndesign/internal/types"
)

// compiledPred is a predicate with the column resolved to its ordinal.
type compiledPred struct {
	ord  int
	op   sql.CompareOp
	val  types.Value
	vals []types.Value // sorted IN list (op == sql.OpIn)
}

func compilePreds(schema *types.Schema, preds []sql.Comparison) ([]compiledPred, error) {
	out := make([]compiledPred, len(preds))
	for i, c := range preds {
		ord := schema.ColumnIndex(c.Column)
		if ord < 0 {
			return nil, fmt.Errorf("engine: unknown column %q", c.Column)
		}
		out[i] = compiledPred{ord: ord, op: c.Op, val: c.Value, vals: c.Values}
	}
	return out, nil
}

func (p compiledPred) eval(row types.Row) bool {
	return p.evalValue(row[p.ord])
}

func (p compiledPred) evalValue(v types.Value) bool {
	if p.op == sql.OpIn {
		// The parser sorts IN lists, so membership is a binary search.
		lo, hi := 0, len(p.vals)
		for lo < hi {
			mid := (lo + hi) / 2
			if p.vals[mid].Compare(v) < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(p.vals) && p.vals[lo].Equal(v)
	}
	cmp := v.Compare(p.val)
	switch p.op {
	case sql.OpEq:
		return cmp == 0
	case sql.OpLt:
		return cmp < 0
	case sql.OpLe:
		return cmp <= 0
	case sql.OpGt:
		return cmp > 0
	case sql.OpGe:
		return cmp >= 0
	default:
		return false
	}
}

func evalAll(preds []compiledPred, row types.Row) bool {
	for _, p := range preds {
		if !p.eval(row) {
			return false
		}
	}
	return true
}

// seekBounds builds the encoded key range [low, high) for an index seek
// from the equality prefix and optional range spec.
func seekBounds(a *cost.Access) (low, high []byte, err error) {
	prefix, err := keyenc.Encode(a.EqVals...)
	if err != nil {
		return nil, nil, err
	}
	if a.Range == nil {
		if len(prefix) == 0 {
			return nil, nil, nil
		}
		return prefix, keyenc.PrefixSuccessor(prefix), nil
	}
	r := a.Range
	low = prefix
	if r.Low != nil {
		lowKey, err := keyenc.AppendValue(append([]byte(nil), prefix...), *r.Low)
		if err != nil {
			return nil, nil, err
		}
		if r.LowInclusive {
			low = lowKey
		} else {
			low = keyenc.PrefixSuccessor(lowKey)
		}
	}
	if r.High != nil {
		highKey, err := keyenc.AppendValue(append([]byte(nil), prefix...), *r.High)
		if err != nil {
			return nil, nil, err
		}
		if r.HighInclusive {
			high = keyenc.PrefixSuccessor(highKey)
		} else {
			high = highKey
		}
	} else if len(prefix) > 0 {
		high = keyenc.PrefixSuccessor(prefix)
	}
	if len(low) == 0 {
		low = nil
	}
	return low, high, nil
}

// matchedRow is a row located by an access path, with its RID when the
// heap was (or can be) involved.
type matchedRow struct {
	rid storage.RID
	row types.Row
}

// collectRows runs the access path and returns the matching rows after
// residual filtering. For covering paths the returned rows are sparse:
// only the index key columns are populated; a caller needing all columns
// must use needHeap=true to force heap fetches.
func (db *Database) collectRows(td *tableData, plan *Plan, needHeap bool) ([]matchedRow, error) {
	schema := td.meta.Schema
	residual, err := compilePreds(schema, plan.Residual)
	if err != nil {
		return nil, err
	}
	var out []matchedRow
	var innerErr error

	a := &plan.Access
	switch a.Kind {
	case cost.HeapScan:
		// The decode scratch is reused per row; matching rows are cloned
		// before they are retained.
		var scratch types.Row
		td.heap.Scan(func(rid storage.RID, payload []byte) bool {
			row, err := types.DecodeRowInto(scratch, payload)
			if err != nil {
				innerErr = err
				return false
			}
			scratch = row
			if evalAll(residual, row) {
				out = append(out, matchedRow{rid: rid, row: row.Clone()})
			}
			return true
		})

	case cost.IndexSeek, cost.IndexOnlyScan:
		ix, ok := td.indexes.Get(a.Index.Def.Name())
		if !ok {
			return nil, fmt.Errorf("engine: planned index %s vanished", a.Index.Def.Name())
		}
		// An access path is one key range, except an IN seek, which runs
		// one sub-range per listed value.
		type keyRange struct{ low, high []byte }
		var ranges []keyRange
		switch {
		case a.Kind == cost.IndexSeek && a.In != nil:
			for _, v := range a.In {
				prefix, err := keyenc.Encode(append(append([]types.Value(nil), a.EqVals...), v)...)
				if err != nil {
					return nil, err
				}
				ranges = append(ranges, keyRange{prefix, keyenc.PrefixSuccessor(prefix)})
			}
		case a.Kind == cost.IndexSeek:
			low, high, err := seekBounds(a)
			if err != nil {
				return nil, err
			}
			ranges = append(ranges, keyRange{low, high})
		default:
			ranges = append(ranges, keyRange{nil, nil})
		}
		keyCols := ix.KeyColumns()
		fetch := needHeap || !a.Covering
		if fetch {
			for _, kr := range ranges {
				err = ix.ScanEncodedRange(kr.low, kr.high, func(keyVals []types.Value, rid storage.RID) bool {
					payload, err := td.heap.Get(rid)
					if err != nil {
						innerErr = err
						return false
					}
					row, err := types.DecodeRow(payload)
					if err != nil {
						innerErr = err
						return false
					}
					if evalAll(residual, row) {
						out = append(out, matchedRow{rid: rid, row: row})
					}
					return true
				})
				if err != nil || innerErr != nil {
					break
				}
			}
		} else {
			// Covering path: evaluate residual predicates against the
			// decoded key values directly and materialize a (sparse) row
			// only for matches — index-only scans visit every entry, so
			// this loop must not allocate per entry.
			keyPos := make(map[int]int, len(keyCols))
			for i, ord := range keyCols {
				keyPos[ord] = i
			}
			residualPos := make([]int, len(residual))
			for i, p := range residual {
				pos, ok := keyPos[p.ord]
				if !ok {
					return nil, fmt.Errorf("engine: covering plan has residual on uncovered column")
				}
				residualPos[i] = pos
			}
			for _, kr := range ranges {
				err = ix.ScanEncodedRange(kr.low, kr.high, func(keyVals []types.Value, rid storage.RID) bool {
					for i, p := range residual {
						if !p.evalValue(keyVals[residualPos[i]]) {
							return true
						}
					}
					row := make(types.Row, schema.Len())
					for i, ord := range keyCols {
						row[ord] = keyVals[i]
					}
					out = append(out, matchedRow{rid: rid, row: row})
					return true
				})
				if err != nil || innerErr != nil {
					break
				}
			}
		}
		if err != nil {
			return nil, err
		}

	default:
		return nil, fmt.Errorf("engine: unknown access kind %v", a.Kind)
	}
	if innerErr != nil {
		return nil, innerErr
	}
	return out, nil
}

func (db *Database) execSelect(s *sql.Select) (*Result, error) {
	td, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	plan, err := db.planSelectLocked(td, s)
	if err != nil {
		return nil, err
	}
	matched, err := db.collectRows(td, plan, false)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan}

	if s.CountStar {
		res.Count = int64(len(matched))
		res.Columns = []string{"COUNT(*)"}
		return res, nil
	}
	if s.HasAggregates() {
		return db.execAggregates(td, s, matched, plan)
	}

	schema := td.meta.Schema
	// Resolve the projection.
	var projOrds []int
	if len(s.Columns) == 0 {
		projOrds = make([]int, schema.Len())
		for i := range projOrds {
			projOrds[i] = i
		}
		res.Columns = schema.ColumnNames()
	} else {
		for _, name := range s.Columns {
			ord := schema.ColumnIndex(name)
			if ord < 0 {
				return nil, fmt.Errorf("engine: unknown column %q", name)
			}
			projOrds = append(projOrds, ord)
			res.Columns = append(res.Columns, schema.Columns[ord].Name)
		}
	}

	// Order before projecting so ORDER BY columns need not be projected.
	if s.Order != nil {
		ord := schema.ColumnIndex(s.Order.Column)
		if ord < 0 {
			return nil, fmt.Errorf("engine: unknown column %q", s.Order.Column)
		}
		desc := s.Order.Desc
		sort.SliceStable(matched, func(i, j int) bool {
			c := matched[i].row[ord].Compare(matched[j].row[ord])
			if desc {
				return c > 0
			}
			return c < 0
		})
	}
	// With DISTINCT the limit applies to deduplicated rows, so it is
	// deferred until after projection and dedup.
	if !s.Distinct && s.Limit >= 0 && int64(len(matched)) > s.Limit {
		matched = matched[:s.Limit]
	}

	res.Rows = make([]types.Row, len(matched))
	for i, m := range matched {
		row := make(types.Row, len(projOrds))
		for j, ord := range projOrds {
			row[j] = m.row[ord]
		}
		res.Rows[i] = row
	}
	if s.Distinct {
		// Deduplicate projected rows, keeping first occurrences (which
		// preserves any ORDER BY ordering).
		seen := make(map[string]struct{}, len(res.Rows))
		kept := res.Rows[:0]
		for _, row := range res.Rows {
			key, err := keyenc.Encode(row...)
			if err != nil {
				return nil, err
			}
			if _, dup := seen[string(key)]; dup {
				continue
			}
			seen[string(key)] = struct{}{}
			kept = append(kept, row)
		}
		res.Rows = kept
		if s.Limit >= 0 && int64(len(res.Rows)) > s.Limit {
			res.Rows = res.Rows[:s.Limit]
		}
	}
	res.Count = int64(len(res.Rows))
	return res, nil
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count    int64
	sum      int64
	min, max types.Value
	seen     bool
}

func (a *aggState) add(v types.Value) {
	a.count++
	if v.Kind == types.KindInt {
		a.sum += v.Int
	}
	if !a.seen {
		a.min, a.max, a.seen = v, v, true
		return
	}
	if v.Compare(a.min) < 0 {
		a.min = v
	}
	if v.Compare(a.max) > 0 {
		a.max = v
	}
}

// result renders the accumulator for one aggregate function. Aggregates
// over an empty group yield COUNT 0 and integer 0 otherwise (the dialect
// has no NULL); grouped queries never produce empty groups.
func (a *aggState) result(fn sql.AggFunc) types.Value {
	switch fn {
	case sql.AggCount:
		return types.NewInt(a.count)
	case sql.AggMin:
		if !a.seen {
			return types.NewInt(0)
		}
		return a.min
	case sql.AggMax:
		if !a.seen {
			return types.NewInt(0)
		}
		return a.max
	case sql.AggSum:
		return types.NewInt(a.sum)
	default: // AggAvg: integer average, truncating
		if a.count == 0 {
			return types.NewInt(0)
		}
		return types.NewInt(a.sum / a.count)
	}
}

// execAggregates evaluates an aggregate select list (with optional
// GROUP BY) over the matched rows.
func (db *Database) execAggregates(td *tableData, s *sql.Select, matched []matchedRow, plan *Plan) (*Result, error) {
	schema := td.meta.Schema
	groupOrd := -1
	if s.GroupBy != "" {
		groupOrd = schema.ColumnIndex(s.GroupBy)
		if groupOrd < 0 {
			return nil, fmt.Errorf("engine: unknown column %q", s.GroupBy)
		}
	}
	// Resolve aggregate input ordinals in Items order (-1 = COUNT(*)).
	type aggItem struct {
		fn  sql.AggFunc
		ord int
	}
	var aggs []aggItem
	for _, it := range s.Items {
		if !it.IsAgg {
			continue
		}
		ord := -1
		if it.Agg.Column != "" {
			ord = schema.ColumnIndex(it.Agg.Column)
			if ord < 0 {
				return nil, fmt.Errorf("engine: unknown column %q", it.Agg.Column)
			}
		}
		aggs = append(aggs, aggItem{fn: it.Agg.Func, ord: ord})
	}

	type group struct {
		key    types.Value
		states []aggState
	}
	groups := make(map[types.Value]*group)
	var order []*group
	singleKey := types.NewInt(0) // the one group of an ungrouped query
	for _, m := range matched {
		key := singleKey
		if groupOrd >= 0 {
			key = m.row[groupOrd]
		}
		g, ok := groups[key]
		if !ok {
			g = &group{key: key, states: make([]aggState, len(aggs))}
			groups[key] = g
			order = append(order, g)
		}
		for i, a := range aggs {
			if a.ord < 0 {
				g.states[i].count++
				continue
			}
			g.states[i].add(m.row[a.ord])
		}
	}
	if groupOrd < 0 && len(order) == 0 {
		// Aggregates over an empty, ungrouped input yield one row.
		order = append(order, &group{key: singleKey, states: make([]aggState, len(aggs))})
	}

	// Deterministic group order: by key, honouring ORDER BY direction
	// (validated to be the group column).
	desc := s.Order != nil && s.Order.Desc
	sort.SliceStable(order, func(i, j int) bool {
		c := order[i].key.Compare(order[j].key)
		if desc {
			return c > 0
		}
		return c < 0
	})
	if s.Limit >= 0 && int64(len(order)) > s.Limit {
		order = order[:s.Limit]
	}

	res := &Result{Plan: plan}
	for _, it := range s.Items {
		res.Columns = append(res.Columns, it.String())
	}
	for _, g := range order {
		row := make(types.Row, 0, len(s.Items))
		ai := 0
		for _, it := range s.Items {
			if it.IsAgg {
				row = append(row, g.states[ai].result(it.Agg.Func))
				ai++
			} else {
				row = append(row, g.key)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.Count = int64(len(res.Rows))
	return res, nil
}

func (db *Database) execUpdate(s *sql.Update) (*Result, error) {
	td, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := td.meta.Schema
	// Validate assignments.
	type setOp struct {
		ord int
		val types.Value
	}
	sets := make([]setOp, len(s.Set))
	for i, a := range s.Set {
		ord := schema.ColumnIndex(a.Column)
		if ord < 0 {
			return nil, fmt.Errorf("engine: unknown column %q", a.Column)
		}
		if schema.Columns[ord].Kind != a.Value.Kind {
			return nil, fmt.Errorf("engine: SET %s expects %s, got %s",
				a.Column, schema.Columns[ord].Kind, a.Value.Kind)
		}
		sets[i] = setOp{ord: ord, val: a.Value}
	}
	probe := &sql.Select{Table: s.Table, Where: s.Where, Limit: -1}
	plan, err := db.planSelectLocked(td, probe)
	if err != nil {
		return nil, err
	}
	// Materialize matches with full rows before mutating anything.
	matched, err := db.collectRows(td, plan, true)
	if err != nil {
		return nil, err
	}
	for _, m := range matched {
		newRow := m.row.Clone()
		for _, op := range sets {
			newRow[op.ord] = op.val
		}
		payload, err := types.EncodeRow(nil, newRow)
		if err != nil {
			return nil, err
		}
		newRID, err := td.heap.Update(m.rid, payload)
		if err != nil {
			return nil, err
		}
		if err := td.indexes.OnUpdate(m.row, m.rid, newRow, newRID); err != nil {
			return nil, err
		}
	}
	return &Result{Count: int64(len(matched)), Plan: plan}, nil
}

func (db *Database) execDelete(s *sql.Delete) (*Result, error) {
	td, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	probe := &sql.Select{Table: s.Table, Where: s.Where, Limit: -1}
	plan, err := db.planSelectLocked(td, probe)
	if err != nil {
		return nil, err
	}
	matched, err := db.collectRows(td, plan, true)
	if err != nil {
		return nil, err
	}
	for _, m := range matched {
		if err := td.heap.Delete(m.rid); err != nil {
			return nil, err
		}
		if err := td.indexes.OnDelete(m.row, m.rid); err != nil {
			return nil, err
		}
	}
	return &Result{Count: int64(len(matched)), Plan: plan}, nil
}
