package engine

import (
	"fmt"
	"testing"

	"dyndesign/internal/cost"
)

func TestInPredicateHeapScan(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, s STRING)")
	for i := 0; i < 100; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 's%d')", i%10, i))
	}
	res := db.MustExec("SELECT a FROM t WHERE a IN (2, 5, 7)")
	if len(res.Rows) != 30 {
		t.Fatalf("IN returned %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		v := r[0].Int
		if v != 2 && v != 5 && v != 7 {
			t.Errorf("row %v outside the IN list", r)
		}
	}
	// String IN.
	res = db.MustExec("SELECT s FROM t WHERE s IN ('s3', 's44', 'missing')")
	if len(res.Rows) != 2 {
		t.Errorf("string IN returned %d rows", len(res.Rows))
	}
	// Duplicates in the list are harmless.
	res = db.MustExec("SELECT a FROM t WHERE a IN (2, 2, 2)")
	if len(res.Rows) != 10 {
		t.Errorf("duplicate IN returned %d rows", len(res.Rows))
	}
}

func TestInPredicateUsesIndexSeek(t *testing.T) {
	db := newTestDB(t, 20000, 1000)
	db.MustExec("CREATE INDEX ON t (a)")
	plan, err := db.Explain("SELECT a FROM t WHERE a IN (3, 500, 997)")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access.Kind != cost.IndexSeek || len(plan.Access.In) != 3 {
		t.Fatalf("plan = %v", plan)
	}
	if len(plan.Residual) != 0 {
		t.Errorf("residual = %v", plan.Residual)
	}
	res := db.MustExec("SELECT a FROM t WHERE a IN (3, 500, 997)")
	want := db.MustExec("SELECT COUNT(*) FROM t WHERE a IN (3, 500, 997)")
	if int64(len(res.Rows)) != want.Count {
		t.Errorf("IN seek returned %d rows, count says %d", len(res.Rows), want.Count)
	}
	// The seek must be far cheaper than a scan.
	db.AccessStats().Reset()
	db.MustExec("SELECT a FROM t WHERE a IN (3, 500, 997)")
	seekPages := db.AccessStats().Total()
	db.AccessStats().Reset()
	db.MustExec("SELECT b FROM t WHERE b IN (3, 500, 997)") // no index on b
	scanPages := db.AccessStats().Total()
	if seekPages*5 > scanPages {
		t.Errorf("IN seek cost %d not well below scan cost %d", seekPages, scanPages)
	}
}

func TestInAfterEqPrefix(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	for a := 0; a < 100; a++ {
		for b := 0; b < 200; b++ {
			db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", a, b))
		}
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE INDEX ON t (a, b)")
	plan, _ := db.Explain("SELECT a, b FROM t WHERE a = 3 AND b IN (10, 20, 30)")
	if plan.Access.Kind != cost.IndexSeek || len(plan.Access.EqVals) != 1 || len(plan.Access.In) != 3 {
		t.Fatalf("plan = %v", plan)
	}
	res := db.MustExec("SELECT a, b FROM t WHERE a = 3 AND b IN (10, 20, 30)")
	if len(res.Rows) != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestInErrors(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	if _, err := db.Exec("SELECT a FROM t WHERE a IN ()"); err == nil {
		t.Error("empty IN accepted")
	}
	if _, err := db.Exec("SELECT a FROM t WHERE a IN (1, 'x')"); err == nil {
		t.Error("mixed-kind IN accepted")
	}
	if _, err := db.Exec("SELECT a FROM t WHERE a IN ('x')"); err == nil {
		t.Error("kind-mismatched IN accepted")
	}
}

func TestDistinct(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	for i := 0; i < 40; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i%4, i%2))
	}
	res := db.MustExec("SELECT DISTINCT a FROM t ORDER BY a")
	if len(res.Rows) != 4 {
		t.Fatalf("distinct a = %v", res.Rows)
	}
	for i, r := range res.Rows {
		if r[0].Int != int64(i) {
			t.Errorf("row %d = %v", i, r)
		}
	}
	// Multi-column distinct.
	res = db.MustExec("SELECT DISTINCT a, b FROM t")
	if len(res.Rows) != 4 { // (0,0),(1,1),(2,0),(3,1)
		t.Errorf("distinct (a,b) = %v", res.Rows)
	}
	// Distinct with limit counts distinct rows.
	res = db.MustExec("SELECT DISTINCT a FROM t ORDER BY a LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[1][0].Int != 1 {
		t.Errorf("distinct limit = %v", res.Rows)
	}
	// Distinct star.
	res = db.MustExec("SELECT DISTINCT * FROM t")
	if len(res.Rows) != 4 {
		t.Errorf("distinct * = %v", res.Rows)
	}
}

func TestInResidualOnNonIndexColumn(t *testing.T) {
	db := newTestDB(t, 20000, 1000)
	db.MustExec("CREATE INDEX ON t (a)")
	// IN on b is residual; the seek is on a.
	plan, _ := db.Explain("SELECT a, b FROM t WHERE a = 5 AND b IN (1, 2, 3)")
	if plan.Access.Kind != cost.IndexSeek || len(plan.Residual) != 1 {
		t.Fatalf("plan = %v", plan)
	}
	res := db.MustExec("SELECT a, b FROM t WHERE a = 5 AND b IN (1, 2, 3)")
	for _, r := range res.Rows {
		if r[0].Int != 5 || r[1].Int > 3 || r[1].Int < 1 {
			t.Errorf("row %v violates predicates", r)
		}
	}
	// Result equals the heap-scan answer.
	want := db.MustExec("SELECT COUNT(*) FROM t WHERE a = 5 AND b IN (1, 2, 3)")
	if int64(len(res.Rows)) != want.Count {
		t.Errorf("got %d rows, count says %d", len(res.Rows), want.Count)
	}
}
