package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"dyndesign/internal/cost"
	"dyndesign/internal/types"
)

// newTestDB builds the paper's table shape at a small scale: columns
// a,b,c,d with uniform values in [0, domain).
func newTestDB(t testing.TB, rows, domain int) *Database {
	t.Helper()
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b INT, c INT, d INT)")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < rows; i++ {
		q := fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %d, %d)",
			rng.Intn(domain), rng.Intn(domain), rng.Intn(domain), rng.Intn(domain))
		db.MustExec(q)
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateTableAndInsertSelect(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, s STRING)")
	r := db.MustExec("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
	if r.Count != 3 {
		t.Errorf("insert count = %d", r.Count)
	}
	res := db.MustExec("SELECT * FROM t ORDER BY a")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int != 1 || res.Rows[0][1].Str != "x" {
		t.Errorf("row 0 = %v", res.Rows[0])
	}
	if res.Columns[0] != "a" || res.Columns[1] != "s" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestInsertWithColumnOrder(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, s STRING)")
	db.MustExec("INSERT INTO t (s, a) VALUES ('x', 7)")
	res := db.MustExec("SELECT a, s FROM t")
	if res.Rows[0][0].Int != 7 || res.Rows[0][1].Str != "x" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestInsertErrors(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, s STRING)")
	for _, q := range []string{
		"INSERT INTO missing VALUES (1, 'x')",
		"INSERT INTO t VALUES (1)",               // arity
		"INSERT INTO t VALUES ('x', 'y')",        // kind mismatch
		"INSERT INTO t (a) VALUES (1)",           // partial column list
		"INSERT INTO t (a, a) VALUES (1, 2)",     // repeated column
		"INSERT INTO t (a, zzz) VALUES (1, 'x')", // unknown column
	} {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("%q succeeded", q)
		}
	}
}

func TestSelectFilterCorrectness(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	for i := 0; i < 100; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i%10))
	}
	res := db.MustExec("SELECT a FROM t WHERE b = 3 AND a < 50")
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[0].Int%10 != 3 || r[0].Int >= 50 {
			t.Errorf("row %v does not satisfy predicate", r)
		}
	}
}

func TestSelectCountStar(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	for i := 0; i < 40; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i%4))
	}
	res := db.MustExec("SELECT COUNT(*) FROM t WHERE b = 1")
	if res.Count != 10 {
		t.Errorf("count = %d", res.Count)
	}
	res = db.MustExec("SELECT COUNT(*) FROM t")
	if res.Count != 40 {
		t.Errorf("count = %d", res.Count)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	for _, v := range []int{5, 3, 9, 1, 7} {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 0)", v))
	}
	res := db.MustExec("SELECT a FROM t ORDER BY a")
	want := []int64{1, 3, 5, 7, 9}
	for i, r := range res.Rows {
		if r[0].Int != want[i] {
			t.Errorf("asc position %d = %d", i, r[0].Int)
		}
	}
	res = db.MustExec("SELECT a FROM t ORDER BY a DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].Int != 9 || res.Rows[1][0].Int != 7 {
		t.Errorf("desc limit = %v", res.Rows)
	}
	// ORDER BY a column that is not projected.
	res = db.MustExec("SELECT b FROM t ORDER BY a LIMIT 1")
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestIndexSeekPlanAndResults(t *testing.T) {
	db := newTestDB(t, 2000, 100)
	// Without an index: heap scan.
	plan, err := db.Explain("SELECT a FROM t WHERE a = 42")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access.Kind != cost.HeapScan {
		t.Errorf("pre-index plan = %v", plan)
	}
	baseline := db.MustExec("SELECT a FROM t WHERE a = 42")

	db.MustExec("CREATE INDEX ON t (a)")
	plan, err = db.Explain("SELECT a FROM t WHERE a = 42")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access.Kind != cost.IndexSeek || plan.Access.Index.Def.Name() != "I(a)" {
		t.Errorf("post-index plan = %v", plan)
	}
	if !plan.Access.Covering {
		t.Error("seek on I(a) projecting a should be covering")
	}
	indexed := db.MustExec("SELECT a FROM t WHERE a = 42")
	if len(indexed.Rows) != len(baseline.Rows) {
		t.Errorf("index seek returned %d rows, scan %d", len(indexed.Rows), len(baseline.Rows))
	}
}

func TestIndexSeekNonCoveringFetchesHeap(t *testing.T) {
	db := newTestDB(t, 20000, 1000)
	db.MustExec("CREATE INDEX ON t (a)")
	plan, _ := db.Explain("SELECT b FROM t WHERE a = 7")
	if plan.Access.Kind != cost.IndexSeek || plan.Access.Covering {
		t.Errorf("plan = %v", plan)
	}
	res := db.MustExec("SELECT b FROM t WHERE a = 7")
	check := db.MustExec("SELECT COUNT(*) FROM t WHERE a = 7")
	if int64(len(res.Rows)) != check.Count {
		t.Errorf("non-covering seek returned %d rows, count says %d", len(res.Rows), check.Count)
	}
}

func TestIndexOnlyScanChosenForNonLeadingColumn(t *testing.T) {
	db := newTestDB(t, 5000, 200)
	db.MustExec("CREATE INDEX ON t (a, b)")
	// Query on b: no seek possible, but I(a,b) covers {b}, and scanning
	// its leaves beats scanning the wider heap.
	plan, err := db.Explain("SELECT b FROM t WHERE b = 10")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access.Kind != cost.IndexOnlyScan {
		t.Errorf("plan = %v, want IndexOnlyScan", plan)
	}
	res := db.MustExec("SELECT b FROM t WHERE b = 10")
	for _, r := range res.Rows {
		if r[0].Int != 10 {
			t.Errorf("index-only scan returned %v", r)
		}
	}
}

func TestRangePredicateUsesIndex(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	for i := 0; i < 1000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i*2))
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE INDEX ON t (a)")
	plan, _ := db.Explain("SELECT a FROM t WHERE a >= 100 AND a < 110")
	if plan.Access.Kind != cost.IndexSeek || plan.Access.Range == nil {
		t.Fatalf("plan = %v, want range IndexSeek", plan)
	}
	res := db.MustExec("SELECT a FROM t WHERE a >= 100 AND a < 110")
	if len(res.Rows) != 10 {
		t.Errorf("range returned %d rows", len(res.Rows))
	}
	res = db.MustExec("SELECT a FROM t WHERE a > 100 AND a <= 110")
	if len(res.Rows) != 10 {
		t.Errorf("exclusive/inclusive range returned %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[0].Int <= 100 || r[0].Int > 110 {
			t.Errorf("row %v outside (100,110]", r)
		}
	}
	res = db.MustExec("SELECT a FROM t WHERE a BETWEEN 5 AND 7")
	if len(res.Rows) != 3 {
		t.Errorf("BETWEEN returned %d rows", len(res.Rows))
	}
}

func TestCompositeSeekEqPlusRange(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	for a := 0; a < 20; a++ {
		for b := 0; b < 50; b++ {
			db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", a, b))
		}
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE INDEX ON t (a, b)")
	plan, _ := db.Explain("SELECT a, b FROM t WHERE a = 3 AND b >= 10 AND b < 20")
	if plan.Access.Kind != cost.IndexSeek || len(plan.Access.EqVals) != 1 || plan.Access.Range == nil {
		t.Fatalf("plan = %v", plan)
	}
	if len(plan.Residual) != 0 {
		t.Errorf("unexpected residual %v", plan.Residual)
	}
	res := db.MustExec("SELECT a, b FROM t WHERE a = 3 AND b >= 10 AND b < 20")
	if len(res.Rows) != 10 {
		t.Errorf("got %d rows", len(res.Rows))
	}
}

func TestEquivalenceAcrossAccessPaths(t *testing.T) {
	// The same queries must return identical result sets before and
	// after adding indexes — the planner changes access paths, never
	// semantics.
	db := newTestDB(t, 3000, 50)
	queries := []string{
		"SELECT a FROM t WHERE a = 10",
		"SELECT b FROM t WHERE b = 25",
		"SELECT a, b FROM t WHERE a = 10 AND b = 25",
		"SELECT c FROM t WHERE c >= 40 AND c < 45",
		"SELECT COUNT(*) FROM t WHERE d = 5",
		"SELECT a FROM t WHERE a = 10 AND c = 3",
		"SELECT * FROM t WHERE a = 10 ORDER BY b LIMIT 4",
	}
	baseline := make([]*Result, len(queries))
	for i, q := range queries {
		baseline[i] = db.MustExec(q)
	}
	for _, ddl := range []string{
		"CREATE INDEX ON t (a)",
		"CREATE INDEX ON t (a, b)",
		"CREATE INDEX ON t (c)",
		"CREATE INDEX ON t (c, d)",
	} {
		db.MustExec(ddl)
		for i, q := range queries {
			got := db.MustExec(q)
			if got.Count != baseline[i].Count || len(got.Rows) != len(baseline[i].Rows) {
				t.Fatalf("after %q, query %q: %d rows vs baseline %d",
					ddl, q, len(got.Rows), len(baseline[i].Rows))
			}
			// Compare as multisets via sorted render.
			if renderRows(got.Rows) != renderRows(baseline[i].Rows) {
				t.Fatalf("after %q, query %q changed results", ddl, q)
			}
		}
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func renderRows(rows []types.Row) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = r.String()
	}
	// Order-insensitive comparison: sort the rendered lines.
	for i := 1; i < len(lines); i++ {
		for j := i; j > 0 && lines[j] < lines[j-1]; j-- {
			lines[j], lines[j-1] = lines[j-1], lines[j]
		}
	}
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	db := newTestDB(t, 500, 20)
	db.MustExec("CREATE INDEX ON t (a)")
	before := db.MustExec("SELECT COUNT(*) FROM t WHERE a = 5").Count
	moved := db.MustExec("UPDATE t SET a = 5 WHERE a = 7")
	after := db.MustExec("SELECT COUNT(*) FROM t WHERE a = 5").Count
	if after != before+moved.Count {
		t.Errorf("a=5 count %d -> %d after moving %d rows", before, after, moved.Count)
	}
	if db.MustExec("SELECT COUNT(*) FROM t WHERE a = 7").Count != 0 {
		t.Error("rows with a=7 remain after update")
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	db := newTestDB(t, 500, 20)
	db.MustExec("CREATE INDEX ON t (b)")
	total := db.MustExec("SELECT COUNT(*) FROM t").Count
	gone := db.MustExec("DELETE FROM t WHERE b = 3")
	if db.MustExec("SELECT COUNT(*) FROM t WHERE b = 3").Count != 0 {
		t.Error("rows with b=3 remain")
	}
	if db.MustExec("SELECT COUNT(*) FROM t").Count != total-gone.Count {
		t.Error("total count wrong after delete")
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDropIndexRevertsPlans(t *testing.T) {
	db := newTestDB(t, 1000, 50)
	db.MustExec("CREATE INDEX ON t (a)")
	plan, _ := db.Explain("SELECT a FROM t WHERE a = 1")
	if plan.Access.Kind == cost.HeapScan {
		t.Fatal("index not used")
	}
	db.MustExec("DROP INDEX I(a) ON t")
	plan, _ = db.Explain("SELECT a FROM t WHERE a = 1")
	if plan.Access.Kind != cost.HeapScan {
		t.Errorf("plan after drop = %v", plan)
	}
	names, _ := db.IndexNames("t")
	if len(names) != 0 {
		t.Errorf("IndexNames = %v", names)
	}
}

func TestCreateIndexErrors(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	if _, err := db.Exec("CREATE INDEX ON missing (a)"); err == nil {
		t.Error("index on missing table created")
	}
	if _, err := db.Exec("CREATE INDEX ON t (zzz)"); err == nil {
		t.Error("index on missing column created")
	}
	db.MustExec("CREATE INDEX ON t (a)")
	if _, err := db.Exec("CREATE INDEX ON t (a)"); err == nil {
		t.Error("duplicate index created")
	}
	if _, err := db.Exec("DROP INDEX I(zzz) ON t"); err == nil {
		t.Error("drop of missing index succeeded")
	}
}

func TestSeekChargesFewerPagesThanScan(t *testing.T) {
	db := newTestDB(t, 20000, 500)
	stats := db.AccessStats()

	stats.Reset()
	db.MustExec("SELECT a FROM t WHERE a = 42")
	scanCost := stats.Total()

	db.MustExec("CREATE INDEX ON t (a)")
	stats.Reset()
	db.MustExec("SELECT a FROM t WHERE a = 42")
	seekCost := stats.Total()

	if seekCost*10 > scanCost {
		t.Errorf("seek cost %d not ≪ scan cost %d", seekCost, scanCost)
	}
}

func TestIndexOnlyScanCheaperThanHeapScan(t *testing.T) {
	db := newTestDB(t, 20000, 500)
	stats := db.AccessStats()

	stats.Reset()
	db.MustExec("SELECT b FROM t WHERE b = 42")
	heapCost := stats.Total()

	db.MustExec("CREATE INDEX ON t (a, b)")
	stats.Reset()
	db.MustExec("SELECT b FROM t WHERE b = 42")
	idxCost := stats.Total()

	if idxCost >= heapCost {
		t.Errorf("index-only scan cost %d >= heap scan cost %d", idxCost, heapCost)
	}
}

func TestPlannerCostMatchesMeasuredCost(t *testing.T) {
	// The planner's page estimate and the measured page accesses must
	// agree within a small factor — this is the property that makes
	// what-if advisor estimates trustworthy.
	db := newTestDB(t, 20000, 500)
	db.MustExec("CREATE INDEX ON t (a)")
	db.MustExec("CREATE INDEX ON t (c, d)")
	queries := []string{
		"SELECT a FROM t WHERE a = 100",
		"SELECT b FROM t WHERE b = 100",
		"SELECT c FROM t WHERE c = 9",
		"SELECT d FROM t WHERE d = 250",
	}
	for _, q := range queries {
		plan, err := db.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		db.AccessStats().Reset()
		db.MustExec(q)
		measured := float64(db.AccessStats().Total())
		est := plan.Access.PageCost
		if est < measured/3 || est > measured*3 {
			t.Errorf("%q: estimated %.1f pages, measured %.0f (plan %v)", q, est, measured, plan)
		}
	}
}

func TestExplainErrors(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	if _, err := db.Explain("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("EXPLAIN INSERT succeeded")
	}
	if _, err := db.Explain("SELECT * FROM missing"); err == nil {
		t.Error("EXPLAIN on missing table succeeded")
	}
	if _, err := db.Explain("SELECT zzz FROM t"); err == nil {
		t.Error("EXPLAIN with unknown column succeeded")
	}
	if _, err := db.Explain("SELECT a FROM t WHERE a = 'str'"); err == nil {
		t.Error("EXPLAIN with kind mismatch succeeded")
	}
}

func TestPlanString(t *testing.T) {
	db := newTestDB(t, 100, 10)
	db.MustExec("CREATE INDEX ON t (a)")
	plan, _ := db.Explain("SELECT a FROM t WHERE a = 1 AND b = 2")
	s := plan.String()
	if s == "" {
		t.Error("empty plan string")
	}
	// Residual on b must appear in the explain line.
	if plan.Residual == nil {
		t.Error("expected residual filter on b")
	}
}

func TestUpdateMovedRowStillIndexed(t *testing.T) {
	// Growing a row can move it to a new RID; indexes must follow.
	db := New()
	db.MustExec("CREATE TABLE t (a INT, s STRING)")
	for i := 0; i < 200; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'x')", i))
	}
	db.MustExec("CREATE INDEX ON t (a)")
	big := make([]byte, 500)
	for i := range big {
		big[i] = 'q'
	}
	db.MustExec(fmt.Sprintf("UPDATE t SET s = '%s' WHERE a = 50", string(big)))
	res := db.MustExec("SELECT s FROM t WHERE a = 50")
	if len(res.Rows) != 1 || len(res.Rows[0][0].Str) != 500 {
		t.Fatalf("moved row not found via index: %v rows", len(res.Rows))
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExplainStatement(t *testing.T) {
	db := newTestDB(t, 2000, 100)
	db.MustExec("CREATE INDEX ON t (a)")
	res := db.MustExec("EXPLAIN SELECT a FROM t WHERE a = 3")
	if len(res.Rows) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("explain result = %+v", res)
	}
	text := res.Rows[0][0].Str
	if !strings.Contains(text, "IndexSeek") {
		t.Errorf("explain text = %q", text)
	}
	if res.Plan == nil || res.Plan.Access.Kind != cost.IndexSeek {
		t.Errorf("plan = %v", res.Plan)
	}
	// EXPLAIN must not execute: page counter unchanged beyond planning.
	if _, err := db.Exec("EXPLAIN INSERT INTO t VALUES (1,2,3,4)"); err == nil {
		t.Error("EXPLAIN INSERT accepted")
	}
	if _, err := db.Exec("EXPLAIN SELECT zzz FROM t"); err == nil {
		t.Error("EXPLAIN of invalid query accepted")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	// The Database serializes statements internally; concurrent use from
	// many goroutines must be safe (run with -race).
	db := newTestDB(t, 2000, 100)
	db.MustExec("CREATE INDEX ON t (a)")
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 4 {
				case 0:
					if _, err := db.Exec(fmt.Sprintf("SELECT a FROM t WHERE a = %d", i%100)); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %d, %d)", g, i, g, i)); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := db.Exec(fmt.Sprintf("UPDATE t SET b = %d WHERE a = %d", i, g)); err != nil {
						errs <- err
						return
					}
				default:
					if _, err := db.Exec("SELECT COUNT(*) FROM t"); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExecScript(t *testing.T) {
	db := New()
	script := `
-- schema
CREATE TABLE t (a INT, s STRING);

INSERT INTO t VALUES
 (1, 'one'),
 (2, 'two');
INSERT INTO t VALUES (3, 'three') -- trailing comment
`
	if err := db.ExecScript(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	if got := db.MustExec("SELECT COUNT(*) FROM t").Count; got != 3 {
		t.Errorf("rows = %d", got)
	}
	// Errors carry the line number.
	err := db.ExecScript(strings.NewReader("SELECT 1;\nNOT SQL;"))
	if err == nil || !strings.Contains(err.Error(), "line") {
		t.Errorf("script error = %v", err)
	}
}

func TestDropTable(t *testing.T) {
	db := New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1)")
	db.MustExec("CREATE INDEX ON t (a)")
	db.MustExec("DROP TABLE t")
	if _, err := db.Exec("SELECT * FROM t"); err == nil {
		t.Error("dropped table still queryable")
	}
	if _, err := db.Exec("DROP TABLE t"); err == nil {
		t.Error("double drop accepted")
	}
	// The name is reusable with a fresh schema.
	db.MustExec("CREATE TABLE t (x STRING)")
	db.MustExec("INSERT INTO t VALUES ('hi')")
	if got := db.MustExec("SELECT COUNT(*) FROM t").Count; got != 1 {
		t.Errorf("recreated table rows = %d", got)
	}
	if names, _ := db.IndexNames("t"); len(names) != 0 {
		t.Errorf("old indexes leaked onto recreated table: %v", names)
	}
}
