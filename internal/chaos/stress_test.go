package chaos

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dyndesign/internal/core"
)

// solveDeadline is the per-solve watchdog: a resilient solve that has
// not returned by then counts as a hang, which is exactly what the
// supervisor promises can never happen.
const solveDeadline = 30 * time.Second

// stressSeeds is how many seeded chaos solves the suite runs. Seeds
// cycle through every strategy as the ladder's primary rung and
// through budget/timeout/persistent-fault variations.
const stressSeeds = 126

// TestResilientSolveUnderChaos is the supervisor's acceptance test:
// across stressSeeds seeded fault patterns — evaluation errors, panics,
// latency spikes; one-shot and persistent; with and without budgets and
// rung deadlines — every SolveResilient call must return a feasible
// solution or a typed error within the watchdog deadline. Run under
// -race (make chaos) this also proves the recovery paths are data-race
// free.
func TestResilientSolveUnderChaos(t *testing.T) {
	strategies := core.Strategies()
	var degradations, recoveredPanics, fallbacks, failures atomic.Int64

	for seed := 0; seed < stressSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			opts := Options{
				Seed:        int64(seed),
				ErrorRate:   0.02 + 0.08*float64(seed%5)/4,
				PanicRate:   0.01 + 0.04*float64(seed%3)/2,
				LatencyRate: 0.01,
				Latency:     200 * time.Microsecond,
				Persistent:  seed%7 == 0,
			}
			model := Wrap(cleanModel{}, opts)
			configs, err := core.EnumerateConfigs(4, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			p := &core.Problem{
				Stages: 10, Configs: configs, Initial: 0, K: 2,
				Model: model, Metrics: &core.Metrics{},
			}
			// The last-known-good design never leaves the initial
			// configuration: feasible under every policy and bound here.
			clean := *p
			clean.Model = cleanModel{}
			lkg := clean.NewSolution(make([]core.Config, p.Stages))

			ropts := core.ResilientOptions{
				Ladder:        core.DefaultLadder(strategies[seed%len(strategies)]),
				LastKnownGood: lkg,
			}
			if seed%3 == 0 {
				ropts.MaxWhatIfCalls = 50
			}
			if seed%5 == 0 {
				ropts.RungTimeout = 5 * time.Millisecond
			}

			type outcome struct {
				res *core.ResilientResult
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				res, err := core.SolveResilient(context.Background(), p, ropts)
				done <- outcome{res, err}
			}()
			var out outcome
			select {
			case out = <-done:
			case <-time.After(solveDeadline):
				t.Fatalf("seed %d: resilient solve hung past %v", seed, solveDeadline)
			}

			if out.err != nil {
				// Typed failure: the result must still carry rung
				// diagnostics and no solution.
				failures.Add(1)
				if out.res == nil || len(out.res.Reports) == 0 {
					t.Fatalf("seed %d: failure without rung reports: %v", seed, out.err)
				}
				if out.res.Solution != nil {
					t.Fatalf("seed %d: error return carried a solution", seed)
				}
				for _, r := range out.res.Reports {
					if r.Class == "" || r.Err == nil {
						t.Fatalf("seed %d: failed rung report unclassified: %+v", seed, r)
					}
				}
				return
			}
			// Success: the design must be feasible for the problem,
			// judged under the clean model (the chaos wrapper only
			// perturbs costs transiently, not the design space).
			if out.res.Solution == nil || out.res.Rung == "" {
				t.Fatalf("seed %d: success without solution/rung: %+v", seed, out.res)
			}
			if err := clean.CheckSolution(clean.NewSolution(out.res.Solution.Designs)); err != nil {
				t.Fatalf("seed %d: rung %s returned infeasible design: %v", seed, out.res.Rung, err)
			}
			if out.res.Degraded && out.res.Rung == ropts.Ladder[0] {
				t.Fatalf("seed %d: degraded but answered by first rung", seed)
			}
			if out.res.Rung == core.RungLastKnownGood {
				fallbacks.Add(1)
			}
			degradations.Add(p.Metrics.Degradations())
			recoveredPanics.Add(p.Metrics.RecoveredPanics())
		})
	}

	t.Cleanup(func() {
		t.Logf("chaos stress: %d degradations, %d recovered panics, %d last-known-good fallbacks, %d typed failures",
			degradations.Load(), recoveredPanics.Load(), fallbacks.Load(), failures.Load())
		// The suite must actually have exercised the recovery machinery:
		// a chaos run where nothing ever degraded or panicked proves
		// nothing.
		if degradations.Load() == 0 {
			t.Error("no solve ever degraded — injection rates too low to test the ladder")
		}
		if recoveredPanics.Load() == 0 {
			t.Error("no panic was ever recovered — injection rates too low to test recovery")
		}
	})
}
