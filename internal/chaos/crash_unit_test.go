package chaos

import (
	"strings"
	"testing"
)

func TestParseCrashSpec(t *testing.T) {
	for _, tc := range []struct {
		spec string
		site string
		n    int64
		bad  bool
	}{
		{spec: "wal.append.mid", site: "wal.append.mid", n: 1},
		{spec: "wal.append.mid:17", site: "wal.append.mid", n: 17},
		{spec: "snapshot.rename:1", site: "snapshot.rename", n: 1},
		{spec: ":3", bad: true},
		{spec: "site:", bad: true},
		{spec: "site:0", bad: true},
		{spec: "site:-2", bad: true},
		{spec: "site:x", bad: true},
	} {
		site, n, err := parseCrashSpec(tc.spec)
		if tc.bad {
			if err == nil {
				t.Errorf("parseCrashSpec(%q): expected error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseCrashSpec(%q): %v", tc.spec, err)
			continue
		}
		if site != tc.site || n != tc.n {
			t.Errorf("parseCrashSpec(%q) = (%q, %d), want (%q, %d)", tc.spec, site, n, tc.site, tc.n)
		}
	}
}

func TestCrashPlanFiresAtSelectedOccurrence(t *testing.T) {
	fired := 0
	p, err := newCrashPlan("wal.append.mid:3", func() { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	// Other sites never fire, the selected site fires exactly at its
	// third occurrence and never again.
	for i := 0; i < 10; i++ {
		p.hit("snapshot.rename")
		p.hit("wal.append.mid")
		switch {
		case i < 2 && fired != 0:
			t.Fatalf("fired after %d hits", i+1)
		case i >= 2 && fired != 1:
			t.Fatalf("fired %d times after %d hits", fired, i+1)
		}
	}
}

func TestCrashPlanNilIsNoop(t *testing.T) {
	p, err := newCrashPlan("", func() { t.Fatal("fired") })
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatal("empty spec should yield a nil plan")
	}
	p.hit("anything") // nil receiver must be safe: the production path
}

func TestCrashPlanBadSpecError(t *testing.T) {
	if _, err := newCrashPlan("site:nope", func() {}); err == nil || !strings.Contains(err.Error(), "bad crash occurrence") {
		t.Fatalf("expected parse error, got %v", err)
	}
}
