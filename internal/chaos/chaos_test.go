package chaos

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"dyndesign/internal/core"
)

var _ core.FallibleModel = (*Model)(nil)

// cleanModel is a deterministic synthetic cost model: costs are pure
// functions of the evaluation site, so chaos tests need no tables and
// no RNG.
type cleanModel struct{}

func (cleanModel) Exec(stage int, c core.Config) float64 {
	h := splitmix64(uint64(stage)<<32 ^ uint64(c))
	return 1 + float64(h%1000)/10
}

func (cleanModel) Trans(from, to core.Config) float64 {
	if from == to {
		return 0
	}
	added, removed := from.Diff(to)
	return float64(10*len(added) + 2*len(removed))
}

func (cleanModel) Size(c core.Config) float64 { return float64(c.Count()) }

func TestChaosDeterministicAcrossOrderAndParallelism(t *testing.T) {
	opts := Options{Seed: 42, ErrorRate: 0.05, Persistent: true}
	a := Wrap(cleanModel{}, opts)
	b := Wrap(cleanModel{}, opts)

	type site struct {
		stage int
		cfg   core.Config
	}
	var sites []site
	for stage := 0; stage < 20; stage++ {
		for cfg := core.Config(0); cfg < 16; cfg++ {
			sites = append(sites, site{stage, cfg})
		}
	}
	// a evaluates serially in order; b evaluates concurrently in
	// reverse. Same seed, same sites — the faulted set must agree.
	got := make([]float64, len(sites))
	for i, s := range sites {
		got[i] = a.Exec(s.stage, s.cfg)
	}
	conc := make([]float64, len(sites))
	var wg sync.WaitGroup
	for i := len(sites) - 1; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conc[i] = b.Exec(sites[i].stage, sites[i].cfg)
		}(i)
	}
	wg.Wait()
	faults := 0
	for i := range sites {
		if got[i] != conc[i] {
			t.Fatalf("site %d: serial %v != concurrent %v", i, got[i], conc[i])
		}
		if math.IsInf(got[i], 1) {
			faults++
		}
	}
	if faults == 0 {
		t.Error("5%% error rate over 320 sites injected nothing")
	}
}

func TestChaosOneShotHeals(t *testing.T) {
	m := Wrap(cleanModel{}, Options{Seed: 7, ErrorRate: 1}) // every site faults once
	if v := m.Exec(0, 1); !math.IsInf(v, 1) {
		t.Fatalf("first evaluation survived: %v", v)
	}
	if err := m.TakeErr(); err == nil {
		t.Fatal("no error recorded")
	}
	if v := m.Exec(0, 1); math.IsInf(v, 1) {
		t.Fatal("one-shot site fired twice")
	}
	if err := m.TakeErr(); err != nil {
		t.Fatalf("healed site still errors: %v", err)
	}
}

func TestChaosPersistentKeepsFiring(t *testing.T) {
	m := Wrap(cleanModel{}, Options{Seed: 7, ErrorRate: 1, Persistent: true})
	for i := 0; i < 3; i++ {
		if v := m.Exec(0, 1); !math.IsInf(v, 1) {
			t.Fatalf("persistent site healed on call %d", i)
		}
	}
	errs, _, _ := m.Injected()
	if errs != 3 {
		t.Errorf("injected errors = %d, want 3", errs)
	}
}

func TestChaosPanicRecoverable(t *testing.T) {
	m := Wrap(cleanModel{}, Options{Seed: 7, PanicRate: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic injected")
			}
		}()
		m.Exec(0, 1)
	}()
	// One-shot: the same site is healed afterwards.
	if v := m.Exec(0, 1); math.IsInf(v, 1) {
		t.Error("healed panic site returned Inf")
	}
}

func TestChaosLatencyDelays(t *testing.T) {
	m := Wrap(cleanModel{}, Options{Seed: 7, LatencyRate: 1, Latency: 20 * time.Millisecond, Persistent: true})
	start := time.Now()
	m.Exec(0, 1)
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("latency site returned in %v", elapsed)
	}
}

func TestChaosIdentityTransNeverFaulted(t *testing.T) {
	m := Wrap(cleanModel{}, Options{Seed: 7, ErrorRate: 1, PanicRate: 0, Persistent: true})
	for c := core.Config(0); c < 64; c++ {
		if v := m.Trans(c, c); v != 0 {
			t.Fatalf("Trans(%d, %d) = %v under full injection", c, c, v)
		}
	}
}

func TestChaosTakeErrDrains(t *testing.T) {
	m := Wrap(cleanModel{}, Options{Seed: 11, ErrorRate: 1, Persistent: true})
	m.Exec(0, 1)
	first := m.TakeErr()
	if first == nil {
		t.Fatal("no error recorded")
	}
	if err := m.TakeErr(); err != nil {
		t.Fatalf("TakeErr did not drain: %v", err)
	}
	if errors.Is(first, core.ErrModelFault) {
		t.Error("chaos errors should be raw; the supervisor adds the ErrModelFault wrapper")
	}
}
