// Package chaos wraps a core.CostModel with deterministic fault
// injection: evaluation errors, panics, and latency spikes, decided by
// a seeded hash of the evaluation site rather than by a shared RNG.
// The same seed therefore injects the same faults at the same sites no
// matter how many goroutines evaluate the model or in which order —
// the property that makes chaos runs reproducible under the parallel
// solvers and the race detector.
//
// The stress suite (stress_test.go, run by `make chaos`) drives the
// resilient solve supervisor over hundreds of seeded chaos models and
// asserts the contract the supervisor advertises: every solve returns
// a feasible solution or a typed error — never a hang, never a crash.
package chaos

import (
	"fmt"
	"math"
	"sync"
	"time"

	"dyndesign/internal/core"
)

// Kind is the kind of fault injected at an evaluation site.
type Kind int

// Fault kinds.
const (
	None Kind = iota
	// Error makes the evaluation fail: it returns +Inf and records an
	// evaluation error retrievable through TakeErr (the FallibleModel
	// contract).
	Error
	// Panic makes the evaluation panic, exercising the recover paths in
	// the worker pool and the supervisor.
	Panic
	// Latency delays the evaluation by Options.Latency, exercising
	// deadline enforcement.
	Latency
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Latency:
		return "latency"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options configures a chaos model. Rates are probabilities in [0, 1]
// evaluated per site (a distinct EXEC stage/configuration pair or TRANS
// configuration pair), not per call: whether a site faults is a pure
// function of (seed, site), so injection is deterministic regardless of
// evaluation order or parallelism.
type Options struct {
	// Seed selects the fault pattern; two models with the same seed and
	// rates fault identically.
	Seed int64
	// ErrorRate is the fraction of sites that fail with an evaluation
	// error.
	ErrorRate float64
	// PanicRate is the fraction of sites that panic.
	PanicRate float64
	// LatencyRate is the fraction of sites delayed by Latency.
	LatencyRate float64
	// Latency is the delay injected at latency sites (default 1ms).
	Latency time.Duration
	// Persistent makes fault sites fire on every evaluation. The
	// default (one-shot) fires each site once and then heals it, the
	// transient-fault shape under which a degraded rung or a retry can
	// succeed.
	Persistent bool
}

// Model is a fault-injecting core.CostModel. It implements
// core.FallibleModel so injected evaluation errors surface through
// TakeErr the way real what-if faults do, and it is safe for concurrent
// use whenever the wrapped model is.
type Model struct {
	inner core.CostModel
	opts  Options

	mu    sync.Mutex
	fired map[uint64]bool
	err   error

	injected struct {
		sync.Mutex
		errors, panics, latencies int
	}
}

// Wrap builds a chaos model around inner.
func Wrap(inner core.CostModel, opts Options) *Model {
	if opts.Latency <= 0 {
		opts.Latency = time.Millisecond
	}
	return &Model{inner: inner, opts: opts, fired: make(map[uint64]bool)}
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// hash from a site key to 64 uniform bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// siteKey folds an evaluation site (tagged to keep EXEC and TRANS
// spaces disjoint) with the seed.
func (m *Model) siteKey(tag uint64, a, b uint64) uint64 {
	h := splitmix64(uint64(m.opts.Seed) ^ tag)
	h = splitmix64(h ^ a)
	return splitmix64(h ^ b)
}

// decide returns the fault for a site, honoring one-shot semantics.
func (m *Model) decide(key uint64) Kind {
	u := float64(splitmix64(key)>>11) / float64(1<<53) // uniform [0,1)
	var kind Kind
	switch {
	case u < m.opts.PanicRate:
		kind = Panic
	case u < m.opts.PanicRate+m.opts.ErrorRate:
		kind = Error
	case u < m.opts.PanicRate+m.opts.ErrorRate+m.opts.LatencyRate:
		kind = Latency
	default:
		return None
	}
	if !m.opts.Persistent {
		m.mu.Lock()
		done := m.fired[key]
		m.fired[key] = true
		m.mu.Unlock()
		if done {
			return None
		}
	}
	return kind
}

// inject applies the site's fault and reports whether the caller must
// return +Inf (error fault) instead of a real value.
func (m *Model) inject(key uint64, site string) (failed bool) {
	switch m.decide(key) {
	case Panic:
		m.injected.Lock()
		m.injected.panics++
		m.injected.Unlock()
		panic(fmt.Sprintf("chaos: injected panic at %s", site))
	case Error:
		m.injected.Lock()
		m.injected.errors++
		m.injected.Unlock()
		m.mu.Lock()
		if m.err == nil {
			m.err = fmt.Errorf("chaos: injected evaluation error at %s", site)
		}
		m.mu.Unlock()
		return true
	case Latency:
		m.injected.Lock()
		m.injected.latencies++
		m.injected.Unlock()
		time.Sleep(m.opts.Latency)
	}
	return false
}

// Exec evaluates EXEC with fault injection.
func (m *Model) Exec(stage int, c core.Config) float64 {
	if m.inject(m.siteKey(1, uint64(stage), uint64(c)), fmt.Sprintf("exec(%d, %d)", stage, c)) {
		return math.Inf(1)
	}
	return m.inner.Exec(stage, c)
}

// Trans evaluates TRANS with fault injection. The identity transition
// is never faulted: the core contract requires Trans(c, c) == 0.
func (m *Model) Trans(from, to core.Config) float64 {
	if from == to {
		return m.inner.Trans(from, to)
	}
	if m.inject(m.siteKey(2, uint64(from), uint64(to)), fmt.Sprintf("trans(%d, %d)", from, to)) {
		return math.Inf(1)
	}
	return m.inner.Trans(from, to)
}

// Size evaluates SIZE without injection: size drives feasibility
// filtering, and a faulted size would silently change the problem
// rather than stress the solve path.
func (m *Model) Size(c core.Config) float64 { return m.inner.Size(c) }

// TakeErr returns the first injected evaluation error since the last
// call and clears it, per the core.FallibleModel contract.
func (m *Model) TakeErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.err
	m.err = nil
	return err
}

// Injected reports how many faults of each kind actually fired.
func (m *Model) Injected() (errors, panics, latencies int) {
	m.injected.Lock()
	defer m.injected.Unlock()
	return m.injected.errors, m.injected.panics, m.injected.latencies
}
