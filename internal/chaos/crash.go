package chaos

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Process crash points extend the in-process fault injection of Model
// to whole-process kill/restart chaos: a cooperating binary calls
// MaybeCrash at named sites on its durability-critical paths (half a
// WAL frame written, a snapshot temp file not yet renamed, ...), and a
// harness selects ONE site occurrence per run through the environment.
// When the selected occurrence is reached the process SIGKILLs itself —
// no deferred functions, no flushes — which is exactly the failure the
// write-ahead log and snapshot formats must survive.
//
// The spec lives in the CrashEnv environment variable as "site:n"
// (crash at the n-th hit of site, 1-based) or "site" (n = 1), e.g.
//
//	CHAOS_CRASHPOINT=wal.append.mid:17 advisord -data-dir d ...
//
// Unset means every MaybeCrash call is a no-op costing one atomic load,
// so production binaries can leave the sites compiled in.

// CrashEnv is the environment variable naming the crash point.
const CrashEnv = "CHAOS_CRASHPOINT"

// crashPlan is the parsed spec plus the kill function (replaceable by
// tests; the real one SIGKILLs the current process).
type crashPlan struct {
	site string
	n    int64
	kill func()

	mu   sync.Mutex
	hits map[string]int64
}

var (
	planOnce sync.Once
	plan     *crashPlan // nil when CrashEnv is unset or malformed
)

// parseCrashSpec splits "site:n" (n defaults to 1, must be >= 1).
func parseCrashSpec(spec string) (string, int64, error) {
	site, ns, found := strings.Cut(spec, ":")
	if site == "" {
		return "", 0, fmt.Errorf("chaos: empty crash site in %q", spec)
	}
	if !found {
		return site, 1, nil
	}
	n, err := strconv.ParseInt(ns, 10, 64)
	if err != nil || n < 1 {
		return "", 0, fmt.Errorf("chaos: bad crash occurrence in %q (want site:n, n >= 1)", spec)
	}
	return site, n, nil
}

// newCrashPlan builds a plan from a spec string, or nil for "".
func newCrashPlan(spec string, kill func()) (*crashPlan, error) {
	if spec == "" {
		return nil, nil
	}
	site, n, err := parseCrashSpec(spec)
	if err != nil {
		return nil, err
	}
	return &crashPlan{site: site, n: n, kill: kill, hits: make(map[string]int64)}, nil
}

// hit records one occurrence of site and fires the kill when it is the
// selected one.
func (p *crashPlan) hit(site string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.hits[site]++
	fire := site == p.site && p.hits[site] == p.n
	p.mu.Unlock()
	if fire {
		p.kill()
	}
}

// selfKill is the real crash: SIGKILL to our own pid, the closest
// userspace analogue of a power cut — no deferred cleanup, no buffered
// writes flushed. The Exit fallback covers platforms where the signal
// is not deliverable.
func selfKill() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	os.Exit(137)
}

// MaybeCrash records one occurrence of the named site and SIGKILLs the
// process when the environment selected it. Malformed specs are
// reported once on stderr and then ignored — a chaos harness typo must
// not turn into silent no-crash runs without a trace.
func MaybeCrash(site string) {
	planOnce.Do(func() {
		p, err := newCrashPlan(os.Getenv(CrashEnv), selfKill)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v (ignoring %s)\n", err, CrashEnv)
			return
		}
		plan = p
	})
	plan.hit(site)
}
