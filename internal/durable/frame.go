// Package durable persists the advisor service's state across process
// crashes: a CRC-framed, fsync-batched, segment-rotating write-ahead
// log for the ingested statement stream, plus periodic schema-versioned
// snapshots of the derived state (window ring, installed design,
// last-known-good solution, drift-detector costs). Recovery loads the
// newest valid snapshot and replays the WAL tail, truncating torn
// records at the first bad frame — the standard snapshot + redo-log
// shape, sized for a single-node tuner.
//
// The durability contract is explicit about what is and is not
// persisted: the statement stream and the published design chain are;
// the what-if memo and solve-cache tables are not — they are
// deterministic caches that re-warm from the replayed stream (see
// DESIGN.md §14).
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout: a 8-byte header (little-endian payload length, then
// CRC-32C of the payload) followed by the payload. The CRC is over the
// payload only; a torn header is detected by the length/CRC check
// failing on whatever bytes follow.
const frameHeaderSize = 8

// maxFramePayload bounds a single frame. WAL records are statements
// (bytes to kilobytes); snapshots carry a whole window ring and a cost
// ring (up to a few megabytes). Anything larger than this is treated as
// a corrupt length field, not a record.
const maxFramePayload = 64 << 20

// castagnoli is the CRC-32C table (the checksum polynomial used by
// most storage formats; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errBadFrame marks a torn or corrupt frame — the recovery signal to
// truncate, never an error to surface raw.
var errBadFrame = errors.New("durable: bad frame")

// appendFrame appends the framed payload to buf and returns the
// extended slice.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrame reads one frame from r. It returns the payload, or io.EOF
// at a clean end, or errBadFrame for anything torn: a partial header, a
// length beyond the cap, a short payload, or a CRC mismatch.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	n, err := io.ReadFull(r, hdr[:])
	if err == io.EOF && n == 0 {
		return nil, io.EOF
	}
	if err != nil {
		return nil, errBadFrame // partial header: torn tail
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxFramePayload {
		return nil, errBadFrame
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errBadFrame // short payload: torn tail
	}
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, errBadFrame
	}
	return payload, nil
}

// frameSize is the on-disk size of a frame holding n payload bytes.
func frameSize(n int) int64 { return int64(frameHeaderSize + n) }

// corruptionError wraps recovery failures that indicate real corruption
// (as opposed to a torn tail, which recovery repairs silently).
func corruptionError(format string, args ...any) error {
	return fmt.Errorf("durable: "+format, args...)
}
