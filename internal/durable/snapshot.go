package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dyndesign/internal/alerter"
	"dyndesign/internal/chaos"
	"dyndesign/internal/core"
	"dyndesign/internal/workload"
)

// SnapshotSchemaVersion is the current snapshot format. Recovery skips
// snapshots written under any other version (falling back to an older
// valid file, then to pure WAL replay) instead of misreading them.
const SnapshotSchemaVersion = 1

// Snapshot is the periodically persisted derived state: everything the
// advisor service cannot recompute from the WAL tail alone. Seq is the
// WAL sequence the snapshot folds in — recovery replays only records
// after it.
//
// Deliberately absent: the what-if memo and the solve-cache tables.
// Both are deterministic caches keyed by content; they re-warm from the
// recovered window via core.VersionedModel on the first solve, so
// persisting them would add bulk and a staleness channel without
// changing any answer.
type Snapshot struct {
	SchemaVersion int    `json:"schema_version"`
	Seq           uint64 `json:"seq"`
	// Window is the statement ring, oldest first.
	Window workload.WindowState `json:"window"`
	// Installed is the design chain head: the configuration the last
	// published recommendation ends at (C0 of the next solve).
	Installed core.Config `json:"installed"`
	// LastKnownGood backs the resilient ladder's final rung across the
	// restart. Dropped at recovery when the statistics fingerprint
	// changed — its costs were computed in a dead world.
	LastKnownGood *core.Solution `json:"last_known_good,omitempty"`
	// StatsFingerprint is the cost-world epoch (TableStats content
	// hash) the snapshot's cost-derived state was computed under.
	StatsFingerprint uint64 `json:"stats_fingerprint"`
	// Alerter is the drift detector's cost ring and counters.
	Alerter *alerter.State `json:"alerter,omitempty"`
}

// WriteSnapshot atomically persists a snapshot: temp file, fsync,
// rename, directory fsync — a kill at any point leaves either the old
// or the new snapshot, never a half-written one. The WAL is synced
// first so a durable snapshot never references records the log could
// still lose. Afterwards old snapshots beyond Options.KeepSnapshots are
// pruned and WAL segments every retained snapshot has folded in are
// deleted.
func (s *Store) WriteSnapshot(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("durable: nil snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store is closed")
	}
	if snap.Seq >= s.nextSeq {
		return fmt.Errorf("durable: snapshot seq %d beyond the log head %d", snap.Seq, s.nextSeq-1)
	}
	snap.SchemaVersion = SnapshotSchemaVersion
	if err := s.syncLocked(); err != nil {
		return err
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	frame := appendFrame(nil, payload)

	final := snapPath(s.dir, snap.Seq)
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// Two writes with a crash point between them: a kill mid-snapshot
	// leaves only a temp file, which recovery discards.
	half := len(frame) / 2
	if _, err := f.Write(frame[:half]); err != nil {
		f.Close()
		return err
	}
	chaos.MaybeCrash("snapshot.tmp")
	if _, err := f.Write(frame[half:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	s.stats.Fsyncs++
	if err := f.Close(); err != nil {
		return err
	}
	chaos.MaybeCrash("snapshot.rename")
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	chaos.MaybeCrash("snapshot.post")
	s.stats.Snapshots++
	s.stats.LastSnapshotSeq = snap.Seq
	s.pruneSnapshotsLocked()
	s.compactLocked()
	return nil
}

// pruneSnapshotsLocked removes snapshot files beyond the retention
// count, oldest first.
func (s *Store) pruneSnapshotsLocked() {
	seqs := s.snapshotSeqs()
	for len(seqs) > s.opts.KeepSnapshots {
		_ = os.Remove(snapPath(s.dir, seqs[0]))
		seqs = seqs[1:]
	}
}

// compactLocked deletes WAL segments whose every record is folded into
// the OLDEST retained snapshot, so any retained snapshot can still
// anchor a recovery. The active segment is never deleted.
func (s *Store) compactLocked() {
	seqs := s.snapshotSeqs()
	if len(seqs) == 0 {
		return
	}
	cover := seqs[0]
	kept := s.segments[:0]
	for i, seg := range s.segments {
		if i < len(s.segments)-1 && s.segments[i+1].first <= cover+1 && seg.last <= cover {
			_ = os.Remove(seg.path)
			continue
		}
		kept = append(kept, seg)
	}
	s.segments = kept
	s.stats.Segments = len(s.segments)
}

// snapshotSeqs lists the snapshot sequences on disk, oldest first.
func (s *Store) snapshotSeqs() []uint64 {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), snapPrefix, snapSuffix); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// Recover returns the newest valid snapshot (nil when none exists) and
// the WAL tail after it, oldest first. Snapshot files that fail the CRC
// or carry a foreign schema version are skipped — recovery falls back
// to the previous generation, then to pure WAL replay from sequence
// zero. A WAL tail that does not connect to the chosen snapshot (a gap
// compaction should have made impossible) is real corruption and
// errors out rather than serving a silently incomplete window.
//
// Call Recover once, after Open and before the first append.
func (s *Store) Recover() (*Snapshot, []Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var snap *Snapshot
	seqs := s.snapshotSeqs()
	for i := len(seqs) - 1; i >= 0; i-- {
		loaded, err := readSnapshotFile(snapPath(s.dir, seqs[i]))
		if err != nil {
			s.stats.SnapshotsDiscarded++
			continue
		}
		snap = loaded
		break
	}
	after := uint64(0)
	if snap != nil {
		after = snap.Seq
	}
	tail, err := s.tailRecords(after)
	if err != nil {
		return nil, nil, err
	}
	if len(tail) > 0 && tail[0].Seq != after+1 {
		return nil, nil, corruptionError("WAL tail starts at %d, want %d: log does not connect to the snapshot", tail[0].Seq, after+1)
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq != tail[i-1].Seq+1 {
			return nil, nil, corruptionError("WAL tail breaks at %d -> %d", tail[i-1].Seq, tail[i].Seq)
		}
	}
	return snap, tail, nil
}

// readSnapshotFile loads and validates one snapshot file.
func readSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payload, err := readFrame(f)
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: %w", filepath.Base(path), err)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: %w", filepath.Base(path), err)
	}
	if snap.SchemaVersion != SnapshotSchemaVersion {
		return nil, fmt.Errorf("durable: snapshot %s has schema version %d, want %d",
			filepath.Base(path), snap.SchemaVersion, SnapshotSchemaVersion)
	}
	return &snap, nil
}
