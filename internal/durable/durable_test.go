package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dyndesign/internal/core"
	"dyndesign/internal/workload"
)

// appendN appends n statement records with deterministic content and
// returns the cumulative byte offset after each append (frame
// boundaries, starting at 0).
func appendN(t *testing.T, s *Store, n int) []int64 {
	t.Helper()
	boundaries := []int64{0}
	for i := 0; i < n; i++ {
		if _, err := s.AppendStatement(fmt.Sprintf("L%d", i%3), fmt.Sprintf("SELECT a FROM t WHERE a = %d", i)); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, s.Stats().AppendedBytes)
	}
	return boundaries
}

func TestWALAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 5)
	if _, err := s.AppendReset(); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, tail, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	if len(tail) != 8 {
		t.Fatalf("recovered %d records, want 8", len(tail))
	}
	for i, rec := range tail {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		wantKind := RecordStatement
		if i == 5 {
			wantKind = RecordReset
		}
		if rec.Kind != wantKind {
			t.Fatalf("record %d kind %q, want %q", i, rec.Kind, wantKind)
		}
	}
	// The sequence continues where the previous process stopped.
	seq, err := s2.AppendStatement("", "SELECT a FROM t WHERE a = 9")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 {
		t.Fatalf("continued seq %d, want 9", seq)
	}
}

// TestWALTornTailTruncationEveryByte is the exhaustive torn-tail sweep
// the satellite asks for: a small log truncated at EVERY byte offset
// must recover exactly the records whose frames are complete, repair
// the file to that frame boundary, and accept appends afterwards.
func TestWALTornTailTruncationEveryByte(t *testing.T) {
	ref := t.TempDir()
	s, err := Open(ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	boundaries := appendN(t, s, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segName := segPath(ref, 1)
	clean, err := os.ReadFile(segName)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(clean)) != boundaries[len(boundaries)-1] {
		t.Fatalf("segment is %d bytes, boundaries say %d", len(clean), boundaries[len(boundaries)-1])
	}

	// wholeFrames(L) = how many records survive a cut at byte L.
	wholeFrames := func(cut int64) int {
		n := 0
		for _, b := range boundaries[1:] {
			if b <= cut {
				n++
			}
		}
		return n
	}
	for cut := int64(0); cut <= int64(len(clean)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, 1), clean[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		_, tail, err := s.Recover()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := wholeFrames(cut)
		if len(tail) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(tail), want)
		}
		wantSize := boundaries[want]
		if info, err := os.Stat(segPath(dir, 1)); err != nil || info.Size() != wantSize {
			t.Fatalf("cut %d: repaired size %v (err %v), want %d", cut, info, err, wantSize)
		}
		if cut > wantSize {
			if st := s.Stats(); st.TruncatedBytes != cut-wantSize {
				t.Fatalf("cut %d: truncated %d bytes, want %d", cut, st.TruncatedBytes, cut-wantSize)
			}
		}
		// The repaired log keeps appending from the right sequence.
		seq, err := s.AppendStatement("", "SELECT a FROM t WHERE a = 99")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if seq != uint64(want+1) {
			t.Fatalf("cut %d: append got seq %d, want %d", cut, seq, want+1)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 12)
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected >= 3 segments at 128-byte rotation, got %d", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	_, tail, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 12 {
		t.Fatalf("recovered %d records across segments, want 12", len(tail))
	}
}

// testSnapshot builds a small but fully populated snapshot at seq.
func testSnapshot(seq uint64, marker string) *Snapshot {
	return &Snapshot{
		Seq: seq,
		Window: workload.WindowState{
			Name: "live", Cap: 4, Total: int64(seq), Seq: seq,
			Statements: []workload.WindowStatement{{Label: marker, SQL: "SELECT a FROM t WHERE a = 1"}},
		},
		Installed:        core.ConfigOf(1),
		LastKnownGood:    &core.Solution{Designs: []core.Config{core.ConfigOf(1)}, Cost: 42.5, ExecCost: 40, TransCost: 2.5, Changes: 1},
		StatsFingerprint: 0xfeed,
	}
}

func TestSnapshotRoundTripAndFallback(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 6)
	if err := s.WriteSnapshot(testSnapshot(4, "old")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(testSnapshot(6, "new")); err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 2) // seqs 7, 8: the tail after the newest snapshot
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, tail, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Seq != 6 || snap.Window.Statements[0].Label != "new" {
		t.Fatalf("recovered snapshot %+v, want the seq-6 generation", snap)
	}
	if snap.Installed != core.ConfigOf(1) || snap.LastKnownGood == nil || snap.LastKnownGood.Cost != 42.5 ||
		snap.StatsFingerprint != 0xfeed {
		t.Fatalf("snapshot payload mangled: %+v", snap)
	}
	if len(tail) != 2 || tail[0].Seq != 7 || tail[1].Seq != 8 {
		t.Fatalf("tail after snapshot: %+v", tail)
	}
	s2.Close()

	// Corrupt the newest snapshot: recovery must fall back to the older
	// generation and count the discard.
	raw, err := os.ReadFile(snapPath(dir, 6))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snapPath(dir, 6), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	snap, tail, err = s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Seq != 4 || snap.Window.Statements[0].Label != "old" {
		t.Fatalf("fallback snapshot %+v, want the seq-4 generation", snap)
	}
	if len(tail) != 4 || tail[0].Seq != 5 {
		t.Fatalf("fallback tail: %+v", tail)
	}
	if st := s3.Stats(); st.SnapshotsDiscarded != 1 {
		t.Fatalf("SnapshotsDiscarded = %d, want 1", st.SnapshotsDiscarded)
	}
}

func TestSnapshotPruneAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 128, KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 10)
	for _, seq := range []uint64{3, 6, 9} {
		if err := s.WriteSnapshot(testSnapshot(seq, "gen")); err != nil {
			t.Fatal(err)
		}
	}
	// Only the two newest snapshots survive.
	if seqs := s.snapshotSeqs(); len(seqs) != 2 || seqs[0] != 6 || seqs[1] != 9 {
		t.Fatalf("retained snapshots %v, want [6 9]", seqs)
	}
	// Every WAL segment fully covered by the OLDEST retained snapshot
	// (seq 6) is gone; records after 6 are still on disk.
	for _, seg := range s.segments {
		if seg.last <= 6 && seg.last >= seg.first {
			t.Fatalf("segment %s (last %d) should have been compacted", seg.path, seg.last)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Both retained snapshots still anchor a full recovery.
	s2, err := Open(dir, Options{SegmentBytes: 128, KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, tail, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Seq != 9 || len(tail) != 1 || tail[0].Seq != 10 {
		t.Fatalf("recovery after compaction: snap %+v tail %+v", snap, tail)
	}
}

func TestCorruptionMidLogDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 12)
	if s.Stats().Segments < 3 {
		t.Fatalf("fixture needs >= 3 segments, got %d", s.Stats().Segments)
	}
	firstPath := s.segments[0].path
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the FIRST segment: the log ends at the corrupt
	// frame and every later segment is unreachable, hence dropped.
	raw, err := os.ReadFile(firstPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-5] ^= 0xff
	if err := os.WriteFile(firstPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.DroppedSegments == 0 {
		t.Fatalf("no segments dropped: %+v", st)
	}
	_, tail, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) >= 12 {
		t.Fatalf("recovered %d records from a mid-corrupted log", len(tail))
	}
	for i, rec := range tail {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("recovered tail is not a prefix: %+v", tail)
		}
	}
}

func TestLockExclusionAndRelease(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a locked dir succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, lockName)); !os.IsNotExist(err) {
		t.Fatalf("LOCK file survived Close: %v", err)
	}
	// A leftover LOCK file from a SIGKILLed process holds no flock, so
	// reopening succeeds.
	if err := os.WriteFile(filepath.Join(dir, lockName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after simulated crash: %v", err)
	}
	s2.Close()
}

func TestFsyncBatching(t *testing.T) {
	dir := t.TempDir()
	hooks := 0
	s, err := Open(dir, Options{FsyncEvery: 3, BeforeSync: func() { hooks++ }})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendN(t, s, 7)
	if st := s.Stats(); st.Fsyncs != 2 {
		t.Fatalf("Fsyncs after 7 appends at FsyncEvery=3: %d, want 2", st.Fsyncs)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Fsyncs != 3 {
		t.Fatalf("Fsyncs after explicit Sync: %d, want 3", st.Fsyncs)
	}
	if hooks != 3 {
		t.Fatalf("BeforeSync ran %d times, want 3", hooks)
	}
	// A drained log does not re-sync.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Fsyncs != 3 {
		t.Fatalf("empty Sync still fsynced: %d", st.Fsyncs)
	}
}

func TestStaleSnapshotTempRemoved(t *testing.T) {
	dir := t.TempDir()
	tmp := snapPath(dir, 3) + tmpSuffix
	if err := os.WriteFile(tmp, []byte("half a snapsho"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot temp file survived Open: %v", err)
	}
	if snap, tail, err := s.Recover(); err != nil || snap != nil || len(tail) != 0 {
		t.Fatalf("recovery saw ghost state: snap %+v tail %+v err %v", snap, tail, err)
	}
}
