package durable

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"dyndesign/internal/chaos"
)

// RecordKind tags a WAL record.
type RecordKind string

const (
	// RecordStatement is one ingested statement.
	RecordStatement RecordKind = "stmt"
	// RecordReset marks a tumbling-window epoch boundary, so recovery
	// replays resets in stream order instead of resurrecting a window
	// the service had already emptied.
	RecordReset RecordKind = "reset"
)

// Record is one WAL entry. Seq is assigned by the store and is strictly
// sequential — recovery verifies the chain and treats any break as the
// end of the log.
type Record struct {
	Seq   uint64     `json:"seq"`
	Kind  RecordKind `json:"kind"`
	Label string     `json:"label,omitempty"`
	SQL   string     `json:"sql,omitempty"`
}

// Options tunes a Store. Zero values get crash-safe defaults.
type Options struct {
	// FsyncEvery batches WAL fsyncs: the log is synced after every
	// FsyncEvery-th appended record (default 1 — sync every record,
	// the setting under which an acknowledged ingest is durable).
	// Larger values trade the tail of un-synced records for throughput;
	// clients that resume from the recovered statement count are safe
	// either way.
	FsyncEvery int
	// SegmentBytes rotates the WAL to a fresh segment file once the
	// active one reaches this size (default 4 MiB).
	SegmentBytes int64
	// KeepSnapshots is how many snapshot generations to retain
	// (default 2: the newest plus one fallback). WAL segments are only
	// compacted up to the oldest retained snapshot, so every retained
	// snapshot can still be the recovery base.
	KeepSnapshots int
	// BeforeSync, when non-nil, runs before every WAL fsync — the
	// chaos/test seam for modeling a stalled disk.
	BeforeSync func()
}

func (o Options) withDefaults() Options {
	if o.FsyncEvery < 1 {
		o.FsyncEvery = 1
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.KeepSnapshots < 1 {
		o.KeepSnapshots = 2
	}
	return o
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Appends and AppendedBytes count WAL records written this process;
	// Fsyncs counts WAL and snapshot file syncs.
	Appends       int64
	AppendedBytes int64
	Fsyncs        int64
	// Segments is the current WAL segment file count; LastSeq the
	// newest durable-or-pending record sequence.
	Segments int
	LastSeq  uint64
	// TruncatedBytes is how many torn-tail bytes recovery cut off at
	// open; DroppedSegments how many unreachable segments (beyond a
	// truncation point) it deleted.
	TruncatedBytes  int64
	DroppedSegments int64
	// Snapshots counts snapshots written this process;
	// SnapshotsDiscarded counts invalid snapshot files skipped during
	// recovery; LastSnapshotSeq is the newest snapshot's sequence.
	Snapshots          int64
	SnapshotsDiscarded int64
	LastSnapshotSeq    uint64
}

// segment describes one WAL segment file. first is the sequence of its
// first record (encoded in the filename); last is the newest record it
// holds, first-1 while empty.
type segment struct {
	path  string
	first uint64
	last  uint64
	size  int64
}

// Store is the durable state of one advisord data directory. Appends
// and snapshot writes are serialized behind one mutex; a flock'd LOCK
// file keeps a second process from appending to the same log (the lock
// dies with the process, so a SIGKILL never wedges the directory).
type Store struct {
	dir  string
	opts Options
	lock *os.File

	mu       sync.Mutex
	active   *os.File
	segments []segment
	nextSeq  uint64
	pending  int // records appended since the last fsync
	closed   bool

	stats Stats
}

const (
	lockName   = "LOCK"
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", segPrefix, first, segSuffix))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix))
}

// parseSeq extracts the sequence number from a segment or snapshot
// filename, reporting false for foreign files.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var seq uint64
	if _, err := fmt.Sscanf(mid, "%d", &seq); err != nil || len(mid) != 16 {
		return 0, false
	}
	return seq, true
}

// Open locks dir (creating it if needed), repairs the WAL's torn tail,
// and positions the store for appending. Leftover LOCK files from a
// killed process are harmless: the advisory flock died with it.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("durable: data dir %s is locked by another advisord: %w", dir, err)
	}
	s := &Store{dir: dir, opts: opts, lock: lock}
	if err := s.scan(); err != nil {
		s.unlock()
		return nil, err
	}
	return s, nil
}

// scan reads the directory: removes stale temp files, repairs the WAL
// tail, verifies segment continuity, and computes the next sequence.
func (s *Store) scan() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	var segs []segment
	maxSnapSeq := uint64(0)
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A crash mid-snapshot leaves a temp file that was never
			// renamed into place; it is dead by construction.
			_ = os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if first, ok := parseSeq(name, segPrefix, segSuffix); ok {
			segs = append(segs, segment{path: filepath.Join(s.dir, name), first: first})
		}
		if seq, ok := parseSeq(name, snapPrefix, snapSuffix); ok && seq > maxSnapSeq {
			maxSnapSeq = seq
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	// Walk the segments oldest first, verifying the frame chain. The
	// first bad frame — torn header, short payload, CRC mismatch, or a
	// broken sequence — ends the log: the segment is truncated there
	// and every later segment is dropped.
	logEnded := false
	kept := segs[:0]
	for i := range segs {
		seg := &segs[i]
		if logEnded || (len(kept) > 0 && seg.first != kept[len(kept)-1].last+1) {
			s.stats.DroppedSegments++
			if err := os.Remove(seg.path); err != nil {
				return err
			}
			logEnded = true
			continue
		}
		truncAt, last, err := scanSegment(seg.path, seg.first)
		if err != nil {
			return err
		}
		seg.last = last
		if truncAt >= 0 {
			info, err := os.Stat(seg.path)
			if err != nil {
				return err
			}
			s.stats.TruncatedBytes += info.Size() - truncAt
			if err := os.Truncate(seg.path, truncAt); err != nil {
				return err
			}
			seg.size = truncAt
			logEnded = true
		} else {
			info, err := os.Stat(seg.path)
			if err != nil {
				return err
			}
			seg.size = info.Size()
		}
		kept = append(kept, *seg)
	}
	s.segments = kept

	s.nextSeq = maxSnapSeq + 1
	if n := len(s.segments); n > 0 {
		if last := s.segments[n-1].last + 1; last > s.nextSeq {
			s.nextSeq = last
		}
		// An empty trailing segment still fixes the floor: it was
		// created after records that a snapshot may have compacted away.
		if first := s.segments[n-1].first; first > s.nextSeq {
			s.nextSeq = first
		}
	}
	if s.nextSeq == 0 {
		s.nextSeq = 1
	}

	// Open (or create) the active segment for appending.
	if len(s.segments) == 0 {
		if err := s.newSegment(s.nextSeq); err != nil {
			return err
		}
	} else {
		tail := &s.segments[len(s.segments)-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		s.active = f
	}
	s.stats.Segments = len(s.segments)
	s.stats.LastSeq = s.nextSeq - 1
	s.stats.LastSnapshotSeq = maxSnapSeq
	return nil
}

// scanSegment validates one segment's frames. It returns the byte
// offset to truncate at (-1 if the segment is clean) and the sequence
// of the last valid record (first-1 when none).
func scanSegment(path string, first uint64) (truncAt int64, last uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := &countingReader{r: f}
	offset := int64(0)
	expect := first
	for {
		payload, err := readFrame(r)
		if err == io.EOF {
			return -1, expect - 1, nil
		}
		if err != nil {
			return offset, expect - 1, nil // torn tail: cut here
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Seq != expect {
			return offset, expect - 1, nil // undecodable or broken chain
		}
		expect++
		offset = r.n
	}
}

// countingReader tracks how many bytes readFrame consumed, so the
// truncation offset lands exactly on the last good frame boundary.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// newSegment creates and activates a fresh segment whose first record
// will be seq. Called with mu held (or during scan, pre-concurrency).
func (s *Store) newSegment(seq uint64) error {
	f, err := os.OpenFile(segPath(s.dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := s.syncDir(); err != nil {
		f.Close()
		return err
	}
	if s.active != nil {
		s.active.Close()
	}
	s.active = f
	s.segments = append(s.segments, segment{path: f.Name(), first: seq, last: seq - 1})
	s.stats.Segments = len(s.segments)
	return nil
}

// syncDir fsyncs the data directory, making renames and file creations
// durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// AppendStatement appends one ingested statement and returns its
// sequence. Under the default FsyncEvery=1 the record is durable when
// the call returns — the property that makes an acknowledged ingest
// survive a SIGKILL.
func (s *Store) AppendStatement(label, sql string) (uint64, error) {
	return s.append(Record{Kind: RecordStatement, Label: label, SQL: sql})
}

// AppendReset appends a tumbling-window epoch boundary marker.
func (s *Store) AppendReset() (uint64, error) {
	return s.append(Record{Kind: RecordReset})
}

func (s *Store) append(rec Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("durable: store is closed")
	}
	rec.Seq = s.nextSeq
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	frame := appendFrame(nil, payload)
	// Two writes with a crash point between them: a kill here leaves a
	// torn frame on disk, exactly what recovery must truncate.
	half := len(frame) / 2
	if _, err := s.active.Write(frame[:half]); err != nil {
		return 0, err
	}
	chaos.MaybeCrash("wal.append.mid")
	if _, err := s.active.Write(frame[half:]); err != nil {
		return 0, err
	}
	s.nextSeq++
	s.pending++
	tail := &s.segments[len(s.segments)-1]
	tail.last = rec.Seq
	tail.size += int64(len(frame))
	s.stats.Appends++
	s.stats.AppendedBytes += int64(len(frame))
	s.stats.LastSeq = rec.Seq

	if s.pending >= s.opts.FsyncEvery {
		chaos.MaybeCrash("wal.append.presync")
		if err := s.syncLocked(); err != nil {
			return 0, err
		}
		chaos.MaybeCrash("wal.append.post")
	}
	if tail.size >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return rec.Seq, nil
}

// syncLocked fsyncs the active segment. Called with mu held.
func (s *Store) syncLocked() error {
	if s.pending == 0 {
		return nil
	}
	if s.opts.BeforeSync != nil {
		s.opts.BeforeSync()
	}
	if err := s.active.Sync(); err != nil {
		return err
	}
	s.stats.Fsyncs++
	s.pending = 0
	return nil
}

// rotateLocked seals the active segment and opens the next one.
func (s *Store) rotateLocked() error {
	if err := s.syncLocked(); err != nil {
		return err
	}
	chaos.MaybeCrash("wal.rotate")
	return s.newSegment(s.nextSeq)
}

// Sync forces the batched WAL tail to disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store is closed")
	}
	return s.syncLocked()
}

// LastSeq returns the sequence of the newest appended record (0 when
// the log is empty).
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq - 1
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close syncs the WAL, releases the directory lock, and removes the
// LOCK file. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.syncLocked()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.unlock()
	return err
}

// unlock removes the LOCK file and releases the flock.
func (s *Store) unlock() {
	_ = os.Remove(filepath.Join(s.dir, lockName))
	_ = syscall.Flock(int(s.lock.Fd()), syscall.LOCK_UN)
	_ = s.lock.Close()
}

// tailRecords reads every WAL record with sequence > after, oldest
// first. Called with mu held or before concurrency starts.
func (s *Store) tailRecords(after uint64) ([]Record, error) {
	var out []Record
	for _, seg := range s.segments {
		if seg.last <= after || seg.last < seg.first {
			continue
		}
		f, err := os.Open(seg.path)
		if err != nil {
			return nil, err
		}
		for {
			payload, err := readFrame(f)
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return nil, corruptionError("segment %s re-read hit a bad frame after repair", seg.path)
			}
			var rec Record
			if err := json.Unmarshal(payload, &rec); err != nil {
				f.Close()
				return nil, corruptionError("segment %s holds an undecodable record: %v", seg.path, err)
			}
			if rec.Seq > after {
				out = append(out, rec)
			}
		}
		f.Close()
	}
	return out, nil
}
