package sql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dyndesign/internal/types"
)

// Parse parses one SQL statement. A trailing semicolon is allowed;
// anything after it is an error.
func Parse(input string) (Statement, error) {
	p := &parser{lex: newLexer(input)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokSymbol && p.tok.text == ";" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.lex.errorf(p.tok.pos, "unexpected %q after statement", p.tok.text)
	}
	return stmt, nil
}

// MustParse is Parse that panics on error. It is for tests, fixtures,
// and hard-coded statements only; library code parsing external input
// must use Parse and handle the error.
func MustParse(input string) Statement {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// isKeyword reports whether the current token is the given keyword
// (case-insensitive).
func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.lex.errorf(p.tok.pos, "expected %s, found %q", kw, p.tok.text)
	}
	return p.advance()
}

// expectSymbol consumes the given symbol or fails.
func (p *parser) expectSymbol(sym string) error {
	if p.tok.kind != tokSymbol || p.tok.text != sym {
		return p.lex.errorf(p.tok.pos, "expected %q, found %q", sym, p.tok.text)
	}
	return p.advance()
}

// acceptSymbol consumes the symbol if present, reporting whether it did.
func (p *parser) acceptSymbol(sym string) (bool, error) {
	if p.tok.kind == tokSymbol && p.tok.text == sym {
		return true, p.advance()
	}
	return false, nil
}

// parseIdent consumes an identifier and returns its text.
func (p *parser) parseIdent(what string) (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.lex.errorf(p.tok.pos, "expected %s, found %q", what, p.tok.text)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return "", err
	}
	return name, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("EXPLAIN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isKeyword("SELECT") {
			return nil, p.lex.errorf(p.tok.pos, "EXPLAIN supports only SELECT")
		}
		inner, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Query: inner.(*Select)}, nil
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("UPDATE"):
		return p.parseUpdate()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	case p.isKeyword("CREATE"):
		return p.parseCreate()
	case p.isKeyword("DROP"):
		return p.parseDrop()
	default:
		return nil, p.lex.errorf(p.tok.pos, "expected a statement keyword, found %q", p.tok.text)
	}
}

func (p *parser) parseSelect() (Statement, error) {
	if err := p.advance(); err != nil { // SELECT
		return nil, err
	}
	s := &Select{Limit: -1}
	if p.isKeyword("DISTINCT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		s.Distinct = true
	}
	var items []SelectItem
	if p.tok.kind == tokSymbol && p.tok.text == "*" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			items = append(items, item)
			comma, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !comma {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	s.Table = table
	if s.Where, err = p.parseOptionalWhere(); err != nil {
		return nil, err
	}
	if p.isKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.parseIdent("group column")
		if err != nil {
			return nil, err
		}
		s.GroupBy = col
	}
	// Classify the select list: the bare COUNT(*) form keeps its legacy
	// representation; any other aggregate use carries the ordered Items
	// list; a plain column list carries Columns only.
	hasAgg := false
	for _, it := range items {
		if it.IsAgg {
			hasAgg = true
		} else {
			s.Columns = append(s.Columns, it.Col)
		}
	}
	if hasAgg {
		if len(items) == 1 && items[0].Agg == (AggExpr{Func: AggCount}) && s.GroupBy == "" {
			s.CountStar = true
		} else {
			s.Items = items
		}
	} else if s.GroupBy != "" && len(items) == 0 {
		return nil, p.lex.errorf(p.tok.pos, "GROUP BY requires an explicit select list")
	}
	if p.isKeyword("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.parseIdent("order column")
		if err != nil {
			return nil, err
		}
		ob := &OrderBy{Column: col}
		if p.isKeyword("ASC") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.isKeyword("DESC") {
			ob.Desc = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		s.Order = ob
	}
	if p.isKeyword("LIMIT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, p.lex.errorf(p.tok.pos, "expected LIMIT count, found %q", p.tok.text)
		}
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.lex.errorf(p.tok.pos, "invalid LIMIT %q", p.tok.text)
		}
		s.Limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// parseSelectItem parses one select-list entry: a plain column or an
// aggregate call.
func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.tok.kind != tokIdent {
		return SelectItem{}, p.lex.errorf(p.tok.pos, "expected column or aggregate, found %q", p.tok.text)
	}
	name := p.tok.text
	var fn AggFunc
	isAgg := true
	switch strings.ToUpper(name) {
	case "COUNT":
		fn = AggCount
	case "MIN":
		fn = AggMin
	case "MAX":
		fn = AggMax
	case "SUM":
		fn = AggSum
	case "AVG":
		fn = AggAvg
	default:
		isAgg = false
	}
	if err := p.advance(); err != nil {
		return SelectItem{}, err
	}
	if !isAgg {
		return SelectItem{Col: name}, nil
	}
	// Aggregate names are reserved only when followed by '(' —
	// otherwise treat them as plain column names.
	open, err := p.acceptSymbol("(")
	if err != nil {
		return SelectItem{}, err
	}
	if !open {
		return SelectItem{Col: name}, nil
	}
	agg := AggExpr{Func: fn}
	if p.tok.kind == tokSymbol && p.tok.text == "*" {
		if fn != AggCount {
			return SelectItem{}, p.lex.errorf(p.tok.pos, "%s(*) is not valid", fn)
		}
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
	} else {
		col, err := p.parseIdent("aggregate column")
		if err != nil {
			return SelectItem{}, err
		}
		agg.Column = col
	}
	if err := p.expectSymbol(")"); err != nil {
		return SelectItem{}, err
	}
	return SelectItem{IsAgg: true, Agg: agg}, nil
}

func (p *parser) parseOptionalWhere() (*Where, error) {
	if !p.isKeyword("WHERE") {
		return nil, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	w := &Where{}
	for {
		cmp, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		w.Conjuncts = append(w.Conjuncts, cmp...)
		if !p.isKeyword("AND") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// parseComparison parses "col op literal" or "col BETWEEN lit AND lit"
// (which desugars to two conjuncts).
func (p *parser) parseComparison() ([]Comparison, error) {
	col, err := p.parseIdent("column name")
	if err != nil {
		return nil, err
	}
	if p.isKeyword("BETWEEN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		low, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		high, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return []Comparison{
			{Column: col, Op: OpGe, Value: low},
			{Column: col, Op: OpLe, Value: high},
		}, nil
	}
	if p.isKeyword("IN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var vals []types.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			comma, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !comma {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		for i := 1; i < len(vals); i++ {
			if vals[i].Kind != vals[0].Kind {
				return nil, p.lex.errorf(p.tok.pos, "IN list mixes value kinds")
			}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
		dedup := vals[:1]
		for _, v := range vals[1:] {
			if !v.Equal(dedup[len(dedup)-1]) {
				dedup = append(dedup, v)
			}
		}
		return []Comparison{{Column: col, Op: OpIn, Values: dedup}}, nil
	}
	if p.tok.kind != tokSymbol {
		return nil, p.lex.errorf(p.tok.pos, "expected comparison operator, found %q", p.tok.text)
	}
	var op CompareOp
	switch p.tok.text {
	case "=":
		op = OpEq
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return nil, p.lex.errorf(p.tok.pos, "unsupported operator %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	val, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return []Comparison{{Column: col, Op: op, Value: val}}, nil
}

func (p *parser) parseLiteral() (types.Value, error) {
	switch p.tok.kind {
	case tokNumber:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return types.Value{}, p.lex.errorf(p.tok.pos, "invalid number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return types.Value{}, err
		}
		return types.NewInt(n), nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return types.Value{}, err
		}
		return types.NewString(s), nil
	default:
		return types.Value{}, p.lex.errorf(p.tok.pos, "expected literal, found %q", p.tok.text)
	}
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.advance(); err != nil { // INSERT
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	open, err := p.acceptSymbol("(")
	if err != nil {
		return nil, err
	}
	if open {
		for {
			col, err := p.parseIdent("column name")
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			comma, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !comma {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row types.Row
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			comma, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !comma {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		comma, err := p.acceptSymbol(",")
		if err != nil {
			return nil, err
		}
		if !comma {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.advance(); err != nil { // UPDATE
		return nil, err
	}
	table, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: table}
	for {
		col, err := p.parseIdent("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Column: col, Value: val})
		comma, err := p.acceptSymbol(",")
		if err != nil {
			return nil, err
		}
		if !comma {
			break
		}
	}
	if u.Where, err = p.parseOptionalWhere(); err != nil {
		return nil, err
	}
	return u, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.advance(); err != nil { // DELETE
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if d.Where, err = p.parseOptionalWhere(); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.advance(); err != nil { // CREATE
		return nil, err
	}
	switch {
	case p.isKeyword("TABLE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		table, err := p.parseIdent("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		ct := &CreateTable{Table: table}
		for {
			col, err := p.parseIdent("column name")
			if err != nil {
				return nil, err
			}
			typeName, err := p.parseIdent("type name")
			if err != nil {
				return nil, err
			}
			kind, err := types.ParseKind(typeName)
			if err != nil {
				return nil, p.lex.errorf(p.tok.pos, "%v", err)
			}
			ct.Columns = append(ct.Columns, ColumnDef{Name: col, Kind: kind})
			comma, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !comma {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return ct, nil
	case p.isKeyword("INDEX"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Optional explicit index name (ignored; names are canonical).
		if p.tok.kind == tokIdent && !strings.EqualFold(p.tok.text, "ON") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.parseIdent("table name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		ci := &CreateIndex{Table: table}
		for {
			col, err := p.parseIdent("column name")
			if err != nil {
				return nil, err
			}
			ci.Columns = append(ci.Columns, col)
			comma, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !comma {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return ci, nil
	default:
		return nil, p.lex.errorf(p.tok.pos, "expected TABLE or INDEX after CREATE, found %q", p.tok.text)
	}
}

// parseDrop parses DROP TABLE <table> or DROP INDEX <canonical-name> ON
// <table>. The canonical index name "I(a,b)" lexes as ident "I", "(",
// idents, ")" — reuse the column-list grammar.
func (p *parser) parseDrop() (Statement, error) {
	if err := p.advance(); err != nil { // DROP
		return nil, err
	}
	if p.isKeyword("TABLE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		table, err := p.parseIdent("table name")
		if err != nil {
			return nil, err
		}
		return &DropTable{Table: table}, nil
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	head, err := p.parseIdent("index name")
	if err != nil {
		return nil, err
	}
	name := head
	open, err := p.acceptSymbol("(")
	if err != nil {
		return nil, err
	}
	if open {
		var cols []string
		for {
			col, err := p.parseIdent("column name")
			if err != nil {
				return nil, err
			}
			cols = append(cols, col)
			comma, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !comma {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		name = fmt.Sprintf("%s(%s)", head, strings.Join(cols, ","))
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent("table name")
	if err != nil {
		return nil, err
	}
	return &DropIndex{Table: table, Name: name}, nil
}
