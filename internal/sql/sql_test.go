package sql

import (
	"strings"
	"testing"

	"dyndesign/internal/types"
)

func TestParseSelectStar(t *testing.T) {
	s := MustParse("SELECT * FROM t").(*Select)
	if s.Table != "t" || len(s.Columns) != 0 || s.CountStar || s.Where != nil || s.Limit != -1 {
		t.Errorf("parsed %+v", s)
	}
}

func TestParseSelectColumns(t *testing.T) {
	s := MustParse("SELECT a, b FROM t").(*Select)
	if len(s.Columns) != 2 || s.Columns[0] != "a" || s.Columns[1] != "b" {
		t.Errorf("columns = %v", s.Columns)
	}
}

func TestParseSelectCountStar(t *testing.T) {
	s := MustParse("SELECT COUNT(*) FROM t WHERE a = 5").(*Select)
	if !s.CountStar || len(s.Columns) != 0 {
		t.Errorf("parsed %+v", s)
	}
}

func TestParseWhereConjunction(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE a = 1 AND b < 10 AND c >= 'x'").(*Select)
	w := s.Where
	if w == nil || len(w.Conjuncts) != 3 {
		t.Fatalf("where = %+v", w)
	}
	want := []Comparison{
		{Column: "a", Op: OpEq, Value: types.NewInt(1)},
		{Column: "b", Op: OpLt, Value: types.NewInt(10)},
		{Column: "c", Op: OpGe, Value: types.NewString("x")},
	}
	for i, c := range want {
		got := w.Conjuncts[i]
		if got.Column != c.Column || got.Op != c.Op || !got.Value.Equal(c.Value) {
			t.Errorf("conjunct %d = %+v", i, got)
		}
	}
}

func TestParseBetweenDesugars(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE a BETWEEN 3 AND 7").(*Select)
	w := s.Where
	if len(w.Conjuncts) != 2 {
		t.Fatalf("between produced %d conjuncts", len(w.Conjuncts))
	}
	if w.Conjuncts[0].Op != OpGe || w.Conjuncts[0].Value.Int != 3 {
		t.Errorf("low bound = %+v", w.Conjuncts[0])
	}
	if w.Conjuncts[1].Op != OpLe || w.Conjuncts[1].Value.Int != 7 {
		t.Errorf("high bound = %+v", w.Conjuncts[1])
	}
}

func TestParseBetweenThenAnd(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE a BETWEEN 3 AND 7 AND b = 1").(*Select)
	if len(s.Where.Conjuncts) != 3 {
		t.Fatalf("conjuncts = %v", s.Where.Conjuncts)
	}
}

func TestParseOrderLimit(t *testing.T) {
	s := MustParse("SELECT a FROM t ORDER BY b DESC LIMIT 10").(*Select)
	if s.Order == nil || s.Order.Column != "b" || !s.Order.Desc {
		t.Errorf("order = %+v", s.Order)
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
	s = MustParse("SELECT a FROM t ORDER BY b ASC").(*Select)
	if s.Order.Desc {
		t.Error("ASC parsed as DESC")
	}
}

func TestParseNegativeNumber(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE a = -42").(*Select)
	if s.Where.Conjuncts[0].Value.Int != -42 {
		t.Errorf("value = %v", s.Where.Conjuncts[0].Value)
	}
}

func TestParseStringEscapes(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE n = 'o''brien'").(*Select)
	if s.Where.Conjuncts[0].Value.Str != "o'brien" {
		t.Errorf("value = %q", s.Where.Conjuncts[0].Value.Str)
	}
}

func TestParseInsert(t *testing.T) {
	s := MustParse("INSERT INTO t VALUES (1, 'x'), (2, 'y')").(*Insert)
	if s.Table != "t" || len(s.Rows) != 2 {
		t.Fatalf("parsed %+v", s)
	}
	if !s.Rows[0].Equal(types.Row{types.NewInt(1), types.NewString("x")}) {
		t.Errorf("row 0 = %v", s.Rows[0])
	}
}

func TestParseInsertWithColumns(t *testing.T) {
	s := MustParse("INSERT INTO t (b, a) VALUES ('x', 1)").(*Insert)
	if len(s.Columns) != 2 || s.Columns[0] != "b" || s.Columns[1] != "a" {
		t.Errorf("columns = %v", s.Columns)
	}
}

func TestParseUpdate(t *testing.T) {
	s := MustParse("UPDATE t SET a = 5, b = 'z' WHERE c > 3").(*Update)
	if len(s.Set) != 2 || s.Set[0].Column != "a" || s.Set[1].Value.Str != "z" {
		t.Errorf("set = %+v", s.Set)
	}
	if s.Where == nil || len(s.Where.Conjuncts) != 1 {
		t.Errorf("where = %+v", s.Where)
	}
}

func TestParseDelete(t *testing.T) {
	s := MustParse("DELETE FROM t WHERE a = 1").(*Delete)
	if s.Table != "t" || len(s.Where.Conjuncts) != 1 {
		t.Errorf("parsed %+v", s)
	}
	s = MustParse("DELETE FROM t").(*Delete)
	if s.Where != nil {
		t.Error("bare DELETE has a where clause")
	}
}

func TestParseCreateTable(t *testing.T) {
	s := MustParse("CREATE TABLE t (a INT, b STRING, c integer)").(*CreateTable)
	if s.Table != "t" || len(s.Columns) != 3 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Columns[0].Kind != types.KindInt || s.Columns[1].Kind != types.KindString || s.Columns[2].Kind != types.KindInt {
		t.Errorf("kinds = %+v", s.Columns)
	}
}

func TestParseCreateIndex(t *testing.T) {
	s := MustParse("CREATE INDEX ON t (a, b)").(*CreateIndex)
	if s.Table != "t" || len(s.Columns) != 2 {
		t.Fatalf("parsed %+v", s)
	}
	// With an explicit (ignored) name.
	s = MustParse("CREATE INDEX myidx ON t (a)").(*CreateIndex)
	if s.Table != "t" || len(s.Columns) != 1 || s.Columns[0] != "a" {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseDropIndexCanonicalName(t *testing.T) {
	s := MustParse("DROP INDEX I(a,b) ON t").(*DropIndex)
	if s.Name != "I(a,b)" || s.Table != "t" {
		t.Errorf("parsed %+v", s)
	}
	s = MustParse("DROP INDEX plain ON t").(*DropIndex)
	if s.Name != "plain" {
		t.Errorf("parsed %+v", s)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT * FROM t;"); err != nil {
		t.Errorf("trailing semicolon rejected: %v", err)
	}
	if _, err := Parse("SELECT * FROM t; SELECT * FROM u"); err == nil {
		t.Error("two statements accepted")
	}
}

func TestParseComments(t *testing.T) {
	s := MustParse("SELECT a FROM t -- trailing comment\nWHERE a = 1").(*Select)
	if s.Where == nil {
		t.Error("comment swallowed the WHERE clause")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select a from t where a = 1 order by a limit 5"); err != nil {
		t.Errorf("lower-case SQL rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROBNICATE t",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a, FROM t",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a",
		"SELECT a FROM t WHERE a !! 3",
		"SELECT a FROM t WHERE a = ",
		"SELECT a FROM t LIMIT -3",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT MIN(*) FROM t",
		"SELECT COUNT( FROM t",
		"SELECT COUNT(a FROM t",
		"SELECT a FROM t GROUP BY",
		"SELECT * FROM t GROUP BY a",
		"INSERT INTO t",
		"INSERT INTO t VALUES",
		"INSERT INTO t VALUES (1",
		"UPDATE t SET",
		"UPDATE t SET a",
		"DELETE t",
		"CREATE VIEW v",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a FLOAT)",
		"CREATE INDEX ON t",
		"DROP INDEX ON t",
		"SELECT a FROM t WHERE s = 'unterminated",
		"SELECT a FROM t ??",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on garbage did not panic")
		}
	}()
	MustParse("not sql")
}

func TestStringRoundTrip(t *testing.T) {
	// Statement -> String -> Parse -> String must be a fixed point.
	queries := []string{
		"SELECT * FROM t",
		"SELECT COUNT(*) FROM t",
		"SELECT a, b FROM t WHERE a = 1 AND b >= 'x' ORDER BY b DESC LIMIT 3",
		"SELECT a FROM t WHERE a = -5",
		"INSERT INTO t VALUES (1, 'x')",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"UPDATE t SET a = 2 WHERE b = 'q'",
		"DELETE FROM t WHERE a < 4",
		"CREATE TABLE t (a INT, b STRING)",
		"CREATE INDEX ON t (a, b)",
		"DROP INDEX I(a,b) ON t",
		"DROP TABLE t",
	}
	for _, q := range queries {
		s1 := MustParse(q).String()
		s2 := MustParse(s1).String()
		if s1 != s2 {
			t.Errorf("String round trip not fixed: %q -> %q -> %q", q, s1, s2)
		}
	}
}

func TestReferencedColumns(t *testing.T) {
	s := MustParse("SELECT a, b FROM t WHERE b = 1 AND c < 2 ORDER BY d").(*Select)
	got := s.ReferencedColumns()
	want := []string{"a", "b", "c", "d"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("ReferencedColumns = %v, want %v", got, want)
	}
	// Case-insensitive dedup.
	s = MustParse("SELECT A FROM t WHERE a = 1").(*Select)
	if len(s.ReferencedColumns()) != 1 {
		t.Errorf("dedup failed: %v", s.ReferencedColumns())
	}
}

func TestCompareOpString(t *testing.T) {
	ops := map[CompareOp]string{OpEq: "=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v.String() = %q", int(op), op.String())
		}
	}
}

func TestParseAggregates(t *testing.T) {
	s := MustParse("SELECT b, COUNT(*), MIN(a), MAX(a), SUM(a), AVG(a) FROM t GROUP BY b").(*Select)
	if !s.HasAggregates() || s.CountStar {
		t.Fatalf("parsed %+v", s)
	}
	if s.GroupBy != "b" {
		t.Errorf("GroupBy = %q", s.GroupBy)
	}
	if len(s.Items) != 6 || s.Items[0].IsAgg || !s.Items[1].IsAgg {
		t.Fatalf("items = %+v", s.Items)
	}
	aggs := s.Aggregates()
	want := []AggExpr{
		{Func: AggCount}, {Func: AggMin, Column: "a"}, {Func: AggMax, Column: "a"},
		{Func: AggSum, Column: "a"}, {Func: AggAvg, Column: "a"},
	}
	if len(aggs) != len(want) {
		t.Fatalf("aggs = %v", aggs)
	}
	for i := range want {
		if aggs[i] != want[i] {
			t.Errorf("agg %d = %v, want %v", i, aggs[i], want[i])
		}
	}
	// Plain columns recorded alongside.
	if len(s.Columns) != 1 || s.Columns[0] != "b" {
		t.Errorf("columns = %v", s.Columns)
	}
}

func TestParseBareCountStarStaysLegacy(t *testing.T) {
	s := MustParse("SELECT COUNT(*) FROM t").(*Select)
	if !s.CountStar || s.HasAggregates() {
		t.Errorf("parsed %+v", s)
	}
	// COUNT(*) with GROUP BY is not the legacy form.
	s = MustParse("SELECT b, COUNT(*) FROM t GROUP BY b").(*Select)
	if s.CountStar || !s.HasAggregates() {
		t.Errorf("parsed %+v", s)
	}
}

func TestAggregateNamesAsColumns(t *testing.T) {
	// MIN etc. without parentheses are ordinary column names.
	s := MustParse("SELECT min, count FROM t WHERE max = 3").(*Select)
	if s.HasAggregates() || len(s.Columns) != 2 {
		t.Errorf("parsed %+v", s)
	}
}

func TestAggregateStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT b, COUNT(*) FROM t GROUP BY b",
		"SELECT MIN(a), MAX(a) FROM t WHERE b = 1",
		"SELECT b, AVG(a) FROM t GROUP BY b ORDER BY b DESC LIMIT 3",
		"SELECT SUM(a) FROM t",
	}
	for _, q := range queries {
		s1 := MustParse(q).String()
		s2 := MustParse(s1).String()
		if s1 != s2 {
			t.Errorf("round trip: %q -> %q -> %q", q, s1, s2)
		}
	}
}

func TestReferencedColumnsWithAggregates(t *testing.T) {
	s := MustParse("SELECT b, MIN(a) FROM t WHERE c = 1 GROUP BY b").(*Select)
	got := strings.Join(s.ReferencedColumns(), ",")
	if got != "b,a,c" {
		t.Errorf("ReferencedColumns = %q", got)
	}
}

func TestParseInAndDistinct(t *testing.T) {
	s := MustParse("SELECT DISTINCT a FROM t WHERE b IN (3, 1, 2, 2)").(*Select)
	if !s.Distinct {
		t.Error("DISTINCT not parsed")
	}
	c := s.Where.Conjuncts[0]
	if c.Op != OpIn || len(c.Values) != 3 {
		t.Fatalf("IN conjunct = %+v", c)
	}
	// Sorted and deduplicated.
	for i, want := range []int64{1, 2, 3} {
		if c.Values[i].Int != want {
			t.Errorf("IN value %d = %v", i, c.Values[i])
		}
	}
	// Round trip.
	s1 := s.String()
	s2 := MustParse(s1).String()
	if s1 != s2 {
		t.Errorf("round trip %q -> %q", s1, s2)
	}
	if s1 != "SELECT DISTINCT a FROM t WHERE b IN (1, 2, 3)" {
		t.Errorf("rendered %q", s1)
	}
}
