package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators: ( ) , * = < <= > >=
)

type token struct {
	kind tokenKind
	text string // identifier (original case), number text, string payload, or symbol
	pos  int    // byte offset in the input, for error messages
}

// lexer produces tokens from a SQL string.
type lexer struct {
	input string
	pos   int
}

func newLexer(input string) *lexer { return &lexer{input: input} }

// errorf builds a positioned lex/parse error.
func (l *lexer) errorf(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// Line comments: -- to end of line.
		if c == '-' && l.pos+1 < len(l.input) && l.input[l.pos+1] == '-' {
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.input[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.input) && l.input[l.pos+1] >= '0' && l.input[l.pos+1] <= '9':
		l.pos++ // first digit or sign
		for l.pos < len(l.input) && l.input[l.pos] >= '0' && l.input[l.pos] <= '9' {
			l.pos++
		}
		return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.input) {
				return token{}, l.errorf(start, "unterminated string literal")
			}
			ch := l.input[l.pos]
			if ch == '\'' {
				// '' is an escaped quote.
				if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(ch)
			l.pos++
		}
	case c == '<' || c == '>':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokSymbol, text: l.input[start:l.pos], pos: start}, nil
	case c == '(' || c == ')' || c == ',' || c == '*' || c == '=' || c == ';':
		l.pos++
		return token{kind: tokSymbol, text: l.input[start:l.pos], pos: start}, nil
	default:
		return token{}, l.errorf(start, "unexpected character %q", rune(c))
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80 && unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
