package sql

import "testing"

// FuzzParse asserts the parser never panics and that everything it
// accepts renders back to SQL that parses to the same rendering (a
// fixed point). Run with `go test -fuzz=FuzzParse ./internal/sql` to
// explore beyond the seed corpus.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT DISTINCT a, b FROM t WHERE a = 1 AND b IN (1, 2) ORDER BY a DESC LIMIT 5",
		"SELECT COUNT(*) FROM t WHERE s = 'o''brien'",
		"SELECT g, SUM(v) FROM t GROUP BY g",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (-2, '')",
		"UPDATE t SET a = 1 WHERE b BETWEEN 2 AND 3",
		"DELETE FROM t WHERE a >= -9223372036854775808",
		"CREATE TABLE t (a INT, b STRING)",
		"CREATE INDEX ON t (a, b)",
		"DROP INDEX I(a,b) ON t",
		"EXPLAIN SELECT a FROM t",
		"SELECT a FROM t -- comment\nWHERE a = 1;",
		"", "(", "'", "SELECT", "--", "\x00\xff", "SELECT a FROM t WHERE",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		first := stmt.String()
		again, err := Parse(first)
		if err != nil {
			t.Fatalf("rendered SQL %q (from %q) does not re-parse: %v", first, input, err)
		}
		if second := again.String(); second != first {
			t.Fatalf("rendering not a fixed point: %q -> %q", first, second)
		}
	})
}
