// Package sql implements the engine's SQL front end: a lexer, a
// recursive-descent parser, and the AST the planner consumes. The dialect
// is the subset the paper's workloads and the design advisor need:
// single-table SELECT with conjunctive comparison predicates, INSERT,
// UPDATE, DELETE, and the DDL to create tables and indexes.
package sql

import (
	"fmt"
	"strings"

	"dyndesign/internal/types"
)

// Statement is the interface implemented by every parsed statement.
type Statement interface {
	// String renders the statement back to SQL.
	String() string
	stmtNode()
}

// CompareOp is a comparison operator in a predicate.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota // =
	OpLt                  // <
	OpLe                  // <=
	OpGt                  // >
	OpGe                  // >=
	OpIn                  // IN (v1, v2, ...)
)

// String returns the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpIn:
		return "IN"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Comparison is one "column op literal" predicate term.
type Comparison struct {
	Column string
	Op     CompareOp
	Value  types.Value
	// Values holds the literal list of an IN comparison (Op == OpIn);
	// Value is unused then. The list is sorted and deduplicated by the
	// parser.
	Values []types.Value
}

// String renders the comparison as SQL.
func (c Comparison) String() string {
	if c.Op == OpIn {
		parts := make([]string, len(c.Values))
		for i, v := range c.Values {
			parts[i] = v.String()
		}
		return fmt.Sprintf("%s IN (%s)", c.Column, strings.Join(parts, ", "))
	}
	return fmt.Sprintf("%s %s %s", c.Column, c.Op, c.Value)
}

// Where is a conjunction of comparisons (the only boolean structure the
// dialect supports; it is all index selection needs).
type Where struct {
	Conjuncts []Comparison
}

// String renders the conjunction as SQL.
func (w *Where) String() string {
	parts := make([]string, len(w.Conjuncts))
	for i, c := range w.Conjuncts {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}

// OrderBy is an ORDER BY clause over a single column.
type OrderBy struct {
	Column string
	Desc   bool
}

// AggFunc enumerates the aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	AggCount AggFunc = iota // COUNT(col) or COUNT(*)
	AggMin
	AggMax
	AggSum
	AggAvg
)

// String returns the SQL name of the function.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("AGG(%d)", int(f))
	}
}

// AggExpr is one aggregate in a select list. An empty Column means
// COUNT(*).
type AggExpr struct {
	Func   AggFunc
	Column string
}

// String renders the aggregate as SQL.
func (a AggExpr) String() string {
	col := a.Column
	if col == "" {
		col = "*"
	}
	return fmt.Sprintf("%s(%s)", a.Func, col)
}

// SelectItem is one entry of a select list, either a plain column or an
// aggregate, preserving the order written.
type SelectItem struct {
	IsAgg bool
	Col   string  // when !IsAgg
	Agg   AggExpr // when IsAgg
}

// String renders the item as SQL.
func (it SelectItem) String() string {
	if it.IsAgg {
		return it.Agg.String()
	}
	return it.Col
}

// Select is a single-table SELECT statement.
type Select struct {
	// Columns lists the plain projected column names in select-list
	// order; empty means '*' when Items is also empty.
	Columns []string
	// CountStar is true for the bare "SELECT COUNT(*) FROM ..." form
	// without GROUP BY; Columns and Items are empty then.
	CountStar bool
	// Items is the full select list in written order when the query
	// uses aggregates (other than the bare CountStar form); it
	// interleaves plain columns and aggregates.
	Items []SelectItem
	// Distinct is true for SELECT DISTINCT; duplicate result rows are
	// removed after projection.
	Distinct bool
	// GroupBy names the grouping column; empty means no GROUP BY.
	GroupBy string
	Table   string
	Where   *Where   // nil when absent
	Order   *OrderBy // nil when absent
	// Limit is the row limit; negative means no limit.
	Limit int64
}

// Aggregates returns the aggregate items in select-list order.
func (s *Select) Aggregates() []AggExpr {
	var out []AggExpr
	for _, it := range s.Items {
		if it.IsAgg {
			out = append(out, it.Agg)
		}
	}
	return out
}

// HasAggregates reports whether the query computes aggregates beyond the
// bare COUNT(*) form.
func (s *Select) HasAggregates() bool { return len(s.Items) > 0 }

func (*Select) stmtNode() {}

// String renders the statement as SQL.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	switch {
	case s.CountStar:
		b.WriteString("COUNT(*)")
	case len(s.Items) > 0:
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.String())
		}
	case len(s.Columns) == 0:
		b.WriteString("*")
	default:
		b.WriteString(strings.Join(s.Columns, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(s.Table)
	if s.Where != nil && len(s.Where.Conjuncts) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if s.GroupBy != "" {
		b.WriteString(" GROUP BY ")
		b.WriteString(s.GroupBy)
	}
	if s.Order != nil {
		b.WriteString(" ORDER BY ")
		b.WriteString(s.Order.Column)
		if s.Order.Desc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// ReferencedColumns returns the distinct column names the statement
// touches (projection, predicates, ordering), lower-cased. The planner
// uses this to decide whether an index covers the statement.
func (s *Select) ReferencedColumns() []string {
	set := make(map[string]struct{})
	var out []string
	add := func(name string) {
		l := strings.ToLower(name)
		if _, ok := set[l]; !ok {
			set[l] = struct{}{}
			out = append(out, l)
		}
	}
	for _, c := range s.Columns {
		add(c)
	}
	for _, it := range s.Items {
		if it.IsAgg && it.Agg.Column != "" {
			add(it.Agg.Column)
		}
	}
	if s.GroupBy != "" {
		add(s.GroupBy)
	}
	if s.Where != nil {
		for _, c := range s.Where.Conjuncts {
			add(c.Column)
		}
	}
	if s.Order != nil {
		add(s.Order.Column)
	}
	return out
}

// Insert is an INSERT statement with inline VALUES.
type Insert struct {
	Table string
	// Columns optionally names the target columns; empty means schema
	// order.
	Columns []string
	Rows    []types.Row
}

func (*Insert) stmtNode() {}

// String renders the statement as SQL.
func (s *Insert) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Columns, ", "))
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for i, r := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.String())
	}
	return b.String()
}

// Assignment is one "column = literal" in an UPDATE SET list.
type Assignment struct {
	Column string
	Value  types.Value
}

// Update is an UPDATE statement.
type Update struct {
	Table string
	Set   []Assignment
	Where *Where // nil when absent
}

func (*Update) stmtNode() {}

// String renders the statement as SQL.
func (s *Update) String() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	b.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", a.Column, a.Value)
	}
	if s.Where != nil && len(s.Where.Conjuncts) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	return b.String()
}

// Delete is a DELETE statement.
type Delete struct {
	Table string
	Where *Where // nil when absent
}

func (*Delete) stmtNode() {}

// String renders the statement as SQL.
func (s *Delete) String() string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(s.Table)
	if s.Where != nil && len(s.Where.Conjuncts) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	return b.String()
}

// Explain wraps a SELECT whose plan should be shown instead of executed.
type Explain struct {
	Query *Select
}

func (*Explain) stmtNode() {}

// String renders the statement as SQL.
func (s *Explain) String() string { return "EXPLAIN " + s.Query.String() }

// ColumnDef is one column in a CREATE TABLE.
type ColumnDef struct {
	Name string
	Kind types.Kind
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Table   string
	Columns []ColumnDef
}

func (*CreateTable) stmtNode() {}

// String renders the statement as SQL.
func (s *CreateTable) String() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(s.Table)
	b.WriteString(" (")
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteString(")")
	return b.String()
}

// CreateIndex is a CREATE INDEX statement. The index's canonical name is
// derived from its columns (catalog.IndexDef); an explicit name in the
// SQL is accepted and ignored in favor of the canonical one.
type CreateIndex struct {
	Table   string
	Columns []string
}

func (*CreateIndex) stmtNode() {}

// String renders the statement as SQL.
func (s *CreateIndex) String() string {
	return fmt.Sprintf("CREATE INDEX ON %s (%s)", s.Table, strings.Join(s.Columns, ", "))
}

// DropTable is a DROP TABLE statement.
type DropTable struct {
	Table string
}

func (*DropTable) stmtNode() {}

// String renders the statement as SQL.
func (s *DropTable) String() string { return "DROP TABLE " + s.Table }

// DropIndex is a DROP INDEX statement using the canonical index name.
type DropIndex struct {
	Table string
	Name  string
}

func (*DropIndex) stmtNode() {}

// String renders the statement as SQL.
func (s *DropIndex) String() string {
	return fmt.Sprintf("DROP INDEX %s ON %s", s.Name, s.Table)
}
