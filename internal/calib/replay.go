package calib

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"dyndesign/internal/catalog"
	"dyndesign/internal/core"
	"dyndesign/internal/engine"
	"dyndesign/internal/sql"
	"dyndesign/internal/workload"
)

// Estimator produces the what-if EXEC estimate for one statement under
// one configuration — in practice advisor.StatementCost, the same
// primitive whose memoized values justified the recommendation.
type Estimator func(workload.Statement, core.Config) (float64, error)

// Target identifies the engine-side world a replay runs against: the
// live database, the tuned table, and the candidate structures whose
// bit positions define configurations.
type Target struct {
	DB    *engine.Database
	Table string
	// Structures maps configuration bit i to Structures[i], exactly as
	// in the advisor's design space.
	Structures []catalog.IndexDef
}

// Item is one statement to calibrate plus the configuration the
// recommendation put in effect for it.
type Item struct {
	Stmt   workload.Statement
	Config core.Config
}

// Options bounds a replay run.
type Options struct {
	// Samples caps how many statements are actually replayed; <= 0
	// replays every eligible statement. Sampling is deterministic in
	// Seed.
	Samples int
	// Seed drives the sampling permutation.
	Seed int64
}

// RunReport is the outcome of one replay run: the paired samples plus
// the accounting a monitor or an operator needs to judge coverage.
type RunReport struct {
	// Samples are the paired estimate/measurement observations.
	Samples []Sample `json:"samples"`
	// Replayed is len(Samples) plus Errors — the statements executed.
	Replayed int `json:"replayed"`
	// SkippedDML counts statements excluded because replaying them
	// would mutate the database (INSERT/UPDATE/DELETE); calibration
	// reads, it never writes rows.
	SkippedDML int `json:"skipped_dml"`
	// Errors counts statements whose measurement or estimation failed.
	Errors int `json:"errors"`
	// Transitions is the number of index creates+drops performed to put
	// sampled statements under their recommended configurations.
	Transitions int `json:"transitions"`
	// Wall is the elapsed wall-clock time of the run.
	Wall time.Duration `json:"wall_ns"`
}

// MedianAbsRatio is the exact median of the run's absolute error
// ratios max(r, 1/r), or 0 with no samples. Unlike the monitor's
// streaming quantiles this is computed from the raw samples, so tests
// and thresholds can pin it without histogram granularity.
func (r *RunReport) MedianAbsRatio() float64 {
	if r == nil || len(r.Samples) == 0 {
		return 0
	}
	abs := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		abs[i] = s.absRatio()
	}
	sort.Float64s(abs)
	if n := len(abs); n%2 == 0 {
		return (abs[n/2-1] + abs[n/2]) / 2
	}
	return abs[len(abs)/2]
}

// MeanSignedLog2 is the run's mean signed error in doublings
// (positive: the model underestimates), or 0 with no samples.
func (r *RunReport) MeanSignedLog2() float64 {
	if r == nil || len(r.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range r.Samples {
		sum += s.signedLog2()
	}
	return sum / float64(len(r.Samples))
}

// MeanAbsLog2 is the run's mean absolute error in doublings — the
// magnitude aggregate that moves even when only a minority of sampled
// statement classes miscalibrate (the median is deliberately robust to
// that; this is deliberately not).
func (r *RunReport) MeanAbsLog2() float64 {
	if r == nil || len(r.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range r.Samples {
		sum += math.Abs(s.signedLog2())
	}
	return sum / float64(len(r.Samples))
}

// ClassOf buckets a statement for per-class calibration stats: the
// statement kind, with the first predicate column for SELECTs (the
// paper's workloads are single-column point queries, so this recovers
// the mix column).
func ClassOf(s workload.Statement) string {
	switch st := s.Stmt.(type) {
	case *sql.Select:
		if st.Where != nil && len(st.Where.Conjuncts) > 0 {
			return "select(" + st.Where.Conjuncts[0].Column + ")"
		}
		return "select"
	case *sql.Insert:
		return "insert"
	case *sql.Update:
		return "update"
	case *sql.Delete:
		return "delete"
	default:
		return "other"
	}
}

// Run replays a deterministic sample of the eligible (SELECT-only)
// items against the live engine: for each sampled statement it
// reconciles the table's real index set to the statement's
// configuration, measures the statement's own logical page accesses
// via the scoped engine.MeasureStmt delta, and pairs that with the
// estimator's what-if cost. The original index set is restored before
// returning, so a run is invisible to everything but the access
// counter. Sampled items are replayed grouped by configuration to
// minimize index churn.
//
// Indexes present on the table but outside Structures are an error:
// the replay could not restore a world it cannot name.
func Run(t Target, items []Item, est Estimator, opts Options) (rep *RunReport, err error) {
	rep = &RunReport{}
	start := time.Now()
	defer func() { rep.Wall = time.Since(start) }()

	eligible := make([]int, 0, len(items))
	for i, it := range items {
		if _, ok := it.Stmt.Stmt.(*sql.Select); ok {
			eligible = append(eligible, i)
		} else {
			rep.SkippedDML++
		}
	}
	if opts.Samples > 0 && len(eligible) > opts.Samples {
		rng := rand.New(rand.NewSource(opts.Seed))
		rng.Shuffle(len(eligible), func(i, j int) {
			eligible[i], eligible[j] = eligible[j], eligible[i]
		})
		eligible = eligible[:opts.Samples]
	}
	if len(eligible) == 0 {
		return rep, nil
	}
	// Group by configuration (ties broken by workload order) so the
	// reconciler builds each index at most once per run.
	sort.Slice(eligible, func(a, b int) bool {
		ca, cb := items[eligible[a]].Config, items[eligible[b]].Config
		if ca != cb {
			return ca < cb
		}
		return eligible[a] < eligible[b]
	})

	bitOf := make(map[string]int, len(t.Structures))
	for i, def := range t.Structures {
		bitOf[def.Name()] = i
	}
	names, err := t.DB.IndexNames(t.Table)
	if err != nil {
		return rep, err
	}
	var original core.Config
	for _, n := range names {
		bit, ok := bitOf[n]
		if !ok {
			return rep, fmt.Errorf("calib: table has index %s outside the design space", n)
		}
		original = original.With(bit)
	}

	current := original
	reconcile := func(to core.Config) error {
		if to == current {
			return nil
		}
		added, removed := current.Diff(to)
		for _, s := range removed {
			def := t.Structures[s]
			if _, err := t.DB.Exec(fmt.Sprintf("DROP INDEX %s ON %s", def.Name(), def.Table)); err != nil {
				return fmt.Errorf("calib: dropping %s: %w", def.Name(), err)
			}
			rep.Transitions++
		}
		for _, s := range added {
			def := t.Structures[s]
			if _, err := t.DB.Exec(fmt.Sprintf("CREATE INDEX ON %s (%s)",
				def.Table, strings.Join(def.Columns, ", "))); err != nil {
				return fmt.Errorf("calib: creating %s: %w", def.Name(), err)
			}
			rep.Transitions++
		}
		current = to
		return nil
	}
	// Restore the pre-run index set whatever happens; a restore failure
	// surfaces only when the run itself succeeded.
	defer func() {
		if rerr := reconcile(original); rerr != nil && err == nil {
			err = fmt.Errorf("calib: restoring original index set: %w", rerr)
		}
	}()

	for _, i := range eligible {
		it := items[i]
		if err := reconcile(it.Config); err != nil {
			return rep, err
		}
		estimated, eerr := est(it.Stmt, it.Config)
		if eerr != nil {
			rep.Replayed++
			rep.Errors++
			continue
		}
		res, delta, merr := t.DB.MeasureStmt(it.Stmt.Stmt)
		rep.Replayed++
		if merr != nil {
			rep.Errors++
			continue
		}
		structure := "heap"
		if res != nil && res.Plan != nil && res.Plan.Access.Index != nil {
			structure = res.Plan.Access.Index.Def.Name()
		}
		rep.Samples = append(rep.Samples, Sample{
			Class:     ClassOf(it.Stmt),
			Structure: structure,
			Estimated: estimated,
			Measured:  float64(delta.Total()),
		})
	}
	return rep, nil
}
