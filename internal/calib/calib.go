// Package calib continuously measures how well the advisor's what-if
// cost model tracks the engine's ground truth. It replays statements
// against the live engine under a given physical design, captures the
// logical page accesses each statement alone performed (the scoped
// engine.MeasureStmt delta), pairs them with the model's EXEC
// estimates, and maintains streaming error statistics: signed error
// per statement class and per access structure, absolute-ratio
// quantiles on a log2-derived histogram, and an error trend over
// recent runs. It is the measurement substrate the regret-safe bandit
// mode plugs into — before an online policy can hedge against model
// error, the error has to be an always-on observable.
package calib

import (
	"math"
	"sort"
	"sync"
)

// clampPages floors a page count at one page for ratio purposes: both
// the engine counter and the model charge at least one page for any
// statement that touches data, and a zero on either side would turn
// the ratio into an infinity that says "degenerate sample", not
// "miscalibrated model".
func clampPages(v float64) float64 {
	if v < 1 || math.IsNaN(v) {
		return 1
	}
	return v
}

// Sample is one paired observation: what the model predicted for a
// statement under a configuration, and what the engine measured when
// the statement actually ran under that configuration.
type Sample struct {
	// Class buckets the statement for per-class error stats; the
	// replayer uses the statement kind plus the queried column (e.g.
	// "select(a)"), matching the paper's single-column query mixes.
	Class string `json:"class"`
	// Structure names the access structure the measured plan used
	// ("heap" for a heap scan, the index name otherwise).
	Structure string `json:"structure"`
	// Estimated is the what-if EXEC estimate in pages.
	Estimated float64 `json:"estimated"`
	// Measured is the engine's logical page-access delta.
	Measured float64 `json:"measured"`
}

// signedLog2 is the sample's signed error in doublings:
// log2(measured/estimated) after page clamping. Positive means the
// model underestimates; negative means it overestimates.
func (s Sample) signedLog2() float64 {
	return math.Log2(clampPages(s.Measured) / clampPages(s.Estimated))
}

// absRatio is the symmetric error magnitude max(r, 1/r) >= 1 where
// r = measured/estimated; 1 is a perfect estimate.
func (s Sample) absRatio() float64 {
	r := clampPages(s.Measured) / clampPages(s.Estimated)
	if r < 1 {
		return 1 / r
	}
	return r
}

// ratioBuckets is the resolution of the absolute-ratio histogram:
// quarter-log2 steps (the obs.Aggregator's log2 bucketing at 4×
// resolution), so bucket i covers [2^(i/4), 2^((i+1)/4)). 64 buckets
// reach ratios of 2^16 — beyond that everything is equally broken.
const ratioBuckets = 64

// ratioHist is a streaming histogram over absolute error ratios.
type ratioHist struct {
	count   int64
	buckets [ratioBuckets]int64
	max     float64
}

func ratioBucket(r float64) int {
	if r < 1 {
		r = 1
	}
	i := int(4 * math.Log2(r))
	if i < 0 {
		i = 0
	}
	if i >= ratioBuckets {
		i = ratioBuckets - 1
	}
	return i
}

func (h *ratioHist) observe(r float64) {
	h.count++
	h.buckets[ratioBucket(r)]++
	if r > h.max {
		h.max = r
	}
}

// quantile returns the q-quantile (0 < q <= 1) of the observed ratios,
// interpolated geometrically within the containing bucket; 0 with no
// observations. The answer is exact to within one quarter-log2 step.
func (h *ratioHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := q * float64(h.count)
	cum := 0.0
	for i, b := range h.buckets {
		if b == 0 {
			continue
		}
		next := cum + float64(b)
		if next >= target {
			frac := (target - cum) / float64(b)
			return math.Exp2((float64(i) + frac) / 4)
		}
		cum = next
	}
	return h.max
}

// groupStat is the streaming state behind one per-class or
// per-structure entry.
type groupStat struct {
	samples    int64
	sumSigned  float64
	sumAbsLog2 float64
	hist       ratioHist
}

func (g *groupStat) observe(s Sample) {
	g.samples++
	sl := s.signedLog2()
	g.sumSigned += sl
	g.sumAbsLog2 += math.Abs(sl)
	g.hist.observe(s.absRatio())
}

// GroupStats is the exported error summary of one statement class or
// one access structure.
type GroupStats struct {
	// Samples is the number of paired observations.
	Samples int64 `json:"samples"`
	// MeanSignedLog2 is the mean signed error in doublings — the bias:
	// positive when the model underestimates this group.
	MeanSignedLog2 float64 `json:"mean_signed_log2"`
	// MedianAbsRatio is the median of max(r, 1/r).
	MedianAbsRatio float64 `json:"median_abs_ratio"`
	// P90AbsRatio is the 90th percentile of max(r, 1/r).
	P90AbsRatio float64 `json:"p90_abs_ratio"`
}

func (g *groupStat) export() GroupStats {
	return GroupStats{
		Samples:        g.samples,
		MeanSignedLog2: g.sumSigned / float64(g.samples),
		MedianAbsRatio: g.hist.quantile(0.5),
		P90AbsRatio:    g.hist.quantile(0.9),
	}
}

// trendRuns bounds the per-run history the drift trend is computed
// over; older run summaries are discarded.
const trendRuns = 64

// runPoint is the retained summary of one calibration run.
type runPoint struct {
	medianAbsLog2 float64
	samples       int
}

// Monitor accumulates calibration samples across runs. A nil Monitor
// drops every call, so observation sites stay unconditional — the
// disabled state adds no work and no allocations to the paths that
// would feed it. Safe for concurrent use.
type Monitor struct {
	mu           sync.Mutex
	samples      int64
	skippedDML   int64
	runs         int64
	sumSigned    float64
	hist         ratioHist
	perClass     map[string]*groupStat
	perStructure map[string]*groupStat
	recent       []runPoint // ring of the last trendRuns run summaries
}

// NewMonitor builds an empty calibration monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		perClass:     make(map[string]*groupStat),
		perStructure: make(map[string]*groupStat),
	}
}

// Observe folds one paired sample into the streaming statistics.
func (m *Monitor) Observe(s Sample) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.observeLocked(s)
	m.mu.Unlock()
}

func (m *Monitor) observeLocked(s Sample) {
	m.samples++
	m.sumSigned += s.signedLog2()
	m.hist.observe(s.absRatio())
	groupObserve(m.perClass, s.Class, s)
	groupObserve(m.perStructure, s.Structure, s)
}

func groupObserve(byKey map[string]*groupStat, key string, s Sample) {
	if key == "" {
		return
	}
	g := byKey[key]
	if g == nil {
		g = &groupStat{}
		byKey[key] = g
	}
	g.observe(s)
}

// ObserveRun folds a whole replay run into the monitor: every sample,
// the skipped-DML count, and one entry in the trend ring.
func (m *Monitor) ObserveRun(r *RunReport) {
	if m == nil || r == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range r.Samples {
		m.observeLocked(s)
	}
	m.skippedDML += int64(r.SkippedDML)
	m.runs++
	if len(r.Samples) > 0 {
		abs := make([]float64, len(r.Samples))
		for i, s := range r.Samples {
			abs[i] = math.Abs(s.signedLog2())
		}
		sort.Float64s(abs)
		m.recent = append(m.recent, runPoint{
			medianAbsLog2: abs[len(abs)/2],
			samples:       len(r.Samples),
		})
		if len(m.recent) > trendRuns {
			m.recent = m.recent[len(m.recent)-trendRuns:]
		}
	}
}

// Report is the exported calibration state, JSON-shaped for the
// advisord /calibration endpoint and the experiment report.
type Report struct {
	// Samples is the total paired observations across all runs.
	Samples int64 `json:"samples"`
	// Runs is the number of replay runs folded in.
	Runs int64 `json:"runs"`
	// SkippedDML counts workload statements calibration refused to
	// replay because executing them would mutate the database.
	SkippedDML int64 `json:"skipped_dml"`
	// MeanSignedLog2 is the overall bias in doublings (positive:
	// the model underestimates).
	MeanSignedLog2 float64 `json:"mean_signed_log2"`
	// MedianAbsRatio / P90AbsRatio / MaxAbsRatio summarize the
	// distribution of max(r, 1/r); 1 is perfect.
	MedianAbsRatio float64 `json:"median_abs_ratio"`
	P90AbsRatio    float64 `json:"p90_abs_ratio"`
	MaxAbsRatio    float64 `json:"max_abs_ratio"`
	// Trend is the drift signal over recent runs: mean per-run median
	// absolute log2 error of the newer half of the run history minus
	// the older half. Positive means calibration is getting worse —
	// typically statistics going stale under a shifting table.
	Trend float64 `json:"trend"`
	// PerClass and PerStructure break the error down by statement
	// class and by the access structure the measured plan used.
	PerClass     map[string]GroupStats `json:"per_class,omitempty"`
	PerStructure map[string]GroupStats `json:"per_structure,omitempty"`
}

// Report snapshots the streaming statistics. A nil Monitor reports the
// zero Report.
func (m *Monitor) Report() Report {
	if m == nil {
		return Report{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := Report{
		Samples:    m.samples,
		Runs:       m.runs,
		SkippedDML: m.skippedDML,
	}
	if m.samples > 0 {
		rep.MeanSignedLog2 = m.sumSigned / float64(m.samples)
		rep.MedianAbsRatio = m.hist.quantile(0.5)
		rep.P90AbsRatio = m.hist.quantile(0.9)
		rep.MaxAbsRatio = m.hist.max
	}
	rep.Trend = m.trendLocked()
	if len(m.perClass) > 0 {
		rep.PerClass = make(map[string]GroupStats, len(m.perClass))
		for k, g := range m.perClass {
			rep.PerClass[k] = g.export()
		}
	}
	if len(m.perStructure) > 0 {
		rep.PerStructure = make(map[string]GroupStats, len(m.perStructure))
		for k, g := range m.perStructure {
			rep.PerStructure[k] = g.export()
		}
	}
	return rep
}

// trendLocked compares the newer half of the run history against the
// older half; it needs at least two runs on each side to say anything.
func (m *Monitor) trendLocked() float64 {
	n := len(m.recent)
	if n < 4 {
		return 0
	}
	half := n / 2
	older, newer := 0.0, 0.0
	for i, p := range m.recent {
		if i < half {
			older += p.medianAbsLog2
		} else {
			newer += p.medianAbsLog2
		}
	}
	return newer/float64(n-half) - older/float64(half)
}
