package calib_test

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"dyndesign/internal/advisor"
	"dyndesign/internal/calib"
	"dyndesign/internal/candidates"
	"dyndesign/internal/core"
	"dyndesign/internal/engine"
	"dyndesign/internal/experiments"
	"dyndesign/internal/workload"
)

// freshMedianCeiling pins how well the freshly-analyzed cost model must
// track the engine on the paper fixture: the median absolute error
// ratio of a calibration run stays under 1.5x. Empirically the fixture
// sits well below this (point seeks and heap scans are both modeled
// from the same histogram the engine executes with); the ceiling
// leaves room for histogram-boundary jitter without letting a real
// regression through.
const freshMedianCeiling = 1.5

func buildFixture(t *testing.T, rows int64) (*engine.Database, *advisor.Advisor, *workload.Workload) {
	t.Helper()
	db, err := experiments.SetupPaperDatabase(experiments.Scale{Rows: rows, BlockSize: 1, Seed: 1})
	if err != nil {
		t.Fatalf("SetupPaperDatabase: %v", err)
	}
	structures := candidates.PaperStructures("t")
	adv, err := advisor.New(db, advisor.DesignSpace{
		Table:      "t",
		Structures: structures,
		Configs:    advisor.SingleIndexConfigs(len(structures)),
	})
	if err != nil {
		t.Fatalf("advisor.New: %v", err)
	}
	w, err := workload.GeneratePhased("calib", workload.PaperMixes(rows),
		[]workload.PhaseSpec{{Mix: "A", Count: 20}, {Mix: "C", Count: 20}}, 3)
	if err != nil {
		t.Fatalf("GeneratePhased: %v", err)
	}
	return db, adv, w
}

// TestCalibrationFreshVsStale is the acceptance fixture: with fresh
// statistics the median absolute error ratio is bounded by the pinned
// threshold, and after the table quadruples behind the model's back the
// reported error is strictly larger — the monitor detects
// miscalibration instead of averaging it away.
func TestCalibrationFreshVsStale(t *testing.T) {
	const rows = 10000
	db, adv, w := buildFixture(t, rows)

	mon := calib.NewMonitor()
	rec, err := adv.Recommend(w, advisor.Options{
		K:         2,
		Calibrate: &advisor.CalibrateOptions{Samples: 24, Seed: 7, Monitor: mon},
	})
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	fresh := rec.Calibration
	if fresh == nil {
		t.Fatal("Options.Calibrate set but Recommendation.Calibration is nil")
	}
	if len(fresh.Samples) == 0 {
		t.Fatal("calibration run produced no samples")
	}
	if fresh.Errors != 0 {
		t.Fatalf("calibration run had %d errors", fresh.Errors)
	}
	freshMedian := fresh.MedianAbsRatio()
	if freshMedian > freshMedianCeiling {
		t.Errorf("fresh median abs ratio %.3f exceeds pinned ceiling %.2f", freshMedian, freshMedianCeiling)
	}
	// The run must restore the world it borrowed: the advisor installed
	// indexes only transiently, so the table ends with none.
	names, err := db.IndexNames("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("calibration left indexes behind: %v", names)
	}

	// Stale the statistics: quadruple the table without re-analyzing.
	// The advisor keeps costing against the 10k-row world while the
	// engine executes against 40k rows. Values are scattered (a
	// multiplicative hash, not a cycling counter) so each key's new
	// copies land on many different heap pages — heap scans grow 4x in
	// pages and index seeks fetch many more scattered rows than the
	// stale statistics predict.
	domain := workload.DomainForRows(rows)
	for loaded := int64(0); loaded < 3*rows; loaded += 500 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO t VALUES ")
		for i := 0; i < 500; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			v := ((loaded + int64(i)) * 2654435761) % domain
			fmt.Fprintf(&sb, "(%d, %d, %d, %d)", v, v, v, v)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			t.Fatalf("staling inserts: %v", err)
		}
	}
	stale, err := adv.Calibrate(rec, advisor.CalibrateOptions{Samples: 24, Seed: 7, Monitor: mon})
	if err != nil {
		t.Fatalf("stale Calibrate: %v", err)
	}
	// The median is deliberately robust — here only the heap-scan
	// minority of the sample degrades (covering index seeks are
	// rebuilt by the reconciler and stay cheap) — so the staleness
	// assertion uses the magnitude aggregate, which must strictly and
	// clearly grow. The median must at least not improve.
	freshErr, staleErr := fresh.MeanAbsLog2(), stale.MeanAbsLog2()
	if !(staleErr > freshErr) {
		t.Errorf("staled statistics not detected: fresh mean abs log2 %.3f, stale %.3f",
			freshErr, staleErr)
	}
	if staleErr < 1.5*freshErr {
		t.Errorf("stale error %.3f not clearly above fresh %.3f (want >= 1.5x)", staleErr, freshErr)
	}
	if stale.MedianAbsRatio() < freshMedian {
		t.Errorf("stale median %.3f below fresh median %.3f", stale.MedianAbsRatio(), freshMedian)
	}

	rep := mon.Report()
	if rep.Runs != 2 || rep.Samples != int64(len(fresh.Samples)+len(stale.Samples)) {
		t.Errorf("monitor accounting: runs %d samples %d, want 2 runs, %d samples",
			rep.Runs, rep.Samples, len(fresh.Samples)+len(stale.Samples))
	}
	if len(rep.PerClass) == 0 || len(rep.PerStructure) == 0 {
		t.Errorf("monitor missing breakdowns: classes %v structures %v", rep.PerClass, rep.PerStructure)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report not JSON-marshalable: %v", err)
	}
}

// TestRunSamplingDeterministic pins that sampling is a pure function of
// the seed: two runs over the same items produce identical samples.
func TestRunSamplingDeterministic(t *testing.T) {
	db, adv, w := buildFixture(t, 5000)
	space := adv.Space()
	items := make([]calib.Item, w.Len())
	for i, s := range w.Statements {
		items[i] = calib.Item{Stmt: s, Config: core.ConfigOf(i % 2)}
	}
	target := calib.Target{DB: db, Table: "t", Structures: space.Structures}
	r1, err := calib.Run(target, items, adv.StatementCost, calib.Options{Samples: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := calib.Run(target, items, adv.StatementCost, calib.Options{Samples: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Samples, r2.Samples) {
		t.Errorf("same seed, different samples:\n%v\n%v", r1.Samples, r2.Samples)
	}
	if len(r1.Samples) != 8 {
		t.Errorf("sampled %d statements, want 8", len(r1.Samples))
	}
}

// TestRunSkipsDML pins that calibration never mutates rows: DML items
// are counted, not executed.
func TestRunSkipsDML(t *testing.T) {
	db, adv, _ := buildFixture(t, 2000)
	items := []calib.Item{
		{Stmt: workload.MustStatement("SELECT a FROM t WHERE a = 1"), Config: 0},
		{Stmt: workload.MustStatement("INSERT INTO t VALUES (1, 2, 3, 4)"), Config: 0},
		{Stmt: workload.MustStatement("DELETE FROM t WHERE a = 1"), Config: 0},
	}
	before, _ := db.Exec("SELECT COUNT(*) FROM t")
	rep, err := calib.Run(calib.Target{DB: db, Table: "t", Structures: adv.Space().Structures},
		items, adv.StatementCost, calib.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SkippedDML != 2 || len(rep.Samples) != 1 {
		t.Errorf("skipped %d replayed %d, want 2 skipped and 1 sample", rep.SkippedDML, len(rep.Samples))
	}
	after, _ := db.Exec("SELECT COUNT(*) FROM t")
	if before.Count != after.Count {
		t.Errorf("calibration mutated the table: %d -> %d rows", before.Count, after.Count)
	}
}

// TestMonitorQuantiles checks the quarter-log2 ratio histogram against
// exactly computable inputs: quantiles are within one bucket step.
func TestMonitorQuantiles(t *testing.T) {
	m := calib.NewMonitor()
	// 100 samples with abs ratio exactly 2 (estimated 1, measured 2).
	for i := 0; i < 100; i++ {
		m.Observe(calib.Sample{Class: "select(a)", Structure: "heap", Estimated: 100, Measured: 200})
	}
	rep := m.Report()
	step := math.Exp2(0.25)
	if rep.MedianAbsRatio < 2/step || rep.MedianAbsRatio > 2*step {
		t.Errorf("median %.4f not within a quarter-log2 step of 2", rep.MedianAbsRatio)
	}
	if rep.MaxAbsRatio != 2 {
		t.Errorf("max %.4f, want exactly 2", rep.MaxAbsRatio)
	}
	// Signed error is exactly log2(2) = 1 doubling of underestimate.
	if math.Abs(rep.MeanSignedLog2-1) > 1e-12 {
		t.Errorf("mean signed log2 = %v, want 1", rep.MeanSignedLog2)
	}
	g := rep.PerClass["select(a)"]
	if g.Samples != 100 || math.Abs(g.MeanSignedLog2-1) > 1e-12 {
		t.Errorf("per-class stats wrong: %+v", g)
	}
	// Overestimates are symmetric: ratio 1/2 has the same abs ratio.
	m2 := calib.NewMonitor()
	m2.Observe(calib.Sample{Estimated: 200, Measured: 100})
	if rep2 := m2.Report(); rep2.MaxAbsRatio != 2 || rep2.MeanSignedLog2 != -1 {
		t.Errorf("overestimate handling: %+v", rep2)
	}
}

// TestMonitorTrend pins the drift signal: runs with growing error push
// Trend positive; flat runs keep it at zero.
func TestMonitorTrend(t *testing.T) {
	worsening := calib.NewMonitor()
	for run := 0; run < 8; run++ {
		rep := &calib.RunReport{}
		for i := 0; i < 10; i++ {
			rep.Samples = append(rep.Samples, calib.Sample{
				Estimated: 100,
				Measured:  100 * math.Exp2(float64(run)), // each run doubles the error
			})
		}
		worsening.ObserveRun(rep)
	}
	if tr := worsening.Report().Trend; tr <= 0 {
		t.Errorf("worsening calibration has trend %.3f, want > 0", tr)
	}
	flat := calib.NewMonitor()
	for run := 0; run < 8; run++ {
		rep := &calib.RunReport{}
		for i := 0; i < 10; i++ {
			rep.Samples = append(rep.Samples, calib.Sample{Estimated: 100, Measured: 150})
		}
		flat.ObserveRun(rep)
	}
	if tr := flat.Report().Trend; tr != 0 {
		t.Errorf("flat calibration has trend %.3f, want 0", tr)
	}
}

// TestNilMonitorZeroAlloc pins the disabled-state contract: a nil
// monitor drops observations with zero allocations, matching the
// disabled-tracer guarantee the solve hot path relies on.
func TestNilMonitorZeroAlloc(t *testing.T) {
	var m *calib.Monitor
	s := calib.Sample{Class: "select(a)", Structure: "heap", Estimated: 10, Measured: 12}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Observe(s)
		m.ObserveRun(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil monitor allocates %v per run, want 0", allocs)
	}
	if rep := m.Report(); rep.Samples != 0 {
		t.Errorf("nil monitor reports %+v", rep)
	}
}

// TestClassOf pins the statement-class bucketing.
func TestClassOf(t *testing.T) {
	cases := map[string]string{
		"SELECT a FROM t WHERE a = 1":    "select(a)",
		"SELECT COUNT(*) FROM t":         "select",
		"INSERT INTO t VALUES (1,2,3,4)": "insert",
		"UPDATE t SET a = 1 WHERE b = 2": "update",
		"DELETE FROM t WHERE c = 3":      "delete",
	}
	for sqlText, want := range cases {
		if got := calib.ClassOf(workload.MustStatement(sqlText)); got != want {
			t.Errorf("ClassOf(%q) = %q, want %q", sqlText, got, want)
		}
	}
}
