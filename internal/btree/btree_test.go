package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"dyndesign/internal/keyenc"
	"dyndesign/internal/storage"
	"dyndesign/internal/types"
)

func intKey(v int64) []byte { return keyenc.MustEncode(types.NewInt(v)) }

func ridOf(i int) storage.RID {
	return storage.RID{Page: storage.PageID(i / 100), Slot: uint16(i % 100)}
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 || tr.Height() != 1 || tr.NodeCount() != 1 {
		t.Errorf("empty tree: len=%d h=%d nodes=%d", tr.Len(), tr.Height(), tr.NodeCount())
	}
	if tr.First().Valid() {
		t.Error("First() valid on empty tree")
	}
	if tr.Seek(intKey(0)).Valid() {
		t.Error("Seek() valid on empty tree")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertAndSeek(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(intKey(int64(i*2)), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Exact hit.
	it := tr.Seek(intKey(10))
	if !it.Valid() || !bytes.Equal(it.Key(), intKey(10)) {
		t.Error("Seek(10) missed")
	}
	// Between keys: lands on the next one.
	it = tr.Seek(intKey(11))
	if !it.Valid() || !bytes.Equal(it.Key(), intKey(12)) {
		t.Error("Seek(11) should land on 12")
	}
	// Past the end.
	if tr.Seek(intKey(1000)).Valid() {
		t.Error("Seek past end is valid")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertDuplicateEntryRejected(t *testing.T) {
	tr := New(nil)
	if err := tr.Insert(intKey(1), ridOf(0)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(intKey(1), ridOf(0)); err == nil {
		t.Error("duplicate (key, rid) accepted")
	}
	// Same key, different RID is fine.
	if err := tr.Insert(intKey(1), ridOf(1)); err != nil {
		t.Errorf("duplicate key with distinct rid rejected: %v", err)
	}
}

func TestInsertOversizedKeyRejected(t *testing.T) {
	tr := New(nil)
	huge := make([]byte, nodeBudget)
	if err := tr.Insert(huge, ridOf(0)); err == nil {
		t.Error("oversized key accepted")
	}
}

func TestSplitsAndOrdering(t *testing.T) {
	tr := New(nil)
	const n = 20000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, v := range perm {
		if err := tr.Insert(intKey(int64(v)), ridOf(v)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("tree of %d entries did not split (height %d)", n, tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Full in-order walk returns 0..n-1.
	i := 0
	for it := tr.First(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), intKey(int64(i))) {
			t.Fatalf("walk position %d has wrong key", i)
		}
		if it.RID() != ridOf(i) {
			t.Fatalf("walk position %d has wrong rid", i)
		}
		i++
	}
	if i != n {
		t.Fatalf("walk saw %d entries, want %d", i, n)
	}
}

func TestDuplicateKeysOrderedByRID(t *testing.T) {
	tr := New(nil)
	key := intKey(5)
	for i := 9; i >= 0; i-- {
		if err := tr.Insert(key, ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	var rids []storage.RID
	tr.ScanPrefix(key, func(k []byte, rid storage.RID) bool {
		rids = append(rids, rid)
		return true
	})
	if len(rids) != 10 {
		t.Fatalf("prefix scan saw %d duplicates", len(rids))
	}
	for i := 1; i < len(rids); i++ {
		if rids[i-1].Compare(rids[i]) >= 0 {
			t.Error("duplicates not in RID order")
		}
	}
}

func TestScanPrefixComposite(t *testing.T) {
	// Composite (a, b) index: ScanPrefix on a=3 must return exactly the
	// a=3 entries, in b order.
	tr := New(nil)
	id := 0
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 20; b++ {
			k := keyenc.MustEncode(types.NewInt(a), types.NewInt(b))
			if err := tr.Insert(k, ridOf(id)); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	prefix := keyenc.MustEncode(types.NewInt(3))
	var keys [][]byte
	tr.ScanPrefix(prefix, func(k []byte, _ storage.RID) bool {
		keys = append(keys, append([]byte(nil), k...))
		return true
	})
	if len(keys) != 20 {
		t.Fatalf("prefix scan saw %d entries, want 20", len(keys))
	}
	for i, k := range keys {
		vals, err := keyenc.Decode(k)
		if err != nil || vals[0].Int != 3 || vals[1].Int != int64(i) {
			t.Fatalf("prefix scan entry %d = %v (err %v)", i, vals, err)
		}
	}
}

func TestScanRange(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 100; i++ {
		tr.Insert(intKey(int64(i)), ridOf(i))
	}
	var got []int64
	tr.ScanRange(intKey(10), intKey(20), func(k []byte, _ storage.RID) bool {
		vals, _ := keyenc.Decode(k)
		got = append(got, vals[0].Int)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Errorf("range [10,20) = %v", got)
	}
	// Unbounded low.
	count := 0
	tr.ScanRange(nil, intKey(5), func([]byte, storage.RID) bool { count++; return true })
	if count != 5 {
		t.Errorf("range [nil,5) saw %d", count)
	}
	// Unbounded high.
	count = 0
	tr.ScanRange(intKey(95), nil, func([]byte, storage.RID) bool { count++; return true })
	if count != 5 {
		t.Errorf("range [95,nil) saw %d", count)
	}
	// Early stop.
	count = 0
	tr.ScanRange(nil, nil, func([]byte, storage.RID) bool { count++; return count < 7 })
	if count != 7 {
		t.Errorf("early stop saw %d", count)
	}
}

func TestDeleteSimple(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 10; i++ {
		tr.Insert(intKey(int64(i)), ridOf(i))
	}
	found, err := tr.Delete(intKey(5), ridOf(5))
	if err != nil || !found {
		t.Fatalf("Delete(5) = %v, %v", found, err)
	}
	found, err = tr.Delete(intKey(5), ridOf(5))
	if err != nil || found {
		t.Fatalf("second Delete(5) = %v, %v", found, err)
	}
	if tr.Len() != 9 {
		t.Errorf("Len = %d", tr.Len())
	}
	it := tr.Seek(intKey(5))
	if !it.Valid() || !bytes.Equal(it.Key(), intKey(6)) {
		t.Error("Seek(5) after delete should land on 6")
	}
}

func TestDeleteEverythingCollapsesTree(t *testing.T) {
	tr := New(nil)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := tr.Insert(intKey(int64(i)), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		found, err := tr.Delete(intKey(int64(i)), ridOf(i))
		if err != nil || !found {
			t.Fatalf("Delete(%d) = %v, %v", i, found, err)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	if tr.Height() != 1 {
		t.Errorf("height = %d after deleting all; root did not collapse", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedAgainstSortedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New(nil)
	type entry struct {
		key int64
		rid storage.RID
	}
	var model []entry
	present := make(map[entry]bool)
	for op := 0; op < 30000; op++ {
		if rng.Intn(3) != 0 || len(model) == 0 {
			e := entry{key: int64(rng.Intn(3000)), rid: ridOf(rng.Intn(5000))}
			if present[e] {
				continue
			}
			if err := tr.Insert(intKey(e.key), e.rid); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			model = append(model, e)
			present[e] = true
		} else {
			i := rng.Intn(len(model))
			e := model[i]
			found, err := tr.Delete(intKey(e.key), e.rid)
			if err != nil || !found {
				t.Fatalf("op %d delete %v: %v, %v", op, e, found, err)
			}
			model[i] = model[len(model)-1]
			model = model[:len(model)-1]
			delete(present, e)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(model, func(i, j int) bool {
		if model[i].key != model[j].key {
			return model[i].key < model[j].key
		}
		return model[i].rid.Compare(model[j].rid) < 0
	})
	i := 0
	for it := tr.First(); it.Valid(); it.Next() {
		if i >= len(model) {
			t.Fatal("tree has more entries than model")
		}
		if !bytes.Equal(it.Key(), intKey(model[i].key)) || it.RID() != model[i].rid {
			t.Fatalf("position %d mismatch", i)
		}
		i++
	}
	if i != len(model) {
		t.Fatalf("tree has %d entries, model %d", i, len(model))
	}
}

func TestBulkLoad(t *testing.T) {
	const n = 50000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: intKey(int64(i)), RID: ridOf(i)}
	}
	tr := New(nil)
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Errorf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Spot-check seeks.
	for _, v := range []int64{0, 1, 12345, n - 1} {
		it := tr.Seek(intKey(v))
		if !it.Valid() || !bytes.Equal(it.Key(), intKey(v)) {
			t.Errorf("Seek(%d) missed after bulk load", v)
		}
	}
	// Bulk-loaded tree accepts further inserts and deletes.
	if err := tr.Insert(keyenc.MustEncode(types.NewInt(int64(n+5))), ridOf(n+5)); err != nil {
		t.Fatal(err)
	}
	if found, err := tr.Delete(intKey(100), ridOf(100)); err != nil || !found {
		t.Fatalf("delete after bulk load: %v, %v", found, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	tr := New(nil)
	err := tr.BulkLoad([]Entry{
		{Key: intKey(2), RID: ridOf(0)},
		{Key: intKey(1), RID: ridOf(1)},
	})
	if err == nil {
		t.Error("unsorted bulk load accepted")
	}
	err = tr.BulkLoad([]Entry{
		{Key: intKey(1), RID: ridOf(0)},
		{Key: intKey(1), RID: ridOf(0)},
	})
	if err == nil {
		t.Error("duplicate bulk load accepted")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := New(nil)
	if err := tr.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.First().Valid() {
		t.Error("empty bulk load not empty")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestBulkLoadEquivalentToInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 5000
	entries := make([]Entry, 0, n)
	seen := make(map[int64]bool)
	for len(entries) < n {
		v := int64(rng.Intn(100000))
		if seen[v] {
			continue
		}
		seen[v] = true
		entries = append(entries, Entry{Key: intKey(v), RID: ridOf(int(v))})
	}
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].Key, entries[j].Key) < 0 })

	bulk := New(nil)
	if err := bulk.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	incr := New(nil)
	for _, e := range entries {
		if err := incr.Insert(e.Key, e.RID); err != nil {
			t.Fatal(err)
		}
	}
	itB, itI := bulk.First(), incr.First()
	for itB.Valid() && itI.Valid() {
		if !bytes.Equal(itB.Key(), itI.Key()) || itB.RID() != itI.RID() {
			t.Fatal("bulk and incremental trees disagree")
		}
		itB.Next()
		itI.Next()
	}
	if itB.Valid() != itI.Valid() {
		t.Fatal("bulk and incremental trees have different lengths")
	}
}

func TestStatsChargedOnOperations(t *testing.T) {
	var stats storage.AccessStats
	tr := New(&stats)
	for i := 0; i < 10000; i++ {
		tr.Insert(intKey(int64(i)), ridOf(i))
	}
	stats.Reset()
	it := tr.Seek(intKey(5000))
	if !it.Valid() {
		t.Fatal("seek missed")
	}
	if got := stats.Reads(); got != int64(tr.Height()) {
		t.Errorf("seek charged %d reads, want height %d", got, tr.Height())
	}
	// A full leaf-chain walk charges about LeafCount reads.
	stats.Reset()
	n := 0
	for it := tr.First(); it.Valid(); it.Next() {
		n++
	}
	reads := stats.Reads()
	leaves := tr.LeafCount()
	if reads < leaves || reads > leaves+int64(tr.Height()) {
		t.Errorf("full walk charged %d reads for %d leaves (height %d)", reads, leaves, tr.Height())
	}
}

func TestNodeCountTracksPages(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 30000; i++ {
		tr.Insert(intKey(int64(i)), ridOf(i))
	}
	// Count nodes by direct recursion and compare with the tracked count.
	var rec func(n node) int64
	rec = func(n node) int64 {
		if n.isLeaf() {
			return 1
		}
		b := n.(*branch)
		total := int64(1)
		for _, c := range b.children {
			total += rec(c)
		}
		return total
	}
	walked := rec(tr.root)
	if walked != tr.NodeCount() {
		t.Errorf("NodeCount = %d, walked %d", tr.NodeCount(), walked)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := New(nil)
	for i := 0; i < 200000; i++ {
		if err := tr.Insert(intKey(int64(i)), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() > 4 {
		t.Errorf("height %d for 200k int entries; fanout too small", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New(nil)
	words := []string{"pear", "apple", "fig", "banana", "cherry", "date", "elderberry", "grape"}
	for i, w := range words {
		k := keyenc.MustEncode(types.NewString(w))
		if err := tr.Insert(k, ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([]string(nil), words...)
	sort.Strings(sorted)
	i := 0
	for it := tr.First(); it.Valid(); it.Next() {
		vals, err := keyenc.Decode(it.Key())
		if err != nil || vals[0].Str != sorted[i] {
			t.Fatalf("position %d: %v, %v; want %q", i, vals, err, sorted[i])
		}
		i++
	}
	if i != len(words) {
		t.Fatalf("walked %d entries", i)
	}
}

func TestLargeReverseAndAlternatingInsertions(t *testing.T) {
	for name, order := range map[string]func(i, n int) int64{
		"reverse": func(i, n int) int64 { return int64(n - i) },
		"alternating": func(i, n int) int64 {
			if i%2 == 0 {
				return int64(i)
			}
			return int64(n*2 - i)
		},
	} {
		t.Run(name, func(t *testing.T) {
			tr := New(nil)
			const n = 20000
			for i := 0; i < n; i++ {
				if err := tr.Insert(intKey(order(i, n)), ridOf(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if tr.Len() != n {
				t.Errorf("Len = %d", tr.Len())
			}
		})
	}
}

func TestDeleteRebalanceKeepsSeeksCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	tr := New(nil)
	const n = 30000
	for i := 0; i < n; i++ {
		tr.Insert(intKey(int64(i)), ridOf(i))
	}
	// Delete 90% at random, then verify every remaining key seeks.
	alive := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		alive[i] = true
	}
	perm := rng.Perm(n)
	for _, v := range perm[:n*9/10] {
		found, err := tr.Delete(intKey(int64(v)), ridOf(v))
		if err != nil || !found {
			t.Fatalf("delete %d: %v, %v", v, found, err)
		}
		delete(alive, v)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for v := range alive {
		it := tr.Seek(intKey(int64(v)))
		if !it.Valid() || !bytes.Equal(it.Key(), intKey(int64(v))) {
			t.Fatalf("survivor %d not found", v)
		}
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := New(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(intKey(int64(i)), ridOf(i))
	}
}

func BenchmarkSeek(b *testing.B) {
	tr := New(nil)
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(intKey(int64(i)), ridOf(i))
	}
	keys := make([][]byte, 1024)
	rng := rand.New(rand.NewSource(3))
	for i := range keys {
		keys[i] = intKey(int64(rng.Intn(n)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := tr.Seek(keys[i%len(keys)])
		if !it.Valid() {
			b.Fatal("seek missed")
		}
	}
}

func BenchmarkBulkLoad100k(b *testing.B) {
	const n = 100000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: intKey(int64(i)), RID: ridOf(i)}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := New(nil)
		if err := tr.BulkLoad(entries); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleTree_ScanPrefix() {
	tr := New(nil)
	for b := int64(0); b < 3; b++ {
		k := keyenc.MustEncode(types.NewInt(7), types.NewInt(b))
		tr.Insert(k, storage.RID{Page: 0, Slot: uint16(b)})
	}
	tr.ScanPrefix(keyenc.MustEncode(types.NewInt(7)), func(k []byte, rid storage.RID) bool {
		vals, _ := keyenc.Decode(k)
		fmt.Println(vals[0].Int, vals[1].Int, rid)
		return true
	})
	// Output:
	// 7 0 0:0
	// 7 1 0:1
	// 7 2 0:2
}

func TestEstimatesMatchBulkLoad(t *testing.T) {
	// The estimation helpers must agree with a real bulk load, since the
	// what-if cost model relies on them.
	for _, n := range []int64{1, 100, 5000, 120000} {
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{Key: intKey(int64(i)), RID: ridOf(i)}
		}
		tr := New(nil)
		if err := tr.BulkLoad(entries); err != nil {
			t.Fatal(err)
		}
		keyBytes := len(intKey(0))
		if got, want := EstimateLeafPages(keyBytes, n), tr.LeafCount(); got != want {
			t.Errorf("n=%d: EstimateLeafPages = %d, real %d", n, got, want)
		}
		if got, want := EstimateHeight(keyBytes, n), tr.Height(); got != want {
			t.Errorf("n=%d: EstimateHeight = %d, real %d", n, got, want)
		}
		if got, want := EstimateTotalPages(keyBytes, n), tr.NodeCount(); got != want {
			t.Errorf("n=%d: EstimateTotalPages = %d, real %d", n, got, want)
		}
	}
	if LeafCapacity(9) < 2 || BranchFanout(9) < 2 {
		t.Error("implausible capacities")
	}
	// Degenerate inputs.
	if EstimateLeafPages(9, 0) != 1 || EstimateHeight(9, 0) != 1 {
		t.Error("empty-tree estimates wrong")
	}
	if LeafCapacity(nodeBudget*2) != 1 {
		t.Error("oversized-key capacity not clamped")
	}
}

// TestDeletionBorrowPaths drives deletions against bulk-loaded (90%-full)
// trees so that underflowing nodes must *borrow* from packed siblings
// rather than merge — both at the leaf level and at the branch level.
func TestDeletionBorrowPaths(t *testing.T) {
	const n = 200000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: intKey(int64(i)), RID: ridOf(i)}
	}
	tr := New(nil)
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	// Delete a long contiguous prefix: the leftmost leaves and branches
	// underflow repeatedly against 90%-full right siblings.
	for i := 0; i < 60000; i++ {
		found, err := tr.Delete(intKey(int64(i)), ridOf(i))
		if err != nil || !found {
			t.Fatalf("delete %d: %v, %v", i, found, err)
		}
		if i%20000 == 19999 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletions: %v", i+1, err)
			}
		}
	}
	// Delete a band from the middle too (right-neighbour borrows).
	for i := 100000; i < 130000; i++ {
		found, err := tr.Delete(intKey(int64(i)), ridOf(i))
		if err != nil || !found {
			t.Fatalf("delete %d: %v, %v", i, found, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n-90000 {
		t.Errorf("Len = %d", tr.Len())
	}
	// Every survivor still seekable.
	for _, probe := range []int64{60000, 99999, 130000, 199999} {
		it := tr.Seek(intKey(probe))
		if !it.Valid() || !bytes.Equal(it.Key(), intKey(probe)) {
			t.Errorf("survivor %d not found", probe)
		}
	}
	// And the deleted bands are gone.
	it := tr.Seek(intKey(0))
	if !it.Valid() || !bytes.Equal(it.Key(), intKey(60000)) {
		t.Error("prefix deletion left stragglers")
	}
}

// TestDeletionBorrowFromLeft deletes a contiguous suffix so underflowing
// rightmost nodes borrow from packed left siblings (the opposite
// direction of TestDeletionBorrowPaths).
func TestDeletionBorrowFromLeft(t *testing.T) {
	const n = 200000
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: intKey(int64(i)), RID: ridOf(i)}
	}
	tr := New(nil)
	if err := tr.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	for i := n - 1; i >= n-60000; i-- {
		found, err := tr.Delete(intKey(int64(i)), ridOf(i))
		if err != nil || !found {
			t.Fatalf("delete %d: %v, %v", i, found, err)
		}
		if i%20000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("at %d: %v", i, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree ends exactly at the new maximum.
	it := tr.Seek(intKey(n - 60001))
	if !it.Valid() || !bytes.Equal(it.Key(), intKey(n-60001)) {
		t.Error("new maximum not found")
	}
	it.Next()
	if it.Valid() {
		t.Error("entries past the deleted suffix remain")
	}
}
