// Package btree implements an in-memory B+-tree with byte-encoded
// composite keys and RID payloads. It is the physical structure behind
// every secondary index in the engine.
//
// Although nodes live on the Go heap rather than in disk pages, each node
// has a byte budget equal to a storage page and every node visit charges
// one logical page access to the shared storage.AccessStats. The tree
// therefore has the same shape (fanout, height, leaf count) and the same
// measured cost profile as a paged on-disk B+-tree, which is what the
// physical-design cost model needs (see DESIGN.md §2).
//
// Entries are (key, RID) pairs ordered lexicographically by key and then
// by RID, so duplicate keys are supported and every entry is unique.
package btree

import (
	"bytes"
	"fmt"

	"dyndesign/internal/storage"
)

const (
	// nodeBudget is the payload byte budget of one node; a node that
	// exceeds it after an insert splits.
	nodeBudget = storage.PageSize - 64
	// minBudget is the underflow threshold for non-root nodes; deletion
	// rebalances nodes below it.
	minBudget = nodeBudget / 4
	// leafEntryOverhead approximates per-entry leaf bookkeeping: a 6-byte
	// RID plus slot/offset overhead.
	leafEntryOverhead = 14
	// branchEntryOverhead approximates per-separator branch bookkeeping:
	// a child pointer plus slot/offset overhead.
	branchEntryOverhead = 16
)

// Entry is one index entry: an encoded key and the heap RID it points to.
type Entry struct {
	Key []byte
	RID storage.RID
}

func compareEntry(k1 []byte, r1 storage.RID, k2 []byte, r2 storage.RID) int {
	if c := bytes.Compare(k1, k2); c != 0 {
		return c
	}
	return r1.Compare(r2)
}

func leafEntrySize(key []byte) int   { return len(key) + leafEntryOverhead }
func branchEntrySize(key []byte) int { return len(key) + branchEntryOverhead }

type node interface {
	isLeaf() bool
	size() int // current payload bytes
}

type leaf struct {
	keys  [][]byte
	rids  []storage.RID
	next  *leaf
	bytes int
}

func (l *leaf) isLeaf() bool { return true }
func (l *leaf) size() int    { return l.bytes }

// find returns the position of the first entry >= (key, rid).
func (l *leaf) find(key []byte, rid storage.RID) int {
	lo, hi := 0, len(l.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntry(l.keys[mid], l.rids[mid], key, rid) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

type branch struct {
	// seps[i] is the smallest (key, rid) entry reachable under
	// children[i+1]; children[i] holds entries < seps[i].
	sepKeys  [][]byte
	sepRIDs  []storage.RID
	children []node
	bytes    int
}

func (b *branch) isLeaf() bool { return false }
func (b *branch) size() int    { return b.bytes }

// childFor returns the index of the child subtree that may contain
// (key, rid).
func (b *branch) childFor(key []byte, rid storage.RID) int {
	lo, hi := 0, len(b.sepKeys)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntry(key, rid, b.sepKeys[mid], b.sepRIDs[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Tree is the B+-tree. The zero value is not usable; construct with New.
// Tree is not safe for concurrent mutation; the engine serializes DML per
// table, matching its single-writer execution model.
type Tree struct {
	root    node
	height  int // number of levels, 1 = root is a leaf
	entries int64
	nodes   int64
	stats   *storage.AccessStats
}

// New returns an empty tree charging page accesses to stats (nil disables
// counting).
func New(stats *storage.AccessStats) *Tree {
	return &Tree{root: &leaf{}, height: 1, nodes: 1, stats: stats}
}

// Len returns the number of entries.
func (t *Tree) Len() int64 { return t.entries }

// NodeCount returns the number of nodes, i.e. the size of the tree in
// pages.
func (t *Tree) NodeCount() int64 { return t.nodes }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// LeafCount returns the number of leaf nodes, walking the leaf chain.
// It does not charge page accesses (it is a metadata query).
func (t *Tree) LeafCount() int64 {
	n := int64(0)
	for l := t.firstLeaf(); l != nil; l = l.next {
		n++
	}
	return n
}

func (t *Tree) firstLeaf() *leaf {
	n := t.root
	for !n.isLeaf() {
		n = n.(*branch).children[0]
	}
	return n.(*leaf)
}

// Insert adds an entry. Inserting an entry that already exists (same key
// and RID) is an error: the index manager guarantees uniqueness, so a
// duplicate indicates a bookkeeping bug.
func (t *Tree) Insert(key []byte, rid storage.RID) error {
	if leafEntrySize(key) > nodeBudget/4 {
		return fmt.Errorf("btree: key of %d bytes is too large", len(key))
	}
	sepKey, sepRID, right, err := t.insert(t.root, t.height, key, rid)
	if err != nil {
		return err
	}
	if right != nil {
		newRoot := &branch{
			sepKeys:  [][]byte{sepKey},
			sepRIDs:  []storage.RID{sepRID},
			children: []node{t.root, right},
			bytes:    branchEntrySize(sepKey),
		}
		t.root = newRoot
		t.height++
		t.nodes++
		t.stats.Write(1)
	}
	t.entries++
	return nil
}

// insert descends to the leaf, inserts, and propagates splits upward.
// level is the height of n's subtree (1 = n is a leaf).
func (t *Tree) insert(n node, level int, key []byte, rid storage.RID) (sepKey []byte, sepRID storage.RID, right node, err error) {
	t.stats.Read(1)
	if n.isLeaf() {
		l := n.(*leaf)
		pos := l.find(key, rid)
		if pos < len(l.keys) && compareEntry(l.keys[pos], l.rids[pos], key, rid) == 0 {
			return nil, storage.RID{}, nil, fmt.Errorf("btree: duplicate entry (key %x, rid %s)", key, rid)
		}
		l.keys = append(l.keys, nil)
		copy(l.keys[pos+1:], l.keys[pos:])
		l.keys[pos] = append([]byte(nil), key...)
		l.rids = append(l.rids, storage.RID{})
		copy(l.rids[pos+1:], l.rids[pos:])
		l.rids[pos] = rid
		l.bytes += leafEntrySize(key)
		t.stats.Write(1)
		if l.bytes <= nodeBudget {
			return nil, storage.RID{}, nil, nil
		}
		return t.splitLeaf(l)
	}
	b := n.(*branch)
	ci := b.childFor(key, rid)
	sk, sr, r, err := t.insert(b.children[ci], level-1, key, rid)
	if err != nil || r == nil {
		return nil, storage.RID{}, nil, err
	}
	// Child split: insert separator sk/sr and new child r after ci.
	b.sepKeys = append(b.sepKeys, nil)
	copy(b.sepKeys[ci+1:], b.sepKeys[ci:])
	b.sepKeys[ci] = sk
	b.sepRIDs = append(b.sepRIDs, storage.RID{})
	copy(b.sepRIDs[ci+1:], b.sepRIDs[ci:])
	b.sepRIDs[ci] = sr
	b.children = append(b.children, nil)
	copy(b.children[ci+2:], b.children[ci+1:])
	b.children[ci+1] = r
	b.bytes += branchEntrySize(sk)
	t.stats.Write(1)
	if b.bytes <= nodeBudget {
		return nil, storage.RID{}, nil, nil
	}
	return t.splitBranch(b)
}

// splitLeaf splits l around its byte midpoint and returns the separator
// (the first entry of the right sibling) and the new right leaf.
func (t *Tree) splitLeaf(l *leaf) ([]byte, storage.RID, node, error) {
	mid, acc := 0, 0
	for mid < len(l.keys)-1 && acc < l.bytes/2 {
		acc += leafEntrySize(l.keys[mid])
		mid++
	}
	if mid == 0 {
		mid = 1
	}
	right := &leaf{
		keys: append([][]byte(nil), l.keys[mid:]...),
		rids: append([]storage.RID(nil), l.rids[mid:]...),
		next: l.next,
	}
	for _, k := range right.keys {
		right.bytes += leafEntrySize(k)
	}
	l.keys = l.keys[:mid:mid]
	l.rids = l.rids[:mid:mid]
	l.bytes -= right.bytes
	l.next = right
	t.nodes++
	t.stats.Write(2)
	return right.keys[0], right.rids[0], right, nil
}

// splitBranch splits b around its byte midpoint. The separator at the
// split position moves up to the parent.
func (t *Tree) splitBranch(b *branch) ([]byte, storage.RID, node, error) {
	mid, acc := 0, 0
	for mid < len(b.sepKeys)-1 && acc < b.bytes/2 {
		acc += branchEntrySize(b.sepKeys[mid])
		mid++
	}
	if mid == 0 {
		mid = 1
	}
	upKey, upRID := b.sepKeys[mid], b.sepRIDs[mid]
	right := &branch{
		sepKeys:  append([][]byte(nil), b.sepKeys[mid+1:]...),
		sepRIDs:  append([]storage.RID(nil), b.sepRIDs[mid+1:]...),
		children: append([]node(nil), b.children[mid+1:]...),
	}
	for _, k := range right.sepKeys {
		right.bytes += branchEntrySize(k)
	}
	b.sepKeys = b.sepKeys[:mid:mid]
	b.sepRIDs = b.sepRIDs[:mid:mid]
	b.children = b.children[: mid+1 : mid+1]
	b.bytes -= right.bytes + branchEntrySize(upKey)
	t.nodes++
	t.stats.Write(2)
	return upKey, upRID, right, nil
}

// Delete removes the entry (key, rid), reporting whether it was present.
func (t *Tree) Delete(key []byte, rid storage.RID) (bool, error) {
	found := t.delete(t.root, key, rid)
	if !found {
		return false, nil
	}
	t.entries--
	// Collapse a root branch with a single child.
	for {
		b, ok := t.root.(*branch)
		if !ok || len(b.children) != 1 {
			break
		}
		t.root = b.children[0]
		t.height--
		t.nodes--
		t.stats.Write(1)
	}
	return true, nil
}

func (t *Tree) delete(n node, key []byte, rid storage.RID) bool {
	t.stats.Read(1)
	if n.isLeaf() {
		l := n.(*leaf)
		pos := l.find(key, rid)
		if pos >= len(l.keys) || compareEntry(l.keys[pos], l.rids[pos], key, rid) != 0 {
			return false
		}
		l.bytes -= leafEntrySize(l.keys[pos])
		l.keys = append(l.keys[:pos], l.keys[pos+1:]...)
		l.rids = append(l.rids[:pos], l.rids[pos+1:]...)
		t.stats.Write(1)
		return true
	}
	b := n.(*branch)
	ci := b.childFor(key, rid)
	if !t.delete(b.children[ci], key, rid) {
		return false
	}
	if b.children[ci].size() < minBudget {
		t.fixUnderflow(b, ci)
	}
	return true
}

// fixUnderflow restores the occupancy of b.children[ci] by borrowing from
// a sibling or merging with one.
func (t *Tree) fixUnderflow(b *branch, ci int) {
	// Prefer the left sibling; fall back to the right.
	if ci > 0 {
		if t.borrowOrMerge(b, ci-1) {
			return
		}
	}
	if ci < len(b.children)-1 {
		t.borrowOrMerge(b, ci)
	}
}

// borrowOrMerge balances or merges children[i] and children[i+1]. It
// returns true if it changed anything. When the combined payload fits one
// node the two merge; otherwise entries move to even the sizes.
func (t *Tree) borrowOrMerge(b *branch, i int) bool {
	left, right := b.children[i], b.children[i+1]
	if left.isLeaf() != right.isLeaf() {
		panic("btree: sibling level mismatch")
	}
	if left.isLeaf() {
		l, r := left.(*leaf), right.(*leaf)
		if l.bytes+r.bytes <= nodeBudget {
			// Merge right into left.
			l.keys = append(l.keys, r.keys...)
			l.rids = append(l.rids, r.rids...)
			l.bytes += r.bytes
			l.next = r.next
			t.removeChild(b, i+1)
			t.nodes--
			t.stats.Write(2)
			return true
		}
		// Borrow: move entries across the boundary until balanced.
		if l.bytes < r.bytes {
			for l.bytes < minBudget && len(r.keys) > 1 {
				k, rid := r.keys[0], r.rids[0]
				r.keys = r.keys[1:]
				r.rids = r.rids[1:]
				r.bytes -= leafEntrySize(k)
				l.keys = append(l.keys, k)
				l.rids = append(l.rids, rid)
				l.bytes += leafEntrySize(k)
			}
		} else {
			for r.bytes < minBudget && len(l.keys) > 1 {
				last := len(l.keys) - 1
				k, rid := l.keys[last], l.rids[last]
				l.keys = l.keys[:last]
				l.rids = l.rids[:last]
				l.bytes -= leafEntrySize(k)
				r.keys = append([][]byte{k}, r.keys...)
				r.rids = append([]storage.RID{rid}, r.rids...)
				r.bytes += leafEntrySize(k)
			}
		}
		b.bytes -= branchEntrySize(b.sepKeys[i])
		b.sepKeys[i] = r.keys[0]
		b.sepRIDs[i] = r.rids[0]
		b.bytes += branchEntrySize(b.sepKeys[i])
		t.stats.Write(3)
		return true
	}
	l, r := left.(*branch), right.(*branch)
	sepSize := branchEntrySize(b.sepKeys[i])
	if l.bytes+r.bytes+sepSize <= nodeBudget {
		// Merge: the parent separator descends between the two.
		l.sepKeys = append(l.sepKeys, b.sepKeys[i])
		l.sepRIDs = append(l.sepRIDs, b.sepRIDs[i])
		l.sepKeys = append(l.sepKeys, r.sepKeys...)
		l.sepRIDs = append(l.sepRIDs, r.sepRIDs...)
		l.children = append(l.children, r.children...)
		l.bytes += sepSize + r.bytes
		t.removeChild(b, i+1)
		t.nodes--
		t.stats.Write(2)
		return true
	}
	// Borrow through the parent (rotate separators).
	if l.bytes < r.bytes {
		for l.bytes < minBudget && len(r.sepKeys) > 1 {
			// parent sep descends to l; r's first sep ascends.
			l.sepKeys = append(l.sepKeys, b.sepKeys[i])
			l.sepRIDs = append(l.sepRIDs, b.sepRIDs[i])
			l.children = append(l.children, r.children[0])
			l.bytes += branchEntrySize(b.sepKeys[i])
			b.bytes -= branchEntrySize(b.sepKeys[i])
			b.sepKeys[i] = r.sepKeys[0]
			b.sepRIDs[i] = r.sepRIDs[0]
			b.bytes += branchEntrySize(b.sepKeys[i])
			r.bytes -= branchEntrySize(r.sepKeys[0])
			r.sepKeys = r.sepKeys[1:]
			r.sepRIDs = r.sepRIDs[1:]
			r.children = r.children[1:]
		}
	} else {
		for r.bytes < minBudget && len(l.sepKeys) > 1 {
			last := len(l.sepKeys) - 1
			r.sepKeys = append([][]byte{b.sepKeys[i]}, r.sepKeys...)
			r.sepRIDs = append([]storage.RID{b.sepRIDs[i]}, r.sepRIDs...)
			r.children = append([]node{l.children[len(l.children)-1]}, r.children...)
			r.bytes += branchEntrySize(b.sepKeys[i])
			b.bytes -= branchEntrySize(b.sepKeys[i])
			b.sepKeys[i] = l.sepKeys[last]
			b.sepRIDs[i] = l.sepRIDs[last]
			b.bytes += branchEntrySize(b.sepKeys[i])
			l.bytes -= branchEntrySize(l.sepKeys[last])
			l.sepKeys = l.sepKeys[:last]
			l.sepRIDs = l.sepRIDs[:last]
			l.children = l.children[:len(l.children)-1]
		}
	}
	t.stats.Write(3)
	return true
}

func (t *Tree) removeChild(b *branch, ci int) {
	b.bytes -= branchEntrySize(b.sepKeys[ci-1])
	b.sepKeys = append(b.sepKeys[:ci-1], b.sepKeys[ci:]...)
	b.sepRIDs = append(b.sepRIDs[:ci-1], b.sepRIDs[ci:]...)
	b.children = append(b.children[:ci], b.children[ci+1:]...)
}
