package btree

import (
	"bytes"
	"fmt"

	"dyndesign/internal/storage"
)

// Iterator walks entries in ascending (key, RID) order. Obtain one from
// Tree.Seek or Tree.First. An Iterator observes a snapshot only in the
// absence of concurrent mutation; the engine never mutates a tree while
// scanning it.
type Iterator struct {
	tree *Tree
	leaf *leaf
	pos  int
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool {
	return it.leaf != nil && it.pos < len(it.leaf.keys)
}

// Key returns the current entry's key. The slice must not be modified.
func (it *Iterator) Key() []byte { return it.leaf.keys[it.pos] }

// RID returns the current entry's RID.
func (it *Iterator) RID() storage.RID { return it.leaf.rids[it.pos] }

// Next advances to the next entry. Moving into a new leaf charges one
// page read.
func (it *Iterator) Next() {
	it.pos++
	for it.leaf != nil && it.pos >= len(it.leaf.keys) {
		it.leaf = it.leaf.next
		it.pos = 0
		if it.leaf != nil {
			it.tree.stats.Read(1)
		}
	}
}

// First positions an iterator on the smallest entry, charging one page
// read per level descended.
func (t *Tree) First() *Iterator {
	n := t.root
	t.stats.Read(1)
	for !n.isLeaf() {
		n = n.(*branch).children[0]
		t.stats.Read(1)
	}
	it := &Iterator{tree: t, leaf: n.(*leaf), pos: -1}
	it.pos = 0
	for it.leaf != nil && len(it.leaf.keys) == 0 {
		it.leaf = it.leaf.next
		if it.leaf != nil {
			t.stats.Read(1)
		}
	}
	return it
}

// Seek positions an iterator on the first entry whose key is >= key,
// charging one page read per level descended.
func (t *Tree) Seek(key []byte) *Iterator {
	return t.seekEntry(key, storage.RID{})
}

func (t *Tree) seekEntry(key []byte, rid storage.RID) *Iterator {
	n := t.root
	t.stats.Read(1)
	for !n.isLeaf() {
		b := n.(*branch)
		n = b.children[b.childFor(key, rid)]
		t.stats.Read(1)
	}
	l := n.(*leaf)
	it := &Iterator{tree: t, leaf: l, pos: l.find(key, rid)}
	for it.leaf != nil && it.pos >= len(it.leaf.keys) {
		it.leaf = it.leaf.next
		it.pos = 0
		if it.leaf != nil {
			t.stats.Read(1)
		}
	}
	return it
}

// ScanPrefix calls fn for every entry whose key starts with prefix, in
// order, stopping early if fn returns false. It is the primitive behind
// index seeks on a leading-column equality predicate.
func (t *Tree) ScanPrefix(prefix []byte, fn func(key []byte, rid storage.RID) bool) {
	for it := t.Seek(prefix); it.Valid(); it.Next() {
		if !bytes.HasPrefix(it.Key(), prefix) {
			return
		}
		if !fn(it.Key(), it.RID()) {
			return
		}
	}
}

// ScanRange calls fn for every entry with low <= key < high (nil bounds
// are unbounded), in order, stopping early if fn returns false.
func (t *Tree) ScanRange(low, high []byte, fn func(key []byte, rid storage.RID) bool) {
	var it *Iterator
	if low == nil {
		it = t.First()
	} else {
		it = t.Seek(low)
	}
	for ; it.Valid(); it.Next() {
		if high != nil && bytes.Compare(it.Key(), high) >= 0 {
			return
		}
		if !fn(it.Key(), it.RID()) {
			return
		}
	}
}

// BulkLoad builds a tree from entries that must already be sorted by
// (key, RID) with no duplicates. It replaces the tree's contents and is
// the fast path for online index builds: leaves are packed to ~90% of
// the node budget and upper levels are built bottom-up. Each node built
// charges one page write.
func (t *Tree) BulkLoad(entries []Entry) error {
	for i := 1; i < len(entries); i++ {
		if compareEntry(entries[i-1].Key, entries[i-1].RID, entries[i].Key, entries[i].RID) >= 0 {
			return fmt.Errorf("btree: bulk-load input not strictly sorted at position %d", i)
		}
	}
	const fill = nodeBudget * 9 / 10
	// Build the leaf level.
	var leaves []*leaf
	cur := &leaf{}
	for _, e := range entries {
		sz := leafEntrySize(e.Key)
		if cur.bytes+sz > fill && len(cur.keys) > 0 {
			leaves = append(leaves, cur)
			cur = &leaf{}
		}
		cur.keys = append(cur.keys, append([]byte(nil), e.Key...))
		cur.rids = append(cur.rids, e.RID)
		cur.bytes += sz
	}
	leaves = append(leaves, cur)
	for i := 0; i < len(leaves)-1; i++ {
		leaves[i].next = leaves[i+1]
	}
	t.nodes = int64(len(leaves))
	t.stats.Write(int64(len(leaves)))
	t.entries = int64(len(entries))
	t.height = 1

	// Build branch levels bottom-up until a single root remains.
	level := make([]node, len(leaves))
	firstEntries := make([]Entry, len(leaves))
	for i, l := range leaves {
		level[i] = l
		if len(l.keys) > 0 {
			firstEntries[i] = Entry{Key: l.keys[0], RID: l.rids[0]}
		}
	}
	for len(level) > 1 {
		var nextLevel []node
		var nextFirsts []Entry
		cur := &branch{children: []node{level[0]}}
		curFirst := firstEntries[0]
		for i := 1; i < len(level); i++ {
			sz := branchEntrySize(firstEntries[i].Key)
			if cur.bytes+sz > fill && len(cur.sepKeys) > 0 {
				nextLevel = append(nextLevel, cur)
				nextFirsts = append(nextFirsts, curFirst)
				cur = &branch{children: []node{level[i]}}
				curFirst = firstEntries[i]
				continue
			}
			cur.sepKeys = append(cur.sepKeys, firstEntries[i].Key)
			cur.sepRIDs = append(cur.sepRIDs, firstEntries[i].RID)
			cur.children = append(cur.children, level[i])
			cur.bytes += sz
		}
		nextLevel = append(nextLevel, cur)
		nextFirsts = append(nextFirsts, curFirst)
		t.nodes += int64(len(nextLevel))
		t.stats.Write(int64(len(nextLevel)))
		level = nextLevel
		firstEntries = nextFirsts
		t.height++
	}
	t.root = level[0]
	return nil
}

// CheckInvariants verifies structural invariants: key ordering within and
// across nodes, separator correctness, uniform leaf depth, the leaf chain,
// byte accounting, and the entry count. Tests call it after mutation
// storms; it returns the first violation found.
func (t *Tree) CheckInvariants() error {
	var leafDepth int
	var count int64
	var prevKey []byte
	var prevRID storage.RID
	first := true

	var walk func(n node, depth int, low, high *Entry) error
	walk = func(n node, depth int, low, high *Entry) error {
		if n.isLeaf() {
			if leafDepth == 0 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("btree: leaf at depth %d, expected %d", depth, leafDepth)
			}
			l := n.(*leaf)
			if len(l.keys) != len(l.rids) {
				return fmt.Errorf("btree: leaf key/rid length mismatch")
			}
			wantBytes := 0
			for i := range l.keys {
				wantBytes += leafEntrySize(l.keys[i])
				if !first {
					if compareEntry(prevKey, prevRID, l.keys[i], l.rids[i]) >= 0 {
						return fmt.Errorf("btree: entries out of order")
					}
				}
				if low != nil && compareEntry(l.keys[i], l.rids[i], low.Key, low.RID) < 0 {
					return fmt.Errorf("btree: entry below subtree lower bound")
				}
				if high != nil && compareEntry(l.keys[i], l.rids[i], high.Key, high.RID) >= 0 {
					return fmt.Errorf("btree: entry at/above subtree upper bound")
				}
				prevKey, prevRID = l.keys[i], l.rids[i]
				first = false
				count++
			}
			if wantBytes != l.bytes {
				return fmt.Errorf("btree: leaf byte accounting %d != %d", l.bytes, wantBytes)
			}
			return nil
		}
		b := n.(*branch)
		if len(b.children) != len(b.sepKeys)+1 {
			return fmt.Errorf("btree: branch with %d children, %d separators", len(b.children), len(b.sepKeys))
		}
		wantBytes := 0
		for i := range b.sepKeys {
			wantBytes += branchEntrySize(b.sepKeys[i])
			if i > 0 && compareEntry(b.sepKeys[i-1], b.sepRIDs[i-1], b.sepKeys[i], b.sepRIDs[i]) >= 0 {
				return fmt.Errorf("btree: separators out of order")
			}
		}
		if wantBytes != b.bytes {
			return fmt.Errorf("btree: branch byte accounting %d != %d", b.bytes, wantBytes)
		}
		for i, c := range b.children {
			childLow, childHigh := low, high
			if i > 0 {
				childLow = &Entry{Key: b.sepKeys[i-1], RID: b.sepRIDs[i-1]}
			}
			if i < len(b.sepKeys) {
				childHigh = &Entry{Key: b.sepKeys[i], RID: b.sepRIDs[i]}
			}
			if err := walk(c, depth+1, childLow, childHigh); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}
	if count != t.entries {
		return fmt.Errorf("btree: entry count %d != walked %d", t.entries, count)
	}
	if leafDepth != 0 && leafDepth != t.height {
		return fmt.Errorf("btree: height %d != leaf depth %d", t.height, leafDepth)
	}
	// The leaf chain must visit exactly the leaves, in order.
	var chained int64
	for l := t.firstLeaf(); l != nil; l = l.next {
		chained += int64(len(l.keys))
	}
	if chained != t.entries {
		return fmt.Errorf("btree: leaf chain has %d entries, tree has %d", chained, t.entries)
	}
	return nil
}
