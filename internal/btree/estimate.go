package btree

// Estimation helpers used by the what-if cost model to predict the shape
// of a hypothetical index without building it. They use the same
// constants as the real tree, so predictions match measurements.

// BulkFillNumerator/Denominator give the bulk-load fill factor (90%).
const (
	bulkFillNumerator   = 9
	bulkFillDenominator = 10
)

// LeafCapacity returns how many entries with the given key size fit in
// one bulk-loaded leaf.
func LeafCapacity(keyBytes int) int {
	c := nodeBudget * bulkFillNumerator / bulkFillDenominator / leafEntrySize(make([]byte, keyBytes))
	if c < 1 {
		return 1
	}
	return c
}

// BranchFanout returns how many children a bulk-loaded branch node with
// the given separator key size holds.
func BranchFanout(keyBytes int) int {
	c := nodeBudget*bulkFillNumerator/bulkFillDenominator/branchEntrySize(make([]byte, keyBytes)) + 1
	if c < 2 {
		return 2
	}
	return c
}

// EstimateLeafPages predicts the number of leaf pages of a bulk-loaded
// tree with n entries of the given key size.
func EstimateLeafPages(keyBytes int, n int64) int64 {
	if n <= 0 {
		return 1
	}
	cap := int64(LeafCapacity(keyBytes))
	return (n + cap - 1) / cap
}

// EstimateHeight predicts the height (levels) of a bulk-loaded tree with
// n entries of the given key size.
func EstimateHeight(keyBytes int, n int64) int {
	leaves := EstimateLeafPages(keyBytes, n)
	h := 1
	fanout := int64(BranchFanout(keyBytes))
	for leaves > 1 {
		leaves = (leaves + fanout - 1) / fanout
		h++
	}
	return h
}

// EstimateTotalPages predicts the total node count (leaf + branch) of a
// bulk-loaded tree with n entries of the given key size.
func EstimateTotalPages(keyBytes int, n int64) int64 {
	level := EstimateLeafPages(keyBytes, n)
	total := level
	fanout := int64(BranchFanout(keyBytes))
	for level > 1 {
		level = (level + fanout - 1) / fanout
		total += level
	}
	return total
}
