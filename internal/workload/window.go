package workload

import "fmt"

// Window maintains the most recent statements of an unbounded stream in
// a fixed-capacity ring — the incremental structure a long-running
// advisor re-solves over. Appends are O(1): a full sliding window
// evicts its oldest statement, a tumbling window is Reset explicitly at
// epoch boundaries. Snapshot materializes the current contents as a
// Workload without disturbing the ring.
//
// A Window is not safe for concurrent use; the advisor service
// serializes ingestion and snapshots behind its own lock.
type Window struct {
	name   string
	cap    int
	stmts  []Statement
	labels []string
	start  int // ring position of the oldest statement
	n      int // current fill
	total  int64
	seq    uint64
}

// NewWindow builds an empty window holding at most capacity statements.
func NewWindow(name string, capacity int) (*Window, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("workload: window capacity must be positive, got %d", capacity)
	}
	return &Window{
		name:   name,
		cap:    capacity,
		stmts:  make([]Statement, capacity),
		labels: make([]string, capacity),
	}, nil
}

// Append adds one statement with its mix label, evicting the oldest
// statement when the window is full.
func (w *Window) Append(label string, s Statement) {
	pos := (w.start + w.n) % w.cap
	if w.n == w.cap {
		// Full: the slot being written is the oldest; slide the start.
		w.start = (w.start + 1) % w.cap
	} else {
		w.n++
	}
	w.stmts[pos] = s
	w.labels[pos] = label
	w.total++
	w.seq++
}

// Reset empties the window (the tumbling-mode epoch boundary). Total
// and Seq keep counting across resets.
func (w *Window) Reset() {
	// Drop references so evicted statements are collectable.
	for i := range w.stmts {
		w.stmts[i] = Statement{}
		w.labels[i] = ""
	}
	w.start, w.n = 0, 0
	w.seq++
}

// Len returns the number of statements currently in the window.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity.
func (w *Window) Cap() int { return w.cap }

// Total returns how many statements were ever appended.
func (w *Window) Total() int64 { return w.total }

// Seq returns a counter bumped by every mutation; two equal Seq values
// bracket an unchanged window, so a service can tell whether a
// recommendation is stale relative to ingestion.
func (w *Window) Seq() uint64 { return w.seq }

// WindowStatement is one statement of a serialized window: the SQL
// text plus its mix label. The parse is not serialized — RestoreState
// re-parses, which also revalidates text that crossed a process
// boundary.
type WindowStatement struct {
	Label string `json:"label,omitempty"`
	SQL   string `json:"sql"`
}

// WindowState is the serializable content of a Window: everything a
// restarted process needs to continue the stream exactly where the
// ring left off. Statements are oldest first.
type WindowState struct {
	Name       string            `json:"name"`
	Cap        int               `json:"cap"`
	Total      int64             `json:"total"`
	Seq        uint64            `json:"seq"`
	Statements []WindowStatement `json:"statements"`
}

// State serializes the window: ring contents oldest first plus the
// Total and Seq counters. The result shares no storage with the ring.
func (w *Window) State() WindowState {
	st := WindowState{
		Name:       w.name,
		Cap:        w.cap,
		Total:      w.total,
		Seq:        w.seq,
		Statements: make([]WindowStatement, w.n),
	}
	for i := 0; i < w.n; i++ {
		pos := (w.start + i) % w.cap
		st.Statements[i] = WindowStatement{Label: w.labels[pos], SQL: w.stmts[pos].SQL}
	}
	return st
}

// RestoreState replaces the window contents with a serialized state,
// re-parsing every statement. The receiver keeps its own capacity: if
// the state holds more statements than fit (the operator shrank the
// window across a restart), only the newest Cap survive — the same
// statements a live ring of this capacity would have retained. Total
// and Seq are restored so staleness accounting continues across the
// restart. On a parse error the window is left unchanged.
func (w *Window) RestoreState(st WindowState) error {
	stmts := st.Statements
	if len(stmts) > w.cap {
		stmts = stmts[len(stmts)-w.cap:]
	}
	parsed := make([]Statement, len(stmts))
	for i, ws := range stmts {
		s, err := NewStatement(ws.SQL)
		if err != nil {
			return fmt.Errorf("workload: restoring window statement %d (%q): %w", i, ws.SQL, err)
		}
		parsed[i] = s
	}
	for i := range w.stmts {
		w.stmts[i] = Statement{}
		w.labels[i] = ""
	}
	w.start, w.n = 0, len(parsed)
	for i, s := range parsed {
		w.stmts[i] = s
		w.labels[i] = stmts[i].Label
	}
	w.total = st.Total
	w.seq = st.Seq
	return nil
}

// Snapshot copies the window contents, oldest first, into a fresh
// Workload. The returned workload shares no storage with the ring, so
// it stays valid while ingestion continues.
func (w *Window) Snapshot() *Workload {
	out := &Workload{
		Name:       fmt.Sprintf("%s@%d", w.name, w.seq),
		Statements: make([]Statement, w.n),
		Labels:     make([]string, w.n),
	}
	for i := 0; i < w.n; i++ {
		pos := (w.start + i) % w.cap
		out.Statements[i] = w.stmts[pos]
		out.Labels[i] = w.labels[pos]
	}
	return out
}
