package workload

import "fmt"

// Window maintains the most recent statements of an unbounded stream in
// a fixed-capacity ring — the incremental structure a long-running
// advisor re-solves over. Appends are O(1): a full sliding window
// evicts its oldest statement, a tumbling window is Reset explicitly at
// epoch boundaries. Snapshot materializes the current contents as a
// Workload without disturbing the ring.
//
// A Window is not safe for concurrent use; the advisor service
// serializes ingestion and snapshots behind its own lock.
type Window struct {
	name   string
	cap    int
	stmts  []Statement
	labels []string
	start  int // ring position of the oldest statement
	n      int // current fill
	total  int64
	seq    uint64
}

// NewWindow builds an empty window holding at most capacity statements.
func NewWindow(name string, capacity int) (*Window, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("workload: window capacity must be positive, got %d", capacity)
	}
	return &Window{
		name:   name,
		cap:    capacity,
		stmts:  make([]Statement, capacity),
		labels: make([]string, capacity),
	}, nil
}

// Append adds one statement with its mix label, evicting the oldest
// statement when the window is full.
func (w *Window) Append(label string, s Statement) {
	pos := (w.start + w.n) % w.cap
	if w.n == w.cap {
		// Full: the slot being written is the oldest; slide the start.
		w.start = (w.start + 1) % w.cap
	} else {
		w.n++
	}
	w.stmts[pos] = s
	w.labels[pos] = label
	w.total++
	w.seq++
}

// Reset empties the window (the tumbling-mode epoch boundary). Total
// and Seq keep counting across resets.
func (w *Window) Reset() {
	// Drop references so evicted statements are collectable.
	for i := range w.stmts {
		w.stmts[i] = Statement{}
		w.labels[i] = ""
	}
	w.start, w.n = 0, 0
	w.seq++
}

// Len returns the number of statements currently in the window.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity.
func (w *Window) Cap() int { return w.cap }

// Total returns how many statements were ever appended.
func (w *Window) Total() int64 { return w.total }

// Seq returns a counter bumped by every mutation; two equal Seq values
// bracket an unchanged window, so a service can tell whether a
// recommendation is stale relative to ingestion.
func (w *Window) Seq() uint64 { return w.seq }

// Snapshot copies the window contents, oldest first, into a fresh
// Workload. The returned workload shares no storage with the ring, so
// it stays valid while ingestion continues.
func (w *Window) Snapshot() *Workload {
	out := &Workload{
		Name:       fmt.Sprintf("%s@%d", w.name, w.seq),
		Statements: make([]Statement, w.n),
		Labels:     make([]string, w.n),
	}
	for i := 0; i < w.n; i++ {
		pos := (w.start + i) % w.cap
		out.Statements[i] = w.stmts[pos]
		out.Labels[i] = w.labels[pos]
	}
	return out
}
