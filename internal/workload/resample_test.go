package workload

import (
	"testing"
)

func labeledFixture(t *testing.T) *Workload {
	t.Helper()
	w := &Workload{Name: "fixture"}
	for i, label := range []string{"A", "A", "B", "B", "B", "A"} {
		text := "SELECT a FROM t WHERE a = " + string(rune('0'+i))
		w.Append(label, MustStatement(text))
	}
	return w
}

func TestResamplePreservesShape(t *testing.T) {
	w := labeledFixture(t)
	r := w.Resample(42)
	if r.Len() != w.Len() {
		t.Fatalf("resample has %d statements, want %d", r.Len(), w.Len())
	}
	for i, l := range r.Labels {
		if l != w.Labels[i] {
			t.Fatalf("label %d changed: %q -> %q", i, w.Labels[i], l)
		}
	}
	// Every resampled statement must come from its own source block.
	for _, b := range w.BlockLabels() {
		allowed := make(map[string]bool, b.Count)
		for i := b.Start; i < b.Start+b.Count; i++ {
			allowed[w.Statements[i].SQL] = true
		}
		for i := b.Start; i < b.Start+b.Count; i++ {
			if !allowed[r.Statements[i].SQL] {
				t.Errorf("position %d drew %q from outside its block", i, r.Statements[i].SQL)
			}
		}
	}
}

func TestResampleDeterministic(t *testing.T) {
	w := labeledFixture(t)
	a, b := w.Resample(7), w.Resample(7)
	for i := range a.Statements {
		if a.Statements[i].SQL != b.Statements[i].SQL {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	// Different seeds should (for this fixture) produce a different draw
	// somewhere; with 6 positions over blocks of 2-3 statements a
	// collision across all positions would be a generator bug.
	c := w.Resample(8)
	same := true
	for i := range a.Statements {
		if a.Statements[i].SQL != c.Statements[i].SQL {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical resamples")
	}
}

func TestResampleUnlabeled(t *testing.T) {
	w := &Workload{Name: "plain"}
	w.Statements = append(w.Statements,
		MustStatement("SELECT a FROM t WHERE a = 1"),
		MustStatement("SELECT b FROM t WHERE b = 2"))
	r := w.Resample(1)
	if r.Len() != 2 {
		t.Fatalf("resample has %d statements, want 2", r.Len())
	}
	if len(r.Labels) != 0 {
		t.Fatal("unlabeled workload grew labels")
	}
}
