package workload

import (
	"fmt"
	"testing"
)

func wstmt(t *testing.T, i int) Statement {
	t.Helper()
	s, err := NewStatement(fmt.Sprintf("SELECT a FROM t WHERE a = %d", i))
	if err != nil {
		t.Fatalf("NewStatement: %v", err)
	}
	return s
}

func TestWindowCapacityValidation(t *testing.T) {
	if _, err := NewWindow("w", 0); err == nil {
		t.Fatal("NewWindow(0) succeeded, want error")
	}
	if _, err := NewWindow("w", -3); err == nil {
		t.Fatal("NewWindow(-3) succeeded, want error")
	}
}

func TestWindowSlidingEviction(t *testing.T) {
	w, err := NewWindow("w", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w.Append(fmt.Sprintf("L%d", i), wstmt(t, i))
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	if w.Total() != 5 {
		t.Fatalf("Total = %d, want 5", w.Total())
	}
	snap := w.Snapshot()
	if snap.Len() != 3 {
		t.Fatalf("snapshot Len = %d, want 3", snap.Len())
	}
	// Oldest first: statements 2, 3, 4 survive.
	for i, want := range []int{2, 3, 4} {
		wantSQL := fmt.Sprintf("SELECT a FROM t WHERE a = %d", want)
		if snap.Statements[i].SQL != wantSQL {
			t.Errorf("snapshot[%d].SQL = %q, want %q", i, snap.Statements[i].SQL, wantSQL)
		}
		wantLabel := fmt.Sprintf("L%d", want)
		if snap.Labels[i] != wantLabel {
			t.Errorf("snapshot label[%d] = %q, want %q", i, snap.Labels[i], wantLabel)
		}
	}
}

func TestWindowSnapshotIsolation(t *testing.T) {
	w, err := NewWindow("w", 2)
	if err != nil {
		t.Fatal(err)
	}
	w.Append("a", wstmt(t, 1))
	snap := w.Snapshot()
	seq := w.Seq()
	// Ingestion after the snapshot must not disturb it.
	w.Append("b", wstmt(t, 2))
	w.Append("c", wstmt(t, 3))
	if snap.Len() != 1 || snap.Statements[0].SQL != wstmt(t, 1).SQL {
		t.Fatalf("snapshot mutated by later appends: %+v", snap)
	}
	if w.Seq() == seq {
		t.Fatal("Seq unchanged after appends")
	}
}

func TestWindowReset(t *testing.T) {
	w, err := NewWindow("w", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w.Append("a", wstmt(t, i))
	}
	seq := w.Seq()
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", w.Len())
	}
	if w.Total() != 3 {
		t.Fatalf("Total after Reset = %d, want 3 (resets keep counting)", w.Total())
	}
	if w.Seq() <= seq {
		t.Fatalf("Seq after Reset = %d, want > %d", w.Seq(), seq)
	}
	if snap := w.Snapshot(); snap.Len() != 0 {
		t.Fatalf("snapshot after Reset has %d statements", snap.Len())
	}
	// The window refills normally after a reset.
	w.Append("b", wstmt(t, 9))
	if snap := w.Snapshot(); snap.Len() != 1 || snap.Labels[0] != "b" {
		t.Fatalf("refill after Reset: %+v", snap)
	}
}

func TestWindowSnapshotSegmentsLikeWorkload(t *testing.T) {
	// A snapshot behaves exactly like a directly-built workload:
	// label-snapped segmentation included.
	w, err := NewWindow("w", 6)
	if err != nil {
		t.Fatal(err)
	}
	direct := &Workload{Name: "direct"}
	for i := 0; i < 6; i++ {
		label := "A"
		if i >= 3 {
			label = "C"
		}
		s := wstmt(t, i)
		w.Append(label, s)
		direct.Append(label, s)
	}
	got := w.Snapshot().Segments(4)
	want := direct.Segments(4)
	if len(got) != len(want) {
		t.Fatalf("segments: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Label != want[i].Label || len(got[i].Statements) != len(want[i].Statements) {
			t.Errorf("segment %d: got (%q, %d), want (%q, %d)", i,
				got[i].Label, len(got[i].Statements), want[i].Label, len(want[i].Statements))
		}
	}
}

// stateEqualSnapshot asserts that a restored window snapshots
// byte-identically (name@seq, statements, labels) to the original.
func stateEqualSnapshot(t *testing.T, orig, restored *Window) {
	t.Helper()
	a, b := orig.Snapshot(), restored.Snapshot()
	if a.Name != b.Name {
		t.Fatalf("restored snapshot name %q, want %q", b.Name, a.Name)
	}
	if a.Len() != b.Len() {
		t.Fatalf("restored Len %d, want %d", b.Len(), a.Len())
	}
	for i := range a.Statements {
		if a.Statements[i].SQL != b.Statements[i].SQL || a.Labels[i] != b.Labels[i] {
			t.Fatalf("restored statement %d = (%q, %q), want (%q, %q)",
				i, b.Statements[i].SQL, b.Labels[i], a.Statements[i].SQL, a.Labels[i])
		}
	}
	if orig.Total() != restored.Total() || orig.Seq() != restored.Seq() {
		t.Fatalf("restored counters (total %d, seq %d), want (%d, %d)",
			restored.Total(), restored.Seq(), orig.Total(), orig.Seq())
	}
}

func TestWindowStateRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name    string
		appends int
		cap     int
	}{
		{"partial-fill", 3, 8},
		{"exactly-full", 8, 8},
		{"wrapped-ring", 21, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, err := NewWindow("live", tc.cap)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tc.appends; i++ {
				w.Append(fmt.Sprintf("L%d", i%3), wstmt(t, i))
			}
			r, err := NewWindow("live", tc.cap)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.RestoreState(w.State()); err != nil {
				t.Fatal(err)
			}
			stateEqualSnapshot(t, w, r)
			// The restored ring keeps sliding exactly like the original.
			w.Append("tail", wstmt(t, 99))
			r.Append("tail", wstmt(t, 99))
			stateEqualSnapshot(t, w, r)
		})
	}
}

// TestWindowStateRoundTripTumbling covers the Reset-mid-stream shape: a
// tumbling window reset at an epoch boundary, partially refilled, then
// serialized. The restored window must carry the post-reset contents
// and the counters that kept counting across the reset.
func TestWindowStateRoundTripTumbling(t *testing.T) {
	w, err := NewWindow("epoch", 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		w.Append("pre", wstmt(t, i))
	}
	w.Reset()
	for i := 7; i < 9; i++ {
		w.Append("post", wstmt(t, i))
	}
	r, err := NewWindow("epoch", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreState(w.State()); err != nil {
		t.Fatal(err)
	}
	stateEqualSnapshot(t, w, r)
	if r.Len() != 2 || r.Total() != 9 {
		t.Fatalf("restored tumbling window Len %d Total %d, want 2 and 9", r.Len(), r.Total())
	}
	// A reset after restore behaves like a live epoch boundary.
	w.Reset()
	r.Reset()
	w.Append("next", wstmt(t, 10))
	r.Append("next", wstmt(t, 10))
	stateEqualSnapshot(t, w, r)
}

// TestWindowRestoreShrunkCapacity pins the resize rule: restoring into
// a smaller ring keeps the newest statements, exactly what a live ring
// of that capacity would hold.
func TestWindowRestoreShrunkCapacity(t *testing.T) {
	w, err := NewWindow("w", 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		w.Append(fmt.Sprintf("L%d", i), wstmt(t, i))
	}
	small, err := NewWindow("w", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.RestoreState(w.State()); err != nil {
		t.Fatal(err)
	}
	snap := small.Snapshot()
	if snap.Len() != 3 {
		t.Fatalf("shrunk restore Len %d, want 3", snap.Len())
	}
	for i, want := range []int{3, 4, 5} {
		if wantSQL := fmt.Sprintf("SELECT a FROM t WHERE a = %d", want); snap.Statements[i].SQL != wantSQL {
			t.Fatalf("shrunk restore [%d] = %q, want %q", i, snap.Statements[i].SQL, wantSQL)
		}
	}
}

// TestWindowRestoreParseFailureLeavesWindowUnchanged pins the error
// contract: a corrupt statement aborts the restore without touching the
// receiver.
func TestWindowRestoreParseFailureLeavesWindowUnchanged(t *testing.T) {
	w, err := NewWindow("w", 4)
	if err != nil {
		t.Fatal(err)
	}
	w.Append("keep", wstmt(t, 1))
	bad := WindowState{Name: "w", Cap: 4, Total: 2, Seq: 2,
		Statements: []WindowStatement{{SQL: "SELECT a FROM t WHERE a = 1"}, {SQL: "NOT ( SQL"}}}
	if err := w.RestoreState(bad); err == nil {
		t.Fatal("restore of unparsable statement succeeded")
	}
	if snap := w.Snapshot(); snap.Len() != 1 || snap.Labels[0] != "keep" {
		t.Fatalf("failed restore mutated the window: %+v", snap)
	}
}
