// Package workload represents database workloads the way the paper does:
// as a sequence of SQL statements, optionally annotated with the block
// structure (query-mix phases and shifts) that generated it. It provides
// the paper's Table 1 query mixes, the W1/W2/W3 workload family of
// Table 2, deterministic generators for custom mixes, JSON trace I/O,
// and segment compression for long traces.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dyndesign/internal/sql"
)

// Statement is one workload statement: the SQL text plus its parse.
type Statement struct {
	SQL  string
	Stmt sql.Statement
}

// NewStatement parses SQL text into a workload statement.
func NewStatement(text string) (Statement, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return Statement{}, err
	}
	return Statement{SQL: text, Stmt: stmt}, nil
}

// MustStatement is NewStatement that panics on error. It is for tests,
// fixtures, and hard-coded statements only; library code handling
// external traces must use NewStatement and return the error.
func MustStatement(text string) Statement {
	s, err := NewStatement(text)
	if err != nil {
		panic(err)
	}
	return s
}

// Workload is a statement sequence, optionally annotated with the labels
// of the mix blocks that generated it (Labels[i] names the mix of
// statement i; empty when unknown).
type Workload struct {
	Name       string
	Statements []Statement
	Labels     []string
}

// Len returns the number of statements.
func (w *Workload) Len() int { return len(w.Statements) }

// Append adds statements with a common label.
func (w *Workload) Append(label string, stmts ...Statement) {
	w.Statements = append(w.Statements, stmts...)
	for range stmts {
		w.Labels = append(w.Labels, label)
	}
}

// Slice returns statements [lo, hi) as a sub-workload sharing storage.
func (w *Workload) Slice(lo, hi int) *Workload {
	sub := &Workload{Name: fmt.Sprintf("%s[%d:%d]", w.Name, lo, hi), Statements: w.Statements[lo:hi]}
	if len(w.Labels) == len(w.Statements) {
		sub.Labels = w.Labels[lo:hi]
	}
	return sub
}

// BlockLabels summarizes the workload as (label, count) runs — the shape
// of Table 2's workload columns.
func (w *Workload) BlockLabels() []Block {
	var out []Block
	for i, l := range w.Labels {
		if len(out) > 0 && out[len(out)-1].Label == l {
			out[len(out)-1].Count++
			continue
		}
		out = append(out, Block{Label: l, Start: i, Count: 1})
	}
	return out
}

// Block is a run of consecutive statements with one mix label.
type Block struct {
	Label string
	Start int
	Count int
}

// ColumnWeight gives the probability that a generated point query hits a
// column.
type ColumnWeight struct {
	Column string
	Weight float64
}

// Mix is a distribution over single-column point queries, the workload
// unit of the paper's experiments (Table 1): a query of the form
// "SELECT col FROM table WHERE col = v" is generated with the column
// drawn from the weights and v uniform in [0, Domain).
type Mix struct {
	Name    string
	Table   string
	Domain  int64
	Weights []ColumnWeight
}

// Validate checks that the weights are positive and sum to ~1.
func (m Mix) Validate() error {
	if len(m.Weights) == 0 {
		return fmt.Errorf("workload: mix %q has no column weights", m.Name)
	}
	if m.Domain <= 0 {
		return fmt.Errorf("workload: mix %q has non-positive domain", m.Name)
	}
	sum := 0.0
	for _, w := range m.Weights {
		if w.Weight <= 0 {
			return fmt.Errorf("workload: mix %q has non-positive weight for %q", m.Name, w.Column)
		}
		sum += w.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload: mix %q weights sum to %f, want 1", m.Name, sum)
	}
	return nil
}

// Generate produces n point queries drawn from the mix.
func (m Mix) Generate(rng *rand.Rand, n int) ([]Statement, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out := make([]Statement, n)
	for i := 0; i < n; i++ {
		col := m.pick(rng.Float64())
		v := rng.Int63n(m.Domain)
		text := fmt.Sprintf("SELECT %s FROM %s WHERE %s = %d", col, m.Table, col, v)
		s, err := NewStatement(text)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

func (m Mix) pick(u float64) string {
	acc := 0.0
	for _, w := range m.Weights {
		acc += w.Weight
		if u < acc {
			return w.Column
		}
	}
	return m.Weights[len(m.Weights)-1].Column
}

// --- The paper's experimental setup (Table 1 / Table 2) --------------

// PaperTable is the experiment table name.
const PaperTable = "t"

// PaperDomain is the value domain of the experiment table: values are
// uniform in [0, PaperDomain). The paper used 500000 over 2.5M rows
// (≈5 matches per point query); scaled-down tables shrink it
// proportionally via DomainForRows.
const PaperDomain = 500000

// PaperRows is the paper's table cardinality.
const PaperRows = 2500000

// DomainForRows scales the value domain with the row count, preserving
// the paper's ~5 rows per point-query value.
func DomainForRows(rows int64) int64 {
	d := rows / 5
	if d < 1 {
		return 1
	}
	return d
}

// PaperMixes returns the four query mixes of Table 1 (A, B, C, D) over
// the paper's table, with the value domain scaled for the given row
// count.
func PaperMixes(rows int64) map[string]Mix {
	domain := DomainForRows(rows)
	mix := func(name string, wa, wb, wc, wd float64) Mix {
		return Mix{
			Name:   name,
			Table:  PaperTable,
			Domain: domain,
			Weights: []ColumnWeight{
				{Column: "a", Weight: wa},
				{Column: "b", Weight: wb},
				{Column: "c", Weight: wc},
				{Column: "d", Weight: wd},
			},
		}
	}
	return map[string]Mix{
		"A": mix("A", 0.55, 0.25, 0.10, 0.10),
		"B": mix("B", 0.25, 0.55, 0.10, 0.10),
		"C": mix("C", 0.10, 0.10, 0.55, 0.25),
		"D": mix("D", 0.10, 0.10, 0.25, 0.55),
	}
}

// paperBlockPattern returns the 30-block mix labels of one of the
// paper's workloads (Table 2, blocks of 500 queries).
func paperBlockPattern(name string) ([]string, error) {
	pattern := map[string][3]string{
		// Ten 500-query blocks per phase. W1: minor shifts every 1000
		// queries; W2: every 500; W3: W1 out of phase.
		"W1": {"A A B B A A B B A A", "C C D D C C D D C C", "A A B B A A B B A A"},
		"W2": {"A B A B A B A B A B", "C D C D C D C D C D", "A B A B A B A B A B"},
		"W3": {"B B A A B B A A B B", "D D C C D D C C D D", "B B A A B B A A B B"},
	}
	p, ok := pattern[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown paper workload %q (want W1, W2, or W3)", name)
	}
	var out []string
	for _, phase := range p {
		out = append(out, strings.Fields(phase)...)
	}
	return out, nil
}

// PaperWorkload generates W1, W2, or W3 from Table 2 at the given scale:
// 30 blocks of blockSize queries (the paper used blockSize = 500 for a
// 15000-query workload). The same seed always yields the same workload.
func PaperWorkload(name string, rows int64, blockSize int, seed int64) (*Workload, error) {
	labels, err := paperBlockPattern(name)
	if err != nil {
		return nil, err
	}
	mixes := PaperMixes(rows)
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{Name: name}
	for _, label := range labels {
		stmts, err := mixes[label].Generate(rng, blockSize)
		if err != nil {
			return nil, err
		}
		w.Append(label, stmts...)
	}
	return w, nil
}

// GenerateInserts produces n single-row INSERT statements over an
// all-integer table with uniform values — a bulk-load phase. Insert
// statements make index maintenance costs visible to the advisor, which
// is what lets it discover the classic drop-load-rebuild pattern.
func GenerateInserts(table string, columns int, domain int64, rng *rand.Rand, n int) ([]Statement, error) {
	if columns <= 0 || domain <= 0 {
		return nil, fmt.Errorf("workload: inserts need positive columns and domain")
	}
	out := make([]Statement, n)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.Reset()
		fmt.Fprintf(&sb, "INSERT INTO %s VALUES (", table)
		for c := 0; c < columns; c++ {
			if c > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%d", rng.Int63n(domain))
		}
		sb.WriteString(")")
		s, err := NewStatement(sb.String())
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// GenerateUpdates produces n single-row point updates
// ("UPDATE table SET setCol = v WHERE whereCol = w") with uniform
// values.
func GenerateUpdates(table, setCol, whereCol string, domain int64, rng *rand.Rand, n int) ([]Statement, error) {
	if domain <= 0 {
		return nil, fmt.Errorf("workload: updates need a positive domain")
	}
	out := make([]Statement, n)
	for i := 0; i < n; i++ {
		text := fmt.Sprintf("UPDATE %s SET %s = %d WHERE %s = %d",
			table, setCol, rng.Int63n(domain), whereCol, rng.Int63n(domain))
		s, err := NewStatement(text)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// --- Phased generation for custom scenarios ---------------------------

// PhaseSpec describes one block of a phased workload.
type PhaseSpec struct {
	Mix   string
	Count int
}

// GeneratePhased builds a workload from a block plan over named mixes.
func GeneratePhased(name string, mixes map[string]Mix, plan []PhaseSpec, seed int64) (*Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{Name: name}
	for _, p := range plan {
		m, ok := mixes[p.Mix]
		if !ok {
			return nil, fmt.Errorf("workload: plan references unknown mix %q", p.Mix)
		}
		stmts, err := m.Generate(rng, p.Count)
		if err != nil {
			return nil, err
		}
		w.Append(p.Mix, stmts...)
	}
	return w, nil
}

// --- Segments ----------------------------------------------------------

// Segment is a run of consecutive statements treated as one optimization
// stage: the design is constant within a segment, and its EXEC cost is
// the sum over its statements.
type Segment struct {
	Start      int // index of the first statement
	Statements []Statement
	Label      string
}

// Segments splits the workload into fixed-size stages. If the workload
// has labels, boundaries additionally snap to label changes so no
// segment mixes two blocks.
func (w *Workload) Segments(size int) []Segment {
	if size <= 0 {
		size = 1
	}
	var out []Segment
	i := 0
	for i < len(w.Statements) {
		end := i + size
		if end > len(w.Statements) {
			end = len(w.Statements)
		}
		label := ""
		if len(w.Labels) == len(w.Statements) {
			label = w.Labels[i]
			for j := i + 1; j < end; j++ {
				if w.Labels[j] != label {
					end = j
					break
				}
			}
		}
		out = append(out, Segment{Start: i, Statements: w.Statements[i:end], Label: label})
		i = end
	}
	return out
}

// MixHistogram counts statements per label, sorted by label — useful for
// reports and tests.
func (w *Workload) MixHistogram() []Block {
	counts := make(map[string]int)
	for _, l := range w.Labels {
		counts[l]++
	}
	labels := make([]string, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]Block, len(labels))
	for i, l := range labels {
		out[i] = Block{Label: l, Count: counts[l]}
	}
	return out
}
