package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceJSON is the on-disk trace format: one SQL string per statement,
// with optional parallel labels.
type traceJSON struct {
	Name       string   `json:"name,omitempty"`
	Statements []string `json:"statements"`
	Labels     []string `json:"labels,omitempty"`
}

// WriteJSON serializes the workload as a JSON trace.
func (w *Workload) WriteJSON(out io.Writer) error {
	t := traceJSON{Name: w.Name, Labels: w.Labels}
	t.Statements = make([]string, len(w.Statements))
	for i, s := range w.Statements {
		t.Statements[i] = s.SQL
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadJSON parses a JSON trace, re-parsing every statement.
func ReadJSON(in io.Reader) (*Workload, error) {
	var t traceJSON
	dec := json.NewDecoder(in)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	if len(t.Labels) != 0 && len(t.Labels) != len(t.Statements) {
		return nil, fmt.Errorf("workload: trace has %d labels for %d statements", len(t.Labels), len(t.Statements))
	}
	w := &Workload{Name: t.Name, Labels: t.Labels}
	w.Statements = make([]Statement, len(t.Statements))
	for i, text := range t.Statements {
		s, err := NewStatement(text)
		if err != nil {
			return nil, fmt.Errorf("workload: statement %d: %w", i, err)
		}
		w.Statements[i] = s
	}
	return w, nil
}
