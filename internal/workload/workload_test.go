package workload

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dyndesign/internal/sql"
)

func TestNewStatementParses(t *testing.T) {
	s, err := NewStatement("SELECT a FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Stmt.(*sql.Select); !ok {
		t.Errorf("Stmt = %T", s.Stmt)
	}
	if _, err := NewStatement("not sql"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMustStatementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustStatement did not panic")
		}
	}()
	MustStatement("nope")
}

func TestMixValidate(t *testing.T) {
	good := Mix{Name: "m", Table: "t", Domain: 100, Weights: []ColumnWeight{
		{Column: "a", Weight: 0.5}, {Column: "b", Weight: 0.5},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid mix rejected: %v", err)
	}
	bad := []Mix{
		{Name: "empty", Table: "t", Domain: 100},
		{Name: "domain", Table: "t", Domain: 0, Weights: good.Weights},
		{Name: "negative", Table: "t", Domain: 100, Weights: []ColumnWeight{{Column: "a", Weight: -1}, {Column: "b", Weight: 2}}},
		{Name: "sum", Table: "t", Domain: 100, Weights: []ColumnWeight{{Column: "a", Weight: 0.4}}},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("mix %q accepted", m.Name)
		}
	}
}

func TestMixGenerateDistribution(t *testing.T) {
	m := PaperMixes(100000)["A"]
	rng := rand.New(rand.NewSource(9))
	stmts, err := m.Generate(rng, 20000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, s := range stmts {
		sel := s.Stmt.(*sql.Select)
		if len(sel.Where.Conjuncts) != 1 || sel.Where.Conjuncts[0].Op != sql.OpEq {
			t.Fatalf("unexpected statement %q", s.SQL)
		}
		col := sel.Where.Conjuncts[0].Column
		if sel.Columns[0] != col {
			t.Fatalf("projection and predicate column differ in %q", s.SQL)
		}
		counts[col]++
		v := sel.Where.Conjuncts[0].Value.Int
		if v < 0 || v >= m.Domain {
			t.Fatalf("value %d outside domain", v)
		}
	}
	// Mix A: 55/25/10/10.
	want := map[string]float64{"a": 0.55, "b": 0.25, "c": 0.10, "d": 0.10}
	for col, frac := range want {
		got := float64(counts[col]) / 20000
		if math.Abs(got-frac) > 0.02 {
			t.Errorf("column %s frequency %.3f, want %.2f", col, got, frac)
		}
	}
}

func TestMixGenerateDeterministic(t *testing.T) {
	m := PaperMixes(1000)["B"]
	a, _ := m.Generate(rand.New(rand.NewSource(4)), 50)
	b, _ := m.Generate(rand.New(rand.NewSource(4)), 50)
	for i := range a {
		if a[i].SQL != b[i].SQL {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestDomainForRows(t *testing.T) {
	if DomainForRows(2500000) != 500000 {
		t.Errorf("paper domain = %d", DomainForRows(2500000))
	}
	if DomainForRows(3) != 1 {
		t.Errorf("tiny domain = %d", DomainForRows(3))
	}
}

func TestPaperWorkloadStructure(t *testing.T) {
	for _, name := range []string{"W1", "W2", "W3"} {
		w, err := PaperWorkload(name, 10000, 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		if w.Len() != 300 {
			t.Errorf("%s has %d statements", name, w.Len())
		}
		if len(w.Labels) != 300 {
			t.Errorf("%s has %d labels", name, len(w.Labels))
		}
	}
	// The three workloads' block patterns match Table 2.
	w1, _ := PaperWorkload("W1", 10000, 10, 5)
	w2, _ := PaperWorkload("W2", 10000, 10, 5)
	w3, _ := PaperWorkload("W3", 10000, 10, 5)
	if w1.Labels[0] != "A" || w1.Labels[20] != "B" || w1.Labels[100] != "C" || w1.Labels[120] != "D" {
		t.Errorf("W1 pattern wrong")
	}
	if w2.Labels[0] != "A" || w2.Labels[10] != "B" {
		t.Errorf("W2 pattern wrong")
	}
	if w3.Labels[0] != "B" || w3.Labels[20] != "A" {
		t.Errorf("W3 pattern wrong")
	}
	if _, err := PaperWorkload("W9", 10000, 10, 5); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestBlockLabelsRuns(t *testing.T) {
	w := &Workload{}
	w.Append("A", MustStatement("SELECT a FROM t"), MustStatement("SELECT a FROM t"))
	w.Append("B", MustStatement("SELECT b FROM t"))
	w.Append("A", MustStatement("SELECT a FROM t"))
	blocks := w.BlockLabels()
	if len(blocks) != 3 {
		t.Fatalf("blocks = %+v", blocks)
	}
	if blocks[0].Label != "A" || blocks[0].Count != 2 || blocks[0].Start != 0 {
		t.Errorf("block 0 = %+v", blocks[0])
	}
	if blocks[1].Label != "B" || blocks[1].Start != 2 {
		t.Errorf("block 1 = %+v", blocks[1])
	}
}

func TestSlice(t *testing.T) {
	w, _ := PaperWorkload("W1", 1000, 5, 1)
	sub := w.Slice(10, 20)
	if sub.Len() != 10 || len(sub.Labels) != 10 {
		t.Errorf("slice len = %d/%d", sub.Len(), len(sub.Labels))
	}
	if sub.Statements[0].SQL != w.Statements[10].SQL {
		t.Error("slice misaligned")
	}
}

func TestGeneratePhased(t *testing.T) {
	mixes := PaperMixes(1000)
	w, err := GeneratePhased("test", mixes, []PhaseSpec{
		{Mix: "A", Count: 10}, {Mix: "C", Count: 5},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 15 {
		t.Errorf("len = %d", w.Len())
	}
	if w.Labels[0] != "A" || w.Labels[12] != "C" {
		t.Errorf("labels = %v", w.Labels)
	}
	if _, err := GeneratePhased("bad", mixes, []PhaseSpec{{Mix: "Z", Count: 1}}, 3); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestSegmentsRespectLabels(t *testing.T) {
	w := &Workload{}
	for i := 0; i < 7; i++ {
		w.Append("A", MustStatement("SELECT a FROM t"))
	}
	for i := 0; i < 5; i++ {
		w.Append("B", MustStatement("SELECT b FROM t"))
	}
	segs := w.Segments(4)
	// Expect [0,4) A, [4,7) A (snapped), [7,11) B, [11,12) B.
	if len(segs) != 4 {
		t.Fatalf("segments = %d", len(segs))
	}
	for _, s := range segs {
		label := w.Labels[s.Start]
		for i := range s.Statements {
			if w.Labels[s.Start+i] != label {
				t.Fatal("segment mixes labels")
			}
		}
	}
	if segs[1].Start != 4 || len(segs[1].Statements) != 3 {
		t.Errorf("segment 1 = %+v", segs[1])
	}
	// Zero size defaults to 1.
	if got := len(w.Segments(0)); got != 12 {
		t.Errorf("size-0 segments = %d", got)
	}
	// Segments cover every statement exactly once.
	total := 0
	for _, s := range w.Segments(5) {
		total += len(s.Statements)
	}
	if total != w.Len() {
		t.Errorf("segments cover %d of %d", total, w.Len())
	}
}

func TestMixHistogram(t *testing.T) {
	w, _ := PaperWorkload("W1", 1000, 10, 1)
	hist := w.MixHistogram()
	total := 0
	for _, b := range hist {
		total += b.Count
	}
	if total != w.Len() {
		t.Errorf("histogram counts %d of %d", total, w.Len())
	}
	if len(hist) != 4 {
		t.Errorf("histogram = %+v", hist)
	}
	// W1 per phase: A A B B A A B B A A — so A appears in 12 of 30
	// blocks (two A-phases), B in 8, C in 6, D in 4.
	if hist[0].Label != "A" || hist[0].Count != 120 {
		t.Errorf("A count = %+v", hist[0])
	}
	if hist[1].Label != "B" || hist[1].Count != 80 {
		t.Errorf("B count = %+v", hist[1])
	}
	if hist[2].Label != "C" || hist[2].Count != 60 {
		t.Errorf("C count = %+v", hist[2])
	}
	if hist[3].Label != "D" || hist[3].Count != 40 {
		t.Errorf("D count = %+v", hist[3])
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	w, _ := PaperWorkload("W2", 1000, 5, 2)
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || got.Len() != w.Len() {
		t.Fatalf("round trip: %s/%d vs %s/%d", got.Name, got.Len(), w.Name, w.Len())
	}
	for i := range w.Statements {
		if got.Statements[i].SQL != w.Statements[i].SQL {
			t.Fatalf("statement %d differs", i)
		}
		if got.Labels[i] != w.Labels[i] {
			t.Fatalf("label %d differs", i)
		}
	}
}

func TestTraceJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"statements": ["garbage here"]}`)); err == nil {
		t.Error("unparsable statement accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"statements": ["SELECT a FROM t"], "labels": ["A","B"]}`)); err == nil {
		t.Error("label arity mismatch accepted")
	}
}

func TestGenerateInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	stmts, err := GenerateInserts("t", 4, 100, rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 50 {
		t.Fatalf("generated %d", len(stmts))
	}
	for _, s := range stmts {
		ins, ok := s.Stmt.(*sql.Insert)
		if !ok || len(ins.Rows) != 1 || len(ins.Rows[0]) != 4 {
			t.Fatalf("bad insert %q", s.SQL)
		}
		for _, v := range ins.Rows[0] {
			if v.Int < 0 || v.Int >= 100 {
				t.Fatalf("value %d outside domain", v.Int)
			}
		}
	}
	if _, err := GenerateInserts("t", 0, 100, rng, 1); err == nil {
		t.Error("zero columns accepted")
	}
	if _, err := GenerateInserts("t", 4, 0, rng, 1); err == nil {
		t.Error("zero domain accepted")
	}
}

func TestGenerateUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	stmts, err := GenerateUpdates("t", "b", "a", 100, rng, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stmts {
		upd, ok := s.Stmt.(*sql.Update)
		if !ok || len(upd.Set) != 1 || upd.Set[0].Column != "b" {
			t.Fatalf("bad update %q", s.SQL)
		}
		if upd.Where == nil || upd.Where.Conjuncts[0].Column != "a" {
			t.Fatalf("bad update predicate %q", s.SQL)
		}
	}
	if _, err := GenerateUpdates("t", "b", "a", 0, rng, 1); err == nil {
		t.Error("zero domain accepted")
	}
}
