package workload

import (
	"fmt"
	"math/rand"
)

// Resample returns a deterministic, phase-preserving perturbation of the
// workload: within every label block, statements are redrawn i.i.d. with
// replacement from that block's own statements (a block-wise bootstrap).
// The result has the same length, the same labels, and the same block
// structure; only the per-position statement draws differ — exactly the
// "another trace from the same phases" counterfactual the overfitting
// audit replays designs against. A workload without labels is treated as
// one block, which preserves its statement mix but not any latent phase
// structure (documented so callers label traces they want audited
// phase-faithfully).
//
// The same (workload, seed) pair always yields the same resample;
// statements are shared with the source workload, never re-parsed.
func (w *Workload) Resample(seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	out := &Workload{
		Name:       fmt.Sprintf("%s~resample(%d)", w.Name, seed),
		Statements: make([]Statement, len(w.Statements)),
	}
	if len(w.Labels) == len(w.Statements) {
		out.Labels = append([]string(nil), w.Labels...)
	}
	blocks := w.BlockLabels()
	if len(blocks) == 0 && len(w.Statements) > 0 {
		blocks = []Block{{Start: 0, Count: len(w.Statements)}}
	}
	for _, b := range blocks {
		for i := b.Start; i < b.Start+b.Count; i++ {
			out.Statements[i] = w.Statements[b.Start+rng.Intn(b.Count)]
		}
	}
	return out
}
