package experiments

import (
	"context"
	"fmt"
	"io"

	"dyndesign/internal/advisor"
	"dyndesign/internal/workload"
)

// Figure3Entry is one bar of Figure 3: a workload executed under one of
// the two W1-based designs.
type Figure3Entry struct {
	Workload string
	Design   string // "unconstrained" or "constrained"
	Report   advisor.ReplayReport
	// Relative is the total page cost relative to W1 under the
	// unconstrained design (the paper's 100% baseline).
	Relative float64
}

// Figure3Result reproduces Figure 3: relative execution cost of W1, W2,
// and W3 under the constrained and unconstrained W1-based designs.
type Figure3Result struct {
	Entries       []Figure3Entry
	BaselinePages int64
}

// Entry returns the bar for (workload, design).
func (r *Figure3Result) Entry(workloadName, design string) *Figure3Entry {
	for i := range r.Entries {
		if r.Entries[i].Workload == workloadName && r.Entries[i].Design == design {
			return &r.Entries[i]
		}
	}
	return nil
}

// RunFigure3 executes all six workload × design combinations on the
// experiment database, actually building and dropping indexes at the
// design change points and counting every logical page access. The
// designs are the ones recommended for W1; W2 and W3 run under them
// unchanged, which is the point of the experiment.
func RunFigure3(ctx context.Context, t2 *Table2Result) (_ *Figure3Result, err error) {
	end := experimentSpan("fig3")
	defer func() { end(err == nil) }()
	res := &Figure3Result{}
	designs := []struct {
		name string
		rec  *advisor.Recommendation
	}{
		{"unconstrained", t2.Unconstrained},
		{"constrained", t2.Constrained},
	}
	workloads := []struct {
		name string
		w    *workload.Workload
	}{
		{"W1", t2.W1}, {"W2", t2.W2}, {"W3", t2.W3},
	}
	for _, d := range designs {
		perStmt := d.rec.PerStatement()
		for _, wl := range workloads {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			report, err := advisor.Replay(t2.DB, wl.w, d.rec, perStmt)
			if err != nil {
				return nil, fmt.Errorf("experiments: replaying %s under %s design: %w", wl.name, d.name, err)
			}
			res.Entries = append(res.Entries, Figure3Entry{
				Workload: wl.name,
				Design:   d.name,
				Report:   report,
			})
		}
	}
	base := res.Entry("W1", "unconstrained")
	if base == nil || base.Report.TotalPages() == 0 {
		return nil, fmt.Errorf("experiments: missing W1/unconstrained baseline")
	}
	res.BaselinePages = base.Report.TotalPages()
	for i := range res.Entries {
		res.Entries[i].Relative = float64(res.Entries[i].Report.TotalPages()) / float64(res.BaselinePages)
	}
	return res, nil
}

// Render prints the figure as a text bar chart in the paper's layout:
// execution cost relative to W1 under the unconstrained design.
func (r *Figure3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: Relative Execution Cost of Different Workloads\n")
	fmt.Fprintf(w, "          Under Constrained and Unconstrained W1 Designs\n")
	fmt.Fprintf(w, "          (logical page accesses; baseline = W1 under unconstrained = %d pages)\n\n", r.BaselinePages)
	for _, wl := range []string{"W1", "W2", "W3"} {
		for _, d := range []string{"unconstrained", "constrained"} {
			e := r.Entry(wl, d)
			if e == nil {
				continue
			}
			bar := int(e.Relative*40 + 0.5)
			fmt.Fprintf(w, "%-3s %-13s %6.1f%%  %s\n", wl, d, e.Relative*100, strings40(bar))
		}
	}
}

func strings40(n int) string {
	if n < 0 {
		n = 0
	}
	if n > 80 {
		n = 80
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
