package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"dyndesign/internal/core"
)

// Figure4Result reproduces Figure 4: the runtime of the constrained
// design optimizers relative to the unconstrained optimizer, as a
// function of the change constraint k.
type Figure4Result struct {
	Ks []int
	// KAwareRel and MergeRel are runtimes relative to the unconstrained
	// optimizer (1.0 = same).
	KAwareRel []float64
	MergeRel  []float64
	// Unconstrained is the absolute baseline runtime.
	Unconstrained time.Duration
	// UnconstrainedChanges is l, the change count of the unconstrained
	// optimum — the point past which merging needs no steps.
	UnconstrainedChanges int
}

// timeIt measures fn with enough repetitions for a stable reading: at
// least 3 runs and at least ~50 ms of total work, reporting the minimum.
// The first error (a fault or a cancellation mid-rep) aborts the
// measurement.
func timeIt(fn func() error) (time.Duration, error) {
	if err := fn(); err != nil { // warm up
		return 0, err
	}
	best := time.Duration(1<<62 - 1)
	total := time.Duration(0)
	for reps := 0; reps < 3 || total < 50*time.Millisecond; reps++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		d := time.Since(start)
		if d < best {
			best = d
		}
		total += d
		if reps > 50 {
			break
		}
	}
	return best, nil
}

// RunFigure4 times the k-aware-graph optimizer and the sequential
// merging optimizer for each k, relative to the unconstrained optimizer,
// on the W1 problem. The cost matrix (what-if EXEC evaluations) is
// warmed once and shared — it is identical preprocessing for every
// optimizer and every k, so the figure isolates optimization time the
// way the paper's does. Merging runs in its faithful mode (segment costs
// re-summed per evaluation, the complexity the paper states); the
// memoized variant is covered by the ablation benchmarks.
func RunFigure4(ctx context.Context, t2 *Table2Result, ks []int) (_ *Figure4Result, err error) {
	end := experimentSpan("fig4")
	defer func() { end(err == nil) }()
	if len(ks) == 0 {
		for k := 2; k <= 18; k += 2 {
			ks = append(ks, k)
		}
	}
	base, _, err := t2.Advisor.Problem(t2.W1, PaperOptions(core.Unconstrained))
	if err != nil {
		return nil, err
	}
	// Warm the what-if memo so timing measures graph work, not cost
	// model evaluation.
	seed, err := core.SolveUnconstrained(ctx, base)
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{
		Ks:                   ks,
		UnconstrainedChanges: seed.Changes,
	}
	res.Unconstrained, err = timeIt(func() error {
		_, err := core.SolveUnconstrained(ctx, base)
		return err
	})
	if err != nil {
		return nil, err
	}

	// The per-k cells are independent and share the warmed what-if
	// memo, so they fan out across cores. Each cell reports the
	// *minimum* over its repetitions (see timeIt), which is robust to
	// co-running cells: on an otherwise idle machine every cell gets
	// whole cores for at least one rep, and on one CPU the fan-out
	// degenerates to the serial loop. The figure's claims are the
	// relative growth shapes, which minima preserve.
	res.KAwareRel = make([]float64, len(ks))
	res.MergeRel = make([]float64, len(ks))
	err = fanOut(ctx, len(ks), func(i int) error {
		pk := *base
		pk.K = ks[i]
		dK, err := timeIt(func() error {
			_, err := core.SolveKAware(ctx, &pk)
			return err
		})
		if err != nil {
			return err
		}
		dM, err := timeIt(func() error {
			s, err := core.SolveUnconstrained(ctx, &pk)
			if err != nil {
				return err
			}
			_, _, err = core.SolveMergeOpts(ctx, &pk, s, core.MergeOptions{})
			return err
		})
		if err != nil {
			return err
		}
		res.KAwareRel[i] = float64(dK) / float64(res.Unconstrained)
		res.MergeRel[i] = float64(dM) / float64(res.Unconstrained)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the figure as a text series in the paper's layout.
func (r *Figure4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 4: Runtimes of Constrained Design Optimizers Relative to\n")
	fmt.Fprintf(w, "          Runtime of Unconstrained Design Optimizer\n")
	fmt.Fprintf(w, "          (unconstrained baseline %.2f ms; unconstrained optimum has l=%d changes)\n\n",
		float64(r.Unconstrained.Microseconds())/1000, r.UnconstrainedChanges)
	fmt.Fprintf(w, "%4s %18s %18s\n", "k", "k-aware graph", "merging")
	for i, k := range r.Ks {
		fmt.Fprintf(w, "%4d %17.0f%% %17.0f%%\n", k, r.KAwareRel[i]*100, r.MergeRel[i]*100)
	}
}
