package experiments

import (
	"context"
	"fmt"
	"io"

	"dyndesign/internal/advisor"
)

// EstimateVsMeasured validates the what-if cost model end to end: for a
// sweep of change bounds, the advisor's estimated sequence cost is
// compared with the logical page accesses actually charged when the
// recommended design sequence is replayed on the live database. The
// design problem is only as good as this agreement — it is the
// reproduction's analogue of trusting the commercial optimizer's
// estimates, made checkable.
type EstimateVsMeasured struct {
	Ks        []int     `json:"ks"`
	Estimated []float64 `json:"estimated"`
	Measured  []int64   `json:"measured"`
}

// RunEstimateVsMeasured sweeps k on W1 and replays each recommendation.
func RunEstimateVsMeasured(ctx context.Context, t2 *Table2Result, ks []int) (_ *EstimateVsMeasured, err error) {
	end := experimentSpan("estimate_vs_measured")
	defer func() { end(err == nil) }()
	res := &EstimateVsMeasured{}
	for _, k := range ks {
		rec, err := t2.Advisor.RecommendContext(ctx, t2.W1, PaperOptions(k))
		if err != nil {
			return nil, err
		}
		report, err := advisor.Replay(t2.DB, t2.W1, rec, rec.PerStatement())
		if err != nil {
			return nil, err
		}
		res.Ks = append(res.Ks, k)
		res.Estimated = append(res.Estimated, rec.Solution.Cost)
		res.Measured = append(res.Measured, report.TotalPages())
	}
	return res, nil
}

// Render prints the comparison.
func (r *EstimateVsMeasured) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: what-if estimate vs measured replay (pages)\n\n")
	fmt.Fprintf(w, "%4s %14s %14s %10s\n", "k", "estimated", "measured", "error")
	for i, k := range r.Ks {
		errPct := 100 * (r.Estimated[i]/float64(r.Measured[i]) - 1)
		fmt.Fprintf(w, "%4d %14.0f %14d %9.2f%%\n", k, r.Estimated[i], r.Measured[i], errPct)
	}
}
