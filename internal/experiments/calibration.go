package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"dyndesign/internal/advisor"
	"dyndesign/internal/calib"
)

// CalibrationResult validates the what-if cost model at statement
// granularity. EstimateVsMeasured (the ablation above it) compares
// sequence totals, where per-statement errors can cancel; this pairs
// each sampled statement's estimate with its own measured page
// accesses under the recommended design, so bias and spread become
// visible per statement class and per access structure — the numbers
// the advisord calibration monitor tracks in production.
type CalibrationResult struct {
	// SamplesRequested is the replay budget the run was given.
	SamplesRequested int `json:"samples_requested"`
	// Run is the raw replay report: the paired samples plus coverage
	// accounting.
	Run *calib.RunReport `json:"run"`
	// Report is the monitor's aggregate view of the run: bias, ratio
	// quantiles, and the per-class / per-structure breakdown.
	Report calib.Report `json:"report"`
}

// RunCalibration replays a deterministic sample of W1 statements under
// the constrained Table 2 recommendation and folds the paired
// estimate/measurement observations through the calibration monitor.
func RunCalibration(ctx context.Context, t2 *Table2Result, samples int) (_ *CalibrationResult, err error) {
	end := experimentSpan("calibration")
	defer func() { end(err == nil) }()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mon := calib.NewMonitor()
	rep, err := t2.Advisor.Calibrate(t2.Constrained, advisor.CalibrateOptions{
		Samples: samples,
		Seed:    7,
		Monitor: mon,
	})
	if err != nil {
		return nil, err
	}
	return &CalibrationResult{SamplesRequested: samples, Run: rep, Report: mon.Report()}, nil
}

// Render prints the calibration summary and breakdowns.
func (r *CalibrationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: per-statement cost-model calibration\n\n")
	fmt.Fprintf(w, "  %d samples (%d DML skipped, %d errors, %d index transitions, %.1f ms)\n",
		len(r.Run.Samples), r.Run.SkippedDML, r.Run.Errors, r.Run.Transitions,
		float64(r.Run.Wall.Microseconds())/1000)
	fmt.Fprintf(w, "  median abs ratio %.2fx   p90 %.2fx   max %.2fx   bias %+.0f%%\n\n",
		r.Report.MedianAbsRatio, r.Report.P90AbsRatio, r.Report.MaxAbsRatio,
		100*(math.Exp2(r.Report.MeanSignedLog2)-1))
	renderGroups(w, "class", r.Report.PerClass)
	renderGroups(w, "structure", r.Report.PerStructure)
}

func renderGroups(w io.Writer, dim string, groups map[string]calib.GroupStats) {
	if len(groups) == 0 {
		return
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "%-16s %8s %12s %12s %8s\n", dim, "samples", "median", "p90", "bias")
	for _, k := range keys {
		g := groups[k]
		fmt.Fprintf(w, "%-16s %8d %11.2fx %11.2fx %+7.0f%%\n",
			k, g.Samples, g.MedianAbsRatio, g.P90AbsRatio, 100*(math.Exp2(g.MeanSignedLog2)-1))
	}
	fmt.Fprintln(w)
}
