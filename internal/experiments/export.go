package experiments

import (
	"encoding/json"
	"io"

	"dyndesign/internal/explain"
)

// Machine-readable exports: every experiment result can be written as
// JSON so plots and downstream analysis need not parse the text
// renderings. cmd/paperexp exposes this via -format json.

// WriteJSON serders any experiment result with stable indentation.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// JSONReport bundles the results paperexp produced in one run; nil
// fields were not requested.
type JSONReport struct {
	Scale     Scale            `json:"scale"`
	Table1    *Table1          `json:"table1,omitempty"`
	Table2    []Table2Row      `json:"table2,omitempty"`
	Figure3   *Figure3Result   `json:"figure3,omitempty"`
	Figure4   *Figure4Result   `json:"figure4,omitempty"`
	Quality   *QualityVsK      `json:"quality_vs_k,omitempty"`
	WriteLoad *WriteLoadResult `json:"write_load,omitempty"`
	// Explanation is the decision provenance of the constrained Table 2
	// recommendation (paperexp -explain-out).
	Explanation *explain.Explanation `json:"explanation,omitempty"`
	// Calibration is the per-statement estimate-vs-measured validation
	// of the cost model under the constrained recommendation.
	Calibration *CalibrationResult `json:"calibration,omitempty"`
}
