package experiments

import (
	"context"
	"fmt"
	"io"

	"dyndesign/internal/advisor"
	"dyndesign/internal/core"
	"dyndesign/internal/engine"
	"dyndesign/internal/workload"
)

// Table2Result reproduces the paper's Table 2: the three dynamic
// workloads and the designs recommended for W1 by the unconstrained and
// the k=2-constrained advisor. It also carries the database, workloads,
// and recommendations forward so Figure 3 can reuse them.
type Table2Result struct {
	Scale         Scale
	DB            *engine.Database
	Advisor       *advisor.Advisor
	W1, W2, W3    *workload.Workload
	Unconstrained *advisor.Recommendation
	Constrained   *advisor.Recommendation
	Rows          []Table2Row
}

// Table2Row is one block row of Table 2.
type Table2Row struct {
	Range               string // query number range, e.g. "1-500"
	W1                  string // mix label
	DesignUnconstrained string
	DesignConstrained   string
	W2, W3              string
}

// formatDesign renders a configuration the way the paper's table does:
// the single index name, or {} for the empty design (brace list for
// multi-index configurations, which the paper's space excludes).
func formatDesign(c core.Config, names []string) string {
	s := c.Structures()
	if len(s) == 0 {
		return "{}"
	}
	if len(s) == 1 {
		return names[s[0]]
	}
	return c.Format(names)
}

// RunTable2 reproduces Table 2 at the given scale: it loads the table,
// generates W1/W2/W3, recommends designs for W1 with k = ∞ and k = 2,
// and tabulates the per-block mixes and designs.
func RunTable2(ctx context.Context, s Scale) (_ *Table2Result, err error) {
	end := experimentSpan("table2")
	defer func() { end(err == nil) }()
	db, err := SetupPaperDatabase(s)
	if err != nil {
		return nil, err
	}
	// The three workload generators are independent cells; each writes
	// its own slot.
	wnames := []string{"W1", "W2", "W3"}
	ws := make([]*workload.Workload, len(wnames))
	err = fanOut(ctx, len(wnames), func(i int) error {
		w, err := workload.PaperWorkload(wnames[i], s.Rows, s.BlockSize, s.Seed+100*int64(i+1))
		ws[i] = w
		return err
	})
	if err != nil {
		return nil, err
	}
	w1, w2, w3 := ws[0], ws[1], ws[2]
	adv, err := advisor.New(db, PaperSpace())
	if err != nil {
		return nil, err
	}
	// The unconstrained and the k=2 recommendation are independent
	// solver cells over the same advisor (its physical descriptions are
	// read-only), so they run concurrently too.
	recKs := []int{core.Unconstrained, 2}
	recs := make([]*advisor.Recommendation, len(recKs))
	err = fanOut(ctx, len(recKs), func(i int) error {
		rec, err := adv.RecommendContext(ctx, w1, PaperOptions(recKs[i]))
		recs[i] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	unc, con := recs[0], recs[1]

	res := &Table2Result{
		Scale: s, DB: db, Advisor: adv,
		W1: w1, W2: w2, W3: w3,
		Unconstrained: unc, Constrained: con,
	}
	// One table row per fixed-size block, like the paper's Table 2 (30
	// rows of 500 queries). Designs are sampled mid-block: with one
	// optimization stage per statement the optimal switch point can
	// drift a statement or two around a block boundary, while the
	// mid-block design characterizes the block.
	names := adv.Space().StructureNames()
	for start := 0; start < w1.Len(); start += s.BlockSize {
		mid := start + s.BlockSize/2
		res.Rows = append(res.Rows, Table2Row{
			Range:               fmt.Sprintf("%d-%d", start+1, start+s.BlockSize),
			W1:                  w1.Labels[start],
			DesignUnconstrained: formatDesign(unc.DesignAt(mid), names),
			DesignConstrained:   formatDesign(con.DesignAt(mid), names),
			W2:                  w2.Labels[start],
			W3:                  w3.Labels[start],
		})
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 2: Dynamic Workloads and Physical Designs (rows=%d, block=%d)\n",
		r.Scale.Rows, r.Scale.BlockSize)
	fmt.Fprintf(w, "%-14s %-4s %-10s %-10s %-4s %-4s\n",
		"query number", "W1", "k=inf", "k=2", "W2", "W3")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %-4s %-10s %-10s %-4s %-4s\n",
			row.Range, row.W1, row.DesignUnconstrained, row.DesignConstrained, row.W2, row.W3)
	}
	fmt.Fprintf(w, "\nunconstrained: cost=%.0f changes=%d   constrained k=2: cost=%.0f changes=%d\n",
		r.Unconstrained.Solution.Cost, r.Unconstrained.Solution.Changes,
		r.Constrained.Solution.Cost, r.Constrained.Solution.Changes)
}

// ExpectedDesigns returns the paper's Table 2 design columns for
// cross-checking: per block label, the design the paper reports for the
// unconstrained and the k=2 advisor.
func ExpectedDesigns() (unconstrained, constrained map[string]string) {
	unconstrained = map[string]string{
		"A": "I(a,b)", "B": "I(b)", "C": "I(c,d)", "D": "I(d)",
	}
	// The constrained design depends on the phase, not the block label:
	// I(a,b) during phases 1 and 3, I(c,d) during phase 2.
	constrained = map[string]string{
		"A": "I(a,b)", "B": "I(a,b)", "C": "I(c,d)", "D": "I(c,d)",
	}
	return unconstrained, constrained
}
