package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// fanOut runs fn(i) for every i in [0, n) on up to GOMAXPROCS
// goroutines — the harness's cell-level parallelism for independent
// (strategy × workload × k) experiment cells. Each fn must write its
// results only to index-distinct slots, so output order is
// deterministic regardless of scheduling. The first error (or a
// panic, converted to an error) aborts the remaining cells and is
// returned; cancelling ctx aborts before the next cell starts. With
// one CPU it degenerates to a plain serial loop, which keeps
// timing-sensitive cells undistorted on small machines.
func fanOut(ctx context.Context, n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
		abort    atomic.Bool
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		abort.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !abort.Load() {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runCell(i, fn); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// runCell invokes one cell, converting a panic into an error so a
// failing cell cannot crash sibling goroutines' process.
func runCell(i int, fn func(int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: cell %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}
