package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"dyndesign/internal/core"
	"dyndesign/internal/workload"
)

// WriteLoadResult is the write-workload ablation: a read phase, a bulk
// insert phase, and another read phase. Definition 1 admits updates in
// the statement sequence; this experiment shows the consequence — the
// optimizer discovers the classic drop-load-rebuild pattern, dropping
// the index for the insert phase because per-row index maintenance over
// the phase exceeds one rebuild.
type WriteLoadResult struct {
	Scale Scale
	// PhaseDesigns holds the mid-phase design of the unconstrained
	// recommendation per phase (read, load, read).
	PhaseDesigns []string
	// Changes used by the unconstrained and the k=2 design.
	UnconstrainedChanges int
	ConstrainedChanges   int
	// KeepCost is the estimated cost of the best design forced to keep
	// its index through the load (k = 0 static); DropCost is the k=2
	// optimum that may drop it.
	KeepCost, DropCost float64
}

// RunWriteLoad builds the read/load/read workload and recommends designs
// for it.
func RunWriteLoad(ctx context.Context, s Scale) (_ *WriteLoadResult, err error) {
	end := experimentSpan("writeload")
	defer func() { end(err == nil) }()
	db, err := SetupPaperDatabase(s)
	if err != nil {
		return nil, err
	}
	adv, err := newPaperAdvisor(db)
	if err != nil {
		return nil, err
	}
	mixes := workload.PaperMixes(s.Rows)
	rng := rand.New(rand.NewSource(s.Seed + 900))
	phase := 10 * s.BlockSize

	w := &workload.Workload{Name: "read-load-read"}
	reads1, err := mixes["A"].Generate(rng, phase)
	if err != nil {
		return nil, err
	}
	w.Append("A", reads1...)
	// The load phase is twice as long as a read phase, so per-row index
	// maintenance clearly exceeds one rebuild.
	inserts, err := workload.GenerateInserts(workload.PaperTable, 4, workload.DomainForRows(s.Rows), rng, 2*phase)
	if err != nil {
		return nil, err
	}
	w.Append("LOAD", inserts...)
	reads2, err := mixes["A"].Generate(rng, phase)
	if err != nil {
		return nil, err
	}
	w.Append("A", reads2...)

	unc, err := adv.RecommendContext(ctx, w, PaperOptions(core.Unconstrained))
	if err != nil {
		return nil, err
	}
	con, err := adv.RecommendContext(ctx, w, PaperOptions(2))
	if err != nil {
		return nil, err
	}
	static, err := adv.RecommendStatic(w, PaperOptions(0))
	if err != nil {
		return nil, err
	}

	names := adv.Space().StructureNames()
	res := &WriteLoadResult{
		Scale:                s,
		UnconstrainedChanges: unc.Solution.Changes,
		ConstrainedChanges:   con.Solution.Changes,
		KeepCost:             static.Solution.Cost,
		DropCost:             con.Solution.Cost,
	}
	for _, mid := range []int{phase / 2, 2 * phase, 3*phase + phase/2} {
		res.PhaseDesigns = append(res.PhaseDesigns, formatDesign(unc.DesignAt(mid), names))
	}
	return res, nil
}

// Render prints the write-load ablation.
func (r *WriteLoadResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: write-heavy phase (read / bulk load / read)\n\n")
	labels := []string{"read phase", "load phase", "read phase"}
	for i, d := range r.PhaseDesigns {
		fmt.Fprintf(w, "  %-12s unconstrained design: %s\n", labels[i], d)
	}
	fmt.Fprintf(w, "\n  changes used: unconstrained %d, k=2 %d\n", r.UnconstrainedChanges, r.ConstrainedChanges)
	fmt.Fprintf(w, "  keep index through load (static): %.0f pages\n", r.KeepCost)
	fmt.Fprintf(w, "  drop for the load (k=2):          %.0f pages (%.1f%% cheaper)\n",
		r.DropCost, 100*(1-r.DropCost/r.KeepCost))
}
