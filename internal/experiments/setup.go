// Package experiments reproduces the paper's evaluation (§6): the
// Table 1 query mixes, the Table 2 workloads and recommended designs,
// the Figure 3 execution-time comparison, and the Figure 4 optimizer
// runtime comparison. Each experiment returns a structured result and
// can render itself as text in the paper's format; cmd/paperexp and the
// root bench harness drive them.
package experiments

import (
	"time"

	"fmt"
	"math/rand"
	"strings"

	"dyndesign/internal/advisor"
	"dyndesign/internal/candidates"
	"dyndesign/internal/core"
	"dyndesign/internal/engine"
	"dyndesign/internal/obs"
	"dyndesign/internal/workload"
)

// Scale fixes the size of an experiment run. The paper used Rows =
// 2 500 000 and BlockSize = 500 (15 000 queries); scaled-down runs keep
// the same structure with proportionally smaller tables and blocks.
type Scale struct {
	// Rows is the cardinality of the experiment table.
	Rows int64
	// BlockSize is the number of queries per Table 2 block (30 blocks
	// total).
	BlockSize int
	// Seed drives all generators.
	Seed int64
}

// PaperScale is the scale of the original experiments.
var PaperScale = Scale{Rows: workload.PaperRows, BlockSize: 500, Seed: 1}

// DefaultScale is a laptop-friendly scale that preserves every regime
// the experiments depend on (seek ≪ index-only scan < heap scan, and
// transition costs far below per-block savings).
var DefaultScale = Scale{Rows: 100000, BlockSize: 200, Seed: 1}

// TestScale is small enough for unit tests while still exhibiting the
// regimes. The block size stays large enough that random mix
// fluctuations within a block cannot overturn the block's best design
// (the deciding margins shrink as 1/√blockSize).
var TestScale = Scale{Rows: 50000, BlockSize: 100, Seed: 1}

// SetupPaperDatabase builds the experiment database: the paper's single
// table t(a,b,c,d) with Rows uniform rows over [0, Rows/5), loaded and
// analyzed. Statistics are built so the advisor can run.
func SetupPaperDatabase(s Scale) (*engine.Database, error) {
	db := engine.New()
	if _, err := db.Exec("CREATE TABLE t (a INT, b INT, c INT, d INT)"); err != nil {
		return nil, err
	}
	domain := workload.DomainForRows(s.Rows)
	rng := rand.New(rand.NewSource(s.Seed))
	const batch = 500
	var sb strings.Builder
	for loaded := int64(0); loaded < s.Rows; {
		sb.Reset()
		sb.WriteString("INSERT INTO t VALUES ")
		n := int64(batch)
		if s.Rows-loaded < n {
			n = s.Rows - loaded
		}
		for i := int64(0); i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d)",
				rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain))
		}
		if _, err := db.Exec(sb.String()); err != nil {
			return nil, err
		}
		loaded += n
	}
	if err := db.Analyze("t"); err != nil {
		return nil, err
	}
	return db, nil
}

// PaperSpace is the paper's design space: six candidate indexes and the
// seven configurations holding at most one of them.
func PaperSpace() advisor.DesignSpace {
	structures := candidates.PaperStructures(workload.PaperTable)
	return advisor.DesignSpace{
		Table:      workload.PaperTable,
		Structures: structures,
		Configs:    advisor.SingleIndexConfigs(len(structures)),
	}
}

// newPaperAdvisor builds an advisor over the paper's design space.
func newPaperAdvisor(db *engine.Database) (*advisor.Advisor, error) {
	return advisor.New(db, PaperSpace())
}

// emptyFinal returns the paper's fixed-empty destination configuration.
func emptyFinal() *core.Config {
	f := core.Config(0)
	return &f
}

// Robustness is the solver robustness configuration applied to every
// advisor run the harness makes (via PaperOptions). The paperexp CLI
// sets it from -timeout, -max-whatif, and -fallback; the zero value
// means plain, unsupervised solves.
type Robustness struct {
	Timeout        time.Duration
	MaxWhatIfCalls int64
	Fallback       bool
	// Tracer, when non-nil, is threaded into every advisor solve the
	// harness makes and wrapped around each experiment
	// ("experiment.<name>" spans); see DESIGN.md §9.
	Tracer *obs.Tracer
}

// robustness is the harness-wide robustness setting; see SetRobustness.
var robustness Robustness

// SetRobustness installs the robustness configuration for subsequent
// experiment runs. It is not safe to call concurrently with a running
// experiment; set it once at startup.
func SetRobustness(r Robustness) { robustness = r }

// PaperOptions returns the advisor options of the paper's experiments:
// initial and final configuration empty, FreeEndpoints counting, and the
// given change bound, plus the harness-wide robustness settings.
func PaperOptions(k int) advisor.Options {
	return advisor.Options{
		K:              k,
		Policy:         core.FreeEndpoints,
		Final:          emptyFinal(),
		Timeout:        robustness.Timeout,
		MaxWhatIfCalls: robustness.MaxWhatIfCalls,
		Fallback:       robustness.Fallback,
		Tracer:         robustness.Tracer,
	}
}

// experimentSpan starts an "experiment.<name>" span on the harness
// tracer; the returned end function takes success.
func experimentSpan(name string) func(ok bool) {
	sp := robustness.Tracer.Start("experiment." + name)
	return func(ok bool) { sp.End(obs.Bool("ok", ok)) }
}
