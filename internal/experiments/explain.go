package experiments

import (
	"context"

	"dyndesign/internal/advisor"
	"dyndesign/internal/explain"
)

// ExplainConstrained attaches decision provenance to the Table 2
// constrained (k=2) recommendation: per-transition cost attribution, the
// cost-of-constraint sweep around k=2, and the overfitting audit
// replaying the design against block-bootstrap resamples of W1. The
// explanation is also stored on t2.Constrained.Explanation.
func ExplainConstrained(ctx context.Context, t2 *Table2Result, opts advisor.ExplainOptions) (_ *explain.Explanation, err error) {
	end := experimentSpan("explain")
	defer func() { end(err == nil) }()
	return t2.Advisor.Explain(ctx, t2.Constrained, opts)
}
