package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"dyndesign/internal/core"
)

// QualityVsK quantifies what the change constraint costs: the optimal
// sequence execution cost for each k from 0 (static design) to l (the
// unconstrained optimum's change count), relative to the unconstrained
// optimum. The paper poses "how to choose k" as an open question; this
// curve is the data a DBA would choose from.
type QualityVsK struct {
	Ks            []int
	RelativeCost  []float64 // optimal cost at k / unconstrained cost
	Unconstrained float64
	L             int
}

// RunQualityVsK computes the quality curve on the W1 problem.
func RunQualityVsK(ctx context.Context, t2 *Table2Result) (_ *QualityVsK, err error) {
	end := experimentSpan("quality_vs_k")
	defer func() { end(err == nil) }()
	base, _, err := t2.Advisor.Problem(t2.W1, PaperOptions(core.Unconstrained))
	if err != nil {
		return nil, err
	}
	unc, err := core.SolveUnconstrained(ctx, base)
	if err != nil {
		return nil, err
	}
	res := &QualityVsK{Unconstrained: unc.Cost, L: unc.Changes}
	// The per-k solves are independent cells sharing one cached what-if
	// model (warmed by the unconstrained solve above), so they fan out
	// across cores; slot k of each slice belongs to cell k.
	res.Ks = make([]int, unc.Changes+1)
	res.RelativeCost = make([]float64, unc.Changes+1)
	err = fanOut(ctx, unc.Changes+1, func(k int) error {
		pk := *base
		pk.K = k
		sol, err := core.SolveKAware(ctx, &pk)
		if err != nil {
			return err
		}
		res.Ks[k] = k
		res.RelativeCost[k] = sol.Cost / unc.Cost
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the quality curve.
func (r *QualityVsK) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: optimal sequence cost vs change bound k\n")
	fmt.Fprintf(w, "          (relative to the unconstrained optimum, which uses l=%d changes)\n\n", r.L)
	fmt.Fprintf(w, "%4s %14s\n", "k", "relative cost")
	for i, k := range r.Ks {
		fmt.Fprintf(w, "%4d %13.1f%%\n", k, r.RelativeCost[i]*100)
	}
}

// RankingAblation measures the §5 path-ranking optimizer: expansions and
// runtime with and without infeasible-prefix pruning, per k. The paper
// predicts the worst case is "quite bad, particularly for small k".
type RankingAblation struct {
	Ks           []int
	PlainExpand  []int
	PrunedExpand []int
	PlainTime    []time.Duration
	PrunedTime   []time.Duration
	Exhausted    []bool // plain ranking ran out of budget at this k
	PrunedOut    []bool // pruned ranking ran out of budget at this k
}

// RunRankingAblation runs the ranking optimizer over the W1 problem for
// each k, with a bounded expansion budget.
func RunRankingAblation(ctx context.Context, t2 *Table2Result, ks []int, budget int) (_ *RankingAblation, err error) {
	end := experimentSpan("ranking_ablation")
	defer func() { end(err == nil) }()
	base, _, err := t2.Advisor.Problem(t2.W1, PaperOptions(core.Unconstrained))
	if err != nil {
		return nil, err
	}
	if _, err := core.SolveUnconstrained(ctx, base); err != nil { // warm the memo
		return nil, err
	}
	res := &RankingAblation{
		Ks:          ks,
		PlainExpand: make([]int, len(ks)), PrunedExpand: make([]int, len(ks)),
		PlainTime: make([]time.Duration, len(ks)), PrunedTime: make([]time.Duration, len(ks)),
		Exhausted: make([]bool, len(ks)), PrunedOut: make([]bool, len(ks)),
	}
	// Per-k cells fan out against the shared warmed model. Expansion
	// counts are scheduling-independent; the per-cell wall times are
	// indicative under contention (the experiment's primary output is
	// the expansion count, which the paper's "quite bad" prediction is
	// about).
	err = fanOut(ctx, len(ks), func(i int) error {
		pk := *base
		pk.K = ks[i]

		start := time.Now()
		plain, err := core.SolveRanking(ctx, &pk, core.RankingOptions{MaxExpansions: budget})
		if err != nil {
			return err
		}
		res.PlainTime[i] = time.Since(start)
		res.PlainExpand[i] = plain.Expansions
		res.Exhausted[i] = plain.Exhausted

		start = time.Now()
		pruned, err := core.SolveRanking(ctx, &pk, core.RankingOptions{MaxExpansions: budget, Prune: true})
		if err != nil {
			return err
		}
		res.PrunedTime[i] = time.Since(start)
		res.PrunedExpand[i] = pruned.Expansions
		res.PrunedOut[i] = pruned.Exhausted
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the ranking ablation.
func (r *RankingAblation) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: shortest-path ranking (§5), expansions per k\n")
	fmt.Fprintf(w, "          (plain ranking enumerates infeasible paths too; pruning discards them)\n\n")
	fmt.Fprintf(w, "%4s %15s %15s %12s %12s\n", "k", "plain expand", "pruned expand", "plain ms", "pruned ms")
	for i, k := range r.Ks {
		plain := fmt.Sprintf("%d", r.PlainExpand[i])
		if r.Exhausted[i] {
			plain += " (budget!)"
		}
		pruned := fmt.Sprintf("%d", r.PrunedExpand[i])
		if r.PrunedOut[i] {
			pruned += " (budget!)"
		}
		fmt.Fprintf(w, "%4d %15s %15s %12.2f %12.2f\n", k, plain, pruned,
			float64(r.PlainTime[i].Microseconds())/1000, float64(r.PrunedTime[i].Microseconds())/1000)
	}
}

// StrategyComparison runs every strategy on the same constrained problem
// and reports cost, changes, and runtime — the library-level summary of
// §3–§5.
type StrategyComparison struct {
	K       int
	Names   []string
	Costs   []float64
	Changes []int
	Times   []time.Duration
	Optimal float64
}

// RunStrategyComparison compares all strategies at one k on W1.
func RunStrategyComparison(ctx context.Context, t2 *Table2Result, k int) (_ *StrategyComparison, err error) {
	end := experimentSpan("strategy_comparison")
	defer func() { end(err == nil) }()
	base, _, err := t2.Advisor.Problem(t2.W1, PaperOptions(k))
	if err != nil {
		return nil, err
	}
	if _, err := core.SolveUnconstrained(ctx, &core.Problem{
		Stages: base.Stages, Configs: base.Configs, Initial: base.Initial,
		Final: base.Final, K: core.Unconstrained, Policy: base.Policy, Model: base.Model,
	}); err != nil { // warm the memo
		return nil, err
	}
	// Every strategy solves the same shared problem concurrently — the
	// sharded what-if memo makes that safe, and it is exactly the
	// "several strategies on one cached model" scenario the costing
	// layer is built for. Costs and changes are scheduling-independent;
	// wall times are indicative under contention.
	strategies := core.Strategies()
	res := &StrategyComparison{
		K:       k,
		Names:   make([]string, len(strategies)),
		Costs:   make([]float64, len(strategies)),
		Changes: make([]int, len(strategies)),
		Times:   make([]time.Duration, len(strategies)),
	}
	err = fanOut(ctx, len(strategies), func(i int) error {
		s := strategies[i]
		start := time.Now()
		var sol *core.Solution
		var err error
		if s == core.StrategyRanking {
			// Plain ranking blows up for small k exactly as the paper
			// warns; run it with a budget and report exhaustion rather
			// than hanging.
			var rr *core.RankingResult
			rr, err = core.SolveRanking(ctx, base, core.RankingOptions{MaxExpansions: 2_000_000})
			if err == nil {
				sol = rr.Solution // nil when exhausted
			}
		} else {
			sol, err = core.Solve(ctx, base, s)
		}
		if err != nil {
			return fmt.Errorf("experiments: strategy %s: %w", s, err)
		}
		res.Names[i] = string(s)
		if sol == nil {
			res.Costs[i] = 0
			res.Changes[i] = -1
		} else {
			res.Costs[i] = sol.Cost
			res.Changes[i] = sol.Changes
		}
		res.Times[i] = time.Since(start)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, s := range strategies {
		if s == core.StrategyKAware && res.Changes[i] >= 0 {
			res.Optimal = res.Costs[i]
		}
	}
	return res, nil
}

// Render prints the strategy comparison.
func (r *StrategyComparison) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: all strategies at k=%d\n\n", r.K)
	fmt.Fprintf(w, "%-12s %14s %10s %10s %10s\n", "strategy", "cost", "vs opt", "changes", "ms")
	for i, n := range r.Names {
		if r.Changes[i] < 0 {
			fmt.Fprintf(w, "%-12s %14s %10s %10s %10.2f  (expansion budget exhausted)\n",
				n, "-", "-", "-", float64(r.Times[i].Microseconds())/1000)
			continue
		}
		fmt.Fprintf(w, "%-12s %14.0f %9.2f%% %10d %10.2f\n",
			n, r.Costs[i], 100*(r.Costs[i]/r.Optimal-1), r.Changes[i],
			float64(r.Times[i].Microseconds())/1000)
	}
}

// PolicyAblation contrasts the two change-counting policies (DESIGN.md
// §3) at the same k: strict Definition 1 spends one of its k changes on
// the initial installation.
type PolicyAblation struct {
	Ks          []int
	FreeCost    []float64
	StrictCost  []float64
	FreeChanges []int
}

// RunPolicyAblation computes both policies' optima across k.
func RunPolicyAblation(ctx context.Context, t2 *Table2Result, ks []int) (_ *PolicyAblation, err error) {
	end := experimentSpan("policy_ablation")
	defer func() { end(err == nil) }()
	res := &PolicyAblation{
		Ks:       ks,
		FreeCost: make([]float64, len(ks)), StrictCost: make([]float64, len(ks)),
		FreeChanges: make([]int, len(ks)),
	}
	// (k × policy) cells are independent; both policies of one k share
	// a cell so the fan-out stays coarse-grained.
	err = fanOut(ctx, len(ks), func(i int) error {
		opts := PaperOptions(ks[i])
		pFree, _, err := t2.Advisor.Problem(t2.W1, opts)
		if err != nil {
			return err
		}
		solFree, err := core.SolveKAware(ctx, pFree)
		if err != nil {
			return err
		}
		opts.Policy = core.CountAll
		pStrict, _, err := t2.Advisor.Problem(t2.W1, opts)
		if err != nil {
			return err
		}
		solStrict, err := core.SolveKAware(ctx, pStrict)
		if err != nil {
			return err
		}
		res.FreeCost[i] = solFree.Cost
		res.StrictCost[i] = solStrict.Cost
		res.FreeChanges[i] = solFree.Changes
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the policy ablation.
func (r *PolicyAblation) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: change-counting policy (FreeEndpoints vs strict Definition 1)\n\n")
	fmt.Fprintf(w, "%4s %16s %16s %10s\n", "k", "free endpoints", "strict Def. 1", "penalty")
	for i, k := range r.Ks {
		fmt.Fprintf(w, "%4d %16.0f %16.0f %9.2f%%\n", k, r.FreeCost[i], r.StrictCost[i],
			100*(r.StrictCost[i]/r.FreeCost[i]-1))
	}
}
