package experiments

import (
	"fmt"
	"io"
	"sort"

	"dyndesign/internal/workload"
)

// Table1 describes the workload query mixes (the paper's Table 1).
type Table1 struct {
	Columns []string
	// Rows maps mix name -> per-column weight, in Columns order.
	Rows map[string][]float64
}

// RunTable1 materializes the mix table from the workload package.
func RunTable1() *Table1 {
	mixes := workload.PaperMixes(workload.PaperRows)
	t := &Table1{Columns: []string{"a", "b", "c", "d"}, Rows: make(map[string][]float64)}
	names := make([]string, 0, len(mixes))
	for n := range mixes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := mixes[n]
		weights := make([]float64, len(t.Columns))
		for _, w := range m.Weights {
			for i, col := range t.Columns {
				if w.Column == col {
					weights[i] = w.Weight
				}
			}
		}
		t.Rows[n] = weights
	}
	return t
}

// Render prints the table in the paper's layout.
func (t *Table1) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 1: Workload Query Mixes\n")
	fmt.Fprintf(w, "%-14s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(w, "%8s", c)
	}
	fmt.Fprintln(w)
	names := make([]string, 0, len(t.Rows))
	for n := range t.Rows {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "Query Mix %-4s", n)
		for _, v := range t.Rows[n] {
			fmt.Fprintf(w, "%7.0f%%", v*100)
		}
		fmt.Fprintln(w)
	}
}
