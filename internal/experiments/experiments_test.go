package experiments

import (
	"context"
	"strings"
	"testing"

	"dyndesign/internal/core"
)

// bg is the context used by tests that don't exercise cancellation.
var bg = context.Background()

// table2 is computed once and shared: it is the expensive fixture every
// experiment test builds on.
var sharedT2 *Table2Result

func getTable2(t *testing.T) *Table2Result {
	t.Helper()
	if sharedT2 == nil {
		res, err := RunTable2(bg, TestScale)
		if err != nil {
			t.Fatalf("RunTable2: %v", err)
		}
		sharedT2 = res
	}
	return sharedT2
}

func TestTable1Mixes(t *testing.T) {
	t1 := RunTable1()
	if len(t1.Rows) != 4 {
		t.Fatalf("mixes = %v", t1.Rows)
	}
	a := t1.Rows["A"]
	if a[0] != 0.55 || a[1] != 0.25 || a[2] != 0.10 || a[3] != 0.10 {
		t.Errorf("mix A = %v", a)
	}
	c := t1.Rows["C"]
	if c[2] != 0.55 || c[3] != 0.25 {
		t.Errorf("mix C = %v", c)
	}
	var sb strings.Builder
	t1.Render(&sb)
	if !strings.Contains(sb.String(), "Query Mix A") || !strings.Contains(sb.String(), "55%") {
		t.Errorf("render missing content:\n%s", sb.String())
	}
}

// TestTable2ReproducesPaperDesigns is the repository's headline test: the
// advisor's per-block designs must match the paper's Table 2 cell for
// cell — unconstrained designs tracking every minor shift (I(a,b) for A
// blocks, I(b) for B, I(c,d) for C, I(d) for D) and the k=2 designs
// tracking only the major shifts (I(a,b), I(c,d), I(a,b) per phase).
func TestTable2ReproducesPaperDesigns(t *testing.T) {
	res := getTable2(t)
	if len(res.Rows) != 30 {
		t.Fatalf("Table 2 has %d rows, want 30", len(res.Rows))
	}
	wantUnc, wantCon := ExpectedDesigns()
	for i, row := range res.Rows {
		if got := wantUnc[row.W1]; row.DesignUnconstrained != got {
			t.Errorf("block %d (%s, mix %s): unconstrained design %s, paper has %s",
				i, row.Range, row.W1, row.DesignUnconstrained, got)
		}
		if got := wantCon[row.W1]; row.DesignConstrained != got {
			t.Errorf("block %d (%s, mix %s): constrained design %s, paper has %s",
				i, row.Range, row.W1, row.DesignConstrained, got)
		}
	}
	// The workload columns must follow the paper's patterns.
	if res.Rows[0].W1 != "A" || res.Rows[2].W1 != "B" || res.Rows[10].W1 != "C" {
		t.Errorf("W1 labels wrong: %+v", res.Rows[0])
	}
	if res.Rows[0].W2 != "A" || res.Rows[1].W2 != "B" {
		t.Errorf("W2 labels wrong")
	}
	if res.Rows[0].W3 != "B" || res.Rows[2].W3 != "A" {
		t.Errorf("W3 labels wrong")
	}
}

func TestTable2ChangeCounts(t *testing.T) {
	res := getTable2(t)
	if got := res.Constrained.Solution.Changes; got > 2 {
		t.Errorf("constrained solution has %d changes, bound 2", got)
	}
	// The unconstrained optimum tracks all 14 minor/major shifts.
	if got := res.Unconstrained.Solution.Changes; got != 14 {
		t.Errorf("unconstrained solution has %d changes, paper structure implies 14", got)
	}
	// Constrained is suboptimal for W1 (the paper: 14% slower).
	if res.Constrained.Solution.Cost <= res.Unconstrained.Solution.Cost {
		t.Errorf("constrained cost %.0f not above unconstrained %.0f",
			res.Constrained.Solution.Cost, res.Unconstrained.Solution.Cost)
	}
}

func TestTable2Render(t *testing.T) {
	res := getTable2(t)
	var sb strings.Builder
	res.Render(&sb)
	out := sb.String()
	for _, want := range []string{"query number", "I(a,b)", "I(c,d)", "k=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestFigure3Shape verifies the paper's Figure 3 qualitatively: W1 is
// somewhat slower under the constrained design (the paper measured
// +14%), while W2 and W3 — similar workloads with different minor
// shifts — are *faster* under the constrained design than under the
// over-fitted unconstrained one.
func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 3 executes 6 full workload replays")
	}
	res, err := RunFigure3(bg, getTable2(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 6 {
		t.Fatalf("%d entries", len(res.Entries))
	}
	w1u := res.Entry("W1", "unconstrained")
	w1c := res.Entry("W1", "constrained")
	if w1u.Relative != 1.0 {
		t.Errorf("baseline relative = %f", w1u.Relative)
	}
	if w1c.Relative < 1.01 || w1c.Relative > 1.6 {
		t.Errorf("W1 constrained relative = %.3f, paper has ~1.14", w1c.Relative)
	}
	for _, wl := range []string{"W2", "W3"} {
		u := res.Entry(wl, "unconstrained")
		c := res.Entry(wl, "constrained")
		if c.Report.TotalPages() >= u.Report.TotalPages() {
			t.Errorf("%s: constrained (%d pages) not faster than unconstrained (%d pages)",
				wl, c.Report.TotalPages(), u.Report.TotalPages())
		}
	}
	// The database must be intact after all replays.
	if err := getTable2(t).DB.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "W1") || !strings.Contains(sb.String(), "%") {
		t.Errorf("render:\n%s", sb.String())
	}
}

// TestFigure4Shape verifies the optimizer-runtime curves qualitatively:
// the k-aware optimizer slows down as k grows while merging speeds up,
// matching the paper's Figure 4.
func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 4 is a timing experiment")
	}
	res, err := RunFigure4(bg, getTable2(t), []int{2, 8, 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KAwareRel) != 3 || len(res.MergeRel) != 3 {
		t.Fatalf("result = %+v", res)
	}
	if res.KAwareRel[2] <= res.KAwareRel[0] {
		t.Errorf("k-aware runtime not increasing in k: %v", res.KAwareRel)
	}
	if res.MergeRel[0] <= res.MergeRel[2] {
		t.Errorf("merging runtime not decreasing in k: %v", res.MergeRel)
	}
	if res.UnconstrainedChanges != 14 {
		t.Errorf("l = %d, want 14", res.UnconstrainedChanges)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "k-aware graph") {
		t.Errorf("render:\n%s", sb.String())
	}
}

func TestPaperSpaceShape(t *testing.T) {
	space := PaperSpace()
	if len(space.Structures) != 6 {
		t.Errorf("structures = %d", len(space.Structures))
	}
	if len(space.Configs) != 7 {
		t.Errorf("configs = %d", len(space.Configs))
	}
	names := space.StructureNames()
	want := []string{"I(a)", "I(b)", "I(c)", "I(d)", "I(a,b)", "I(c,d)"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("structure %d = %s, want %s", i, names[i], n)
		}
	}
	// Every config holds at most one index.
	for _, c := range space.Configs {
		if c.Count() > 1 {
			t.Errorf("config %v has more than one index", c)
		}
	}
}

func TestPaperOptions(t *testing.T) {
	o := PaperOptions(2)
	if o.K != 2 || o.Policy != core.FreeEndpoints || o.Final == nil || *o.Final != 0 {
		t.Errorf("options = %+v", o)
	}
}

// TestWriteLoadDropsIndexForBulkInserts verifies the advisor discovers
// the drop-load-rebuild pattern: with an insert-heavy phase between two
// read phases, the optimal dynamic design holds no index during the
// load.
func TestWriteLoadDropsIndexForBulkInserts(t *testing.T) {
	res, err := RunWriteLoad(bg, TestScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.PhaseDesigns[0] != "I(a,b)" || res.PhaseDesigns[2] != "I(a,b)" {
		t.Errorf("read-phase designs = %v, want I(a,b)", res.PhaseDesigns)
	}
	if res.PhaseDesigns[1] != "{}" {
		t.Errorf("load-phase design = %s, want {} (drop for the load)", res.PhaseDesigns[1])
	}
	if res.ConstrainedChanges > 2 {
		t.Errorf("k=2 used %d changes", res.ConstrainedChanges)
	}
	if res.DropCost >= res.KeepCost {
		t.Errorf("dropping (%.0f) not cheaper than keeping (%.0f)", res.DropCost, res.KeepCost)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "load phase") {
		t.Errorf("render:\n%s", sb.String())
	}
}

// TestAblationHarnesses smoke-tests the remaining ablation runners.
func TestAblationHarnesses(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations re-solve many problems")
	}
	t2 := getTable2(t)
	quality, err := RunQualityVsK(bg, t2)
	if err != nil {
		t.Fatal(err)
	}
	if quality.L != 14 || len(quality.Ks) != 15 {
		t.Errorf("quality curve: l=%d points=%d", quality.L, len(quality.Ks))
	}
	// Monotone non-increasing, ends at 100%.
	for i := 1; i < len(quality.RelativeCost); i++ {
		if quality.RelativeCost[i] > quality.RelativeCost[i-1]+1e-9 {
			t.Errorf("quality curve increased at k=%d", quality.Ks[i])
		}
	}
	if last := quality.RelativeCost[len(quality.RelativeCost)-1]; last < 0.999 || last > 1.001 {
		t.Errorf("quality at k=l is %f, want 1.0", last)
	}

	strat, err := RunStrategyComparison(bg, t2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(strat.Names) != 7 || strat.Optimal <= 0 {
		t.Errorf("strategy comparison = %+v", strat)
	}
	for i, c := range strat.Costs {
		if strat.Changes[i] >= 0 && c < strat.Optimal-1e-6 {
			t.Errorf("strategy %s beat the optimum", strat.Names[i])
		}
	}

	policy, err := RunPolicyAblation(bg, t2, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Strict Definition 1 can never be cheaper than free endpoints at
	// the same k (it has strictly fewer feasible sequences).
	for i := range policy.Ks {
		if policy.StrictCost[i] < policy.FreeCost[i]-1e-6 {
			t.Errorf("k=%d: strict %f beats free %f", policy.Ks[i], policy.StrictCost[i], policy.FreeCost[i])
		}
	}

	ranking, err := RunRankingAblation(bg, t2, []int{14}, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if ranking.PrunedExpand[0] > ranking.PlainExpand[0] {
		t.Error("pruned ranking expanded more than plain")
	}

	var sb strings.Builder
	quality.Render(&sb)
	strat.Render(&sb)
	policy.Render(&sb)
	ranking.Render(&sb)
	if !strings.Contains(sb.String(), "Ablation") {
		t.Error("ablation renders empty")
	}
}

// TestEstimateVsMeasured pins the advisor's central promise: what-if
// estimates track measured execution within a tight band across k.
func TestEstimateVsMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the workload per k")
	}
	res, err := RunEstimateVsMeasured(bg, getTable2(t), []int{0, 2, 14})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range res.Ks {
		est, meas := res.Estimated[i], float64(res.Measured[i])
		if est < meas*0.9 || est > meas*1.1 {
			t.Errorf("k=%d: estimated %.0f vs measured %.0f (>10%% apart)", k, est, meas)
		}
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "estimated") {
		t.Error("render empty")
	}
}

// TestCalibrationExperiment pins the per-statement counterpart of
// TestEstimateVsMeasured: with fresh statistics, the sampled statements'
// estimates stay within the same tight band the engine fixture
// guarantees (heap scans exact, index seeks off by the covering-scan
// page, i.e. a 1.5x ratio).
func TestCalibrationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("replays sampled statements against the engine")
	}
	res, err := RunCalibration(bg, getTable2(t), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Run.Samples) == 0 || res.Run.Errors != 0 {
		t.Fatalf("implausible calibration run: %+v", res.Run)
	}
	if m := res.Run.MedianAbsRatio(); m > 1.5 {
		t.Errorf("fresh-statistics median abs ratio %.2f exceeds 1.5", m)
	}
	if len(res.Report.PerClass) == 0 || len(res.Report.PerStructure) == 0 {
		t.Errorf("report missing breakdowns: %+v", res.Report)
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "calibration") || !strings.Contains(sb.String(), "structure") {
		t.Errorf("render incomplete:\n%s", sb.String())
	}
}

// TestExportJSON smoke-tests the machine-readable export.
func TestExportJSON(t *testing.T) {
	t2 := getTable2(t)
	var sb strings.Builder
	report := JSONReport{Scale: t2.Scale, Table1: RunTable1(), Table2: t2.Rows}
	if err := WriteJSON(&sb, report); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"table1"`, `"table2"`, `"I(a,b)"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON export missing %s", want)
		}
	}
}
