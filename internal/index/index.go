// Package index binds catalog index definitions to physical B+-trees: it
// builds indexes online from heap contents, maintains them under DML, and
// exposes the seek/scan primitives the executor uses.
package index

import (
	"fmt"
	"sort"

	"dyndesign/internal/btree"
	"dyndesign/internal/catalog"
	"dyndesign/internal/keyenc"
	"dyndesign/internal/storage"
	"dyndesign/internal/types"
)

// Index is one materialized secondary index.
type Index struct {
	def    catalog.IndexDef
	cols   []int // ordinals of the key columns in the table schema
	schema *types.Schema
	tree   *btree.Tree
}

// Def returns the index definition.
func (ix *Index) Def() catalog.IndexDef { return ix.def }

// KeyColumns returns the ordinals of the key columns in the table schema.
func (ix *Index) KeyColumns() []int {
	return append([]int(nil), ix.cols...)
}

// Covers reports whether every column ordinal in need is part of the
// index key, i.e. whether an index-only scan can answer a query that
// references exactly those columns.
func (ix *Index) Covers(need []int) bool {
	for _, n := range need {
		found := false
		for _, c := range ix.cols {
			if c == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Entries returns the number of entries (equals the table's live rows).
func (ix *Index) Entries() int64 { return ix.tree.Len() }

// SizePages returns the size of the index in pages — the SIZE(·) term of
// the design problem.
func (ix *Index) SizePages() int64 { return ix.tree.NodeCount() }

// Height returns the B+-tree height.
func (ix *Index) Height() int { return ix.tree.Height() }

// LeafPages returns the number of leaf pages; an index-only full scan
// reads approximately this many pages.
func (ix *Index) LeafPages() int64 { return ix.tree.LeafCount() }

// key builds the encoded composite key of row for this index.
func (ix *Index) key(row types.Row) ([]byte, error) {
	vals := make([]types.Value, len(ix.cols))
	for i, c := range ix.cols {
		vals[i] = row[c]
	}
	return keyenc.Encode(vals...)
}

// Insert adds the entry for a newly inserted heap row.
func (ix *Index) Insert(row types.Row, rid storage.RID) error {
	k, err := ix.key(row)
	if err != nil {
		return err
	}
	return ix.tree.Insert(k, rid)
}

// Delete removes the entry for a heap row that is being deleted or moved.
func (ix *Index) Delete(row types.Row, rid storage.RID) error {
	k, err := ix.key(row)
	if err != nil {
		return err
	}
	found, err := ix.tree.Delete(k, rid)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("index %s: missing entry for rid %s", ix.def.Name(), rid)
	}
	return nil
}

// SeekPrefix calls fn for every entry whose leading key columns equal
// vals, in key order. fn receives the decoded key column values and the
// RID; returning false stops the scan.
func (ix *Index) SeekPrefix(vals []types.Value, fn func(keyVals []types.Value, rid storage.RID) bool) error {
	if len(vals) > len(ix.cols) {
		return fmt.Errorf("index %s: prefix of %d values on %d key columns", ix.def.Name(), len(vals), len(ix.cols))
	}
	prefix, err := keyenc.Encode(vals...)
	if err != nil {
		return err
	}
	var decodeErr error
	var scratch []types.Value
	ix.tree.ScanPrefix(prefix, func(k []byte, rid storage.RID) bool {
		kv, err := keyenc.DecodeInto(scratch, k)
		if err != nil {
			decodeErr = err
			return false
		}
		scratch = kv
		return fn(kv, rid)
	})
	return decodeErr
}

// ScanAll calls fn for every entry in key order — the index-only-scan
// primitive. fn receives the decoded key column values and the RID.
func (ix *Index) ScanAll(fn func(keyVals []types.Value, rid storage.RID) bool) error {
	return ix.ScanRange(nil, nil, fn)
}

// ScanRange calls fn for entries with low <= key < high; nil bounds are
// unbounded. Bounds are composite value tuples over the key prefix.
func (ix *Index) ScanRange(low, high []types.Value, fn func(keyVals []types.Value, rid storage.RID) bool) error {
	var lowKey, highKey []byte
	var err error
	if low != nil {
		if lowKey, err = keyenc.Encode(low...); err != nil {
			return err
		}
	}
	if high != nil {
		if highKey, err = keyenc.Encode(high...); err != nil {
			return err
		}
	}
	return ix.ScanEncodedRange(lowKey, highKey, fn)
}

// ScanEncodedRange calls fn for entries with lowKey <= encoded key <
// highKey (nil bounds unbounded). The executor uses this with bounds
// built by keyenc (including PrefixSuccessor for exclusive/prefix
// bounds), which avoids value-level successor arithmetic.
func (ix *Index) ScanEncodedRange(lowKey, highKey []byte, fn func(keyVals []types.Value, rid storage.RID) bool) error {
	var decodeErr error
	var scratch []types.Value
	ix.tree.ScanRange(lowKey, highKey, func(k []byte, rid storage.RID) bool {
		kv, err := keyenc.DecodeInto(scratch, k)
		if err != nil {
			decodeErr = err
			return false
		}
		scratch = kv
		return fn(kv, rid)
	})
	return decodeErr
}

// CheckInvariants verifies the underlying tree structure.
func (ix *Index) CheckInvariants() error { return ix.tree.CheckInvariants() }

// Build constructs an index over the current contents of heap. It is the
// online index build: one full heap scan, a sort, and a bulk load — all
// charged to the heap's access stats, which is exactly the TRANS cost of
// adding this index to a configuration.
func Build(def catalog.IndexDef, schema *types.Schema, heap *storage.HeapFile) (*Index, error) {
	cols := make([]int, len(def.Columns))
	for i, name := range def.Columns {
		ord := schema.ColumnIndex(name)
		if ord < 0 {
			return nil, fmt.Errorf("index %s: table %q has no column %q", def.Name(), def.Table, name)
		}
		cols[i] = ord
	}
	ix := &Index{
		def:    def,
		cols:   cols,
		schema: schema,
		tree:   btree.New(heap.Stats()),
	}

	entries := make([]btree.Entry, 0, heap.NumRows())
	var scanErr error
	heap.Scan(func(rid storage.RID, payload []byte) bool {
		row, err := types.DecodeRow(payload)
		if err != nil {
			scanErr = fmt.Errorf("index %s: decoding row %s: %w", def.Name(), rid, err)
			return false
		}
		k, err := ix.key(row)
		if err != nil {
			scanErr = err
			return false
		}
		entries = append(entries, btree.Entry{Key: k, RID: rid})
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Slice(entries, func(i, j int) bool {
		return compareEntries(entries[i], entries[j]) < 0
	})
	if err := ix.tree.BulkLoad(entries); err != nil {
		return nil, err
	}
	// Charge the external-sort I/O of the build: a two-pass merge sort
	// reads and writes the run files twice. The sort itself ran in
	// memory, but an on-disk engine at this scale would pay these pages,
	// and the what-if cost model (cost.BuildCost) predicts them — the
	// two must agree for advisor estimates to match measurements.
	leaves := ix.tree.LeafCount()
	heap.Stats().Read(2 * leaves)
	heap.Stats().Write(2 * leaves)
	return ix, nil
}

func compareEntries(a, b btree.Entry) int {
	if c := compareBytes(a.Key, b.Key); c != 0 {
		return c
	}
	return a.RID.Compare(b.RID)
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Manager owns the materialized indexes of one table and keeps them
// consistent with heap DML.
type Manager struct {
	schema  *types.Schema
	heap    *storage.HeapFile
	indexes map[string]*Index // canonical name -> index
}

// NewManager creates an index manager for a table.
func NewManager(schema *types.Schema, heap *storage.HeapFile) *Manager {
	return &Manager{schema: schema, heap: heap, indexes: make(map[string]*Index)}
}

// Create builds and registers an index. Building an index that already
// exists is an error.
func (m *Manager) Create(def catalog.IndexDef) (*Index, error) {
	name := def.Name()
	if _, exists := m.indexes[name]; exists {
		return nil, fmt.Errorf("index %s already exists", name)
	}
	ix, err := Build(def, m.schema, m.heap)
	if err != nil {
		return nil, err
	}
	m.indexes[name] = ix
	return ix, nil
}

// Drop removes an index by canonical name.
func (m *Manager) Drop(name string) error {
	if _, exists := m.indexes[name]; !exists {
		return fmt.Errorf("index %s does not exist", name)
	}
	delete(m.indexes, name)
	return nil
}

// Get returns the index with the given canonical name.
func (m *Manager) Get(name string) (*Index, bool) {
	ix, ok := m.indexes[name]
	return ix, ok
}

// All returns the managed indexes sorted by name.
func (m *Manager) All() []*Index {
	out := make([]*Index, 0, len(m.indexes))
	for _, ix := range m.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].def.Name() < out[j].def.Name() })
	return out
}

// Names returns the canonical names of the managed indexes, sorted.
func (m *Manager) Names() []string {
	out := make([]string, 0, len(m.indexes))
	for name := range m.indexes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// OnInsert updates every index for a newly inserted row.
func (m *Manager) OnInsert(row types.Row, rid storage.RID) error {
	for _, ix := range m.indexes {
		if err := ix.Insert(row, rid); err != nil {
			return err
		}
	}
	return nil
}

// OnDelete updates every index for a deleted row.
func (m *Manager) OnDelete(row types.Row, rid storage.RID) error {
	for _, ix := range m.indexes {
		if err := ix.Delete(row, rid); err != nil {
			return err
		}
	}
	return nil
}

// OnUpdate updates every index for a row whose contents (and possibly
// RID) changed.
func (m *Manager) OnUpdate(oldRow types.Row, oldRID storage.RID, newRow types.Row, newRID storage.RID) error {
	for _, ix := range m.indexes {
		if err := ix.Delete(oldRow, oldRID); err != nil {
			return err
		}
		if err := ix.Insert(newRow, newRID); err != nil {
			return err
		}
	}
	return nil
}
