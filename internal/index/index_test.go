package index

import (
	"math/rand"
	"testing"

	"dyndesign/internal/catalog"
	"dyndesign/internal/storage"
	"dyndesign/internal/types"
)

func testSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
		types.Column{Name: "s", Kind: types.KindString},
	)
}

// loadHeap fills a heap with rows (i, i%10, "s<i%7>") and returns the
// RIDs in insertion order.
func loadHeap(t testing.TB, heap *storage.HeapFile, n int) []storage.RID {
	t.Helper()
	rids := make([]storage.RID, n)
	for i := 0; i < n; i++ {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 10)),
			types.NewString(string(rune('s' + i%7))),
		}
		payload, err := types.EncodeRow(nil, row)
		if err != nil {
			t.Fatal(err)
		}
		rid, err := heap.Insert(payload)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	return rids
}

func TestBuildAndSeek(t *testing.T) {
	heap := storage.NewHeapFile(nil)
	loadHeap(t, heap, 1000)
	ix, err := Build(catalog.IndexDef{Table: "t", Columns: []string{"b"}}, testSchema(), heap)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Entries() != 1000 {
		t.Errorf("Entries = %d", ix.Entries())
	}
	// b = 3 matches the 100 rows with i%10 == 3.
	count := 0
	err = ix.SeekPrefix([]types.Value{types.NewInt(3)}, func(kv []types.Value, rid storage.RID) bool {
		if kv[0].Int != 3 {
			t.Errorf("seek returned key %v", kv)
		}
		count++
		return true
	})
	if err != nil || count != 100 {
		t.Errorf("seek matched %d rows (err %v)", count, err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestBuildCompositeAndCovers(t *testing.T) {
	heap := storage.NewHeapFile(nil)
	loadHeap(t, heap, 500)
	ix, err := Build(catalog.IndexDef{Table: "t", Columns: []string{"b", "a"}}, testSchema(), heap)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.KeyColumns(); len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("KeyColumns = %v", got)
	}
	if !ix.Covers([]int{0}) || !ix.Covers([]int{1, 0}) {
		t.Error("Covers false negatives")
	}
	if ix.Covers([]int{2}) {
		t.Error("Covers false positive")
	}
	// Prefix seek on (b=4) yields a-values in ascending order.
	var prev int64 = -1
	err = ix.SeekPrefix([]types.Value{types.NewInt(4)}, func(kv []types.Value, _ storage.RID) bool {
		if kv[1].Int <= prev {
			t.Error("composite seek out of order")
		}
		prev = kv[1].Int
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuildUnknownColumn(t *testing.T) {
	heap := storage.NewHeapFile(nil)
	if _, err := Build(catalog.IndexDef{Table: "t", Columns: []string{"zzz"}}, testSchema(), heap); err == nil {
		t.Error("Build on unknown column succeeded")
	}
}

func TestSeekPrefixTooLong(t *testing.T) {
	heap := storage.NewHeapFile(nil)
	loadHeap(t, heap, 10)
	ix, _ := Build(catalog.IndexDef{Table: "t", Columns: []string{"a"}}, testSchema(), heap)
	err := ix.SeekPrefix([]types.Value{types.NewInt(1), types.NewInt(2)}, func([]types.Value, storage.RID) bool { return true })
	if err == nil {
		t.Error("over-long prefix accepted")
	}
}

func TestScanAllOrderedAndComplete(t *testing.T) {
	heap := storage.NewHeapFile(nil)
	loadHeap(t, heap, 300)
	ix, _ := Build(catalog.IndexDef{Table: "t", Columns: []string{"a"}}, testSchema(), heap)
	var last int64 = -1
	count := 0
	ix.ScanAll(func(kv []types.Value, _ storage.RID) bool {
		if kv[0].Int <= last {
			t.Error("ScanAll out of order")
		}
		last = kv[0].Int
		count++
		return true
	})
	if count != 300 {
		t.Errorf("ScanAll saw %d entries", count)
	}
}

func TestScanRangeValues(t *testing.T) {
	heap := storage.NewHeapFile(nil)
	loadHeap(t, heap, 100)
	ix, _ := Build(catalog.IndexDef{Table: "t", Columns: []string{"a"}}, testSchema(), heap)
	count := 0
	err := ix.ScanRange(
		[]types.Value{types.NewInt(10)},
		[]types.Value{types.NewInt(20)},
		func(kv []types.Value, _ storage.RID) bool {
			if kv[0].Int < 10 || kv[0].Int >= 20 {
				t.Errorf("range scan returned %d", kv[0].Int)
			}
			count++
			return true
		})
	if err != nil || count != 10 {
		t.Errorf("range scan saw %d (err %v)", count, err)
	}
}

func TestManagerLifecycle(t *testing.T) {
	heap := storage.NewHeapFile(nil)
	loadHeap(t, heap, 50)
	m := NewManager(testSchema(), heap)
	if _, err := m.Create(catalog.IndexDef{Table: "t", Columns: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(catalog.IndexDef{Table: "t", Columns: []string{"a"}}); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := m.Create(catalog.IndexDef{Table: "t", Columns: []string{"b", "a"}}); err != nil {
		t.Fatal(err)
	}
	names := m.Names()
	if len(names) != 2 || names[0] != "I(a)" || names[1] != "I(b,a)" {
		t.Errorf("Names = %v", names)
	}
	if len(m.All()) != 2 {
		t.Errorf("All = %v", m.All())
	}
	if _, ok := m.Get("I(a)"); !ok {
		t.Error("Get missed existing index")
	}
	if err := m.Drop("I(a)"); err != nil {
		t.Fatal(err)
	}
	if err := m.Drop("I(a)"); err == nil {
		t.Error("double drop accepted")
	}
	if _, ok := m.Get("I(a)"); ok {
		t.Error("dropped index still gettable")
	}
}

func TestManagerDMLMaintenance(t *testing.T) {
	heap := storage.NewHeapFile(nil)
	schema := testSchema()
	m := NewManager(schema, heap)
	m.Create(catalog.IndexDef{Table: "t", Columns: []string{"a"}})
	m.Create(catalog.IndexDef{Table: "t", Columns: []string{"b", "a"}})

	rng := rand.New(rand.NewSource(11))
	type rec struct {
		rid storage.RID
		row types.Row
	}
	var live []rec
	encode := func(row types.Row) []byte {
		p, err := types.EncodeRow(nil, row)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	newRow := func(i int) types.Row {
		return types.Row{
			types.NewInt(int64(rng.Intn(1000))),
			types.NewInt(int64(rng.Intn(20))),
			types.NewString(string(rune('a' + i%26))),
		}
	}
	for op := 0; op < 4000; op++ {
		switch r := rng.Intn(10); {
		case r < 5 || len(live) == 0: // insert
			row := newRow(op)
			rid, err := heap.Insert(encode(row))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.OnInsert(row, rid); err != nil {
				t.Fatal(err)
			}
			live = append(live, rec{rid, row})
		case r < 7: // delete
			i := rng.Intn(len(live))
			if err := heap.Delete(live[i].rid); err != nil {
				t.Fatal(err)
			}
			if err := m.OnDelete(live[i].row, live[i].rid); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // update
			i := rng.Intn(len(live))
			row := newRow(op)
			newRID, err := heap.Update(live[i].rid, encode(row))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.OnUpdate(live[i].row, live[i].rid, row, newRID); err != nil {
				t.Fatal(err)
			}
			live[i] = rec{newRID, row}
		}
	}
	for _, ix := range m.All() {
		if err := ix.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if ix.Entries() != int64(len(live)) {
			t.Fatalf("index %s has %d entries, expected %d", ix.Def().Name(), ix.Entries(), len(live))
		}
	}
	// Every live row must be findable through each index.
	for _, r := range live {
		found := false
		ix, _ := m.Get("I(a)")
		ix.SeekPrefix([]types.Value{r.row[0]}, func(_ []types.Value, rid storage.RID) bool {
			if rid == r.rid {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("row %v not found via I(a)", r.rid)
		}
	}
}

func TestDeleteMissingEntryFails(t *testing.T) {
	heap := storage.NewHeapFile(nil)
	loadHeap(t, heap, 10)
	ix, _ := Build(catalog.IndexDef{Table: "t", Columns: []string{"a"}}, testSchema(), heap)
	row := types.Row{types.NewInt(9999), types.NewInt(0), types.NewString("x")}
	if err := ix.Delete(row, storage.RID{Page: 0, Slot: 0}); err == nil {
		t.Error("delete of missing entry succeeded")
	}
}

func TestSizeAccounting(t *testing.T) {
	heap := storage.NewHeapFile(nil)
	loadHeap(t, heap, 20000)
	ix, err := Build(catalog.IndexDef{Table: "t", Columns: []string{"a", "b"}}, testSchema(), heap)
	if err != nil {
		t.Fatal(err)
	}
	if ix.SizePages() <= ix.LeafPages() {
		t.Errorf("SizePages %d should exceed LeafPages %d (branch nodes)", ix.SizePages(), ix.LeafPages())
	}
	if ix.Height() < 2 {
		t.Errorf("20k-entry composite index should have height >= 2, got %d", ix.Height())
	}
}

func TestBuildChargesAccesses(t *testing.T) {
	var stats storage.AccessStats
	heap := storage.NewHeapFile(&stats)
	loadHeap(t, heap, 5000)
	stats.Reset()
	ix, err := Build(catalog.IndexDef{Table: "t", Columns: []string{"a"}}, testSchema(), heap)
	if err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	if snap.Reads < int64(heap.NumPages()) {
		t.Errorf("build charged %d reads; expected at least the heap scan (%d pages)", snap.Reads, heap.NumPages())
	}
	if snap.Writes < ix.SizePages() {
		t.Errorf("build charged %d writes; expected at least the tree nodes (%d)", snap.Writes, ix.SizePages())
	}
}
