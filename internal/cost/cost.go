// Package cost implements the engine's cost model. It has two clients
// that must always agree:
//
//   - the planner, which costs access paths over the *real* indexes of a
//     table and picks the cheapest, and
//   - the design advisor's what-if interface, which costs statements
//     under *hypothetical* configurations that are never materialized —
//     this is EXEC(S,C) of the paper, plus the TRANS and SIZE terms.
//
// Both go through the same ChooseAccess function over the same physical
// descriptions, so "what the advisor assumed" and "what execution pays"
// are the same quantity: logical page accesses.
package cost

import (
	"fmt"
	"math"
	"strings"

	"dyndesign/internal/btree"
	"dyndesign/internal/catalog"
	"dyndesign/internal/sql"
	"dyndesign/internal/stats"
	"dyndesign/internal/storage"
	"dyndesign/internal/types"
)

// Default selectivities used when no statistics are available.
const (
	defaultEqSelectivity    = 0.005
	defaultRangeSelectivity = 0.3
)

// encodedValueBytes estimates the encoded key width of one column.
func encodedValueBytes(kind types.Kind) int {
	switch kind {
	case types.KindInt:
		return 9 // tag + 8 bytes
	default:
		return 19 // tag + ~16 payload + terminator
	}
}

// TablePhys is the physical description of a table: what the cost model
// needs to know about it.
type TablePhys struct {
	Name      string
	Schema    *types.Schema
	Rows      float64
	HeapPages float64
	Stats     *stats.TableStats // nil disables statistics-based estimates
}

// IndexPhys is the physical description of an index, real or
// hypothetical.
type IndexPhys struct {
	Def        catalog.IndexDef
	KeyCols    []int // ordinals of key columns in the table schema
	KeyBytes   int   // encoded composite key width
	Height     float64
	LeafPages  float64
	TotalPages float64 // SIZE(·) contribution in pages
}

// Covers reports whether every ordinal in need appears among the index
// key columns.
func (ip *IndexPhys) Covers(need []int) bool {
	for _, n := range need {
		found := false
		for _, c := range ip.KeyCols {
			if c == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// HypotheticalIndex predicts the physical shape of an index that does not
// exist, from the table description alone. This is the what-if half of
// the model: the prediction uses the same fill factors as a real bulk
// load, so a subsequently built index matches it closely.
func HypotheticalIndex(def catalog.IndexDef, t TablePhys) (IndexPhys, error) {
	ip := IndexPhys{Def: def}
	for _, name := range def.Columns {
		ord := t.Schema.ColumnIndex(name)
		if ord < 0 {
			return IndexPhys{}, fmt.Errorf("cost: table %q has no column %q", t.Name, name)
		}
		ip.KeyCols = append(ip.KeyCols, ord)
		ip.KeyBytes += encodedValueBytes(t.Schema.Columns[ord].Kind)
	}
	rows := int64(t.Rows)
	ip.LeafPages = float64(btree.EstimateLeafPages(ip.KeyBytes, rows))
	ip.Height = float64(btree.EstimateHeight(ip.KeyBytes, rows))
	ip.TotalPages = float64(btree.EstimateTotalPages(ip.KeyBytes, rows))
	return ip, nil
}

// AccessKind enumerates the access paths the planner considers.
type AccessKind int

// Access paths.
const (
	HeapScan AccessKind = iota
	IndexSeek
	IndexOnlyScan
)

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case HeapScan:
		return "HeapScan"
	case IndexSeek:
		return "IndexSeek"
	case IndexOnlyScan:
		return "IndexOnlyScan"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// RangeSpec describes a one-column range bound following the equality
// prefix of an index seek.
type RangeSpec struct {
	Low, High                   *types.Value // nil = unbounded
	LowInclusive, HighInclusive bool
}

// Access is a costed access path.
type Access struct {
	Kind  AccessKind
	Index *IndexPhys // nil for HeapScan
	// EqVals are the values of the leading equality prefix (IndexSeek).
	EqVals []types.Value
	// Range optionally bounds the key column right after the prefix.
	Range *RangeSpec
	// In optionally lists the values of an IN predicate on the key
	// column right after the prefix (mutually exclusive with Range);
	// execution runs one sub-seek per value.
	In []types.Value
	// Covering is true when the index contains every referenced column,
	// so no heap lookups are needed.
	Covering bool
	// Consumed are indices into the statement's conjunct list that the
	// access path satisfies; the rest are residual filters.
	Consumed []int
	// EstMatchRows estimates rows matching the seek predicate (before
	// residual filtering).
	EstMatchRows float64
	// EstResultRows estimates rows after all predicates.
	EstResultRows float64
	// PageCost is the estimated logical page accesses.
	PageCost float64
}

// String summarizes the access path for EXPLAIN output.
func (a Access) String() string {
	switch a.Kind {
	case HeapScan:
		return fmt.Sprintf("HeapScan cost=%.1f rows=%.1f", a.PageCost, a.EstResultRows)
	case IndexSeek:
		cov := ""
		if a.Covering {
			cov = " covering"
		}
		return fmt.Sprintf("IndexSeek %s eq=%d%s cost=%.1f rows=%.1f",
			a.Index.Def.Name(), len(a.EqVals), cov, a.PageCost, a.EstResultRows)
	case IndexOnlyScan:
		return fmt.Sprintf("IndexOnlyScan %s cost=%.1f rows=%.1f",
			a.Index.Def.Name(), a.PageCost, a.EstResultRows)
	default:
		return "unknown access"
	}
}

// selEq estimates the selectivity of column = v.
func selEq(t TablePhys, col string, v types.Value) float64 {
	if t.Stats != nil {
		if cs := t.Stats.Column(col); cs != nil {
			return cs.SelectivityEq(v)
		}
	}
	return defaultEqSelectivity
}

// selRange estimates the selectivity of a range over one column.
func selRange(t TablePhys, col string, r RangeSpec) float64 {
	if t.Stats == nil {
		return defaultRangeSelectivity
	}
	cs := t.Stats.Column(col)
	if cs == nil {
		return defaultRangeSelectivity
	}
	frac := cs.SelectivityRange(r.Low, r.High) // [low, high)
	if r.Low != nil && !r.LowInclusive {
		frac -= cs.SelectivityEq(*r.Low)
	}
	if r.High != nil && r.HighInclusive {
		frac += cs.SelectivityEq(*r.High)
	}
	if frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}

// conjunctSelectivity estimates one conjunct's selectivity in isolation.
func conjunctSelectivity(t TablePhys, c sql.Comparison) float64 {
	switch c.Op {
	case sql.OpEq:
		return selEq(t, c.Column, c.Value)
	case sql.OpIn:
		total := 0.0
		for _, v := range c.Values {
			total += selEq(t, c.Column, v)
		}
		if total > 1 {
			return 1
		}
		return total
	case sql.OpLt:
		return selRange(t, c.Column, RangeSpec{High: &c.Value})
	case sql.OpLe:
		return selRange(t, c.Column, RangeSpec{High: &c.Value, HighInclusive: true})
	case sql.OpGt:
		return selRange(t, c.Column, RangeSpec{Low: &c.Value})
	case sql.OpGe:
		return selRange(t, c.Column, RangeSpec{Low: &c.Value, LowInclusive: true})
	default:
		return defaultRangeSelectivity
	}
}

// selectShape is the configuration-independent part of costing a
// SELECT: the referenced column ordinals (which decide covering), the
// WHERE conjuncts, and the estimated result cardinality. Deriving it
// once per statement is what lets a PlanTable price every candidate
// access path with a single histogram pass.
type selectShape struct {
	need       []int
	conjuncts  []sql.Comparison
	resultRows float64
}

// shapeSelect validates the statement and derives its selectShape.
// SELECT * references every column.
func shapeSelect(sel *sql.Select, t TablePhys) (selectShape, error) {
	if err := validateSelect(sel, t.Schema); err != nil {
		return selectShape{}, err
	}
	var sh selectShape
	if len(sel.Columns) == 0 && !sel.CountStar && !sel.HasAggregates() {
		for i := 0; i < t.Schema.Len(); i++ {
			sh.need = append(sh.need, i)
		}
	} else {
		for _, name := range sel.ReferencedColumns() {
			sh.need = append(sh.need, t.Schema.ColumnIndex(name))
		}
	}
	sh.resultRows = t.Rows
	if sel.Where != nil {
		sh.conjuncts = sel.Where.Conjuncts
	}
	for _, c := range sh.conjuncts {
		sh.resultRows *= conjunctSelectivity(t, c)
	}
	return sh, nil
}

// ChooseAccess enumerates the access paths available for a SELECT over
// the given physical table and indexes, and returns the cheapest. Ties
// break deterministically: lower cost, then seek over index-only scan
// over heap scan, then index name.
func ChooseAccess(sel *sql.Select, t TablePhys, indexes []IndexPhys) (Access, error) {
	sh, err := shapeSelect(sel, t)
	if err != nil {
		return Access{}, err
	}
	best := Access{
		Kind:          HeapScan,
		EstMatchRows:  t.Rows,
		EstResultRows: sh.resultRows,
		PageCost:      math.Max(1, t.HeapPages),
	}
	for i := range indexes {
		ip := &indexes[i]
		covering := ip.Covers(sh.need)
		if a, ok := seekAccess(sel, t, ip, sh.conjuncts, covering, sh.resultRows); ok && betterAccess(a, best) {
			best = a
		}
		if covering {
			a := Access{
				Kind:          IndexOnlyScan,
				Index:         ip,
				Covering:      true,
				EstMatchRows:  t.Rows,
				EstResultRows: sh.resultRows,
				PageCost:      ip.Height + ip.LeafPages,
			}
			if betterAccess(a, best) {
				best = a
			}
		}
	}
	return best, nil
}

// betterAccess reports whether a is strictly preferred over b under the
// planner's deterministic order. Because the order is strict, scanning
// candidates in enumeration order and keeping the incumbent on a full
// tie selects exactly the element a stable sort would put first.
func betterAccess(a, b Access) bool {
	if a.PageCost != b.PageCost {
		return a.PageCost < b.PageCost
	}
	if ra, rb := kindRank(a.Kind), kindRank(b.Kind); ra != rb {
		return ra < rb
	}
	return indexName(a) < indexName(b)
}

func kindRank(k AccessKind) int {
	switch k {
	case IndexSeek:
		return 0
	case IndexOnlyScan:
		return 1
	default:
		return 2
	}
}

func indexName(a Access) string {
	if a.Index == nil {
		return ""
	}
	return a.Index.Def.Name()
}

// seekAccess builds the best seek on one index: the longest leading
// equality prefix, optionally extended by a range on the next key column.
func seekAccess(sel *sql.Select, t TablePhys, ip *IndexPhys, conjuncts []sql.Comparison, covering bool, resultRows float64) (Access, bool) {
	a := Access{Kind: IndexSeek, Index: ip, Covering: covering}
	sel1 := 1.0
	// Consumed-conjunct tracking: a bitmask for the (universal) case of
	// at most 64 conjuncts, an allocated map beyond — the bitmask keeps
	// the hot costing path allocation-free.
	var usedBits uint64
	var usedBig map[int]bool
	if len(conjuncts) > 64 {
		usedBig = make(map[int]bool)
	}
	used := func(ci int) bool {
		if usedBig != nil {
			return usedBig[ci]
		}
		return usedBits>>uint(ci)&1 == 1
	}
	markUsed := func(ci int) {
		if usedBig != nil {
			usedBig[ci] = true
			return
		}
		usedBits |= 1 << uint(ci)
	}

	// Leading equality prefix.
	for _, keyCol := range ip.KeyCols {
		found := -1
		for ci, c := range conjuncts {
			if used(ci) || c.Op != sql.OpEq {
				continue
			}
			if t.Schema.ColumnIndex(c.Column) == keyCol {
				found = ci
				break
			}
		}
		if found < 0 {
			break
		}
		markUsed(found)
		a.Consumed = append(a.Consumed, found)
		a.EqVals = append(a.EqVals, conjuncts[found].Value)
		sel1 *= selEq(t, conjuncts[found].Column, conjuncts[found].Value)
	}

	// Optional IN list or range on the next key column. An IN predicate
	// is preferred: it seeks exactly its values instead of spanning them.
	if len(a.EqVals) < len(ip.KeyCols) {
		next := ip.KeyCols[len(a.EqVals)]
		for ci, c := range conjuncts {
			if used(ci) || c.Op != sql.OpIn || t.Schema.ColumnIndex(c.Column) != next {
				continue
			}
			a.In = c.Values
			a.Consumed = append(a.Consumed, ci)
			markUsed(ci)
			inSel := 0.0
			for _, v := range c.Values {
				inSel += selEq(t, c.Column, v)
			}
			if inSel > 1 {
				inSel = 1
			}
			sel1 *= inSel
			break
		}
	}
	if a.In == nil && len(a.EqVals) < len(ip.KeyCols) {
		next := ip.KeyCols[len(a.EqVals)]
		var r RangeSpec
		var consumed []int
		for ci, c := range conjuncts {
			if used(ci) || t.Schema.ColumnIndex(c.Column) != next {
				continue
			}
			v := c.Value
			switch c.Op {
			case sql.OpGt, sql.OpGe:
				incl := c.Op == sql.OpGe
				if r.Low == nil || v.Compare(*r.Low) > 0 || (v.Compare(*r.Low) == 0 && !incl) {
					r.Low, r.LowInclusive = &v, incl
				}
				consumed = append(consumed, ci)
			case sql.OpLt, sql.OpLe:
				incl := c.Op == sql.OpLe
				if r.High == nil || v.Compare(*r.High) < 0 || (v.Compare(*r.High) == 0 && !incl) {
					r.High, r.HighInclusive = &v, incl
				}
				consumed = append(consumed, ci)
			}
		}
		if r.Low != nil || r.High != nil {
			colName := t.Schema.Columns[next].Name
			a.Range = &r
			a.Consumed = append(a.Consumed, consumed...)
			sel1 *= selRange(t, colName, r)
		}
	}

	if len(a.EqVals) == 0 && a.Range == nil && a.In == nil {
		return Access{}, false // nothing to seek on
	}
	a.EstMatchRows = t.Rows * sel1
	a.EstResultRows = resultRows
	// Pages: descents + matched leaf pages + heap fetches unless
	// covering. An IN seek descends once per value.
	descents := 1.0
	if a.In != nil {
		descents = float64(len(a.In))
	}
	leafFrac := 1.0
	if t.Rows > 0 {
		leafFrac = a.EstMatchRows / t.Rows
	}
	matchedLeaves := math.Max(descents, math.Ceil(ip.LeafPages*leafFrac))
	a.PageCost = descents*ip.Height + matchedLeaves
	if !covering {
		a.PageCost += a.EstMatchRows
	}
	return a, true
}

// validateSelect checks that every referenced column exists and that
// predicate literal kinds match the column kinds.
func validateSelect(sel *sql.Select, schema *types.Schema) error {
	check := func(col string) error {
		if schema.ColumnIndex(col) < 0 {
			return fmt.Errorf("cost: unknown column %q", col)
		}
		return nil
	}
	for _, c := range sel.Columns {
		if err := check(c); err != nil {
			return err
		}
	}
	for _, agg := range sel.Aggregates() {
		if agg.Column == "" {
			if agg.Func != sql.AggCount {
				return fmt.Errorf("cost: %s(*) is not valid", agg.Func)
			}
			continue
		}
		if err := check(agg.Column); err != nil {
			return err
		}
		if agg.Func == sql.AggSum || agg.Func == sql.AggAvg {
			ord := schema.ColumnIndex(agg.Column)
			if schema.Columns[ord].Kind != types.KindInt {
				return fmt.Errorf("cost: %s over non-integer column %q", agg.Func, agg.Column)
			}
		}
	}
	if sel.GroupBy != "" {
		if err := check(sel.GroupBy); err != nil {
			return err
		}
	}
	// With aggregates, every plain select-list column must be the
	// grouping column.
	if sel.HasAggregates() {
		for _, c := range sel.Columns {
			if sel.GroupBy == "" || !strings.EqualFold(c, sel.GroupBy) {
				return fmt.Errorf("cost: column %q in an aggregate query must be the GROUP BY column", c)
			}
		}
	}
	if sel.Order != nil {
		if err := check(sel.Order.Column); err != nil {
			return err
		}
		if sel.HasAggregates() && (sel.GroupBy == "" || !strings.EqualFold(sel.Order.Column, sel.GroupBy)) {
			return fmt.Errorf("cost: ORDER BY in an aggregate query must use the GROUP BY column")
		}
	}
	if sel.Where != nil {
		for _, c := range sel.Where.Conjuncts {
			if err := check(c.Column); err != nil {
				return err
			}
			ord := schema.ColumnIndex(c.Column)
			if c.Op == sql.OpIn {
				if len(c.Values) == 0 {
					return fmt.Errorf("cost: empty IN list on %q", c.Column)
				}
				for _, v := range c.Values {
					if schema.Columns[ord].Kind != v.Kind {
						return fmt.Errorf("cost: IN list on %q compares %s to %s",
							c.Column, schema.Columns[ord].Kind, v.Kind)
					}
				}
				continue
			}
			if schema.Columns[ord].Kind != c.Value.Kind {
				return fmt.Errorf("cost: predicate on %q compares %s to %s",
					c.Column, schema.Columns[ord].Kind, c.Value.Kind)
			}
		}
	}
	return nil
}

// --- Statement-level costing (EXEC) and configuration terms ----------

// SelectCost estimates the page cost of a SELECT under the given
// physical table and index set.
func SelectCost(sel *sql.Select, t TablePhys, indexes []IndexPhys) (float64, error) {
	a, err := ChooseAccess(sel, t, indexes)
	if err != nil {
		return 0, err
	}
	return a.PageCost, nil
}

// StatementCost estimates the page cost of any supported statement under
// the given physical design — the EXEC(S,C) term. DML statements pay
// their row search (costed like a SELECT) plus per-row heap and index
// maintenance; DDL statements are not workload statements and are
// rejected.
func StatementCost(stmt sql.Statement, t TablePhys, indexes []IndexPhys) (float64, error) {
	switch s := stmt.(type) {
	case *sql.Select:
		return SelectCost(s, t, indexes)
	case *sql.Insert:
		perRow := 1.0 // heap write
		for i := range indexes {
			perRow += indexes[i].Height + 1 // descend + leaf write
		}
		return float64(len(s.Rows)) * perRow, nil
	case *sql.Update:
		probe := &sql.Select{Table: s.Table, Where: s.Where, Limit: -1}
		base, err := SelectCost(probe, t, indexes)
		if err != nil {
			return 0, err
		}
		rows := estimateResultRows(s.Where, t)
		perRow := 1.0 // heap write
		for i := range indexes {
			perRow += 2 * (indexes[i].Height + 1) // delete + insert entries
		}
		return base + rows*perRow, nil
	case *sql.Delete:
		probe := &sql.Select{Table: s.Table, Where: s.Where, Limit: -1}
		base, err := SelectCost(probe, t, indexes)
		if err != nil {
			return 0, err
		}
		rows := estimateResultRows(s.Where, t)
		perRow := 1.0
		for i := range indexes {
			perRow += indexes[i].Height + 1
		}
		return base + rows*perRow, nil
	default:
		return 0, fmt.Errorf("cost: statement %T is not a workload statement", stmt)
	}
}

func estimateResultRows(w *sql.Where, t TablePhys) float64 {
	rows := t.Rows
	if w != nil {
		for _, c := range w.Conjuncts {
			rows *= conjunctSelectivity(t, c)
		}
	}
	return rows
}

// SortIOFactor models the external-sort I/O of an online index build as
// a multiple of the index's leaf pages: a two-pass external merge sort
// reads and writes the run files twice (2 passes × read+write). The
// engine's build charges the same factor, so predicted and measured
// TRANS agree.
const SortIOFactor = 4

// BuildCost estimates the pages charged to build an index online: one
// full heap scan, the external sort of the entries, and writing every
// node of the new tree. This is the per-index TRANS term for index
// creation.
func BuildCost(ip IndexPhys, t TablePhys) float64 {
	return t.HeapPages + SortIOFactor*ip.LeafPages + ip.TotalPages
}

// DropCost is the pages charged to drop an index (a catalog write).
func DropCost() float64 { return 1 }

// HeapPagesForRows predicts heap pages for a table of n rows with the
// given average encoded row size, matching storage.HeapFile's layout.
func HeapPagesForRows(n int64, rowBytes float64) float64 {
	if n <= 0 {
		return 1
	}
	perPage := math.Floor(float64(storage.PageSize-6) / (rowBytes + 4))
	if perPage < 1 {
		perPage = 1
	}
	return math.Ceil(float64(n) / perPage)
}
