package cost

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"strings"
	"testing"

	"dyndesign/internal/catalog"
	"dyndesign/internal/sql"
	"dyndesign/internal/stats"
	"dyndesign/internal/types"
)

// synthColumn fabricates a structurally valid equi-depth histogram for
// one integer column: ascending distinct values grouped into buckets,
// random per-value counts. The absolute selectivities do not matter for
// the equivalence tests — only that plan tables and the scalar coster
// read the same statistics.
func synthColumn(rng *rand.Rand, name string) *stats.ColumnStats {
	ndv := 3 + rng.Intn(40)
	vals := make([]int64, 0, ndv)
	v := int64(rng.Intn(50))
	for i := 0; i < ndv; i++ {
		v += 1 + int64(rng.Intn(200))
		vals = append(vals, v)
	}
	counts := make([]int64, ndv)
	var rows int64
	for i := range counts {
		counts[i] = 1 + int64(rng.Intn(100))
		rows += counts[i]
	}
	h := &stats.Histogram{
		Min:  types.NewInt(vals[0]),
		Max:  types.NewInt(vals[ndv-1]),
		Rows: rows,
	}
	for i := 0; i < ndv; {
		span := 1 + rng.Intn(4)
		if i+span > ndv {
			span = ndv - i
		}
		var cnt int64
		for j := i; j < i+span; j++ {
			cnt += counts[j]
		}
		h.Buckets = append(h.Buckets, stats.Bucket{
			Upper:    types.NewInt(vals[i+span-1]),
			Count:    cnt,
			Distinct: int64(span),
		})
		i += span
	}
	return &stats.ColumnStats{Column: name, Rows: rows, NDV: int64(ndv), Hist: h}
}

func synthTable(t testing.TB, rng *rand.Rand) TablePhys {
	schema, err := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	rows := int64(500 + rng.Intn(200000))
	ts := &stats.TableStats{
		Table:    "t",
		Rows:     rows,
		RowBytes: 36,
		Columns:  map[string]*stats.ColumnStats{},
	}
	for _, c := range []string{"a", "b", "c", "d"} {
		ts.Columns[c] = synthColumn(rng, c)
	}
	return TablePhys{
		Name:      "t",
		Schema:    schema,
		Rows:      float64(rows),
		HeapPages: HeapPagesForRows(rows, 36),
		Stats:     ts,
	}
}

var synthCombos = [][]string{
	{"a"}, {"b"}, {"c"}, {"d"},
	{"a", "b"}, {"b", "a"}, {"c", "d"}, {"a", "c"}, {"d", "b"}, {"b", "c", "d"},
}

func synthIndexes(t testing.TB, rng *rand.Rand, tp TablePhys, n int) []IndexPhys {
	perm := rng.Perm(len(synthCombos))
	out := make([]IndexPhys, 0, n)
	for _, pi := range perm[:n] {
		ip, err := HypotheticalIndex(catalog.IndexDef{Table: "t", Columns: synthCombos[pi]}, tp)
		if err != nil {
			t.Fatalf("hypothetical index: %v", err)
		}
		out = append(out, ip)
	}
	return out
}

// synthStatement emits one random statement in the dialect the workload
// generator uses, exercising point and range predicates, IN lists,
// projections, star selects, and all three DML forms.
func synthStatement(rng *rand.Rand) string {
	cols := []string{"a", "b", "c", "d"}
	where := func(maxConj int) string {
		n := rng.Intn(maxConj + 1)
		if n == 0 {
			return ""
		}
		parts := make([]string, 0, n)
		ops := []string{"=", "<", ">", "<=", ">="}
		for i := 0; i < n; i++ {
			col := cols[rng.Intn(len(cols))]
			if rng.Intn(6) == 0 {
				k := 1 + rng.Intn(3)
				in := make([]string, k)
				for j := range in {
					in[j] = fmt.Sprint(rng.Intn(12000))
				}
				parts = append(parts, fmt.Sprintf("%s IN (%s)", col, strings.Join(in, ", ")))
				continue
			}
			parts = append(parts, fmt.Sprintf("%s %s %d", col, ops[rng.Intn(len(ops))], rng.Intn(12000)))
		}
		return " WHERE " + strings.Join(parts, " AND ")
	}
	switch rng.Intn(10) {
	case 0, 1, 2, 3:
		proj := "*"
		if rng.Intn(2) == 0 {
			k := 1 + rng.Intn(3)
			perm := rng.Perm(len(cols))
			sel := make([]string, k)
			for i := 0; i < k; i++ {
				sel[i] = cols[perm[i]]
			}
			proj = strings.Join(sel, ", ")
		}
		return "SELECT " + proj + " FROM t" + where(3)
	case 4, 5:
		return fmt.Sprintf("UPDATE t SET %s = %d", cols[rng.Intn(len(cols))], rng.Intn(12000)) + where(2)
	case 6, 7:
		return "DELETE FROM t" + where(2)
	default:
		return fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %d, %d)",
			rng.Intn(12000), rng.Intn(12000), rng.Intn(12000), rng.Intn(12000))
	}
}

// checkSeed is the shared body of the fuzzer and the deterministic seed
// sweep: for one random world it asserts that PlanTable.Cost is
// bit-for-bit identical to scalar StatementCost on every configuration
// of the candidate set.
func checkSeed(t *testing.T, seed uint64) {
	rng := rand.New(rand.NewSource(int64(seed)))
	tp := synthTable(t, rng)
	idx := synthIndexes(t, rng, tp, 5)
	subset := make([]IndexPhys, 0, len(idx))
	nstmt := 1 + rng.Intn(6)
	for si := 0; si < nstmt; si++ {
		text := synthStatement(rng)
		stmt, err := sql.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: generated unparseable SQL %q: %v", seed, text, err)
		}
		pt, perr := CompilePlan(stmt, tp, idx)
		if perr != nil {
			if _, serr := StatementCost(stmt, tp, nil); serr == nil {
				t.Fatalf("seed %d: CompilePlan failed (%v) but StatementCost succeeded for %q", seed, perr, text)
			}
			continue
		}
		for c := uint64(0); c < 1<<len(idx); c++ {
			subset = subset[:0]
			for i := range idx {
				if c&(1<<uint(i)) != 0 {
					subset = append(subset, idx[i])
				}
			}
			want, serr := StatementCost(stmt, tp, subset)
			if serr != nil {
				t.Fatalf("seed %d: StatementCost(%q, %b): %v", seed, text, c, serr)
			}
			got := pt.Cost(c)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("seed %d: %q config %05b: plan table %v (bits %x) != scalar %v (bits %x)",
					seed, text, c, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// FuzzBatchCostEquivalence pins the tentpole invariant: batched
// plan-table costing is bitwise identical to the scalar coster on every
// configuration, across random schemas, statistics, index sets, and
// statements.
func FuzzBatchCostEquivalence(f *testing.F) {
	for s := uint64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		checkSeed(t, seed)
	})
}

// TestPlanTableMatchesStatementCostSeeds runs the fuzz body over a
// fixed seed sweep so plain `go test` exercises the equivalence without
// the fuzz engine.
func TestPlanTableMatchesStatementCostSeeds(t *testing.T) {
	for s := uint64(0); s < 50; s++ {
		checkSeed(t, s)
	}
}

// TestRelevantMaskMatchesSoloProbe pins the contract ExecInteractions
// depends on: bit i of RelevantMask is set exactly when a solo what-if
// probe of index i would pick a non-heap access path.
func TestRelevantMaskMatchesSoloProbe(t *testing.T) {
	for s := uint64(100); s < 120; s++ {
		rng := rand.New(rand.NewSource(int64(s)))
		tp := synthTable(t, rng)
		idx := synthIndexes(t, rng, tp, 5)
		for si := 0; si < 4; si++ {
			text := synthStatement(rng)
			stmt, err := sql.Parse(text)
			if err != nil {
				t.Fatalf("seed %d: %q: %v", s, text, err)
			}
			sel, ok := stmt.(*sql.Select)
			if !ok {
				continue
			}
			pt, err := CompilePlan(stmt, tp, idx)
			if err != nil {
				t.Fatalf("seed %d: CompilePlan(%q): %v", s, text, err)
			}
			for i := range idx {
				acc, err := ChooseAccess(sel, tp, idx[i:i+1])
				if err != nil {
					t.Fatalf("seed %d: ChooseAccess(%q): %v", s, text, err)
				}
				wantRelevant := acc.Kind != HeapScan
				gotRelevant := pt.RelevantMask()&(1<<uint(i)) != 0
				if wantRelevant != gotRelevant {
					t.Fatalf("seed %d: %q index %d: solo probe kind %v but relevant bit %v",
						s, text, i, acc.Kind, gotRelevant)
				}
			}
		}
	}
}

// TestPlanTableWideCliqueFallback forces a relevant clique wider than
// maxProjBits so the dense projection array is skipped, and checks the
// bit-scan fallback path still matches the scalar coster.
func TestPlanTableWideCliqueFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tp := synthTable(t, rng)
	def := catalog.IndexDef{Table: "t", Columns: []string{"a"}}
	idx := make([]IndexPhys, 0, maxProjBits+2)
	for i := 0; i < maxProjBits+2; i++ {
		ip, err := HypotheticalIndex(def, tp)
		if err != nil {
			t.Fatalf("hypothetical index: %v", err)
		}
		idx = append(idx, ip)
	}
	stmt := sql.MustParse("SELECT a FROM t WHERE a = 100")
	pt, err := CompilePlan(stmt, tp, idx)
	if err != nil {
		t.Fatalf("CompilePlan: %v", err)
	}
	if w := bits.OnesCount64(pt.RelevantMask()); w <= maxProjBits {
		t.Fatalf("want clique wider than %d, got %d (mask %b)", maxProjBits, w, pt.RelevantMask())
	}
	subset := make([]IndexPhys, 0, len(idx))
	check := func(c uint64) {
		subset = subset[:0]
		for i := range idx {
			if c&(1<<uint(i)) != 0 {
				subset = append(subset, idx[i])
			}
		}
		want, serr := StatementCost(stmt, tp, subset)
		if serr != nil {
			t.Fatalf("StatementCost(%b): %v", c, serr)
		}
		got := pt.Cost(c)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("config %b: plan table %v != scalar %v", c, got, want)
		}
	}
	all := uint64(1)<<uint(len(idx)) - 1
	check(0)
	check(all)
	for i := 0; i < 300; i++ {
		check(rng.Uint64() & all)
	}
}

// TestCompilePlanRejectsInvalidStatement checks compile-time validation
// fails the same statements the scalar coster fails.
func TestCompilePlanRejectsInvalidStatement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tp := synthTable(t, rng)
	idx := synthIndexes(t, rng, tp, 3)
	stmt := sql.MustParse("SELECT nope FROM t WHERE a = 1")
	if _, err := CompilePlan(stmt, tp, idx); err == nil {
		t.Fatalf("CompilePlan accepted a statement with an unknown column")
	}
	if _, err := StatementCost(stmt, tp, idx); err == nil {
		t.Fatalf("StatementCost accepted a statement with an unknown column")
	}
}
