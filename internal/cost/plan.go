package cost

import (
	"fmt"
	"math"
	"math/bits"

	"dyndesign/internal/sql"
)

// maxProjBits bounds the dense projection table of a PlanTable: a
// statement whose relevant-index clique is wider falls back to the
// direct bit-scan minimum instead of materializing 2^w cells. 12 bits
// (4096 cells, 32 KiB) is far beyond the clique widths the partitioned
// solver tolerates, so real workloads always get the dense table.
const maxProjBits = 12

// planKind mirrors the statement dispatch of StatementCost.
type planKind uint8

const (
	planSelect planKind = iota
	planInsert
	planUpdate
	planDelete
)

// PlanTable is the compiled what-if costing of one statement against a
// fixed candidate index list. Compilation enumerates the statement's
// access paths once — the heap scan plus each index's best seek or
// covering variant — pricing every histogram-derived selectivity a
// single time, and records per-index path costs, per-index per-row
// maintenance increments, and the statement's relevant-index mask.
// Evaluating a configuration is then O(1) masked lookups instead of a
// fresh plan derivation, and the result is bit-for-bit identical to
// StatementCost over the corresponding index slice (the equivalence the
// FuzzBatchCostEquivalence fuzzer pins):
//
//   - a SELECT's cost is the minimum over candidate paths, each path's
//     cost depends only on (statement, table, that one index), and
//     indexes whose best path loses to the heap scan can never change
//     the minimum;
//   - DML maintenance is per-index additive, replayed in ascending bit
//     order — exactly the iteration order of the scalar code.
//
// Configurations are uint64 bitmasks: bit i selects indexes[i] of the
// compile-time candidate list.
type PlanTable struct {
	kind planKind
	// allMask has one bit per candidate index; evaluated configurations
	// are masked with it so stray high bits cannot read out of range.
	allMask uint64
	// heapCost is the heap-scan page cost of the row search.
	heapCost float64
	// pathCost[i] is candidate i's cheapest index path (seek or
	// covering scan) for the row search; +Inf when it offers none.
	pathCost []float64
	// maint[i] is candidate i's maintenance pages per modified row.
	maint []float64
	// rows scales the per-row maintenance term: the INSERT row count,
	// or the estimated matched rows of an UPDATE/DELETE.
	rows float64
	// relevant marks the indexes that can win the row search — exactly
	// the indexes whose solo what-if probe beats (or ties, under the
	// planner's index-preferring tie-break) the heap scan, i.e. the
	// statement's interaction clique.
	relevant uint64
	// proj, when non-nil, is the dense projected search table:
	// proj[compress(c&relevant, relevant)] is the min-path cost of c.
	proj []float64
}

// CompilePlan compiles one workload statement into a PlanTable over the
// candidate index list. The supported statement set, validation errors,
// and cost arithmetic mirror StatementCost exactly.
func CompilePlan(stmt sql.Statement, t TablePhys, indexes []IndexPhys) (*PlanTable, error) {
	if len(indexes) > 64 {
		return nil, fmt.Errorf("cost: plan table supports at most 64 candidate indexes, got %d", len(indexes))
	}
	pt := &PlanTable{allMask: ^uint64(0)}
	if len(indexes) < 64 {
		pt.allMask = 1<<uint(len(indexes)) - 1
	}
	switch s := stmt.(type) {
	case *sql.Select:
		pt.kind = planSelect
		if err := pt.compileSearch(s, t, indexes); err != nil {
			return nil, err
		}
	case *sql.Insert:
		pt.kind = planInsert
		pt.rows = float64(len(s.Rows))
		pt.compileMaint(indexes, 1) // descend + leaf write
	case *sql.Update:
		pt.kind = planUpdate
		probe := &sql.Select{Table: s.Table, Where: s.Where, Limit: -1}
		if err := pt.compileSearch(probe, t, indexes); err != nil {
			return nil, err
		}
		pt.rows = estimateResultRows(s.Where, t)
		pt.compileMaint(indexes, 2) // delete + insert entries
	case *sql.Delete:
		pt.kind = planDelete
		probe := &sql.Select{Table: s.Table, Where: s.Where, Limit: -1}
		if err := pt.compileSearch(probe, t, indexes); err != nil {
			return nil, err
		}
		pt.rows = estimateResultRows(s.Where, t)
		pt.compileMaint(indexes, 1)
	default:
		return nil, fmt.Errorf("cost: statement %T is not a workload statement", stmt)
	}
	pt.buildProjection()
	return pt, nil
}

// compileSearch prices the row search's access paths: the heap scan and
// each candidate index's best seek/covering variant, one histogram pass
// per path.
func (pt *PlanTable) compileSearch(sel *sql.Select, t TablePhys, indexes []IndexPhys) error {
	sh, err := shapeSelect(sel, t)
	if err != nil {
		return err
	}
	pt.heapCost = math.Max(1, t.HeapPages)
	pt.pathCost = make([]float64, len(indexes))
	for i := range indexes {
		ip := &indexes[i]
		covering := ip.Covers(sh.need)
		best := math.Inf(1)
		if a, ok := seekAccess(sel, t, ip, sh.conjuncts, covering, sh.resultRows); ok {
			best = a.PageCost
		}
		if covering {
			if v := ip.Height + ip.LeafPages; v < best {
				best = v
			}
		}
		pt.pathCost[i] = best
		// Relevance matches the planner's tie-break: on equal cost the
		// index path wins over the heap scan (kindRank seek/scan < heap).
		if best <= pt.heapCost {
			pt.relevant |= 1 << uint(i)
		}
	}
	return nil
}

// compileMaint precomputes the per-row maintenance increment of every
// candidate index: writes tree descents plus leaf writes per modified
// row (1 for INSERT/DELETE entries, 2 for UPDATE's delete+insert pair).
func (pt *PlanTable) compileMaint(indexes []IndexPhys, writes float64) {
	pt.maint = make([]float64, len(indexes))
	for i := range indexes {
		pt.maint[i] = writes * (indexes[i].Height + 1)
	}
}

// buildProjection materializes the dense projected search table over
// the relevant bits when the clique is narrow enough.
func (pt *PlanTable) buildProjection() {
	w := bits.OnesCount64(pt.relevant)
	if w == 0 || w > maxProjBits {
		return
	}
	var pos [maxProjBits]int
	b := 0
	for m := pt.relevant; m != 0; m &= m - 1 {
		pos[b] = bits.TrailingZeros64(m)
		b++
	}
	pt.proj = make([]float64, 1<<uint(w))
	for s := range pt.proj {
		best := pt.heapCost
		for b := 0; b < w; b++ {
			if s>>uint(b)&1 == 1 {
				if v := pt.pathCost[pos[b]]; v < best {
					best = v
				}
			}
		}
		pt.proj[s] = best
	}
}

// compress packs the bits of v selected by mask into the low bits of
// the result, preserving order — a software PEXT.
func compress(v, mask uint64) uint64 {
	var out uint64
	bit := uint64(1)
	for m := mask; m != 0; m &= m - 1 {
		if v&m&-m != 0 {
			out |= bit
		}
		bit <<= 1
	}
	return out
}

// searchCost returns the row search's min-path cost under c.
func (pt *PlanTable) searchCost(c uint64) float64 {
	rel := c & pt.relevant
	if rel == 0 {
		return pt.heapCost
	}
	if pt.proj != nil {
		return pt.proj[compress(rel, pt.relevant)]
	}
	best := pt.heapCost
	for m := rel; m != 0; m &= m - 1 {
		if v := pt.pathCost[bits.TrailingZeros64(m)]; v < best {
			best = v
		}
	}
	return best
}

// perRow accumulates the per-modified-row maintenance pages of c in
// ascending bit order — the scalar code's iteration order, so the
// float64 operation sequence (and hence the result bits) is identical.
func (pt *PlanTable) perRow(c uint64) float64 {
	per := 1.0 // heap write
	for m := c; m != 0; m &= m - 1 {
		per += pt.maint[bits.TrailingZeros64(m)]
	}
	return per
}

// Cost returns EXEC(statement, c) for the configuration whose bit i
// selects candidate index i — bit-identical to StatementCost over the
// corresponding index slice.
func (pt *PlanTable) Cost(c uint64) float64 {
	c &= pt.allMask
	switch pt.kind {
	case planSelect:
		return pt.searchCost(c)
	case planInsert:
		return pt.rows * pt.perRow(c)
	default: // planUpdate, planDelete
		return pt.searchCost(c) + pt.rows*pt.perRow(c)
	}
}

// RelevantMask returns the statement's interaction clique: the indexes
// whose presence can change its row-search cost. Maintenance terms are
// per-index additive and contribute no interactions.
func (pt *PlanTable) RelevantMask() uint64 { return pt.relevant }

// Bytes estimates the retained heap footprint of the compiled table,
// for memory accounting of long-lived plan caches.
func (pt *PlanTable) Bytes() int {
	const header = 96 // struct fields + slice headers
	return header + 8*(len(pt.pathCost)+len(pt.maint)+len(pt.proj))
}
