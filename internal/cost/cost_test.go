package cost

import (
	"fmt"
	"math/rand"
	"testing"

	"dyndesign/internal/catalog"
	"dyndesign/internal/index"
	"dyndesign/internal/sql"
	"dyndesign/internal/stats"
	"dyndesign/internal/storage"
	"dyndesign/internal/types"
)

func paperSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
}

// buildPaperHeap loads n uniform rows over [0, domain) into a heap and
// returns it with stats built.
func buildPaperHeap(t testing.TB, n, domain int) (*storage.HeapFile, *stats.TableStats) {
	t.Helper()
	heap := storage.NewHeapFile(nil)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		row := types.Row{
			types.NewInt(int64(rng.Intn(domain))),
			types.NewInt(int64(rng.Intn(domain))),
			types.NewInt(int64(rng.Intn(domain))),
			types.NewInt(int64(rng.Intn(domain))),
		}
		payload, err := types.EncodeRow(nil, row)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := heap.Insert(payload); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := stats.Build("t", paperSchema(), heap, stats.DefaultBuckets)
	if err != nil {
		t.Fatal(err)
	}
	return heap, ts
}

func physOf(heap *storage.HeapFile, ts *stats.TableStats) TablePhys {
	return TablePhys{
		Name:      "t",
		Schema:    paperSchema(),
		Rows:      float64(heap.NumRows()),
		HeapPages: float64(heap.NumPages()),
		Stats:     ts,
	}
}

func hyp(t testing.TB, tp TablePhys, cols ...string) IndexPhys {
	t.Helper()
	ip, err := HypotheticalIndex(catalog.IndexDef{Table: "t", Columns: cols}, tp)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

func TestHypotheticalMatchesRealIndex(t *testing.T) {
	heap, ts := buildPaperHeap(t, 50000, 2000)
	tp := physOf(heap, ts)
	for _, cols := range [][]string{{"a"}, {"a", "b"}} {
		def := catalog.IndexDef{Table: "t", Columns: cols}
		pred := hyp(t, tp, cols...)
		real, err := index.Build(def, paperSchema(), heap)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := pred.LeafPages / float64(real.LeafPages()); ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s: predicted %f leaf pages, real %d", def.Name(), pred.LeafPages, real.LeafPages())
		}
		if int(pred.Height) != real.Height() {
			t.Errorf("%s: predicted height %f, real %d", def.Name(), pred.Height, real.Height())
		}
		if ratio := pred.TotalPages / float64(real.SizePages()); ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s: predicted %f total pages, real %d", def.Name(), pred.TotalPages, real.SizePages())
		}
	}
}

func TestHypotheticalUnknownColumn(t *testing.T) {
	heap, ts := buildPaperHeap(t, 100, 10)
	if _, err := HypotheticalIndex(catalog.IndexDef{Table: "t", Columns: []string{"zzz"}}, physOf(heap, ts)); err == nil {
		t.Error("hypothetical index on unknown column succeeded")
	}
}

// The paper's cost regimes: for point queries,
// seek ≪ index-only scan < heap scan.
func TestCostRegimes(t *testing.T) {
	heap, ts := buildPaperHeap(t, 100000, 5000)
	tp := physOf(heap, ts)
	iab := hyp(t, tp, "a", "b")

	seekQ := sql.MustParse("SELECT a FROM t WHERE a = 42").(*sql.Select)
	scanQ := sql.MustParse("SELECT b FROM t WHERE b = 42").(*sql.Select)

	seek, err := ChooseAccess(seekQ, tp, []IndexPhys{iab})
	if err != nil {
		t.Fatal(err)
	}
	if seek.Kind != IndexSeek {
		t.Fatalf("a-query access = %v", seek)
	}
	ionly, err := ChooseAccess(scanQ, tp, []IndexPhys{iab})
	if err != nil {
		t.Fatal(err)
	}
	if ionly.Kind != IndexOnlyScan {
		t.Fatalf("b-query access = %v", ionly)
	}
	none, err := ChooseAccess(scanQ, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if none.Kind != HeapScan {
		t.Fatalf("no-index access = %v", none)
	}
	if !(seek.PageCost*10 < ionly.PageCost && ionly.PageCost < none.PageCost) {
		t.Errorf("regimes violated: seek %.1f, index-only %.1f, scan %.1f",
			seek.PageCost, ionly.PageCost, none.PageCost)
	}
}

// Reproduces the Table-2 argmin structure: for mix A (55%% a, 25%% b),
// I(a,b) must beat I(a) and I(b); for mix B (55%% b, 25%% a), I(b) must
// beat I(a,b).
func TestPaperArgminStructure(t *testing.T) {
	heap, ts := buildPaperHeap(t, 100000, 5000)
	tp := physOf(heap, ts)
	ia := hyp(t, tp, "a")
	ib := hyp(t, tp, "b")
	iab := hyp(t, tp, "a", "b")

	mixCost := func(idxs []IndexPhys, pa, pb, pc, pd float64) float64 {
		total := 0.0
		for col, frac := range map[string]float64{"a": pa, "b": pb, "c": pc, "d": pd} {
			q := sql.MustParse(fmt.Sprintf("SELECT %s FROM t WHERE %s = 42", col, col)).(*sql.Select)
			c, err := SelectCost(q, tp, idxs)
			if err != nil {
				t.Fatal(err)
			}
			total += frac * c
		}
		return total
	}

	// Mix A: 55% a, 25% b, 10% c, 10% d.
	costIA := mixCost([]IndexPhys{ia}, 0.55, 0.25, 0.10, 0.10)
	costIB := mixCost([]IndexPhys{ib}, 0.55, 0.25, 0.10, 0.10)
	costIAB := mixCost([]IndexPhys{iab}, 0.55, 0.25, 0.10, 0.10)
	if !(costIAB < costIA && costIAB < costIB) {
		t.Errorf("mix A: I(a,b)=%.0f should beat I(a)=%.0f and I(b)=%.0f", costIAB, costIA, costIB)
	}
	// Mix B: 25% a, 55% b.
	costIA = mixCost([]IndexPhys{ia}, 0.25, 0.55, 0.10, 0.10)
	costIB = mixCost([]IndexPhys{ib}, 0.25, 0.55, 0.10, 0.10)
	costIAB = mixCost([]IndexPhys{iab}, 0.25, 0.55, 0.10, 0.10)
	if !(costIB < costIAB && costIB < costIA) {
		t.Errorf("mix B: I(b)=%.0f should beat I(a,b)=%.0f and I(a)=%.0f", costIB, costIAB, costIA)
	}
	// Phase level (40% a, 40% b): I(a,b) wins again.
	costIA = mixCost([]IndexPhys{ia}, 0.40, 0.40, 0.10, 0.10)
	costIB = mixCost([]IndexPhys{ib}, 0.40, 0.40, 0.10, 0.10)
	costIAB = mixCost([]IndexPhys{iab}, 0.40, 0.40, 0.10, 0.10)
	if !(costIAB < costIA && costIAB < costIB) {
		t.Errorf("phase: I(a,b)=%.0f should beat I(a)=%.0f and I(b)=%.0f", costIAB, costIA, costIB)
	}
}

func TestChooseAccessConsumedAndResidual(t *testing.T) {
	heap, ts := buildPaperHeap(t, 20000, 1000)
	tp := physOf(heap, ts)
	iab := hyp(t, tp, "a", "b")
	q := sql.MustParse("SELECT a, b FROM t WHERE b = 9 AND a = 3 AND c = 1").(*sql.Select)
	a, err := ChooseAccess(q, tp, []IndexPhys{iab})
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != IndexSeek || len(a.EqVals) != 2 {
		t.Fatalf("access = %v", a)
	}
	// Consumed must be the a and b conjuncts (indices 1 and 0), leaving c.
	if len(a.Consumed) != 2 {
		t.Fatalf("consumed = %v", a.Consumed)
	}
	for _, ci := range a.Consumed {
		if q.Where.Conjuncts[ci].Column == "c" {
			t.Error("c conjunct wrongly consumed")
		}
	}
	// EqVals must follow index column order (a, b), not predicate order.
	if a.EqVals[0].Int != 3 || a.EqVals[1].Int != 9 {
		t.Errorf("EqVals = %v", a.EqVals)
	}
}

func TestChooseAccessRangeCombining(t *testing.T) {
	heap, ts := buildPaperHeap(t, 20000, 1000)
	tp := physOf(heap, ts)
	ia := hyp(t, tp, "a")
	q := sql.MustParse("SELECT a FROM t WHERE a >= 10 AND a < 20 AND a >= 12").(*sql.Select)
	acc, err := ChooseAccess(q, tp, []IndexPhys{ia})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Kind != IndexSeek || acc.Range == nil {
		t.Fatalf("access = %v", acc)
	}
	if acc.Range.Low == nil || acc.Range.Low.Int != 12 || !acc.Range.LowInclusive {
		t.Errorf("low bound = %+v", acc.Range.Low)
	}
	if acc.Range.High == nil || acc.Range.High.Int != 20 || acc.Range.HighInclusive {
		t.Errorf("high bound = %+v", acc.Range.High)
	}
	if len(acc.Consumed) != 3 {
		t.Errorf("consumed = %v", acc.Consumed)
	}
}

func TestValidateSelectErrors(t *testing.T) {
	heap, ts := buildPaperHeap(t, 100, 10)
	tp := physOf(heap, ts)
	bad := []string{
		"SELECT zzz FROM t",
		"SELECT a FROM t WHERE zzz = 1",
		"SELECT a FROM t WHERE a = 'str'",
		"SELECT a FROM t ORDER BY zzz",
	}
	for _, q := range bad {
		sel := sql.MustParse(q).(*sql.Select)
		if _, err := ChooseAccess(sel, tp, nil); err == nil {
			t.Errorf("%q accepted", q)
		}
	}
}

func TestSelectStarNeverIndexOnly(t *testing.T) {
	heap, ts := buildPaperHeap(t, 50000, 2000)
	tp := physOf(heap, ts)
	iab := hyp(t, tp, "a", "b")
	q := sql.MustParse("SELECT * FROM t WHERE b = 3").(*sql.Select)
	a, err := ChooseAccess(q, tp, []IndexPhys{iab})
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind == IndexOnlyScan {
		t.Error("SELECT * chose an index-only scan that cannot produce all columns")
	}
}

func TestStatementCostDML(t *testing.T) {
	heap, ts := buildPaperHeap(t, 20000, 1000)
	tp := physOf(heap, ts)
	ia := hyp(t, tp, "a")

	ins := sql.MustParse("INSERT INTO t VALUES (1,2,3,4)")
	c0, err := StatementCost(ins, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := StatementCost(ins, tp, []IndexPhys{ia})
	if err != nil {
		t.Fatal(err)
	}
	if c1 <= c0 {
		t.Errorf("insert with index (%f) not costlier than without (%f)", c1, c0)
	}

	upd := sql.MustParse("UPDATE t SET b = 1 WHERE a = 5")
	cu, err := StatementCost(upd, tp, []IndexPhys{ia})
	if err != nil || cu <= 0 {
		t.Errorf("update cost = %f, %v", cu, err)
	}
	del := sql.MustParse("DELETE FROM t WHERE a = 5")
	cd, err := StatementCost(del, tp, []IndexPhys{ia})
	if err != nil || cd <= 0 {
		t.Errorf("delete cost = %f, %v", cd, err)
	}

	ddl := sql.MustParse("CREATE INDEX ON t (a)")
	if _, err := StatementCost(ddl, tp, nil); err == nil {
		t.Error("DDL accepted as workload statement")
	}
}

func TestBuildCostMatchesMeasuredBuild(t *testing.T) {
	var access storage.AccessStats
	heap := storage.NewHeapFile(&access)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		row := types.Row{
			types.NewInt(int64(rng.Intn(2000))),
			types.NewInt(int64(rng.Intn(2000))),
			types.NewInt(int64(rng.Intn(2000))),
			types.NewInt(int64(rng.Intn(2000))),
		}
		payload, _ := types.EncodeRow(nil, row)
		heap.Insert(payload)
	}
	ts, err := stats.Build("t", paperSchema(), heap, stats.DefaultBuckets)
	if err != nil {
		t.Fatal(err)
	}
	tp := physOf(heap, ts)
	ip := hyp(t, tp, "a", "b")
	predicted := BuildCost(ip, tp)

	access.Reset()
	if _, err := index.Build(catalog.IndexDef{Table: "t", Columns: []string{"a", "b"}}, paperSchema(), heap); err != nil {
		t.Fatal(err)
	}
	measured := float64(access.Total())
	if predicted < measured*0.7 || predicted > measured*1.4 {
		t.Errorf("BuildCost predicted %.0f, measured %.0f", predicted, measured)
	}
}

func TestHeapPagesForRows(t *testing.T) {
	if got := HeapPagesForRows(0, 40); got != 1 {
		t.Errorf("empty table pages = %f", got)
	}
	// 40-byte rows + 4-byte slots: ~186 rows per 8 KiB page.
	got := HeapPagesForRows(18600, 40)
	if got < 90 || got > 110 {
		t.Errorf("pages = %f, want ~100", got)
	}
}

func TestDropCost(t *testing.T) {
	if DropCost() <= 0 {
		t.Error("drop cost must be positive")
	}
}

func TestAccessKindString(t *testing.T) {
	if HeapScan.String() != "HeapScan" || IndexSeek.String() != "IndexSeek" || IndexOnlyScan.String() != "IndexOnlyScan" {
		t.Error("AccessKind names wrong")
	}
}

func TestTieBreakDeterminism(t *testing.T) {
	heap, ts := buildPaperHeap(t, 20000, 1000)
	tp := physOf(heap, ts)
	ia := hyp(t, tp, "a")
	ib := hyp(t, tp, "b")
	q := sql.MustParse("SELECT a, b FROM t WHERE a = 1 AND b = 1").(*sql.Select)
	first, err := ChooseAccess(q, tp, []IndexPhys{ia, ib})
	if err != nil {
		t.Fatal(err)
	}
	// Same candidates in reverse order must give the same answer.
	second, err := ChooseAccess(q, tp, []IndexPhys{ib, ia})
	if err != nil {
		t.Fatal(err)
	}
	if first.Kind != second.Kind || indexName(first) != indexName(second) {
		t.Errorf("tie-break not deterministic: %v vs %v", first, second)
	}
}

func TestValidateAggregatesAndIn(t *testing.T) {
	heap, ts := buildPaperHeap(t, 200, 20)
	tp := physOf(heap, ts)
	bad := []string{
		"SELECT SUM(a) FROM t GROUP BY zzz",             // unknown group column
		"SELECT a, COUNT(*) FROM t GROUP BY b",          // naked column != group column
		"SELECT b, MIN(a) FROM t GROUP BY b ORDER BY a", // order by non-group col
		"SELECT MIN(zzz) FROM t",                        // unknown aggregate column
		"SELECT a FROM t WHERE a IN ('x')",              // IN kind mismatch
	}
	for _, q := range bad {
		sel := sql.MustParse(q).(*sql.Select)
		if _, err := ChooseAccess(sel, tp, nil); err == nil {
			t.Errorf("%q accepted", q)
		}
	}
	good := []string{
		"SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b ORDER BY b",
		"SELECT MIN(a), MAX(a) FROM t WHERE a IN (1, 2, 3)",
	}
	for _, q := range good {
		sel := sql.MustParse(q).(*sql.Select)
		if _, err := ChooseAccess(sel, tp, nil); err != nil {
			t.Errorf("%q rejected: %v", q, err)
		}
	}
}

func TestAccessStringForms(t *testing.T) {
	heap, ts := buildPaperHeap(t, 50000, 2000)
	tp := physOf(heap, ts)
	iab := hyp(t, tp, "a", "b")
	for _, q := range []string{
		"SELECT a FROM t WHERE a = 1", // seek
		"SELECT b FROM t WHERE b = 1", // index-only scan
		"SELECT c FROM t WHERE c = 1", // heap scan
	} {
		sel := sql.MustParse(q).(*sql.Select)
		a, err := ChooseAccess(sel, tp, []IndexPhys{iab})
		if err != nil {
			t.Fatal(err)
		}
		if a.String() == "" || a.String() == "unknown access" {
			t.Errorf("%q: bad access string %q", q, a.String())
		}
	}
}

func TestSelectivityWithoutStats(t *testing.T) {
	heap, _ := buildPaperHeap(t, 1000, 100)
	tp := TablePhys{
		Name: "t", Schema: paperSchema(),
		Rows: float64(heap.NumRows()), HeapPages: float64(heap.NumPages()),
		Stats: nil, // defaults kick in
	}
	for _, q := range []string{
		"SELECT a FROM t WHERE a = 1",
		"SELECT a FROM t WHERE a > 1 AND a <= 5",
		"SELECT a FROM t WHERE a IN (1, 2)",
		"SELECT a FROM t WHERE a < 9",
		"SELECT a FROM t WHERE a >= 2",
	} {
		sel := sql.MustParse(q).(*sql.Select)
		a, err := ChooseAccess(sel, tp, nil)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if a.EstResultRows < 0 || a.EstResultRows > tp.Rows {
			t.Errorf("%q: estimate %f out of range", q, a.EstResultRows)
		}
	}
}

func TestInSelectivityCapped(t *testing.T) {
	heap, ts := buildPaperHeap(t, 1000, 3) // tiny domain: each value ~33%
	tp := physOf(heap, ts)
	sel := sql.MustParse("SELECT a FROM t WHERE a IN (0, 1, 2)").(*sql.Select)
	a, err := ChooseAccess(sel, tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.EstResultRows > tp.Rows*1.01 {
		t.Errorf("IN selectivity not capped: %f rows of %f", a.EstResultRows, tp.Rows)
	}
}
