package obs

import (
	"bytes"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// promText matches one exposition line: a comment, or a sample with an
// optional label set whose values contain no raw newline or unescaped
// quote. Used by the concurrency tests to assert scrape output stays
// parseable while writers are racing.
var promText = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ([0-9.e+-]+|\+Inf|NaN))$`)

func assertParseable(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if !promText.MatchString(line) {
			t.Fatalf("unparseable exposition line: %q", line)
		}
	}
}

// TestHistogramSetPrometheusOutput pins the rendered shape of one
// histogram family: HELP, TYPE, cumulative buckets, +Inf, sum, count.
func TestHistogramSetPrometheusOutput(t *testing.T) {
	h := NewHistogramSet()
	h.Help("advisord_solve_seconds", "Wall time of one advisor solve.")
	h.Observe("advisord_solve_seconds", 3*time.Microsecond)
	h.Observe("advisord_solve_seconds", 5*time.Millisecond)
	var buf bytes.Buffer
	if err := h.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	assertParseable(t, out)
	for _, want := range []string{
		"# HELP advisord_solve_seconds Wall time of one advisor solve.\n",
		"# TYPE advisord_solve_seconds histogram\n",
		"advisord_solve_seconds_bucket{le=\"+Inf\"} 2\n",
		"advisord_solve_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The two observations land in different log2 buckets, so some
	// bucket strictly between them must hold exactly 1.
	if !strings.Contains(out, "} 1\n") {
		t.Errorf("expected an intermediate cumulative bucket of 1:\n%s", out)
	}
	if got := h.Count("advisord_solve_seconds"); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if got := h.Count("nope"); got != 0 {
		t.Errorf("Count(unknown) = %d, want 0", got)
	}
}

// TestHistogramSetNil pins that the disabled (nil) histogram set drops
// all calls without panicking, matching the GaugeSet contract.
func TestHistogramSetNil(t *testing.T) {
	var h *HistogramSet
	h.Help("x", "y")
	h.Observe("x", time.Second)
	if got := h.Count("x"); got != 0 {
		t.Errorf("nil Count = %d, want 0", got)
	}
	var buf bytes.Buffer
	if err := h.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WritePrometheus wrote %q, err %v", buf.String(), err)
	}
}

// TestGaugeSetFunc pins dynamic gauges: evaluated at scrape time, NaN
// suppressed, re-registration replaces.
func TestGaugeSetFunc(t *testing.T) {
	g := NewGaugeSet()
	g.Help("age_seconds", "Age of the thing.")
	val := 1.5
	g.Func("age_seconds", func() float64 { return val })
	render := func() string {
		var buf bytes.Buffer
		if err := g.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		return buf.String()
	}
	if out := render(); !strings.Contains(out, "age_seconds 1.5\n") {
		t.Errorf("missing func gauge sample:\n%s", out)
	}
	val = 2.5
	if out := render(); !strings.Contains(out, "age_seconds 2.5\n") {
		t.Errorf("func gauge not re-evaluated:\n%s", out)
	}
	val = math.NaN()
	if out := render(); strings.Contains(out, "age_seconds") {
		t.Errorf("NaN func gauge should be suppressed entirely:\n%s", out)
	}
	// Nil-set and nil-func registrations are dropped silently.
	var nilG *GaugeSet
	nilG.Func("x", func() float64 { return 1 })
	g.Func("x", nil)
	if out := render(); strings.Contains(out, "\nx ") {
		t.Errorf("nil func registered:\n%s", out)
	}
}

// TestPrometheusEscaping pins the exposition-format escaping rules on
// both exporters: label values escape backslash, quote, and newline;
// HELP escapes backslash and newline but leaves quotes literal.
func TestPrometheusEscaping(t *testing.T) {
	g := NewGaugeSet()
	g.Help("weird", "line one\nline \\two \"quoted\"")
	g.Set("weird", 1, "path", "C:\\tmp\n\"x\"")
	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	assertParseable(t, out)
	if want := `# HELP weird line one\nline \\two "quoted"` + "\n"; !strings.Contains(out, want) {
		t.Errorf("HELP not escaped per format, want %q in:\n%s", want, out)
	}
	if want := `weird{path="C:\\tmp\n\"x\""} 1` + "\n"; !strings.Contains(out, want) {
		t.Errorf("label value not escaped per format, want %q in:\n%s", want, out)
	}

	// Span names flow into label values on the aggregator exporter.
	agg := NewAggregator()
	tr := NewTracer(agg)
	sp := tr.Start("evil\"span\nname\\")
	sp.End()
	buf.Reset()
	if err := agg.WritePrometheus(&buf); err != nil {
		t.Fatalf("agg WritePrometheus: %v", err)
	}
	assertParseable(t, buf.String())
	if want := `span="evil\"span\nname\\"`; !strings.Contains(buf.String(), want) {
		t.Errorf("span label not escaped, want %s in:\n%s", want, buf.String())
	}
}

// TestGaugeSetConcurrentScrape races Set/Func registration against
// WritePrometheus; under -race this proves the registry is data-race
// free, and every mid-flight scrape must still parse.
func TestGaugeSetConcurrentScrape(t *testing.T) {
	g := NewGaugeSet()
	g.Help("racy_metric", "Updated while being scraped.")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g.Set("racy_metric", float64(i), "worker", string(rune('a'+w)))
				g.Func("racy_func", func() float64 { return float64(i) })
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := g.WritePrometheus(&buf); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		assertParseable(t, buf.String())
	}
	close(stop)
	wg.Wait()
}

// TestAggregatorConcurrentScrape races span emission (and histogram
// observation) against in-flight scrapes of the full metrics handler
// stack; output must always parse.
func TestAggregatorConcurrentScrape(t *testing.T) {
	agg := NewAggregator()
	tr := NewTracer(agg)
	hists := NewHistogramSet()
	hists.Help("advisord_ingest_seconds", "Ingest latency.")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sp := tr.Start("solve.step")
				sp.End()
				hists.Observe("advisord_ingest_seconds", time.Duration(i)*time.Microsecond)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := agg.WritePrometheus(&buf); err != nil {
			t.Fatalf("agg scrape %d: %v", i, err)
		}
		if err := hists.WritePrometheus(&buf); err != nil {
			t.Fatalf("hist scrape %d: %v", i, err)
		}
		assertParseable(t, buf.String())
	}
	close(stop)
	wg.Wait()
}
