package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// JSONLWriter is a Sink that writes one JSON object per span to an
// io.Writer — the machine-readable trace format consumed by external
// tooling (and by ReadJSONL). Writes are serialized by a mutex, so the
// solver worker pool can emit concurrently; the output is buffered and
// must be Flushed (or Closed) before the underlying writer is read.
type JSONLWriter struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer // non-nil when the writer owns the underlying file
	err    error     // first write error, surfaced by Flush/Close
	closed bool      // set by Close; later Emits drop, later Closes no-op
}

// NewJSONLWriter wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	jw := &JSONLWriter{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		jw.c = c
	}
	return jw
}

// jsonSpan is the wire form of a SpanRecord. Attribute values keep
// their types through the JSON round trip except that integral floats
// decode as ints (JSON has one number type); tests pin the behaviour.
type jsonSpan struct {
	Name  string         `json:"name"`
	Start time.Time      `json:"start"`
	DurNS int64          `json:"dur_ns"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Emit implements Sink.
func (jw *JSONLWriter) Emit(rec SpanRecord) {
	js := jsonSpan{Name: rec.Name, Start: rec.Start, DurNS: int64(rec.Dur)}
	if len(rec.Attrs) > 0 {
		js.Attrs = make(map[string]any, len(rec.Attrs))
		for _, a := range rec.Attrs {
			js.Attrs[a.Key] = a.Value()
		}
	}
	buf, err := json.Marshal(js)
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.closed {
		return
	}
	if err != nil {
		if jw.err == nil {
			jw.err = err
		}
		return
	}
	if jw.err != nil {
		return
	}
	if _, err := jw.w.Write(buf); err != nil {
		jw.err = err
		return
	}
	if err := jw.w.WriteByte('\n'); err != nil {
		jw.err = err
	}
}

// Flush drains the buffer and returns the first error seen so far.
func (jw *JSONLWriter) Flush() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if err := jw.w.Flush(); err != nil && jw.err == nil {
		jw.err = err
	}
	return jw.err
}

// Close flushes and, when the writer owns the underlying file, closes
// it. It returns the first error observed across the sink's lifetime.
// The flush and the underlying close happen under the emit mutex, so
// every Emit that returned before Close began is durably written — a
// concurrent Emit either lands in the flushed buffer or, once Close has
// the lock, is dropped rather than written to a closed file. Closing
// twice is a no-op returning the recorded error.
func (jw *JSONLWriter) Close() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.closed {
		return jw.err
	}
	jw.closed = true
	if err := jw.w.Flush(); err != nil && jw.err == nil {
		jw.err = err
	}
	if jw.c != nil {
		if cerr := jw.c.Close(); cerr != nil && jw.err == nil {
			jw.err = cerr
		}
	}
	return jw.err
}

// ReadJSONL parses a JSONL trace back into span records, reversing
// Emit. Attribute ordering within a span is not preserved (the wire
// format is a JSON object); aggregate-level tests compare by key.
func ReadJSONL(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	dec := json.NewDecoder(r)
	dec.UseNumber()
	for line := 0; ; line++ {
		var js jsonSpan
		if err := dec.Decode(&js); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: trace record %d: %w", line, err)
		}
		rec := SpanRecord{Name: js.Name, Start: js.Start, Dur: time.Duration(js.DurNS)}
		for key, v := range js.Attrs {
			switch v := v.(type) {
			case json.Number:
				if i, err := v.Int64(); err == nil {
					rec.Attrs = append(rec.Attrs, Int(key, i))
				} else if f, err := v.Float64(); err == nil {
					rec.Attrs = append(rec.Attrs, Float(key, f))
				} else {
					return out, fmt.Errorf("obs: trace record %d: bad number %q for attr %q", line, v, key)
				}
			case string:
				rec.Attrs = append(rec.Attrs, String(key, v))
			case bool:
				rec.Attrs = append(rec.Attrs, Bool(key, v))
			default:
				return out, fmt.Errorf("obs: trace record %d: unsupported attr %q type %T", line, key, v)
			}
		}
		out = append(out, rec)
	}
}
