package obs

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentEmissionOrderingIndependent proves the sink contract
// under the race detector: many goroutines (the shape of the solver
// worker pool) emit spans into the same tracer — JSONL sink plus
// aggregator — concurrently, and the aggregate counts come out exactly
// right regardless of interleaving.
func TestConcurrentEmissionOrderingIndependent(t *testing.T) {
	const (
		spansPerWorker = 200
		names          = 3
	)
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	spanNames := [names]string{"matrix.exec_stage", "kaware.sweep", "ranking.expand"}

	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	agg := NewAggregator()
	tr := NewTracer(jw, agg)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spansPerWorker; i++ {
				sp := tr.Start(spanNames[(w+i)%names])
				sp.End(Int("worker", int64(w)), Int("item", int64(i)))
			}
		}(w)
	}
	wg.Wait()
	if err := jw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	total := int64(workers * spansPerWorker)

	// Aggregator: per-name and overall counts must be exact.
	var aggTotal int64
	perName := map[string]int64{}
	for _, st := range agg.Snapshot() {
		aggTotal += st.Count
		perName[st.Name] = st.Count
		var hist int64
		for _, b := range st.Buckets {
			hist += b
		}
		if hist != st.Count {
			t.Errorf("%s: histogram %d != count %d", st.Name, hist, st.Count)
		}
	}
	if aggTotal != total {
		t.Errorf("aggregator saw %d spans, want %d", aggTotal, total)
	}
	// Per-name counts must match the deterministic deal exactly,
	// independent of goroutine interleaving.
	want := map[string]int64{}
	for w := 0; w < workers; w++ {
		for i := 0; i < spansPerWorker; i++ {
			want[spanNames[(w+i)%names]]++
		}
	}
	for _, name := range spanNames {
		if perName[name] != want[name] {
			t.Errorf("%s count = %d, want %d", name, perName[name], want[name])
		}
	}

	// JSONL: every span must round-trip intact — no torn lines under
	// concurrent emission — and each (worker, item) pair appears once.
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if int64(len(recs)) != total {
		t.Fatalf("trace has %d records, want %d", len(recs), total)
	}
	seen := make(map[[2]int64]bool, total)
	for _, rec := range recs {
		var worker, item int64 = -1, -1
		for _, a := range rec.Attrs {
			switch a.Key {
			case "worker":
				worker = a.IntValue()
			case "item":
				item = a.IntValue()
			}
		}
		key := [2]int64{worker, item}
		if seen[key] {
			t.Fatalf("duplicate span for worker=%d item=%d", worker, item)
		}
		seen[key] = true
	}
}

// TestConcurrentSnapshotWhileEmitting exercises Snapshot/WritePrometheus
// racing live emission — the -metrics-addr scrape path.
func TestConcurrentSnapshotWhileEmitting(t *testing.T) {
	agg := NewAggregator()
	tr := NewTracer(agg)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					sp := tr.Start("solve")
					sp.End(Bool("ok", true))
				}
			}
		}()
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		var sink bytes.Buffer
		if err := agg.WritePrometheus(&sink); err != nil {
			t.Errorf("WritePrometheus: %v", err)
			break
		}
		_ = agg.Expvar().String()
	}
	close(done)
	wg.Wait()
}
