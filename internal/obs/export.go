package obs

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// WritePrometheus renders the aggregator's stages in the Prometheus
// text exposition format: one histogram family over all span names
// (label span="...") plus a span counter family. The output is stable
// (snapshot ordering) and parses with any Prometheus scraper.
func (a *Aggregator) WritePrometheus(w io.Writer) error {
	snap := a.Snapshot()
	if _, err := fmt.Fprint(w,
		"# HELP dyndesign_span_duration_seconds Solver span durations by span name.\n",
		"# TYPE dyndesign_span_duration_seconds histogram\n"); err != nil {
		return err
	}
	for _, st := range snap {
		span := escapeLabel(st.Name)
		cum := int64(0)
		for i := 0; i < HistBuckets-1; i++ {
			cum += st.Buckets[i]
			le := formatSeconds(BucketBound(i).Seconds())
			if _, err := fmt.Fprintf(w, "dyndesign_span_duration_seconds_bucket{span=\"%s\",le=\"%s\"} %d\n",
				span, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "dyndesign_span_duration_seconds_bucket{span=\"%s\",le=\"+Inf\"} %d\n",
			span, st.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "dyndesign_span_duration_seconds_sum{span=\"%s\"} %g\n",
			span, st.Total.Seconds()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "dyndesign_span_duration_seconds_count{span=\"%s\"} %d\n",
			span, st.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w,
		"# HELP dyndesign_spans_total Finished solver spans by span name.\n",
		"# TYPE dyndesign_spans_total counter\n"); err != nil {
		return err
	}
	for _, st := range snap {
		if _, err := fmt.Fprintf(w, "dyndesign_spans_total{span=\"%s\"} %d\n", escapeLabel(st.Name), st.Count); err != nil {
			return err
		}
	}
	return nil
}

// Expvar returns an expvar.Var rendering the aggregator snapshot as a
// JSON map of span name to {count, total_ns, min_ns, max_ns}. Publish
// it under a caller-chosen name (expvar panics on duplicates, so the
// aggregator does not publish itself).
func (a *Aggregator) Expvar() expvar.Var {
	return expvar.Func(func() any {
		type stage struct {
			Count   int64 `json:"count"`
			TotalNS int64 `json:"total_ns"`
			MinNS   int64 `json:"min_ns"`
			MaxNS   int64 `json:"max_ns"`
		}
		out := make(map[string]stage)
		for _, st := range a.Snapshot() {
			out[st.Name] = stage{
				Count: st.Count, TotalNS: int64(st.Total),
				MinNS: int64(st.Min), MaxNS: int64(st.Max),
			}
		}
		return out
	})
}

// MetricsHandler serves the Prometheus text exposition of the
// aggregator.
func (a *Aggregator) MetricsHandler() http.Handler {
	return metricsHandler(a, nil, nil)
}

// metricsHandler serves the aggregator's span families followed by the
// histogram families and the gauge families; any side may be nil.
func metricsHandler(a *Aggregator, h *HistogramSet, g *GaugeSet) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if a != nil {
			_ = a.WritePrometheus(w)
		}
		_ = h.WritePrometheus(w)
		_ = g.WritePrometheus(w)
	})
}

// registerPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof/, the layout the pprof tool expects.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// StartHTTP starts the CLI observability endpoints: a /metrics +
// /debug/vars server on metricsAddr (when non-empty) and a /debug/pprof
// server on pprofAddr (when non-empty). When both addresses are equal
// one server carries everything. /metrics renders the aggregator's span
// families followed by the histogram and gauge families; any may be nil
// (a nil agg is replaced by an empty one so the endpoint always
// parses). Listeners are bound synchronously so a bad address fails
// here, not in a goroutine; the returned stop function shuts the
// servers down.
func StartHTTP(metricsAddr, pprofAddr string, agg *Aggregator, hists *HistogramSet, gauges *GaugeSet) (stop func(), err error) {
	type bound struct {
		ln  net.Listener
		srv *http.Server
	}
	var servers []bound
	start := func(addr string, mux *http.ServeMux) error {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return fmt.Errorf("obs: listen %s: %w", addr, err)
		}
		srv := &http.Server{Handler: mux}
		servers = append(servers, bound{ln: ln, srv: srv})
		go func() { _ = srv.Serve(ln) }()
		return nil
	}
	stopAll := func() {
		for _, b := range servers {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_ = b.srv.Shutdown(ctx)
			cancel()
		}
	}

	if metricsAddr != "" {
		if agg == nil {
			agg = NewAggregator()
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", metricsHandler(agg, hists, gauges))
		mux.Handle("/debug/vars", expvar.Handler())
		if pprofAddr == metricsAddr {
			registerPprof(mux)
			pprofAddr = ""
		}
		if err := start(metricsAddr, mux); err != nil {
			return nil, err
		}
	}
	if pprofAddr != "" {
		mux := http.NewServeMux()
		registerPprof(mux)
		if err := start(pprofAddr, mux); err != nil {
			stopAll()
			return nil, err
		}
	}
	return stopAll, nil
}
