package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// GaugeSet is a small Prometheus gauge registry for point-in-time
// quantities that are not span durations — the explain layer's
// cost-of-constraint curve, audit regrets, and attribution totals. It
// complements the Aggregator (which only sees spans): gauges are set
// explicitly, keep their last value, and render in the same text
// exposition the /metrics endpoint serves. Safe for concurrent use.
type GaugeSet struct {
	mu     sync.Mutex
	series map[string]gauge // keyed by name + rendered labels
	help   map[string]string
	funcs  map[string]func() float64 // evaluated at scrape time, keyed by name
}

type gauge struct {
	name   string
	labels string // pre-rendered {k="v",...} or ""
	value  float64
}

// NewGaugeSet builds an empty gauge registry.
func NewGaugeSet() *GaugeSet {
	return &GaugeSet{
		series: make(map[string]gauge),
		help:   make(map[string]string),
		funcs:  make(map[string]func() float64),
	}
}

// Help sets the HELP text rendered for a gauge family.
func (g *GaugeSet) Help(name, help string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.help[name] = help
	g.mu.Unlock()
}

// Set records a gauge value for the series identified by name and label
// pairs (given as "key", "value" alternating; an odd trailing key is
// ignored). Setting the same series again overwrites its value. A nil
// GaugeSet drops the write, so publishing stays unconditional at call
// sites.
func (g *GaugeSet) Set(name string, value float64, labelPairs ...string) {
	if g == nil {
		return
	}
	var labels string
	if len(labelPairs) >= 2 {
		parts := make([]string, 0, len(labelPairs)/2)
		for i := 0; i+1 < len(labelPairs); i += 2 {
			parts = append(parts, fmt.Sprintf("%s=\"%s\"", labelPairs[i], escapeLabel(labelPairs[i+1])))
		}
		sort.Strings(parts)
		labels = "{" + strings.Join(parts, ",") + "}"
	}
	g.mu.Lock()
	g.series[name+labels] = gauge{name: name, labels: labels, value: value}
	g.mu.Unlock()
}

// Func registers a dynamic, label-free gauge evaluated at scrape time —
// for quantities like the age of the published recommendation, where a
// Set-at-publish gauge would freeze while the staleness it measures
// keeps growing. The function must be safe for concurrent calls; it is
// invoked outside the registry lock, and a NaN return drops the sample
// from that scrape (the family's HELP/TYPE header is suppressed with
// it). Registering the same name again replaces the function; a nil
// GaugeSet drops the registration.
func (g *GaugeSet) Func(name string, fn func() float64) {
	if g == nil || fn == nil {
		return
	}
	g.mu.Lock()
	if g.funcs == nil {
		g.funcs = make(map[string]func() float64)
	}
	g.funcs[name] = fn
	g.mu.Unlock()
}

// WritePrometheus renders every series in the Prometheus text exposition
// format, grouped by family and sorted, so output is stable across
// calls. A nil GaugeSet writes nothing.
func (g *GaugeSet) WritePrometheus(w io.Writer) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	all := make([]gauge, 0, len(g.series)+len(g.funcs))
	for _, s := range g.series {
		all = append(all, s)
	}
	help := make(map[string]string, len(g.help))
	for k, v := range g.help {
		help[k] = v
	}
	funcs := make(map[string]func() float64, len(g.funcs))
	for k, fn := range g.funcs {
		funcs[k] = fn
	}
	g.mu.Unlock()
	// Dynamic gauges evaluate outside the lock so a slow or re-entrant
	// function cannot stall concurrent Sets; NaN means "no sample this
	// scrape".
	for name, fn := range funcs {
		if v := fn(); !math.IsNaN(v) {
			all = append(all, gauge{name: name, value: v})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].labels < all[j].labels
	})
	lastFamily := ""
	for _, s := range all {
		if s.name != lastFamily {
			if h := help[s.name]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, escapeHelp(h)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", s.name); err != nil {
				return err
			}
			lastFamily = s.name
		}
		if _, err := fmt.Fprintf(w, "%s%s %g\n", s.name, s.labels, s.value); err != nil {
			return err
		}
	}
	return nil
}
