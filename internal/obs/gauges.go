package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// GaugeSet is a small Prometheus gauge registry for point-in-time
// quantities that are not span durations — the explain layer's
// cost-of-constraint curve, audit regrets, and attribution totals. It
// complements the Aggregator (which only sees spans): gauges are set
// explicitly, keep their last value, and render in the same text
// exposition the /metrics endpoint serves. Safe for concurrent use.
type GaugeSet struct {
	mu     sync.Mutex
	series map[string]gauge // keyed by name + rendered labels
	help   map[string]string
}

type gauge struct {
	name   string
	labels string // pre-rendered {k="v",...} or ""
	value  float64
}

// NewGaugeSet builds an empty gauge registry.
func NewGaugeSet() *GaugeSet {
	return &GaugeSet{series: make(map[string]gauge), help: make(map[string]string)}
}

// Help sets the HELP text rendered for a gauge family.
func (g *GaugeSet) Help(name, help string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.help[name] = help
	g.mu.Unlock()
}

// Set records a gauge value for the series identified by name and label
// pairs (given as "key", "value" alternating; an odd trailing key is
// ignored). Setting the same series again overwrites its value. A nil
// GaugeSet drops the write, so publishing stays unconditional at call
// sites.
func (g *GaugeSet) Set(name string, value float64, labelPairs ...string) {
	if g == nil {
		return
	}
	var labels string
	if len(labelPairs) >= 2 {
		parts := make([]string, 0, len(labelPairs)/2)
		for i := 0; i+1 < len(labelPairs); i += 2 {
			parts = append(parts, fmt.Sprintf("%s=%q", labelPairs[i], labelPairs[i+1]))
		}
		sort.Strings(parts)
		labels = "{" + strings.Join(parts, ",") + "}"
	}
	g.mu.Lock()
	g.series[name+labels] = gauge{name: name, labels: labels, value: value}
	g.mu.Unlock()
}

// WritePrometheus renders every series in the Prometheus text exposition
// format, grouped by family and sorted, so output is stable across
// calls. A nil GaugeSet writes nothing.
func (g *GaugeSet) WritePrometheus(w io.Writer) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	all := make([]gauge, 0, len(g.series))
	for _, s := range g.series {
		all = append(all, s)
	}
	help := make(map[string]string, len(g.help))
	for k, v := range g.help {
		help[k] = v
	}
	g.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].labels < all[j].labels
	})
	lastFamily := ""
	for _, s := range all {
		if s.name != lastFamily {
			if h := help[s.name]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", s.name); err != nil {
				return err
			}
			lastFamily = s.name
		}
		if _, err := fmt.Fprintf(w, "%s%s %g\n", s.name, s.labels, s.value); err != nil {
			return err
		}
	}
	return nil
}
