package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// HistogramSet is a registry of named duration histograms sharing the
// Aggregator's log₂ bucket layout (HistBuckets buckets, bucket i
// bounded by BucketBound(i)). Where the Aggregator derives one
// histogram family per span name from emitted spans, a HistogramSet
// holds explicitly observed histograms that render as their own
// Prometheus families — the advisord hot-path latency metrics
// (advisord_ingest_seconds, advisord_solve_seconds) instead of only
// point gauges. Safe for concurrent Observe and WritePrometheus; the
// nil *HistogramSet drops every call, so observation sites stay
// unconditional.
type HistogramSet struct {
	mu    sync.Mutex
	hists map[string]*durationHist
	help  map[string]string
}

// durationHist is one log₂ duration histogram plus count and sum.
type durationHist struct {
	count   int64
	sum     time.Duration
	buckets [HistBuckets]int64
}

// NewHistogramSet builds an empty histogram registry.
func NewHistogramSet() *HistogramSet {
	return &HistogramSet{hists: make(map[string]*durationHist), help: make(map[string]string)}
}

// Help sets the HELP text rendered for a histogram family.
func (h *HistogramSet) Help(name, help string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.help[name] = help
	h.mu.Unlock()
}

// Observe folds one duration into the named histogram, creating it on
// first use. A nil HistogramSet drops the observation.
func (h *HistogramSet) Observe(name string, d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	dh := h.hists[name]
	if dh == nil {
		dh = &durationHist{}
		h.hists[name] = dh
	}
	dh.count++
	dh.sum += d
	dh.buckets[bucketOf(d)]++
	h.mu.Unlock()
}

// Count returns the number of observations of the named histogram.
func (h *HistogramSet) Count(name string) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	dh := h.hists[name]
	if dh == nil {
		return 0
	}
	return dh.count
}

// WritePrometheus renders every histogram as its own family in the text
// exposition format, sorted by name so output is stable across calls. A
// nil HistogramSet writes nothing.
func (h *HistogramSet) WritePrometheus(w io.Writer) error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	names := make([]string, 0, len(h.hists))
	snap := make(map[string]durationHist, len(h.hists))
	help := make(map[string]string, len(h.help))
	for name, dh := range h.hists {
		names = append(names, name)
		snap[name] = *dh
	}
	for k, v := range h.help {
		help[k] = v
	}
	h.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		dh := snap[name]
		if ht := help[name]; ht != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(ht)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i := 0; i < HistBuckets-1; i++ {
			cum += dh.buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
				name, formatSeconds(BucketBound(i).Seconds()), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, dh.count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, dh.sum.Seconds()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", name, dh.count); err != nil {
			return err
		}
	}
	return nil
}
